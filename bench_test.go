// Package distgnn_test hosts the top-level testing.B benchmarks: one per
// table and figure of the paper's evaluation. Each benchmark exercises the
// core operation behind its artifact so `go test -bench=. -benchmem`
// doubles as a regression harness for the reproduction; the full printed
// tables come from `distgnn-bench <id>` (see internal/bench).
package distgnn_test

import (
	"sort"
	"testing"

	"distgnn/internal/cachesim"
	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/minibatch"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/parallel"
	"distgnn/internal/partition"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
	"distgnn/internal/train"
	"distgnn/internal/workmodel"
)

const benchScale = 0.25

func benchDataset(b *testing.B, name string) *datasets.Dataset {
	b.Helper()
	ds, err := datasets.Load(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// aggArgs builds the GNN hot-path AP invocation (copylhs/sum) for a dataset.
func aggArgs(ds *datasets.Dataset) *spmm.Args {
	return &spmm.Args{
		G:  ds.G,
		FV: ds.Features,
		FO: tensor.New(ds.G.NumVertices, ds.Features.Cols),
		Op: spmm.OpCopyLHS, Red: spmm.ReduceSum,
	}
}

// --- Fig. 2: baseline vs optimized aggregation primitive ------------------

func BenchmarkFig2BaselineAPReddit(b *testing.B) {
	ds := benchDataset(b, "reddit-sim")
	args := aggArgs(ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := spmm.Baseline(args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2OptimizedAPReddit(b *testing.B) {
	ds := benchDataset(b, "reddit-sim")
	args := aggArgs(ds)
	plan := spmm.NewPlan(ds.G, spmm.DefaultOptions(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Run(args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2BaselineAPProducts(b *testing.B) {
	ds := benchDataset(b, "ogbn-products-sim")
	args := aggArgs(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := spmm.Baseline(args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2OptimizedAPProducts(b *testing.B) {
	ds := benchDataset(b, "ogbn-products-sim")
	args := aggArgs(ds)
	plan := spmm.NewPlan(ds.G, spmm.DefaultOptions(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Run(args); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3 / Fig. 3: cache-blocking sweep --------------------------------

func BenchmarkTable3CacheSimulation(b *testing.B) {
	ds := benchDataset(b, "reddit-sim")
	cfg := cachesim.APConfig{
		NumBlocks: 16, FeatureBytes: ds.Features.Cols * 4,
		CacheBytes: ds.G.NumVertices * ds.Features.Cols / 3, ReorderedOutput: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := cachesim.SimulateAP(ds.G, cfg)
		if st.FVAccesses == 0 {
			b.Fatal("empty simulation")
		}
	}
}

func BenchmarkFig3BlockedKernelSweep(b *testing.B) {
	ds := benchDataset(b, "reddit-sim")
	for _, nB := range []int{1, 4, 16, 64} {
		plan := spmm.NewPlan(ds.G, spmm.DefaultOptions(nB))
		args := aggArgs(ds)
		b.Run(map[int]string{1: "nB=1", 4: "nB=4", 16: "nB=16", 64: "nB=64"}[nB], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := plan.Run(args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 4: optimization ladder -------------------------------------------

func BenchmarkFig4OptimizationLadder(b *testing.B) {
	ds := benchDataset(b, "reddit-sim")
	args := aggArgs(ds)
	arms := []struct {
		name string
		opt  spmm.Options
	}{
		{"static", spmm.Options{NumBlocks: 1, Schedule: spmm.ScheduleStatic}},
		{"DS", spmm.Options{NumBlocks: 1, Schedule: spmm.ScheduleDynamic}},
		{"DS_Block", spmm.Options{NumBlocks: 8, Schedule: spmm.ScheduleDynamic}},
		{"DS_Block_LR", spmm.Options{NumBlocks: 8, Schedule: spmm.ScheduleDynamic, Reordered: true}},
	}
	for _, arm := range arms {
		plan := spmm.NewPlan(ds.G, arm.opt)
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := plan.Run(args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 4: Libra partitioning -------------------------------------------

func BenchmarkTable4LibraPartition(b *testing.B) {
	ds := benchDataset(b, "ogbn-products-sim")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := partition.Partition(ds.G, partition.Libra{Seed: 1}, 16, 1)
		if err != nil {
			b.Fatal(err)
		}
		if pt.ReplicationFactor() < 1 {
			b.Fatal("bad partitioning")
		}
	}
}

// --- Fig. 5 / Fig. 6: distributed epoch under each algorithm ---------------

func benchDistEpoch(b *testing.B, algo train.Algorithm, delay int) {
	ds := benchDataset(b, "ogbn-products-sim")
	epochs := 3
	if algo == train.AlgoCDR {
		epochs = 2*delay + 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := train.Distributed(ds, train.DistConfig{
			Model:         model.Config{Hidden: 32, NumLayers: 2, Seed: 1},
			NumPartitions: 8, Algo: algo, Delay: delay,
			Epochs: epochs, LR: 0.01, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Epochs) != epochs {
			b.Fatal("missing epochs")
		}
	}
}

func BenchmarkFig5Dist0C(b *testing.B)  { benchDistEpoch(b, train.Algo0C, 0) }
func BenchmarkFig5DistCD0(b *testing.B) { benchDistEpoch(b, train.AlgoCD0, 0) }
func BenchmarkFig6DistCD5(b *testing.B) { benchDistEpoch(b, train.AlgoCDR, 5) }

// --- Table 5: full training epoch (forward+backward+step) ------------------

func BenchmarkTable5TrainingEpoch(b *testing.B) {
	ds := benchDataset(b, "reddit-sim")
	m, err := model.New(ds.G, model.Config{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: ds.NumClasses,
		NumLayers: 2, Seed: 1,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	opt := &nn.SGD{LR: 0.01}
	params := m.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.Forward(ds.Features, true)
		_, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
		nn.ZeroGrads(params)
		m.Backward(dlogits)
		opt.Step(params)
	}
}

// --- Table 6: memory model over real partitions ----------------------------

func BenchmarkTable6MemoryModel(b *testing.B) {
	ds := benchDataset(b, "ogbn-papers-sim")
	pt, err := partition.Partition(ds.G, partition.Libra{Seed: 1}, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	sizes := make([]int, len(pt.Parts))
	for i, p := range pt.Parts {
		sizes[i] = p.NumLocal()
	}
	sort.Ints(sizes)
	p := workmodel.MemoryParams{
		N: sizes[len(sizes)-1], F: ds.Features.Cols, H1: 64, H2: 64,
		L: ds.NumClasses, Edges: ds.G.NumEdges / 32,
		SplitVertices: len(pt.Splits) / 32, Delay: 5,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, algo := range []string{workmodel.Algo0C, workmodel.AlgoCD0, workmodel.AlgoCDR} {
			if _, err := workmodel.Memory(p, algo); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table 7: neighborhood sampling ----------------------------------------

func BenchmarkTable7NeighborSampling(b *testing.B) {
	ds := benchDataset(b, "ogbn-products-sim")
	sampler, err := minibatch.NewSampler(ds.G, []int{15, 10, 5}, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeds := ds.TrainIdx
	if len(seeds) > 200 {
		seeds = seeds[:200]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sampler.Sample(seeds)
		if len(s.Blocks) != 3 {
			b.Fatal("bad sample")
		}
	}
}

// --- Table 8: analytic work model -------------------------------------------

func BenchmarkTable8WorkModel(b *testing.B) {
	hops := workmodel.FullBatchHops(2449029, 51.5, []int{100, 256, 256})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workmodel.TotalOps(hops) <= 0 {
			b.Fatal("bad work model")
		}
	}
}

// --- Table 9: mini-batch training epoch -------------------------------------

func BenchmarkTable9MiniBatchEpoch(b *testing.B) {
	ds := benchDataset(b, "ogbn-products-sim")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := minibatch.Train(ds, minibatch.Config{
			Hidden: 32, NumLayers: 2, Fanouts: []int{10, 5},
			BatchSize: 256, Epochs: 1, LR: 0.01, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Epochs) != 1 {
			b.Fatal("missing epoch")
		}
	}
}

// --- Cross-cutting: unified parallel runtime, serial vs pooled --------------

// withWorkers runs body under a fixed worker-pool size and restores the
// default afterwards, so the serial arm is a true single-thread baseline.
func withWorkers(b *testing.B, workers int, body func(b *testing.B)) {
	parallel.Configure(parallel.Config{Workers: workers})
	defer parallel.Configure(parallel.Config{})
	body(b)
}

// BenchmarkRuntimeSpMM records ns/op and allocs/op for the optimized
// aggregation kernel with the pool pinned to one worker vs the full team —
// the speedup (and the per-op allocation floor) the unified runtime buys.
func BenchmarkRuntimeSpMM(b *testing.B) {
	ds := benchDataset(b, "reddit-sim")
	args := aggArgs(ds)
	plan := spmm.NewPlan(ds.G, spmm.DefaultOptions(8))
	for _, arm := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pooled", 0}} {
		b.Run(arm.name, func(b *testing.B) {
			withWorkers(b, arm.workers, func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := plan.Run(args); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkRuntimeMatMul is the dense-kernel twin of BenchmarkRuntimeSpMM.
func BenchmarkRuntimeMatMul(b *testing.B) {
	const m, k, n = 4096, 128, 128
	a := tensor.New(m, k)
	bm := tensor.New(k, n)
	c := tensor.New(m, n)
	for i := range a.Data {
		a.Data[i] = float32(i%17) * 0.25
	}
	for i := range bm.Data {
		bm.Data[i] = float32(i%13) * 0.5
	}
	for _, arm := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pooled", 0}} {
		b.Run(arm.name, func(b *testing.B) {
			withWorkers(b, arm.workers, func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.MatMul(c, a, bm)
				}
			})
		})
	}
}

// BenchmarkRuntimeAutoTune prices the one-shot kernel sweep so its
// amortization argument stays checkable.
func BenchmarkRuntimeAutoTune(b *testing.B) {
	ds := benchDataset(b, "reddit-sim")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := spmm.AutoTune(ds.G, ds.Features.Cols)
		if opt.NumBlocks < 1 {
			b.Fatal("bad autotune result")
		}
	}
}

// --- Cross-cutting: parameter AllReduce (the per-epoch sync) ----------------

func BenchmarkParamAllReduce(b *testing.B) {
	w := comm.NewWorld(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(rank int) {
			buf := make([]float32, 1<<14)
			w.AllReduceSum(rank, buf)
		})
	}
}
