// Command distgnn-bench regenerates the tables and figures of the DistGNN
// paper's evaluation section on the synthetic calibrated datasets.
//
// Usage:
//
//	distgnn-bench [-scale 0.5] [-epochs N] <experiment>...
//	distgnn-bench -list
//	distgnn-bench all
//
// Experiments: fig2 table3 fig3 fig4 table4 fig5 fig6 table5 table6
// table7 table8 table9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distgnn/internal/bench"
	"distgnn/internal/parallel"
)

func main() {
	scale := flag.Float64("scale", 0.5, "dataset scale factor (1.0 = registry base size)")
	epochs := flag.Int("epochs", 0, "override per-experiment epoch/iteration counts")
	workers := flag.Int("workers", 0,
		"kernel worker-pool size, the OMP_NUM_THREADS analogue (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "",
		"write machine-readable results to this file (experiments that emit them, e.g. abl-transport)")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *workers > 0 {
		parallel.Configure(parallel.Config{Workers: *workers})
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		for _, e := range bench.Ablations() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: distgnn-bench [-scale S] [-epochs N] <%s|all|ablations>...\n",
			strings.Join(bench.IDs(), "|"))
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = bench.IDs()
	}
	if len(args) == 1 && args[0] == "ablations" {
		args = nil
		for _, e := range bench.Ablations() {
			args = append(args, e.ID)
		}
	}
	opt := bench.Options{Scale: *scale, Epochs: *epochs, Out: os.Stdout}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distgnn-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		opt.JSON = f
	}
	for _, id := range args {
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "distgnn-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		if err := e.Run(opt); err != nil {
			fmt.Fprintf(os.Stderr, "distgnn-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
