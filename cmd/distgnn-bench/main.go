// Command distgnn-bench regenerates the tables and figures of the DistGNN
// paper's evaluation section on the synthetic calibrated datasets.
//
// Usage:
//
//	distgnn-bench [-scale 0.5] [-epochs N] <experiment>...
//	distgnn-bench -list
//	distgnn-bench all
//	distgnn-bench -update-baseline [-baseline-dir DIR] [<experiment>...]
//	distgnn-bench -check [-baseline-dir DIR] [-tolerance 0.15] [<experiment>...]
//
// Experiments: fig2 table3 fig3 fig4 table4 fig5 fig6 table5 table6
// table7 table8 table9.
//
// -check reruns the gated experiments (abl-kernels, abl-serve by default)
// and compares their metrics envelope against the committed baselines in
// -baseline-dir, normalizing by the per-machine calibration workload; any
// metric slower than baseline × calibration ratio × (1 + tolerance) exits
// nonzero. -update-baseline regenerates the baseline files; run it at the
// same -scale/-epochs the check will use.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"distgnn/internal/bench"
	"distgnn/internal/parallel"
)

func main() {
	scale := flag.Float64("scale", 0.5, "dataset scale factor (1.0 = registry base size)")
	epochs := flag.Int("epochs", 0, "override per-experiment epoch/iteration counts")
	workers := flag.Int("workers", 0,
		"kernel worker-pool size, the OMP_NUM_THREADS analogue (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "",
		"write machine-readable results to this file (experiments that emit them, e.g. abl-transport)")
	list := flag.Bool("list", false, "list available experiments")
	check := flag.Bool("check", false,
		"rerun the gated experiments and fail on perf regression vs the committed baselines")
	update := flag.Bool("update-baseline", false,
		"rerun the gated experiments and rewrite their baseline files")
	baselineDir := flag.String("baseline-dir", "BENCH_baseline",
		"directory holding the committed baseline envelopes for -check/-update-baseline")
	tolerance := flag.Float64("tolerance", bench.DefaultTolerance,
		"relative slowdown -check permits after calibration scaling")
	flag.Parse()

	if *workers > 0 {
		parallel.Configure(parallel.Config{Workers: *workers})
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		for _, e := range bench.Ablations() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *check || *update {
		os.Exit(runGate(flag.Args(), *scale, *epochs, *baselineDir, *tolerance, *update))
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: distgnn-bench [-scale S] [-epochs N] <%s|all|ablations>...\n",
			strings.Join(bench.IDs(), "|"))
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = bench.IDs()
	}
	if len(args) == 1 && args[0] == "ablations" {
		args = nil
		for _, e := range bench.Ablations() {
			args = append(args, e.ID)
		}
	}
	opt := bench.Options{Scale: *scale, Epochs: *epochs, Out: os.Stdout}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distgnn-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		opt.JSON = f
	}
	for _, id := range args {
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "distgnn-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		if err := e.Run(opt); err != nil {
			fmt.Fprintf(os.Stderr, "distgnn-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// runGate drives -check and -update-baseline over the gated experiments
// and returns the process exit code.
func runGate(ids []string, scale float64, epochs int, dir string, tol float64, update bool) int {
	if len(ids) == 0 {
		ids = bench.GatedExperiments()
	}
	failed := false
	for _, id := range ids {
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "distgnn-bench: unknown experiment %q (try -list)\n", id)
			return 2
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		var buf bytes.Buffer
		opt := bench.Options{Scale: scale, Epochs: epochs, Out: os.Stdout, JSON: &buf}
		if err := e.Run(opt); err != nil {
			fmt.Fprintf(os.Stderr, "distgnn-bench: %s: %v\n", e.ID, err)
			return 1
		}
		path := filepath.Join(dir, id+".json")
		if update {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "distgnn-bench: %v\n", err)
				return 1
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "distgnn-bench: %v\n", err)
				return 1
			}
			fmt.Printf("baseline written: %s\n\n", path)
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distgnn-bench: no baseline for %s: %v (run -update-baseline)\n", id, err)
			return 1
		}
		var base, cur bench.MetricsEnvelope
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "distgnn-bench: corrupt baseline %s: %v\n", path, err)
			return 1
		}
		if err := json.Unmarshal(buf.Bytes(), &cur); err != nil {
			fmt.Fprintf(os.Stderr, "distgnn-bench: %s report: %v\n", id, err)
			return 1
		}
		fails := bench.CheckRegression(base, cur, tol)
		if len(fails) == 0 {
			fmt.Printf("check %s: PASS (%d metrics, calib ratio %.2f)\n\n",
				id, len(base.Metrics), calibRatio(base, cur))
			continue
		}
		failed = true
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "check %s: FAIL: %s\n", id, f)
		}
		fmt.Fprintln(os.Stderr)
	}
	if failed {
		return 1
	}
	return 0
}

func calibRatio(base, cur bench.MetricsEnvelope) float64 {
	if base.CalibSeconds <= 0 || cur.CalibSeconds <= 0 {
		return 1
	}
	return cur.CalibSeconds / base.CalibSeconds
}
