// Command distgnn-datagen materializes a synthetic benchmark dataset to a
// binary file so expensive generations are paid once and shared across
// tools (load with distgnn-train -file).
//
// Example:
//
//	distgnn-datagen -dataset ogbn-papers-sim -scale 1.0 -out papers.dgnd
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distgnn/internal/datasets"
	"distgnn/internal/graphio"
)

func main() {
	dataset := flag.String("dataset", "reddit-sim",
		"dataset name: "+strings.Join(datasets.Names(), ", "))
	scale := flag.Float64("scale", 0.5, "dataset scale factor")
	out := flag.String("out", "", "output file (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "distgnn-datagen: -out is required")
		os.Exit(2)
	}
	ds, err := datasets.Load(*dataset, *scale)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := graphio.WriteDataset(f, ds); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, %d features, %d classes (%.1f MB)\n",
		*out, ds.G.NumVertices, ds.G.NumEdges, ds.Features.Cols, ds.NumClasses,
		float64(info.Size())/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distgnn-datagen:", err)
	os.Exit(1)
}
