// Command distgnn-partition partitions a synthetic benchmark graph with a
// chosen vertex-cut strategy and reports the quality metrics of §5.1:
// replication factor, edge balance and split-vertex fractions.
//
// Example:
//
//	distgnn-partition -dataset reddit-sim -parts 2,4,8,16 -strategy libra
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"distgnn/internal/datasets"
	"distgnn/internal/partition"
)

func main() {
	dataset := flag.String("dataset", "reddit-sim",
		"dataset name: "+strings.Join(datasets.Names(), ", "))
	scale := flag.Float64("scale", 0.5, "dataset scale factor")
	parts := flag.String("parts", "2,4,8,16", "comma-separated partition counts")
	strategy := flag.String("strategy", "libra", "partitioner: libra, random-edge, hash-vertex")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	ds, err := datasets.Load(*dataset, *scale)
	if err != nil {
		fatal(err)
	}
	var p partition.Partitioner
	switch *strategy {
	case "libra":
		p = partition.Libra{Seed: *seed}
	case "random-edge":
		p = partition.RandomEdge{Seed: *seed}
	case "hash-vertex":
		p = partition.HashVertex{}
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	fmt.Printf("dataset %s: %d vertices, %d edges; partitioner %s\n",
		*dataset, ds.G.NumVertices, ds.G.NumEdges, p.Name())
	fmt.Printf("%-6s %-12s %-12s %-14s %s\n",
		"parts", "replication", "edge balance", "split vertices", "max split frac")
	for _, tok := range strings.Split(*parts, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || k < 1 {
			fatal(fmt.Errorf("bad partition count %q", tok))
		}
		pt, err := partition.Partition(ds.G, p, k, *seed)
		if err != nil {
			fatal(err)
		}
		maxFrac := 0.0
		for _, f := range pt.SplitVertexFraction() {
			if f > maxFrac {
				maxFrac = f
			}
		}
		fmt.Printf("%-6d %-12.3f %-12.3f %-14d %.1f%%\n",
			k, pt.ReplicationFactor(), pt.EdgeBalance(), len(pt.Splits), 100*maxFrac)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distgnn-partition:", err)
	os.Exit(1)
}
