// Command distgnn-serve answers online inference queries against a trained
// distgnn-train checkpoint over HTTP: per-vertex class predictions and
// final-layer embeddings, with request coalescing into micro-batches and a
// concurrent byte-budgeted feature/embedding cache.
//
// The dataset flags must regenerate (or load) the graph the checkpoint was
// trained on, and -arch/-hidden/-layers/-heads must match the trainer's
// flags — distgnn-train prints them next to "checkpoint written", and this
// command fails fast on any mismatch.
//
// Examples:
//
//	distgnn-train -dataset reddit-sim -scale 0.5 -epochs 50 -save ckpt.dgnp
//	distgnn-serve -checkpoint ckpt.dgnp -dataset reddit-sim -scale 0.5
//	curl 'localhost:8399/predict?vertex=17'
//	curl 'localhost:8399/embed?vertex=17'
//	curl 'localhost:8399/stats'
//
// By default inference is exact (full k-hop neighborhoods — bit-identical
// to a full-graph forward pass of the trained model); -fanouts switches to
// DGL-style sampled neighborhoods for latency at scale.
//
// Sharded serving (-shards N) splits the engine across N ranks: each rank
// owns one vertex partition and its feature slice, any rank routes requests
// to the owner, and halo features cross the comm fabric (see README
// "Sharded serving"). Exact-mode logits stay bit-identical to a
// single-process server:
//
//	distgnn-serve -checkpoint ckpt.dgnp -shards 2 -transport tcp -spawn-local ...
//	distgnn-serve -checkpoint ckpt.dgnp -shards 2 -transport inproc ...
//	curl 'localhost:8399/predict?vertex=17'   # rank 0
//	curl 'localhost:8400/predict?vertex=17'   # rank 1 — same bytes
//
// Replicated serving (-replicas R) runs R bit-identical copies of the
// engine (or of the whole shard fleet) behind a consistent-hash frontend
// on -addr: vertices hash to a shard group, the frontend load-balances
// across the group's replicas with power-of-two-choices and fails over
// when a replica dies, and POST /reload (with -reload) hot-swaps every
// replica to a new checkpoint with zero dropped requests:
//
//	distgnn-serve -checkpoint ckpt.dgnp -shards 2 -replicas 2 ...
//	distgnn-serve -checkpoint ckpt.dgnp -shards 2 -replicas 2 -transport tcp -spawn-local -reload ...
//	curl 'localhost:8399/predict?vertex=17'             # frontend
//	curl -X POST 'localhost:8399/reload?checkpoint=new.dgnp'
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/graphio"
	"distgnn/internal/obs"
	"distgnn/internal/parallel"
	"distgnn/internal/quant"
	"distgnn/internal/serve"
)

func main() {
	checkpoint := flag.String("checkpoint", "", "trained model parameters written by distgnn-train -save (required)")
	dataset := flag.String("dataset", "reddit-sim",
		"dataset name: "+strings.Join(datasets.Names(), ", "))
	scale := flag.Float64("scale", 0.5, "dataset scale factor (must match training)")
	file := flag.String("file", "", "load a dataset file written by distgnn-datagen instead of generating")
	arch := flag.String("arch", "graphsage", "checkpoint architecture: graphsage or gat")
	hidden := flag.Int("hidden", 64, "hidden layer width (must match training)")
	layers := flag.Int("layers", 3, "number of layers (must match training)")
	heads := flag.Int("heads", 1, "gat: attention heads per layer (must match training)")
	outDim := flag.Int("out-dim", 0,
		"checkpoint output width when it differs from the dataset's class count (e.g. gat trained with classes padded to a -heads multiple); 0 = class count")
	fanouts := flag.String("fanouts", "",
		"comma-separated per-layer neighbor fanouts for sampled inference (e.g. 15,10,5); empty = exact full neighborhoods")
	addr := flag.String("addr", "127.0.0.1:8399", "HTTP listen address (shard mode: rank r defaults to port+r)")
	maxBatch := flag.Int("max-batch", 16, "request coalescer: max queries per micro-batch (1 disables coalescing)")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "request coalescer: max time a query waits for batch mates")
	featCacheMB := flag.Float64("feature-cache-mb", 64, "gathered-feature cache budget in MB (0 disables; shard mode: the halo feature cache)")
	featPrec := flag.String("feat-precision", "fp32",
		"feature storage: fp32, or bf16 (features rounded once into a 16-bit slab — half the resident feature bytes; single-process serving only)")
	embCacheMB := flag.Float64("embed-cache-mb", 16, "final-layer embedding cache budget in MB (0 disables)")
	workers := flag.Int("workers", 0,
		"kernel worker-pool size, the OMP_NUM_THREADS analogue (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "shard the engine across this many ranks (1 = single-process serving)")
	rank := flag.Int("rank", 0, "shard mode, tcp: this process's rank")
	transport := flag.String("transport", "inproc",
		"shard fabric: inproc (all shards in this process) or tcp (this process is one rank of a fleet)")
	peers := flag.String("peers", "",
		"shard mode: comma-separated rank→HTTP addresses; empty derives rank r as -addr's port+r")
	commPeers := flag.String("comm-peers", "",
		"shard mode, tcp: comma-separated rank→comm listen addresses; only the rank-0 entry (rendezvous registry) is required")
	commListen := flag.String("comm-listen", "",
		"shard mode, tcp: comm bind address override for this rank")
	spawnLocal := flag.Bool("spawn-local", false,
		"shard mode, tcp: fork -shards processes of this binary over loopback; this process serves rank 0")
	netTimeout := flag.Duration("net-timeout", comm.DefaultTCPTimeout,
		"shard mode, tcp: deadline for dial/handshake/send/recv/barrier operations")
	partSeed := flag.Int64("partition-seed", 1,
		"shard mode: seed of the deterministic vertex-cut partitioning every rank derives")
	replicas := flag.Int("replicas", 1,
		"run this many bit-identical replicas of the engine (or shard fleet) behind a consistent-hash frontend on -addr; backends take ports addr+1..addr+shards*replicas")
	frontendOn := flag.Bool("frontend", false,
		"serve the replicated frontend even with -replicas 1 (implied by -replicas >1)")
	reloadOn := flag.Bool("reload", false,
		"enable POST /reload checkpoint hot-swapping (reads server-side files via ?checkpoint=path)")
	updatesOn := flag.Bool("updates", false,
		"enable POST /update streaming edge inserts (exact mode only; in shard mode the entry rank fans each batch out to the fleet)")
	compactThreshold := flag.Int("compact-threshold", 0,
		"overlay edges that trigger background compaction into the base CSR (0 = default 4096, negative disables auto-compaction)")
	metricsOn := flag.Bool("metrics", true,
		"expose GET /metrics (Prometheus text exposition) on every HTTP endpoint")
	traceOn := flag.Bool("trace", false,
		"per-request tracing: stage spans, GET /debug/trace/recent, cross-rank trace IDs on halo fetches")
	slowLog := flag.String("slow-log", "",
		"JSONL slow-request log path; each process appends to the path with its own instance tag spliced before the extension (requires -trace)")
	slowThreshold := flag.Duration("slow-threshold", 0,
		"minimum request duration for the slow log (0 logs every traced request)")
	traceRing := flag.Int("trace-ring", 256, "recent-trace ring size behind /debug/trace/recent")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")
	flag.Parse()

	if *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint is required (train one with: distgnn-train -save model.dgnp)"))
	}
	if *workers > 0 {
		parallel.Configure(parallel.Config{Workers: *workers})
	}

	cfg := serve.Config{
		Arch:              serve.Arch(*arch),
		Hidden:            *hidden,
		NumLayers:         *layers,
		NumHeads:          *heads,
		OutDim:            *outDim,
		MaxBatch:          *maxBatch,
		MaxWait:           *maxWait,
		FeatureCacheBytes: int64(*featCacheMB * (1 << 20)),
		EmbedCacheBytes:   int64(*embCacheMB * (1 << 20)),
	}
	switch *featPrec {
	case "fp32":
		cfg.FeatPrecision = quant.FP32
	case "bf16":
		cfg.FeatPrecision = quant.BF16
	default:
		fatal(fmt.Errorf("unknown -feat-precision %q (fp32 or bf16)", *featPrec))
	}
	cfg.EnableReload = *reloadOn
	cfg.EnableUpdates = *updatesOn
	cfg.CompactThreshold = *compactThreshold
	var err error
	cfg.Fanouts, err = parseFanouts(*fanouts)
	if err != nil {
		fatal(err)
	}
	obsf := obsOptions{
		metrics: *metricsOn, trace: *traceOn, pprof: *pprofOn,
		slowLog: *slowLog, slowThreshold: *slowThreshold, ring: *traceRing,
	}

	if *replicas > 1 || *frontendOn {
		if *updatesOn {
			// Each replica group holds independent mutation state; an update
			// landing on one group would silently diverge the others.
			fatal(fmt.Errorf("-updates is not supported behind the replicated frontend (drop -replicas/-frontend)"))
		}
		runReplicated(cfg, replicatedOpts{
			checkpoint: *checkpoint, dataset: *dataset, scale: *scale, file: *file,
			addr: *addr, shards: *shards, replicas: *replicas,
			transport: *transport, spawnLocal: *spawnLocal, partSeed: *partSeed,
			obs: obsf,
		})
		return
	}

	// TCP shard rendezvous starts before the (deterministic) dataset
	// generation so spawned ranks overlap their graph builds.
	var tr comm.Transport
	var children []*exec.Cmd
	var httpAddrs []string
	tcpMode := *transport == "tcp" && *shards > 1
	if *shards > 1 {
		httpAddrs, err = shardHTTPAddrs(*peers, *addr, *shards)
		if err != nil {
			fatal(err)
		}
	}
	switch {
	case *transport != "inproc" && *transport != "tcp":
		fatal(fmt.Errorf("unknown -transport %q (inproc or tcp)", *transport))
	case tcpMode:
		tr, children, err = setupTCP(*shards, *rank, *commPeers, *commListen, httpAddrs, *spawnLocal, *netTimeout)
		if err != nil {
			fatal(err)
		}
	case *spawnLocal:
		fatal(fmt.Errorf("-spawn-local requires -transport tcp and -shards >1"))
	}

	ds, name, err := loadDataset(*file, *dataset, *scale)
	if err != nil {
		fatal(err)
	}

	verbose := !tcpMode || *rank == 0
	if verbose {
		fmt.Printf("dataset %s: %d vertices, %d edges (avg degree %.1f), %d features, %d classes\n",
			name, ds.G.NumVertices, ds.G.NumEdges, ds.G.AvgDegree(),
			ds.Features.Cols, ds.NumClasses)
	}

	if *shards <= 1 {
		ckpt, err := os.Open(*checkpoint)
		if err != nil {
			fatal(err)
		}
		scfg := cfg
		scfg.Metrics, scfg.Tracer = obsf.wire("server", -1, portTag(*addr))
		srv, err := serve.New(ds, ckpt, scfg)
		ckpt.Close()
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("model %s from %s, inference mode %s\n",
			srv.Engine().Spec(), *checkpoint, srv.Engine().Mode())
		fmt.Printf("coalescer: max batch %d, max wait %v; caches: features %.0f MB, embeddings %.0f MB\n",
			*maxBatch, *maxWait, *featCacheMB, *embCacheMB)
		fmt.Printf("serving %s on http://%s\n", obsf.endpoints(), *addr)
		if err := http.ListenAndServe(*addr, obsf.handler(srv.Handler())); err != nil {
			fatal(err)
		}
		return
	}

	ckptBytes, err := os.ReadFile(*checkpoint)
	if err != nil {
		fatal(err)
	}
	httpPeers := make([]serve.PeerAddr, *shards)
	for r := range httpPeers {
		httpPeers[r] = serve.PeerAddr{Rank: r, Addr: httpAddrs[r]}
	}
	mkShard := func(r int, fabric comm.Transport) *serve.Server {
		scfg := cfg
		scfg.Metrics, scfg.Tracer = obsf.wire("server", r, "rank"+strconv.Itoa(r)+"-"+portTag(httpAddrs[r]))
		srv, err := serve.NewShard(ds, bytes.NewReader(ckptBytes), scfg, serve.ShardConfig{
			Rank: r, Shards: *shards, Transport: fabric,
			HTTPPeers: httpPeers, PartitionSeed: *partSeed,
		})
		if err != nil {
			fatal(err)
		}
		return srv
	}

	if tcpMode {
		srv := mkShard(*rank, tr)
		st := srv.StatsSnapshot().Shard
		fmt.Printf("shard rank %d/%d (tcp): owns %d vertices, static halo %d, model %s\n",
			*rank, *shards, st.OwnedVertices, st.HaloVerticesStatic, srv.Engine().Spec())
		fmt.Printf("serving %s on http://%s\n", obsf.endpoints(), httpAddrs[*rank])
		err := http.ListenAndServe(httpAddrs[*rank], obsf.handler(srv.Handler()))
		comm.KillRanks(children)
		fatal(err)
	}

	// inproc: every shard a goroutine in this process over the shared
	// mailbox fabric — partition parallelism without process management.
	fabric := comm.NewProcTransport(*shards)
	errc := make(chan error, *shards)
	for r := 0; r < *shards; r++ {
		srv := mkShard(r, fabric)
		st := srv.StatsSnapshot().Shard
		fmt.Printf("shard rank %d/%d (inproc): owns %d vertices, static halo %d, serving on http://%s\n",
			r, *shards, st.OwnedVertices, st.HaloVerticesStatic, httpAddrs[r])
		go func(r int, srv *serve.Server) {
			errc <- http.ListenAndServe(httpAddrs[r], obsf.handler(srv.Handler()))
		}(r, srv)
	}
	fmt.Printf("model %s, %d shards, endpoints %s\n",
		serve.Arch(*arch), *shards, obsf.endpoints())
	fatal(<-errc)
}

// loadDataset loads -file (a distgnn-datagen artifact) or regenerates the
// named dataset deterministically.
func loadDataset(file, dataset string, scale float64) (*datasets.Dataset, string, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ds, err := graphio.ReadDataset(f)
		return ds, file, err
	}
	ds, err := datasets.Load(dataset, scale)
	return ds, dataset, err
}

// replicatedOpts carries the topology flags into the replicated runner.
type replicatedOpts struct {
	checkpoint, dataset, file string
	scale                     float64
	addr                      string
	shards, replicas          int
	transport                 string
	spawnLocal                bool
	partSeed                  int64
	obs                       obsOptions
}

// obsOptions carries the observability flags: each server instance (rank,
// replica, or frontend) wires its own registry and tracer so scrape-time
// metric funcs read that instance's counters and slow logs never interleave.
type obsOptions struct {
	metrics       bool
	trace         bool
	pprof         bool
	slowLog       string
	slowThreshold time.Duration
	ring          int
}

// wire builds one instance's registry and tracer (nil when the respective
// leg is off — the obs plane's disabled-is-free contract). The slow log
// lands in a per-instance file keyed by tag (e.g. "rank0-8400",
// "frontend-8399"), so spawned ranks sharing the flag never share a file.
func (o obsOptions) wire(role string, rank int, tag string) (*obs.Registry, *obs.Tracer) {
	var reg *obs.Registry
	if o.metrics {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if o.trace {
		tcfg := obs.TracerConfig{
			Role: role, Rank: rank, RingSize: o.ring, SlowThreshold: o.slowThreshold,
		}
		if o.slowLog != "" {
			f, err := os.OpenFile(slowLogPath(o.slowLog, tag),
				os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			tcfg.SlowLog = f // process-lifetime writer; closed on exit
		}
		tracer = obs.NewTracer(tcfg)
	}
	return reg, tracer
}

// handler wraps a server's mux with the /debug/pprof/ endpoints under
// -pprof; otherwise the mux is served as-is.
func (o obsOptions) handler(h http.Handler) http.Handler {
	if !o.pprof {
		return h
	}
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// endpoints renders the endpoint list for startup banners.
func (o obsOptions) endpoints() string {
	s := "/predict /embed /stats /healthz"
	if o.metrics {
		s += " /metrics"
	}
	if o.trace {
		s += " /debug/trace/recent"
	}
	if o.pprof {
		s += " /debug/pprof/"
	}
	return s
}

// slowLogPath splices the instance tag before the path's extension:
// slow.jsonl + rank1-8401 → slow.rank1-8401.jsonl.
func slowLogPath(path, tag string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + tag + ext
}

// portTag extracts the port of a listen address for instance tagging.
func portTag(addr string) string {
	if _, port, err := net.SplitHostPort(addr); err == nil {
		return port
	}
	return strings.NewReplacer("/", "_", ":", "_").Replace(addr)
}

// runReplicated stands up R bit-identical serving replicas (single servers,
// or whole shard fleets when -shards >1) behind the consistent-hash
// frontend on -addr. Backend b = rep*shards + rank listens on -addr's
// port + 1 + b, so the frontend knows every address up front.
//
// inproc: every backend runs in this process (fleets each get their own
// mailbox fabric). tcp requires -spawn-local: this process serves ONLY the
// frontend and forks the shards×replicas backends; each fleet rendezvouses
// through its own pre-reserved comm registry port. Either way the replicas
// share the checkpoint and partition seed, so they are bit-identical and
// any of them can answer for its group.
func runReplicated(cfg serve.Config, o replicatedOpts) {
	S, R := o.shards, o.replicas
	if S < 1 || R < 1 {
		fatal(fmt.Errorf("-shards and -replicas must be ≥1"))
	}
	backends, err := shardHTTPAddrs("", o.addr, S*R+1)
	if err != nil {
		fatal(err)
	}
	backends = backends[1:] // index 0 is the frontend itself
	groups := make([]serve.GroupSpec, S)
	for g := range groups {
		groups[g].Key = fmt.Sprintf("group-%d", g)
		for rep := 0; rep < R; rep++ {
			groups[g].Replicas = append(groups[g].Replicas, backends[rep*S+g])
		}
	}

	switch o.transport {
	case "inproc":
		ds, name, err := loadDataset(o.file, o.dataset, o.scale)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dataset %s: %d vertices, %d edges, %d features, %d classes\n",
			name, ds.G.NumVertices, ds.G.NumEdges, ds.Features.Cols, ds.NumClasses)
		ckptBytes, err := os.ReadFile(o.checkpoint)
		if err != nil {
			fatal(err)
		}
		for rep := 0; rep < R; rep++ {
			var httpPeers []serve.PeerAddr
			for r := 0; r < S; r++ {
				httpPeers = append(httpPeers, serve.PeerAddr{Rank: r, Addr: backends[rep*S+r]})
			}
			var fabric comm.Transport
			if S > 1 {
				fabric = comm.NewProcTransport(S)
			}
			for r := 0; r < S; r++ {
				addr := backends[rep*S+r]
				scfg := cfg
				scfg.Metrics, scfg.Tracer = o.obs.wire("server", r,
					"rank"+strconv.Itoa(r)+"-"+portTag(addr))
				var srv *serve.Server
				if S == 1 {
					srv, err = serve.New(ds, bytes.NewReader(ckptBytes), scfg)
				} else {
					srv, err = serve.NewShard(ds, bytes.NewReader(ckptBytes), scfg, serve.ShardConfig{
						Rank: r, Shards: S, Transport: fabric,
						HTTPPeers: httpPeers, PartitionSeed: o.partSeed,
					})
				}
				if err != nil {
					fatal(err)
				}
				fmt.Printf("replica %d rank %d/%d on http://%s\n", rep, r, S, addr)
				go func(addr string, srv *serve.Server) {
					fatal(http.ListenAndServe(addr, o.obs.handler(srv.Handler())))
				}(addr, srv)
			}
		}
	case "tcp":
		if !o.spawnLocal {
			fatal(fmt.Errorf("replicated tcp serving requires -spawn-local (the frontend forks the backend fleets)"))
		}
		// Each fleet rendezvouses through its own registry address,
		// reserved here so every child can be told where to meet.
		registries := make([]string, R)
		for rep := range registries {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			registries[rep] = ln.Addr().String()
			ln.Close()
		}
		children, err := comm.SpawnLocalRanks(S*R+1, func(i int) []string {
			rep, r := (i-1)/S, (i-1)%S
			args := []string{
				"-frontend=false", "-replicas=1", "-spawn-local=false",
				fmt.Sprintf("-shards=%d", S), fmt.Sprintf("-rank=%d", r),
				"-addr=" + backends[rep*S+r],
			}
			if S > 1 {
				fleet := backends[rep*S : rep*S+S]
				args = append(args, "-transport=tcp", "-peers="+strings.Join(fleet, ","))
				if r == 0 {
					args = append(args, "-comm-listen="+registries[rep], "-comm-peers=")
				} else {
					args = append(args, "-comm-listen=", "-comm-peers="+registries[rep])
				}
			} else {
				args = append(args, "-transport=inproc")
			}
			return args
		})
		if err != nil {
			fatal(err)
		}
		comm.KillRanksOnSignal(children)
	default:
		fatal(fmt.Errorf("unknown -transport %q (inproc or tcp)", o.transport))
	}

	freg, ftracer := o.obs.wire("frontend", -1, "frontend-"+portTag(o.addr))
	f, err := serve.NewFrontend(serve.FrontendConfig{
		Groups: groups, Metrics: freg, Tracer: ftracer,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("frontend: %d shard groups × %d replicas, endpoints %s /reload on http://%s\n",
		S, R, o.obs.endpoints(), o.addr)
	fatal(http.ListenAndServe(o.addr, o.obs.handler(f.Handler())))
}

// shardHTTPAddrs resolves the fleet's HTTP addresses: an explicit -peers
// list, or rank r at base's port + r.
func shardHTTPAddrs(peers, base string, shards int) ([]string, error) {
	if peers != "" {
		list := strings.Split(peers, ",")
		if len(list) != shards {
			return nil, fmt.Errorf("-peers lists %d addresses for %d shards", len(list), shards)
		}
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		return list, nil
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("bad -addr %q: %v", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("bad -addr port %q: %v", portStr, err)
	}
	out := make([]string, shards)
	for r := range out {
		out[r] = net.JoinHostPort(host, strconv.Itoa(port+r))
	}
	return out, nil
}

// setupTCP builds this rank's comm endpoint and, under -spawn-local, forks
// the nonzero ranks (this process serves rank 0). The returned transport is
// fully established.
func setupTCP(shards, rank int, commPeers, commListen string, httpAddrs []string,
	spawnLocal bool, timeout time.Duration) (comm.Transport, []*exec.Cmd, error) {
	var peerList []string
	if commPeers != "" {
		peerList = strings.Split(commPeers, ",")
	}
	if spawnLocal && rank != 0 {
		return nil, nil, fmt.Errorf("-spawn-local is the rank-0 parent; it cannot run as rank %d", rank)
	}
	tr, err := comm.NewTCPTransport(comm.TCPConfig{
		Rank: rank, N: shards, Peers: peerList, Listen: commListen, Timeout: timeout,
	})
	if err != nil {
		return nil, nil, err
	}

	var children []*exec.Cmd
	if spawnLocal {
		// Children get the full HTTP peer table and the parent's comm
		// registry; the parent's -comm-listen is its own address and must
		// not be inherited.
		children, err = comm.SpawnLocalRanks(shards, func(r int) []string {
			return []string{
				"-spawn-local=false", "-transport=tcp", "-comm-listen=",
				fmt.Sprintf("-rank=%d", r),
				"-comm-peers=" + tr.Addr(),
				"-peers=" + strings.Join(httpAddrs, ","),
				"-addr=" + httpAddrs[r],
			}
		})
		if err != nil {
			tr.Close()
			return nil, nil, err
		}
		// The parent serves forever; a SIGINT/SIGTERM must not orphan the
		// other ranks.
		comm.KillRanksOnSignal(children)
	}

	if err := tr.Establish(); err != nil {
		tr.Close()
		comm.KillRanks(children)
		return nil, nil, err
	}
	return tr, children, nil
}

func parseFanouts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -fanouts %q: each entry must be a positive integer", s)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distgnn-serve:", err)
	os.Exit(1)
}
