// Command distgnn-serve answers online inference queries against a trained
// distgnn-train checkpoint over HTTP: per-vertex class predictions and
// final-layer embeddings, with request coalescing into micro-batches and a
// concurrent byte-budgeted feature/embedding cache.
//
// The dataset flags must regenerate (or load) the graph the checkpoint was
// trained on, and -arch/-hidden/-layers/-heads must match the trainer's
// flags — distgnn-train prints them next to "checkpoint written", and this
// command fails fast on any mismatch.
//
// Examples:
//
//	distgnn-train -dataset reddit-sim -scale 0.5 -epochs 50 -save ckpt.dgnp
//	distgnn-serve -checkpoint ckpt.dgnp -dataset reddit-sim -scale 0.5
//	curl 'localhost:8399/predict?vertex=17'
//	curl 'localhost:8399/embed?vertex=17'
//	curl 'localhost:8399/stats'
//
// By default inference is exact (full k-hop neighborhoods — bit-identical
// to a full-graph forward pass of the trained model); -fanouts switches to
// DGL-style sampled neighborhoods for latency at scale.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/graphio"
	"distgnn/internal/parallel"
	"distgnn/internal/serve"
)

func main() {
	checkpoint := flag.String("checkpoint", "", "trained model parameters written by distgnn-train -save (required)")
	dataset := flag.String("dataset", "reddit-sim",
		"dataset name: "+strings.Join(datasets.Names(), ", "))
	scale := flag.Float64("scale", 0.5, "dataset scale factor (must match training)")
	file := flag.String("file", "", "load a dataset file written by distgnn-datagen instead of generating")
	arch := flag.String("arch", "graphsage", "checkpoint architecture: graphsage or gat")
	hidden := flag.Int("hidden", 64, "hidden layer width (must match training)")
	layers := flag.Int("layers", 3, "number of layers (must match training)")
	heads := flag.Int("heads", 1, "gat: attention heads per layer (must match training)")
	outDim := flag.Int("out-dim", 0,
		"checkpoint output width when it differs from the dataset's class count (e.g. gat trained with classes padded to a -heads multiple); 0 = class count")
	fanouts := flag.String("fanouts", "",
		"comma-separated per-layer neighbor fanouts for sampled inference (e.g. 15,10,5); empty = exact full neighborhoods")
	addr := flag.String("addr", "127.0.0.1:8399", "HTTP listen address")
	maxBatch := flag.Int("max-batch", 16, "request coalescer: max queries per micro-batch (1 disables coalescing)")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "request coalescer: max time a query waits for batch mates")
	featCacheMB := flag.Float64("feature-cache-mb", 64, "gathered-feature cache budget in MB (0 disables)")
	embCacheMB := flag.Float64("embed-cache-mb", 16, "final-layer embedding cache budget in MB (0 disables)")
	workers := flag.Int("workers", 0,
		"kernel worker-pool size, the OMP_NUM_THREADS analogue (0 = GOMAXPROCS)")
	flag.Parse()

	if *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint is required (train one with: distgnn-train -save model.dgnp)"))
	}
	if *workers > 0 {
		parallel.Configure(parallel.Config{Workers: *workers})
	}

	var ds *datasets.Dataset
	var err error
	name := *dataset
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			fatal(ferr)
		}
		ds, err = graphio.ReadDataset(f)
		f.Close()
		name = *file
	} else {
		ds, err = datasets.Load(*dataset, *scale)
	}
	if err != nil {
		fatal(err)
	}

	fo, err := parseFanouts(*fanouts)
	if err != nil {
		fatal(err)
	}

	ckpt, err := os.Open(*checkpoint)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(ds, ckpt, serve.Config{
		Arch:              serve.Arch(*arch),
		Hidden:            *hidden,
		NumLayers:         *layers,
		NumHeads:          *heads,
		OutDim:            *outDim,
		Fanouts:           fo,
		MaxBatch:          *maxBatch,
		MaxWait:           *maxWait,
		FeatureCacheBytes: int64(*featCacheMB * (1 << 20)),
		EmbedCacheBytes:   int64(*embCacheMB * (1 << 20)),
	})
	ckpt.Close()
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	fmt.Printf("dataset %s: %d vertices, %d edges (avg degree %.1f), %d features, %d classes\n",
		name, ds.G.NumVertices, ds.G.NumEdges, ds.G.AvgDegree(),
		ds.Features.Cols, ds.NumClasses)
	fmt.Printf("model %s from %s, inference mode %s\n",
		srv.Engine().Spec(), *checkpoint, srv.Engine().Mode())
	fmt.Printf("coalescer: max batch %d, max wait %v; caches: features %.0f MB, embeddings %.0f MB\n",
		*maxBatch, *maxWait, *featCacheMB, *embCacheMB)
	fmt.Printf("serving /predict /embed /stats /healthz on http://%s\n", *addr)

	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func parseFanouts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -fanouts %q: each entry must be a positive integer", s)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distgnn-serve:", err)
	os.Exit(1)
}
