// Command distgnn-train trains GraphSAGE full-batch on a synthetic
// benchmark dataset, either on a single simulated socket or distributed
// across simulated sockets with one of the paper's three algorithms.
//
// Examples:
//
//	distgnn-train -dataset reddit-sim -epochs 50 -lr 0.01
//	distgnn-train -dataset ogbn-products-sim -sockets 8 -algo cd-r -delay 5
//	distgnn-train -dataset ogbn-products-sim -sockets 8 -algo cd-rs -delay 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distgnn/internal/datasets"
	"distgnn/internal/graphio"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/train"
)

func main() {
	dataset := flag.String("dataset", "reddit-sim",
		"dataset name: "+strings.Join(datasets.Names(), ", "))
	scale := flag.Float64("scale", 0.5, "dataset scale factor")
	file := flag.String("file", "", "load a dataset file written by distgnn-datagen instead of generating")
	sockets := flag.Int("sockets", 1, "number of simulated CPU sockets (partitions)")
	algo := flag.String("algo", "cd-0", "distributed algorithm: 0c, cd-0, cd-r, cd-rs (nonblocking overlap)")
	delay := flag.Int("delay", 5, "delay r for cd-r/cd-rs")
	forceSync := flag.Bool("force-sync-overlap", false,
		"cd-rs only: charge every nonblocking transfer as if synchronous (conformance/debug)")
	epochs := flag.Int("epochs", 30, "training epochs")
	lr := flag.Float64("lr", 0.01, "learning rate")
	wd := flag.Float64("wd", 5e-4, "weight decay")
	adam := flag.Bool("adam", true, "use Adam (false = SGD)")
	hidden := flag.Int("hidden", 64, "hidden layer width")
	layers := flag.Int("layers", 3, "number of GraphSAGE layers")
	seed := flag.Int64("seed", 1, "random seed")
	save := flag.String("save", "", "write trained model parameters to this file (single-socket mode)")
	workers := flag.Int("workers", 0,
		"kernel worker-pool size, the OMP_NUM_THREADS analogue (0 = GOMAXPROCS)")
	autotune := flag.Bool("autotune", false,
		"benchmark aggregation-kernel variants on the dataset and use the fastest (replaces the built-in heuristic)")
	flag.Parse()

	var ds *datasets.Dataset
	var err error
	name := *dataset
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			fatal(ferr)
		}
		ds, err = graphio.ReadDataset(f)
		f.Close()
		name = *file
	} else {
		ds, err = datasets.Load(*dataset, *scale)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: %d vertices, %d edges (avg degree %.1f), %d features, %d classes\n",
		name, ds.G.NumVertices, ds.G.NumEdges, ds.G.AvgDegree(),
		ds.Features.Cols, ds.NumClasses)

	mc := model.Config{Hidden: *hidden, NumLayers: *layers, Seed: *seed, AutoTuneAgg: *autotune}
	if *sockets <= 1 {
		res, err := train.SingleSocket(ds, train.SingleConfig{
			Model: mc, Epochs: *epochs, LR: *lr, WeightDecay: *wd, UseAdam: *adam,
			Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		for e, st := range res.Epochs {
			if e%5 == 0 || e == len(res.Epochs)-1 {
				fmt.Printf("epoch %3d  loss %.4f  time %v (AP %v)\n",
					e, st.Loss, st.Total, st.Agg)
			}
		}
		fmt.Printf("accuracy: train %.2f%%  val %.2f%%  test %.2f%%\n",
			100*res.TrainAcc, 100*res.ValAcc, 100*res.TestAcc)
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				fatal(err)
			}
			if err := nn.WriteParams(f, res.Model.Params()); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("checkpoint written to %s\n", *save)
		}
		return
	}

	res, err := train.Distributed(ds, train.DistConfig{
		Model: mc, NumPartitions: *sockets, Algo: train.Algorithm(*algo),
		Delay: *delay, Epochs: *epochs, LR: *lr, WeightDecay: *wd,
		UseAdam: *adam, Seed: *seed, Workers: *workers,
		ForceSyncOverlap: *forceSync,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("partitioning: replication factor %.2f, edge balance %.3f\n",
		res.Replication, res.EdgeBalance)
	for e, st := range res.Epochs {
		if e%5 == 0 || e == len(res.Epochs)-1 {
			fmt.Printf("epoch %3d  loss %.4f  sim epoch %.3fms (LAT %.3fms RAT %.3fms)\n",
				e, st.Loss, st.Epoch*1e3, st.LAT*1e3, st.RAT*1e3)
		}
	}
	fmt.Printf("accuracy: train %.2f%%  test %.2f%%\n", 100*res.TrainAcc, 100*res.TestAcc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distgnn-train:", err)
	os.Exit(1)
}
