// Command distgnn-train trains GraphSAGE on a synthetic benchmark
// dataset: full-batch on a single socket, full-batch distributed across
// in-process simulated sockets or a true multi-process TCP fleet, or
// neighbor-sampled mini-batch (-minibatch) with training vertices and
// features sharded across ranks (-shards) over the shared featstore
// plane — halo feature rows fetched from owning peers with an LRU cache
// and one-batch prefetch overlapping compute.
//
// Examples:
//
//	distgnn-train -dataset reddit-sim -epochs 50 -lr 0.01
//	distgnn-train -dataset ogbn-products-sim -sockets 8 -algo cd-r -delay 5
//	distgnn-train -dataset ogbn-products-sim -sockets 8 -algo cd-rs -delay 5
//	distgnn-train -minibatch -fanouts 10,5 -batch 512 -shards 4
//	distgnn-train -minibatch -shards 2 -transport tcp -spawn-local
//
// Mini-batch runs are seed-reproducible: given the same -seed and rank
// count, the final model parameters are bit-identical whether features
// are sharded or replicated and whether the fleet is in-process or TCP
// (each rank's sampler is seeded seed+rank; gradients are AllReduced in
// rank order). Changing the rank count changes the sampler-seed set and
// the global batch composition, so it legitimately changes the trajectory.
//
// True multi-process training over TCP (see README "Running true
// multi-process training"): every process runs this same binary with its
// own -rank; only rank 0's address must be known (the rendezvous
// registry), and -spawn-local forks the whole fleet on one machine:
//
//	distgnn-train -transport tcp -spawn-local -sockets 2 -algo cd-rs -delay 5
//	distgnn-train -transport tcp -sockets 2 -rank 0 -peers 10.0.0.1:9000 ... # on host A
//	distgnn-train -transport tcp -sockets 2 -rank 1 -peers 10.0.0.1:9000 ... # on host B
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/graphio"
	"distgnn/internal/minibatch"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/obs"
	"distgnn/internal/quant"
	"distgnn/internal/train"
)

func main() {
	dataset := flag.String("dataset", "reddit-sim",
		"dataset name: "+strings.Join(datasets.Names(), ", "))
	scale := flag.Float64("scale", 0.5, "dataset scale factor")
	file := flag.String("file", "", "load a dataset file written by distgnn-datagen instead of generating")
	sockets := flag.Int("sockets", 1, "number of CPU sockets (partitions / ranks)")
	algo := flag.String("algo", "cd-0", "distributed algorithm: 0c, cd-0, cd-r, cd-rs (nonblocking overlap)")
	delay := flag.Int("delay", 5, "delay r for cd-r/cd-rs")
	forceSync := flag.Bool("force-sync-overlap", false,
		"cd-rs only: charge every nonblocking transfer as if synchronous (conformance/debug)")
	epochs := flag.Int("epochs", 30, "training epochs")
	lr := flag.Float64("lr", 0.01, "learning rate")
	wd := flag.Float64("wd", 5e-4, "weight decay")
	adam := flag.Bool("adam", true, "use Adam (false = SGD)")
	hidden := flag.Int("hidden", 64, "hidden layer width")
	layers := flag.Int("layers", 3, "number of GraphSAGE layers")
	seed := flag.Int64("seed", 1, "random seed")
	save := flag.String("save", "", "write trained model parameters to this file (single-socket mode)")
	workers := flag.Int("workers", 0,
		"kernel worker-pool size, the OMP_NUM_THREADS analogue (0 = GOMAXPROCS)")
	autotune := flag.Bool("autotune", false,
		"benchmark aggregation-kernel variants on the dataset and use the fastest (replaces the built-in heuristic)")
	tuneCache := flag.String("tune-cache", "",
		"with -autotune: directory of persisted tuning profiles keyed by (dataset, width, workers, machine); a valid profile skips the sweep")
	featPrec := flag.String("feat-precision", "fp32",
		"input-feature storage: fp32, or bf16 (features rounded once into a 16-bit slab the aggregation kernels decode on load; single-socket only)")
	transport := flag.String("transport", "inproc",
		"comm fabric for -sockets >1: inproc (every rank a goroutine in this process) or tcp (this process is one rank of a multi-process fleet)")
	rank := flag.Int("rank", 0, "tcp: this process's rank")
	peers := flag.String("peers", "",
		"tcp: comma-separated rank→listen addresses; only the rank-0 entry is required (rendezvous registry), others default to ephemeral loopback ports")
	listen := flag.String("listen", "",
		"tcp: bind address override for this rank (cross-machine ranks bind a routable interface here)")
	advertise := flag.String("advertise", "",
		"tcp: routable host:port this rank registers with the rendezvous (defaults to the bound address)")
	spawnLocal := flag.Bool("spawn-local", false,
		"tcp: fork -sockets processes of this binary over loopback; this process trains rank 0")
	netTimeout := flag.Duration("net-timeout", comm.DefaultTCPTimeout,
		"tcp: deadline for dial/handshake/send/recv/barrier operations")
	mb := flag.Bool("minibatch", false,
		"neighbor-sampled mini-batch GraphSAGE training (Dist-DGL style) instead of full-batch; layer count comes from -fanouts, not -layers")
	fanouts := flag.String("fanouts", "10,5",
		"minibatch: per-hop neighbor fan-outs, seed hop first; one GraphSAGE layer per entry")
	batch := flag.Int("batch", 512, "minibatch: seed vertices per rank per step")
	shards := flag.Int("shards", 0,
		"minibatch: shard training vertices AND features across this many ranks (halo rows fetched over the comm fabric); 0 keeps features replicated over -sockets ranks")
	haloCache := flag.Int64("halo-cache", 32<<20,
		"minibatch -shards: per-rank LRU budget in bytes for fetched halo feature rows (≤0 disables)")
	telemetryPath := flag.String("telemetry", "",
		"write per-epoch training telemetry as JSONL here (speaking rank only); losses carry exact float64 bit patterns")
	metricsJSON := flag.String("metrics-json", "",
		"dump a JSON metrics snapshot here at exit (speaking rank only)")
	profileMode := flag.String("profile", "",
		"capture a pprof profile over the whole run: cpu or mem")
	profileOut := flag.String("profile-out", "",
		"profile output path (default distgnn-train.<mode>.pprof)")
	flag.Parse()

	if *mb && *transport == "tcp" && *shards <= 1 {
		fatal(fmt.Errorf("-minibatch over tcp requires -shards >1 (replicated mini-batch runs are in-process)"))
	}

	// TCP fabric setup happens before the (identical, deterministic)
	// dataset generation so spawned ranks start rendezvousing while the
	// parent builds its graph. Sharded mini-batch fleets are sized by
	// -shards; full-batch fleets by -sockets.
	fleet := *sockets
	if *mb && *shards > 1 {
		fleet = *shards
	}
	var tr comm.Transport
	var children []*exec.Cmd
	tcpMode := *transport == "tcp" && fleet > 1
	switch {
	case *transport != "inproc" && *transport != "tcp":
		fatal(fmt.Errorf("unknown -transport %q (inproc or tcp)", *transport))
	case tcpMode:
		var err error
		tr, children, err = setupTCP(fleet, *rank, *peers, *listen, *advertise, *spawnLocal, *netTimeout)
		if err != nil {
			fatal(err)
		}
	case *spawnLocal:
		fatal(fmt.Errorf("-spawn-local requires -transport tcp and more than one rank"))
	}
	// Rank 0 speaks for a TCP fleet; other ranks train silently.
	verbose := !tcpMode || *rank == 0

	// Telemetry and profiling follow the speaking rank: spawned ranks
	// inherit the parent's flags, so gating on verbose keeps them from
	// clobbering the same output files.
	tel := newTelemetry(*telemetryPath, *metricsJSON, verbose)
	stopProf := func() {}
	if verbose && *profileMode != "" {
		out := *profileOut
		if out == "" {
			out = "distgnn-train." + *profileMode + ".pprof"
		}
		stopProf = startProfile(*profileMode, out)
	}

	var ds *datasets.Dataset
	var err error
	name := *dataset
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			fatal(ferr)
		}
		ds, err = graphio.ReadDataset(f)
		f.Close()
		name = *file
	} else {
		ds, err = datasets.Load(*dataset, *scale)
	}
	if err != nil {
		fatal(err)
	}
	if verbose {
		fmt.Printf("dataset %s: %d vertices, %d edges (avg degree %.1f), %d features, %d classes\n",
			name, ds.G.NumVertices, ds.G.NumEdges, ds.G.AvgDegree(),
			ds.Features.Cols, ds.NumClasses)
	}

	prec, err := parseFeatPrecision(*featPrec)
	if err != nil {
		fatal(err)
	}
	if *mb {
		fo, err := parseFanouts(*fanouts)
		if err != nil {
			fatal(err)
		}
		cfg := minibatch.Config{
			Hidden: *hidden, NumLayers: len(fo), Fanouts: fo,
			BatchSize: *batch, Epochs: *epochs, LR: *lr, UseAdam: *adam,
			Seed: *seed, Workers: *workers, FeatPrecision: prec,
		}
		runMinibatch(ds, cfg, tr, children, *shards, *sockets, *haloCache, *seed, verbose, tel, stopProf)
		return
	}
	mc := model.Config{
		Hidden: *hidden, NumLayers: *layers, Seed: *seed,
		AutoTuneAgg: *autotune, TuneCacheDir: *tuneCache,
	}
	if *sockets <= 1 {
		res, err := train.SingleSocket(ds, train.SingleConfig{
			Model: mc, Epochs: *epochs, LR: *lr, WeightDecay: *wd, UseAdam: *adam,
			Workers: *workers, FeatPrecision: prec,
		})
		if err != nil {
			fatal(err)
		}
		for e, st := range res.Epochs {
			if e%5 == 0 || e == len(res.Epochs)-1 {
				fmt.Printf("epoch %3d  loss %.4f  time %v (AP %v)\n",
					e, st.Loss, st.Total, st.Agg)
			}
		}
		fmt.Printf("accuracy: train %.2f%%  val %.2f%%  test %.2f%%\n",
			100*res.TrainAcc, 100*res.ValAcc, 100*res.TestAcc)
		for e, st := range res.Epochs {
			tel.epoch(e, st.Loss, map[string]any{
				"wall_s": st.Total.Seconds(), "agg_s": st.Agg.Seconds(),
			})
		}
		tel.run(map[string]any{
			"mode": "single", "train_acc": res.TrainAcc, "val_acc": res.ValAcc,
			"test_acc": res.TestAcc, "test_acc_bits": obs.F64Bits(res.TestAcc),
		}, nil)
		tel.close()
		stopProf()
		checkFiniteLoss(res.Epochs[len(res.Epochs)-1].Loss)
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				fatal(err)
			}
			if err := nn.WriteParams(f, res.Model.Params()); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			// Print the hyperparameters the serving side must repeat —
			// distgnn-serve fails fast when they disagree with the file.
			fmt.Printf("checkpoint written to %s (arch graphsage, in %d, hidden %d, layers %d, out %d)\n",
				*save, ds.Features.Cols, *hidden, *layers, ds.NumClasses)
			dsFlags := fmt.Sprintf("-dataset %s -scale %g", *dataset, *scale)
			if *file != "" {
				dsFlags = "-file " + *file
			}
			fmt.Printf("serve it with: distgnn-serve -checkpoint %s %s -hidden %d -layers %d\n",
				*save, dsFlags, *hidden, *layers)
		}
		return
	}

	if prec != quant.FP32 {
		// The distributed partial-aggregate exchange and its conformance
		// pins are defined over fp32 inputs.
		fatal(fmt.Errorf("-feat-precision %s requires -sockets 1 (distributed training is fp32-only)", *featPrec))
	}
	start := time.Now()
	res, err := train.Distributed(ds, train.DistConfig{
		Model: mc, NumPartitions: *sockets, Algo: train.Algorithm(*algo),
		Delay: *delay, Epochs: *epochs, LR: *lr, WeightDecay: *wd,
		UseAdam: *adam, Seed: *seed, Workers: *workers,
		ForceSyncOverlap: *forceSync,
		Transport:        tr,
	})
	if err != nil {
		comm.KillRanks(children)
		fatal(err)
	}
	wall := time.Since(start)
	if verbose {
		fmt.Printf("partitioning: replication factor %.2f, edge balance %.3f\n",
			res.Replication, res.EdgeBalance)
		for e, st := range res.Epochs {
			if e%5 == 0 || e == len(res.Epochs)-1 {
				fmt.Printf("epoch %3d  loss %.4f  sim epoch %.3fms (LAT %.3fms RAT %.3fms)\n",
					e, st.Loss, st.Epoch*1e3, st.LAT*1e3, st.RAT*1e3)
			}
		}
		if tcpMode {
			fmt.Printf("transport tcp: %d ranks, wall time %.2fs (%.3fs/epoch)\n",
				*sockets, wall.Seconds(), wall.Seconds()/float64(*epochs))
		}
		fmt.Printf("accuracy: train %.2f%%  test %.2f%%\n", 100*res.TrainAcc, 100*res.TestAcc)
	}
	for e, st := range res.Epochs {
		tel.epoch(e, st.Loss, map[string]any{
			"sim_epoch_s": st.Epoch, "lat_s": st.LAT, "rat_s": st.RAT,
			"exposed_net_s": st.ExposedNet, "param_sync_s": st.ParamSync,
		})
	}
	tel.run(map[string]any{
		"mode": "fullbatch-dist", "ranks": *sockets, "algo": *algo,
		"wall_s": wall.Seconds(), "replication": res.Replication,
		"edge_balance": res.EdgeBalance,
		"train_acc":    res.TrainAcc, "test_acc": res.TestAcc,
		"test_acc_bits": obs.F64Bits(res.TestAcc),
	}, tr)
	tel.close()
	stopProf()
	checkFiniteLoss(res.Epochs[len(res.Epochs)-1].Loss)
	if tr != nil {
		tr.Close()
	}
	waitChildren(children)
}

// runMinibatch drives neighbor-sampled mini-batch training: sharded
// features over the featstore plane when -shards >0 (inproc or one TCP
// rank of a fleet), replicated features over -sockets in-process ranks
// otherwise. Final parameters are bit-identical across rank counts and
// transports given the same -seed (the distributed-minibatch conformance
// pin), so the printed loss trace and accuracy are too.
func runMinibatch(ds *datasets.Dataset, cfg minibatch.Config, tr comm.Transport,
	children []*exec.Cmd, shards, sockets int, haloCache, seed int64, verbose bool,
	tel *telemetry, stopProf func()) {
	var res *minibatch.DistResult
	var err error
	start := time.Now()
	if shards > 0 {
		if verbose {
			fabric := "inproc"
			if tr != nil {
				fabric = "tcp"
			}
			fmt.Printf("minibatch: fanouts %v, batch %d/rank, %d shards (%s), halo cache %d MiB/rank\n",
				cfg.Fanouts, cfg.BatchSize, shards, fabric, haloCache>>20)
		}
		res, err = minibatch.TrainSharded(ds, minibatch.ShardedTrainConfig{
			DistConfig: minibatch.DistConfig{Config: cfg, NumRanks: shards},
			Transport:  tr, PartitionSeed: seed, CacheBytes: haloCache,
		})
	} else {
		if tr != nil {
			comm.KillRanks(children)
			fatal(fmt.Errorf("replicated -minibatch needs -shards to run over tcp"))
		}
		ranks := sockets
		if ranks < 1 {
			ranks = 1
		}
		if verbose {
			fmt.Printf("minibatch: fanouts %v, batch %d/rank, %d ranks (replicated features)\n",
				cfg.Fanouts, cfg.BatchSize, ranks)
		}
		res, err = minibatch.TrainDistributed(ds, minibatch.DistConfig{Config: cfg, NumRanks: ranks})
	}
	if err != nil {
		comm.KillRanks(children)
		fatal(err)
	}
	wall := time.Since(start)
	var hits, misses, fetchedVerts, fetchedBytes int64
	for _, hs := range res.HaloStats {
		hits += hs.HaloHits
		misses += hs.HaloMisses
		fetchedVerts += hs.HaloFetchedVertices
		fetchedBytes += hs.HaloFetchedBytes
	}
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	if verbose {
		for e, st := range res.Epochs {
			if e%5 == 0 || e == len(res.Epochs)-1 {
				fmt.Printf("epoch %3d  loss %.4f  time %v  steps %d  sampled-work %d\n",
					e, st.Loss, st.Time.Round(time.Millisecond), st.Steps, st.SampledWork)
			}
		}
		if hits+misses > 0 || fetchedVerts > 0 {
			fmt.Printf("halo: cache hit rate %.1f%% (%d rows fetched from peers)\n",
				100*rate, fetchedVerts)
		}
		fmt.Printf("accuracy: test %.2f%%  (wall %.2fs, %.3fs/epoch)\n",
			100*res.TestAcc, wall.Seconds(), wall.Seconds()/float64(len(res.Epochs)))
	}
	for e, st := range res.Epochs {
		tel.epoch(e, st.Loss, map[string]any{
			"wall_s": st.Time.Seconds(), "steps": st.Steps,
			"sampled_work": st.SampledWork, "allreduce_s": st.AllReduce.Seconds(),
		})
	}
	mode := "minibatch-replicated"
	if shards > 0 {
		mode = "minibatch-sharded"
	}
	tel.run(map[string]any{
		"mode": mode, "shards": shards, "wall_s": wall.Seconds(),
		"test_acc": res.TestAcc, "test_acc_bits": obs.F64Bits(res.TestAcc),
		"halo_hit_rate": rate, "halo_fetched_vertices": fetchedVerts,
		"halo_fetched_bytes": fetchedBytes,
	}, tr)
	tel.close()
	stopProf()
	checkFiniteLoss(res.Epochs[len(res.Epochs)-1].Loss)
	if tr != nil {
		tr.Close()
	}
	waitChildren(children)
}

// parseFanouts parses the -fanouts comma list ("10,5" → [10 5]).
func parseFanouts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	fo := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -fanouts %q: entries must be positive integers", s)
		}
		fo = append(fo, v)
	}
	return fo, nil
}

// setupTCP builds this process's TCP endpoint and, under -spawn-local,
// forks the nonzero ranks of the fleet (this process trains rank 0). The
// returned transport is fully established.
func setupTCP(sockets, rank int, peers, listen, advertise string, spawnLocal bool, timeout time.Duration) (comm.Transport, []*exec.Cmd, error) {
	var peerList []string
	if peers != "" {
		peerList = strings.Split(peers, ",")
	}
	if spawnLocal && rank != 0 {
		return nil, nil, fmt.Errorf("-spawn-local is the rank-0 parent; it cannot run as rank %d", rank)
	}
	tr, err := comm.NewTCPTransport(comm.TCPConfig{
		Rank: rank, N: sockets, Peers: peerList,
		Listen: listen, Advertise: advertise, Timeout: timeout,
	})
	if err != nil {
		return nil, nil, err
	}

	var children []*exec.Cmd
	if spawnLocal {
		// The parent's -listen/-advertise are its own addresses — children
		// must not inherit them (bind collisions, corrupt rendezvous table).
		children, err = comm.SpawnLocalRanks(sockets, func(r int) []string {
			return []string{
				"-spawn-local=false", "-transport=tcp",
				"-listen=", "-advertise=",
				fmt.Sprintf("-rank=%d", r), "-peers=" + tr.Addr(),
			}
		})
		if err != nil {
			tr.Close()
			return nil, nil, err
		}
	}

	if err := tr.Establish(); err != nil {
		tr.Close()
		comm.KillRanks(children)
		return nil, nil, err
	}
	return tr, children, nil
}

// waitChildren reaps spawned ranks and exits nonzero if any rank failed —
// the whole fleet is one training run.
func waitChildren(children []*exec.Cmd) {
	if err := comm.WaitRanks(children); err != nil {
		fmt.Fprintln(os.Stderr, "distgnn-train:", err)
		os.Exit(1)
	}
}

// checkFiniteLoss turns a numerically diverged run into a nonzero exit —
// what the CI multi-process smoke asserts on.
func checkFiniteLoss(loss float64) {
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		fatal(fmt.Errorf("training diverged: final loss %v is not finite", loss))
	}
}

// parseFeatPrecision maps the -feat-precision flag to a storage format.
// Only fp32 and bf16 are feature formats (fp16 is a wire format for
// gradients and partial aggregates, not a kernel input).
func parseFeatPrecision(s string) (quant.Precision, error) {
	switch s {
	case "fp32":
		return quant.FP32, nil
	case "bf16":
		return quant.BF16, nil
	default:
		return 0, fmt.Errorf("unknown -feat-precision %q (fp32 or bf16)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distgnn-train:", err)
	os.Exit(1)
}
