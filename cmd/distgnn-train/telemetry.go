package main

// telemetry.go wires the obs plane into training. -telemetry writes a
// rank-0 JSONL event stream: one "epoch" event per epoch carrying the loss
// both as a decimal and as its exact float64 bit pattern (so two runs can
// be diffed bit for bit), and one final "run" event with accuracy, wall
// time, halo cache behaviour, and — when the comm fabric keeps counters —
// payload bytes by traffic plane. -metrics-json dumps the run's metric
// registry as JSON at exit, and -profile captures a CPU or heap profile
// over the whole run.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"distgnn/internal/comm"
	"distgnn/internal/obs"
)

// telemetry owns the run's event log and metric registry. All methods are
// nil-safe, so non-rank-0 processes and telemetry-free runs pay nothing.
type telemetry struct {
	log  *obs.EventLog
	logF *os.File

	reg         *obs.Registry
	metricsPath string

	epochs    int64
	finalLoss float64
}

// newTelemetry opens the event stream and registry. enabled gates both on
// rank identity (only the speaking rank writes); empty paths disable the
// respective leg.
func newTelemetry(eventPath, metricsPath string, enabled bool) *telemetry {
	if !enabled || (eventPath == "" && metricsPath == "") {
		return nil
	}
	t := &telemetry{metricsPath: metricsPath}
	if eventPath != "" {
		f, err := os.Create(eventPath)
		if err != nil {
			fatal(err)
		}
		t.logF = f
		t.log = obs.NewEventLog(f)
	}
	if metricsPath != "" {
		t.reg = obs.NewRegistry()
		t.reg.CounterFunc("distgnn_train_epochs_total",
			"Training epochs completed.", func() float64 { return float64(t.epochs) })
		t.reg.GaugeFunc("distgnn_train_final_loss",
			"Final epoch training loss.", func() float64 { return t.finalLoss })
	}
	return t
}

// epoch records one finished epoch: the loss lands in the event stream with
// its bit pattern, and the epoch counter advances for the metrics dump.
func (t *telemetry) epoch(n int, loss float64, fields map[string]any) {
	if t == nil {
		return
	}
	t.epochs++
	t.finalLoss = loss
	if t.log == nil {
		return
	}
	obj := map[string]any{
		"epoch": n, "loss": loss, "loss_bits": obs.F64Bits(loss),
	}
	for k, v := range fields {
		obj[k] = v
	}
	t.log.Emit("epoch", obj)
}

// run emits the final summary event, folding in the transport's byte
// counters by plane when the fabric keeps them.
func (t *telemetry) run(fields map[string]any, tr comm.Transport) {
	if t == nil {
		return
	}
	if src, ok := tr.(comm.NetStatsSource); ok && tr != nil {
		ns := src.NetStats()
		fields["net_sent_bytes"] = ns.SentBytes
		fields["net_recv_bytes"] = ns.RecvBytes
		fields["net_collective_bytes"] = ns.CollectiveBytes
		fields["net_p2p_bytes"] = ns.P2PBytes
		if t.reg != nil {
			t.reg.CounterFunc("distgnn_net_sent_bytes_total",
				"Payload bytes sent on the comm fabric.", func() float64 { return float64(ns.SentBytes) })
			t.reg.CounterFunc("distgnn_net_recv_bytes_total",
				"Payload bytes received on the comm fabric.", func() float64 { return float64(ns.RecvBytes) })
			t.reg.CounterFunc(obs.Label("distgnn_net_plane_sent_bytes_total", "plane", "collective"),
				"Sent payload bytes by traffic plane.", func() float64 { return float64(ns.CollectiveBytes) })
			t.reg.CounterFunc(obs.Label("distgnn_net_plane_sent_bytes_total", "plane", "p2p"),
				"Sent payload bytes by traffic plane.", func() float64 { return float64(ns.P2PBytes) })
		}
	}
	t.log.Emit("run", fields)
}

// close flushes both legs: the JSONL stream is closed and the registry
// dumped to -metrics-json.
func (t *telemetry) close() {
	if t == nil {
		return
	}
	if t.logF != nil {
		t.logF.Close()
	}
	if t.reg != nil && t.metricsPath != "" {
		f, err := os.Create(t.metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := t.reg.DumpJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// startProfile begins the requested profile ("cpu" or "mem"; "" disables)
// and returns the function that finishes it. The CPU profile runs for the
// whole training run; the heap profile is one snapshot at stop time.
func startProfile(mode, out string) func() {
	switch mode {
	case "":
		return func() {}
	case "cpu":
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		return func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	case "mem":
		return func() {
			f, err := os.Create(out)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the snapshot reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
		}
	default:
		fatal(fmt.Errorf("unknown -profile %q (cpu or mem)", mode))
		return nil
	}
}
