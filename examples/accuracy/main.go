// Accuracy-vs-delay study: sweep the DRPA delay parameter r and measure
// test accuracy against the synchronous cd-0 reference — the paper's §6.3
// finding that r=5 costs ≲1% accuracy while r=10 degrades it through
// increasingly stale partial aggregates.
package main

import (
	"fmt"
	"log"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/train"
)

func main() {
	ds, err := datasets.Load("reddit-sim", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	const sockets = 8
	const epochs = 80

	run := func(algo train.Algorithm, delay int) *train.DistResult {
		res, err := train.Distributed(ds, train.DistConfig{
			Model:         model.Config{Hidden: 16, NumLayers: 2, Seed: 1},
			NumPartitions: sockets,
			Algo:          algo,
			Delay:         delay,
			Epochs:        epochs,
			LR:            0.02,
			UseAdam:       true,
			Seed:          1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	ref := run(train.AlgoCD0, 0)
	fmt.Printf("reddit-sim on %d sockets, %d epochs\n\n", sockets, epochs)
	fmt.Printf("%-8s %-10s %s\n", "run", "test acc", "Δ vs cd-0")
	fmt.Printf("%-8s %-10s -\n", "cd-0", fmt.Sprintf("%.2f%%", 100*ref.TestAcc))
	for _, r := range []int{1, 2, 5, 10} {
		res := run(train.AlgoCDR, r)
		fmt.Printf("%-8s %-10s %+.2f%%\n",
			fmt.Sprintf("cd-%d", r), fmt.Sprintf("%.2f%%", 100*res.TestAcc),
			100*(res.TestAcc-ref.TestAcc))
	}
	zero := run(train.Algo0C, 0)
	fmt.Printf("%-8s %-10s %+.2f%%\n", "0c",
		fmt.Sprintf("%.2f%%", 100*zero.TestAcc), 100*(zero.TestAcc-ref.TestAcc))
}
