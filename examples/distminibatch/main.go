// Distributed sampled mini-batch training over the shared feature-sourcing
// plane, in miniature: a 2-rank GraphSAGE run with training vertices AND
// features sharded across ranks (internal/featstore serves each rank's
// halo rows over the comm fabric), executed twice — over loopback TCP
// (every rank a single-rank endpoint, halo fetches and gradient AllReduce
// on real sockets, exactly as two separate OS processes would run; see
// `distgnn-train -minibatch -shards 2 -transport tcp -spawn-local` for the
// real thing) and as the replicated-feature single-process reference
// (minibatch.TrainDistributed, every rank reading one shared slab).
//
// Sharding the features and moving them over a wire is a substrate change,
// never an arithmetic one: with the same seed and rank count, the final
// model parameters must match bit for bit — which this example verifies
// and prints, alongside the halo traffic the featstore plane absorbed.
// -scale and -epochs shrink the run for smoke testing.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/minibatch"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	epochs := flag.Int("epochs", 5, "training epochs")
	flag.Parse()

	ds, err := datasets.Load("reddit-sim", *scale)
	if err != nil {
		log.Fatal(err)
	}
	const ranks = 2
	cfg := minibatch.ShardedTrainConfig{
		DistConfig: minibatch.DistConfig{
			Config: minibatch.Config{
				Hidden: 64, NumLayers: 2, Fanouts: []int{10, 5},
				BatchSize: 256, Epochs: *epochs, LR: 0.02, UseAdam: true, Seed: 1,
			},
			NumRanks: ranks,
		},
		CacheBytes: 16 << 20,
	}
	fmt.Printf("reddit-sim: %d vertices, %d edges — sampled mini-batch across %d ranks, fanouts %v\n\n",
		ds.G.NumVertices, ds.G.NumEdges, ranks, cfg.Fanouts)

	// Reference: replicated features, all ranks in this process reading the
	// same slab. Same seeds, same rank count.
	start := time.Now()
	ref, err := minibatch.TrainDistributed(ds, cfg.DistConfig)
	if err != nil {
		log.Fatal(err)
	}
	refWall := time.Since(start)

	// Sharded: a loopback TCP fleet — one endpoint per rank, each rank
	// owning a Libra partition's feature rows and fetching its halo from
	// the peer through featstore's batched ReqRep path.
	eps, err := comm.NewLoopbackTCP(ranks, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	results := make([]*minibatch.DistResult, ranks)
	errs := make([]error, ranks)
	start = time.Now()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rcfg := cfg
			rcfg.Transport = eps[r]
			results[r], errs[r] = minibatch.TrainSharded(ds, rcfg)
		}()
	}
	wg.Wait()
	tcpWall := time.Since(start)
	for _, ep := range eps {
		ep.Close()
	}
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	fmt.Printf("%-22s %-12s %-12s %s\n", "run", "wall time", "final loss", "test acc")
	fmt.Printf("%-22s %-12s %-12.6f %.1f%%\n", "replicated (inproc)",
		refWall.Round(time.Millisecond), lastLoss(ref), 100*ref.TestAcc)
	fmt.Printf("%-22s %-12s %-12.6f %.1f%%\n", "sharded (tcp)",
		tcpWall.Round(time.Millisecond), lastLoss(results[0]), 100*results[0].TestAcc)

	var fetched, hits, misses int64
	for r := 0; r < ranks; r++ {
		hs := results[r].HaloStats[r]
		fetched += hs.HaloFetchedVertices
		hits += hs.HaloHits
		misses += hs.HaloMisses
	}
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("\nhalo traffic: %d feature rows fetched from peers, cache hit rate %.1f%%\n",
		fetched, 100*rate)

	// The pin: every TCP rank's final parameters are bit-identical to the
	// replicated single-process reference.
	for r := 0; r < ranks; r++ {
		if len(results[r].Params) != len(ref.Params) {
			log.Fatalf("rank %d: param vector length %d != reference %d",
				r, len(results[r].Params), len(ref.Params))
		}
		for i := range ref.Params {
			if math.Float32bits(results[r].Params[i]) != math.Float32bits(ref.Params[i]) {
				log.Fatalf("rank %d: param %d differs from reference: %v != %v",
					r, i, results[r].Params[i], ref.Params[i])
			}
		}
	}
	fmt.Printf("final parameters bit-identical: sharded TCP ≡ replicated single-process (%d params)\n",
		len(ref.Params))
}

func lastLoss(res *minibatch.DistResult) float64 {
	return res.Epochs[len(res.Epochs)-1].Loss
}
