// Distributed training: run the three §5.3 algorithms — 0c (no
// communication), cd-0 (synchronous partial-aggregate exchange) and cd-5
// (delayed, overlapped exchange) — on a simulated 8-socket cluster and
// compare their simulated epoch time, communication split and accuracy.
package main

import (
	"fmt"
	"log"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/train"
)

func main() {
	ds, err := datasets.Load("ogbn-products-sim", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ogbn-products-sim: %d vertices, %d edges across 8 simulated sockets\n\n",
		ds.G.NumVertices, ds.G.NumEdges)

	fmt.Printf("%-6s %-12s %-10s %-10s %-10s %s\n",
		"algo", "epoch (sim)", "LAT", "RAT", "test acc", "replication")
	for _, tc := range []struct {
		algo  train.Algorithm
		delay int
	}{{train.AlgoCD0, 0}, {train.AlgoCDR, 5}, {train.Algo0C, 0}} {
		res, err := train.Distributed(ds, train.DistConfig{
			Model:         model.Config{Hidden: 64, NumLayers: 3, Seed: 1},
			NumPartitions: 8,
			Algo:          tc.algo,
			Delay:         tc.delay,
			Epochs:        40,
			LR:            0.02,
			UseAdam:       true,
			Seed:          1,
		})
		if err != nil {
			log.Fatal(err)
		}
		lo := 1
		if tc.algo == train.AlgoCDR {
			lo = 2 * tc.delay
		}
		lat, rat := res.AvgLATRAT(lo, 40)
		label := string(tc.algo)
		if tc.algo == train.AlgoCDR {
			label = fmt.Sprintf("cd-%d", tc.delay)
		}
		fmt.Printf("%-6s %-12s %-10s %-10s %-10s %.2f\n",
			label, fmt.Sprintf("%.3fms", 1e3*res.AvgEpochSeconds(lo, 40)),
			fmt.Sprintf("%.3fms", 1e3*lat), fmt.Sprintf("%.3fms", 1e3*rat),
			fmt.Sprintf("%.1f%%", 100*res.TestAcc), res.Replication)
	}
	fmt.Println("\nExpected shape: 0c fastest / cd-0 slowest; cd-5 hides the network")
	fmt.Println("term (RAT ≈ pre/post processing only) at a small accuracy cost.")
}
