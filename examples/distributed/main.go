// Distributed training: run the §5.3 algorithm ladder — 0c (no
// communication), cd-0 (synchronous partial-aggregate exchange), cd-5
// (delayed exchange, blocking at the epoch boundary) and cd-5s (the same
// exchange posted nonblocking and overlapped with compute) — on a
// simulated 8-socket cluster and compare simulated epoch time,
// communication split and accuracy. -scale and -epochs shrink the run for
// smoke testing.
package main

import (
	"flag"
	"fmt"
	"log"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/train"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	epochs := flag.Int("epochs", 40, "training epochs")
	flag.Parse()

	ds, err := datasets.Load("ogbn-products-sim", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ogbn-products-sim: %d vertices, %d edges across 8 simulated sockets\n\n",
		ds.G.NumVertices, ds.G.NumEdges)

	const delay = 5
	fmt.Printf("%-6s %-12s %-10s %-10s %-10s %s\n",
		"algo", "epoch (sim)", "LAT", "RAT", "test acc", "replication")
	for _, tc := range []struct {
		algo  train.Algorithm
		delay int
	}{
		{train.AlgoCD0, 0},
		{train.AlgoCDR, delay},
		{train.AlgoCDRS, delay},
		{train.Algo0C, 0},
	} {
		res, err := train.Distributed(ds, train.DistConfig{
			Model:         model.Config{Hidden: 64, NumLayers: 3, Seed: 1},
			NumPartitions: 8,
			Algo:          tc.algo,
			Delay:         tc.delay,
			Epochs:        *epochs,
			LR:            0.02,
			UseAdam:       true,
			Seed:          1,
		})
		if err != nil {
			log.Fatal(err)
		}
		lo := 1
		if tc.delay > 0 {
			lo = 2 * tc.delay
		}
		if lo >= *epochs {
			lo = *epochs / 2
		}
		lat, rat := res.AvgLATRAT(lo, *epochs)
		label := string(tc.algo)
		switch tc.algo {
		case train.AlgoCDR:
			label = fmt.Sprintf("cd-%d", tc.delay)
		case train.AlgoCDRS:
			label = fmt.Sprintf("cd-%ds", tc.delay)
		}
		fmt.Printf("%-6s %-12s %-10s %-10s %-10s %.2f\n",
			label, fmt.Sprintf("%.3fms", 1e3*res.AvgEpochSeconds(lo, *epochs)),
			fmt.Sprintf("%.3fms", 1e3*lat), fmt.Sprintf("%.3fms", 1e3*rat),
			fmt.Sprintf("%.1f%%", 100*res.TestAcc), res.Replication)
	}
	fmt.Println("\nExpected shape: 0c fastest / cd-0 slowest; cd-5 cuts the exchange to")
	fmt.Println("1/5 per epoch but still blocks on it; cd-5s posts the same traffic")
	fmt.Println("nonblocking so the network term hides behind compute (RAT ≈ pre/post")
	fmt.Println("processing only) — identical math to cd-5, bit for bit.")
}
