// Heterograph training: build a typed version of the AM dataset (artifacts
// linked through typed relations) and train RGCN-hetero on it — the
// workload of Fig. 2(d) in the paper — comparing the baseline and optimized
// aggregation kernels.
package main

import (
	"fmt"
	"log"
	"time"

	"distgnn/internal/hetero"
	"distgnn/internal/nn"
)

func main() {
	const relations = 6
	ds, tg, err := hetero.SyntheticAM(0.25, relations)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("am-sim heterograph: %d vertices, %d edges across %d relations\n",
		tg.G.NumVertices, tg.G.NumEdges, tg.NumRelations)
	fmt.Printf("edges per relation: %v\n\n", tg.RelationEdgeCounts())

	for _, baseline := range []bool{true, false} {
		m, err := hetero.NewRGCN(tg, hetero.RGCNConfig{
			InDim: ds.Features.Cols, Hidden: 16, OutDim: ds.NumClasses,
			NumLayers: 2, UseBaselineAgg: baseline, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		adam := nn.NewAdam(0.02, 0)
		params := m.Params()
		start := time.Now()
		m.ResetAggTime()
		var lastLoss float64
		const epochs = 25
		for e := 0; e < epochs; e++ {
			logits := m.Forward(ds.Features, true)
			loss, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
			lastLoss = loss
			nn.ZeroGrads(params)
			m.Backward(dlogits)
			adam.Step(params)
		}
		elapsed := time.Since(start)
		logits := m.Forward(ds.Features, false)
		arm := "optimized AP"
		if baseline {
			arm = "baseline AP "
		}
		fmt.Printf("%s: %2d epochs in %-12v (AP %v), final loss %.4f, test acc %.1f%%\n",
			arm, epochs, elapsed, m.AggTime, lastLoss,
			100*nn.Accuracy(logits, ds.Labels, ds.TestIdx))
	}
}
