// Partitioning study: compare the Libra vertex-cut partitioner against the
// random-edge and hash-vertex baselines on dense (reddit-sim) and clustered
// (proteins-sim) graphs — §5.1's claim that vertex-cut with least-loaded
// placement minimizes the replication factor on power-law graphs.
package main

import (
	"fmt"
	"log"

	"distgnn/internal/datasets"
	"distgnn/internal/partition"
)

func main() {
	strategies := []partition.Partitioner{
		partition.Libra{Seed: 1},
		partition.RandomEdge{Seed: 1},
		partition.HashVertex{},
	}
	for _, name := range []string{"reddit-sim", "proteins-sim"} {
		ds, err := datasets.Load(name, 0.25)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d vertices, %d edges\n", name, ds.G.NumVertices, ds.G.NumEdges)
		fmt.Printf("%-12s %-6s %-12s %-12s %s\n", "strategy", "parts", "replication", "edge balance", "split vertices")
		for _, k := range []int{4, 16} {
			for _, s := range strategies {
				pt, err := partition.Partition(ds.G, s, k, 1)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-12s %-6d %-12.3f %-12.3f %d\n",
					s.Name(), k, pt.ReplicationFactor(), pt.EdgeBalance(), len(pt.Splits))
			}
		}
	}
	fmt.Println("\nLibra should post the lowest replication at balanced edges;")
	fmt.Println("proteins-sim (natural clusters) should replicate less than reddit-sim.")
}
