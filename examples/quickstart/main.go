// Quickstart: generate a benchmark graph, train GraphSAGE full-batch on a
// single socket with the optimized aggregation primitive, and report
// accuracy — the five-minute tour of the library. -scale and -epochs
// shrink the run for smoke testing.
package main

import (
	"flag"
	"fmt"
	"log"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/train"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	epochs := flag.Int("epochs", 30, "training epochs")
	flag.Parse()

	// 1. Load a synthetic stand-in for the Reddit dataset (1/4 scale by
	//    default).
	ds, err := datasets.Load("reddit-sim", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reddit-sim: %d vertices, %d edges, avg degree %.0f, %d features, %d classes\n",
		ds.G.NumVertices, ds.G.NumEdges, ds.G.AvgDegree(), ds.Features.Cols, ds.NumClasses)

	// 2. Train the paper's Reddit configuration: 2 GraphSAGE layers with 16
	//    hidden units, GCN aggregation, full batch.
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: 16, NumLayers: 2, Seed: 1},
		Epochs: *epochs, LR: 0.02, WeightDecay: 5e-4, UseAdam: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect per-epoch time and the share spent in the aggregation
	//    primitive — the quantity the paper's single-socket work optimizes.
	for e, st := range res.Epochs {
		if e%10 == 0 || e == len(res.Epochs)-1 {
			fmt.Printf("epoch %2d  loss %.4f  time %-12v AP %v\n", e, st.Loss, st.Total, st.Agg)
		}
	}
	fmt.Printf("accuracy: train %.1f%%  val %.1f%%  test %.1f%%\n",
		100*res.TrainAcc, 100*res.ValAcc, 100*res.TestAcc)
}
