// Replicated-serving walkthrough: train GraphSAGE, stand up TWO
// bit-identical 2-shard serving fleets behind the consistent-hash frontend,
// and drive the failure story end to end: queries through the frontend are
// bit-identical to a single-process server; hard-killing a whole replica
// fleet mid-run surfaces zero errors (the frontend fails over to the
// survivor); and a fleet-wide POST /reload hot-swaps every replica to a
// retrained checkpoint without dropping a request. -scale and -epochs
// shrink the run for smoke testing.
//
// The same topology as real processes:
//
//	distgnn-serve -checkpoint ckpt.dgnp -shards 2 -replicas 2 -transport tcp -spawn-local -reload ...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

const (
	shards   = 2
	replicas = 2
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	epochs := flag.Int("epochs", 20, "training epochs")
	flag.Parse()

	// 1. Train two checkpoints of the same architecture: the one the fleet
	//    starts on, and a longer-trained one for the live rollover.
	ds, err := datasets.Load("reddit-sim", *scale)
	if err != nil {
		log.Fatal(err)
	}
	trainCkpt := func(ep int) []byte {
		res, err := train.SingleSocket(ds, train.SingleConfig{
			Model:  model.Config{Hidden: 16, NumLayers: 2, Seed: 1},
			Epochs: ep, LR: 0.02, WeightDecay: 5e-4, UseAdam: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if err := nn.WriteParams(&buf, res.Model.Params()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained: %d epochs, test accuracy %.1f%%\n", ep, 100*res.TestAcc)
		return buf.Bytes()
	}
	ckptA := trainCkpt(*epochs)
	ckptB := trainCkpt(*epochs + 1)

	// 2. Two bit-identical shard fleets (same checkpoint, same deterministic
	//    partitioning), each over its own in-process comm fabric, every rank
	//    on a real HTTP listener.
	cfg := serve.Config{
		Arch: serve.ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		MaxBatch: 16, MaxWait: 2 * time.Millisecond,
		FeatureCacheBytes: 16 << 20, EnableReload: true,
	}
	groups := make([]serve.GroupSpec, shards)
	for g := range groups {
		groups[g].Key = fmt.Sprintf("group-%d", g)
	}
	fleetHTTP := make([][]*http.Server, replicas)
	for rep := 0; rep < replicas; rep++ {
		fabric := comm.NewProcTransport(shards)
		defer fabric.Close()
		var lns []net.Listener
		var peers []serve.PeerAddr
		for r := 0; r < shards; r++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			lns = append(lns, ln)
			peers = append(peers, serve.PeerAddr{Rank: r, Addr: ln.Addr().String()})
			groups[r].Replicas = append(groups[r].Replicas, ln.Addr().String())
		}
		for r := 0; r < shards; r++ {
			srv, err := serve.NewShard(ds, bytes.NewReader(ckptA), cfg, serve.ShardConfig{
				Rank: r, Shards: shards, Transport: fabric, HTTPPeers: peers,
			})
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			hs := &http.Server{Handler: srv.Handler()}
			fleetHTTP[rep] = append(fleetHTTP[rep], hs)
			go hs.Serve(lns[r])
			defer hs.Close()
			fmt.Printf("replica %d rank %d/%d serving on http://%s\n", rep, r, shards, peers[r].Addr)
		}
	}

	// 3. The consistent-hash frontend: vertices hash to a shard group,
	//    requests load-balance across the group's replicas (power of two
	//    choices by in-flight depth) and fail over when one dies.
	frontend, err := serve.NewFrontend(serve.FrontendConfig{
		Groups: groups, MaxFails: 2, ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer frontend.Close()
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fhs := &http.Server{Handler: frontend.Handler()}
	go fhs.Serve(fln)
	defer fhs.Close()
	addr := fln.Addr().String()
	fmt.Printf("frontend: %d groups × %d replicas on http://%s\n", shards, replicas, addr)

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: HTTP %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	// 4. Frontend answers are bit-identical to a single-process server on
	//    the same checkpoint.
	single, err := serve.New(ds, bytes.NewReader(ckptA), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer single.Close()
	const vertex = 7
	before := get(fmt.Sprintf("/predict?vertex=%d", vertex))
	out, err := single.Engine().Infer([]int32{vertex})
	if err != nil {
		log.Fatal(err)
	}
	var pr serve.PredictResponse
	if err := json.Unmarshal([]byte(before), &pr); err != nil {
		log.Fatal(err)
	}
	same := len(pr.Logits) == len(out.Row(0))
	for j := range pr.Logits {
		same = same && pr.Logits[j] == out.Row(0)[j]
	}
	fmt.Printf("frontend logits == single-process logits: %v\n", same)
	if !same {
		log.Fatal("replicated serving diverged from the single-process engine")
	}

	// 5. Kill replica 0 outright. Every request keeps succeeding — and the
	//    survivor's answers are the same bytes, because replicas are
	//    bit-identical by construction.
	for _, hs := range fleetHTTP[0] {
		hs.Close()
	}
	fmt.Println("replica 0 killed (both ranks)")
	for i := 0; i < 20; i++ {
		get(fmt.Sprintf("/predict?vertex=%d", i%ds.G.NumVertices))
	}
	after := get(fmt.Sprintf("/predict?vertex=%d", vertex))
	fmt.Printf("post-kill answers identical bytes: %v\n", before == after)
	if before != after {
		log.Fatal("failover changed the answer")
	}
	var fst serve.FrontendStats
	if err := json.Unmarshal([]byte(get("/stats")), &fst); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frontend stats: requests %d, retries %d, errors %d (must be 0)\n",
		fst.Requests, fst.Retries, fst.Errors)
	if fst.Errors != 0 {
		log.Fatal("failover surfaced errors")
	}

	// 6. Live rollover on the surviving replica: POST /reload fans the new
	//    checkpoint to every live replica; answers flip to the new model.
	survivors := make([]serve.GroupSpec, shards)
	for g := range survivors {
		survivors[g] = serve.GroupSpec{
			Key:      fmt.Sprintf("group-%d", g),
			Replicas: []string{groups[g].Replicas[1]},
		}
	}
	f2, err := serve.NewFrontend(serve.FrontendConfig{Groups: survivors})
	if err != nil {
		log.Fatal(err)
	}
	defer f2.Close()
	f2ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	f2hs := &http.Server{Handler: f2.Handler()}
	go f2hs.Serve(f2ln)
	defer f2hs.Close()
	resp, err := http.Post("http://"+f2ln.Addr().String()+"/reload",
		"application/octet-stream", bytes.NewReader(ckptB))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("/reload: HTTP %d: %s", resp.StatusCode, body)
	}
	fmt.Printf("fleet /reload: %.90s…\n", body)
	rolled := get(fmt.Sprintf("/predict?vertex=%d", vertex))
	fmt.Printf("post-rollover logits changed: %v\n", rolled != before)
	if rolled == before {
		log.Fatal("reload did not change the serving model")
	}
}
