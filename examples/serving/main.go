// Serving walkthrough: train GraphSAGE, save the checkpoint, stand up the
// online inference server, and query it over HTTP — the full
// train → save → serve → query path. -scale and -epochs shrink the run for
// smoke testing.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	epochs := flag.Int("epochs", 20, "training epochs")
	flag.Parse()

	// 1. Train a small GraphSAGE full-batch, exactly like the quickstart.
	ds, err := datasets.Load("reddit-sim", *scale)
	if err != nil {
		log.Fatal(err)
	}
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: 16, NumLayers: 2, Seed: 1},
		Epochs: *epochs, LR: 0.02, WeightDecay: 5e-4, UseAdam: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d epochs, test accuracy %.1f%%\n", *epochs, 100*res.TestAcc)

	// 2. Save the checkpoint — the artifact distgnn-train -save writes.
	ckptPath := filepath.Join(os.TempDir(), "distgnn-serving-example.dgnp")
	f, err := os.Create(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := nn.WriteParams(f, res.Model.Params()); err != nil {
		log.Fatal(err)
	}
	f.Close()
	defer os.Remove(ckptPath)
	fmt.Printf("checkpoint written to %s\n", ckptPath)

	// 3. Load it into a serving instance: exact (full-neighborhood) k-hop
	//    inference, request coalescing, and both caches enabled.
	ckpt, err := os.Open(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(ds, ckpt, serve.Config{
		Arch: serve.ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		MaxBatch: 16, MaxWait: 2 * time.Millisecond,
		FeatureCacheBytes: 16 << 20, EmbedCacheBytes: 4 << 20,
	})
	ckpt.Close()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// 4. Query it: a prediction, an embedding, and the stats counters.
	//    The second /predict for the same vertex is an embedding-cache hit.
	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: HTTP %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	fmt.Printf("GET /predict?vertex=7 → %.120s…\n", get("/predict?vertex=7"))
	fmt.Printf("GET /predict?vertex=7 → cache hit, same bytes: %v\n",
		get("/predict?vertex=7") == get("/predict?vertex=7"))
	fmt.Printf("GET /embed?vertex=7   → %.120s…\n", get("/embed?vertex=7"))
	fmt.Printf("GET /stats            → %s\n", get("/stats"))
}
