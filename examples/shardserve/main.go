// Sharded-serving walkthrough: train GraphSAGE, save the checkpoint, stand
// up a 2-shard serving fleet — each rank owning one vertex partition and
// its feature slice, halo features crossing a real loopback-TCP comm fabric
// — and query BOTH ranks over HTTP for the same vertex: the router sends
// each request to its owner rank and the logits come back bit-identical
// from either entry point, and identical to a single-process server.
// -scale and -epochs shrink the run for smoke testing.
//
// The same fleet as real processes:
//
//	distgnn-serve -checkpoint ckpt.dgnp -shards 2 -transport tcp -spawn-local ...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	epochs := flag.Int("epochs", 20, "training epochs")
	flag.Parse()

	// 1. Train and serialize a checkpoint, exactly like the serving example.
	ds, err := datasets.Load("reddit-sim", *scale)
	if err != nil {
		log.Fatal(err)
	}
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: 16, NumLayers: 2, Seed: 1},
		Epochs: *epochs, LR: 0.02, WeightDecay: 5e-4, UseAdam: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := nn.WriteParams(&ckpt, res.Model.Params()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d epochs, test accuracy %.1f%%\n", *epochs, 100*res.TestAcc)

	// 2. A real TCP comm fabric over 2 ranks (loopback; each endpoint is
	//    driven exactly as a separate OS process would drive its own).
	const shards = 2
	fabrics, err := comm.NewLoopbackTCP(shards, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, f := range fabrics {
			f.Close()
		}
	}()

	// 3. One HTTP listener per rank, then one sharded server per rank. Each
	//    rank independently derives the same deterministic partitioning, so
	//    ownership needs no coordination.
	cfg := serve.Config{
		Arch: serve.ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		MaxBatch: 16, MaxWait: 2 * time.Millisecond,
		FeatureCacheBytes: 16 << 20, EmbedCacheBytes: 4 << 20,
	}
	var lns []net.Listener
	var peers []serve.PeerAddr
	for r := 0; r < shards; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns = append(lns, ln)
		peers = append(peers, serve.PeerAddr{Rank: r, Addr: ln.Addr().String()})
	}
	servers := make([]*serve.Server, shards)
	for r := 0; r < shards; r++ {
		servers[r], err = serve.NewShard(ds, bytes.NewReader(ckpt.Bytes()), cfg, serve.ShardConfig{
			Rank: r, Shards: shards, Transport: fabrics[r], HTTPPeers: peers,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer servers[r].Close()
		st := servers[r].StatsSnapshot().Shard
		fmt.Printf("shard rank %d/%d: owns %d vertices, static halo %d, serving on http://%s\n",
			r, shards, st.OwnedVertices, st.HaloVerticesStatic, peers[r].Addr)
		hs := &http.Server{Handler: servers[r].Handler()}
		go hs.Serve(lns[r])
		defer hs.Close()
	}

	// 4. Query BOTH ranks for the same vertex. The non-owner proxies to the
	//    owner; the owner's k-hop gather fetches halo features over TCP.
	get := func(rank int, path string) string {
		resp, err := http.Get("http://" + peers[rank].Addr + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("rank %d %s: HTTP %d: %s", rank, path, resp.StatusCode, body)
		}
		return string(body)
	}
	const vertex = 7
	a := get(0, fmt.Sprintf("/predict?vertex=%d", vertex))
	b := get(1, fmt.Sprintf("/predict?vertex=%d", vertex))
	fmt.Printf("GET rank0 /predict?vertex=%d → %.110s…\n", vertex, a)
	fmt.Printf("GET rank1 /predict?vertex=%d → identical bytes: %v\n", vertex, a == b)
	if a != b {
		log.Fatalf("rank responses differ:\n%s\n%s", a, b)
	}

	// 5. A single-process server on the same checkpoint agrees bit for bit.
	single, err := serve.New(ds, bytes.NewReader(ckpt.Bytes()), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer single.Close()
	out, err := single.Engine().Infer([]int32{vertex})
	if err != nil {
		log.Fatal(err)
	}
	var pr serve.PredictResponse
	if err := json.Unmarshal([]byte(a), &pr); err != nil {
		log.Fatal(err)
	}
	same := len(pr.Logits) == len(out.Row(0))
	for j := range pr.Logits {
		same = same && pr.Logits[j] == out.Row(0)[j]
	}
	fmt.Printf("sharded logits == single-process logits: %v\n", same)
	if !same {
		log.Fatal("sharded serving diverged from the single-process engine")
	}

	// 6. The shard counters show the distribution at work.
	for r := 0; r < shards; r++ {
		var st serve.Stats
		if err := json.Unmarshal([]byte(get(r, "/stats")), &st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rank %d stats: predicts %d, routed out %d, halo fetches %d (%d vertices), peer-served %d\n",
			r, st.Predicts, st.Shard.RoutedOut, st.Shard.HaloFetches,
			st.Shard.HaloFetchedVertices, st.Shard.PeerServedFetches)
	}
}
