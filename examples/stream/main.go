// Streaming-updates walkthrough: train GraphSAGE, stand up an
// updates-enabled serving instance, and mutate the graph underneath it —
// POST /update edge batches from a synthetic MMPP-timestamped stream,
// watch the overlay grow and the caches invalidate, compact the overlay,
// and verify the served logits always match a cold server that loaded the
// final graph from scratch. -scale and -epochs shrink the run for smoke
// testing.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/graph"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	epochs := flag.Int("epochs", 20, "training epochs")
	flag.Parse()

	// 1. Train a small GraphSAGE and keep the checkpoint bytes in memory.
	ds, err := datasets.Load("reddit-sim", *scale)
	if err != nil {
		log.Fatal(err)
	}
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: 16, NumLayers: 2, Seed: 1},
		Epochs: *epochs, LR: 0.02, WeightDecay: 5e-4, UseAdam: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := nn.WriteParams(&ckpt, res.Model.Params()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d epochs, test accuracy %.1f%%\n", *epochs, 100*res.TestAcc)

	// 2. Serve with the mutation plane on. Updates require exact mode (no
	//    -fanouts): sampled serving could not promise bit-identical logits
	//    after a mutation. CompactThreshold 64 keeps the demo's overlay
	//    small enough to watch a compaction happen.
	cfg := serve.Config{
		Arch: serve.ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		MaxBatch: 16, MaxWait: 2 * time.Millisecond,
		FeatureCacheBytes: 16 << 20, EmbedCacheBytes: 4 << 20,
		EnableUpdates: true, CompactThreshold: 64,
	}
	srv, err := serve.New(ds, bytes.NewReader(ckpt.Bytes()), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (updates enabled)\n", base)

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: HTTP %d: %s", path, resp.StatusCode, body)
		}
		return body
	}
	post := func(path string, payload any) []byte {
		body, _ := json.Marshal(payload)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: HTTP %d: %s", path, resp.StatusCode, out)
		}
		return out
	}

	// 3. Synthesize a timestamped edge stream: R-MAT-shaped inserts under
	//    a bursty (MMPP) arrival process, grouped into /update batches the
	//    way an ingest frontend would send them.
	events, err := datasets.EdgeStream(datasets.StreamConfig{
		NumVertices: ds.G.NumVertices, Events: 96, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	batches := datasets.Batched(events, 16, 50*time.Millisecond)
	fmt.Printf("edge stream: %d inserts in %d batches over %v\n",
		len(events), len(batches), events[len(events)-1].At.Round(time.Millisecond))

	// 4. Interleave queries and updates. Queries warm the caches; each
	//    update's k-hop invalidation sweep then drops exactly the entries
	//    whose neighborhoods changed, so the next query recomputes them on
	//    the post-mutation graph.
	probe := "/predict?vertex=7"
	before := get(probe)
	var inserted []graph.Edge
	for i, batch := range batches {
		get(probe) // keep the caches warm across the sweep
		req := serve.UpdateRequest{Edges: make([][2]int32, len(batch))}
		for j, ev := range batch {
			req.Edges[j] = [2]int32{ev.Edge.Src, ev.Edge.Dst}
			inserted = append(inserted, ev.Edge)
		}
		var resp serve.UpdateResponse
		if err := json.Unmarshal(post("/update", req), &resp); err != nil {
			log.Fatal(err)
		}
		if i == 0 || i == len(batches)-1 {
			fmt.Printf("batch %d: applied %d edges, epoch %d, overlay %d edges, "+
				"invalidated %d embeddings / %d features\n",
				i, resp.Applied, resp.Epoch, resp.OverlayEdges,
				resp.InvalidatedEmbeddings, resp.InvalidatedFeatures)
		}
	}
	after := get(probe)
	fmt.Printf("vertex 7 logits changed after stream: %v\n", !bytes.Equal(before, after))

	// 5. The /stats stream block: overlay size, epochs, compactions (the
	//    96 inserts crossed the 64-edge threshold at least once), and the
	//    cumulative invalidation counters.
	var stats struct {
		Stream serve.StreamStats `json:"stream"`
	}
	if err := json.Unmarshal(get("/stats"), &stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream stats: epoch %d, base %d + overlay %d edges, %d compactions, "+
		"%d updates, %d embeddings / %d features invalidated\n",
		stats.Stream.Epoch, stats.Stream.BaseEdges, stats.Stream.OverlayEdges,
		stats.Stream.Compactions, stats.Stream.Updates,
		stats.Stream.InvalidatedEmbeddings, stats.Stream.InvalidatedFeatures)

	// 6. The exactness contract, demonstrated: a cold server that loads
	//    the equivalent rebuilt CSR serves byte-identical logits.
	rebuilt, err := graph.NewCSR(ds.G.NumVertices, append(ds.G.Edges(), inserted...))
	if err != nil {
		log.Fatal(err)
	}
	coldDS := *ds
	coldDS.G = rebuilt
	coldCfg := cfg
	coldCfg.EnableUpdates = false
	cold, err := serve.New(&coldDS, bytes.NewReader(ckpt.Bytes()), coldCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cold.Close()
	want, err := cold.Engine().Infer([]int32{7})
	if err != nil {
		log.Fatal(err)
	}
	var got struct {
		Logits []float32 `json:"logits"`
	}
	if err := json.Unmarshal(after, &got); err != nil {
		log.Fatal(err)
	}
	match := len(got.Logits) == len(want.Row(0))
	for i := range got.Logits {
		if match && got.Logits[i] != want.Row(0)[i] {
			match = false
		}
	}
	if !match {
		log.Fatalf("mutated server diverged from cold rebuild:\n%v\n%v", got.Logits, want.Row(0))
	}
	fmt.Println("mutated server matches a cold server on the rebuilt graph, bit for bit")
}
