// True multi-process training over TCP, in miniature: the same 2-rank
// cd-rs run executed on the in-process fabric (every rank a goroutine over
// a shared mailbox) and over loopback TCP (every rank a single-rank
// endpoint with framed messages on real sockets — here driven from
// goroutines, exactly as two separate OS processes would drive theirs; see
// `distgnn-train -transport tcp -spawn-local` for the real thing). The
// transport is a substrate change, never an arithmetic one: losses and
// accuracy must match bit for bit, which this example verifies and prints.
// -scale and -epochs shrink the run for smoke testing.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/train"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	epochs := flag.Int("epochs", 10, "training epochs")
	flag.Parse()

	ds, err := datasets.Load("reddit-sim", *scale)
	if err != nil {
		log.Fatal(err)
	}
	const ranks = 2
	cfg := train.DistConfig{
		Model:         model.Config{Hidden: 64, NumLayers: 3, Seed: 1},
		NumPartitions: ranks, Algo: train.AlgoCDRS, Delay: 2,
		Epochs: *epochs, LR: 0.02, UseAdam: true, Seed: 1,
	}
	fmt.Printf("reddit-sim: %d vertices, %d edges — cd-2s across %d ranks\n\n",
		ds.G.NumVertices, ds.G.NumEdges, ranks)

	// Substrate 1: the in-process world.
	start := time.Now()
	inproc, err := train.Distributed(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	inprocWall := time.Since(start)

	// Substrate 2: a loopback TCP fleet — one endpoint per rank, registry
	// rendezvous through rank 0, each rank training its own partition with
	// gradient AllReduce and stat gathers on the wire.
	eps, err := comm.NewLoopbackTCP(ranks, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	tcp, err := train.DistributedFleet(ds, cfg, eps)
	tcpWall := time.Since(start)
	for _, ep := range eps {
		ep.Close()
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-12s %-12s %s\n", "transport", "wall time", "final loss", "test acc")
	fmt.Printf("%-10s %-12s %-12.6f %.1f%%\n", "inproc",
		inprocWall.Round(time.Millisecond), lastLoss(inproc), 100*inproc.TestAcc)
	fmt.Printf("%-10s %-12s %-12.6f %.1f%%\n", "tcp",
		tcpWall.Round(time.Millisecond), lastLoss(tcp), 100*tcp.TestAcc)

	for e := range inproc.Epochs {
		if inproc.Epochs[e].Loss != tcp.Epochs[e].Loss {
			log.Fatalf("epoch %d: loss diverged across transports: %v vs %v",
				e, inproc.Epochs[e].Loss, tcp.Epochs[e].Loss)
		}
	}
	if inproc.TestAcc != tcp.TestAcc || inproc.TrainAcc != tcp.TrainAcc {
		log.Fatalf("accuracy diverged across transports")
	}
	fmt.Println("\nEvery epoch's loss and the final accuracy are bit-identical across")
	fmt.Println("substrates: the transport moves the same bytes through a different")
	fmt.Println("fabric, and rank-ordered reductions keep the float math exact.")
}

func lastLoss(r *train.DistResult) float64 { return r.Epochs[len(r.Epochs)-1].Loss }
