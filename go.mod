module distgnn

go 1.24
