package bench

import (
	"fmt"
	"math/rand"

	"distgnn/internal/cachesim"
	"distgnn/internal/graph"

	"distgnn/internal/minibatch"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/partition"
	"distgnn/internal/quant"
	"distgnn/internal/train"
)

// Ablations lists the design-choice studies beyond the paper's artifacts:
// the DRPA delay sweep, the low-precision-communication extension (§7
// future work), partitioner choice, and aggregator/model generality.
func Ablations() []Experiment {
	return []Experiment{
		{"abl-delay", "Ablation: DRPA delay r vs accuracy and epoch time", AblationDelay},
		{"abl-overlap", "Ablation: nonblocking overlap (cd-rs) vs blocking exchange (cd-r)", AblationOverlap},
		{"abl-precision", "Ablation: communication precision (fp32/bf16/fp16)", AblationPrecision},
		{"abl-partitioner", "Ablation: partitioner choice vs replication and epoch time", AblationPartitioner},
		{"abl-model", "Ablation: GCN vs GIN vs GAT accuracy", AblationModel},
		{"abl-mb-dist", "Ablation: distributed mini-batch scaling (§7 future work)", AblationMiniBatchDist},
		{"abl-distmb", "Ablation: sharded-feature mini-batch — wall epoch and halo hit rate vs rank count", AblationDistMB},
		{"abl-reorder", "Ablation: vertex reordering vs AP cache reuse", AblationReorder},
		{"abl-workers", "Ablation: worker-pool size vs AP/matmul time (OMP_NUM_THREADS)", AblationWorkers},
		{"abl-transport", "Ablation: in-process vs TCP-loopback comm transport epoch time", AblationTransport},
		{"abl-serve", "Ablation: online serving — coalescing and cache levers (QPS, p50/p95/p99)", AblationServe},
		{"abl-shardserve", "Ablation: sharded serving — QPS/p95 vs shard count under Poisson and MMPP arrivals", AblationShardServe},
		{"abl-replicaserve", "Ablation: replicated serving — MMPP tail with a replica killed mid-run, mid-run /reload survival", AblationReplicaServe},
		{"abl-stream", "Ablation: streaming updates — ingest rate vs query tail latency and invalidation fan-out", AblationStream},
		{"abl-kernels", "Ablation: aggregation kernel arms (scalar/fused/bf16) and wall-epoch trajectory", AblationKernels},
		{"abl-obs", "Ablation: observability overhead — serving p95 with obs off / metrics / metrics+trace", AblationObs},
	}
}

// AblationReorder quantifies how vertex labeling drives the AP's cache
// behaviour: the generated ordering (community-contiguous), a random
// scramble (worst case), BFS relabeling, and hubs-first degree ordering,
// all replayed through the cache simulator at the Table 3 sweet-spot block
// count.
func AblationReorder(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	featBytes := ds.Features.Cols * 4
	cache := cacheBytesFor(ds)
	sim := func(g *graph.CSR) cachesim.APStats {
		return cachesim.SimulateAP(g, cachesim.APConfig{
			NumBlocks: 16, FeatureBytes: featBytes, CacheBytes: cache,
			ReorderedOutput: true,
		})
	}
	rng := rand.New(rand.NewSource(1))
	scramble := make(graph.Permutation, ds.G.NumVertices)
	for i, v := range rng.Perm(ds.G.NumVertices) {
		scramble[i] = int32(v)
	}
	scrambled := graph.ApplyPermutation(ds.G, scramble)

	t := &table{header: []string{"ordering", "reuse", "total IO MB"}}
	for _, arm := range []struct {
		name string
		g    *graph.CSR
	}{
		{"generated", ds.G},
		{"scrambled", scrambled},
		{"bfs", graph.ApplyPermutation(scrambled, graph.BFSOrder(scrambled))},
		{"degree", graph.ApplyPermutation(scrambled, graph.DegreeOrder(scrambled))},
	} {
		st := sim(arm.g)
		t.add(arm.name, f2(st.EffectiveReuse(featBytes)), f2(float64(st.TotalIO())/1e6))
	}
	t.write(opt.Out)
	return nil
}

// AblationMiniBatchDist scales the Dist-DGL-style distributed mini-batch
// trainer across ranks: sampled work per rank must shrink linearly while
// accuracy holds — the paper's §7 plan for mini-batch DistGNN.
func AblationMiniBatchDist(opt Options) error {
	ds, err := loadLowLabelProducts(opt)
	if err != nil {
		return err
	}
	epochs := opt.epochs(6)
	t := &table{header: []string{"#ranks", "steps/epoch", "sampled work/rank (M ops)",
		"test acc"}}
	for _, ranks := range []int{1, 2, 4, 8} {
		res, err := minibatch.TrainDistributed(ds, minibatch.DistConfig{
			Config: minibatch.Config{
				Hidden: fig5ModelFor("ogbn-products-sim").Hidden, NumLayers: 3,
				Fanouts: table7Fanouts, BatchSize: table7Batch,
				Epochs: epochs, LR: 0.02, UseAdam: true, Seed: 1,
			},
			NumRanks: ranks,
		})
		if err != nil {
			return err
		}
		last := res.Epochs[len(res.Epochs)-1]
		perRank := float64(last.SampledWork) / float64(ranks) / 1e6
		t.add(fmt.Sprint(ranks), fmt.Sprint(last.Steps), f2(perRank), pct(res.TestAcc))
	}
	t.write(opt.Out)
	return nil
}

// AblationDelay sweeps the cd-r delay parameter against the cd-0 reference:
// larger r hides more communication but staler aggregates cost accuracy
// (the paper reports r=5 as the sweet spot, r=10 degrading).
func AblationDelay(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	epochs := opt.epochs(60)
	t := &table{header: []string{"run", "test acc", "epoch (sim)", "RAT"}}
	run := func(algo train.Algorithm, delay int) (*train.DistResult, error) {
		cfg := train.DistConfig{
			Model:         fig5ModelFor("reddit-sim"),
			NumPartitions: 8, Algo: algo, Delay: delay,
			Epochs: epochs, LR: 0.02, UseAdam: true, Seed: 1,
			Compute: calibrated(),
		}
		return train.Distributed(ds, cfg)
	}
	ref, err := run(train.AlgoCD0, 0)
	if err != nil {
		return err
	}
	_, rat := ref.AvgLATRAT(1, epochs)
	t.add("cd-0", pct(ref.TestAcc), ms(ref.AvgEpochSeconds(1, epochs)), ms(rat))
	for _, r := range []int{1, 2, 5, 10} {
		res, err := run(train.AlgoCDR, r)
		if err != nil {
			return err
		}
		lo := 2 * r
		if lo >= epochs {
			lo = epochs / 2
		}
		_, rat := res.AvgLATRAT(lo, epochs)
		t.add(fmt.Sprintf("cd-%d", r), pct(res.TestAcc),
			ms(res.AvgEpochSeconds(lo, epochs)), ms(rat))
	}
	zero, err := run(train.Algo0C, 0)
	if err != nil {
		return err
	}
	_, rat0 := zero.AvgLATRAT(1, epochs)
	t.add("0c", pct(zero.TestAcc), ms(zero.AvgEpochSeconds(1, epochs)), ms(rat0))
	t.write(opt.Out)
	return nil
}

// AblationOverlap isolates the §6.3 mechanism at equal delay: cd-r pays
// its blocking AlltoAllV at the epoch boundary, cd-rs posts the same
// traffic nonblocking as each layer's aggregation completes and hides the
// α+bytes/β term behind the remaining compute — its epoch time must land
// strictly below cd-r's with the exposed remainder ≈ 0, while forcing the
// overlap synchronous gives the cost back without changing one bit of the
// math (the conformance tests in internal/train pin the bit-identity).
func AblationOverlap(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	epochs := opt.epochs(2*fig5Delay + 6)
	lo := 2 * fig5Delay // steady state: delay pipeline full
	if lo >= epochs {
		lo = epochs / 2
	}
	t := &table{header: []string{"run", "test acc", "RAT", "exposed net", "epoch (sim)"}}
	run := func(label string, algo train.Algorithm, force bool) error {
		res, err := train.Distributed(ds, train.DistConfig{
			Model:         fig5ModelFor("reddit-sim"),
			NumPartitions: 8, Algo: algo, Delay: fig5Delay,
			Epochs: epochs, LR: 0.02, UseAdam: true, Seed: 1,
			Compute: calibrated(), ForceSyncOverlap: force,
		})
		if err != nil {
			return err
		}
		_, rat := res.AvgLATRAT(lo, epochs)
		var exposed float64
		for _, e := range res.Epochs[lo:epochs] {
			exposed += e.ExposedNet
		}
		exposed /= float64(epochs - lo)
		t.add(label, pct(res.TestAcc), ms(rat), ms(exposed),
			ms(res.AvgEpochSeconds(lo, epochs)))
		return nil
	}
	if err := run(fmt.Sprintf("cd-%d (blocking)", fig5Delay), train.AlgoCDR, false); err != nil {
		return err
	}
	if err := run(fmt.Sprintf("cd-%ds (overlapped)", fig5Delay), train.AlgoCDRS, false); err != nil {
		return err
	}
	if err := run(fmt.Sprintf("cd-%ds (forced sync)", fig5Delay), train.AlgoCDRS, true); err != nil {
		return err
	}
	t.write(opt.Out)
	return nil
}

// AblationPrecision measures the §7 low-precision extension: halved wire
// volume must cut cd-0's exposed network time with negligible accuracy
// loss.
func AblationPrecision(opt Options) error {
	ds, err := loadDataset("ogbn-products-sim", opt.scale())
	if err != nil {
		return err
	}
	epochs := opt.epochs(50)
	t := &table{header: []string{"algo", "precision", "test acc", "RAT", "epoch (sim)"}}
	for _, algo := range []train.Algorithm{train.AlgoCD0, train.AlgoCDR} {
		for _, p := range []quant.Precision{quant.FP32, quant.BF16, quant.FP16} {
			cfg := train.DistConfig{
				Model:         fig5ModelFor("ogbn-products-sim"),
				NumPartitions: 8, Algo: algo,
				Epochs: epochs, LR: 0.02, UseAdam: true, Seed: 1,
				Compute: calibrated(), CommPrecision: p,
			}
			label := string(algo)
			if algo == train.AlgoCDR {
				cfg.Delay = fig5Delay
				label = fmt.Sprintf("cd-%d", fig5Delay)
			}
			res, err := train.Distributed(ds, cfg)
			if err != nil {
				return err
			}
			lo, hi := epochWindow(algo, epochs)
			_, rat := res.AvgLATRAT(lo, hi)
			t.add(label, p.String(), pct(res.TestAcc), ms(rat),
				ms(res.AvgEpochSeconds(lo, hi)))
		}
	}
	t.write(opt.Out)
	return nil
}

// AblationPartitioner swaps Libra for the naive baselines and shows the
// replication factor directly drives remote-aggregation cost (§5.1's
// motivation for vertex-cut quality).
func AblationPartitioner(opt Options) error {
	ds, err := loadDataset("ogbn-products-sim", opt.scale())
	if err != nil {
		return err
	}
	epochs := opt.epochs(8)
	t := &table{header: []string{"partitioner", "replication", "RAT", "epoch (sim)"}}
	for _, p := range []partition.Partitioner{
		partition.Libra{Seed: 1}, partition.RandomEdge{Seed: 1}, partition.HashVertex{},
	} {
		res, err := train.Distributed(ds, train.DistConfig{
			Model:         fig5ModelFor("ogbn-products-sim"),
			NumPartitions: 8, Algo: train.AlgoCD0,
			Epochs: epochs, LR: 0.02, Seed: 1,
			Partitioner: p, Compute: calibrated(),
		})
		if err != nil {
			return err
		}
		_, rat := res.AvgLATRAT(1, epochs)
		t.add(p.Name(), f2(res.Replication), ms(rat),
			ms(res.AvgEpochSeconds(1, epochs)))
	}
	t.write(opt.Out)
	return nil
}

// AblationModel trains the three model families on the same dataset —
// GraphSAGE's GCN aggregator (the paper's configuration), the GIN combine,
// and single-head GAT — demonstrating the substrate generalizes beyond
// GraphSAGE (§7 future work).
func AblationModel(opt Options) error {
	ds, err := loadDataset("ogbn-products-sim", opt.scale())
	if err != nil {
		return err
	}
	epochs := opt.epochs(40)
	t := &table{header: []string{"model", "test acc", "train acc"}}

	for _, agg := range []model.Aggregator{model.AggGCN, model.AggGIN, model.AggMaxPool} {
		cfg := train.SingleConfig{
			Model:  model.Config{Hidden: 64, NumLayers: 2, Aggregator: agg, GINEps: 0.1, Seed: 1},
			Epochs: epochs, LR: 0.01, UseAdam: true,
		}
		res, err := train.SingleSocket(ds, cfg)
		if err != nil {
			return err
		}
		t.add("graphsage-"+agg.String(), pct(res.TestAcc), pct(res.TrainAcc))
	}

	for _, heads := range []int{1, 4} {
		// Output width must divide the head count; padding classes (never
		// the argmax of a trained model) round it up when needed.
		out := ((ds.NumClasses + heads - 1) / heads) * heads
		gat, err := model.NewGAT(ds.G, model.GATConfig{
			InDim: ds.Features.Cols, Hidden: 64, OutDim: out,
			NumLayers: 2, NumHeads: heads, Seed: 1,
		})
		if err != nil {
			return err
		}
		adam := nn.NewAdam(0.01, 0)
		params := gat.Params()
		for e := 0; e < epochs; e++ {
			logits := gat.Forward(ds.Features, true)
			_, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
			nn.ZeroGrads(params)
			gat.Backward(dlogits)
			adam.Step(params)
		}
		logits := gat.Forward(ds.Features, false)
		t.add(fmt.Sprintf("gat-%dhead", heads),
			pct(nn.Accuracy(logits, ds.Labels, ds.TestIdx)),
			pct(nn.Accuracy(logits, ds.Labels, ds.TrainIdx)))
	}
	t.write(opt.Out)
	return nil
}
