// Package bench regenerates every table and figure of the DistGNN paper's
// evaluation (§6) on the synthetic calibrated datasets. Each experiment is
// a Run* function that prints the same rows/series the paper reports;
// cmd/distgnn-bench exposes them by ID (fig2, table3, …). Absolute numbers
// differ from the paper (different hardware, scaled datasets); the shapes —
// who wins, by what factor, where crossovers fall — are the reproduction
// target, as recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
)

// Options configure an experiment run.
type Options struct {
	// Scale multiplies dataset sizes (1.0 = registry base size).
	Scale float64
	// Epochs overrides the per-experiment default epoch count when > 0.
	Epochs int
	// Out receives the experiment's table; defaults to os.Stdout upstream.
	Out io.Writer
	// JSON, when set, receives a machine-readable report from experiments
	// that emit one (abl-transport → BENCH_transport.json, abl-serve →
	// BENCH_serve.json CI artifacts). Experiments without a JSON form
	// ignore it.
	JSON io.Writer
}

func (o *Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.5
	}
	return o.Scale
}

func (o *Options) epochs(def int) int {
	if o.Epochs > 0 {
		return o.Epochs
	}
	return def
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) error
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig2", "Fig. 2: single-socket epoch & AP time, baseline vs optimized", Fig2},
		{"table3", "Table 3: cache reuse vs number of blocks", Table3},
		{"fig3", "Fig. 3: AP time and memory IO vs number of blocks", Fig3},
		{"fig4", "Fig. 4: optimization breakdown (DS, Block, LR)", Fig4},
		{"table4", "Table 4: replication factor vs partition count (Libra)", Table4},
		{"fig5", "Fig. 5: distributed epoch time and speedup (0c/cd-0/cd-r)", Fig5},
		{"fig6", "Fig. 6: forward-pass local vs remote aggregation scaling", Fig6},
		{"table5", "Table 5: test accuracy of distributed algorithms", Table5},
		{"table6", "Table 6: per-partition memory and split-vertex fraction", Table6},
		{"table7", "Table 7: mini-batch (Dist-DGL) aggregation work per hop", Table7},
		{"table8", "Table 8: full-batch (DistGNN) aggregation work per hop", Table8},
		{"table9", "Table 9: Dist-DGL vs DistGNN training time", Table9},
	}
}

// Lookup finds an experiment by ID among the paper artifacts and the
// ablation studies.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range Ablations() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// table is a minimal fixed-width table printer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// datasetCache avoids regenerating datasets across experiments in one
// process (the bench CLI runs several back to back).
var (
	dsMu    sync.Mutex
	dsCache = map[string]*datasets.Dataset{}
)

func loadDataset(name string, scale float64) (*datasets.Dataset, error) {
	key := fmt.Sprintf("%s@%g", name, scale)
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	d, err := datasets.Load(name, scale)
	if err != nil {
		return nil, err
	}
	dsCache[key] = d
	return d, nil
}

// calibrated returns the machine-calibrated compute model, measured once.
var calibrated = sync.OnceValue(comm.CalibrateComputeModel)

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func ms(sec float64) string {
	return fmt.Sprintf("%.3f ms", sec*1e3)
}
