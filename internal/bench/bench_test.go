package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// tinyOptions keeps smoke runs fast: smallest datasets, minimal epochs.
func tinyOptions(buf io.Writer) Options {
	return Options{Scale: 0.1, Epochs: 2, Out: buf}
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"fig2", "table3", "fig3", "fig4", "table4", "fig5",
		"fig6", "table5", "table6", "table7", "table8", "table9"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, w := range want {
		if ids[i] != w {
			t.Fatalf("registry order: got %v", ids)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig2"); !ok {
		t.Fatal("fig2 must be registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

// Every experiment must run end to end at tiny scale and produce a table
// with a header and at least one data row.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke runs take a few seconds each")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyOptions(&buf)); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if len(lines) < 3 {
				t.Fatalf("%s: output too short:\n%s", e.ID, buf.String())
			}
		})
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke runs take a few seconds each")
	}
	for _, e := range Ablations() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyOptions(&buf)); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) < 3 {
				t.Fatalf("%s: output too short:\n%s", e.ID, buf.String())
			}
		})
	}
}

func TestAblationLookup(t *testing.T) {
	for _, e := range Ablations() {
		if _, ok := Lookup(e.ID); !ok {
			t.Fatalf("ablation %s not resolvable", e.ID)
		}
	}
}

func TestTablePrinterAlignment(t *testing.T) {
	var buf bytes.Buffer
	tb := &table{header: []string{"a", "bbbb"}}
	tb.add("xxxxx", "y")
	tb.write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %v", lines)
	}
	if !strings.HasPrefix(lines[0], "a    ") {
		t.Fatalf("header not padded to widest cell: %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.scale() != 0.5 {
		t.Fatalf("default scale %v", o.scale())
	}
	if o.epochs(7) != 7 {
		t.Fatal("default epochs must use fallback")
	}
	o.Epochs = 3
	if o.epochs(7) != 3 {
		t.Fatal("explicit epochs must win")
	}
}

func TestDatasetCacheReturnsSameInstance(t *testing.T) {
	a, err := loadDataset("am-sim", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadDataset("am-sim", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset cache must return the cached instance")
	}
	c, err := loadDataset("am-sim", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different scales must not share instances")
	}
}

func TestFormattingHelpers(t *testing.T) {
	if f2(1.234) != "1.23" || f3(1.2345) != "1.234" {
		t.Fatal("float formatting wrong")
	}
	if pct(0.5) != "50.0%" {
		t.Fatalf("pct: %s", pct(0.5))
	}
	if ms(0.001) != "1.000 ms" {
		t.Fatalf("ms: %s", ms(0.001))
	}
}
