package bench

import (
	"fmt"

	"distgnn/internal/model"
	"distgnn/internal/partition"
	"distgnn/internal/train"
	"distgnn/internal/workmodel"
)

// table4Sweeps mirrors Table 4's partition counts per dataset (scaled: the
// papers row sweeps up to 128).
var table4Sweeps = map[string][]int{
	"reddit-sim":        {2, 4, 8, 16},
	"ogbn-products-sim": {2, 4, 8, 16, 32, 64},
	"proteins-sim":      {2, 4, 8, 16, 32, 64},
	"ogbn-papers-sim":   {32, 64, 128},
}

var table4Order = []string{"reddit-sim", "ogbn-products-sim", "proteins-sim", "ogbn-papers-sim"}

// Table4 reports Libra's average replication factor per partition count,
// plus the edge balance — §5.1's two partitioning goals.
func Table4(opt Options) error {
	t := &table{header: []string{"dataset", "#partitions", "replication", "edge balance"}}
	for _, name := range table4Order {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return err
		}
		for _, k := range table4Sweeps[name] {
			pt, err := partition.Partition(ds.G, partition.Libra{Seed: 1}, k, 1)
			if err != nil {
				return err
			}
			t.add(name, fmt.Sprint(k), f2(pt.ReplicationFactor()), f3(pt.EdgeBalance()))
		}
	}
	t.write(opt.Out)
	return nil
}

// fig5Sweeps mirrors Fig. 5's socket counts (papers-sim starts at 32 in the
// paper for memory reasons; here it simply follows the same sweep).
var fig5Sweeps = map[string][]int{
	"reddit-sim":        {2, 4, 8, 16},
	"ogbn-products-sim": {2, 4, 8, 16, 32, 64},
	"proteins-sim":      {2, 4, 8, 16, 32, 64},
	"ogbn-papers-sim":   {32, 64, 128},
}

const fig5Delay = 5 // the paper runs cd-r with r=5 throughout

// fig5ModelFor returns the paper's model shape for a dataset (2×16 for
// Reddit, 3×256 otherwise), with a smaller hidden size to keep the scaled
// runs brisk.
func fig5ModelFor(name string) model.Config {
	if name == "reddit-sim" {
		return model.Config{Hidden: 16, NumLayers: 2, Seed: 1}
	}
	return model.Config{Hidden: 64, NumLayers: 3, Seed: 1}
}

// distRun executes one distributed configuration and returns its result.
func distRun(opt Options, name string, k int, algo train.Algorithm, epochs int) (*train.DistResult, error) {
	ds, err := loadDataset(name, opt.scale())
	if err != nil {
		return nil, err
	}
	cfg := train.DistConfig{
		Model:         fig5ModelFor(name),
		NumPartitions: k,
		Algo:          algo,
		Epochs:        epochs,
		LR:            0.01,
		Seed:          1,
		Compute:       calibrated(),
	}
	if algo == train.AlgoCDR {
		cfg.Delay = fig5Delay
	}
	return train.Distributed(ds, cfg)
}

// epochWindow returns the averaging window the paper uses: epochs 1–10 for
// 0c/cd-0 and 10–20 for cd-r (steady state after the delay pipeline fills).
func epochWindow(algo train.Algorithm, epochs int) (int, int) {
	if algo == train.AlgoCDR {
		lo := 2 * fig5Delay
		if lo >= epochs {
			lo = epochs / 2
		}
		return lo, epochs
	}
	return 1, epochs
}

// Fig5 reports simulated per-epoch time and speedup over the optimized
// single-socket run for the three distributed algorithms across socket
// counts.
func Fig5(opt Options) error {
	t := &table{header: []string{"dataset", "#sockets", "algo",
		"epoch (sim)", "speedup vs 1 socket"}}
	epochs := opt.epochs(2*fig5Delay + 6)
	for _, name := range table4Order {
		// Single-socket reference: one partition, no communication.
		ref, err := distRun(opt, name, 1, train.Algo0C, opt.epochs(4))
		if err != nil {
			return err
		}
		refTime := ref.AvgEpochSeconds(1, opt.epochs(4))
		t.add(name, "1", "single", ms(refTime), "1.00")
		for _, k := range fig5Sweeps[name] {
			for _, algo := range []train.Algorithm{train.AlgoCD0, train.AlgoCDR, train.Algo0C} {
				res, err := distRun(opt, name, k, algo, epochs)
				if err != nil {
					return err
				}
				lo, hi := epochWindow(algo, epochs)
				et := res.AvgEpochSeconds(lo, hi)
				label := string(algo)
				if algo == train.AlgoCDR {
					label = fmt.Sprintf("cd-%d", fig5Delay)
				}
				t.add(name, fmt.Sprint(k), label, ms(et), f2(refTime/et))
			}
		}
	}
	t.write(opt.Out)
	return nil
}

// Fig6 reports the forward-pass split into local aggregation time (LAT)
// and remote aggregation time (RAT) per algorithm and socket count.
func Fig6(opt Options) error {
	t := &table{header: []string{"dataset", "#sockets", "algo", "LAT", "RAT"}}
	epochs := opt.epochs(2*fig5Delay + 6)
	for _, name := range table4Order {
		for _, k := range fig5Sweeps[name] {
			for _, algo := range []train.Algorithm{train.AlgoCD0, train.AlgoCDR, train.Algo0C} {
				res, err := distRun(opt, name, k, algo, epochs)
				if err != nil {
					return err
				}
				lo, hi := epochWindow(algo, epochs)
				lat, rat := res.AvgLATRAT(lo, hi)
				label := string(algo)
				if algo == train.AlgoCDR {
					label = fmt.Sprintf("cd-%d", fig5Delay)
				}
				t.add(name, fmt.Sprint(k), label, ms(lat), ms(rat))
			}
		}
	}
	t.write(opt.Out)
	return nil
}

// table5Sweeps mirrors Table 5's socket counts.
var table5Sweeps = map[string][]int{
	"reddit-sim":        {1, 2, 4, 8, 16},
	"ogbn-products-sim": {1, 2, 4, 8, 16},
	"ogbn-papers-sim":   {1, 8},
}

var table5Order = []string{"reddit-sim", "ogbn-products-sim", "ogbn-papers-sim"}

// Table5 trains to convergence under each distributed algorithm and
// reports global test accuracy — the paper's claim is that cd-r and 0c
// stay within ~1% of cd-0/single-socket.
func Table5(opt Options) error {
	t := &table{header: []string{"dataset", "#sockets",
		"cd-0 acc", "cd-5 acc", "0c acc"}}
	epochs := opt.epochs(60)
	for _, name := range table5Order {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return err
		}
		for _, k := range table5Sweeps[name] {
			row := []string{name, fmt.Sprint(k)}
			for _, algo := range []train.Algorithm{train.AlgoCD0, train.AlgoCDR, train.Algo0C} {
				cfg := train.DistConfig{
					Model:         fig5ModelFor(name),
					NumPartitions: k,
					Algo:          algo,
					Epochs:        epochs,
					LR:            0.01,
					UseAdam:       true,
					Seed:          1,
					Compute:       calibrated(),
				}
				if algo == train.AlgoCDR {
					cfg.Delay = fig5Delay
				}
				res, err := train.Distributed(ds, cfg)
				if err != nil {
					return err
				}
				row = append(row, pct(res.TestAcc))
			}
			t.add(row...)
		}
	}
	t.write(opt.Out)
	return nil
}

// Table6 reports the per-partition peak memory estimate of each algorithm
// and the measured split-vertex percentage for the papers-sim dataset.
func Table6(opt Options) error {
	ds, err := loadDataset("ogbn-papers-sim", opt.scale())
	if err != nil {
		return err
	}
	t := &table{header: []string{"partitions", "cd-0 mem (MB)", "cd-5 mem (MB)",
		"0c mem (MB)", "split-vertices/partition"}}
	for _, k := range []int{32, 64, 128} {
		pt, err := partition.Partition(ds.G, partition.Libra{Seed: 1}, k, 1)
		if err != nil {
			return err
		}
		// Largest partition bounds peak memory.
		maxPart := 0
		for _, p := range pt.Parts {
			if p.NumLocal() > pt.Parts[maxPart].NumLocal() {
				maxPart = p.ID
			}
		}
		splitCounts := make([]int, k)
		for _, sv := range pt.Splits {
			for _, c := range sv.Clones {
				splitCounts[c.Part]++
			}
		}
		p := workmodel.MemoryParams{
			N: pt.Parts[maxPart].NumLocal(),
			F: ds.Features.Cols, H1: 64, H2: 64, L: ds.NumClasses,
			Edges:         pt.Parts[maxPart].G.NumEdges,
			SplitVertices: splitCounts[maxPart],
			Delay:         fig5Delay,
		}
		mem := func(algo string) string {
			b, err := workmodel.Memory(p, algo)
			if err != nil {
				return "?"
			}
			return f2(float64(b) / 1e6)
		}
		fracs := pt.SplitVertexFraction()
		var avg float64
		for _, f := range fracs {
			avg += f
		}
		avg /= float64(len(fracs))
		t.add(fmt.Sprint(k), mem(workmodel.AlgoCD0), mem(workmodel.AlgoCDR),
			mem(workmodel.Algo0C), pct(avg))
	}
	t.write(opt.Out)
	return nil
}
