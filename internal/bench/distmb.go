package bench

import (
	"encoding/json"
	"fmt"
	"math"

	"distgnn/internal/minibatch"
)

// distmb.go is the abl-distmb ablation: wall-clock epoch time and halo
// behaviour of the featstore-backed sharded mini-batch trainer
// (minibatch.TrainSharded) across rank counts on the in-process fabric.
// Every arm trains the same model to the same bits as the replicated
// reference at its rank count (the conformance harness in
// internal/minibatch pins that); what this ablation measures is the cost
// of sourcing features remotely — halo fetch volume, cache hit rate, and
// the wall-epoch trajectory as ranks are added. With Options.JSON set the
// rows land in BENCH_distmb.json together with the regression-gated
// Metrics/CalibSeconds envelope. Only the 1-rank arm is gated: multi-rank
// in-process arms timeshare the host's cores, so their wall time measures
// the machine's parallelism, not the code.

const (
	distMBHidden     = 64
	distMBBatch      = 512
	distMBFanout     = 10
	distMBCacheBytes = 32 << 20
)

// DistMBRow is one rank-count arm of the sharded mini-batch ablation.
type DistMBRow struct {
	Ranks int `json:"ranks"`
	// EpochS is the min-over-epochs wall time (steady state, insulated
	// from first-epoch warmup and cold halo caches).
	EpochS float64 `json:"epoch_s"`
	Steps  int     `json:"steps"`
	// HaloHitRate is the fleet-wide remote-row cache hit rate.
	HaloHitRate float64 `json:"halo_hit_rate"`
	// HaloFetchedRows counts feature rows actually pulled from peers.
	HaloFetchedRows int64   `json:"halo_fetched_rows"`
	TestAcc         float64 `json:"test_acc"`
}

// DistMBBenchReport is the BENCH_distmb.json schema. Metrics and
// CalibSeconds form the MetricsEnvelope the regression gate consumes.
type DistMBBenchReport struct {
	Experiment   string             `json:"experiment"`
	Scale        float64            `json:"scale"`
	Epochs       int                `json:"epochs"`
	Rows         []DistMBRow        `json:"rows"`
	Metrics      map[string]float64 `json:"metrics"`
	CalibSeconds float64            `json:"calib_seconds"`
}

// AblationDistMB measures sharded mini-batch training over the shared
// feature-sourcing plane: wall epoch and halo hit rate vs rank count.
func AblationDistMB(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	epochs := opt.epochs(3)
	report := DistMBBenchReport{
		Experiment: "abl-distmb", Scale: opt.scale(), Epochs: epochs,
		Metrics: map[string]float64{},
	}
	t := &table{header: []string{"#ranks", "epoch (wall)", "steps", "halo hit", "rows fetched", "test acc"}}
	for _, ranks := range []int{1, 2, 4} {
		res, err := minibatch.TrainSharded(ds, minibatch.ShardedTrainConfig{
			DistConfig: minibatch.DistConfig{
				Config: minibatch.Config{
					Hidden: distMBHidden, NumLayers: 2,
					Fanouts:   []int{distMBFanout, distMBFanout},
					BatchSize: distMBBatch, Epochs: epochs,
					LR: 0.02, UseAdam: true, Seed: 1,
				},
				NumRanks: ranks,
			},
			CacheBytes: distMBCacheBytes,
		})
		if err != nil {
			return err
		}
		best := math.Inf(1)
		for _, e := range res.Epochs {
			if sec := e.Time.Seconds(); sec < best {
				best = sec
			}
		}
		var hits, misses, fetched int64
		for _, hs := range res.HaloStats {
			hits += hs.HaloHits
			misses += hs.HaloMisses
			fetched += hs.HaloFetchedVertices
		}
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		row := DistMBRow{
			Ranks: ranks, EpochS: best, Steps: res.Epochs[len(res.Epochs)-1].Steps,
			HaloHitRate: rate, HaloFetchedRows: fetched, TestAcc: res.TestAcc,
		}
		report.Rows = append(report.Rows, row)
		if ranks == 1 {
			// The only machine-independent wall metric: one rank keeps the
			// featstore plane engaged (slab gathers, zero halo) without
			// timesharing artifacts from co-scheduled in-process ranks.
			report.Metrics["epoch_r1_s"] = best
		}
		t.add(fmt.Sprint(ranks), ms(best), fmt.Sprint(row.Steps),
			pct(rate), fmt.Sprint(fetched), pct(res.TestAcc))
	}
	t.write(opt.Out)

	report.CalibSeconds = CalibrationSeconds()
	if opt.JSON != nil {
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}
