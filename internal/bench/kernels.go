package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"distgnn/internal/minibatch"
	"distgnn/internal/quant"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// kernels.go is the abl-kernels ablation: the raw-speed trajectory of the
// aggregation hot path. Three arms over the same exact (full-neighborhood)
// bipartite block at d=64 and d=128:
//
//   - scalar-fp32: materialize the |frontier|×d gathered matrix, then
//     AggregateGCN — the pre-fusion pipeline, and the traffic ceiling.
//   - fused-fp32: GatherAggGCNSum streams rows straight out of the fp32
//     store (bit-identical math, no gathered matrix).
//   - fused-bf16: same kernel over the 16-bit slab — half the feature-read
//     bytes, float32 accumulation.
//
// Plus the end-to-end check the kernels exist to move: mini-batch wall
// time per epoch, fp32 vs bf16 feature storage. With Options.JSON set the
// rows land in BENCH_kernels.json together with the regression-gated
// Metrics/CalibSeconds envelope (see regress.go); BENCH_baseline/ holds
// the committed trajectory that `distgnn-bench -check` diffs against.

const (
	kernelBenchSeeds   = 4096
	kernelBenchHidden  = 64
	kernelBenchBatch   = 512
	kernelBenchFanout  = 10
	kernelBenchMinTime = 0.05 // seconds of work per timing sample
)

// KernelBenchRow is one (d, arm) measurement over the shared block.
type KernelBenchRow struct {
	D   int    `json:"d"`
	Arm string `json:"arm"`
	// PassMS is the min-of-N wall time of one full aggregation pass.
	PassMS float64 `json:"pass_ms"`
	// TrafficMB models the feature bytes moved per pass (store reads, plus
	// the gathered matrix's write+read for the scalar arm).
	TrafficMB float64 `json:"traffic_mb"`
	MBPerSec  float64 `json:"mb_per_sec"`
	// SpeedupVsScalar is scalar-fp32 pass time / this arm's pass time at
	// the same d.
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
}

// KernelsBenchReport is the BENCH_kernels.json schema. Metrics and
// CalibSeconds form the MetricsEnvelope the regression gate consumes.
type KernelsBenchReport struct {
	Experiment string           `json:"experiment"`
	Scale      float64          `json:"scale"`
	Epochs     int              `json:"epochs"`
	NumDst     int              `json:"num_dst"`
	NumSrc     int              `json:"num_src"`
	Edges      int              `json:"edges"`
	Rows       []KernelBenchRow `json:"rows"`
	// Metrics are the gated lower-is-better seconds (see MetricsEnvelope):
	// agg_<arm>_d<D>_s per arm and train_epoch_<prec>_s end to end.
	Metrics      map[string]float64 `json:"metrics"`
	CalibSeconds float64            `json:"calib_seconds"`
}

// kernelSink defeats dead-code elimination of the timed passes.
var kernelSink float32

// AblationKernels measures the aggregation-kernel arms and the wall-epoch
// trajectory they drive.
func AblationKernels(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	seeds := strideSample(ds.G.NumVertices, kernelBenchSeeds)
	// A fanout-sampled block — the shape the mini-batch trainer's layer 0
	// actually runs, where each frontier row is read roughly once and the
	// scalar pipeline's materialized gather is nearly a full extra pass.
	sampler, err := minibatch.NewSampler(ds.G, []int{kernelBenchFanout}, 1)
	if err != nil {
		return err
	}
	s := sampler.Sample(seeds)
	blk := s.Blocks[0]
	frontier := s.InputFrontier()
	nnz := len(blk.Indices)

	report := KernelsBenchReport{
		Experiment: "abl-kernels", Scale: opt.scale(), Epochs: opt.epochs(2),
		NumDst: blk.NumDst, NumSrc: blk.NumSrc, Edges: nnz,
		Metrics: map[string]float64{},
	}
	t := &table{header: []string{"d", "arm", "pass", "traffic MB", "MB/s", "vs scalar"}}
	for _, d := range []int{64, 128} {
		x := syntheticFeatures(ds.G.NumVertices, d)
		slab := tensor.BF16FromMatrix(x)

		// Feature bytes moved per pass: every arm reads (edges + self) rows
		// from its source; the scalar arm first round-trips the gathered
		// matrix (store read + write, then aggregate reads it back).
		rowReads := float64(nnz+blk.NumDst) * float64(d)
		gatherRT := float64(blk.NumSrc) * float64(d) * (4 + 4)
		arms := []struct {
			name   string
			bytes  float64
			metric string
			run    func()
		}{
			{"scalar-fp32", gatherRT + rowReads*4, fmt.Sprintf("agg_scalar_fp32_d%d_s", d), func() {
				// The pre-fusion pipeline exactly: a fresh |frontier|×d
				// gathered matrix per pass, filled row by row through
				// FeatRows.CopyRow (what gatherFeatures did per sample),
				// then the block aggregate over it.
				rows := spmm.RowsOf(x)
				gathered := tensor.New(len(frontier), d)
				for i, v := range frontier {
					rows.CopyRow(gathered.Row(i), int(v))
				}
				out := minibatch.AggregateGCN(blk, gathered, blk.Norms())
				kernelSink += out.Data[0]
			}},
			{"fused-fp32", rowReads * 4, fmt.Sprintf("agg_fused_fp32_d%d_s", d), func() {
				out := minibatch.AggregateGCNFrom(blk, spmm.RowsOf(x), frontier)
				kernelSink += out.Data[0]
			}},
			{"fused-bf16", rowReads * 2, fmt.Sprintf("agg_fused_bf16_d%d_s", d), func() {
				out := minibatch.AggregateGCNFrom(blk, spmm.RowsOfBF16(slab), frontier)
				kernelSink += out.Data[0]
			}},
		}
		var scalarSec float64
		for i, arm := range arms {
			sec := timePass(arm.run)
			if i == 0 {
				scalarSec = sec
			}
			report.Metrics[arm.metric] = sec
			row := KernelBenchRow{
				D: d, Arm: arm.name, PassMS: sec * 1e3,
				TrafficMB: arm.bytes / 1e6, MBPerSec: arm.bytes / 1e6 / sec,
				SpeedupVsScalar: scalarSec / sec,
			}
			report.Rows = append(report.Rows, row)
			t.add(fmt.Sprint(d), arm.name, ms(sec), f2(row.TrafficMB),
				fmt.Sprintf("%.0f", row.MBPerSec), f2(row.SpeedupVsScalar)+"x")
		}
	}
	t.write(opt.Out)

	// End to end: the mini-batch epoch these kernels sit inside. Min over
	// epochs — the steady-state epoch, insulated from first-epoch warmup.
	for _, arm := range []struct {
		label  string
		metric string
		prec   quant.Precision
	}{
		{"fp32", "train_epoch_fp32_s", quant.FP32},
		{"bf16", "train_epoch_bf16_s", quant.BF16},
	} {
		res, err := minibatch.Train(ds, minibatch.Config{
			Hidden: kernelBenchHidden, NumLayers: 2,
			Fanouts:   []int{kernelBenchFanout, kernelBenchFanout},
			BatchSize: kernelBenchBatch, Epochs: opt.epochs(2),
			LR: 0.02, UseAdam: true, Seed: 1, FeatPrecision: arm.prec,
		})
		if err != nil {
			return err
		}
		best := math.Inf(1)
		for _, e := range res.Epochs {
			if sec := e.Time.Seconds(); sec < best {
				best = sec
			}
		}
		report.Metrics[arm.metric] = best
		fmt.Fprintf(opt.Out, "wall-epoch (%s features): %s   test acc %s\n",
			arm.label, ms(best), pct(res.TestAcc))
	}

	report.CalibSeconds = CalibrationSeconds()
	if opt.JSON != nil {
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

// strideSample picks up to k evenly spaced vertices.
func strideSample(n, k int) []int32 {
	if k > n {
		k = n
	}
	step := n / k
	if step < 1 {
		step = 1
	}
	out := make([]int32, k)
	for i := range out {
		out[i] = int32((i * step) % n)
	}
	return out
}

// syntheticFeatures builds a deterministic NumVertices×d matrix (LCG fill)
// so the arms run at widths the dataset's native features don't have.
func syntheticFeatures(n, d int) *tensor.Matrix {
	x := tensor.New(n, d)
	state := uint32(1)
	for i := range x.Data {
		state = state*1664525 + 1013904223
		x.Data[i] = float32(state>>8)/float32(1<<24) - 0.5
	}
	return x
}

// timePass returns the min-of-5 per-pass wall time, with the rep count
// sized so each timing sample covers at least kernelBenchMinTime seconds.
func timePass(f func()) float64 {
	f() // warm caches and the allocator
	t0 := time.Now()
	f()
	once := time.Since(t0).Seconds()
	reps := 1
	if once > 0 && once < kernelBenchMinTime {
		reps = int(kernelBenchMinTime/once) + 1
	}
	if reps > 200 {
		reps = 200
	}
	best := math.Inf(1)
	for r := 0; r < 5; r++ {
		t0 := time.Now()
		for k := 0; k < reps; k++ {
			f()
		}
		if sec := time.Since(t0).Seconds() / float64(reps); sec < best {
			best = sec
		}
	}
	return best
}
