package bench

// obs.go is the abl-obs ablation: the observability plane's overhead
// contract, measured end to end. The same closed-loop /predict workload as
// abl-serve runs against three arms of one serving configuration — obs
// fully disabled (nil registry and tracer, the no-op fast path), metrics
// registry enabled, and metrics plus per-request tracing — and the report
// carries each arm's latency distribution. The contract: disabled obs is
// free by construction (every method on a nil handle returns immediately),
// and the metered arms stay within a few percent of the disabled arm's
// p95. The gated envelope pins all three p95s so a regression in either
// the instrument hooks or the no-op path fails -check.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/obs"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

// ObsBenchRow is one observability arm's measurement.
type ObsBenchRow struct {
	Arm      string  `json:"arm"` // off, metrics, metrics+trace
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// ObsBenchReport is the BENCH_obs.json schema.
type ObsBenchReport struct {
	Experiment string        `json:"experiment"`
	Scale      float64       `json:"scale"`
	Epochs     int           `json:"epochs"`
	Results    []ObsBenchRow `json:"results"`
	// MetricsOverheadP95 and TraceOverheadP95 are each metered arm's p95
	// divided by the disabled arm's p95 — the headline overhead ratios
	// (want ≈1).
	MetricsOverheadP95 float64 `json:"metrics_overhead_p95"`
	TraceOverheadP95   float64 `json:"trace_overhead_p95"`
	// Metrics and CalibSeconds are the regression-gate envelope: absolute
	// p95 per arm, so both the hot hooks and the no-op path are pinned.
	Metrics      map[string]float64 `json:"metrics"`
	CalibSeconds float64            `json:"calib_seconds"`
}

// AblationObs measures the metrics and tracing hooks' serving-path cost.
func AblationObs(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: serveBenchHidden, NumLayers: serveBenchLayers, Seed: 1},
		Epochs: opt.epochs(5), LR: 0.02, UseAdam: true,
	})
	if err != nil {
		return err
	}
	var ckpt bytes.Buffer
	if err := nn.WriteParams(&ckpt, res.Model.Params()); err != nil {
		return err
	}

	workSet := make([]int32, min(serveBenchWorkSet, ds.G.NumVertices))
	step := ds.G.NumVertices / len(workSet)
	if step < 1 {
		step = 1
	}
	for i := range workSet {
		workSet[i] = int32((i * step) % ds.G.NumVertices)
	}

	report := ObsBenchReport{Experiment: "abl-obs", Scale: opt.scale(), Epochs: opt.epochs(5)}
	t := &table{header: []string{"arm", "QPS", "p50", "p95", "p99"}}
	for _, arm := range []string{"off", "metrics", "metrics+trace"} {
		cfg := serve.Config{
			Arch: serve.ArchGraphSAGE, Hidden: serveBenchHidden, NumLayers: serveBenchLayers,
			MaxBatch: serveBenchMaxBatch, MaxWait: serveBenchMaxWait,
		}
		switch arm {
		case "metrics":
			cfg.Metrics = obs.NewRegistry()
		case "metrics+trace":
			cfg.Metrics = obs.NewRegistry()
			// No slow log: the arm prices the span bookkeeping and ring
			// buffer, not JSONL encoding of outliers.
			cfg.Tracer = obs.NewTracer(obs.TracerConfig{Role: "server", Rank: -1})
		}
		row, err := runServeArm(ds, ckpt.Bytes(), cfg, 8, workSet, false)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, ObsBenchRow{
			Arm: arm, Requests: row.Requests, QPS: row.QPS,
			P50MS: row.P50MS, P95MS: row.P95MS, P99MS: row.P99MS,
		})
		t.add(arm, fmt.Sprintf("%.0f", row.QPS),
			fmt.Sprintf("%.2fms", row.P50MS), fmt.Sprintf("%.2fms", row.P95MS),
			fmt.Sprintf("%.2fms", row.P99MS))
	}
	t.write(opt.Out)

	off := report.Results[0]
	if off.P95MS > 0 {
		report.MetricsOverheadP95 = report.Results[1].P95MS / off.P95MS
		report.TraceOverheadP95 = report.Results[2].P95MS / off.P95MS
	}
	fmt.Fprintf(opt.Out, "\np95 overhead vs obs-off: metrics %.2fx, metrics+trace %.2fx (want ≈1)\n",
		report.MetricsOverheadP95, report.TraceOverheadP95)

	report.Metrics = map[string]float64{
		"obs_off_p95_ms":   off.P95MS,
		"obs_on_p95_ms":    report.Results[1].P95MS,
		"obs_trace_p95_ms": report.Results[2].P95MS,
	}
	report.CalibSeconds = CalibrationSeconds()

	if opt.JSON != nil {
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}
