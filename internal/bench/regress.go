package bench

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// regress.go is the perf regression gate behind `distgnn-bench -check`:
// gated experiments emit a MetricsEnvelope inside their JSON report, a
// baseline envelope lives in BENCH_baseline/<experiment>.json (committed,
// regenerated with -update-baseline), and CheckRegression diffs the two.
// Raw wall times are not comparable across machines, so every envelope
// carries the wall time of a fixed scalar calibration workload measured on
// the machine that produced it; the gate scales the baseline's budget by
// the calibration ratio before applying the tolerance. A 1.3×-slower CI
// runner gets a 1.3×-larger budget — only a genuinely slower kernel fails.

// MetricsEnvelope is the machine-comparable subset of a gated experiment's
// JSON report (the report structs embed these fields under the same keys).
type MetricsEnvelope struct {
	Experiment string  `json:"experiment"`
	Scale      float64 `json:"scale"`
	Epochs     int     `json:"epochs"`
	// Metrics are lower-is-better wall-clock quantities (seconds or ms —
	// any unit, as long as baseline and current agree per key).
	Metrics map[string]float64 `json:"metrics"`
	// CalibSeconds is CalibrationSeconds() on the producing machine.
	CalibSeconds float64 `json:"calib_seconds"`
}

// DefaultTolerance is the relative slowdown -check permits after
// calibration scaling.
const DefaultTolerance = 0.15

// GatedExperiments lists the experiment IDs -check and -update-baseline
// cover when none are named explicitly.
func GatedExperiments() []string {
	return []string{"abl-kernels", "abl-serve", "abl-distmb", "abl-obs", "abl-stream"}
}

// CheckRegression compares cur against base and returns one human-readable
// failure per violated budget (empty = pass). A metric regresses when
//
//	cur > base · (cur.CalibSeconds / base.CalibSeconds) · (1 + tol)
//
// i.e. the baseline budget is first rescaled to the current machine's
// speed. Missing metrics and mismatched run shape (experiment, scale,
// epochs) are failures too — a baseline from a different configuration
// cannot vouch for this run. Metrics present only in cur are ignored so
// adding a new metric doesn't break -check before -update-baseline runs.
func CheckRegression(base, cur MetricsEnvelope, tol float64) []string {
	var fails []string
	if base.Experiment != cur.Experiment {
		fails = append(fails, fmt.Sprintf("experiment mismatch: baseline %q vs current %q",
			base.Experiment, cur.Experiment))
	}
	if base.Scale != cur.Scale {
		fails = append(fails, fmt.Sprintf("scale mismatch: baseline %g vs current %g (rerun -check with the baseline's -scale, or -update-baseline)",
			base.Scale, cur.Scale))
	}
	if base.Epochs != cur.Epochs {
		fails = append(fails, fmt.Sprintf("epochs mismatch: baseline %d vs current %d",
			base.Epochs, cur.Epochs))
	}
	speed := 1.0
	if base.CalibSeconds > 0 && cur.CalibSeconds > 0 {
		speed = cur.CalibSeconds / base.CalibSeconds
	}
	keys := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bv := base.Metrics[k]
		cv, ok := cur.Metrics[k]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from current run (baseline %.4g)", k, bv))
			continue
		}
		allowed := bv * speed * (1 + tol)
		if cv > allowed {
			fails = append(fails, fmt.Sprintf(
				"%s regressed: %.4g > allowed %.4g (baseline %.4g × calib %.2f × %.0f%% tolerance)",
				k, cv, allowed, bv, speed, 100*tol))
		}
	}
	return fails
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink float32

// CalibrationSeconds times a fixed single-threaded scalar fp32 workload
// (a 192³ matmul, min of 3) — the per-machine speed scalar CheckRegression
// normalizes by. It deliberately mirrors the gated kernels' shape: scalar
// float32 multiply-accumulate over slices, no worker pool.
func CalibrationSeconds() float64 {
	const n = 192
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	c := make([]float32, n*n)
	state := uint32(7)
	for i := range a {
		state = state*1664525 + 1013904223
		a[i] = float32(state>>8) / float32(1<<24)
		b[i] = float32(state>>16) / float32(1<<16)
	}
	best := math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			ci := c[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			for k := 0; k < n; k++ {
				aik := a[i*n+k]
				bk := b[k*n : (k+1)*n]
				for j := range ci {
					ci[j] += aik * bk[j]
				}
			}
		}
		if sec := time.Since(t0).Seconds(); sec < best {
			best = sec
		}
		calibSink += c[0]
	}
	return best
}
