package bench

import (
	"strings"
	"testing"
)

func envelope(calib float64, metrics map[string]float64) MetricsEnvelope {
	return MetricsEnvelope{
		Experiment: "abl-kernels", Scale: 0.05, Epochs: 2,
		Metrics: metrics, CalibSeconds: calib,
	}
}

// A clean run — every metric within tolerance on an equal-speed machine —
// must pass, including a slightly slower metric under the 15% budget.
func TestCheckRegressionPasses(t *testing.T) {
	base := envelope(0.01, map[string]float64{"agg_fused_fp32_d64_s": 1.0, "train_epoch_fp32_s": 2.0})
	cur := envelope(0.01, map[string]float64{"agg_fused_fp32_d64_s": 1.10, "train_epoch_fp32_s": 1.9})
	if fails := CheckRegression(base, cur, DefaultTolerance); len(fails) != 0 {
		t.Fatalf("expected pass, got %v", fails)
	}
}

// A synthetic 30% slowdown on one metric must fail, and the failure must
// name the metric — this is the property the CI gate rests on.
func TestCheckRegressionCatchesSlowdown(t *testing.T) {
	base := envelope(0.01, map[string]float64{"agg_fused_fp32_d64_s": 1.0, "train_epoch_fp32_s": 2.0})
	cur := envelope(0.01, map[string]float64{"agg_fused_fp32_d64_s": 1.30, "train_epoch_fp32_s": 2.0})
	fails := CheckRegression(base, cur, DefaultTolerance)
	if len(fails) != 1 {
		t.Fatalf("expected exactly one failure, got %v", fails)
	}
	if !strings.Contains(fails[0], "agg_fused_fp32_d64_s") {
		t.Fatalf("failure does not name the regressed metric: %s", fails[0])
	}
}

// The same 30% raw slowdown is forgiven when the calibration workload shows
// the current machine is 1.4× slower — cross-machine noise must not gate.
func TestCheckRegressionCalibrationForgivesSlowerMachine(t *testing.T) {
	base := envelope(0.010, map[string]float64{"agg_fused_fp32_d64_s": 1.0})
	cur := envelope(0.014, map[string]float64{"agg_fused_fp32_d64_s": 1.30})
	if fails := CheckRegression(base, cur, DefaultTolerance); len(fails) != 0 {
		t.Fatalf("calibration scaling should forgive a slower machine, got %v", fails)
	}
	// And conversely: a faster machine's budget shrinks, so the same raw
	// number that passed above fails when calibration says 1.4× faster.
	fast := envelope(0.010/1.4, map[string]float64{"agg_fused_fp32_d64_s": 1.0})
	if fails := CheckRegression(base, fast, DefaultTolerance); len(fails) != 1 {
		t.Fatalf("faster machine with flat wall time should fail the shrunk budget, got %v", fails)
	}
}

// A baseline metric absent from the current run is a failure (a silently
// dropped metric must not read as a pass), while extra current-only
// metrics are ignored until -update-baseline records them.
func TestCheckRegressionMissingAndExtraMetrics(t *testing.T) {
	base := envelope(0.01, map[string]float64{"agg_fused_fp32_d64_s": 1.0})
	cur := envelope(0.01, map[string]float64{"brand_new_metric_s": 0.5})
	fails := CheckRegression(base, cur, DefaultTolerance)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("expected one missing-metric failure, got %v", fails)
	}
}

// Envelope shape mismatches (experiment, scale, epochs) fail outright: a
// baseline from a different configuration cannot vouch for this run.
func TestCheckRegressionShapeMismatch(t *testing.T) {
	base := envelope(0.01, map[string]float64{"m": 1})
	cur := base
	cur.Experiment = "abl-serve"
	cur.Scale = 0.5
	cur.Epochs = 3
	fails := CheckRegression(base, cur, DefaultTolerance)
	if len(fails) != 3 {
		t.Fatalf("expected experiment+scale+epochs failures, got %v", fails)
	}
}

func TestCalibrationSecondsPositive(t *testing.T) {
	sec := CalibrationSeconds()
	if !(sec > 0) {
		t.Fatalf("calibration workload measured %v seconds", sec)
	}
}
