package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

// replicaserve.go is the abl-replicaserve ablation: replicated serving
// under failure. A 2-shard × 2-replica topology (two bit-identical
// in-process shard fleets behind the consistent-hash frontend) is driven
// with MMPP bursty arrivals — the traffic shape that actually forms queues
// (arXiv:1802.08400) — in three arms: all replicas alive, one whole
// replica fleet SIGKILL'd mid-run (the frontend must fail over with ZERO
// surfaced errors; its p99 under burst is the headline), and steady load
// across a mid-run fleet-wide /reload to a retrained checkpoint (zero
// non-200 responses — rollover drops nothing). Latency is measured from
// each request's scheduled arrival, so queueing and failover retries are
// charged to the tail, not hidden. Kill-arm latency is inherently noisy
// (it includes dial-failure detection), so this experiment reports but is
// deliberately NOT in the perf regression gate.

const (
	replicaServeShards   = 2
	replicaServeReplicas = 2
	replicaServeRequests = 240
	replicaServeWorkSet  = 160
)

// ReplicaServeRow is one arm's measurement.
type ReplicaServeRow struct {
	Arm        string  `json:"arm"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"` // non-200 responses surfaced to the client
	QPS        float64 `json:"qps"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	Retries    int64   `json:"retries"` // frontend failover attempts
	Shed       int64   `json:"shed"`    // 429s surfaced to the client
	Reloads    int64   `json:"reloads"`
	BurstIndex float64 `json:"burst_index"`
}

// ReplicaServeReport is the BENCH_replicaserve.json schema.
type ReplicaServeReport struct {
	Experiment string            `json:"experiment"`
	Scale      float64           `json:"scale"`
	Shards     int               `json:"shards"`
	Replicas   int               `json:"replicas"`
	Results    []ReplicaServeRow `json:"results"`
	// P99KilledMS is the headline: tail latency under MMPP bursts while a
	// whole replica fleet is dead.
	P99KilledMS float64 `json:"p99_killed_ms"`
	// KilledErrorRate must be 0: a killed replica degrades throughput,
	// never correctness.
	KilledErrorRate float64 `json:"killed_error_rate"`
	// ReloadNon200 must be 0: a mid-run fleet-wide checkpoint rollover
	// drops no requests.
	ReloadNon200 int `json:"reload_non_200"`
}

// replicaTopology is R bit-identical shard fleets behind a frontend with a
// real HTTP listener.
type replicaTopology struct {
	fleets   []*benchShardFleet
	frontend *serve.Frontend
	addr     string
	hs       *http.Server
}

func startReplicaTopology(ds *datasets.Dataset, ckpt []byte, shards, replicas int) (*replicaTopology, error) {
	topo := &replicaTopology{}
	groups := make([]serve.GroupSpec, shards)
	for g := range groups {
		groups[g].Key = fmt.Sprintf("group-%d", g)
	}
	for rep := 0; rep < replicas; rep++ {
		fleet, err := startReplicaShardFleet(ds, ckpt, shards)
		if err != nil {
			topo.close()
			return nil, err
		}
		topo.fleets = append(topo.fleets, fleet)
		for g := range groups {
			groups[g].Replicas = append(groups[g].Replicas, fleet.addrs[g])
		}
	}
	f, err := serve.NewFrontend(serve.FrontendConfig{
		Groups: groups, MaxFails: 2, ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		topo.close()
		return nil, err
	}
	topo.frontend = f
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		topo.close()
		return nil, err
	}
	topo.addr = ln.Addr().String()
	topo.hs = &http.Server{Handler: f.Handler()}
	go topo.hs.Serve(ln)
	return topo, nil
}

// kill hard-stops every rank of one replica fleet — the in-process stand-in
// for SIGKILLing its processes.
func (t *replicaTopology) kill(rep int) {
	for _, hs := range t.fleets[rep].https {
		hs.Close()
	}
}

func (t *replicaTopology) close() {
	if t.hs != nil {
		t.hs.Close()
	}
	if t.frontend != nil {
		t.frontend.Close()
	}
	for _, f := range t.fleets {
		f.close()
	}
}

// startReplicaShardFleet is startShardFleet with reload enabled — every
// replica must accept the fleet-wide /reload fan-out.
func startReplicaShardFleet(ds *datasets.Dataset, ckpt []byte, shards int) (*benchShardFleet, error) {
	f := &benchShardFleet{fabric: comm.NewProcTransport(shards)}
	var lns []net.Listener
	var peers []serve.PeerAddr
	for r := 0; r < shards; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		lns = append(lns, ln)
		f.addrs = append(f.addrs, ln.Addr().String())
		peers = append(peers, serve.PeerAddr{Rank: r, Addr: ln.Addr().String()})
	}
	cfg := serve.Config{
		Arch: serve.ArchGraphSAGE, Hidden: shardServeHidden, NumLayers: shardServeLayers,
		MaxBatch: 8, MaxWait: time.Millisecond,
		FeatureCacheBytes: 32 << 20, EmbedCacheBytes: 0, EnableReload: true,
	}
	for r := 0; r < shards; r++ {
		srv, err := serve.NewShard(ds, bytes.NewReader(ckpt), cfg, serve.ShardConfig{
			Rank: r, Shards: shards, Transport: f.fabric, HTTPPeers: peers,
		})
		if err != nil {
			f.close()
			return nil, err
		}
		f.servers = append(f.servers, srv)
		hs := &http.Server{Handler: srv.Handler()}
		f.https = append(f.https, hs)
		go hs.Serve(lns[r])
	}
	return f, nil
}

// AblationReplicaServe measures replicated serving under failure: MMPP
// tail latency with all replicas alive vs one killed mid-run (zero
// surfaced errors required), and request survival across a mid-run
// fleet-wide checkpoint rollover.
func AblationReplicaServe(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	trainOnce := func(epochs int) ([]byte, error) {
		res, err := train.SingleSocket(ds, train.SingleConfig{
			Model:  model.Config{Hidden: shardServeHidden, NumLayers: shardServeLayers, Seed: 1},
			Epochs: epochs, LR: 0.02, UseAdam: true,
		})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := nn.WriteParams(&buf, res.Model.Params()); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	ckpt, err := trainOnce(opt.epochs(3))
	if err != nil {
		return err
	}
	// The rollover fixture: same shapes, one more epoch of training.
	ckptB, err := trainOnce(opt.epochs(3) + 1)
	if err != nil {
		return err
	}

	workSet := make([]int32, min(replicaServeWorkSet, ds.G.NumVertices))
	step := max(1, ds.G.NumVertices/len(workSet))
	for i := range workSet {
		workSet[i] = int32((i * step) % ds.G.NumVertices)
	}
	meanSvc, err := calibrateShardService(ds, ckpt, workSet)
	if err != nil {
		return err
	}
	meanGap := time.Duration(float64(meanSvc) / 0.9)

	report := ReplicaServeReport{
		Experiment: "abl-replicaserve", Scale: opt.scale(),
		Shards: replicaServeShards, Replicas: replicaServeReplicas,
	}
	t := &table{header: []string{"arm", "requests", "errors", "QPS", "p50", "p95", "p99", "retries"}}
	arms := []struct {
		name     string
		arrivals string
		kill     bool
		reload   bool
	}{
		{"mmpp/all-alive", "mmpp", false, false},
		{"mmpp/replica-killed", "mmpp", true, false},
		{"steady/mid-reload", "poisson", false, true},
	}
	for _, arm := range arms {
		rng := rand.New(rand.NewSource(int64(len(arm.name))))
		var sched []time.Duration
		if arm.arrivals == "mmpp" {
			sched = mmppArrivals(rng, replicaServeRequests, meanGap)
		} else {
			sched = poissonArrivals(rng, replicaServeRequests, meanGap)
		}
		row, err := runReplicaArm(ds, ckpt, ckptB, workSet, sched, rng, arm.kill, arm.reload)
		if err != nil {
			return err
		}
		row.Arm = arm.name
		row.BurstIndex = burstIndex(sched)
		report.Results = append(report.Results, row)
		t.add(arm.name, fmt.Sprint(row.Requests), fmt.Sprint(row.Errors),
			fmt.Sprintf("%.0f", row.QPS), fmt.Sprintf("%.2fms", row.P50MS),
			fmt.Sprintf("%.2fms", row.P95MS), fmt.Sprintf("%.2fms", row.P99MS),
			fmt.Sprint(row.Retries))
		switch arm.name {
		case "mmpp/replica-killed":
			report.P99KilledMS = row.P99MS
			report.KilledErrorRate = float64(row.Errors) / float64(row.Requests)
		case "steady/mid-reload":
			report.ReloadNon200 = row.Errors
			if row.Reloads != 1 {
				return fmt.Errorf("abl-replicaserve: mid-run reload did not complete (reloads=%d)", row.Reloads)
			}
		}
	}
	t.write(opt.Out)
	fmt.Fprintf(opt.Out, "\np99 under MMPP burst with a replica killed mid-run: %.2fms at %.2f%% error rate "+
		"(must be 0%%)   mid-run /reload non-200s: %d (must be 0)\n",
		report.P99KilledMS, 100*report.KilledErrorRate, report.ReloadNon200)
	if report.KilledErrorRate > 0 {
		return fmt.Errorf("abl-replicaserve: killed-replica arm surfaced %.2f%% errors — failover is broken",
			100*report.KilledErrorRate)
	}
	if report.ReloadNon200 > 0 {
		return fmt.Errorf("abl-replicaserve: mid-run reload dropped %d requests", report.ReloadNon200)
	}

	if opt.JSON != nil {
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

// runReplicaArm replays one arrival schedule against a fresh 2×2 topology
// through the frontend. With kill set, replica fleet 0 is hard-stopped
// when ~40% of the schedule has elapsed; with reload set, a fleet-wide
// /reload to ckptB fires at the same point. Latency is measured from
// scheduled arrival (no coordinated omission), and every response status
// counts — a failover or rollover that drops requests shows up as Errors.
func runReplicaArm(ds *datasets.Dataset, ckpt, ckptB []byte, workSet []int32,
	sched []time.Duration, rng *rand.Rand, kill, reload bool) (ReplicaServeRow, error) {
	topo, err := startReplicaTopology(ds, ckpt, replicaServeShards, replicaServeReplicas)
	if err != nil {
		return ReplicaServeRow{}, err
	}
	defer topo.close()
	client := &http.Client{Timeout: 60 * time.Second}

	// Warmup outside the measurement window: one request per shard group
	// lands connections and the first partition-spanning gathers.
	for i := 0; i < replicaServeShards*replicaServeReplicas; i++ {
		if err := shardQuery(client, topo.addr, workSet[i%len(workSet)]); err != nil {
			return ReplicaServeRow{}, err
		}
	}

	vertices := make([]int32, len(sched))
	for i := range vertices {
		vertices[i] = workSet[rng.Intn(len(workSet))]
	}
	midpoint := sched[len(sched)*2/5]
	var reloadErr error
	var reloadDone sync.WaitGroup
	lat := make([]time.Duration, len(sched))
	errCount := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	if kill {
		time.AfterFunc(midpoint, func() { topo.kill(0) })
	}
	if reload {
		reloadDone.Add(1)
		time.AfterFunc(midpoint, func() {
			defer reloadDone.Done()
			resp, err := client.Post(fmt.Sprintf("http://%s/reload", topo.addr),
				"application/octet-stream", bytes.NewReader(ckptB))
			if err != nil {
				reloadErr = err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				reloadErr = fmt.Errorf("mid-run /reload status %d", resp.StatusCode)
			}
		})
	}
	for i := range sched {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrive := start.Add(sched[i])
			time.Sleep(time.Until(arrive))
			err := shardQuery(client, topo.addr, vertices[i])
			mu.Lock()
			if err != nil {
				errCount++
			} else {
				lat[i] = time.Since(arrive)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if reload {
		reloadDone.Wait()
		if reloadErr != nil {
			return ReplicaServeRow{}, reloadErr
		}
	}

	var sorted []time.Duration
	for _, l := range lat {
		if l > 0 {
			sorted = append(sorted, l)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st := topo.frontend.StatsSnapshot()
	row := ReplicaServeRow{
		Requests: len(sched),
		Errors:   errCount,
		QPS:      float64(len(sched)-errCount) / elapsed.Seconds(),
		P50MS:    percentileMS(sorted, 0.50),
		P95MS:    percentileMS(sorted, 0.95),
		P99MS:    percentileMS(sorted, 0.99),
		Retries:  st.Retries,
		Shed:     st.Shed,
		Reloads:  st.Reloads,
	}
	return row, nil
}
