package bench

import (
	"fmt"
	"runtime"
	"time"

	"distgnn/internal/parallel"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// AblationWorkers sweeps the parallel runtime's worker-pool size over the
// two hot kernels — the aggregation primitive and the dense matmul — the
// in-process analogue of the paper's OMP_NUM_THREADS scaling runs. It also
// prints the configuration AutoTune picks at each pool size, since the
// static/dynamic crossover moves with the worker count.
func AblationWorkers(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	iters := opt.epochs(5)
	maxW := runtime.GOMAXPROCS(0)
	sweep := []int{1}
	for w := 2; w < maxW; w *= 2 {
		sweep = append(sweep, w)
	}
	if maxW > 1 {
		sweep = append(sweep, maxW)
	}

	d := ds.Features.Cols
	a := tensor.New(2048, d)
	bm := tensor.New(d, 64)
	c := tensor.New(2048, 64)

	t := &table{header: []string{"workers", "AP time", "matmul time", "autotuned options"}}
	prev := parallel.Workers()
	defer parallel.Configure(parallel.Config{Workers: prev}) // restore the caller's pool
	for _, w := range sweep {
		parallel.Configure(parallel.Config{Workers: w})
		ap, err := timeAggKernel(ds, spmm.DefaultOptions(8), iters)
		if err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < 4*iters; i++ {
			tensor.MatMul(c, a, bm)
		}
		mm := time.Since(start) / time.Duration(4*iters)
		tuned := spmm.AutoTune(ds.G, d)
		t.add(fmt.Sprint(w), ap.String(), mm.String(),
			fmt.Sprintf("nB=%d %s reordered=%v", tuned.NumBlocks, tuned.Schedule, tuned.Reordered))
	}
	t.write(opt.Out)
	return nil
}
