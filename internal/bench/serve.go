package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

// serve.go is the abl-serve ablation: closed-loop clients hammer a real
// HTTP serving instance over loopback, sweeping the two mechanisms that
// make the serving path production-shaped — request coalescing (batch
// window × max batch) and the concurrent feature/embedding cache budget —
// across client concurrency levels. Reported per arm: p50/p95/p99 request
// latency and sustained QPS. With Options.JSON set the rows land in
// BENCH_serve.json (a CI artifact), including the two derived headline
// numbers: coalesced-vs-batch-of-1 QPS gain at concurrency 8 and
// warm-vs-cold cache p50 ratio.

const (
	serveBenchHidden   = 16
	serveBenchLayers   = 2
	serveBenchMaxBatch = 8
	serveBenchMaxWait  = time.Millisecond
	serveBenchCacheMB  = 64
	serveBenchRequests = 192 // total per arm, split across clients
	serveBenchWorkSet  = 128 // distinct vertices clients draw from
)

// ServeBenchRow is one (concurrency, batching, cache) measurement.
type ServeBenchRow struct {
	Concurrency    int     `json:"concurrency"`
	MaxBatch       int     `json:"max_batch"`
	MaxWaitMS      float64 `json:"max_wait_ms"`
	CacheMB        float64 `json:"cache_mb"`
	Warm           bool    `json:"warm"`
	Requests       int     `json:"requests"`
	QPS            float64 `json:"qps"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	AvgBatch       float64 `json:"avg_batch"`
	DedupSaved     int64   `json:"dedup_saved"`
	EmbedHitRate   float64 `json:"embed_hit_rate"`
	FeatureHitRate float64 `json:"feature_hit_rate"`
}

// ServeBenchReport is the BENCH_serve.json schema.
type ServeBenchReport struct {
	Experiment string          `json:"experiment"`
	Scale      float64         `json:"scale"`
	Epochs     int             `json:"epochs"`
	Mode       string          `json:"mode"`
	Results    []ServeBenchRow `json:"results"`
	// Metrics and CalibSeconds are the regression-gate envelope (see
	// regress.go): p95 of the canonical compute-bound arm — concurrency 8,
	// coalesced, cold caches, where latency is dominated by inference
	// rather than loopback-HTTP scheduling noise.
	Metrics      map[string]float64 `json:"metrics"`
	CalibSeconds float64            `json:"calib_seconds"`
	// CoalescingQPSGainC8 is coalesced QPS / batch-of-1 QPS at concurrency
	// 8, cold caches — the batching lever (must exceed 1).
	CoalescingQPSGainC8 float64 `json:"coalescing_qps_gain_c8"`
	// WarmOverColdP50 is warm-cache p50 / cold-cache p50 at concurrency 8,
	// coalesced — the cache lever (must be below 1).
	WarmOverColdP50 float64 `json:"warm_over_cold_p50"`
}

// AblationServe measures the serving path's two levers end to end.
func AblationServe(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: serveBenchHidden, NumLayers: serveBenchLayers, Seed: 1},
		Epochs: opt.epochs(5), LR: 0.02, UseAdam: true,
	})
	if err != nil {
		return err
	}
	var ckpt bytes.Buffer
	if err := nn.WriteParams(&ckpt, res.Model.Params()); err != nil {
		return err
	}

	workSet := make([]int32, min(serveBenchWorkSet, ds.G.NumVertices))
	step := ds.G.NumVertices / len(workSet)
	if step < 1 {
		step = 1
	}
	for i := range workSet {
		workSet[i] = int32((i * step) % ds.G.NumVertices)
	}

	report := ServeBenchReport{Experiment: "abl-serve", Scale: opt.scale(), Epochs: opt.epochs(5), Mode: "exact"}
	t := &table{header: []string{"clients", "batching", "cache", "QPS", "p50", "p95", "p99", "avg batch", "emb hit"}}
	for _, conc := range []int{1, 8} {
		for _, batching := range []bool{false, true} {
			for _, warm := range []bool{false, true} {
				cfg := serve.Config{
					Arch: serve.ArchGraphSAGE, Hidden: serveBenchHidden, NumLayers: serveBenchLayers,
					MaxBatch: 1,
				}
				if batching {
					cfg.MaxBatch = serveBenchMaxBatch
					cfg.MaxWait = serveBenchMaxWait
				}
				if warm {
					cfg.FeatureCacheBytes = serveBenchCacheMB << 20
					cfg.EmbedCacheBytes = serveBenchCacheMB << 20
				}
				row, err := runServeArm(ds, ckpt.Bytes(), cfg, conc, workSet, warm)
				if err != nil {
					return err
				}
				report.Results = append(report.Results, row)
				batchLabel := "batch-of-1"
				if batching {
					batchLabel = fmt.Sprintf("coalesce(%d,%v)", serveBenchMaxBatch, serveBenchMaxWait)
				}
				cacheLabel := "cold"
				if warm {
					cacheLabel = fmt.Sprintf("warm %dMB", serveBenchCacheMB)
				}
				t.add(fmt.Sprint(conc), batchLabel, cacheLabel,
					fmt.Sprintf("%.0f", row.QPS),
					fmt.Sprintf("%.2fms", row.P50MS), fmt.Sprintf("%.2fms", row.P95MS),
					fmt.Sprintf("%.2fms", row.P99MS),
					f2(row.AvgBatch), pct(row.EmbedHitRate))
			}
		}
	}
	t.write(opt.Out)

	lookup := func(conc, maxBatch int, warm bool) *ServeBenchRow {
		for i := range report.Results {
			r := &report.Results[i]
			if r.Concurrency == conc && r.MaxBatch == maxBatch && r.Warm == warm {
				return r
			}
		}
		return nil
	}
	if b1 := lookup(8, 1, false); b1 != nil {
		if co := lookup(8, serveBenchMaxBatch, false); co != nil && b1.QPS > 0 {
			report.CoalescingQPSGainC8 = co.QPS / b1.QPS
		}
	}
	if cold := lookup(8, serveBenchMaxBatch, false); cold != nil {
		if warm := lookup(8, serveBenchMaxBatch, true); warm != nil && cold.P50MS > 0 {
			report.WarmOverColdP50 = warm.P50MS / cold.P50MS
		}
	}
	fmt.Fprintf(opt.Out, "\ncoalescing QPS gain @8 clients: %.2fx (want >1)   warm/cold p50: %.2f (want <1)\n",
		report.CoalescingQPSGainC8, report.WarmOverColdP50)

	if canon := lookup(8, serveBenchMaxBatch, false); canon != nil {
		report.Metrics = map[string]float64{
			"serve_p95_ms": canon.P95MS,
		}
	}
	report.CalibSeconds = CalibrationSeconds()

	if opt.JSON != nil {
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

// runServeArm stands up one serving instance, optionally pre-warms its
// caches with one pass over the working set, then runs closed-loop clients
// and collects the latency distribution.
func runServeArm(ds *datasets.Dataset, ckpt []byte, cfg serve.Config, concurrency int,
	workSet []int32, warm bool) (ServeBenchRow, error) {
	srv, err := serve.New(ds, bytes.NewReader(ckpt), cfg)
	if err != nil {
		return ServeBenchRow{}, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	query := func(v int32) error {
		resp, err := client.Get(fmt.Sprintf("%s/predict?vertex=%d", ts.URL, v))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("abl-serve: /predict status %d", resp.StatusCode)
		}
		return nil
	}
	if warm {
		for _, v := range workSet {
			if err := query(v); err != nil {
				return ServeBenchRow{}, err
			}
		}
	}

	perClient := serveBenchRequests / concurrency
	latencies := make([][]time.Duration, concurrency)
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			lat := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				v := workSet[rng.Intn(len(workSet))]
				t0 := time.Now()
				if err := query(v); err != nil {
					errs[c] = err
					return
				}
				lat = append(lat, time.Since(t0))
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServeBenchRow{}, err
		}
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	st := srv.StatsSnapshot()
	row := ServeBenchRow{
		Concurrency: concurrency,
		MaxBatch:    cfg.MaxBatch,
		MaxWaitMS:   float64(cfg.MaxWait) / float64(time.Millisecond),
		CacheMB:     float64(cfg.EmbedCacheBytes) / (1 << 20),
		Warm:        warm,
		Requests:    len(all),
		QPS:         float64(len(all)) / elapsed.Seconds(),
		P50MS:       percentileMS(all, 0.50),
		P95MS:       percentileMS(all, 0.95),
		P99MS:       percentileMS(all, 0.99),
		AvgBatch:    st.Coalescer.AvgBatch,
		DedupSaved:  st.Coalescer.DedupSaved,
	}
	row.EmbedHitRate = st.EmbeddingCache.HitRate()
	row.FeatureHitRate = st.FeatureCache.HitRate()
	return row, nil
}

func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
