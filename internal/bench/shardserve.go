package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

// shardserve.go is the abl-shardserve ablation: partition-parallel serving
// under open-loop traffic. A fleet of 1, 2, or 4 shard ranks (in-process
// fabric, real HTTP listeners) is driven by a request replayer at a fixed
// offered rate, with two arrival processes at the same mean rate: Poisson,
// and a 2-state Markov-modulated Poisson process (MMPP). Mean-rate load
// generators summarize bursty traffic poorly (Asanjarani & Nazarathy,
// arXiv:1802.08400 — the MMPP's index of dispersion far exceeds Poisson's),
// so the MMPP arm shows what the tail looks like when the same average
// load arrives in bursts: queueing the Poisson arm never forms. Reported
// per arm: sustained QPS, p50/p95/p99 latency measured from scheduled
// arrival (no coordinated omission), halo-fetch hit rate, and the routed
// fraction. With Options.JSON set the rows land in BENCH_shardserve.json.

const (
	shardServeHidden   = 16
	shardServeLayers   = 2
	shardServeRequests = 240
	shardServeWorkSet  = 160
	shardServeCalib    = 24 // closed-loop requests used to estimate service time
	// MMPP shape: quiet/burst rates ±75% around the mean with equal mean
	// sojourn times, i.e. a 7× rate swing at an unchanged average.
	mmppQuietFactor = 0.25
	mmppBurstFactor = 1.75
	mmppSojournReqs = 20 // mean arrivals per state visit
)

// ShardServeRow is one (shards, arrival-process) measurement.
type ShardServeRow struct {
	Shards      int     `json:"shards"`
	Arrivals    string  `json:"arrivals"`
	OfferedQPS  float64 `json:"offered_qps"`
	BurstIndex  float64 `json:"burst_index"` // CV² of inter-arrivals (Poisson ≈ 1)
	Requests    int     `json:"requests"`
	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	HaloHitRate float64 `json:"halo_hit_rate"`
	RoutedFrac  float64 `json:"routed_frac"`
}

// ShardServeReport is the BENCH_shardserve.json schema.
type ShardServeReport struct {
	Experiment string          `json:"experiment"`
	Scale      float64         `json:"scale"`
	Results    []ShardServeRow `json:"results"`
	// MMPPOverPoissonP95S2 is MMPP p95 / Poisson p95 at 2 shards — the
	// burstiness tail penalty a mean-rate generator would miss (≥ 1).
	MMPPOverPoissonP95S2 float64 `json:"mmpp_over_poisson_p95_s2"`
	// P95RatioS4OverS1Poisson is 4-shard p95 / 1-shard p95 under Poisson.
	// Below 1 sharding relieves the queue; on a single shared-core machine
	// (CI, this loopback harness) all shards compete for the same cores and
	// pay halo-fetch + routing overhead, so values slightly above 1 are the
	// cost of distribution, not a regression — the win needs cores (or
	// sockets) per shard, which is the deployment the paper targets.
	P95RatioS4OverS1Poisson float64 `json:"p95_ratio_s4_over_s1_poisson"`
}

// benchShardFleet is a live fleet: HTTP addresses, per-rank servers for
// stats, and a teardown.
type benchShardFleet struct {
	addrs   []string
	servers []*serve.Server
	https   []*http.Server
	fabric  comm.Transport
}

func startShardFleet(ds *datasets.Dataset, ckpt []byte, shards int) (*benchShardFleet, error) {
	return startShardFleetCfg(ds, ckpt, shards, nil)
}

// startShardFleetCfg is startShardFleet with a config hook: mod (when
// non-nil) edits the per-rank serve.Config before the fleet starts —
// abl-stream uses it to switch on the mutation plane.
func startShardFleetCfg(ds *datasets.Dataset, ckpt []byte, shards int,
	mod func(*serve.Config)) (*benchShardFleet, error) {
	f := &benchShardFleet{fabric: comm.NewProcTransport(shards)}
	var lns []net.Listener
	var peers []serve.PeerAddr
	for r := 0; r < shards; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		lns = append(lns, ln)
		f.addrs = append(f.addrs, ln.Addr().String())
		peers = append(peers, serve.PeerAddr{Rank: r, Addr: ln.Addr().String()})
	}
	cfg := serve.Config{
		Arch: serve.ArchGraphSAGE, Hidden: shardServeHidden, NumLayers: shardServeLayers,
		MaxBatch: 8, MaxWait: time.Millisecond,
		FeatureCacheBytes: 32 << 20, EmbedCacheBytes: 0,
	}
	if mod != nil {
		mod(&cfg)
	}
	for r := 0; r < shards; r++ {
		srv, err := serve.NewShard(ds, bytes.NewReader(ckpt), cfg, serve.ShardConfig{
			Rank: r, Shards: shards, Transport: f.fabric, HTTPPeers: peers,
		})
		if err != nil {
			f.close()
			return nil, err
		}
		f.servers = append(f.servers, srv)
		hs := &http.Server{Handler: srv.Handler()}
		f.https = append(f.https, hs)
		go hs.Serve(lns[r])
	}
	return f, nil
}

func (f *benchShardFleet) close() {
	for _, hs := range f.https {
		hs.Close()
	}
	for _, s := range f.servers {
		s.Close()
	}
	if f.fabric != nil {
		f.fabric.Close()
	}
}

// poissonArrivals draws inter-arrival gaps Exp(mean).
func poissonArrivals(rng *rand.Rand, n int, mean time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	t := time.Duration(0)
	for i := range out {
		t += time.Duration(rng.ExpFloat64() * float64(mean))
		out[i] = t
	}
	return out
}

// mmppArrivals draws arrival times from a 2-state MMPP with the same mean
// rate as poissonArrivals(mean): a quiet state at mmppQuietFactor× the mean
// rate and a burst state at mmppBurstFactor×, each visited for an
// exponential sojourn averaging mmppSojournReqs mean-rate arrivals. State
// switches modulate the thinning of time, so bursts pack arrivals the
// average conceals.
func mmppArrivals(rng *rand.Rand, n int, mean time.Duration) []time.Duration {
	rates := [2]float64{mmppQuietFactor / float64(mean), mmppBurstFactor / float64(mean)}
	sojourn := float64(mmppSojournReqs) * float64(mean)
	out := make([]time.Duration, 0, n)
	now := 0.0
	state := rng.Intn(2)
	stateEnd := now + rng.ExpFloat64()*sojourn
	for len(out) < n {
		gap := rng.ExpFloat64() / rates[state]
		if now+gap > stateEnd {
			// No arrival before the state switch: advance to the switch and
			// redraw in the new state (memorylessness makes this exact).
			now = stateEnd
			state = 1 - state
			stateEnd = now + rng.ExpFloat64()*sojourn
			continue
		}
		now += gap
		out = append(out, time.Duration(now))
	}
	return out
}

// burstIndex is the squared coefficient of variation of inter-arrival
// gaps: 1 for Poisson, larger for bursty processes.
func burstIndex(arrivals []time.Duration) float64 {
	if len(arrivals) < 2 {
		return 0
	}
	gaps := make([]float64, len(arrivals)-1)
	var mean float64
	for i := 1; i < len(arrivals); i++ {
		g := float64(arrivals[i] - arrivals[i-1])
		gaps[i-1] = g
		mean += g
	}
	mean /= float64(len(gaps))
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	varsum /= float64(len(gaps))
	if mean == 0 {
		return 0
	}
	return varsum / (mean * mean)
}

// AblationShardServe measures partition-parallel serving: QPS and latency
// percentiles versus shard count, under Poisson and MMPP arrivals at the
// same offered rate.
func AblationShardServe(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: shardServeHidden, NumLayers: shardServeLayers, Seed: 1},
		Epochs: opt.epochs(3), LR: 0.02, UseAdam: true,
	})
	if err != nil {
		return err
	}
	var ckpt bytes.Buffer
	if err := nn.WriteParams(&ckpt, res.Model.Params()); err != nil {
		return err
	}

	workSet := make([]int32, min(shardServeWorkSet, ds.G.NumVertices))
	step := max(1, ds.G.NumVertices/len(workSet))
	for i := range workSet {
		workSet[i] = int32((i * step) % ds.G.NumVertices)
	}

	// Calibrate the offered rate against a single shard: a short closed
	// loop estimates the mean service time, and the open-loop arms offer
	// ~90% of that single-engine capacity — enough for queues to form at 1
	// shard and drain at 4.
	meanSvc, err := calibrateShardService(ds, ckpt.Bytes(), workSet)
	if err != nil {
		return err
	}
	meanGap := time.Duration(float64(meanSvc) / 0.9)
	offered := float64(time.Second) / float64(meanGap)

	report := ShardServeReport{Experiment: "abl-shardserve", Scale: opt.scale()}
	t := &table{header: []string{"shards", "arrivals", "offered QPS", "burst CV²", "QPS", "p50", "p95", "p99", "halo hit", "routed"}}
	for _, shards := range []int{1, 2, 4} {
		for _, arrivals := range []string{"poisson", "mmpp"} {
			rng := rand.New(rand.NewSource(int64(100*shards + len(arrivals))))
			var sched []time.Duration
			if arrivals == "poisson" {
				sched = poissonArrivals(rng, shardServeRequests, meanGap)
			} else {
				sched = mmppArrivals(rng, shardServeRequests, meanGap)
			}
			row, err := runShardArm(ds, ckpt.Bytes(), shards, workSet, sched, rng)
			if err != nil {
				return err
			}
			row.Arrivals = arrivals
			row.OfferedQPS = offered
			row.BurstIndex = burstIndex(sched)
			report.Results = append(report.Results, row)
			t.add(fmt.Sprint(shards), arrivals, fmt.Sprintf("%.0f", offered),
				f2(row.BurstIndex), fmt.Sprintf("%.0f", row.QPS),
				fmt.Sprintf("%.2fms", row.P50MS), fmt.Sprintf("%.2fms", row.P95MS),
				fmt.Sprintf("%.2fms", row.P99MS), pct(row.HaloHitRate), pct(row.RoutedFrac))
		}
	}
	t.write(opt.Out)

	lookup := func(shards int, arrivals string) *ShardServeRow {
		for i := range report.Results {
			r := &report.Results[i]
			if r.Shards == shards && r.Arrivals == arrivals {
				return r
			}
		}
		return nil
	}
	if po, mm := lookup(2, "poisson"), lookup(2, "mmpp"); po != nil && mm != nil && po.P95MS > 0 {
		report.MMPPOverPoissonP95S2 = mm.P95MS / po.P95MS
	}
	if s1, s4 := lookup(1, "poisson"), lookup(4, "poisson"); s1 != nil && s4 != nil && s1.P95MS > 0 {
		report.P95RatioS4OverS1Poisson = s4.P95MS / s1.P95MS
	}
	fmt.Fprintf(opt.Out, "\nMMPP/Poisson p95 @2 shards: %.2f (bursts inflate the tail)   "+
		"4-shard/1-shard p95 (Poisson): %.2f (<1 with cores per shard; ≈1+halo overhead on one shared-core box)\n",
		report.MMPPOverPoissonP95S2, report.P95RatioS4OverS1Poisson)

	if opt.JSON != nil {
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

// calibrateShardService runs a short closed loop against one shard and
// returns the mean request latency.
func calibrateShardService(ds *datasets.Dataset, ckpt []byte, workSet []int32) (time.Duration, error) {
	fleet, err := startShardFleet(ds, ckpt, 1)
	if err != nil {
		return 0, err
	}
	defer fleet.close()
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	for i := 0; i < shardServeCalib; i++ {
		if err := shardQuery(client, fleet.addrs[0], workSet[i%len(workSet)]); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / shardServeCalib, nil
}

// shardTotals are fleet-wide counter sums, used to diff the measurement
// window from the warmup.
type shardTotals struct {
	haloHits, haloMisses, routed, predicts int64
}

func fleetShardTotals(f *benchShardFleet) shardTotals {
	var t shardTotals
	for _, srv := range f.servers {
		st := srv.StatsSnapshot()
		t.haloHits += st.Shard.HaloHits
		t.haloMisses += st.Shard.HaloMisses
		t.routed += st.Shard.RoutedOut
		t.predicts += st.Predicts
	}
	return t
}

func shardQuery(client *http.Client, addr string, v int32) error {
	resp, err := client.Get(fmt.Sprintf("http://%s/predict?vertex=%d", addr, v))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("abl-shardserve: /predict status %d", resp.StatusCode)
	}
	return nil
}

// runShardArm replays one arrival schedule against a fresh fleet, entry
// rank round-robin, and measures latency from each request's scheduled
// arrival time (queueing delay included — no coordinated omission).
func runShardArm(ds *datasets.Dataset, ckpt []byte, shards int,
	workSet []int32, sched []time.Duration, rng *rand.Rand) (ShardServeRow, error) {
	fleet, err := startShardFleet(ds, ckpt, shards)
	if err != nil {
		return ShardServeRow{}, err
	}
	defer fleet.close()
	client := &http.Client{Timeout: 60 * time.Second}

	// Warm the fleet (connection setup, first partition-spanning gathers)
	// outside the measurement window, then baseline the counters so the
	// reported hit/routed rates describe only the measured requests.
	for r := 0; r < shards; r++ {
		if err := shardQuery(client, fleet.addrs[r], workSet[0]); err != nil {
			return ShardServeRow{}, err
		}
	}
	base := fleetShardTotals(fleet)

	vertices := make([]int32, len(sched))
	for i := range vertices {
		vertices[i] = workSet[rng.Intn(len(workSet))]
	}
	lat := make([]time.Duration, len(sched))
	errs := make([]error, len(sched))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range sched {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrive := start.Add(sched[i])
			time.Sleep(time.Until(arrive))
			if err := shardQuery(client, fleet.addrs[i%shards], vertices[i]); err != nil {
				errs[i] = err
				return
			}
			lat[i] = time.Since(arrive)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ShardServeRow{}, err
		}
	}

	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	tot := fleetShardTotals(fleet)
	haloHits := tot.haloHits - base.haloHits
	haloMisses := tot.haloMisses - base.haloMisses
	routed := tot.routed - base.routed
	predicts := tot.predicts - base.predicts
	row := ShardServeRow{
		Shards:   shards,
		Requests: len(sorted),
		QPS:      float64(len(sorted)) / elapsed.Seconds(),
		P50MS:    percentileMS(sorted, 0.50),
		P95MS:    percentileMS(sorted, 0.95),
		P99MS:    percentileMS(sorted, 0.99),
	}
	if haloHits+haloMisses > 0 {
		row.HaloHitRate = float64(haloHits) / float64(haloHits+haloMisses)
	}
	if predicts > 0 {
		row.RoutedFrac = float64(routed) / float64(predicts)
	}
	return row, nil
}
