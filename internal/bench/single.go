package bench

import (
	"fmt"
	"time"

	"distgnn/internal/cachesim"
	"distgnn/internal/datasets"
	"distgnn/internal/hetero"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
	"distgnn/internal/train"
)

// fig2Datasets are the GraphSAGE workloads of Fig. 2(a–c); the AM row
// (Fig. 2d) runs RGCN-hetero below, matching the paper.
var fig2Datasets = []struct {
	name   string
	layers int
	hidden int
}{
	{"reddit-sim", 2, 16},
	{"ogbn-products-sim", 3, 256},
	{"proteins-sim", 3, 256},
}

// Fig2 compares per-epoch training time and aggregation-primitive time
// between the DGL-baseline kernel (Alg. 1) and the optimized kernel
// (dynamic scheduling + blocking + loop reordering).
func Fig2(opt Options) error {
	t := &table{header: []string{"dataset", "arm", "epoch", "AP",
		"epoch speedup", "AP speedup"}}
	epochs := opt.epochs(5)
	for _, w := range fig2Datasets {
		ds, err := loadDataset(w.name, opt.scale())
		if err != nil {
			return err
		}
		run := func(baseline bool) (total, agg time.Duration, err error) {
			res, err := train.SingleSocket(ds, train.SingleConfig{
				Model: model.Config{
					Hidden: w.hidden, NumLayers: w.layers,
					UseBaselineAgg: baseline, Seed: 1,
				},
				Epochs: epochs, LR: 0.01,
			})
			if err != nil {
				return 0, 0, err
			}
			total, agg = res.AvgEpoch(1, epochs) // skip warm-up epoch
			if epochs == 1 {
				total, agg = res.AvgEpoch(0, 1)
			}
			return total, agg, nil
		}
		bTot, bAgg, err := run(true)
		if err != nil {
			return err
		}
		oTot, oAgg, err := run(false)
		if err != nil {
			return err
		}
		t.add(w.name, "DGL baseline", bTot.String(), bAgg.String(), "1.00", "1.00")
		t.add(w.name, "DistGNN opt", oTot.String(), oAgg.String(),
			f2(bTot.Seconds()/oTot.Seconds()), f2(bAgg.Seconds()/oAgg.Seconds()))
	}

	// Fig. 2(d): RGCN-hetero on AM.
	bTot, bAgg, err := rgcnEpoch(opt, true, epochs)
	if err != nil {
		return err
	}
	oTot, oAgg, err := rgcnEpoch(opt, false, epochs)
	if err != nil {
		return err
	}
	t.add("am-sim (RGCN)", "DGL baseline", bTot.String(), bAgg.String(), "1.00", "1.00")
	t.add("am-sim (RGCN)", "DistGNN opt", oTot.String(), oAgg.String(),
		f2(bTot.Seconds()/oTot.Seconds()), f2(bAgg.Seconds()/oAgg.Seconds()))
	t.write(opt.Out)
	return nil
}

// rgcnEpoch trains RGCN-hetero on am-sim for a few epochs and returns the
// average epoch and AP times (skipping the warm-up epoch when possible).
func rgcnEpoch(opt Options, baseline bool, epochs int) (total, agg time.Duration, err error) {
	ds, tg, err := hetero.SyntheticAM(opt.scale(), 6)
	if err != nil {
		return 0, 0, err
	}
	m, err := hetero.NewRGCN(tg, hetero.RGCNConfig{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: ds.NumClasses,
		NumLayers: 2, UseBaselineAgg: baseline, Seed: 1,
	})
	if err != nil {
		return 0, 0, err
	}
	sgd := &nn.SGD{LR: 0.01}
	params := m.Params()
	var totals, aggs time.Duration
	counted := 0
	for e := 0; e < epochs; e++ {
		start := time.Now()
		m.ResetAggTime()
		logits := m.Forward(ds.Features, true)
		_, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
		nn.ZeroGrads(params)
		m.Backward(dlogits)
		sgd.Step(params)
		if e == 0 && epochs > 1 {
			continue // warm-up
		}
		totals += time.Since(start)
		aggs += m.AggTime
		counted++
	}
	return totals / time.Duration(counted), aggs / time.Duration(counted), nil
}

var blockSweep = []int{1, 2, 4, 8, 16, 32, 64}

// cacheBytesFor models the per-socket LLC share, scaled so the cache holds
// roughly 1/12 of the vertex feature matrix — the regime the paper's Xeon
// 8280 (38.5 MB LLC) is in for Reddit's 560 MB feature matrix.
func cacheBytesFor(ds *datasets.Dataset) int {
	featBytes := ds.Features.Cols * 4
	c := ds.G.NumVertices * featBytes / 12
	if c < 16*featBytes {
		c = 16 * featBytes
	}
	return c
}

// Table3 reports the cache reuse factor of the AP kernel versus the number
// of blocks, for the dense (reddit-sim) and sparse (ogbn-products-sim)
// graphs, alongside density and ideal reuse — Table 3 of the paper.
func Table3(opt Options) error {
	t := &table{header: append([]string{"dataset", "density", "ideal"},
		nBHeaders()...)}
	for _, name := range []string{"reddit-sim", "ogbn-products-sim"} {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return err
		}
		featBytes := ds.Features.Cols * 4
		cfg := cachesim.APConfig{
			FeatureBytes:    featBytes,
			CacheBytes:      cacheBytesFor(ds),
			ReorderedOutput: true,
		}
		stats := cachesim.SweepBlocks(ds.G, cfg, blockSweep)
		row := []string{name, fmt.Sprintf("%.2g", ds.G.Density()), f2(ds.G.AvgDegree())}
		for _, s := range stats {
			row = append(row, f2(s.EffectiveReuse(featBytes)))
		}
		t.add(row...)
	}
	t.write(opt.Out)
	return nil
}

func nBHeaders() []string {
	var out []string
	for _, nB := range blockSweep {
		out = append(out, fmt.Sprintf("nB=%d", nB))
	}
	return out
}

// timeAggKernel measures the optimized AP kernel (copylhs/sum over the
// dataset's features) for one configuration.
func timeAggKernel(ds *datasets.Dataset, opt spmm.Options, iters int) (time.Duration, error) {
	plan := spmm.NewPlan(ds.G, opt)
	out := tensor.New(ds.G.NumVertices, ds.Features.Cols)
	args := &spmm.Args{G: ds.G, FV: ds.Features, FO: out,
		Op: spmm.OpCopyLHS, Red: spmm.ReduceSum}
	if err := plan.Run(args); err != nil { // warm up
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := plan.Run(args); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// Fig3 sweeps the block count and reports measured AP kernel time next to
// simulated bytes read/written/total — the correlation Fig. 3 shows.
func Fig3(opt Options) error {
	t := &table{header: []string{"dataset", "nB", "AP time",
		"read MB", "written MB", "total MB", "reuse"}}
	iters := opt.epochs(5)
	for _, name := range []string{"reddit-sim", "ogbn-products-sim"} {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return err
		}
		featBytes := ds.Features.Cols * 4
		cfg := cachesim.APConfig{
			FeatureBytes:    featBytes,
			CacheBytes:      cacheBytesFor(ds),
			ReorderedOutput: true,
		}
		for _, nB := range blockSweep {
			elapsed, err := timeAggKernel(ds, spmm.DefaultOptions(nB), iters)
			if err != nil {
				return err
			}
			c := cfg
			c.NumBlocks = nB
			st := cachesim.SimulateAP(ds.G, c)
			t.add(name, fmt.Sprint(nB), elapsed.String(),
				f2(float64(st.BytesRead)/1e6), f2(float64(st.BytesWritten)/1e6),
				f2(float64(st.TotalIO())/1e6), f2(st.EffectiveReuse(featBytes)))
		}
	}
	t.write(opt.Out)
	return nil
}

// Fig4 reports the cumulative effect of each single-socket optimization —
// dynamic scheduling (DS), cache blocking (Block), loop reordering with
// specialized kernels (LR) — on AP time and simulated memory IO.
func Fig4(opt Options) error {
	t := &table{header: []string{"dataset", "arm", "AP time", "memory IO MB", "speedup"}}
	iters := opt.epochs(5)
	for _, name := range []string{"reddit-sim", "ogbn-products-sim"} {
		ds, err := loadDataset(name, opt.scale())
		if err != nil {
			return err
		}
		cacheBytes := cacheBytesFor(ds)
		featBytes := ds.Features.Cols * 4

		// Best block count by simulated total IO (the paper's sweet spot).
		bestNB, bestIO := 1, int64(1<<62)
		for _, nB := range blockSweep {
			st := cachesim.SimulateAP(ds.G, cachesim.APConfig{
				NumBlocks: nB, FeatureBytes: featBytes, CacheBytes: cacheBytes,
				ReorderedOutput: true,
			})
			if st.TotalIO() < bestIO {
				bestNB, bestIO = nB, st.TotalIO()
			}
		}

		simIO := func(nB int, reordered bool) float64 {
			st := cachesim.SimulateAP(ds.G, cachesim.APConfig{
				NumBlocks: nB, FeatureBytes: featBytes, CacheBytes: cacheBytes,
				ReorderedOutput: reordered,
			})
			return float64(st.TotalIO()) / 1e6
		}

		// Arm 1: DGL baseline (Alg. 1 interpreted kernel, static schedule).
		out := tensor.New(ds.G.NumVertices, ds.Features.Cols)
		args := &spmm.Args{G: ds.G, FV: ds.Features, FO: out,
			Op: spmm.OpCopyLHS, Red: spmm.ReduceSum}
		if err := spmm.Baseline(args); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := spmm.Baseline(args); err != nil {
				return err
			}
		}
		baseTime := time.Since(start) / time.Duration(iters)

		arms := []struct {
			name string
			opt  spmm.Options
			io   float64
		}{
			{"baseline", spmm.Options{}, simIO(1, false)},
			{"+DS", spmm.Options{NumBlocks: 1, Schedule: spmm.ScheduleDynamic}, simIO(1, false)},
			{"+DS+Block", spmm.Options{NumBlocks: bestNB, Schedule: spmm.ScheduleDynamic}, simIO(bestNB, false)},
			{"+DS+Block+LR", spmm.Options{NumBlocks: bestNB, Schedule: spmm.ScheduleDynamic, Reordered: true}, simIO(bestNB, true)},
		}
		t.add(name, arms[0].name, baseTime.String(), f2(arms[0].io), "1.00")
		for _, arm := range arms[1:] {
			elapsed, err := timeAggKernel(ds, arm.opt, iters)
			if err != nil {
				return err
			}
			t.add(name, arm.name, elapsed.String(), f2(arm.io),
				f2(baseTime.Seconds()/elapsed.Seconds()))
		}
	}
	t.write(opt.Out)
	return nil
}
