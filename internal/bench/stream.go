package bench

// stream.go is the abl-stream ablation: the cost of live graph mutation on
// the serving path. A 2-shard updates-enabled fleet serves an open-loop
// Poisson /predict workload twice — once alone (the query-latency arm the
// regression gate pins), and once co-running an MMPP-modulated edge-insert
// stream POSTed to /update in batches, with the compaction threshold set
// low enough that the overlay folds into the base CSR several times inside
// the window. Reported per arm: sustained QPS and p50/p95/p99 from
// scheduled arrival (no coordinated omission); for the co-ingest arm also
// the sustained ingest rate, batch count, compactions, and the mean
// invalidation fan-out per batch (embedding + feature cache entries killed,
// from the fleet's stream counters). BENCH_stream.json carries the report;
// the committed BENCH_baseline/abl-stream.json gates the query-only p95.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/serve"
	"distgnn/internal/train"
)

const (
	streamBenchShards  = 2
	streamBenchEvents  = 480 // edge inserts in the co-ingest arm
	streamBenchBatch   = 16  // max edges per /update POST
	streamBenchCompact = 128 // overlay threshold: several compactions per run
)

// StreamBenchRow is one arm's measurement.
type StreamBenchRow struct {
	Arm         string  `json:"arm"` // query-only, co-ingest
	Requests    int     `json:"requests"`
	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	IngestEPS   float64 `json:"ingest_edges_per_sec"`
	Batches     int64   `json:"batches"`
	Compactions int64   `json:"compactions"`
	// InvalidatedPerBatch is the mean cache entries (embedding + feature,
	// entry rank) each update batch invalidated — the k-hop fan-out cost.
	InvalidatedPerBatch float64 `json:"invalidated_per_batch"`
}

// StreamBenchReport is the BENCH_stream.json schema.
type StreamBenchReport struct {
	Experiment string           `json:"experiment"`
	Scale      float64          `json:"scale"`
	Epochs     int              `json:"epochs"`
	Results    []StreamBenchRow `json:"results"`
	// CoIngestOverheadP95 is co-ingest p95 / query-only p95 — what live
	// mutation costs the serving tail (≥ 1).
	CoIngestOverheadP95 float64 `json:"co_ingest_overhead_p95"`
	// Metrics and CalibSeconds are the regression-gate envelope. Only the
	// query-only arm is gated: the co-ingest tail depends on ingest/query
	// interleaving and is reported, not pinned.
	Metrics      map[string]float64 `json:"metrics"`
	CalibSeconds float64            `json:"calib_seconds"`
}

// AblationStream measures serving latency with and without a live edge
// stream mutating the graph underneath.
func AblationStream(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: shardServeHidden, NumLayers: shardServeLayers, Seed: 1},
		Epochs: opt.epochs(3), LR: 0.02, UseAdam: true,
	})
	if err != nil {
		return err
	}
	var ckpt bytes.Buffer
	if err := nn.WriteParams(&ckpt, res.Model.Params()); err != nil {
		return err
	}

	workSet := make([]int32, min(shardServeWorkSet, ds.G.NumVertices))
	step := max(1, ds.G.NumVertices/len(workSet))
	for i := range workSet {
		workSet[i] = int32((i * step) % ds.G.NumVertices)
	}

	// Offer ~50% of single-shard closed-loop capacity. The gated arm must
	// stay far from the queueing knee: at the knee, calibration noise flips
	// the run between a quiet queue and a collapsed one and the p95 gate
	// becomes a coin toss. Contention effects still show — the co-ingest
	// arm adds its own load on top.
	meanSvc, err := calibrateShardService(ds, ckpt.Bytes(), workSet)
	if err != nil {
		return err
	}
	meanGap := time.Duration(float64(meanSvc) / 0.5)
	offered := float64(time.Second) / float64(meanGap)

	rng := rand.New(rand.NewSource(17))
	sched := poissonArrivals(rng, shardServeRequests, meanGap)
	window := sched[len(sched)-1]

	// The insert stream spans the same window as the query schedule, MMPP
	// bursts and all, so contention is sustained rather than front-loaded.
	events, err := datasets.EdgeStream(datasets.StreamConfig{
		NumVertices: ds.G.NumVertices, Events: streamBenchEvents,
		MeanRate: float64(streamBenchEvents) / window.Seconds(), Seed: 5,
	})
	if err != nil {
		return err
	}
	// Rescale timestamps to span the query window exactly (the MMPP spends
	// more wall time in its slow state, so the raw stream runs long);
	// burst structure is preserved, co-contention covers the whole window.
	scale := float64(window) / float64(events[len(events)-1].At)
	for i := range events {
		events[i].At = time.Duration(float64(events[i].At) * scale)
	}
	batches := datasets.Batched(events, streamBenchBatch, window)

	report := StreamBenchReport{Experiment: "abl-stream", Scale: opt.scale(), Epochs: opt.epochs(3)}
	t := &table{header: []string{"arm", "offered QPS", "QPS", "p50", "p95", "p99",
		"ingest e/s", "batches", "compactions", "inv/batch"}}
	for _, arm := range []string{"query-only", "co-ingest"} {
		ing := batches
		if arm == "query-only" {
			ing = nil
		}
		row, err := runStreamArm(ds, ckpt.Bytes(), workSet, sched, ing, rng)
		if err != nil {
			return err
		}
		row.Arm = arm
		report.Results = append(report.Results, row)
		t.add(arm, fmt.Sprintf("%.0f", offered), fmt.Sprintf("%.0f", row.QPS),
			fmt.Sprintf("%.2fms", row.P50MS), fmt.Sprintf("%.2fms", row.P95MS),
			fmt.Sprintf("%.2fms", row.P99MS), fmt.Sprintf("%.0f", row.IngestEPS),
			fmt.Sprint(row.Batches), fmt.Sprint(row.Compactions), f2(row.InvalidatedPerBatch))
	}
	t.write(opt.Out)

	if q := report.Results[0].P95MS; q > 0 {
		report.CoIngestOverheadP95 = report.Results[1].P95MS / q
	}
	fmt.Fprintf(opt.Out, "\nco-ingest/query-only p95: %.2fx (live mutation's serving-tail cost)\n",
		report.CoIngestOverheadP95)

	report.Metrics = map[string]float64{
		"stream_query_p95_ms": report.Results[0].P95MS,
	}
	report.CalibSeconds = CalibrationSeconds()

	if opt.JSON != nil {
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

// runStreamArm replays the query schedule against a fresh updates-enabled
// fleet, co-running the ingest batches (when non-nil) against rank 0's
// /update at their stream timestamps.
func runStreamArm(ds *datasets.Dataset, ckpt []byte, workSet []int32,
	sched []time.Duration, ingest [][]datasets.EdgeEvent, rng *rand.Rand) (StreamBenchRow, error) {
	fleet, err := startShardFleetCfg(ds, ckpt, streamBenchShards, func(cfg *serve.Config) {
		cfg.EnableUpdates = true
		cfg.CompactThreshold = streamBenchCompact
		cfg.EmbedCacheBytes = 8 << 20 // invalidation needs resident rows to kill
	})
	if err != nil {
		return StreamBenchRow{}, err
	}
	defer fleet.close()
	client := &http.Client{Timeout: 60 * time.Second}

	for r := 0; r < streamBenchShards; r++ {
		if err := shardQuery(client, fleet.addrs[r], workSet[0]); err != nil {
			return StreamBenchRow{}, err
		}
	}

	vertices := make([]int32, len(sched))
	for i := range vertices {
		vertices[i] = workSet[rng.Intn(len(workSet))]
	}
	lat := make([]time.Duration, len(sched))
	errs := make([]error, len(sched))
	var wg sync.WaitGroup
	var ingErr error
	start := time.Now()
	for i := range sched {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrive := start.Add(sched[i])
			time.Sleep(time.Until(arrive))
			if err := shardQuery(client, fleet.addrs[i%streamBenchShards], vertices[i]); err != nil {
				errs[i] = err
				return
			}
			lat[i] = time.Since(arrive)
		}(i)
	}
	var ingestDur time.Duration
	if len(ingest) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, batch := range ingest {
				time.Sleep(time.Until(start.Add(batch[0].At)))
				if err := postUpdateBatch(client, fleet.addrs[0], batch); err != nil {
					ingErr = err
					return
				}
			}
			ingestDur = time.Since(start)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return StreamBenchRow{}, err
		}
	}
	if ingErr != nil {
		return StreamBenchRow{}, ingErr
	}
	// Query throughput over the query span alone (scheduled arrival to last
	// completion), not the ingest goroutine's tail.
	var queryEnd time.Duration
	for i := range sched {
		if end := sched[i] + lat[i]; end > queryEnd {
			queryEnd = end
		}
	}

	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	row := StreamBenchRow{
		Requests: len(sorted),
		QPS:      float64(len(sorted)) / queryEnd.Seconds(),
		P50MS:    percentileMS(sorted, 0.50),
		P95MS:    percentileMS(sorted, 0.95),
		P99MS:    percentileMS(sorted, 0.99),
	}
	if len(ingest) > 0 {
		// Entry-rank stream counters: every rank applies every batch, so
		// rank 0 speaks for fleet-wide update progress.
		str := fleet.servers[0].StatsSnapshot().Stream
		if str == nil {
			return StreamBenchRow{}, fmt.Errorf("abl-stream: fleet has no stream stats")
		}
		row.Batches = str.Updates
		row.Compactions = str.Compactions
		if ingestDur > 0 {
			row.IngestEPS = float64(str.EdgesApplied) / ingestDur.Seconds()
		}
		if str.Updates > 0 {
			row.InvalidatedPerBatch =
				float64(str.InvalidatedEmbeddings+str.InvalidatedFeatures) / float64(str.Updates)
		}
	}
	return row, nil
}

// postUpdateBatch POSTs one insert batch to addr's /update.
func postUpdateBatch(client *http.Client, addr string, batch []datasets.EdgeEvent) error {
	req := serve.UpdateRequest{Edges: make([][2]int32, len(batch))}
	for i, ev := range batch {
		req.Edges[i] = [2]int32{ev.Edge.Src, ev.Edge.Dst}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(fmt.Sprintf("http://%s/update", addr), "application/json",
		bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("abl-stream: /update status %d", resp.StatusCode)
	}
	return nil
}
