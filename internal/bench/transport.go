package bench

import (
	"encoding/json"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/train"
)

// transport.go is the abl-transport ablation: the same cd-r / cd-rs run on
// the in-process fabric (every rank a goroutine) and over loopback TCP
// (every rank a real socket endpoint, messages framed and serialized),
// comparing real wall-clock epoch time. The delta is the transport tax —
// serialization, syscalls, kernel round-trips — that multi-process
// deployment pays for process isolation; the training math is bit-identical
// on both (pinned in internal/train's conformance harness). With
// Options.JSON set, the rows are also emitted as one machine-readable
// report — CI uploads it as BENCH_transport.json so future PRs can diff
// the perf trajectory.

const transportBenchRanks = 2

// TransportBenchRow is one (algorithm, transport) measurement.
type TransportBenchRow struct {
	Algo             string  `json:"algo"`
	Transport        string  `json:"transport"`
	Ranks            int     `json:"ranks"`
	Epochs           int     `json:"epochs"`
	WallEpochSeconds float64 `json:"wall_epoch_seconds"`
	SimEpochSeconds  float64 `json:"sim_epoch_seconds"`
	FinalLoss        float64 `json:"final_loss"`
	TestAcc          float64 `json:"test_acc"`
}

// TransportBenchReport is the BENCH_transport.json schema.
type TransportBenchReport struct {
	Experiment string              `json:"experiment"`
	Scale      float64             `json:"scale"`
	Results    []TransportBenchRow `json:"results"`
}

// AblationTransport times cd-r and cd-rs epochs on both comm substrates.
func AblationTransport(opt Options) error {
	ds, err := loadDataset("reddit-sim", opt.scale())
	if err != nil {
		return err
	}
	epochs := opt.epochs(6)
	report := TransportBenchReport{Experiment: "abl-transport", Scale: opt.scale()}
	calibrated() // one-time compute-model calibration must not pollute the first wall measurement

	baseCfg := func(algo train.Algorithm) train.DistConfig {
		return train.DistConfig{
			Model:         fig5ModelFor("reddit-sim"),
			NumPartitions: transportBenchRanks, Algo: algo, Delay: 2,
			Epochs: epochs, LR: 0.02, UseAdam: true, Seed: 1,
			Compute: calibrated(),
		}
	}

	t := &table{header: []string{"algo", "transport", "wall/epoch", "sim/epoch", "test acc"}}
	for _, algo := range []train.Algorithm{train.AlgoCDR, train.AlgoCDRS} {
		// In-process: every rank a goroutine over the shared mailbox.
		start := time.Now()
		res, err := train.Distributed(ds, baseCfg(algo))
		if err != nil {
			return err
		}
		addTransportRow(t, &report, string(algo), "inproc", epochs, time.Since(start), res)

		// Loopback TCP: every rank its own endpoint, frames on real sockets.
		eps, err := comm.NewLoopbackTCP(transportBenchRanks, time.Minute)
		if err != nil {
			return err
		}
		start = time.Now()
		tcpRes, err := train.DistributedFleet(ds, baseCfg(algo), eps)
		wall := time.Since(start)
		for _, ep := range eps {
			ep.Close()
		}
		if err != nil {
			return err
		}
		addTransportRow(t, &report, string(algo), "tcp", epochs, wall, tcpRes)
	}
	t.write(opt.Out)

	if opt.JSON != nil {
		enc := json.NewEncoder(opt.JSON)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	}
	return nil
}

func addTransportRow(t *table, report *TransportBenchReport, algo, transport string,
	epochs int, wall time.Duration, res *train.DistResult) {
	row := TransportBenchRow{
		Algo: algo, Transport: transport, Ranks: transportBenchRanks, Epochs: epochs,
		WallEpochSeconds: wall.Seconds() / float64(epochs),
		SimEpochSeconds:  res.AvgEpochSeconds(1, epochs),
		FinalLoss:        res.Epochs[epochs-1].Loss,
		TestAcc:          res.TestAcc,
	}
	report.Results = append(report.Results, row)
	t.add(algo, transport, ms(row.WallEpochSeconds), ms(row.SimEpochSeconds), pct(row.TestAcc))
}
