package bench

import (
	"fmt"

	"distgnn/internal/datasets"

	"distgnn/internal/minibatch"
	"distgnn/internal/partition"
	"distgnn/internal/train"
	"distgnn/internal/workmodel"
)

// table7Fanouts are Dist-DGL's per-hop neighbor budgets in Table 7
// (hop-0 expands with 15, then 10, then 5).
var table7Fanouts = []int{15, 10, 5}

const table7Batch = 200 // scaled from the paper's 2000 proportionally

// loadLowLabelProducts generates the products-sim graph with the real
// OGBN-Products label budget: 196,615 of 2,449,029 vertices (≈8%) are
// training vertices. The mini-batch-vs-full-batch work ratio of Tables 7–9
// hinges on this fraction, so the default 60% split would distort it.
func loadLowLabelProducts(opt Options) (*datasets.Dataset, error) {
	spec, err := datasets.SpecFor("ogbn-products-sim", opt.scale())
	if err != nil {
		return nil, err
	}
	spec.Name = "ogbn-products-lowlabel"
	spec.TrainFrac = 0.08
	spec.ValFrac = 0.02
	key := fmt.Sprintf("%s@%g", spec.Name, opt.scale())
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	d, err := datasets.Generate(spec)
	if err != nil {
		return nil, err
	}
	dsCache[key] = d
	return d, nil
}

// Table7 measures the sampled aggregation work of the Dist-DGL style
// mini-batch pipeline per hop, per mini-batch, and per epoch — the paper's
// Table 7 accounting, measured from an actual sampler instead of assumed.
func Table7(opt Options) error {
	ds, err := loadLowLabelProducts(opt)
	if err != nil {
		return err
	}
	sampler, err := minibatch.NewSampler(ds.G, table7Fanouts, 1)
	if err != nil {
		return err
	}
	hidden := fig5ModelFor("ogbn-products-sim").Hidden
	feats := []int{ds.Features.Cols, hidden, hidden}

	// Sample a representative batch of training vertices.
	batch := ds.TrainIdx
	if len(batch) > table7Batch {
		batch = batch[:table7Batch]
	}
	s := sampler.Sample(batch)

	t := &table{header: []string{"hop", "#vertices", "avg sampled deg",
		"#feats", "work (M ops)"}}
	var perBatch float64
	for h := len(s.Blocks) - 1; h >= 0; h-- {
		blk := s.Blocks[h]
		deg := float64(blk.NumSampledEdges()) / float64(blk.NumDst)
		feat := feats[len(s.Blocks)-1-h]
		hop := workmodel.HopWork{Vertices: blk.NumDst, Degree: deg, Feat: feat}
		perBatch += hop.Ops()
		t.add(fmt.Sprintf("hop-%d", h), fmt.Sprint(blk.NumDst), f2(deg),
			fmt.Sprint(feat), f2(hop.Ops()/1e6))
	}
	batches := (len(ds.TrainIdx) + table7Batch - 1) / table7Batch
	t.add("1 mini-batch", "", "", "", f2(perBatch/1e6))
	t.add(fmt.Sprintf("1 socket (%d batches)", batches), "", "", "",
		f2(perBatch*float64(batches)/1e6))
	t.write(opt.Out)
	return nil
}

// Table8 reports full-batch aggregation work per hop for 1 and 16
// partitions, from actual Libra partitions — the paper's Table 8.
func Table8(opt Options) error {
	ds, err := loadDataset("ogbn-products-sim", opt.scale())
	if err != nil {
		return err
	}
	hidden := fig5ModelFor("ogbn-products-sim").Hidden
	feats := []int{ds.Features.Cols, hidden, hidden}

	t := &table{header: []string{"#sockets", "hop", "#vertices/partition",
		"avg deg", "#feats", "work/socket (M ops)"}}
	for _, k := range []int{1, 16} {
		vertices := ds.G.NumVertices
		if k > 1 {
			pt, err := partition.Partition(ds.G, partition.Libra{Seed: 1}, k, 1)
			if err != nil {
				return err
			}
			// Largest partition bounds the per-socket work.
			vertices = 0
			for _, p := range pt.Parts {
				if p.NumLocal() > vertices {
					vertices = p.NumLocal()
				}
			}
		}
		hops := workmodel.FullBatchHops(vertices, ds.G.AvgDegree(), feats)
		var total float64
		for i, h := range hops {
			total += h.Ops()
			t.add(fmt.Sprint(k), fmt.Sprintf("hop-%d", len(hops)-1-i),
				fmt.Sprint(h.Vertices), f2(h.Degree), fmt.Sprint(h.Feat),
				f2(h.Ops()/1e6))
		}
		t.add(fmt.Sprint(k), "full batch", "", "", "", f2(total/1e6))
	}
	t.write(opt.Out)
	return nil
}

// Table9 compares training time per epoch of the mini-batch (Dist-DGL
// analogue) pipeline against full-batch DistGNN cd-5: measured wall time on
// one socket, simulated cluster time at 16 sockets.
func Table9(opt Options) error {
	ds, err := loadLowLabelProducts(opt)
	if err != nil {
		return err
	}
	epochs := opt.epochs(3)

	mb, err := minibatch.Train(ds, minibatch.Config{
		Hidden: fig5ModelFor("ogbn-products-sim").Hidden, NumLayers: 3,
		Fanouts: table7Fanouts, BatchSize: table7Batch,
		Epochs: epochs, LR: 0.01, Seed: 1,
	})
	if err != nil {
		return err
	}

	single, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  fig5ModelFor("ogbn-products-sim"),
		Epochs: epochs, LR: 0.01,
	})
	if err != nil {
		return err
	}
	sTot, _ := single.AvgEpoch(0, epochs)

	dist16, err := distRun(opt, "ogbn-products-sim", 16, train.AlgoCDR, opt.epochs(2*fig5Delay+4))
	if err != nil {
		return err
	}
	lo, hi := epochWindow(train.AlgoCDR, opt.epochs(2*fig5Delay+4))
	d16 := dist16.AvgEpochSeconds(lo, hi)

	t := &table{header: []string{"#sockets", "Dist-DGL (mini-batch)", "DistGNN cd-5 (full batch)"}}
	t.add("1", mb.AvgEpochTime().String(), sTot.String()+" (measured)")
	t.add("16", "-", ms(d16)+" (simulated)")
	t.write(opt.Out)
	fmt.Fprintf(opt.Out, "\nmini-batch sampled work/epoch: %.1f M ops; full-batch work/epoch: %.1f M ops (%.1fx)\n",
		float64(mb.Epochs[0].SampledWork)/1e6,
		fullBatchOps(ds.G.NumVertices, ds.G.AvgDegree(), ds.Features.Cols)/1e6,
		fullBatchOps(ds.G.NumVertices, ds.G.AvgDegree(), ds.Features.Cols)/float64(mb.Epochs[0].SampledWork))
	return nil
}

func fullBatchOps(vertices int, avgDeg float64, featDim int) float64 {
	hidden := fig5ModelFor("ogbn-products-sim").Hidden
	return workmodel.TotalOps(workmodel.FullBatchHops(vertices, avgDeg,
		[]int{featDim, hidden, hidden}))
}
