package cachesim

import "distgnn/internal/graph"

// APConfig describes one simulated aggregation run.
type APConfig struct {
	// NumBlocks is nB of Alg. 2.
	NumBlocks int
	// FeatureBytes is the size of one feature vector (d × 4).
	FeatureBytes int
	// CacheBytes is the modeled cache capacity (per-socket LLC share).
	CacheBytes int
	// ReorderedOutput models the Alg. 3 loop reordering: the output tile is
	// held in registers, so f_O rows do not occupy cache and are moved
	// to/from memory exactly once per (block, active vertex). When false,
	// f_O rows compete with f_V for cache space.
	ReorderedOutput bool
}

// APStats are the counters the paper reports.
type APStats struct {
	// FVAccesses / FVMisses count f_V feature-vector touches; their ratio
	// is Table 3's cache reuse.
	FVAccesses int64
	FVMisses   int64
	// BytesRead / BytesWritten are total DRAM traffic, including f_V
	// fetches, f_O read-modify-writes per block pass, and the CSR index
	// structure streams (Fig. 3).
	BytesRead    int64
	BytesWritten int64
}

// ReuseFactor returns the average number of uses per f_V vector load —
// Table 3's metric. Ideal reuse equals the graph's average degree.
func (s APStats) ReuseFactor() float64 {
	if s.FVMisses == 0 {
		return 0
	}
	return float64(s.FVAccesses) / float64(s.FVMisses)
}

// TotalIO returns read+written bytes — the quantity Fig. 3 shows correlates
// with execution time.
func (s APStats) TotalIO() int64 { return s.BytesRead + s.BytesWritten }

// EffectiveReuse is the traffic-derived reuse the paper's Table 3 reports:
// useful f_V bytes consumed per byte actually read from memory. Unlike
// ReuseFactor it *falls* again at high block counts, because every extra
// pass over f_O inflates the read traffic — exactly the rising tail of
// Fig. 3 that defines the blocking sweet spot.
func (s APStats) EffectiveReuse(featureBytes int) float64 {
	if s.BytesRead == 0 {
		return 0
	}
	return float64(s.FVAccesses) * float64(featureBytes) / float64(s.BytesRead)
}

// fOKeyBase separates f_O keys from f_V keys in the shared cache.
const fOKeyBase = uint64(1) << 40

// SimulateAP replays the access stream of the blocked aggregation kernel
// (Alg. 2, ⊗=copylhs) over g through an LRU cache and returns the traffic
// counters. The stream is the sequential projection of the parallel kernel:
// blocks outermost, destinations in order, sources per the block CSR — the
// same stream every thread collectively produces.
func SimulateAP(g *graph.CSR, cfg APConfig) APStats {
	if cfg.NumBlocks < 1 {
		cfg.NumBlocks = 1
	}
	blocked := graph.NewBlocked(g, cfg.NumBlocks)
	cache := NewLRU(cfg.CacheBytes)
	var st APStats
	vec := int64(cfg.FeatureBytes)

	for _, blk := range blocked.Blocks {
		// Per block pass: stream the block's index structure once.
		st.BytesRead += int64(blk.NumEdges)*4 + int64(g.NumVertices+1)*4
		for v := 0; v < blk.NumVertices; v++ {
			nbr := blk.InNeighbors(v)
			if len(nbr) == 0 {
				continue
			}
			for _, u := range nbr {
				st.FVAccesses++
				if !cache.Access(uint64(u), cfg.FeatureBytes) {
					st.FVMisses++
					st.BytesRead += vec
				}
			}
			// f_O[v] is read-modified-written once per active block pass.
			st.BytesRead += vec
			st.BytesWritten += vec
			if !cfg.ReorderedOutput {
				// Without loop reordering the output row also occupies
				// cache, evicting f_V entries.
				cache.Access(fOKeyBase|uint64(v), cfg.FeatureBytes)
			}
		}
	}
	return st
}

// SweepBlocks runs SimulateAP for each block count and returns the stats,
// the raw material for Table 3 and Fig. 3.
func SweepBlocks(g *graph.CSR, cfg APConfig, blockCounts []int) []APStats {
	out := make([]APStats, len(blockCounts))
	for i, nB := range blockCounts {
		c := cfg
		c.NumBlocks = nB
		out[i] = SimulateAP(g, c)
	}
	return out
}
