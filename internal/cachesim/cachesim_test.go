package cachesim

import (
	"math/rand"
	"testing"

	"distgnn/internal/datasets"
	"distgnn/internal/graph"
)

func TestLRUBasicHitMiss(t *testing.T) {
	c := NewLRU(100)
	if c.Access(1, 40) {
		t.Fatal("first access must miss")
	}
	if !c.Access(1, 40) {
		t.Fatal("second access must hit")
	}
	if c.Used() != 40 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewLRU(100)
	c.Access(1, 40)
	c.Access(2, 40)
	c.Access(1, 40) // 1 now most recent
	c.Access(3, 40) // must evict 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatal("wrong eviction victim")
	}
}

func TestLRUOversizedEntryNeverCached(t *testing.T) {
	c := NewLRU(10)
	if c.Access(1, 100) {
		t.Fatal("oversized access cannot hit")
	}
	if c.Len() != 0 {
		t.Fatal("oversized entry must not be inserted")
	}
	if c.Access(1, 100) {
		t.Fatal("oversized access must keep missing")
	}
}

func TestLRUCapacityRespected(t *testing.T) {
	c := NewLRU(100)
	for k := uint64(0); k < 50; k++ {
		c.Access(k, 30)
		if c.Used() > 100 {
			t.Fatalf("capacity exceeded: %d", c.Used())
		}
	}
}

func TestLRUReset(t *testing.T) {
	c := NewLRU(100)
	c.Access(1, 40)
	c.Reset()
	if c.Len() != 0 || c.Used() != 0 || c.Contains(1) {
		t.Fatal("reset incomplete")
	}
}

func ringGraph(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, 2*n)
	for v := 0; v < n; v++ {
		edges = append(edges,
			graph.Edge{Src: int32(v), Dst: int32((v + 1) % n)},
			graph.Edge{Src: int32((v + 1) % n), Dst: int32(v)})
	}
	return graph.MustCSR(n, edges)
}

func randomGraph(rng *rand.Rand, n, m int) *graph.CSR {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	return graph.MustCSR(n, edges)
}

func TestInfiniteCacheAchievesIdealReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 500, 8000)
	st := SimulateAP(g, APConfig{NumBlocks: 1, FeatureBytes: 256, CacheBytes: 1 << 30, ReorderedOutput: true})
	// With an infinite cache every distinct source misses exactly once.
	distinct := map[int32]bool{}
	for _, e := range g.Edges() {
		distinct[e.Src] = true
	}
	if st.FVMisses != int64(len(distinct)) {
		t.Fatalf("misses %d != distinct sources %d", st.FVMisses, len(distinct))
	}
	if st.FVAccesses != int64(g.NumEdges) {
		t.Fatalf("accesses %d != edges %d", st.FVAccesses, g.NumEdges)
	}
}

func TestTinyCacheReuseNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 1000, 16000)
	st := SimulateAP(g, APConfig{NumBlocks: 1, FeatureBytes: 256, CacheBytes: 512, ReorderedOutput: true})
	if r := st.ReuseFactor(); r > 1.5 {
		t.Fatalf("tiny cache reuse %v should be ≈1", r)
	}
}

func TestReuseBoundedByAvgSourceDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 300, 6000)
	distinct := map[int32]bool{}
	for _, e := range g.Edges() {
		distinct[e.Src] = true
	}
	ideal := float64(g.NumEdges) / float64(len(distinct))
	for _, nB := range []int{1, 2, 8, 32} {
		st := SimulateAP(g, APConfig{NumBlocks: nB, FeatureBytes: 128, CacheBytes: 1 << 14, ReorderedOutput: true})
		if r := st.ReuseFactor(); r > ideal+1e-9 {
			t.Fatalf("nB=%d: reuse %v exceeds ideal %v", nB, r, ideal)
		}
	}
}

func TestBlockingImprovesReuseOnDenseGraph(t *testing.T) {
	// Table 3's Reddit row: with a cache too small for all of f_V,
	// blocking must raise reuse substantially.
	d := datasets.MustLoad("reddit-sim", 0.5)
	featBytes := 64 * 4
	cache := d.G.NumVertices * featBytes / 8 // cache holds 1/8 of f_V
	one := SimulateAP(d.G, APConfig{NumBlocks: 1, FeatureBytes: featBytes, CacheBytes: cache, ReorderedOutput: true})
	blocked := SimulateAP(d.G, APConfig{NumBlocks: 16, FeatureBytes: featBytes, CacheBytes: cache, ReorderedOutput: true})
	if blocked.ReuseFactor() < 1.5*one.ReuseFactor() {
		t.Fatalf("blocking reuse %v vs unblocked %v — expected ≥1.5×",
			blocked.ReuseFactor(), one.ReuseFactor())
	}
}

func TestMoreBlocksMoreOutputTraffic(t *testing.T) {
	// Each extra pass over f_O adds read+write traffic (Fig. 3's rising
	// right side).
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 400, 12000)
	cfg := APConfig{FeatureBytes: 256, CacheBytes: 1 << 30, ReorderedOutput: true} // infinite: isolate f_O term
	st1 := SimulateAP(g, APConfig{NumBlocks: 1, FeatureBytes: cfg.FeatureBytes, CacheBytes: cfg.CacheBytes, ReorderedOutput: true})
	st8 := SimulateAP(g, APConfig{NumBlocks: 8, FeatureBytes: cfg.FeatureBytes, CacheBytes: cfg.CacheBytes, ReorderedOutput: true})
	if st8.BytesWritten <= st1.BytesWritten {
		t.Fatalf("8 blocks wrote %d ≤ 1 block %d", st8.BytesWritten, st1.BytesWritten)
	}
}

func TestReorderedOutputReducesFVMisses(t *testing.T) {
	// Without reordering, f_O rows occupy the cache and evict f_V vectors.
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 600, 20000)
	featBytes := 256
	cache := 600 * featBytes / 3
	plain := SimulateAP(g, APConfig{NumBlocks: 1, FeatureBytes: featBytes, CacheBytes: cache})
	reord := SimulateAP(g, APConfig{NumBlocks: 1, FeatureBytes: featBytes, CacheBytes: cache, ReorderedOutput: true})
	if reord.FVMisses >= plain.FVMisses {
		t.Fatalf("reordered misses %d not below plain %d", reord.FVMisses, plain.FVMisses)
	}
}

func TestSweepBlocksMatchesIndividualRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 200, 3000)
	cfg := APConfig{FeatureBytes: 128, CacheBytes: 1 << 15, ReorderedOutput: true}
	sweep := SweepBlocks(g, cfg, []int{1, 4, 16})
	for i, nB := range []int{1, 4, 16} {
		c := cfg
		c.NumBlocks = nB
		single := SimulateAP(g, c)
		if sweep[i] != single {
			t.Fatalf("nB=%d: sweep %+v != single %+v", nB, sweep[i], single)
		}
	}
}

func TestStatsAccessors(t *testing.T) {
	st := APStats{FVAccesses: 100, FVMisses: 20, BytesRead: 300, BytesWritten: 100}
	if st.ReuseFactor() != 5 {
		t.Fatalf("reuse %v", st.ReuseFactor())
	}
	if st.TotalIO() != 400 {
		t.Fatalf("total IO %v", st.TotalIO())
	}
	if (APStats{}).ReuseFactor() != 0 {
		t.Fatal("zero-miss reuse must be 0")
	}
}

func TestRingGraphPerfectSpatialReuse(t *testing.T) {
	// Ring: each source feeds 2 destinations; with a warm cache holding a
	// window, reuse approaches 2.
	g := ringGraph(2000)
	st := SimulateAP(g, APConfig{NumBlocks: 1, FeatureBytes: 64, CacheBytes: 64 * 64, ReorderedOutput: true})
	if r := st.ReuseFactor(); r < 1.5 || r > 2.01 {
		t.Fatalf("ring reuse %v, want ≈2", r)
	}
}
