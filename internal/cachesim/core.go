package cachesim

import "container/list"

// Core is the reusable generic heart of the LRU: a fully associative
// least-recently-used cache with a byte-capacity budget, variable-size
// entries, and an optional value per key. The cache-behaviour simulator
// wraps it with struct{} values (only residency matters there); the online
// serving cache in internal/serve wraps it with real payloads behind shard
// locks. Core itself is not safe for concurrent use.
type Core[K comparable, V any] struct {
	capacity int
	used     int
	order    *list.List // front = most recent; values are *coreEntry[K, V]
	index    map[K]*list.Element
}

type coreEntry[K comparable, V any] struct {
	key  K
	val  V
	size int
}

// NewCore creates a cache holding up to capacityBytes of entries.
func NewCore[K comparable, V any](capacityBytes int) *Core[K, V] {
	return &Core[K, V]{
		capacity: capacityBytes,
		order:    list.New(),
		index:    make(map[K]*list.Element),
	}
}

// Get returns the value stored under key and promotes it to most recent.
func (c *Core[K, V]) Get(key K) (V, bool) {
	if el, ok := c.index[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*coreEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Peek returns the value stored under key without touching recency.
func (c *Core[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.index[key]; ok {
		return el.Value.(*coreEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates key with the given value and size, evicting
// least-recently-used entries to fit, and reports how many entries were
// evicted and whether the entry is now resident. Entries larger than the
// whole budget are never resident: a Put of one removes any stale entry
// under the key and stores nothing.
func (c *Core[K, V]) Put(key K, val V, size int) (evicted int, stored bool) {
	if el, ok := c.index[key]; ok {
		ent := el.Value.(*coreEntry[K, V])
		if size > c.capacity {
			c.order.Remove(el)
			delete(c.index, key)
			c.used -= ent.size
			return 0, false
		}
		c.used += size - ent.size
		ent.val = val
		ent.size = size
		c.order.MoveToFront(el)
		return c.evictToFit(), true
	}
	if size > c.capacity {
		return 0, false
	}
	c.index[key] = c.order.PushFront(&coreEntry[K, V]{key: key, val: val, size: size})
	c.used += size
	return c.evictToFit(), true
}

// evictToFit removes LRU entries until used ≤ capacity. The entry just
// touched sits at the front and is never the victim (its size is already
// known to fit the whole budget).
func (c *Core[K, V]) evictToFit() int {
	evicted := 0
	for c.used > c.capacity {
		back := c.order.Back()
		ent := back.Value.(*coreEntry[K, V])
		c.order.Remove(back)
		delete(c.index, ent.key)
		c.used -= ent.size
		evicted++
	}
	return evicted
}

// Remove deletes key if resident, releasing its budget, and reports
// whether an entry was removed — the targeted-invalidation primitive the
// mutation plane uses (eviction removes by recency; Remove removes by
// identity).
func (c *Core[K, V]) Remove(key K) bool {
	el, ok := c.index[key]
	if !ok {
		return false
	}
	ent := el.Value.(*coreEntry[K, V])
	c.order.Remove(el)
	delete(c.index, key)
	c.used -= ent.size
	return true
}

// Used returns the bytes currently resident.
func (c *Core[K, V]) Used() int { return c.used }

// Cap returns the byte budget.
func (c *Core[K, V]) Cap() int { return c.capacity }

// Len returns the number of resident entries.
func (c *Core[K, V]) Len() int { return c.order.Len() }

// Reset evicts everything.
func (c *Core[K, V]) Reset() {
	c.order.Init()
	c.index = make(map[K]*list.Element)
	c.used = 0
}
