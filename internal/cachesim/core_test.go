package cachesim

import "testing"

func TestCoreGetPutValues(t *testing.T) {
	c := NewCore[string, int](100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache must miss")
	}
	if ev, stored := c.Put("a", 7, 40); ev != 0 || !stored {
		t.Fatalf("put: evicted=%d stored=%v", ev, stored)
	}
	if v, ok := c.Get("a"); !ok || v != 7 {
		t.Fatalf("get a = %v, %v", v, ok)
	}
	if c.Used() != 40 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestCoreUpdateAdjustsSizeAndValue(t *testing.T) {
	c := NewCore[string, int](100)
	c.Put("a", 1, 40)
	c.Put("a", 2, 60)
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("updated value %v", v)
	}
	if c.Used() != 60 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d after size update", c.Used(), c.Len())
	}
	// Shrinking updates must free budget.
	c.Put("a", 3, 10)
	if c.Used() != 10 {
		t.Fatalf("used=%d after shrink", c.Used())
	}
}

func TestCoreEvictsLRUOnPut(t *testing.T) {
	c := NewCore[int, struct{}](100)
	c.Put(1, struct{}{}, 40)
	c.Put(2, struct{}{}, 40)
	c.Get(1) // 1 most recent
	ev, stored := c.Put(3, struct{}{}, 40)
	if ev != 1 || !stored {
		t.Fatalf("evicted=%d stored=%v", ev, stored)
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("2 must have been the victim")
	}
	if _, ok := c.Peek(1); !ok {
		t.Fatal("1 must survive")
	}
}

func TestCoreOversizedPutRemovesStaleEntry(t *testing.T) {
	c := NewCore[int, int](50)
	c.Put(1, 1, 40)
	if ev, stored := c.Put(1, 2, 60); ev != 0 || stored {
		t.Fatalf("oversized update: evicted=%d stored=%v", ev, stored)
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("oversized update must drop the stale entry")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestCorePeekDoesNotPromote(t *testing.T) {
	c := NewCore[int, struct{}](80)
	c.Put(1, struct{}{}, 40)
	c.Put(2, struct{}{}, 40)
	c.Peek(1)                // must NOT promote 1
	c.Put(3, struct{}{}, 40) // evicts the true LRU
	if _, ok := c.Peek(1); ok {
		t.Fatal("1 was promoted by Peek")
	}
	if _, ok := c.Peek(2); !ok {
		t.Fatal("2 must survive")
	}
}
