// Package cachesim models the CPU cache behaviour of the aggregation
// primitive. Table 3 and Figures 3–4 of the paper are statements about the
// AP's memory access stream — feature-vector reuse and bytes moved to/from
// DRAM as a function of the cache-block count nB. This package replays the
// exact access stream of the blocked kernel (Alg. 2) through an LRU cache
// and reports those counters, standing in for the hardware performance
// counters the authors used.
package cachesim

import "container/list"

// LRU is a fully associative least-recently-used cache with a byte-capacity
// budget and variable-size entries (one entry per feature vector).
type LRU struct {
	capacity int
	used     int
	order    *list.List // front = most recent; values are *entry
	index    map[uint64]*list.Element
}

type entry struct {
	key  uint64
	size int
}

// NewLRU creates a cache holding up to capacityBytes of entries.
func NewLRU(capacityBytes int) *LRU {
	return &LRU{
		capacity: capacityBytes,
		order:    list.New(),
		index:    make(map[uint64]*list.Element),
	}
}

// Access touches key, inserting it with the given size on a miss and
// evicting LRU entries to fit. Returns whether the access hit. Entries
// larger than the whole cache are never resident (every access misses).
func (c *LRU) Access(key uint64, size int) bool {
	if el, ok := c.index[key]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		back := c.order.Back()
		ev := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.index, ev.key)
		c.used -= ev.size
	}
	c.index[key] = c.order.PushFront(&entry{key: key, size: size})
	c.used += size
	return false
}

// Contains reports residency without touching recency.
func (c *LRU) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

// Used returns the bytes currently resident.
func (c *LRU) Used() int { return c.used }

// Len returns the number of resident entries.
func (c *LRU) Len() int { return c.order.Len() }

// Reset evicts everything.
func (c *LRU) Reset() {
	c.order.Init()
	c.index = make(map[uint64]*list.Element)
	c.used = 0
}
