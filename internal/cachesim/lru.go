// Package cachesim models the CPU cache behaviour of the aggregation
// primitive. Table 3 and Figures 3–4 of the paper are statements about the
// AP's memory access stream — feature-vector reuse and bytes moved to/from
// DRAM as a function of the cache-block count nB. This package replays the
// exact access stream of the blocked kernel (Alg. 2) through an LRU cache
// and reports those counters, standing in for the hardware performance
// counters the authors used.
//
// The eviction machinery itself lives in the generic Core so the online
// serving path (internal/serve) shares one LRU implementation with the
// simulator.
package cachesim

// LRU is a fully associative least-recently-used cache with a byte-capacity
// budget and variable-size entries (one entry per feature vector). It
// tracks residency only — the simulator never stores payloads.
type LRU struct {
	core *Core[uint64, struct{}]
}

// NewLRU creates a cache holding up to capacityBytes of entries.
func NewLRU(capacityBytes int) *LRU {
	return &LRU{core: NewCore[uint64, struct{}](capacityBytes)}
}

// Access touches key, inserting it with the given size on a miss and
// evicting LRU entries to fit. Returns whether the access hit. Entries
// larger than the whole cache are never resident (every access misses).
func (c *LRU) Access(key uint64, size int) bool {
	if _, ok := c.core.Get(key); ok {
		return true
	}
	c.core.Put(key, struct{}{}, size)
	return false
}

// Contains reports residency without touching recency.
func (c *LRU) Contains(key uint64) bool {
	_, ok := c.core.Peek(key)
	return ok
}

// Used returns the bytes currently resident.
func (c *LRU) Used() int { return c.core.Used() }

// Len returns the number of resident entries.
func (c *LRU) Len() int { return c.core.Len() }

// Reset evicts everything.
func (c *LRU) Reset() { c.core.Reset() }
