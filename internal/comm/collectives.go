package comm

import "fmt"

// Additional collectives rounding out the OneCCL surface the paper's
// torch.distributed integration uses. All share the deterministic,
// rank-ordered semantics of AllReduceSum.

// Broadcast copies root's buffer into every rank's buffer. All ranks must
// pass equal-length buffers and the same root.
func (w *World) Broadcast(rank, root int, data []float32) {
	if root < 0 || root >= w.N {
		panic(fmt.Sprintf("comm: broadcast root %d outside world of %d", root, w.N))
	}
	if w.remote() {
		w.netBroadcast(rank, root, data)
		return
	}
	w.mu.Lock()
	w.slots[rank] = data
	w.arriveLocked()
	src := w.slots[root]
	w.mu.Unlock()

	if len(src) != len(data) {
		panic(fmt.Sprintf("comm: broadcast length mismatch: rank %d has %d, root has %d",
			rank, len(data), len(src)))
	}
	var out []float32
	if rank != root {
		out = make([]float32, len(src))
		copy(out, src)
	}

	w.mu.Lock()
	w.arriveLocked()
	w.slots[rank] = nil
	w.mu.Unlock()
	if rank != root {
		copy(data, out)
	}
}

// AllGather concatenates every rank's buffer in rank order; each rank
// receives the full concatenation. Buffers may have different lengths.
func (w *World) AllGather(rank int, data []float32) []float32 {
	if w.remote() {
		return w.netAllGather(rank, data)
	}
	w.mu.Lock()
	w.slots[rank] = data
	w.arriveLocked()
	slots := make([][]float32, w.N)
	copy(slots, w.slots)
	w.mu.Unlock()

	total := 0
	for _, s := range slots {
		total += len(s)
	}
	out := make([]float32, 0, total)
	for _, s := range slots {
		out = append(out, s...)
	}

	w.mu.Lock()
	w.arriveLocked()
	w.slots[rank] = nil
	w.mu.Unlock()
	return out
}

// ReduceScatterSum splits each rank's buffer into N equal chunks, sums
// chunk i across ranks, and returns chunk `rank`'s sum — the first half of
// a ring AllReduce. Buffer length must be a multiple of N and equal on all
// ranks.
func (w *World) ReduceScatterSum(rank int, data []float32) []float32 {
	if len(data)%w.N != 0 {
		panic(fmt.Sprintf("comm: reduce-scatter length %d not divisible by world size %d",
			len(data), w.N))
	}
	if w.remote() {
		return w.netReduceScatterSum(rank, data)
	}
	w.mu.Lock()
	w.slots[rank] = data
	w.arriveLocked()
	slots := make([][]float32, w.N)
	copy(slots, w.slots)
	w.mu.Unlock()

	chunk := len(data) / w.N
	out := make([]float32, chunk)
	for r := 0; r < w.N; r++ {
		src := slots[r]
		if len(src) != len(data) {
			panic(fmt.Sprintf("comm: reduce-scatter length mismatch: rank %d has %d, rank %d has %d",
				rank, len(data), r, len(src)))
		}
		for i := 0; i < chunk; i++ {
			out[i] += src[rank*chunk+i]
		}
	}

	w.mu.Lock()
	w.arriveLocked()
	w.slots[rank] = nil
	w.mu.Unlock()
	return out
}
