package comm

import "fmt"

// collectives_net.go implements the collectives over a single-rank
// Transport endpoint (one OS process per rank). Every collective reserves
// a fresh tag from the negative tag space — user p2p tags are non-negative
// — and since all ranks execute collectives in the same global order,
// per-endpoint sequence counters agree without coordination. Reductions
// apply contributions in rank order, the exact float order of the
// in-process shared-memory path, so both fabrics produce bit-identical
// results (pinned by the cross-transport conformance harness).

// nextCollTag reserves a fresh collective tag on this endpoint.
func (w *World) nextCollTag() int {
	w.collSeq++
	return -w.collSeq
}

// sendPeers ships buf to every rank but self under tag. The transport
// serializes before returning, so buf is not retained.
func (w *World) sendPeers(tag int, buf []float32) {
	for peer := 0; peer < w.N; peer++ {
		if peer == w.self {
			continue
		}
		if err := w.tr.Send(w.self, peer, &Envelope{Tag: tag, F32: buf}); err != nil {
			panic(err)
		}
	}
}

// recvPeer blocks for rank src's contribution under tag.
func (w *World) recvPeer(src, tag int) []float32 {
	env, err := w.tr.Recv(w.self, src, tag)
	if err != nil {
		panic(err)
	}
	return env.F32
}

// netAllReduceSum is a gather-to-root + broadcast: rank 0 reduces every
// contribution in rank order — the exact float order of the in-process
// path, so every rank's result is bit-identical to it — and fans the sum
// back out. 2(N-1) buffer transfers total, versus N(N-1) for the flat
// all-to-all form; for the per-epoch gradient AllReduce (the dominant TCP
// volume) that is the difference between 4× line rate and 28× at 8 ranks.
func (w *World) netAllReduceSum(rank int, data []float32) {
	w.checkSelf("AllReduceSum", rank)
	tag := w.nextCollTag()
	if rank != 0 {
		if err := w.tr.Send(rank, 0, &Envelope{Tag: tag, F32: data}); err != nil {
			panic(err)
		}
		sum := w.recvPeer(0, tag)
		if len(sum) != len(data) {
			panic(fmt.Sprintf("comm: AllReduceSum length mismatch: rank %d has %d, rank 0 reduced %d",
				rank, len(data), len(sum)))
		}
		copy(data, sum)
		return
	}
	out := reduceScratch.GetZeroed(len(data))
	for r := 0; r < w.N; r++ {
		src := data
		if r != rank {
			src = w.recvPeer(r, tag)
			if len(src) != len(data) {
				panic(fmt.Sprintf("comm: AllReduceSum length mismatch: rank %d has %d, rank %d sent %d",
					rank, len(data), r, len(src)))
			}
		}
		for i, v := range src {
			out[i] += v
		}
	}
	w.sendPeers(tag, out)
	copy(data, out)
	reduceScratch.Put(out)
}

func (w *World) netAlltoAllV(rank int, send [][]float32) [][]float32 {
	w.checkSelf("AlltoAllV", rank)
	tag := w.nextCollTag()
	// Empty buffers are sent too (zero-length frames), so every rank can
	// post exactly N-1 receives without out-of-band length negotiation.
	for peer := 0; peer < w.N; peer++ {
		if peer == rank {
			continue
		}
		if err := w.tr.Send(rank, peer, &Envelope{Tag: tag, F32: send[peer]}); err != nil {
			panic(err)
		}
	}
	recv := make([][]float32, w.N)
	if len(send[rank]) > 0 {
		recv[rank] = append([]float32(nil), send[rank]...)
	}
	for src := 0; src < w.N; src++ {
		if src == rank {
			continue
		}
		if buf := w.recvPeer(src, tag); len(buf) > 0 {
			recv[src] = buf
		}
	}
	return recv
}

func (w *World) netBroadcast(rank, root int, data []float32) {
	w.checkSelf("Broadcast", rank)
	tag := w.nextCollTag()
	if rank == root {
		w.sendPeers(tag, data)
		return
	}
	src := w.recvPeer(root, tag)
	if len(src) != len(data) {
		panic(fmt.Sprintf("comm: broadcast length mismatch: rank %d has %d, root has %d",
			rank, len(data), len(src)))
	}
	copy(data, src)
}

func (w *World) netAllGather(rank int, data []float32) []float32 {
	w.checkSelf("AllGather", rank)
	tag := w.nextCollTag()
	w.sendPeers(tag, data)
	var out []float32
	for r := 0; r < w.N; r++ {
		if r == rank {
			out = append(out, data...)
		} else {
			out = append(out, w.recvPeer(r, tag)...)
		}
	}
	return out
}

func (w *World) netReduceScatterSum(rank int, data []float32) []float32 {
	w.checkSelf("ReduceScatterSum", rank)
	chunk := len(data) / w.N
	tag := w.nextCollTag()
	for peer := 0; peer < w.N; peer++ {
		if peer == rank {
			continue
		}
		if err := w.tr.Send(rank, peer, &Envelope{Tag: tag, F32: data[peer*chunk : (peer+1)*chunk]}); err != nil {
			panic(err)
		}
	}
	out := make([]float32, chunk)
	for r := 0; r < w.N; r++ {
		src := data[rank*chunk : (rank+1)*chunk]
		if r != rank {
			src = w.recvPeer(r, tag)
			if len(src) != chunk {
				panic(fmt.Sprintf("comm: reduce-scatter chunk mismatch: rank %d expected %d, rank %d sent %d",
					rank, chunk, r, len(src)))
			}
		}
		for i, v := range src {
			out[i] += v
		}
	}
	return out
}
