package comm

import "testing"

func TestBroadcast(t *testing.T) {
	w := NewWorld(5)
	results := make([][]float32, 5)
	w.Run(func(rank int) {
		data := []float32{float32(rank), float32(rank * 2)}
		if rank == 3 {
			data = []float32{100, 200}
		}
		w.Broadcast(rank, 3, data)
		results[rank] = data
	})
	for rank, got := range results {
		if got[0] != 100 || got[1] != 200 {
			t.Fatalf("rank %d received %v, want [100 200]", rank, got)
		}
	}
}

func TestBroadcastRepeated(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(rank int) {
		for iter := 0; iter < 10; iter++ {
			root := iter % 3
			data := []float32{float32(rank + 1000)}
			if rank == root {
				data[0] = float32(iter)
			}
			w.Broadcast(rank, root, data)
			if data[0] != float32(iter) {
				t.Errorf("iter %d rank %d: got %v", iter, rank, data[0])
			}
		}
	})
}

func TestAllGatherOrderAndContent(t *testing.T) {
	w := NewWorld(4)
	results := make([][]float32, 4)
	w.Run(func(rank int) {
		// rank r contributes r+1 copies of float32(r).
		data := make([]float32, rank+1)
		for i := range data {
			data[i] = float32(rank)
		}
		results[rank] = w.AllGather(rank, data)
	})
	want := []float32{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
	for rank, got := range results {
		if len(got) != len(want) {
			t.Fatalf("rank %d: length %d, want %d", rank, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: got %v want %v", rank, got, want)
			}
		}
	}
}

func TestReduceScatterSum(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	results := make([][]float32, n)
	w.Run(func(rank int) {
		// Every rank contributes [rank, rank, ..., rank] of length 2n;
		// chunk sums are Σranks = 6 per element.
		data := make([]float32, 2*n)
		for i := range data {
			data[i] = float32(rank)
		}
		results[rank] = w.ReduceScatterSum(rank, data)
	})
	for rank, got := range results {
		if len(got) != 2 {
			t.Fatalf("rank %d: chunk length %d", rank, len(got))
		}
		for _, v := range got {
			if v != 6 {
				t.Fatalf("rank %d: got %v want 6", rank, got)
			}
		}
	}
}

func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	// The classic identity: reduce-scatter + all-gather == all-reduce.
	const n = 3
	w := NewWorld(n)
	inputs := [][]float32{
		{1, 2, 3, 4, 5, 6},
		{10, 20, 30, 40, 50, 60},
		{100, 200, 300, 400, 500, 600},
	}
	viaAR := make([][]float32, n)
	viaRS := make([][]float32, n)
	w.Run(func(rank int) {
		a := append([]float32(nil), inputs[rank]...)
		w.AllReduceSum(rank, a)
		viaAR[rank] = a

		b := append([]float32(nil), inputs[rank]...)
		chunk := w.ReduceScatterSum(rank, b)
		viaRS[rank] = w.AllGather(rank, chunk)
	})
	for rank := 0; rank < n; rank++ {
		for i := range viaAR[rank] {
			if viaAR[rank][i] != viaRS[rank][i] {
				t.Fatalf("rank %d elem %d: AR %v vs RS+AG %v",
					rank, i, viaAR[rank][i], viaRS[rank][i])
			}
		}
	}
}
