package comm

import (
	"time"

	"distgnn/internal/graph"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// ComputeModel converts per-rank work counters into simulated per-socket
// compute time. The scaling experiments (Fig. 5/6) model each partition as
// its own full CPU socket; running 64–128 ranks as goroutines on one
// machine would serialize them and destroy the scaling shape, so compute
// time is accounted from work counters at calibrated single-socket rates
// instead, while the data flow itself is executed for real.
type ComputeModel struct {
	// AggElemsPerSec: aggregation-primitive throughput in
	// (edges × feature-width) element-updates per second.
	AggElemsPerSec float64
	// MACsPerSec: dense-layer throughput in multiply-accumulates per second.
	MACsPerSec float64
}

// DefaultComputeModel approximates one Xeon 8280 socket (the paper's
// single-socket machine): ~2.4e9 aggregation element-updates/s (memory-BW
// bound) and ~1e11 MAC/s for the small dense layers.
func DefaultComputeModel() ComputeModel {
	return ComputeModel{AggElemsPerSec: 2.4e9, MACsPerSec: 1e11}
}

// AggSeconds returns simulated seconds for aggregating elems edge-feature
// elements.
func (c ComputeModel) AggSeconds(elems int64) float64 {
	return float64(elems) / c.AggElemsPerSec
}

// MLPSeconds returns simulated seconds for macs multiply-accumulates.
func (c ComputeModel) MLPSeconds(macs int64) float64 {
	return float64(macs) / c.MACsPerSec
}

// CalibrateComputeModel measures this machine's actual aggregation and
// matmul throughput with short micro-benchmarks, so simulated times track
// the host the reproduction runs on. Takes a few hundred milliseconds.
func CalibrateComputeModel() ComputeModel {
	cm := ComputeModel{}

	// Aggregation: random graph, optimized kernel.
	const n, deg, d = 20000, 16, 64
	edges := make([]graph.Edge, n*deg)
	state := uint64(0x9E3779B97F4A7C15)
	next := func(mod int) int32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int32(state % uint64(mod))
	}
	for i := range edges {
		edges[i] = graph.Edge{Src: next(n), Dst: next(n)}
	}
	g := graph.MustCSR(n, edges)
	x := tensor.New(n, d)
	for i := range x.Data {
		x.Data[i] = float32(i%97) * 0.01
	}
	out := tensor.New(n, d)
	plan := spmm.NewPlan(g, spmm.DefaultOptions(2))
	args := &spmm.Args{G: g, FV: x, FO: out, Op: spmm.OpCopyLHS, Red: spmm.ReduceSum}
	if err := plan.Run(args); err != nil { // warm up
		panic(err)
	}
	const aggIters = 5
	start := time.Now()
	for i := 0; i < aggIters; i++ {
		if err := plan.Run(args); err != nil {
			panic(err)
		}
	}
	aggSec := time.Since(start).Seconds() / aggIters
	cm.AggElemsPerSec = float64(g.NumEdges) * d / aggSec

	// Dense: 256³ matmul.
	a := tensor.New(256, 256)
	b := tensor.New(256, 256)
	c := tensor.New(256, 256)
	for i := range a.Data {
		a.Data[i] = float32(i%31) * 0.1
		b.Data[i] = float32(i%29) * 0.1
	}
	tensor.MatMul(c, a, b) // warm up
	const mmIters = 10
	start = time.Now()
	for i := 0; i < mmIters; i++ {
		tensor.MatMul(c, a, b)
	}
	mmSec := time.Since(start).Seconds() / mmIters
	cm.MACsPerSec = float64(256*256*256) / mmSec
	return cm
}
