package comm

import "testing"

func TestDefaultComputeModelRates(t *testing.T) {
	cm := DefaultComputeModel()
	if cm.AggElemsPerSec <= 0 || cm.MACsPerSec <= 0 {
		t.Fatal("default rates must be positive")
	}
	if cm.AggSeconds(0) != 0 || cm.MLPSeconds(0) != 0 {
		t.Fatal("zero work must cost zero time")
	}
	if cm.AggSeconds(2e9) <= cm.AggSeconds(1e9) {
		t.Fatal("more work must cost more time")
	}
}

func TestComputeModelLinear(t *testing.T) {
	cm := ComputeModel{AggElemsPerSec: 1e9, MACsPerSec: 1e10}
	if got := cm.AggSeconds(1e9); got != 1 {
		t.Fatalf("AggSeconds(1e9) = %v, want 1", got)
	}
	if got := cm.MLPSeconds(1e10); got != 1 {
		t.Fatalf("MLPSeconds(1e10) = %v, want 1", got)
	}
}

func TestCalibrateComputeModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration takes a few hundred milliseconds")
	}
	if raceEnabled {
		t.Skip("race instrumentation slows kernels past the plausibility bounds")
	}
	cm := CalibrateComputeModel()
	// Any functioning machine aggregates between 10M and 1T element
	// updates per second and computes between 100M and 100T MAC/s.
	if cm.AggElemsPerSec < 1e7 || cm.AggElemsPerSec > 1e12 {
		t.Fatalf("implausible aggregation throughput %v", cm.AggElemsPerSec)
	}
	if cm.MACsPerSec < 1e8 || cm.MACsPerSec > 1e14 {
		t.Fatalf("implausible MAC throughput %v", cm.MACsPerSec)
	}
}
