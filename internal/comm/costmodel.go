package comm

import (
	"sync"
	"time"
)

// CostModel is an α–β (latency–bandwidth) account of what the in-process
// message traffic would cost on a real cluster fabric. The paper's cluster
// is Xeon 9242 sockets on Mellanox HDR (200 Gb/s) with a DragonFly
// topology; the defaults below approximate one socket's share of that
// fabric. All times are simulated seconds, accumulated per rank.
//
// The model serves the scaling experiments (Fig. 5/6): local compute is
// measured for real, remote aggregation cost = pre/post processing
// (gather/scatter at memory bandwidth) + network transfer (α + bytes/β),
// and delayed algorithms (cd-r) hide the network term behind compute,
// paying only pre/post processing — exactly the behaviour §6.3 reports.
type CostModel struct {
	// NetLatency α: per-message software+fabric latency (seconds).
	NetLatency float64
	// NetBandwidth β: per-socket network bandwidth (bytes/second).
	NetBandwidth float64
	// MemBandwidth: per-socket memory bandwidth for gather/scatter
	// pre/post processing (bytes/second).
	MemBandwidth float64

	mu    sync.Mutex
	simNs []int64 // accumulated simulated time per rank, nanoseconds
	// injNs[rank] is when the rank's network injection port frees up:
	// nonblocking transfers posted back to back serialize on it.
	injNs []int64
}

// DefaultCostModel approximates one Xeon socket's effective share of an HDR
// fabric under collective traffic: 5 µs message latency (software + switch
// hops), 2.5 GB/s effective per-socket AlltoAll bandwidth (HDR's 25 GB/s
// line rate divided across a dual-socket node and collective contention),
// and 80 GB/s memory bandwidth for gather/scatter staging.
func DefaultCostModel(numRanks int) *CostModel {
	return &CostModel{
		NetLatency:   5e-6,
		NetBandwidth: 2.5e9,
		MemBandwidth: 80e9,
		simNs:        make([]int64, numRanks),
		injNs:        make([]int64, numRanks),
	}
}

// ChargeGatherScatter accounts a local gather or scatter-reduce of the
// given byte volume (pre/post processing of Alg. 4 lines 10, 14, 15, 20).
func (c *CostModel) ChargeGatherScatter(rank int, bytes int) float64 {
	t := float64(bytes) / c.MemBandwidth
	c.add(rank, t)
	return t
}

// ChargeAlltoAll accounts one AlltoAll step from this rank's perspective:
// one message per peer with data, plus serialization of the send volume
// on this rank's injection bandwidth.
func (c *CostModel) ChargeAlltoAll(rank int, bytesPerPeer []int) float64 {
	msgs := 0
	total := 0
	for _, b := range bytesPerPeer {
		if b > 0 {
			msgs++
			total += b
		}
	}
	t := float64(msgs)*c.NetLatency + float64(total)/c.NetBandwidth
	c.add(rank, t)
	return t
}

// ChargeAllReduce accounts a ring AllReduce of the given byte volume over
// k ranks: 2(k-1) steps, each moving bytes/k.
func (c *CostModel) ChargeAllReduce(rank int, bytes, k int) float64 {
	if k <= 1 {
		return 0
	}
	steps := 2 * (k - 1)
	t := float64(steps)*c.NetLatency + float64(steps)*float64(bytes)/float64(k)/c.NetBandwidth
	c.add(rank, t)
	return t
}

func (c *CostModel) add(rank int, seconds float64) {
	c.mu.Lock()
	c.ensure(rank)
	c.simNs[rank] += int64(seconds * 1e9)
	c.mu.Unlock()
}

// ensure grows the per-rank ledgers to cover rank. Caller holds c.mu.
func (c *CostModel) ensure(rank int) {
	for len(c.simNs) <= rank {
		c.simNs = append(c.simNs, 0)
	}
	for len(c.injNs) <= rank {
		c.injNs = append(c.injNs, 0)
	}
}

// ChargeCompute advances a rank's simulated clock by compute seconds — the
// time nonblocking transfers posted earlier can hide behind. The overlapped
// cd-rs trainer charges each layer's aggregation and dense work here so the
// clock races the in-flight transfers.
func (c *CostModel) ChargeCompute(rank int, seconds float64) {
	c.add(rank, seconds)
}

// PostXfer books a nonblocking transfer of the given wire volume posted by
// rank at its current simulated clock. Transfers serialize on the rank's
// injection port; each costs α + bytes/β on the fabric. The poster's clock
// does NOT advance — the transfer proceeds concurrently with whatever
// compute is charged next. Returns the simulated completion time and the
// full transfer duration, both in nanoseconds.
func (c *CostModel) PostXfer(rank, bytes int) (readyNs, durNs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure(rank)
	durNs = int64((c.NetLatency + float64(bytes)/c.NetBandwidth) * 1e9)
	start := c.simNs[rank]
	if c.injNs[rank] > start {
		start = c.injNs[rank]
	}
	readyNs = start + durNs
	c.injNs[rank] = readyNs
	return readyNs, durNs
}

// clockNs reads a rank's current simulated clock.
func (c *CostModel) clockNs(rank int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure(rank)
	return c.simNs[rank]
}

// WaitXfer charges rank only the un-hidden remainder of a transfer that
// completes at readyNs: if the rank's compute already advanced its clock
// past the completion time the wait is free, otherwise the clock jumps to
// readyNs and the exposed seconds are returned — the §6.3 accounting where
// overlapped communication costs only what compute failed to cover.
func (c *CostModel) WaitXfer(rank int, readyNs int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure(rank)
	exposedNs := readyNs - c.simNs[rank]
	if exposedNs <= 0 {
		return 0
	}
	c.simNs[rank] = readyNs
	return float64(exposedNs) / 1e9
}

// SyncClocks aligns every rank's clock to the slowest one — the simulated
// counterpart of a bulk-synchronous barrier (the per-epoch gradient
// AllReduce). Without it, per-rank clocks would drift apart without bound
// as partitions with unequal work accumulate unequal compute, and the
// cross-rank ready-vs-clock comparison in WaitXfer would charge phantom
// exposure for skew the epoch's max-across-ranks timing already covers.
func (c *CostModel) SyncClocks() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m int64
	for _, v := range c.simNs {
		if v > m {
			m = v
		}
	}
	for i := range c.simNs {
		c.simNs[i] = m
	}
}

// WaitXferForced charges the full transfer duration regardless of how much
// compute elapsed since the post — overlap artificially forced synchronous.
// The conformance harness uses it to show cd-rs with hiding disabled costs
// what cd-r does while computing bit-identical parameters.
func (c *CostModel) WaitXferForced(rank int, durNs int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure(rank)
	c.simNs[rank] += durNs
	return float64(durNs) / 1e9
}

// SimTime returns the simulated time accumulated for a rank.
func (c *CostModel) SimTime(rank int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.simNs[rank])
}

// MaxSimTime returns the maximum accumulated simulated time across ranks —
// the critical-path communication cost.
func (c *CostModel) MaxSimTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m int64
	for _, v := range c.simNs {
		if v > m {
			m = v
		}
	}
	return time.Duration(m)
}

// Reset zeroes all per-rank accounts, including pending injection ports.
func (c *CostModel) Reset() {
	c.mu.Lock()
	for i := range c.simNs {
		c.simNs[i] = 0
	}
	for i := range c.injNs {
		c.injNs[i] = 0
	}
	c.mu.Unlock()
}
