package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"distgnn/internal/quant"
)

// frame.go is the TCP transport's wire format: a fixed 44-byte
// length-prefixed header followed by the payload. Everything is
// little-endian. The 16-bit quant formats are the literal wire encoding —
// a BF16/FP16 payload crosses the network as the packed words quant.Pack
// produced, half the bytes of fp32.
//
//	offset  size  field
//	0       4     magic "DGW1"
//	4       1     kind (data, hello, table, barrier, release)
//	5       1     precision (quant.FP32 / BF16 / FP16)
//	6       2     reserved (zero)
//	8       4     src rank
//	12      4     dst rank
//	16      8     tag (two's complement int64)
//	24      8     readyNs — simulated fabric-completion time
//	32      8     durNs — full simulated transfer duration
//	40      4     payload length in bytes
//	44      …     payload
const (
	frameMagic      = "DGW1"
	frameHeaderSize = 44
)

// maxFramePayload bounds one frame's payload (1 GiB — a 268M-parameter
// gradient buffer, far past any model this repo trains) so a corrupt or
// hostile length prefix fails fast instead of allocating unbounded memory.
// Oversized sends error at the sender (tcp.go). A variable so the codec
// tests can exercise the exact boundary without gigabyte allocations;
// production code never writes it.
var maxFramePayload uint32 = 1 << 30

// Frame kinds. kindData carries an Envelope; the rest are the transport's
// control plane (rendezvous and barrier).
const (
	kindData    byte = 1
	kindHello   byte = 2 // registration: src = rank, payload = listen address
	kindTable   byte = 3 // rendezvous reply: payload = newline-joined rank addresses
	kindBarrier byte = 4 // barrier arrival at rank 0: tag = generation
	kindRelease byte = 5 // barrier release from rank 0: tag = generation
)

// frameHeader is the decoded fixed header.
type frameHeader struct {
	Kind       byte
	Prec       quant.Precision
	Src, Dst   uint32
	Tag        int64
	ReadyNs    int64
	DurNs      int64
	PayloadLen uint32
}

// putFrameHeader encodes h into b (len ≥ frameHeaderSize).
func putFrameHeader(b []byte, h frameHeader) {
	copy(b[0:4], frameMagic)
	b[4] = h.Kind
	b[5] = byte(h.Prec)
	b[6], b[7] = 0, 0
	binary.LittleEndian.PutUint32(b[8:12], h.Src)
	binary.LittleEndian.PutUint32(b[12:16], h.Dst)
	binary.LittleEndian.PutUint64(b[16:24], uint64(h.Tag))
	binary.LittleEndian.PutUint64(b[24:32], uint64(h.ReadyNs))
	binary.LittleEndian.PutUint64(b[32:40], uint64(h.DurNs))
	binary.LittleEndian.PutUint32(b[40:44], h.PayloadLen)
}

// parseFrameHeader decodes and validates the fixed header.
func parseFrameHeader(b []byte) (frameHeader, error) {
	var h frameHeader
	if len(b) < frameHeaderSize {
		return h, fmt.Errorf("comm: frame header truncated: %d bytes", len(b))
	}
	if string(b[0:4]) != frameMagic {
		return h, fmt.Errorf("comm: bad frame magic %q", b[0:4])
	}
	h.Kind = b[4]
	h.Prec = quant.Precision(b[5])
	if h.Kind < kindData || h.Kind > kindRelease {
		return h, fmt.Errorf("comm: unknown frame kind %d", h.Kind)
	}
	if b[6] != 0 || b[7] != 0 {
		return h, fmt.Errorf("comm: nonzero reserved frame bytes %x %x", b[6], b[7])
	}
	switch h.Prec {
	case quant.FP32, quant.BF16, quant.FP16:
	default:
		return h, fmt.Errorf("comm: unknown wire precision %d", h.Prec)
	}
	h.Src = binary.LittleEndian.Uint32(b[8:12])
	h.Dst = binary.LittleEndian.Uint32(b[12:16])
	h.Tag = int64(binary.LittleEndian.Uint64(b[16:24]))
	h.ReadyNs = int64(binary.LittleEndian.Uint64(b[24:32]))
	h.DurNs = int64(binary.LittleEndian.Uint64(b[32:40]))
	h.PayloadLen = binary.LittleEndian.Uint32(b[40:44])
	if h.PayloadLen > maxFramePayload {
		return h, fmt.Errorf("comm: frame payload %d exceeds limit %d", h.PayloadLen, maxFramePayload)
	}
	elem := 4
	if h.Prec != quant.FP32 {
		elem = 2
	}
	if h.Kind == kindData && int(h.PayloadLen)%elem != 0 {
		return h, fmt.Errorf("comm: %v payload length %d not a multiple of %d",
			h.Prec, h.PayloadLen, elem)
	}
	return h, nil
}

// appendDataFrame encodes one Envelope from src to dst as a complete data
// frame appended to buf — header plus payload, ready for a single Write.
func appendDataFrame(buf []byte, src, dst int, env *Envelope) []byte {
	var plen int
	if env.Prec == quant.FP32 {
		plen = 4 * len(env.F32)
	} else {
		plen = 2 * len(env.U16)
	}
	h := frameHeader{
		Kind: kindData, Prec: env.Prec,
		Src: uint32(src), Dst: uint32(dst), Tag: int64(env.Tag),
		ReadyNs: env.ReadyNs, DurNs: env.DurNs,
		PayloadLen: uint32(plen),
	}
	off := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize+plen)...)
	putFrameHeader(buf[off:], h)
	p := buf[off+frameHeaderSize:]
	if env.Prec == quant.FP32 {
		for i, v := range env.F32 {
			binary.LittleEndian.PutUint32(p[4*i:], math.Float32bits(v))
		}
	} else {
		for i, v := range env.U16 {
			binary.LittleEndian.PutUint16(p[2*i:], v)
		}
	}
	return buf
}

// appendControlFrame encodes a control frame (hello/table/barrier/release)
// with a raw byte payload.
func appendControlFrame(buf []byte, kind byte, src, dst int, tag int64, payload []byte) []byte {
	h := frameHeader{
		Kind: kind, Prec: quant.FP32,
		Src: uint32(src), Dst: uint32(dst), Tag: tag,
		PayloadLen: uint32(len(payload)),
	}
	off := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize)...)
	putFrameHeader(buf[off:], h)
	return append(buf, payload...)
}

// envelopeFromFrame decodes a data frame's payload into an Envelope. The
// header has already been validated by parseFrameHeader.
func envelopeFromFrame(h frameHeader, payload []byte) *Envelope {
	env := &Envelope{Tag: int(h.Tag), Prec: h.Prec, ReadyNs: h.ReadyNs, DurNs: h.DurNs}
	if h.Prec == quant.FP32 {
		if len(payload) > 0 {
			env.F32 = make([]float32, len(payload)/4)
			for i := range env.F32 {
				env.F32[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
			}
		}
	} else if len(payload) > 0 {
		env.U16 = make([]uint16, len(payload)/2)
		for i := range env.U16 {
			env.U16[i] = binary.LittleEndian.Uint16(payload[2*i:])
		}
	}
	return env
}

// readFrame reads one complete frame — header then payload — from r.
func readFrame(r io.Reader) (frameHeader, []byte, error) {
	var hb [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return frameHeader{}, nil, err
	}
	h, err := parseFrameHeader(hb[:])
	if err != nil {
		return h, nil, err
	}
	if h.PayloadLen == 0 {
		return h, nil, nil
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return h, nil, fmt.Errorf("comm: frame payload truncated: %w", err)
	}
	return h, payload, nil
}
