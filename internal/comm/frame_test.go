package comm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/quant"
)

// TestFrameHeaderGolden pins the exact wire bytes of the frame header: a
// change here is a wire-format break that strands every peer on the old
// layout, so it must be deliberate (and bump the magic).
func TestFrameHeaderGolden(t *testing.T) {
	env := &Envelope{
		Tag: 0x0102030405, Prec: quant.BF16,
		U16:     []uint16{0xBEEF, 0x1234},
		ReadyNs: 0x1122334455667788, DurNs: -2,
	}
	buf := appendDataFrame(nil, 3, 7, env)
	want := []byte{
		'D', 'G', 'W', '1', // magic
		1,    // kind = data
		1,    // precision = bf16
		0, 0, // reserved
		3, 0, 0, 0, // src rank, LE
		7, 0, 0, 0, // dst rank, LE
		0x05, 0x04, 0x03, 0x02, 0x01, 0, 0, 0, // tag, LE int64
		0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // readyNs
		0xFE, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, // durNs = -2, two's complement
		4, 0, 0, 0, // payload length: 2 × uint16
		0xEF, 0xBE, // payload word 0, LE
		0x34, 0x12, // payload word 1, LE
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("frame bytes changed:\n got %x\nwant %x", buf, want)
	}
}

func TestFrameHeaderRejectsCorruption(t *testing.T) {
	good := appendDataFrame(nil, 0, 1, &Envelope{Tag: 1, Prec: quant.FP32, F32: []float32{1}})
	for name, mutate := range map[string]func([]byte){
		"magic":     func(b []byte) { b[0] = 'X' },
		"kind":      func(b []byte) { b[4] = 99 },
		"precision": func(b []byte) { b[5] = 77 },
		"reserved":  func(b []byte) { b[6] = '0' }, // v1 reserves these as zero

		"length":      func(b []byte) { b[40], b[41], b[42], b[43] = 0xFF, 0xFF, 0xFF, 0x7F },
		"granularity": func(b []byte) { b[40] = 3 }, // fp32 payload not a multiple of 4
	} {
		b := append([]byte(nil), good...)
		mutate(b)
		if _, err := parseFrameHeader(b); err == nil {
			t.Errorf("%s corruption must fail header parse", name)
		}
	}
	if _, err := parseFrameHeader(good[:10]); err == nil {
		t.Error("truncated header must fail parse")
	}
}

// TestFrameRoundTripProperty: encode∘decode is the identity for random
// envelopes across all precisions — including zero-length payloads and a
// payload at exactly the frame size limit.
func TestFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(env *Envelope, src, dst int) {
		t.Helper()
		buf := appendDataFrame(nil, src, dst, env)
		h, payload, err := readFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if int(h.Src) != src || int(h.Dst) != dst || h.Kind != kindData {
			t.Fatalf("routing fields: src %d dst %d kind %d", h.Src, h.Dst, h.Kind)
		}
		got := envelopeFromFrame(h, payload)
		if got.Tag != env.Tag || got.Prec != env.Prec ||
			got.ReadyNs != env.ReadyNs || got.DurNs != env.DurNs {
			t.Fatalf("metadata: got %+v want %+v", got, env)
		}
		if len(got.F32) != len(env.F32) || len(got.U16) != len(env.U16) {
			t.Fatalf("payload length: got %d/%d want %d/%d",
				len(got.F32), len(got.U16), len(env.F32), len(env.U16))
		}
		for i := range env.F32 {
			if math.Float32bits(got.F32[i]) != math.Float32bits(env.F32[i]) {
				t.Fatalf("f32[%d]: %x != %x", i, math.Float32bits(got.F32[i]), math.Float32bits(env.F32[i]))
			}
		}
		for i := range env.U16 {
			if got.U16[i] != env.U16[i] {
				t.Fatalf("u16[%d]: %x != %x", i, got.U16[i], env.U16[i])
			}
		}
	}

	for iter := 0; iter < 200; iter++ {
		env := &Envelope{
			Tag:     int(int32(rng.Uint32())), // mixed-sign tags
			ReadyNs: rng.Int63() - rng.Int63(),
			DurNs:   rng.Int63() - rng.Int63(),
		}
		n := rng.Intn(300)
		switch rng.Intn(3) {
		case 0:
			env.Prec = quant.FP32
			if n > 0 {
				env.F32 = make([]float32, n)
				for i := range env.F32 {
					// Raw bit patterns: NaNs, infs, denormals must all survive.
					env.F32[i] = math.Float32frombits(rng.Uint32())
				}
			}
		case 1:
			env.Prec = quant.BF16
			if n > 0 {
				env.U16 = make([]uint16, n)
				for i := range env.U16 {
					env.U16[i] = uint16(rng.Uint32())
				}
			}
		default:
			env.Prec = quant.FP16
			if n > 0 {
				env.U16 = make([]uint16, n)
				for i := range env.U16 {
					env.U16[i] = uint16(rng.Uint32())
				}
			}
		}
		check(env, rng.Intn(1024), rng.Intn(1024))
	}

	// Zero-length frames (empty AlltoAllV rows).
	check(&Envelope{Tag: -5, Prec: quant.FP32}, 0, 1)
	check(&Envelope{Tag: 9, Prec: quant.FP16}, 2, 0)

	// The exact size limit, exercised with the limit lowered so the
	// boundary cases don't need gigabyte allocations.
	defer func(orig uint32) { maxFramePayload = orig }(maxFramePayload)
	maxFramePayload = 1 << 16
	maxF32 := make([]float32, maxFramePayload/4)
	for i := range maxF32 {
		maxF32[i] = float32(i)
	}
	check(&Envelope{Tag: 1, Prec: quant.FP32, F32: maxF32}, 0, 1)

	// One element over the limit must be rejected at the header.
	over := appendDataFrame(nil, 0, 1, &Envelope{Tag: 1, Prec: quant.FP32,
		F32: make([]float32, maxFramePayload/4+1)})
	if _, _, err := readFrame(bytes.NewReader(over)); err == nil {
		t.Fatal("oversized frame must fail to decode")
	}
}

// FuzzFrameDecode hardens the decoder against arbitrary bytes: it must
// never panic, and whatever it accepts must re-encode to the same frame.
func FuzzFrameDecode(f *testing.F) {
	f.Add(appendDataFrame(nil, 0, 1, &Envelope{Tag: 3, Prec: quant.FP32, F32: []float32{1, -2}}))
	f.Add(appendDataFrame(nil, 1, 0, &Envelope{Tag: -9, Prec: quant.FP16, U16: []uint16{77}}))
	f.Add(appendControlFrame(nil, kindHello, 2, 0, 0, []byte("127.0.0.1:999")))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := readFrame(bytes.NewReader(b))
		if err != nil || h.Kind != kindData {
			return
		}
		env := envelopeFromFrame(h, payload)
		re := appendDataFrame(nil, int(h.Src), int(h.Dst), env)
		if !bytes.Equal(re, b[:len(re)]) {
			t.Fatalf("accepted frame does not re-encode identically")
		}
	})
}
