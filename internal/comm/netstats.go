package comm

import "sync/atomic"

// netstats.go is the transport-level byte accounting the observability
// plane reads: both fabrics count messages and payload bytes per
// direction, with sent bytes further attributed to the tag plane they
// rode — collectives (negative tags), training p2p (small non-negative
// tags), or the serving request/reply range (≥ ServeTagBase). Payload
// bytes (4·len(F32) + 2·len(U16)) are counted rather than wire bytes so
// the two fabrics report comparable numbers; TCP framing overhead is a
// fixed ~32 bytes per message on top.

// TransportStats is a snapshot of one endpoint's traffic counters.
type TransportStats struct {
	SentMsgs  int64 `json:"sent_msgs"`
	RecvMsgs  int64 `json:"recv_msgs"`
	SentBytes int64 `json:"sent_bytes"`
	RecvBytes int64 `json:"recv_bytes"`
	// Sent payload bytes attributed by tag plane.
	CollectiveBytes int64 `json:"collective_bytes"`
	P2PBytes        int64 `json:"p2p_bytes"`
	ServeBytes      int64 `json:"serve_bytes"`
}

// NetStatsSource is implemented by transports that count traffic; both
// in-tree fabrics do. Callers type-assert because Transport predates the
// counters and third-party fabrics may not carry them.
type NetStatsSource interface {
	NetStats() TransportStats
}

// netCounters is the shared atomic counter block.
type netCounters struct {
	sentMsgs, recvMsgs   atomic.Int64
	sentBytes, recvBytes atomic.Int64
	collB, p2pB, serveB  atomic.Int64
}

// envelopePayloadBytes is the fabric-independent payload size.
func envelopePayloadBytes(env *Envelope) int64 {
	return int64(4*len(env.F32) + 2*len(env.U16))
}

func (c *netCounters) countSend(tag int, n int64) {
	c.sentMsgs.Add(1)
	c.sentBytes.Add(n)
	switch {
	case tag < 0:
		c.collB.Add(n)
	case tag >= ServeTagBase:
		c.serveB.Add(n)
	default:
		c.p2pB.Add(n)
	}
}

func (c *netCounters) countRecv(n int64) {
	c.recvMsgs.Add(1)
	c.recvBytes.Add(n)
}

func (c *netCounters) stats() TransportStats {
	return TransportStats{
		SentMsgs:        c.sentMsgs.Load(),
		RecvMsgs:        c.recvMsgs.Load(),
		SentBytes:       c.sentBytes.Load(),
		RecvBytes:       c.recvBytes.Load(),
		CollectiveBytes: c.collB.Load(),
		P2PBytes:        c.p2pB.Load(),
		ServeBytes:      c.serveB.Load(),
	}
}
