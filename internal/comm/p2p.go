package comm

import (
	"errors"
	"fmt"

	"distgnn/internal/quant"
)

// p2p.go is the nonblocking point-to-point layer: MPI-style Isend/Irecv
// returning Request handles with Test/Wait/WaitAll semantics over the
// world's Transport — the in-process mailbox or the TCP fabric, identical
// behavior on both. Payloads are copied (and, for 16-bit wire formats,
// packed) at post time, so a sender's buffer is immediately reusable and
// the transfer proceeds "in the background"; the α–β cost of the transfer
// accrues on the simulated clock concurrently with whatever compute the
// poster charges, and only the un-hidden remainder is charged when the
// receiver Waits — the accounting that lets cd-rs hide network time behind
// compute (§6.3).

// Defined misuse errors: the Request lifecycle is post → (Test)* → Wait,
// exactly once each side.
var (
	// ErrNotPosted is returned by Test/Wait on a zero-value Request that was
	// never produced by Isend/Irecv.
	ErrNotPosted = errors.New("comm: request was never posted")
	// ErrAlreadyWaited is returned by a second Wait (or a Test after Wait) on
	// a completed request.
	ErrAlreadyWaited = errors.New("comm: request already completed by Wait")
)

// Request is a handle on one nonblocking operation. The zero value is not
// posted; only Isend/Irecv produce live requests.
type Request struct {
	w       *World
	recv    bool
	rank    int // the rank charged for exposed wait time (receiver side)
	key     msgKey
	done    bool
	data    []float32 // completed receive payload
	exposed float64   // un-hidden network seconds charged at Wait
	durNs   int64     // send side: full transfer duration
	err     error     // send side: transport failure, surfaced at Wait
}

// ConfigureAsync attaches the α–β cost model used to account nonblocking
// transfers (nil disables accounting) and sets the overlap mode: with
// forceSync, every Wait charges the full α+bytes/β network term as if the
// transfer ran synchronously — the conformance knob that turns cd-rs into
// cd-r's cost shape without changing a single arithmetic operation.
func (w *World) ConfigureAsync(cm *CostModel, forceSync bool) {
	w.asyncCost = cm
	w.forceSync = forceSync
}

func (w *World) checkRank(name string, r int) {
	if r < 0 || r >= w.N {
		panic(fmt.Sprintf("comm: %s rank %d outside world of %d", name, r, w.N))
	}
}

// Isend posts a nonblocking send of data from rank `from` to rank `to`.
// The payload is copied at post time, so the caller's buffer is immediately
// reusable; the matching Irecv observes the values as posted. The returned
// request completes trivially (buffered-send semantics) — Wait it to keep
// the post/wait pairing uniform.
func (w *World) Isend(from, to, tag int, data []float32) *Request {
	return w.post(from, to, tag, data, quant.FP32)
}

// IsendPacked is Isend with the payload packed into the 16-bit wire format
// at post time — compression rides the request path, off the critical path
// of the compute the transfer overlaps, and on the TCP fabric the packed
// words are the literal bytes on the wire. The receiver's Wait unpacks, so
// it observes exactly RoundSlice(data). FP32 falls back to Isend.
func (w *World) IsendPacked(from, to, tag int, data []float32, p quant.Precision) *Request {
	return w.post(from, to, tag, data, p)
}

func (w *World) post(from, to, tag int, data []float32, p quant.Precision) *Request {
	w.checkRank("Isend source", from)
	w.checkRank("Isend destination", to)
	w.checkSelf("Isend", from)
	env := &Envelope{Tag: tag, Prec: p}
	if p == quant.FP32 {
		if w.remote() && to != w.self {
			// A remote peer's Send serializes the buffer before returning
			// (the Transport contract), so the caller's slice needs no
			// defensive copy — the wire encode is the only copy.
			env.F32 = data
		} else {
			// In-process (and remote self-sends) enqueue the envelope
			// as-is; copy so the sender's buffer is immediately reusable.
			env.F32 = append([]float32(nil), data...)
		}
	} else {
		env.U16 = p.Pack(make([]uint16, 0, len(data)), data)
	}
	if w.asyncCost != nil {
		env.ReadyNs, env.DurNs = w.asyncCost.PostXfer(from, len(data)*p.Bytes())
	}
	err := w.tr.Send(from, to, env)
	return &Request{w: w, rank: from, key: msgKey{src: from, dst: to, tag: tag},
		durNs: env.DurNs, err: err}
}

// Irecv posts a nonblocking receive on `rank` for the next message rank
// `from` sends with this tag. The payload is delivered by Wait.
func (w *World) Irecv(rank, from, tag int) *Request {
	w.checkRank("Irecv rank", rank)
	w.checkRank("Irecv source", from)
	w.checkSelf("Irecv", rank)
	return &Request{w: w, recv: true, rank: rank,
		key: msgKey{src: from, dst: rank, tag: tag}}
}

// Test reports whether Wait would complete without blocking. Sends are
// always complete (the payload was copied at post time); a receive is
// complete once the matching message has been posted. Test never consumes
// the message.
func (r *Request) Test() (bool, error) {
	if r.w == nil {
		return false, ErrNotPosted
	}
	if r.done {
		return false, ErrAlreadyWaited
	}
	if !r.recv {
		return true, nil
	}
	_, ok, err := r.w.tr.Poll(r.key.dst, r.key.src, r.key.tag)
	return ok, err
}

// TestHidden reports whether Wait would complete immediately AND charge
// zero exposed network time at this rank's current simulated clock — i.e.
// the transfer is both physically delivered and fully hidden behind the
// compute charged so far. Layer-boundary drains use it so the set of
// messages reeled in early is a function of simulated time only, keeping
// runs deterministic regardless of goroutine scheduling. Always false
// under forceSync, where nothing counts as hidden.
func (r *Request) TestHidden() (bool, error) {
	if r.w == nil {
		return false, ErrNotPosted
	}
	if r.done {
		return false, ErrAlreadyWaited
	}
	if !r.recv {
		return true, nil
	}
	env, ok, err := r.w.tr.Poll(r.key.dst, r.key.src, r.key.tag)
	if err != nil || !ok {
		return false, err
	}
	cm := r.w.asyncCost
	if cm == nil {
		return true, nil
	}
	if r.w.forceSync {
		return false, nil
	}
	return cm.clockNs(r.rank) >= env.ReadyNs, nil
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends). For receives with a cost model attached, Wait
// charges this rank only the part of the α+bytes/β transfer that the
// rank's compute since the post did not hide — or the full term under
// forceSync. A request may be waited exactly once. On a transport with
// deadlines (TCP), a receive nothing arrives for fails with an error
// wrapping ErrTimeout instead of blocking forever.
func (r *Request) Wait() ([]float32, error) {
	if r.w == nil {
		return nil, ErrNotPosted
	}
	if r.done {
		return nil, ErrAlreadyWaited
	}
	r.done = true
	if !r.recv {
		return nil, r.err
	}
	env, err := r.w.tr.Recv(r.key.dst, r.key.src, r.key.tag)
	if err != nil {
		return nil, err
	}

	if env.Prec == quant.FP32 {
		r.data = env.F32
	} else {
		r.data = env.Prec.Unpack(make([]float32, 0, len(env.U16)), env.U16)
	}
	if cm := r.w.asyncCost; cm != nil {
		if r.w.forceSync {
			r.exposed = cm.WaitXferForced(r.rank, env.DurNs)
		} else {
			r.exposed = cm.WaitXfer(r.rank, env.ReadyNs)
		}
	}
	return r.data, nil
}

// Exposed returns the un-hidden network seconds charged when this request
// was waited (0 before Wait, for sends, or without a cost model).
func (r *Request) Exposed() float64 { return r.exposed }

// WaitAll waits every request in order and returns the first error
// encountered; it still drains the remaining requests so no message is
// left stranded in the mailbox.
func (w *World) WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
