package comm

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"distgnn/internal/quant"
)

func TestIsendIrecvDeliversPayload(t *testing.T) {
	w := NewWorld(2)
	payload := []float32{1, 2, 3.5, -4}
	send := w.Isend(0, 1, 7, payload)
	// Buffered-send semantics: the caller's slice is reusable immediately.
	payload[0] = 99

	recv := w.Irecv(1, 0, 7)
	if ok, err := recv.Test(); err != nil || !ok {
		t.Fatalf("posted message must test complete: %v %v", ok, err)
	}
	got, err := recv.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 3.5, -4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := send.Wait(); err != nil {
		t.Fatalf("send Wait: %v", err)
	}
}

func TestIrecvTestReportsPending(t *testing.T) {
	w := NewWorld(2)
	recv := w.Irecv(1, 0, 3)
	if ok, err := recv.Test(); err != nil || ok {
		t.Fatalf("no message posted: Test = %v, %v", ok, err)
	}
	w.Isend(0, 1, 3, []float32{1})
	if ok, err := recv.Test(); err != nil || !ok {
		t.Fatalf("message posted: Test = %v, %v", ok, err)
	}
	if _, err := recv.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestMisuseHasDefinedErrors(t *testing.T) {
	// Wait before post: the zero-value Request was never produced by
	// Isend/Irecv.
	var zero Request
	if _, err := zero.Wait(); !errors.Is(err, ErrNotPosted) {
		t.Fatalf("Wait on unposted request: %v, want ErrNotPosted", err)
	}
	if _, err := zero.Test(); !errors.Is(err, ErrNotPosted) {
		t.Fatalf("Test on unposted request: %v, want ErrNotPosted", err)
	}
	if _, err := zero.TestHidden(); !errors.Is(err, ErrNotPosted) {
		t.Fatalf("TestHidden on unposted request: %v, want ErrNotPosted", err)
	}

	// Double Wait on both sides of a completed exchange.
	w := NewWorld(2)
	send := w.Isend(0, 1, 1, []float32{1})
	recv := w.Irecv(1, 0, 1)
	for _, r := range []*Request{send, recv} {
		if _, err := r.Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Wait(); !errors.Is(err, ErrAlreadyWaited) {
			t.Fatalf("double Wait: %v, want ErrAlreadyWaited", err)
		}
		if _, err := r.Test(); !errors.Is(err, ErrAlreadyWaited) {
			t.Fatalf("Test after Wait: %v, want ErrAlreadyWaited", err)
		}
	}
}

func TestWaitAllReturnsFirstErrorButDrains(t *testing.T) {
	w := NewWorld(2)
	w.Isend(0, 1, 1, []float32{1})
	w.Isend(0, 1, 2, []float32{2})
	good1 := w.Irecv(1, 0, 1)
	good2 := w.Irecv(1, 0, 2)
	var bad Request
	if err := w.WaitAll(good1, &bad, good2); !errors.Is(err, ErrNotPosted) {
		t.Fatalf("WaitAll: %v, want ErrNotPosted", err)
	}
	// Both good requests must have been drained despite the error.
	for _, r := range []*Request{good1, good2} {
		if _, err := r.Wait(); !errors.Is(err, ErrAlreadyWaited) {
			t.Fatalf("request not drained by WaitAll: %v", err)
		}
	}
}

func TestSameKeyMessagesDeliverFIFO(t *testing.T) {
	w := NewWorld(2)
	const n = 16
	for i := 0; i < n; i++ {
		w.Isend(0, 1, 5, []float32{float32(i)})
	}
	for i := 0; i < n; i++ {
		got, err := w.Irecv(1, 0, 5).Wait()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != float32(i) {
			t.Fatalf("message %d out of order: got %v", i, got[0])
		}
	}
}

func TestIsendPackedMatchesRoundSlice(t *testing.T) {
	for _, p := range []quant.Precision{quant.BF16, quant.FP16} {
		w := NewWorld(2)
		src := []float32{1.0001, -2.5, 3.14159, 0, 65000, 6e-8,
			float32(math.Inf(1)), float32(math.NaN())}
		w.IsendPacked(0, 1, 1, src, p)
		got, err := w.Irecv(1, 0, 1).Wait()
		if err != nil {
			t.Fatal(err)
		}
		want := p.RoundSlice(append([]float32(nil), src...))
		for i := range want {
			wNaN := math.IsNaN(float64(want[i]))
			gNaN := math.IsNaN(float64(got[i]))
			if wNaN != gNaN || (!wNaN && got[i] != want[i]) {
				t.Fatalf("%v: element %d: packed wire delivered %v, RoundSlice %v",
					p, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrentIsendIrecvWaitAll hammers the mailbox from every rank at
// once — the workload the race detector checks (race_on/race_off pattern:
// rounds shrink under instrumentation).
func TestConcurrentIsendIrecvWaitAll(t *testing.T) {
	rounds := 40
	if raceEnabled {
		rounds = 10
	}
	for _, n := range []int{2, 4, 8} {
		w := NewWorld(n)
		w.Run(func(rank int) {
			for round := 0; round < rounds; round++ {
				// Post all sends first, then all receives, then WaitAll —
				// no rank ever blocks another's posts.
				for peer := 0; peer < n; peer++ {
					w.Isend(rank, peer, round, []float32{float32(rank), float32(round)})
				}
				reqs := make([]*Request, n)
				for peer := 0; peer < n; peer++ {
					reqs[peer] = w.Irecv(rank, peer, round)
				}
				if err := w.WaitAll(reqs...); err != nil {
					panic(err)
				}
				for peer, r := range reqs {
					data := r.data
					if len(data) != 2 || data[0] != float32(peer) || data[1] != float32(round) {
						panic(fmt.Sprintf("rank %d round %d: bad payload from %d: %v",
							rank, round, peer, data))
					}
				}
			}
		})
	}
}

func TestPostXferOverlapAccounting(t *testing.T) {
	cm := &CostModel{NetLatency: 1e-6, NetBandwidth: 1e9, MemBandwidth: 1e9}
	// 1000 bytes: 1 µs latency + 1 µs serialization = 2 µs.
	ready, dur := cm.PostXfer(0, 1000)
	if dur != 2000 || ready != 2000 {
		t.Fatalf("transfer: ready %d dur %d, want 2000/2000", ready, dur)
	}
	// Back-to-back posts serialize on the injection port.
	ready2, _ := cm.PostXfer(0, 1000)
	if ready2 != 4000 {
		t.Fatalf("second post must queue behind the first: ready %d, want 4000", ready2)
	}

	// No compute: the full remainder is exposed at Wait.
	if got := cm.WaitXfer(0, ready); got != 2e-6 {
		t.Fatalf("exposed %v, want 2µs", got)
	}
	// The wait advanced the clock to the completion time, so the second
	// transfer has 2 µs left.
	if got := cm.WaitXfer(0, ready2); got != 2e-6 {
		t.Fatalf("second exposed %v, want 2µs", got)
	}

	// Compute past the completion time hides a transfer entirely.
	ready3, _ := cm.PostXfer(0, 1000)
	cm.ChargeCompute(0, 1e-3)
	if got := cm.WaitXfer(0, ready3); got != 0 {
		t.Fatalf("hidden transfer exposed %v, want 0", got)
	}

	// Partial overlap: compute covers half, the rest is exposed.
	cm2 := &CostModel{NetLatency: 0, NetBandwidth: 1e9, MemBandwidth: 1e9}
	ready4, _ := cm2.PostXfer(0, 2000) // 2 µs
	cm2.ChargeCompute(0, 1e-6)
	if got := cm2.WaitXfer(0, ready4); got != 1e-6 {
		t.Fatalf("partial overlap exposed %v, want 1µs", got)
	}

	// Forced sync charges the full duration no matter the compute.
	cm3 := &CostModel{NetLatency: 1e-6, NetBandwidth: 1e9, MemBandwidth: 1e9}
	_, dur3 := cm3.PostXfer(0, 1000)
	cm3.ChargeCompute(0, 1)
	if got := cm3.WaitXferForced(0, dur3); got != 2e-6 {
		t.Fatalf("forced sync exposed %v, want full 2µs", got)
	}
}

func TestTestHiddenFollowsSimulatedClock(t *testing.T) {
	w := NewWorld(2)
	cm := &CostModel{NetLatency: 1e-6, NetBandwidth: 1e9, MemBandwidth: 1e9}
	w.ConfigureAsync(cm, false)

	w.Isend(0, 1, 1, make([]float32, 250)) // 1000 bytes → 2 µs
	recv := w.Irecv(1, 0, 1)
	// Physically present but simulated-in-flight: Test true, TestHidden false.
	if ok, _ := recv.Test(); !ok {
		t.Fatal("message must be physically present")
	}
	if ok, _ := recv.TestHidden(); ok {
		t.Fatal("transfer cannot be hidden with no compute charged")
	}
	cm.ChargeCompute(1, 1e-5)
	if ok, _ := recv.TestHidden(); !ok {
		t.Fatal("transfer must be hidden after 10µs of compute")
	}
	if _, err := recv.Wait(); err != nil {
		t.Fatal(err)
	}
	if recv.Exposed() != 0 {
		t.Fatalf("hidden transfer exposed %v", recv.Exposed())
	}

	// Under forceSync nothing is ever hidden and Wait charges everything.
	w2 := NewWorld(2)
	cm2 := &CostModel{NetLatency: 1e-6, NetBandwidth: 1e9, MemBandwidth: 1e9}
	w2.ConfigureAsync(cm2, true)
	w2.Isend(0, 1, 1, make([]float32, 250))
	recv2 := w2.Irecv(1, 0, 1)
	cm2.ChargeCompute(1, 1)
	if ok, _ := recv2.TestHidden(); ok {
		t.Fatal("forceSync must never report hidden")
	}
	if _, err := recv2.Wait(); err != nil {
		t.Fatal(err)
	}
	if recv2.Exposed() != 2e-6 {
		t.Fatalf("forceSync exposed %v, want full 2µs", recv2.Exposed())
	}
}
