//go:build race

package comm

// raceEnabled reports whether the race detector is compiled in; throughput
// plausibility thresholds are meaningless under its instrumentation.
const raceEnabled = true
