package comm

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"distgnn/internal/parallel"
)

// serverpc.go is the serving data plane over a Transport: a minimal tagged
// request/reply layer the sharded inference engines use for halo feature
// fetches. It reserves its own tag range so serve traffic can share a
// fabric with anything else the transport carries:
//
//   - collectives use negative tags (collectives_net.go),
//   - training p2p tags are small non-negative ints (epoch-scaled),
//   - the serve plane owns [ServeTagBase, ∞): requests from any rank travel
//     on exactly ServeTagBase, and the reply to request id i travels on
//     ServeTagBase+1+i. Reply tags are unique per in-flight call on a
//     (caller, responder) pair, so concurrent calls never cross.
//
// Payloads ride the Envelope's float32 lane: integer fields (request ids,
// vertex IDs, byte lengths) are carried as raw bit patterns via
// math.Float32bits, which both fabrics transmit exactly (the TCP codec is a
// bit-for-bit uint32 round trip), so the encoding survives either wire.

// ServeTagBase is the first tag of the range reserved for the serving
// request/reply plane. Application p2p traffic must stay below it.
const ServeTagBase = 1 << 30

// reqRepStatusOK / reqRepStatusErr lead every reply payload.
const (
	reqRepStatusOK  = 0
	reqRepStatusErr = 1
)

// reqRepIDMask wraps request ids inside 30 bits so the id survives the
// uint32 wire encoding exactly and the reply tag stays a small positive
// offset into the reserved range. Caller and responder derive the reply
// tag from the same masked id; a wrap collision would need 2^30 in-flight
// calls on one (caller, responder) pair.
const reqRepIDMask = 1<<30 - 1

// reqRepTraceFlag marks a traced request frame in the id word's top bit
// (bits 30–31 are outside the id mask, so the flag never collides with an
// id). A traced frame carries two extra header words — the 64-bit trace
// ID split lo/hi — between the id word and the request body, which is how
// a request's trace identity crosses the fabric on halo fetches. Untraced
// frames are byte-identical to the pre-extension protocol.
const reqRepTraceFlag = 1 << 31

// ReqRepHandler answers one request. It runs on the responder's goroutines
// (one per in-flight request) and must be safe for concurrent use. The
// returned slice is serialized before the call returns on TCP and enqueued
// as-is in-process, so handlers should return freshly built or immutable
// buffers.
type ReqRepHandler func(from int, req []float32) ([]float32, error)

// ReqRepTracedHandler additionally receives the caller's trace ID (0 for
// untraced requests) so responders can attribute served work to the
// originating request across ranks.
type ReqRepTracedHandler func(from int, trace uint64, req []float32) ([]float32, error)

// ReqRep is the request/reply endpoint for one rank: it answers peers'
// requests through the handler and issues its own via Call.
//
// Shutdown contract: Close stops issuing new calls, then reaps every
// late-reply drainer a timed-out Call left behind — after Close returns, no
// goroutine this endpoint spawned for its own calls remains (the pre-fix
// behaviour leaked one blocked-forever Recv per timed-out call on a
// deadline-free fabric). The responder goroutines exit when the underlying
// transport closes (the transport stays owned by the caller). Close is
// idempotent and safe from any goroutine.
type ReqRep struct {
	tr      Transport
	rank    int
	handler ReqRepTracedHandler
	seq     atomic.Int64
	closed  atomic.Bool

	quit     chan struct{}  // closed by Close; wakes the drainers
	drainMu  sync.Mutex     // gates drainer registration against Close
	drainers sync.WaitGroup // live late-reply drainers
}

// drainPollInterval paces the late-reply drainer's mailbox polls. Polling
// (a non-consuming peek) instead of a blocking Recv is the fix for the
// drain leak: Recv has no deadline on the in-process fabric, so a blocked
// drainer could never be reclaimed.
const drainPollInterval = 2 * time.Millisecond

// NewReqRep starts the responder goroutines (one per peer) and returns the
// endpoint. rank must be the rank this endpoint speaks as — passed
// explicitly because the in-process transport hosts all ranks (Self() ==
// AllRanks).
func NewReqRep(tr Transport, rank int, handler ReqRepHandler) (*ReqRep, error) {
	return NewReqRepTraced(tr, rank, func(from int, _ uint64, req []float32) ([]float32, error) {
		return handler(from, req)
	})
}

// NewReqRepTraced is NewReqRep for handlers that consume the trace ID
// traced calls carry.
func NewReqRepTraced(tr Transport, rank int, handler ReqRepTracedHandler) (*ReqRep, error) {
	if rank < 0 || rank >= tr.Size() {
		return nil, fmt.Errorf("comm: reqrep rank %d outside world of %d", rank, tr.Size())
	}
	if tr.Self() != AllRanks && tr.Self() != rank {
		return nil, fmt.Errorf("comm: reqrep rank %d on an endpoint hosting rank %d", rank, tr.Self())
	}
	r := &ReqRep{tr: tr, rank: rank, handler: handler, quit: make(chan struct{})}
	for peer := 0; peer < tr.Size(); peer++ {
		if peer != rank {
			go r.respond(peer)
		}
	}
	return r, nil
}

// Call sends req to peer and blocks for the reply (or the transport's
// deadline / failure). The returned slice is the reply payload, owned by
// the caller.
func (r *ReqRep) Call(peer int, req []float32) ([]float32, error) {
	return r.CallTraced(peer, 0, req)
}

// CallTraced is Call with a trace ID riding the request frame (see
// reqRepTraceFlag). trace == 0 sends the untraced frame.
func (r *ReqRep) CallTraced(peer int, trace uint64, req []float32) ([]float32, error) {
	if peer == r.rank {
		return nil, fmt.Errorf("comm: reqrep rank %d cannot call itself", r.rank)
	}
	if peer < 0 || peer >= r.tr.Size() {
		return nil, fmt.Errorf("comm: reqrep call to rank %d outside world of %d", peer, r.tr.Size())
	}
	if r.closed.Load() {
		return nil, fmt.Errorf("comm: reqrep closed: %w", ErrClosed)
	}
	id := uint32(r.seq.Add(1)) & reqRepIDMask
	head := 1
	if trace != 0 {
		head = 3
	}
	payload := make([]float32, 0, head+len(req))
	if trace != 0 {
		payload = append(payload,
			math.Float32frombits(id|reqRepTraceFlag),
			math.Float32frombits(uint32(trace)),
			math.Float32frombits(uint32(trace>>32)))
	} else {
		payload = append(payload, math.Float32frombits(id))
	}
	payload = append(payload, req...)
	if err := r.tr.Send(r.rank, peer, &Envelope{Tag: ServeTagBase, F32: payload}); err != nil {
		return nil, err
	}
	env, err := r.tr.Recv(r.rank, peer, replyTag(id))
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			// The responder may still deliver after our deadline; without a
			// reader its envelope would sit in the mailbox forever. Drain it
			// in the background with a tracked, poll-based drainer that Close
			// reaps — a blocking Recv here would be unbounded on the
			// in-process fabric, which has no receive deadline.
			r.drainLate(peer, id)
		}
		return nil, err
	}
	return decodeReply(peer, env.F32)
}

// drainLate consumes a reply that arrives after its Call's deadline so the
// envelope does not sit in the mailbox forever. The drainer peeks with Poll
// (never blocks) and exits as soon as it consumes the reply, the fabric
// reports failure, or Close reaps it via quit.
func (r *ReqRep) drainLate(peer int, id uint32) {
	r.drainMu.Lock()
	if r.closed.Load() {
		// Shutting down: the mailbox dies with the transport; nothing to
		// reclaim and Close may already be waiting on the group.
		r.drainMu.Unlock()
		return
	}
	r.drainers.Add(1)
	r.drainMu.Unlock()
	go func() {
		defer r.drainers.Done()
		tick := time.NewTicker(drainPollInterval)
		defer tick.Stop()
		for {
			_, ok, err := r.tr.Poll(r.rank, peer, replyTag(id))
			if err != nil {
				return // fabric or peer connection down: no reply can arrive
			}
			if ok {
				// Only this drainer ever receives this reply tag, so the
				// just-peeked envelope is still queued and Recv is immediate.
				_, _ = r.tr.Recv(r.rank, peer, replyTag(id))
				return
			}
			select {
			case <-r.quit:
				return
			case <-tick.C:
			}
		}
	}()
}

// Close marks the endpoint closed for new calls and reaps the late-reply
// drainers; it returns once none remain. In-flight calls and the responder
// goroutines drain when the transport closes. Idempotent.
func (r *ReqRep) Close() {
	r.drainMu.Lock()
	if !r.closed.Swap(true) {
		close(r.quit)
	}
	r.drainMu.Unlock()
	r.drainers.Wait()
}

// respond drains one peer's request stream. Each request is handled on its
// own goroutine so a slow handler cannot head-of-line block the peer's
// later requests — replies are matched by tag, not order. An idle-receive
// deadline (the TCP transport bounds every Recv) is not a failure: a
// serving peer may simply have no cross-shard traffic for a while, so the
// loop re-arms on ErrTimeout and exits only when the fabric is down.
func (r *ReqRep) respond(peer int) {
	for {
		env, err := r.tr.Recv(r.rank, peer, ServeTagBase)
		if err != nil {
			if errors.Is(err, ErrTimeout) && !r.closed.Load() {
				continue
			}
			return // fabric or peer connection down: the endpoint is done
		}
		go r.handleOne(peer, env.F32)
	}
}

func (r *ReqRep) handleOne(peer int, req []float32) {
	if len(req) < 1 {
		return // not a framed request; nothing to reply to
	}
	idWord := math.Float32bits(req[0])
	id := idWord & reqRepIDMask
	var trace uint64
	body0 := 1
	if idWord&reqRepTraceFlag != 0 {
		if len(req) < 3 {
			return // traced frame missing its trace words; nothing to reply to
		}
		trace = uint64(math.Float32bits(req[1])) | uint64(math.Float32bits(req[2]))<<32
		body0 = 3
	}
	body, err := r.handler(peer, trace, req[body0:])
	var reply []float32
	if err != nil {
		reply = encodeErrorReply(err)
	} else {
		reply = make([]float32, 0, 1+len(body))
		reply = append(reply, math.Float32frombits(reqRepStatusOK))
		reply = append(reply, body...)
	}
	if serr := r.tr.Send(r.rank, peer, &Envelope{Tag: replyTag(id), F32: reply}); serr != nil {
		// The fabric can refuse a well-formed reply for request-dependent
		// reasons — an oversized frame, most plausibly — so downgrade to a
		// (tiny) error reply carrying the refusal instead of leaving the
		// caller to block out its deadline. If the fabric itself is down
		// this send fails too and the caller's Recv observes that failure.
		_ = r.tr.Send(r.rank, peer, &Envelope{Tag: replyTag(id), F32: encodeErrorReply(serr)})
	}
}

func replyTag(id uint32) int { return ServeTagBase + 1 + int(id) }

// encodeErrorReply frames a handler error as [status, byteLen, packed
// message bytes] so the failure reason crosses the wire instead of
// degrading to a generic transport error.
func encodeErrorReply(err error) []float32 {
	msg := []byte(err.Error())
	out := make([]float32, 2, 2+(len(msg)+3)/4)
	out[0] = math.Float32frombits(reqRepStatusErr)
	out[1] = math.Float32frombits(uint32(len(msg)))
	return append(out, PackBytes(msg)...)
}

func decodeReply(peer int, payload []float32) ([]float32, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("comm: reqrep reply from rank %d missing status word", peer)
	}
	switch math.Float32bits(payload[0]) {
	case reqRepStatusOK:
		return payload[1:], nil
	case reqRepStatusErr:
		if len(payload) < 2 {
			return nil, fmt.Errorf("comm: reqrep error reply from rank %d truncated", peer)
		}
		n := int(math.Float32bits(payload[1]))
		msg, err := UnpackBytes(payload[2:], n)
		if err != nil {
			return nil, fmt.Errorf("comm: reqrep error reply from rank %d corrupt: %v", peer, err)
		}
		return nil, fmt.Errorf("comm: reqrep rank %d: %s", peer, msg)
	default:
		return nil, fmt.Errorf("comm: reqrep reply from rank %d has unknown status %#x",
			peer, math.Float32bits(payload[0]))
	}
}

// Int32sToF32 reinterprets ids as float32 bit patterns for transport on the
// Envelope's float lane. Values round-trip exactly on both fabrics.
func Int32sToF32(ids []int32) []float32 {
	out := make([]float32, len(ids))
	for i, v := range ids {
		out[i] = math.Float32frombits(uint32(v))
	}
	return out
}

// F32ToInt32s is the inverse of Int32sToF32.
func F32ToInt32s(fs []float32) []int32 {
	out := make([]int32, len(fs))
	for i, v := range fs {
		out[i] = int32(math.Float32bits(v))
	}
	return out
}

// PackBytes packs raw bytes little-endian, four per float32 bit pattern.
func PackBytes(b []byte) []float32 {
	out := make([]float32, (len(b)+3)/4)
	for i := range out {
		var w uint32
		for j := 0; j < 4; j++ {
			if p := 4*i + j; p < len(b) {
				w |= uint32(b[p]) << (8 * j)
			}
		}
		out[i] = math.Float32frombits(w)
	}
	return out
}

// UnpackBytes is the inverse of PackBytes for a payload of n bytes.
func UnpackBytes(fs []float32, n int) ([]byte, error) {
	if n < 0 || (n+3)/4 > len(fs) {
		return nil, fmt.Errorf("comm: %d packed floats cannot hold %d bytes", len(fs), n)
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(math.Float32bits(fs[i/4]) >> (8 * (i % 4)))
	}
	return out, nil
}

// fanOutCalls issues one Call per (peer, request) pair concurrently and
// waits for all of them, returning the first error. The serving gather path
// uses it to overlap halo fetches to different owner ranks.
func (r *ReqRep) fanOutCalls(peers []int, reqs [][]float32, replies [][]float32) error {
	errs := make([]error, len(peers))
	var g parallel.Group
	for i := range peers {
		i := i
		g.Go(func() {
			rep, err := r.Call(peers[i], reqs[i])
			replies[i], errs[i] = rep, err
		})
	}
	g.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CallAll fans reqs out to peers concurrently (one call per pair) and
// returns the replies in peer order.
func (r *ReqRep) CallAll(peers []int, reqs [][]float32) ([][]float32, error) {
	if len(peers) != len(reqs) {
		return nil, fmt.Errorf("comm: reqrep CallAll: %d peers, %d requests", len(peers), len(reqs))
	}
	replies := make([][]float32, len(peers))
	if err := r.fanOutCalls(peers, reqs, replies); err != nil {
		return nil, err
	}
	return replies, nil
}
