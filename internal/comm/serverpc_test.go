package comm

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// reqRepFabrics builds each transport the serve plane runs on: the shared
// in-process mailbox and a loopback TCP mesh, both over n ranks.
func reqRepFabrics(t *testing.T, n int) map[string][]Transport {
	t.Helper()
	proc := NewProcTransport(n)
	shared := make([]Transport, n)
	for r := range shared {
		shared[r] = proc
	}
	tcp, err := NewLoopbackTCP(n, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]Transport{"inproc": shared, "tcp": tcp}
}

func closeFabric(eps []Transport) {
	seen := map[Transport]bool{}
	for _, ep := range eps {
		if !seen[ep] {
			seen[ep] = true
			ep.Close()
		}
	}
}

// TestReqRepEchoBothTransports: a request round-trips bit-exactly through
// an echo handler on both fabrics, including float payloads that are bit
// patterns of integers (the vertex-ID lane).
func TestReqRepEchoBothTransports(t *testing.T) {
	const n = 3
	for name, eps := range reqRepFabrics(t, n) {
		rrs := make([]*ReqRep, n)
		for r := 0; r < n; r++ {
			rr, err := NewReqRep(eps[r], r, func(from int, req []float32) ([]float32, error) {
				out := append([]float32{float32(from)}, req...)
				return out, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			rrs[r] = rr
		}
		ids := []int32{0, 1, -7, 1 << 20, math.MaxInt32}
		req := Int32sToF32(ids)
		rep, err := rrs[0].Call(2, req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep) != 1+len(req) || rep[0] != 0 {
			t.Fatalf("%s: echo reply %v", name, rep)
		}
		got := F32ToInt32s(rep[1:])
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("%s: id %d round-tripped to %d", name, ids[i], got[i])
			}
		}
		closeFabric(eps)
	}
}

// TestReqRepConcurrentFanOut hammers the RPC plane the way the sharded
// gather does: every rank calls every other rank from many goroutines at
// once, with per-call payloads that must come back matched to their own
// request (tags, not order, pair replies with calls).
func TestReqRepConcurrentFanOut(t *testing.T) {
	const n = 3
	for name, eps := range reqRepFabrics(t, n) {
		rrs := make([]*ReqRep, n)
		for r := 0; r < n; r++ {
			r := r
			rr, err := NewReqRep(eps[r], r, func(from int, req []float32) ([]float32, error) {
				// Reply = responder rank followed by the doubled request IDs.
				ids := F32ToInt32s(req)
				for i := range ids {
					ids[i] *= 2
				}
				return append([]float32{float32(r)}, Int32sToF32(ids)...), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			rrs[r] = rr
		}
		var wg sync.WaitGroup
		errc := make(chan error, n*n*8)
		for r := 0; r < n; r++ {
			for peer := 0; peer < n; peer++ {
				if peer == r {
					continue
				}
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func(r, peer, w int) {
						defer wg.Done()
						for i := 0; i < 25; i++ {
							ids := []int32{int32(r*1000 + peer*100 + w*10 + i)}
							rep, err := rrs[r].Call(peer, Int32sToF32(ids))
							if err != nil {
								errc <- err
								return
							}
							if len(rep) != 2 || int(rep[0]) != peer {
								errc <- fmt.Errorf("reply from wrong responder: %v", rep)
								return
							}
							if got := F32ToInt32s(rep[1:])[0]; got != 2*ids[0] {
								errc <- fmt.Errorf("call %d: reply %d, want %d", ids[0], got, 2*ids[0])
								return
							}
						}
					}(r, peer, w)
				}
			}
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatalf("%s: %v", name, err)
		}
		closeFabric(eps)
	}
}

// TestReqRepErrorCrossesWire: a handler error arrives at the caller as an
// error carrying the handler's message, on both fabrics.
func TestReqRepErrorCrossesWire(t *testing.T) {
	const n = 2
	for name, eps := range reqRepFabrics(t, n) {
		if _, err := NewReqRep(eps[1], 1, func(from int, req []float32) ([]float32, error) {
			return nil, fmt.Errorf("vertex 42 not owned here")
		}); err != nil {
			t.Fatal(err)
		}
		caller, err := NewReqRep(eps[0], 0, func(int, []float32) ([]float32, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		_, err = caller.Call(1, []float32{1})
		if err == nil || !strings.Contains(err.Error(), "vertex 42 not owned here") {
			t.Fatalf("%s: handler error did not cross the wire: %v", name, err)
		}
		closeFabric(eps)
	}
}

// TestReqRepMisuse pins the defined misuse errors: self-calls, rank out of
// world, closed endpoint.
func TestReqRepMisuse(t *testing.T) {
	tr := NewProcTransport(2)
	defer tr.Close()
	rr, err := NewReqRep(tr, 0, func(int, []float32) ([]float32, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Call(0, nil); err == nil {
		t.Fatal("self-call must error")
	}
	if _, err := rr.Call(5, nil); err == nil {
		t.Fatal("out-of-world call must error")
	}
	rr.Close()
	if _, err := rr.Call(1, nil); err == nil {
		t.Fatal("call on closed endpoint must error")
	}
	if _, err := NewReqRep(tr, 7, nil); err == nil {
		t.Fatal("endpoint rank outside the world must be rejected")
	}
}

// TestPackBytesRoundTrip: the byte→float packing used for error messages
// round-trips arbitrary lengths.
func TestPackBytesRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde", "halo fetch: rank 3"} {
		packed := PackBytes([]byte(s))
		got, err := UnpackBytes(packed, len(s))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte(s)) {
			t.Fatalf("%q round-tripped to %q", s, got)
		}
	}
	if _, err := UnpackBytes([]float32{0}, 9); err == nil {
		t.Fatal("undersized unpack must error")
	}
	if _, err := UnpackBytes(nil, -1); err == nil {
		t.Fatal("negative length must error")
	}
}

// TestServeTagRangeDisjoint documents the tag-plane contract: serve tags
// sit above every tag the training path generates and every collective tag.
func TestServeTagRangeDisjoint(t *testing.T) {
	if ServeTagBase <= 0 {
		t.Fatal("serve tag range must be positive")
	}
	// Training p2p tags are epoch-scaled small ints; 1<<20 epochs × layers
	// stays far below the reserved base.
	if maxTrainTag := (1 << 24); maxTrainTag >= ServeTagBase {
		t.Fatalf("training tag headroom %d crosses the serve base %d", maxTrainTag, ServeTagBase)
	}
}

// timeoutOnceTransport injects exactly one ErrTimeout into the first
// reply-tag Recv, then delegates to the wrapped fabric. On the in-process
// transport the delegated Recv has no deadline, so a pre-fix Call's
// background drain goroutine blocks forever — the leak this stub exposes.
type timeoutOnceTransport struct {
	Transport
	mu    sync.Mutex
	fired bool
}

func (t *timeoutOnceTransport) Recv(to, from, tag int) (*Envelope, error) {
	if tag > ServeTagBase {
		t.mu.Lock()
		first := !t.fired
		t.fired = true
		t.mu.Unlock()
		if first {
			return nil, fmt.Errorf("injected: %w", ErrTimeout)
		}
	}
	return t.Transport.Recv(to, from, tag)
}

// TestReqRepTimeoutDrainerReapedOnClose is the drain-leak regression pin:
// a Call that times out spawns a late-reply drainer, and Close must reap
// it. Pre-fix, the drainer was a bare Recv with no deadline on the
// in-process fabric — it blocked forever, so the goroutine count never
// dropped back after Close.
func TestReqRepTimeoutDrainerReapedOnClose(t *testing.T) {
	tr := &timeoutOnceTransport{Transport: NewProcTransport(2)}
	entered := make(chan struct{})
	block := make(chan struct{})
	r0, err := NewReqRep(tr, 0, func(int, []float32) ([]float32, error) {
		return nil, fmt.Errorf("rank 0 serves nothing here")
	})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewReqRep(tr, 1, func(int, []float32) ([]float32, error) {
		close(entered)
		<-block // the reply never arrives inside the test window
		return []float32{1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		r1.Close()
		tr.Transport.Close()
	}()

	if _, err := r0.Call(1, []float32{42}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Call: got %v, want ErrTimeout", err)
	}
	// Synchronize: the handler goroutine is parked and the drainer (spawned
	// synchronously inside Call) is registered, so the count is stable.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never entered")
	}
	before := runtime.NumGoroutine()

	r0.Close() // must reap the drainer before returning

	// Post-fix the drainer is gone when Close returns, so the count drops
	// below the pre-Close reading. The pre-fix drainer is a Recv blocked
	// forever — the count never drops and the deadline fires.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n < before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before Close, %d after (drainer not reaped)",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReqRepCloseIdempotent pins that double-Close is safe.
func TestReqRepCloseIdempotent(t *testing.T) {
	tr := NewProcTransport(2)
	defer tr.Close()
	rr, err := NewReqRep(tr, 0, func(_ int, req []float32) ([]float32, error) { return req, nil })
	if err != nil {
		t.Fatal(err)
	}
	rr.Close()
	rr.Close()
	if _, err := rr.Call(1, []float32{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after Close: got %v, want ErrClosed", err)
	}
}
