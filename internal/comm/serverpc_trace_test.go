package comm

import (
	"sync"
	"testing"
	"time"
)

// TestReqRepTracedFrames pins the trace-ID frame extension: CallTraced
// delivers the trace ID to a traced handler, plain Call delivers zero, and
// both coexist on one endpoint pair (the frames are self-describing).
func TestReqRepTracedFrames(t *testing.T) {
	for _, fabric := range []string{"inproc", "tcp"} {
		t.Run(fabric, func(t *testing.T) {
			var trs []Transport
			switch fabric {
			case "inproc":
				tr := NewProcTransport(2)
				trs = []Transport{tr, tr}
			case "tcp":
				eps, err := NewLoopbackTCP(2, 10*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				trs = eps
				defer func() {
					for _, ep := range eps {
						ep.Close()
					}
				}()
			}

			var mu sync.Mutex
			var seen []uint64
			echo := func(from int, trace uint64, req []float32) ([]float32, error) {
				mu.Lock()
				seen = append(seen, trace)
				mu.Unlock()
				return req, nil
			}
			r0, err := NewReqRepTraced(trs[0], 0, echo)
			if err != nil {
				t.Fatal(err)
			}
			defer r0.Close()
			r1, err := NewReqRepTraced(trs[1], 1, echo)
			if err != nil {
				t.Fatal(err)
			}
			defer r1.Close()

			const trace = uint64(0xdeadbeefcafe0123)
			rep, err := r1.CallTraced(0, trace, []float32{1, 2, 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep) != 3 || rep[0] != 1 {
				t.Fatalf("traced echo reply = %v", rep)
			}
			if _, err := r1.Call(0, []float32{4}); err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(seen) != 2 || seen[0] != trace || seen[1] != 0 {
				t.Fatalf("handler saw traces %x, want [%x 0]", seen, trace)
			}
		})
	}
}

// TestTransportNetStats pins the byte accounting: payload bytes counted
// per direction and attributed to the tag plane they rode.
func TestTransportNetStats(t *testing.T) {
	tr := NewProcTransport(2)
	defer tr.Close()
	src, ok := tr.(NetStatsSource)
	if !ok {
		t.Fatal("proc transport must implement NetStatsSource")
	}

	// One message per plane: collective (negative tag), p2p, serve range.
	for _, tag := range []int{-5, 7, ServeTagBase} {
		if err := tr.Send(0, 1, &Envelope{Tag: tag, F32: make([]float32, 8)}); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Recv(1, 0, tag); err != nil {
			t.Fatal(err)
		}
	}
	st := src.NetStats()
	if st.SentMsgs != 3 || st.RecvMsgs != 3 {
		t.Fatalf("msgs = %d/%d, want 3/3", st.SentMsgs, st.RecvMsgs)
	}
	if st.SentBytes != 96 || st.RecvBytes != 96 {
		t.Fatalf("bytes = %d/%d, want 96/96 (3×8 floats)", st.SentBytes, st.RecvBytes)
	}
	if st.CollectiveBytes != 32 || st.P2PBytes != 32 || st.ServeBytes != 32 {
		t.Fatalf("plane split = %d/%d/%d, want 32 each",
			st.CollectiveBytes, st.P2PBytes, st.ServeBytes)
	}
}

// TestTCPNetStats pins the TCP endpoint's accounting, including the
// self-send loopback counting both directions.
func TestTCPNetStats(t *testing.T) {
	eps, err := NewLoopbackTCP(2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	if err := eps[0].Send(0, 1, &Envelope{Tag: 3, F32: make([]float32, 4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[1].Recv(1, 0, 3); err != nil {
		t.Fatal(err)
	}
	st0 := eps[0].(NetStatsSource).NetStats()
	st1 := eps[1].(NetStatsSource).NetStats()
	if st0.SentBytes != 16 || st0.SentMsgs != 1 {
		t.Fatalf("sender stats = %+v", st0)
	}
	if st1.RecvBytes != 16 || st1.RecvMsgs != 1 {
		t.Fatalf("receiver stats = %+v", st1)
	}
	// Self-send: one message counted both ways on the one endpoint.
	if err := eps[0].Send(0, 0, &Envelope{Tag: 1, F32: make([]float32, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[0].Recv(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	st0 = eps[0].(NetStatsSource).NetStats()
	if st0.SentBytes != 24 || st0.RecvBytes != 8 {
		t.Fatalf("self-send stats = %+v", st0)
	}
}
