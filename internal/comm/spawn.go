package comm

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
)

// spawn.go is the -spawn-local process bootstrap shared by the CLIs: the
// rank-0 parent re-execs itself as ranks 1..N-1 of a loopback fleet,
// appending per-rank flag overrides (the stdlib flag parser takes the last
// occurrence, so the parent's own flags simply get overridden). The caller
// supplies the per-rank argv tail; this file owns process lifecycle —
// start, reap, kill — so the two CLIs cannot drift apart on it.

// SpawnLocalRanks forks ranks 1..n-1 of a local fleet as copies of the
// current executable. argsForRank returns the flags appended for one rank
// (after a copy of this process's own arguments). Children inherit
// stdout/stderr. On any start failure the already-started children are
// killed and the error returned.
func SpawnLocalRanks(n int, argsForRank func(rank int) []string) ([]*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	var children []*exec.Cmd
	for r := 1; r < n; r++ {
		args := append(append([]string{}, os.Args[1:]...), argsForRank(r)...)
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			KillRanks(children)
			return nil, fmt.Errorf("spawn rank %d: %w", r, err)
		}
		children = append(children, cmd)
	}
	return children, nil
}

// KillRanks terminates and reaps spawned ranks.
func KillRanks(children []*exec.Cmd) {
	for _, c := range children {
		if c.Process != nil {
			c.Process.Kill()
			c.Wait()
		}
	}
}

// WaitRanks reaps spawned ranks and returns the joined errors of every
// rank that exited nonzero — the fleet is one run, and an operator
// debugging it needs all the failures, not just the first.
func WaitRanks(children []*exec.Cmd) error {
	var errs []error
	for _, c := range children {
		if err := c.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("spawned rank failed: %w", err))
		}
	}
	return errors.Join(errs...)
}

// KillRanksOnSignal installs a SIGINT/SIGTERM handler that kills the
// spawned ranks before exiting — long-running parents (a serving fleet)
// must not orphan their children when the operator kills the parent.
func KillRanksOnSignal(children []*exec.Cmd) {
	if len(children) == 0 {
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		KillRanks(children)
		os.Exit(1)
	}()
}
