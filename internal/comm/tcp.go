package comm

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distgnn/internal/parallel"
	"distgnn/internal/quant"
)

// tcp.go is the multi-process fabric: every rank its own OS process,
// framed messages (frame.go) over one TCP connection per rank pair.
// Rendezvous goes through rank 0's registry listener — only rank 0's
// address needs to be known up front: every other rank dials it, registers
// its own listen address, and receives the full rank→address table, after
// which the nonzero ranks complete the mesh among themselves (lower rank
// accepts, higher rank dials). Connections are established once and reused
// for the whole run; every dial, handshake, write, blocked receive, and
// barrier wait is bounded by the configured deadline and fails with an
// error wrapping ErrTimeout rather than hanging a training fleet.

// DefaultTCPTimeout bounds TCP dial/handshake/send/recv/barrier waits when
// TCPConfig.Timeout is zero.
const DefaultTCPTimeout = 60 * time.Second

// TCPConfig configures one rank's TCP endpoint.
type TCPConfig struct {
	// Rank is this process's rank; N the world size.
	Rank, N int
	// Peers lists listen addresses by rank. Only Peers[0] — the rank-0
	// registry — is required on nonzero ranks; ranks whose entry is absent
	// or empty bind an ephemeral loopback port and report it during
	// registration. Every rank (rank 0 included) binds Listen when set,
	// else its own Peers entry, else an ephemeral loopback port.
	Peers []string
	// Listen overrides this rank's bind address. Default: Peers[Rank] when
	// set, else "127.0.0.1:0".
	Listen string
	// Advertise is the address this rank registers with the rendezvous —
	// the address peers dial it on. Defaults to the bound listener address,
	// which is right for loopback fleets; cross-machine ranks that bind a
	// wildcard or NATed interface must set it to a routable host:port (or
	// supply the full Peers table, which bypasses advertisement).
	Advertise string
	// Timeout bounds every fabric operation (default DefaultTCPTimeout;
	// negative disables deadlines).
	Timeout time.Duration
}

// tcpPeer is one established connection, shared by Send (serialized by mu)
// and a dedicated reader goroutine.
type tcpPeer struct {
	mu      sync.Mutex
	c       net.Conn
	scratch []byte // frame encode buffer, reused across sends
}

// TCPTransport is a single-rank Transport endpoint over TCP. Construct
// with NewTCPTransport (binds the listener, so Addr is immediately
// routable), then Establish to run the rendezvous and build the mesh.
type TCPTransport struct {
	rank, n   int
	timeout   time.Duration
	ln        net.Listener
	registry  []string // Peers hints from TCPConfig; [0] is the rendezvous address
	advertise string
	peers     []*tcpPeer
	box       mailbox

	// Central-coordinator barrier state: nonzero ranks send kindBarrier to
	// rank 0 and wait for kindRelease; rank 0 collects N-1 arrivals per
	// generation. barGen is local — all ranks pass barriers in lockstep.
	barGen  int64
	arrive  chan int64
	release chan int64

	closed    atomic.Bool
	closeOnce sync.Once

	net netCounters
}

// NetStats snapshots this endpoint's traffic counters.
func (t *TCPTransport) NetStats() TransportStats { return t.net.stats() }

// NewTCPTransport binds this rank's listener and returns the endpoint.
// No peer traffic happens until Establish.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	if cfg.N < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.N {
		return nil, fmt.Errorf("comm: tcp rank %d outside world of %d", cfg.Rank, cfg.N)
	}
	if cfg.Rank != 0 && cfg.N > 1 && (len(cfg.Peers) == 0 || cfg.Peers[0] == "") {
		return nil, fmt.Errorf("comm: tcp rank %d needs the rank-0 registry address in Peers[0]", cfg.Rank)
	}
	bind := cfg.Listen
	if bind == "" && cfg.Rank < len(cfg.Peers) {
		bind = cfg.Peers[cfg.Rank]
	}
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("comm: tcp rank %d listen %s: %w", cfg.Rank, bind, err)
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = DefaultTCPTimeout
	} else if timeout < 0 {
		timeout = 0
	}
	t := &TCPTransport{
		rank: cfg.Rank, n: cfg.N, timeout: timeout, ln: ln,
		peers:   make([]*tcpPeer, cfg.N),
		arrive:  make(chan int64, 4*cfg.N),
		release: make(chan int64, 4),
	}
	t.box.init()
	t.registry = append([]string(nil), cfg.Peers...)
	t.advertise = cfg.Advertise
	return t, nil
}

// advertised is the address this rank tells peers to dial.
func (t *TCPTransport) advertised() string {
	if t.advertise != "" {
		return t.advertise
	}
	return t.Addr()
}

// Addr is this rank's bound listen address — rank 0's is the registry
// address the other ranks need.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) Size() int { return t.n }
func (t *TCPTransport) Self() int { return t.rank }

// Establish runs the rendezvous and builds the connection mesh, then
// barriers so no rank returns before every rank is reachable.
func (t *TCPTransport) Establish() error {
	if t.n == 1 {
		return nil
	}
	table := make([]string, t.n)
	table[t.rank] = t.advertised()

	if t.rank == 0 {
		// Registry: accept every other rank's registration, record its
		// listen address, keep the connection as the rank-0 mesh link.
		for i := 0; i < t.n-1; i++ {
			c, h, payload, err := t.acceptHello()
			if err != nil {
				return err
			}
			r := int(h.Src)
			if r <= 0 || r >= t.n || t.peers[r] != nil {
				c.Close()
				return fmt.Errorf("comm: tcp registry: bad or duplicate registration from rank %d", r)
			}
			table[r] = string(payload)
			t.peers[r] = &tcpPeer{c: c}
		}
		blob := []byte(strings.Join(table, "\n"))
		for r := 1; r < t.n; r++ {
			if err := t.writeControl(r, kindTable, 0, blob); err != nil {
				return err
			}
		}
	} else {
		// Register with rank 0 and receive the address table.
		c, err := t.dial(t.registry[0])
		if err != nil {
			return err
		}
		if err := t.writeHello(c); err != nil {
			c.Close()
			return err
		}
		h, payload, err := t.readHandshake(c)
		if err != nil {
			c.Close()
			return err
		}
		if h.Kind != kindTable {
			c.Close()
			return fmt.Errorf("comm: tcp rank %d: expected address table, got frame kind %d", t.rank, h.Kind)
		}
		got := strings.Split(string(payload), "\n")
		if len(got) != t.n {
			c.Close()
			return fmt.Errorf("comm: tcp rank %d: address table has %d entries, world size %d",
				t.rank, len(got), t.n)
		}
		copy(table, got)
		t.peers[0] = &tcpPeer{c: c}

		// Mesh among nonzero ranks: dial every lower rank, accept every
		// higher one.
		for j := 1; j < t.rank; j++ {
			cj, err := t.dial(table[j])
			if err != nil {
				return err
			}
			if err := t.writeHello(cj); err != nil {
				cj.Close()
				return err
			}
			t.peers[j] = &tcpPeer{c: cj}
		}
		for i := 0; i < t.n-1-t.rank; i++ {
			c, h, _, err := t.acceptHello()
			if err != nil {
				return err
			}
			r := int(h.Src)
			if r <= t.rank || r >= t.n || t.peers[r] != nil {
				c.Close()
				return fmt.Errorf("comm: tcp rank %d: bad or duplicate mesh hello from rank %d", t.rank, r)
			}
			t.peers[r] = &tcpPeer{c: c}
		}
	}

	for r, p := range t.peers {
		if p != nil {
			go t.readLoop(r, p)
		}
	}
	// No rank proceeds until every rank's mesh is complete, so the first
	// data frame can never race an unfinished Establish.
	return t.Barrier(t.rank)
}

// dial connects to a peer, retrying refused connections until the deadline
// — fleet processes start in arbitrary order, so a peer whose listener is
// not up yet is normal during rendezvous, not a failure.
func (t *TCPTransport) dial(addr string) (net.Conn, error) {
	var deadline time.Time
	if t.timeout > 0 {
		deadline = time.Now().Add(t.timeout)
	}
	for {
		d := net.Dialer{Timeout: t.timeout}
		if !deadline.IsZero() {
			d.Deadline = deadline
		}
		c, err := d.Dial("tcp", addr)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return c, nil
		}
		if !deadline.IsZero() && time.Now().Add(100*time.Millisecond).After(deadline) {
			return nil, fmt.Errorf("comm: tcp rank %d dial %s: %w (%v)", t.rank, addr, ErrTimeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// acceptHello accepts one connection and reads its hello frame.
func (t *TCPTransport) acceptHello() (net.Conn, frameHeader, []byte, error) {
	if t.timeout > 0 {
		if tl, ok := t.ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(t.timeout))
		}
	}
	c, err := t.ln.Accept()
	if err != nil {
		return nil, frameHeader{}, nil, fmt.Errorf("comm: tcp rank %d accept: %w", t.rank, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	h, payload, err := t.readHandshake(c)
	if err != nil {
		c.Close()
		return nil, frameHeader{}, nil, err
	}
	if h.Kind != kindHello {
		c.Close()
		return nil, frameHeader{}, nil, fmt.Errorf("comm: tcp rank %d: expected hello, got frame kind %d", t.rank, h.Kind)
	}
	return c, h, payload, nil
}

func (t *TCPTransport) writeHello(c net.Conn) error {
	if t.timeout > 0 {
		c.SetWriteDeadline(time.Now().Add(t.timeout))
		defer c.SetWriteDeadline(time.Time{})
	}
	buf := appendControlFrame(nil, kindHello, t.rank, 0, 0, []byte(t.advertised()))
	_, err := c.Write(buf)
	if err != nil {
		return fmt.Errorf("comm: tcp rank %d hello: %w", t.rank, err)
	}
	return nil
}

// readHandshake reads one frame with the deadline applied, then clears it
// (steady-state reads run without one — an idle epoch is not a failure).
func (t *TCPTransport) readHandshake(c net.Conn) (frameHeader, []byte, error) {
	if t.timeout > 0 {
		c.SetReadDeadline(time.Now().Add(t.timeout))
		defer c.SetReadDeadline(time.Time{})
	}
	h, payload, err := readFrame(c)
	if err != nil {
		return h, payload, fmt.Errorf("comm: tcp rank %d handshake: %w", t.rank, err)
	}
	return h, payload, nil
}

// readLoop demultiplexes inbound frames from one peer: data into the
// mailbox, barrier traffic onto the coordinator channels. A read error
// outside Close marks the whole fabric failed, waking every blocked Recv.
func (t *TCPTransport) readLoop(src int, p *tcpPeer) {
	br := bufio.NewReaderSize(p.c, 1<<16)
	for {
		h, payload, err := readFrame(br)
		if err != nil {
			if !t.closed.Load() {
				t.box.failSrc(src, fmt.Errorf("comm: tcp rank %d: connection to rank %d failed: %w (%v)",
					t.rank, src, ErrClosed, err))
			}
			return
		}
		switch h.Kind {
		case kindData:
			env := envelopeFromFrame(h, payload)
			t.net.countRecv(envelopePayloadBytes(env))
			t.box.push(msgKey{src: int(h.Src), dst: t.rank, tag: int(h.Tag)}, env)
		case kindBarrier:
			t.arrive <- h.Tag
		case kindRelease:
			t.release <- h.Tag
		default:
			t.box.failSrc(src, fmt.Errorf("comm: tcp rank %d: unexpected frame kind %d from rank %d: %w",
				t.rank, h.Kind, src, ErrClosed))
			return
		}
	}
}

func (t *TCPTransport) writeControl(to int, kind byte, tag int64, payload []byte) error {
	p := t.peers[to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.timeout > 0 {
		p.c.SetWriteDeadline(time.Now().Add(t.timeout))
	}
	p.scratch = appendControlFrame(p.scratch[:0], kind, t.rank, to, tag, payload)
	_, err := p.c.Write(p.scratch)
	if err != nil {
		return fmt.Errorf("comm: tcp rank %d send to rank %d: %w", t.rank, to, err)
	}
	return nil
}

// Send frames env and writes it on the connection to rank `to` — the
// envelope is fully serialized before Send returns. Self-sends loop back
// through the mailbox without touching the network.
func (t *TCPTransport) Send(from, to int, env *Envelope) error {
	if from != t.rank {
		return fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot send as rank %d", t.rank, from)
	}
	if to < 0 || to >= t.n {
		return fmt.Errorf("comm: tcp send to rank %d outside world of %d", to, t.n)
	}
	if t.closed.Load() {
		return ErrClosed
	}
	if to == t.rank {
		n := envelopePayloadBytes(env)
		t.net.countSend(env.Tag, n)
		t.net.countRecv(n)
		t.box.push(msgKey{src: from, dst: to, tag: env.Tag}, env)
		return nil
	}
	// Reject oversized payloads at the sender with a clear error — the
	// alternative is the receiver tearing the peer link down with a
	// misleading "connection failed" long after the bytes left.
	plen := 4 * len(env.F32)
	if env.Prec != quant.FP32 {
		plen = 2 * len(env.U16)
	}
	if plen > int(maxFramePayload) {
		return fmt.Errorf("comm: tcp rank %d: payload of %d bytes to rank %d exceeds the %d-byte frame limit — split the transfer",
			t.rank, plen, to, maxFramePayload)
	}
	p := t.peers[to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.timeout > 0 {
		p.c.SetWriteDeadline(time.Now().Add(t.timeout))
	}
	p.scratch = appendDataFrame(p.scratch[:0], from, to, env)
	_, err := p.c.Write(p.scratch)
	if err != nil {
		return fmt.Errorf("comm: tcp rank %d send to rank %d: %w", t.rank, to, err)
	}
	t.net.countSend(env.Tag, envelopePayloadBytes(env))
	return nil
}

// Recv blocks for the next envelope from rank `from` with tag, up to the
// configured deadline.
func (t *TCPTransport) Recv(to, from, tag int) (*Envelope, error) {
	if to != t.rank {
		return nil, fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot receive as rank %d", t.rank, to)
	}
	return t.box.recv(msgKey{src: from, dst: to, tag: tag}, t.timeout)
}

// Poll peeks without consuming.
func (t *TCPTransport) Poll(to, from, tag int) (*Envelope, bool, error) {
	if to != t.rank {
		return nil, false, fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot poll as rank %d", t.rank, to)
	}
	return t.box.poll(msgKey{src: from, dst: to, tag: tag})
}

// Barrier blocks until all N ranks enter the same barrier generation,
// coordinated through rank 0.
func (t *TCPTransport) Barrier(rank int) error {
	if rank != t.rank {
		return fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot barrier as rank %d", t.rank, rank)
	}
	if t.n == 1 {
		return nil
	}
	t.barGen++
	gen := t.barGen
	if t.rank == 0 {
		for need := t.n - 1; need > 0; need-- {
			if err := t.awaitBarrier(t.arrive, gen); err != nil {
				return err
			}
		}
		for r := 1; r < t.n; r++ {
			if err := t.writeControl(r, kindRelease, gen, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := t.writeControl(0, kindBarrier, gen, nil); err != nil {
		return err
	}
	return t.awaitBarrier(t.release, gen)
}

func (t *TCPTransport) awaitBarrier(ch chan int64, gen int64) error {
	var timeoutCh <-chan time.Time
	if t.timeout > 0 {
		timer := time.NewTimer(t.timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case g := <-ch:
		if g != gen {
			return fmt.Errorf("comm: tcp rank %d barrier: generation %d, expected %d: %w",
				t.rank, g, gen, ErrClosed)
		}
		return nil
	case <-timeoutCh:
		return fmt.Errorf("comm: tcp rank %d barrier generation %d timed out after %v: %w",
			t.rank, gen, t.timeout, ErrTimeout)
	}
}

// Close tears the fabric down: the listener and every connection close,
// reader goroutines exit, and blocked receives fail with ErrClosed.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		t.ln.Close()
		for _, p := range t.peers {
			if p != nil {
				p.c.Close()
			}
		}
		t.box.fail(ErrClosed)
	})
	return nil
}

// NewLoopbackTCP builds an established n-rank TCP fabric over loopback
// inside one process — each endpoint driven from its own goroutine exactly
// as n separate OS processes would drive theirs. Tests, the abl-transport
// benchmark, and the tcploopback example use it (often through
// train.DistributedFleet); real deployments construct one NewTCPTransport
// per process instead.
func NewLoopbackTCP(n int, timeout time.Duration) ([]Transport, error) {
	eps := make([]*TCPTransport, n)
	t0, err := NewTCPTransport(TCPConfig{Rank: 0, N: n, Timeout: timeout})
	if err != nil {
		return nil, err
	}
	eps[0] = t0
	for r := 1; r < n; r++ {
		eps[r], err = NewTCPTransport(TCPConfig{
			Rank: r, N: n, Peers: []string{t0.Addr()}, Timeout: timeout,
		})
		if err != nil {
			for _, e := range eps {
				if e != nil {
					e.Close()
				}
			}
			return nil, err
		}
	}
	errs := make([]error, n)
	var g parallel.Group
	for r := range eps {
		r := r
		g.Go(func() { errs[r] = eps[r].Establish() })
	}
	g.Wait()
	for r, e := range errs {
		if e != nil {
			for _, ep := range eps {
				ep.Close()
			}
			return nil, fmt.Errorf("comm: loopback rank %d: %w", r, e)
		}
	}
	out := make([]Transport, n)
	for r, ep := range eps {
		out[r] = ep
	}
	return out, nil
}
