package comm

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"distgnn/internal/parallel"
	"distgnn/internal/quant"
)

const tcpTestTimeout = 20 * time.Second

func loopback(t *testing.T, n int) []Transport {
	t.Helper()
	eps, err := NewLoopbackTCP(n, tcpTestTimeout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, e := range eps {
			e.Close()
		}
	})
	return eps
}

// TestTCPRendezvousAndP2P: registry rendezvous from only rank 0's address,
// then framed payload exchange across every rank pair — fp32 bit patterns
// and packed words must survive the wire exactly, FIFO per (src,dst,tag).
func TestTCPRendezvousAndP2P(t *testing.T) {
	const n = 4
	eps := loopback(t, n)
	var g parallel.Group
	for r := 0; r < n; r++ {
		ep := eps[r]
		g.Go(func() {
			rank := ep.Self()
			for peer := 0; peer < n; peer++ {
				// Two messages per pair on one tag: order must hold.
				err := ep.Send(rank, peer, &Envelope{Tag: 5, F32: []float32{float32(rank), 0}})
				if err != nil {
					panic(err)
				}
				err = ep.Send(rank, peer, &Envelope{Tag: 5, F32: []float32{float32(rank), 1}})
				if err != nil {
					panic(err)
				}
			}
			for peer := 0; peer < n; peer++ {
				for seq := 0; seq < 2; seq++ {
					env, err := ep.Recv(rank, peer, 5)
					if err != nil {
						panic(err)
					}
					if len(env.F32) != 2 || env.F32[0] != float32(peer) || env.F32[1] != float32(seq) {
						panic("bad payload or FIFO violation")
					}
				}
			}
		})
	}
	g.Wait()
}

// TestTCPPackedAndMetadata: packed 16-bit payloads and the simulated-fabric
// metadata ride the wire untouched; Poll peeks without consuming.
func TestTCPPackedAndMetadata(t *testing.T) {
	eps := loopback(t, 2)
	words := []uint16{0, 1, 0x7FFF, 0xFFFF, 0xBEEF}
	var g parallel.Group
	g.Go(func() {
		err := eps[0].Send(0, 1, &Envelope{
			Tag: 3, Prec: quant.FP16, U16: words, ReadyNs: 123456789, DurNs: 42,
		})
		if err != nil {
			panic(err)
		}
	})
	g.Go(func() {
		deadline := time.Now().Add(tcpTestTimeout)
		for {
			env, ok, err := eps[1].Poll(1, 0, 3)
			if err != nil {
				panic(err)
			}
			if ok {
				if env.ReadyNs != 123456789 || env.DurNs != 42 {
					panic("cost metadata lost in transit")
				}
				break
			}
			if time.Now().After(deadline) {
				panic("message never arrived")
			}
			time.Sleep(time.Millisecond)
		}
		env, err := eps[1].Recv(1, 0, 3)
		if err != nil {
			panic(err)
		}
		if len(env.U16) != len(words) {
			panic("packed length mismatch")
		}
		for i := range words {
			if env.U16[i] != words[i] {
				panic("packed words corrupted on the wire")
			}
		}
	})
	g.Wait()
}

// TestTCPBarrierSynchronizes mirrors the in-process barrier test over the
// real fabric.
func TestTCPBarrierSynchronizes(t *testing.T) {
	const n = 3
	eps := loopback(t, n)
	var before, after atomic.Int32
	var g parallel.Group
	for _, ep := range eps {
		ep := ep
		g.Go(func() {
			for round := 0; round < 5; round++ {
				before.Add(1)
				if err := ep.Barrier(ep.Self()); err != nil {
					panic(err)
				}
				if got := before.Load(); int(got) < n*(round+1) {
					panic("rank passed barrier before all arrived")
				}
				after.Add(1)
				if err := ep.Barrier(ep.Self()); err != nil {
					panic(err)
				}
			}
		})
	}
	g.Wait()
	if after.Load() != n*5 {
		t.Fatalf("only %d barrier passes", after.Load())
	}
}

// TestTCPRecvDeadline: a receive nothing arrives for fails with ErrTimeout
// instead of hanging the process.
func TestTCPRecvDeadline(t *testing.T) {
	eps, err := NewLoopbackTCP(2, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range eps {
			e.Close()
		}
	}()
	if _, err := eps[1].Recv(1, 0, 99); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv with no sender: %v, want ErrTimeout", err)
	}
}

// TestTCPCloseFailsPendingRecv: tearing the fabric down wakes blocked
// receivers with ErrClosed rather than leaving them parked forever.
func TestTCPCloseFailsPendingRecv(t *testing.T) {
	eps := loopback(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv(1, 0, 4)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	eps[1].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv after close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv still blocked after Close")
	}
}

// TestTCPSendRejectsOversizedPayload: a payload over the frame limit fails
// at the sender with a clear error, not at the receiver as a torn link.
func TestTCPSendRejectsOversizedPayload(t *testing.T) {
	// Lower the limit before the fleet exists (readers parse handshake
	// frames against it) and restore after every endpoint is closed —
	// cleanups run LIFO, so register the restore first.
	orig := maxFramePayload
	t.Cleanup(func() { maxFramePayload = orig })
	maxFramePayload = 1 << 16
	eps := loopback(t, 2)
	big := make([]float32, maxFramePayload/4+1)
	if err := eps[0].Send(0, 1, &Envelope{Tag: 1, F32: big}); err == nil {
		t.Fatal("oversized send must fail at the sender")
	}
}

// TestTCPEndpointRejectsForeignRank: a single-rank endpoint refuses to act
// as a rank it does not host — the misuse that silently corrupts a mesh.
func TestTCPEndpointRejectsForeignRank(t *testing.T) {
	eps := loopback(t, 2)
	if err := eps[0].Send(1, 0, &Envelope{Tag: 1}); err == nil {
		t.Fatal("send as foreign rank must fail")
	}
	if _, err := eps[0].Recv(1, 0, 1); err == nil {
		t.Fatal("recv as foreign rank must fail")
	}
	if err := eps[0].Barrier(1); err == nil {
		t.Fatal("barrier as foreign rank must fail")
	}
}

// TestWorldCollectivesMatchAcrossTransports is the substrate-conformance
// core: every collective must produce bit-identical results on the
// in-process world and on TCP endpoints, because reductions apply
// contributions in the same rank order on both.
func TestWorldCollectivesMatchAcrossTransports(t *testing.T) {
	const n, dim = 4, 96
	rng := rand.New(rand.NewSource(11))
	inputs := make([][]float32, n)
	for r := range inputs {
		inputs[r] = make([]float32, dim)
		for i := range inputs[r] {
			inputs[r][i] = rng.Float32()*2e6 - 1e6
		}
	}

	type outputs struct {
		allreduce []float32
		gathered  []float32
		scattered []float32
		broadcast []float32
		alltoall  [][]float32
	}
	runRank := func(w *World, rank int) outputs {
		var o outputs
		o.allreduce = append([]float32(nil), inputs[rank]...)
		w.AllReduceSum(rank, o.allreduce)
		o.gathered = w.AllGather(rank, inputs[rank][:rank+1])
		o.scattered = w.ReduceScatterSum(rank, append([]float32(nil), inputs[rank]...))
		o.broadcast = append([]float32(nil), inputs[rank]...)
		w.Broadcast(rank, 2, o.broadcast)
		send := make([][]float32, n)
		for peer := 0; peer < n; peer++ {
			send[peer] = inputs[rank][:peer]
		}
		o.alltoall = w.AlltoAllV(rank, send)
		return o
	}

	inproc := make([]outputs, n)
	w := NewWorld(n)
	w.Run(func(rank int) { inproc[rank] = runRank(w, rank) })

	eps := loopback(t, n)
	tcp := make([]outputs, n)
	var g parallel.Group
	for r := 0; r < n; r++ {
		r := r
		g.Go(func() { tcp[r] = runRank(NewWorldTransport(eps[r]), r) })
	}
	g.Wait()

	eq := func(a, b []float32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				return false
			}
		}
		return true
	}
	for r := 0; r < n; r++ {
		if !eq(inproc[r].allreduce, tcp[r].allreduce) {
			t.Fatalf("rank %d: AllReduceSum differs across transports", r)
		}
		if !eq(inproc[r].gathered, tcp[r].gathered) {
			t.Fatalf("rank %d: AllGather differs across transports", r)
		}
		if !eq(inproc[r].scattered, tcp[r].scattered) {
			t.Fatalf("rank %d: ReduceScatterSum differs across transports", r)
		}
		if !eq(inproc[r].broadcast, tcp[r].broadcast) {
			t.Fatalf("rank %d: Broadcast differs across transports", r)
		}
		for src := 0; src < n; src++ {
			if !eq(inproc[r].alltoall[src], tcp[r].alltoall[src]) {
				t.Fatalf("rank %d: AlltoAllV from %d differs across transports", r, src)
			}
		}
	}
}

// TestRequestsOverTCP: the full Isend/IsendPacked/Irecv/Wait machinery on
// TCP endpoints delivers exactly what the in-process fabric does,
// including RoundSlice semantics for packed sends.
func TestRequestsOverTCP(t *testing.T) {
	eps := loopback(t, 2)
	src := []float32{1.0001, -2.5, 3.14159, 0, 65000, 6e-8,
		float32(math.Inf(1)), float32(math.NaN())}
	var g parallel.Group
	g.Go(func() {
		w := NewWorldTransport(eps[0])
		w.Isend(0, 1, 1, src)
		w.IsendPacked(0, 1, 2, src, quant.BF16)
		w.IsendPacked(0, 1, 3, src, quant.FP16)
	})
	var fp32, bf16, fp16 []float32
	g.Go(func() {
		w := NewWorldTransport(eps[1])
		var err error
		if fp32, err = w.Irecv(1, 0, 1).Wait(); err != nil {
			panic(err)
		}
		if bf16, err = w.Irecv(1, 0, 2).Wait(); err != nil {
			panic(err)
		}
		if fp16, err = w.Irecv(1, 0, 3).Wait(); err != nil {
			panic(err)
		}
	})
	g.Wait()

	checks := []struct {
		name string
		got  []float32
		want []float32
	}{
		{"fp32", fp32, src},
		{"bf16", bf16, quant.BF16.RoundSlice(append([]float32(nil), src...))},
		{"fp16", fp16, quant.FP16.RoundSlice(append([]float32(nil), src...))},
	}
	for _, c := range checks {
		for i := range c.want {
			wNaN := math.IsNaN(float64(c.want[i]))
			gNaN := math.IsNaN(float64(c.got[i]))
			if wNaN != gNaN || (!wNaN && c.got[i] != c.want[i]) {
				t.Fatalf("%s element %d: wire delivered %v, want %v", c.name, i, c.got[i], c.want[i])
			}
		}
	}
}
