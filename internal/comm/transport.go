package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distgnn/internal/quant"
)

// transport.go defines the pluggable comm fabric under World: framed
// point-to-point send/recv of optionally quant-packed messages plus rank
// bootstrap and barrier. Two implementations exist: the in-process mailbox
// (procTransport, below — every rank a goroutine in one process, PR 2's
// fabric refactored behind the interface) and the TCP transport (tcp.go —
// every rank its own OS process, loopback or LAN). The Request machinery
// and the transport-backed collectives run identically on both, which is
// what lets the conformance harness pin bit-identical training across
// substrates.

// AllRanks is the Self value of a transport that hosts every rank of the
// world inside one process (the in-process mailbox). Single-rank endpoints
// return their own rank instead.
const AllRanks = -1

// Fabric failure errors. Transport operations that cannot complete return
// errors wrapping one of these, so callers can distinguish a peer that is
// slow (ErrTimeout, deadline-based) from a fabric that is gone (ErrClosed).
var (
	// ErrTimeout marks an operation that exceeded the transport's configured
	// deadline: a peer that never dialed in, a receive nothing arrived for,
	// a barrier a rank never reached.
	ErrTimeout = errors.New("comm: deadline exceeded")
	// ErrClosed marks operations on a transport after Close, or after a
	// connection failure tore the fabric down.
	ErrClosed = errors.New("comm: transport closed")
)

// Envelope is one framed message: the payload of an Isend (fp32, or
// quant-packed 16-bit words — the packed words are the literal wire format
// on TCP) plus the simulated α–β fabric metadata that rides along so the
// receiver's overlap accounting sees the sender's completion time.
type Envelope struct {
	Tag  int
	Prec quant.Precision
	// F32 is the fp32 payload (Prec == quant.FP32); U16 the 16-bit packed
	// payload otherwise. Exactly one is non-nil for non-empty payloads.
	F32 []float32
	U16 []uint16
	// ReadyNs/DurNs are the sender's simulated fabric-completion time and
	// full transfer duration (costmodel.go); zero without a cost model.
	ReadyNs, DurNs int64
}

// Transport is a pluggable point-to-point comm fabric over a fixed world
// of N ranks.
//
// Semantics every implementation provides:
//   - Messages between one (from, to, tag) triple are delivered in FIFO
//     post order.
//   - Send does not block on the receiver (buffered-send semantics); for
//     to != Self the envelope's buffers are fully serialized before Send
//     returns, while self-delivery enqueues the envelope as-is, so callers
//     that will mutate a buffer after a self-send must copy it first.
//   - Recv blocks until a matching envelope arrives, the transport's
//     deadline expires (ErrTimeout), or the fabric fails (ErrClosed).
//   - Poll never consumes: it reports the head matching envelope, if any.
//   - Barrier blocks the calling rank until all N ranks enter it.
type Transport interface {
	// Size is the world size N.
	Size() int
	// Self is the rank this endpoint hosts, or AllRanks when the transport
	// hosts every rank in one process.
	Self() int
	Send(from, to int, env *Envelope) error
	Recv(to, from, tag int) (*Envelope, error)
	Poll(to, from, tag int) (*Envelope, bool, error)
	Barrier(rank int) error
	Close() error
}

// msgKey addresses one directed (sender, receiver, tag) channel.
type msgKey struct{ src, dst, tag int }

// mailbox holds pending envelopes keyed by (src, dst, tag) — the matching
// structure both transports deliver into (the TCP reader goroutines
// demultiplex inbound frames into one of these).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][]*Envelope
	err    error // whole-fabric failure (Close): fails every waiter
	// srcErr scopes a single connection's failure to receives from that
	// peer: a rank that finished its run and closed cleanly must not abort
	// this rank's in-progress exchanges with everyone else.
	srcErr map[int]error
}

func (mb *mailbox) init() {
	mb.cond = sync.NewCond(&mb.mu)
	mb.queues = make(map[msgKey][]*Envelope)
	mb.srcErr = make(map[int]error)
}

func (mb *mailbox) push(key msgKey, env *Envelope) {
	mb.mu.Lock()
	mb.queues[key] = append(mb.queues[key], env)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// fail marks the whole fabric broken and wakes every waiter.
func (mb *mailbox) fail(err error) {
	mb.mu.Lock()
	if mb.err == nil {
		mb.err = err
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// failSrc marks one peer's connection broken: only receives from that peer
// fail (once their queues drain), everything else proceeds.
func (mb *mailbox) failSrc(src int, err error) {
	mb.mu.Lock()
	if mb.srcErr[src] == nil {
		mb.srcErr[src] = err
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// recv dequeues the next envelope for key, blocking up to timeout
// (0 = forever). sync.Cond cannot time out, so a timer broadcast wakes the
// wait loop to observe the deadline.
func (mb *mailbox) recv(key msgKey, timeout time.Duration) (*Envelope, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		timer := time.AfterFunc(timeout, func() {
			// Broadcast under the lock: any waiter that saw the deadline as
			// unexpired is parked in Wait before this fires.
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		})
		defer timer.Stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		// Queued envelopes outrank a fabric failure: a peer that sent its
		// last message and exited is a completed protocol, not an error —
		// its data must stay consumable after the connection drops.
		if q := mb.queues[key]; len(q) > 0 {
			env := q[0]
			if len(q) == 1 {
				delete(mb.queues, key)
			} else {
				mb.queues[key] = q[1:]
			}
			return env, nil
		}
		if err := mb.waitErr(key); err != nil {
			return nil, fmt.Errorf("comm: recv from rank %d tag %d at rank %d: %w",
				key.src, key.tag, key.dst, err)
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return nil, fmt.Errorf("comm: recv from rank %d tag %d at rank %d timed out after %v: %w",
				key.src, key.tag, key.dst, timeout, ErrTimeout)
		}
		mb.cond.Wait()
	}
}

// poll peeks the head envelope for key without consuming it.
func (mb *mailbox) poll(key msgKey) (*Envelope, bool, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if q := mb.queues[key]; len(q) > 0 {
		return q[0], true, nil
	}
	return nil, false, mb.waitErr(key)
}

// waitErr returns the error that makes waiting for key futile: the fabric
// is down, or this key's source connection is. Caller holds mb.mu.
func (mb *mailbox) waitErr(key msgKey) error {
	if mb.err != nil {
		return mb.err
	}
	return mb.srcErr[key.src]
}

// procTransport is the in-process fabric: every rank a goroutine in this
// process, delivery straight through the shared mailbox, barrier a
// sense-reversing counter. It is PR 2's mailbox behind the Transport
// interface — no serialization, no deadlines (in-process delivery cannot
// stall on a peer), zero behavior change.
type procTransport struct {
	n   int
	box mailbox
	net netCounters

	barMu   sync.Mutex
	barCond *sync.Cond
	arrived int
	phase   int64
}

// NewProcTransport builds the in-process mailbox fabric over n ranks.
// NewWorld wraps it automatically; it is exported for symmetry with the
// TCP transport and for transport-generic tests.
func NewProcTransport(n int) Transport {
	if n < 1 {
		panic(fmt.Sprintf("comm: world size must be ≥1, got %d", n))
	}
	t := &procTransport{n: n}
	t.box.init()
	t.barCond = sync.NewCond(&t.barMu)
	return t
}

func (t *procTransport) Size() int { return t.n }
func (t *procTransport) Self() int { return AllRanks }

func (t *procTransport) Send(from, to int, env *Envelope) error {
	t.net.countSend(env.Tag, envelopePayloadBytes(env))
	t.box.push(msgKey{src: from, dst: to, tag: env.Tag}, env)
	return nil
}

func (t *procTransport) Recv(to, from, tag int) (*Envelope, error) {
	env, err := t.box.recv(msgKey{src: from, dst: to, tag: tag}, 0)
	if err == nil {
		t.net.countRecv(envelopePayloadBytes(env))
	}
	return env, err
}

// NetStats snapshots the fabric's traffic counters (whole-world totals on
// the in-process transport — every rank shares the one endpoint).
func (t *procTransport) NetStats() TransportStats { return t.net.stats() }

func (t *procTransport) Poll(to, from, tag int) (*Envelope, bool, error) {
	return t.box.poll(msgKey{src: from, dst: to, tag: tag})
}

// Barrier is a reusable sense-reversing barrier across all n ranks.
func (t *procTransport) Barrier(int) error {
	t.barMu.Lock()
	defer t.barMu.Unlock()
	phase := t.phase
	t.arrived++
	if t.arrived == t.n {
		t.arrived = 0
		t.phase++
		t.barCond.Broadcast()
		return nil
	}
	for t.phase == phase {
		t.barCond.Wait()
	}
	return nil
}

func (t *procTransport) Close() error {
	t.box.fail(ErrClosed)
	return nil
}
