// Package comm provides the communication substrate DistGNN gets from
// torch.distributed + OneCCL in the paper: a fixed-size world of ranks
// (one per CPU socket) with point-to-point messaging, AlltoAllV and
// AllReduce collectives, and async send queues — over a pluggable
// Transport. In-process mode runs every rank as a goroutine exchanging
// real data through a shared mailbox, with a separate α–β cost model
// (costmodel.go) accounting the wall-clock such traffic would cost on a
// cluster fabric; TCP mode (tcp.go) runs each rank as its own OS process
// over a real network, same World API, bit-identical collective results.
package comm

import (
	"fmt"
	"sync"

	"distgnn/internal/parallel"
)

// World is a communicator over N ranks. All collective operations are
// synchronous across the full world and deterministic: reductions are
// applied in rank order regardless of arrival order, so distributed runs
// are bit-reproducible — on the in-process fabric and over TCP alike.
type World struct {
	N int

	// self is AllRanks when this World hosts every rank in-process;
	// otherwise the single rank this endpoint represents.
	self int
	tr   Transport

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	phase   int64
	// collective scratch: per-rank contribution slots (in-process mode).
	slots [][]float32
	mats  [][][]float32
	// collSeq reserves a fresh negative tag per collective on a
	// transport-backed endpoint (collectives_net.go). User p2p tags are
	// non-negative, so the spaces never collide.
	collSeq int

	// nonblocking point-to-point state (p2p.go).
	asyncCost *CostModel
	forceSync bool
}

// NewWorld creates an in-process communicator over n ranks: every rank a
// goroutine in this process, collectives through shared memory, p2p
// through the in-process mailbox transport.
func NewWorld(n int) *World {
	if n < 1 {
		panic(fmt.Sprintf("comm: world size must be ≥1, got %d", n))
	}
	w := &World{N: n, self: AllRanks, tr: NewProcTransport(n),
		slots: make([][]float32, n), mats: make([][][]float32, n)}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// NewWorldTransport wraps a single-rank Transport endpoint (one OS process
// per rank, e.g. a TCPTransport) in a World. Collectives run over the
// transport's point-to-point fabric with the same rank-ordered float
// reductions as the in-process World, so results are bit-identical.
func NewWorldTransport(t Transport) *World {
	if t.Self() == AllRanks {
		panic("comm: NewWorldTransport needs a single-rank endpoint; use NewWorld for the in-process fabric")
	}
	w := &World{N: t.Size(), self: t.Self(), tr: t}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Transport returns the fabric under this world.
func (w *World) Transport() Transport { return w.tr }

// Self returns the rank this endpoint hosts, or AllRanks for the
// in-process world.
func (w *World) Self() int { return w.self }

// remote reports whether this World is a single-rank transport endpoint.
func (w *World) remote() bool { return w.self != AllRanks }

// checkSelf panics if a remote endpoint is driven as a rank it does not
// host — on the in-process world every rank is local, so any is fine.
func (w *World) checkSelf(op string, rank int) {
	if w.remote() && rank != w.self {
		panic(fmt.Sprintf("comm: %s as rank %d on an endpoint hosting rank %d", op, rank, w.self))
	}
}

// Barrier blocks until all N ranks have called it.
func (w *World) Barrier() {
	if w.remote() {
		if err := w.tr.Barrier(w.self); err != nil {
			panic(err)
		}
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.arriveLocked()
}

// arriveLocked implements a reusable (sense-reversing) barrier. The caller
// must hold w.mu.
func (w *World) arriveLocked() {
	phase := w.phase
	w.arrived++
	if w.arrived == w.N {
		w.arrived = 0
		w.phase++
		w.cond.Broadcast()
		return
	}
	for w.phase == phase {
		w.cond.Wait()
	}
}

// AllReduceSum sums data elementwise across all ranks; every rank's buffer
// holds the total on return. Reduction is in rank order for determinism.
// All ranks must pass equal-length buffers.
func (w *World) AllReduceSum(rank int, data []float32) {
	if w.remote() {
		w.netAllReduceSum(rank, data)
		return
	}
	w.mu.Lock()
	w.slots[rank] = data
	w.arriveLocked()
	// All contributions visible. Rank 0 reduces into a shared result held
	// in slot 0's backing array? No — every rank reduces deterministically
	// into its own buffer from the slot snapshot; slots stay valid until
	// the trailing barrier.
	slots := make([][]float32, w.N)
	copy(slots, w.slots)
	w.mu.Unlock()

	if len(slots[0]) != len(data) {
		panic(fmt.Sprintf("comm: AllReduceSum length mismatch: rank %d has %d, rank 0 has %d",
			rank, len(data), len(slots[0])))
	}
	out := reduceScratch.GetZeroed(len(data))
	for r := 0; r < w.N; r++ {
		src := slots[r]
		for i, v := range src {
			out[i] += v
		}
	}

	w.mu.Lock()
	w.arriveLocked() // everyone done reading slots
	w.slots[rank] = nil
	w.mu.Unlock()
	// data aliases this rank's slot; writing it is only safe once every
	// rank has passed the closing barrier above.
	copy(data, out)
	reduceScratch.Put(out)
}

// reduceScratch recycles the per-rank reduction buffers — AllReduceSum runs
// once per epoch per rank over the full flattened gradient, which used to
// allocate the whole buffer every time.
var reduceScratch parallel.Scratch[float32]

// AlltoAllV exchanges variable-length float32 buffers: send[j] goes to rank
// j, and the returned recv[j] is the buffer rank j sent to this rank.
// Every rank must pass a send slice of length N (nil entries mean empty).
// Returned buffers are copies owned by the caller.
func (w *World) AlltoAllV(rank int, send [][]float32) [][]float32 {
	if len(send) != w.N {
		panic(fmt.Sprintf("comm: AlltoAllV rank %d passed %d buffers, world size %d",
			rank, len(send), w.N))
	}
	if w.remote() {
		return w.netAlltoAllV(rank, send)
	}
	w.mu.Lock()
	w.mats[rank] = send
	w.arriveLocked()
	mats := make([][][]float32, w.N)
	copy(mats, w.mats)
	w.mu.Unlock()

	recv := make([][]float32, w.N)
	for src := 0; src < w.N; src++ {
		buf := mats[src][rank]
		if len(buf) == 0 {
			continue
		}
		out := make([]float32, len(buf))
		copy(out, buf)
		recv[src] = out
	}

	w.mu.Lock()
	w.arriveLocked()
	w.mats[rank] = nil
	w.mu.Unlock()
	return recv
}

// Run spawns fn for every rank and waits for all to return. Ranks block on
// barriers, so each needs a dedicated goroutine — they run on a
// parallel.Group rather than the bounded kernel pool, which re-raises the
// first panic (if any) after all goroutines settle so tests fail cleanly
// rather than deadlock. Only the in-process world can host every rank; a
// transport endpoint panics.
func (w *World) Run(fn func(rank int)) {
	if w.remote() {
		panic(fmt.Sprintf("comm: Run on an endpoint hosting only rank %d — drive that rank directly", w.self))
	}
	var g parallel.Group
	for r := 0; r < w.N; r++ {
		rank := r
		g.Go(func() { fn(rank) })
	}
	g.Wait()
}
