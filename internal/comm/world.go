// Package comm provides the communication substrate DistGNN gets from
// torch.distributed + OneCCL in the paper: a fixed-size world of ranks
// (one per simulated CPU socket) with point-to-point messaging, AlltoAllV
// and AllReduce collectives, and async send queues. Ranks run as goroutines
// in one process and exchange real data over channels, so the distributed
// algorithms execute their true data flow; a separate α–β cost model
// (costmodel.go) accounts the wall-clock such traffic would cost on a
// cluster fabric.
package comm

import (
	"fmt"
	"sync"

	"distgnn/internal/parallel"
)

// World is a communicator over N ranks. All collective operations are
// synchronous across the full world and deterministic: reductions are
// applied in rank order regardless of arrival order, so distributed runs
// are bit-reproducible.
type World struct {
	N int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	phase   int64
	// collective scratch: per-rank contribution slots.
	slots [][]float32
	mats  [][][]float32

	// nonblocking point-to-point state (p2p.go).
	boxes     mailbox
	asyncCost *CostModel
	forceSync bool
}

// NewWorld creates a communicator over n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic(fmt.Sprintf("comm: world size must be ≥1, got %d", n))
	}
	w := &World{N: n, slots: make([][]float32, n), mats: make([][][]float32, n)}
	w.cond = sync.NewCond(&w.mu)
	w.boxes.init()
	return w
}

// Barrier blocks until all N ranks have called it.
func (w *World) Barrier() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.arriveLocked()
}

// arriveLocked implements a reusable (sense-reversing) barrier. The caller
// must hold w.mu.
func (w *World) arriveLocked() {
	phase := w.phase
	w.arrived++
	if w.arrived == w.N {
		w.arrived = 0
		w.phase++
		w.cond.Broadcast()
		return
	}
	for w.phase == phase {
		w.cond.Wait()
	}
}

// AllReduceSum sums data elementwise across all ranks; every rank's buffer
// holds the total on return. Reduction is in rank order for determinism.
// All ranks must pass equal-length buffers.
func (w *World) AllReduceSum(rank int, data []float32) {
	w.mu.Lock()
	w.slots[rank] = data
	w.arriveLocked()
	// All contributions visible. Rank 0 reduces into a shared result held
	// in slot 0's backing array? No — every rank reduces deterministically
	// into its own buffer from the slot snapshot; slots stay valid until
	// the trailing barrier.
	slots := make([][]float32, w.N)
	copy(slots, w.slots)
	w.mu.Unlock()

	if len(slots[0]) != len(data) {
		panic(fmt.Sprintf("comm: AllReduceSum length mismatch: rank %d has %d, rank 0 has %d",
			rank, len(data), len(slots[0])))
	}
	out := reduceScratch.GetZeroed(len(data))
	for r := 0; r < w.N; r++ {
		src := slots[r]
		for i, v := range src {
			out[i] += v
		}
	}

	w.mu.Lock()
	w.arriveLocked() // everyone done reading slots
	w.slots[rank] = nil
	w.mu.Unlock()
	// data aliases this rank's slot; writing it is only safe once every
	// rank has passed the closing barrier above.
	copy(data, out)
	reduceScratch.Put(out)
}

// reduceScratch recycles the per-rank reduction buffers — AllReduceSum runs
// once per epoch per rank over the full flattened gradient, which used to
// allocate the whole buffer every time.
var reduceScratch parallel.Scratch[float32]

// AlltoAllV exchanges variable-length float32 buffers: send[j] goes to rank
// j, and the returned recv[j] is the buffer rank j sent to this rank.
// Every rank must pass a send slice of length N (nil entries mean empty).
// Returned buffers are copies owned by the caller.
func (w *World) AlltoAllV(rank int, send [][]float32) [][]float32 {
	if len(send) != w.N {
		panic(fmt.Sprintf("comm: AlltoAllV rank %d passed %d buffers, world size %d",
			rank, len(send), w.N))
	}
	w.mu.Lock()
	w.mats[rank] = send
	w.arriveLocked()
	mats := make([][][]float32, w.N)
	copy(mats, w.mats)
	w.mu.Unlock()

	recv := make([][]float32, w.N)
	for src := 0; src < w.N; src++ {
		buf := mats[src][rank]
		if len(buf) == 0 {
			continue
		}
		out := make([]float32, len(buf))
		copy(out, buf)
		recv[src] = out
	}

	w.mu.Lock()
	w.arriveLocked()
	w.mats[rank] = nil
	w.mu.Unlock()
	return recv
}

// Run spawns fn for every rank and waits for all to return. Ranks block on
// barriers, so each needs a dedicated goroutine — they run on a
// parallel.Group rather than the bounded kernel pool, which re-raises the
// first panic (if any) after all goroutines settle so tests fail cleanly
// rather than deadlock.
func (w *World) Run(fn func(rank int)) {
	var g parallel.Group
	for r := 0; r < w.N; r++ {
		rank := r
		g.Go(func() { fn(rank) })
	}
	g.Wait()
}
