package comm

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(8)
	var before, after atomic.Int32
	w.Run(func(rank int) {
		before.Add(1)
		w.Barrier()
		if got := before.Load(); got != 8 {
			t.Errorf("rank %d passed barrier with only %d arrivals", rank, got)
		}
		after.Add(1)
	})
	if after.Load() != 8 {
		t.Fatalf("only %d ranks finished", after.Load())
	}
}

func TestBarrierReusable(t *testing.T) {
	w := NewWorld(4)
	counter := make([]int32, 10)
	w.Run(func(rank int) {
		for round := 0; round < 10; round++ {
			atomic.AddInt32(&counter[round], 1)
			w.Barrier()
			if got := atomic.LoadInt32(&counter[round]); got != 4 {
				t.Errorf("round %d: %d arrivals", round, got)
			}
			w.Barrier()
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	w := NewWorld(5)
	results := make([][]float32, 5)
	w.Run(func(rank int) {
		data := []float32{float32(rank), 1, float32(rank * rank)}
		w.AllReduceSum(rank, data)
		results[rank] = data
	})
	// Σrank = 0+1+2+3+4 = 10; Σ1 = 5; Σrank² = 30.
	want := []float32{10, 5, 30}
	for rank, got := range results {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: got %v want %v", rank, got, want)
			}
		}
	}
}

func TestAllReduceSumDeterministicOrder(t *testing.T) {
	// Float addition isn't associative; the reduction must be applied in
	// rank order so every rank computes bit-identical results, every run.
	w := NewWorld(7)
	rng := rand.New(rand.NewSource(42))
	inputs := make([][]float32, 7)
	for r := range inputs {
		inputs[r] = make([]float32, 64)
		for i := range inputs[r] {
			inputs[r][i] = rng.Float32()*2e8 - 1e8
		}
	}
	run := func() [][]float32 {
		out := make([][]float32, 7)
		w.Run(func(rank int) {
			data := append([]float32(nil), inputs[rank]...)
			w.AllReduceSum(rank, data)
			out[rank] = data
		})
		return out
	}
	a, b := run(), run()
	for r := range a {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("rank %d elem %d: %v != %v across runs", r, i, a[r][i], b[r][i])
			}
			if a[r][i] != a[0][i] {
				t.Fatalf("rank %d disagrees with rank 0 at elem %d", r, i)
			}
		}
	}
}

func TestAlltoAllV(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	recvAll := make([][][]float32, n)
	w.Run(func(rank int) {
		send := make([][]float32, n)
		for dst := 0; dst < n; dst++ {
			// rank sends [rank*10+dst] repeated (dst+1) times to dst.
			buf := make([]float32, dst+1)
			for i := range buf {
				buf[i] = float32(rank*10 + dst)
			}
			send[dst] = buf
		}
		recvAll[rank] = w.AlltoAllV(rank, send)
	})
	for rank := 0; rank < n; rank++ {
		for src := 0; src < n; src++ {
			got := recvAll[rank][src]
			if len(got) != rank+1 {
				t.Fatalf("rank %d from %d: len %d want %d", rank, src, len(got), rank+1)
			}
			for _, v := range got {
				if v != float32(src*10+rank) {
					t.Fatalf("rank %d from %d: value %v want %d", rank, src, v, src*10+rank)
				}
			}
		}
	}
}

func TestAlltoAllVEmptyBuffers(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	w.Run(func(rank int) {
		send := make([][]float32, n) // all nil
		if rank == 0 {
			send[1] = []float32{7}
		}
		recv := w.AlltoAllV(rank, send)
		if rank == 1 {
			if len(recv[0]) != 1 || recv[0][0] != 7 {
				t.Errorf("rank 1 expected [7] from rank 0, got %v", recv[0])
			}
		} else {
			for src, buf := range recv {
				if len(buf) != 0 {
					t.Errorf("rank %d got unexpected data from %d: %v", rank, src, buf)
				}
			}
		}
	})
}

func TestAlltoAllVReturnsCopies(t *testing.T) {
	const n = 2
	w := NewWorld(n)
	src := []float32{1, 2, 3}
	w.Run(func(rank int) {
		send := make([][]float32, n)
		if rank == 0 {
			send[1] = src
		}
		recv := w.AlltoAllV(rank, send)
		if rank == 1 {
			recv[0][0] = 99
		}
	})
	if src[0] != 1 {
		t.Fatal("receiver mutated sender's buffer — AlltoAllV must copy")
	}
}

func TestRepeatedCollectivesInterleaved(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(rank int) {
		for iter := 0; iter < 20; iter++ {
			data := []float32{float32(rank + iter)}
			w.AllReduceSum(rank, data)
			want := float32(0+1+2) + 3*float32(iter)
			if data[0] != want {
				t.Errorf("iter %d rank %d: got %v want %v", iter, rank, data[0], want)
			}
			send := make([][]float32, 3)
			for d := 0; d < 3; d++ {
				send[d] = []float32{float32(rank)}
			}
			recv := w.AlltoAllV(rank, send)
			for srcRank, buf := range recv {
				if buf[0] != float32(srcRank) {
					t.Errorf("iter %d: rank %d got %v from %d", iter, rank, buf[0], srcRank)
				}
			}
		}
	})
}

func TestCostModelAccumulates(t *testing.T) {
	c := DefaultCostModel(2)
	c.ChargeGatherScatter(0, 1000)
	c.ChargeAlltoAll(0, []int{100, 0, 200})
	c.ChargeAllReduce(1, 4096, 4)
	if c.SimTime(0) <= 0 || c.SimTime(1) <= 0 {
		t.Fatal("charges must accumulate positive simulated time")
	}
	if c.MaxSimTime() < c.SimTime(0) || c.MaxSimTime() < c.SimTime(1) {
		t.Fatal("MaxSimTime must dominate per-rank accounts")
	}
	c.Reset()
	if c.SimTime(0) != 0 || c.MaxSimTime() != 0 {
		t.Fatal("Reset must clear accounts")
	}
}

func TestCostModelAllReduceSingleRankFree(t *testing.T) {
	c := DefaultCostModel(1)
	if got := c.ChargeAllReduce(0, 1<<20, 1); got != 0 {
		t.Fatalf("k=1 AllReduce must cost 0, got %v", got)
	}
}

func TestCostModelScalesWithVolume(t *testing.T) {
	c := DefaultCostModel(1)
	small := c.ChargeAlltoAll(0, []int{1000})
	large := c.ChargeAlltoAll(0, []int{100000000})
	if large <= small {
		t.Fatal("larger transfers must cost more")
	}
}

func TestWorldRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0)
}
