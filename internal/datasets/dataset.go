package datasets

import (
	"fmt"
	"math/rand"

	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

// Spec describes a synthetic dataset: graph shape, community structure,
// and feature/label synthesis parameters.
type Spec struct {
	Name        string
	NumVertices int
	AvgDegree   float64 // directed in-degree average after symmetrization
	FeatDim     int
	NumClasses  int
	// Communities is the number of planted communities. Labels are derived
	// from community membership; community count ≥ class count folds several
	// communities into one class.
	Communities int
	// IntraFrac is the fraction of edges generated inside a community.
	// High values (Proteins) yield low vertex-cut replication factors;
	// low values (Reddit) yield high ones.
	IntraFrac float64
	// Undirected symmetrizes each generated edge into two directed edges,
	// as the paper does for Reddit, OGBN-Products and Proteins.
	Undirected bool
	// FeatureNoise is the std-dev of Gaussian noise added to class
	// centroids when synthesizing features.
	FeatureNoise float64
	// TrainFrac/ValFrac set the split; test gets the remainder.
	TrainFrac, ValFrac float64
	Seed               int64
}

// Dataset is a fully materialized benchmark instance: graph, features,
// labels, and train/val/test vertex sets.
type Dataset struct {
	Spec       Spec
	G          *graph.CSR
	Features   *tensor.Matrix // |V|×FeatDim
	Labels     []int32        // |V|
	NumClasses int
	TrainIdx   []int32
	ValIdx     []int32
	TestIdx    []int32
	Community  []int32 // planted community per vertex
}

// Generate materializes the dataset described by spec. Generation is
// deterministic in spec.Seed.
func Generate(spec Spec) (*Dataset, error) {
	if spec.NumVertices <= 0 {
		return nil, fmt.Errorf("datasets: NumVertices must be positive, got %d", spec.NumVertices)
	}
	if spec.NumClasses <= 0 || spec.FeatDim <= 0 {
		return nil, fmt.Errorf("datasets: FeatDim and NumClasses must be positive")
	}
	if spec.Communities <= 0 {
		spec.Communities = spec.NumClasses
	}
	if spec.Communities > spec.NumVertices {
		spec.Communities = spec.NumVertices
	}
	if spec.TrainFrac <= 0 {
		spec.TrainFrac = 0.6
	}
	if spec.ValFrac <= 0 {
		spec.ValFrac = 0.2
	}
	if spec.TrainFrac+spec.ValFrac >= 1 {
		return nil, fmt.Errorf("datasets: train+val fractions %v+%v leave no test set", spec.TrainFrac, spec.ValFrac)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	n := spec.NumVertices
	community := assignCommunities(n, spec.Communities)

	// Edge budget: if symmetrizing, each generated undirected edge becomes
	// two directed ones, so halve the draw count.
	target := int(float64(n) * spec.AvgDegree)
	if spec.Undirected {
		target /= 2
	}
	if target < 1 {
		target = 1
	}
	edges := generateEdges(rng, n, target, spec.IntraFrac, community, spec.Communities)
	if spec.Undirected {
		edges = graph.Symmetrize(edges)
	}
	g, err := graph.NewCSR(n, edges)
	if err != nil {
		return nil, err
	}

	labels := make([]int32, n)
	for v, c := range community {
		labels[v] = c % int32(spec.NumClasses)
	}
	feats := synthesizeFeatures(rng, n, spec.FeatDim, spec.NumClasses, labels, spec.FeatureNoise)

	train, val, test := split(rng, n, spec.TrainFrac, spec.ValFrac)
	return &Dataset{
		Spec:       spec,
		G:          g,
		Features:   feats,
		Labels:     labels,
		NumClasses: spec.NumClasses,
		TrainIdx:   train,
		ValIdx:     val,
		TestIdx:    test,
		Community:  community,
	}, nil
}

// MustGenerate is Generate that panics on error; for registry specs that are
// valid by construction.
func MustGenerate(spec Spec) *Dataset {
	d, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return d
}

// assignCommunities gives each vertex a community via contiguous equal
// ranges. Contiguity matters: it mimics the locality real datasets have
// after the standard degree/cluster-ordered vertex relabeling.
func assignCommunities(n, k int) []int32 {
	community := make([]int32, n)
	size := (n + k - 1) / k
	for v := 0; v < n; v++ {
		c := v / size
		if c >= k {
			c = k - 1
		}
		community[v] = int32(c)
	}
	return community
}

// generateEdges draws target edges: a fraction intraFrac inside a uniformly
// chosen community (planted clusters) and the rest from a global R-MAT
// (power-law hubs).
func generateEdges(rng *rand.Rand, n, target int, intraFrac float64, community []int32, k int) []graph.Edge {
	edges := make([]graph.Edge, 0, target)
	size := (n + k - 1) / k
	for len(edges) < target {
		if rng.Float64() < intraFrac {
			c := rng.Intn(k)
			lo := c * size
			span := size
			if lo+span > n {
				span = n - lo
			}
			if span < 1 {
				continue
			}
			src, dst := DefaultRMAT.EdgeInRange(rng, lo, span)
			edges = append(edges, graph.Edge{Src: src, Dst: dst})
		} else {
			src, dst := DefaultRMAT.Edge(rng, n)
			edges = append(edges, graph.Edge{Src: src, Dst: dst})
		}
	}
	return edges
}

// synthesizeFeatures draws a random unit-ish centroid per class and emits
// centroid+noise per vertex, giving GraphSAGE a learnable signal.
func synthesizeFeatures(rng *rand.Rand, n, d, classes int, labels []int32, noise float64) *tensor.Matrix {
	if noise <= 0 {
		noise = 1.0
	}
	centroids := tensor.New(classes, d)
	tensor.RandomNormal(centroids, rng, 1.0)
	feats := tensor.New(n, d)
	for v := 0; v < n; v++ {
		c := centroids.Row(int(labels[v]))
		row := feats.Row(v)
		for j := range row {
			row[j] = c[j] + float32(rng.NormFloat64()*noise)
		}
	}
	return feats
}

// split shuffles vertex IDs and cuts train/val/test index sets.
func split(rng *rand.Rand, n int, trainFrac, valFrac float64) (train, val, test []int32) {
	perm := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	train = make([]int32, 0, nTrain)
	val = make([]int32, 0, nVal)
	test = make([]int32, 0, n-nTrain-nVal)
	for i, v := range perm {
		switch {
		case i < nTrain:
			train = append(train, int32(v))
		case i < nTrain+nVal:
			val = append(val, int32(v))
		default:
			test = append(test, int32(v))
		}
	}
	return train, val, test
}
