package datasets

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "t", NumVertices: 500, AvgDegree: 10, FeatDim: 8, NumClasses: 4, Seed: 42}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if a.G.NumEdges != b.G.NumEdges {
		t.Fatalf("edge counts differ: %d vs %d", a.G.NumEdges, b.G.NumEdges)
	}
	if a.Features.MaxAbsDiff(b.Features) != 0 {
		t.Fatal("features differ across identical seeds")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	d := MustGenerate(Spec{Name: "t", NumVertices: 1000, AvgDegree: 12, FeatDim: 16, NumClasses: 7, Seed: 1})
	if d.G.NumVertices != 1000 {
		t.Fatalf("vertices = %d", d.G.NumVertices)
	}
	if d.Features.Rows != 1000 || d.Features.Cols != 16 {
		t.Fatalf("features %dx%d", d.Features.Rows, d.Features.Cols)
	}
	if len(d.Labels) != 1000 {
		t.Fatalf("labels len %d", len(d.Labels))
	}
	for v, l := range d.Labels {
		if l < 0 || int(l) >= d.NumClasses {
			t.Fatalf("label %d of vertex %d out of range", l, v)
		}
	}
	got := d.G.AvgDegree()
	if math.Abs(got-12) > 2.5 {
		t.Fatalf("avg degree %v, want ≈12", got)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	d := MustGenerate(Spec{Name: "t", NumVertices: 800, AvgDegree: 5, FeatDim: 4, NumClasses: 3,
		TrainFrac: 0.5, ValFrac: 0.25, Seed: 9})
	seen := make([]int, 800)
	for _, idx := range [][]int32{d.TrainIdx, d.ValIdx, d.TestIdx} {
		for _, v := range idx {
			seen[v]++
		}
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d appears %d times across splits", v, c)
		}
	}
	if len(d.TrainIdx) != 400 || len(d.ValIdx) != 200 || len(d.TestIdx) != 200 {
		t.Fatalf("split sizes %d/%d/%d", len(d.TrainIdx), len(d.ValIdx), len(d.TestIdx))
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	d := MustGenerate(Spec{Name: "t", NumVertices: 300, AvgDegree: 8, FeatDim: 4, NumClasses: 3,
		Undirected: true, Seed: 5})
	// Every edge u→v must have a partner v→u (self-loops excluded).
	type pair struct{ a, b int32 }
	count := map[pair]int{}
	for _, e := range d.G.Edges() {
		count[pair{e.Src, e.Dst}]++
	}
	for p, c := range count {
		if p.a == p.b {
			continue
		}
		if count[pair{p.b, p.a}] != c {
			t.Fatalf("edge %v count %d has reverse count %d", p, c, count[pair{p.b, p.a}])
		}
	}
}

func TestFeaturesCarryClassSignal(t *testing.T) {
	// Features are class centroid + noise, so same-class vertices must be
	// closer on average than different-class vertices.
	d := MustGenerate(Spec{Name: "t", NumVertices: 600, AvgDegree: 5, FeatDim: 16, NumClasses: 4,
		FeatureNoise: 0.5, Seed: 13})
	rng := rand.New(rand.NewSource(99))
	var sameDist, diffDist float64
	var sameN, diffN int
	for trial := 0; trial < 4000; trial++ {
		a, b := rng.Intn(600), rng.Intn(600)
		if a == b {
			continue
		}
		var dist float64
		fa, fb := d.Features.Row(a), d.Features.Row(b)
		for j := range fa {
			diff := float64(fa[j] - fb[j])
			dist += diff * diff
		}
		if d.Labels[a] == d.Labels[b] {
			sameDist += dist
			sameN++
		} else {
			diffDist += dist
			diffN++
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Fatal("degenerate sampling")
	}
	if sameDist/float64(sameN) >= diffDist/float64(diffN) {
		t.Fatalf("same-class distance %v not below diff-class %v",
			sameDist/float64(sameN), diffDist/float64(diffN))
	}
}

func TestCommunityStructureRaisesIntraEdges(t *testing.T) {
	lo := MustGenerate(Spec{Name: "lo", NumVertices: 2000, AvgDegree: 10, FeatDim: 4, NumClasses: 8,
		Communities: 16, IntraFrac: 0.05, Seed: 3})
	hi := MustGenerate(Spec{Name: "hi", NumVertices: 2000, AvgDegree: 10, FeatDim: 4, NumClasses: 8,
		Communities: 16, IntraFrac: 0.9, Seed: 3})
	intraFrac := func(d *Dataset) float64 {
		intra := 0
		for _, e := range d.G.Edges() {
			if d.Community[e.Src] == d.Community[e.Dst] {
				intra++
			}
		}
		return float64(intra) / float64(d.G.NumEdges)
	}
	fLo, fHi := intraFrac(lo), intraFrac(hi)
	if fHi <= fLo+0.3 {
		t.Fatalf("intra-community fraction: lo=%v hi=%v — planted structure missing", fLo, fHi)
	}
}

func TestRMATPowerLawSkew(t *testing.T) {
	// R-MAT must produce hubs: max degree far above average.
	d := MustGenerate(Spec{Name: "t", NumVertices: 4096, AvgDegree: 16, FeatDim: 2, NumClasses: 2,
		IntraFrac: 0, Seed: 77})
	avg := d.G.AvgDegree()
	if float64(d.G.MaxDegree()) < 5*avg {
		t.Fatalf("max degree %d vs avg %v — degree distribution not skewed", d.G.MaxDegree(), avg)
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{NumVertices: 0, FeatDim: 4, NumClasses: 2},
		{NumVertices: 10, FeatDim: 0, NumClasses: 2},
		{NumVertices: 10, FeatDim: 4, NumClasses: 0},
		{NumVertices: 10, FeatDim: 4, NumClasses: 2, TrainFrac: 0.8, ValFrac: 0.3},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %d: expected error", i)
		}
	}
}

func TestRegistryLoadsAllDatasets(t *testing.T) {
	for _, name := range Names() {
		d, err := Load(name, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.G.NumVertices == 0 || d.G.NumEdges == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if d.Spec.Name != name {
			t.Fatalf("%s: spec name %q", name, d.Spec.Name)
		}
	}
}

// TestRegistryUnknownName pins Load's error contract: an unknown dataset
// name must fail (not panic) with a message that names the offender and
// lists every registered dataset, so a CLI typo is self-diagnosing.
func TestRegistryUnknownName(t *testing.T) {
	_, err := Load("no-such-dataset", 1)
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no-such-dataset") {
		t.Fatalf("error does not name the unknown dataset: %v", err)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list registered dataset %q: %v", name, err)
		}
	}
	// SpecFor is the same path the CLIs use for usage strings.
	if _, err := SpecFor("no-such-dataset", 1); err == nil {
		t.Fatal("SpecFor must reject unknown names too")
	}
}

func TestRegistryScale(t *testing.T) {
	small := MustLoad("am-sim", 0.25)
	big := MustLoad("am-sim", 0.5)
	if big.G.NumVertices != 2*small.G.NumVertices {
		t.Fatalf("scaling broken: %d vs %d", small.G.NumVertices, big.G.NumVertices)
	}
}

func TestRegistryShapeOrdering(t *testing.T) {
	// Reddit-sim must be the densest and highest-degree dataset; the
	// replication-factor and cache-reuse experiments depend on this.
	reddit := MustLoad("reddit-sim", 0.25)
	products := MustLoad("ogbn-products-sim", 0.25)
	if reddit.G.AvgDegree() <= products.G.AvgDegree() {
		t.Fatalf("reddit-sim degree %v must exceed products-sim %v",
			reddit.G.AvgDegree(), products.G.AvgDegree())
	}
	if reddit.G.Density() <= products.G.Density() {
		t.Fatalf("reddit-sim density %v must exceed products-sim %v",
			reddit.G.Density(), products.G.Density())
	}
}

func TestRMATEdgeInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		u, v := DefaultRMAT.EdgeInRange(rng, 100, 37)
		if u < 100 || u >= 137 || v < 100 || v >= 137 {
			t.Fatalf("edge (%d,%d) outside [100,137)", u, v)
		}
	}
}

func TestRMATNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 1000, 1023, 1025} {
		for i := 0; i < 500; i++ {
			u, v := DefaultRMAT.Edge(rng, n)
			if int(u) >= n || int(v) >= n || u < 0 || v < 0 {
				t.Fatalf("n=%d: edge (%d,%d) out of range", n, u, v)
			}
		}
	}
}
