package datasets

import (
	"fmt"
	"sort"
)

// The registry maps each benchmark dataset of Table 2 to a generator spec
// calibrated to its shape at a laptop-friendly base size. Scale multiplies
// the vertex count (degree is held constant, as real graph degree is an
// intrinsic property, not a function of sample size).
//
// Calibration targets, from Table 2 and §6.3 of the paper:
//
//	Reddit        — densest graph, avg degree 492, 602 feats, 41 classes,
//	                weak community structure → highest replication factor.
//	OGBN-Products — sparse, avg degree 50.5, 100 feats, 47 classes.
//	Proteins      — avg degree ~150, 128 feats, strong natural clusters
//	                (sequence homology) → lowest replication factor.
//	OGBN-Papers   — huge and sparse, avg degree ~14.5 directed, 128 feats.
//	AM            — small heterograph stand-in, 11 classes.
var registry = map[string]func(scale float64) Spec{
	"reddit-sim": func(s float64) Spec {
		return Spec{
			Name:        "reddit-sim",
			NumVertices: scaled(4096, s),
			AvgDegree:   96,
			FeatDim:     64,
			NumClasses:  41,
			Communities: 41,
			IntraFrac:   0.30,
			Undirected:  true,
			Seed:        101,
		}
	},
	"ogbn-products-sim": func(s float64) Spec {
		return Spec{
			Name:        "ogbn-products-sim",
			NumVertices: scaled(16384, s),
			AvgDegree:   24,
			FeatDim:     50,
			NumClasses:  47,
			Communities: 94,
			IntraFrac:   0.55,
			Undirected:  true,
			Seed:        102,
		}
	},
	"proteins-sim": func(s float64) Spec {
		return Spec{
			Name:        "proteins-sim",
			NumVertices: scaled(24576, s),
			AvgDegree:   32,
			FeatDim:     32,
			NumClasses:  64,
			Communities: 192,
			IntraFrac:   0.92,
			Undirected:  true,
			Seed:        103,
		}
	},
	"ogbn-papers-sim": func(s float64) Spec {
		return Spec{
			Name:        "ogbn-papers-sim",
			NumVertices: scaled(49152, s),
			AvgDegree:   14,
			FeatDim:     32,
			NumClasses:  32,
			Communities: 64,
			IntraFrac:   0.50,
			Undirected:  false,
			Seed:        104,
		}
	},
	"am-sim": func(s float64) Spec {
		return Spec{
			Name:        "am-sim",
			NumVertices: scaled(8192, s),
			AvgDegree:   6.4,
			FeatDim:     16,
			NumClasses:  11,
			Communities: 11,
			IntraFrac:   0.40,
			Undirected:  false,
			Seed:        105,
		}
	},
}

func scaled(base int, s float64) int {
	if s <= 0 {
		s = 1
	}
	n := int(float64(base) * s)
	if n < 16 {
		n = 16
	}
	return n
}

// Names returns the registered dataset names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SpecFor returns the generator spec for a registered dataset at a given
// scale (1.0 = base size).
func SpecFor(name string, scale float64) (Spec, error) {
	f, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("datasets: unknown dataset %q (known: %v)", name, Names())
	}
	return f(scale), nil
}

// Load generates a registered dataset at the given scale.
func Load(name string, scale float64) (*Dataset, error) {
	spec, err := SpecFor(name, scale)
	if err != nil {
		return nil, err
	}
	return Generate(spec)
}

// MustLoad is Load that panics on error; for benchmarks over the registry.
func MustLoad(name string, scale float64) *Dataset {
	d, err := Load(name, scale)
	if err != nil {
		panic(err)
	}
	return d
}
