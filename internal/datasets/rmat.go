// Package datasets synthesizes the GNN benchmark graphs of Table 2 of the
// DistGNN paper at configurable scale. The real datasets (Reddit,
// OGBN-Products, OGBN-Papers, Proteins, AM) are hundreds of millions of
// edges and not redistributable here, so each is replaced by a generator
// calibrated to the shape statistics the paper's evaluation depends on:
// vertex count, average degree, power-law degree skew, density, community
// structure (Proteins' sequence-homology clusters), feature width and class
// count. Labels come from a planted community model and features from noisy
// class centroids, so training accuracy is measurable end to end.
package datasets

import "math/rand"

// RMAT holds the recursive-quadrant probabilities of the R-MAT generator.
// The classic (0.57, 0.19, 0.19, 0.05) setting produces the heavy-tailed
// degree distributions real social/web graphs exhibit.
type RMAT struct {
	A, B, C float64 // D = 1-A-B-C
}

// DefaultRMAT is the standard power-law parameterization.
var DefaultRMAT = RMAT{A: 0.57, B: 0.19, C: 0.19}

// Edge draws one directed edge over the vertex ID range [0, n) using the
// recursive quadrant walk. n need not be a power of two; out-of-range draws
// are retried (rare: < 2× expected work for any n).
func (r RMAT) Edge(rng *rand.Rand, n int) (src, dst int32) {
	// Number of bits to cover n.
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for {
		var u, v int
		for i := 0; i < bits; i++ {
			p := rng.Float64()
			switch {
			case p < r.A:
				// top-left: no bits set
			case p < r.A+r.B:
				v |= 1 << i
			case p < r.A+r.B+r.C:
				u |= 1 << i
			default:
				u |= 1 << i
				v |= 1 << i
			}
		}
		if u < n && v < n {
			return int32(u), int32(v)
		}
	}
}

// EdgeInRange draws one edge with both endpoints in [lo, lo+span).
func (r RMAT) EdgeInRange(rng *rand.Rand, lo, span int) (src, dst int32) {
	u, v := r.Edge(rng, span)
	return u + int32(lo), v + int32(lo)
}
