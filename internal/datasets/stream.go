package datasets

import (
	"fmt"
	"math/rand"
	"time"

	"distgnn/internal/graph"
)

// stream.go synthesizes timestamped edge streams for the dynamic-graph
// serving path: R-MAT-drawn inserts (same degree skew as the static
// generators, so new edges land where real growth lands — on the hubs)
// arriving under a two-state Markov-modulated Poisson process. The MMPP
// alternates between a quiet state and a burst state, which is what ingest
// traffic actually looks like and what the abl-stream benchmark needs to
// stress compaction and cache invalidation under load spikes.

// EdgeEvent is one timestamped edge insert in a synthetic stream.
type EdgeEvent struct {
	At    time.Duration // arrival offset from stream start, strictly increasing
	Edge  graph.Edge
	Burst bool // true if the MMPP was in its burst state at arrival
}

// StreamConfig parameterizes EdgeStream. Zero values take the documented
// defaults; NumVertices and Events are required.
type StreamConfig struct {
	NumVertices int     // vertex ID range of drawn edges (required)
	Events      int     // number of edge events to draw (required)
	MeanRate    float64 // base arrival rate, events/sec (default 1000)
	QuietFactor float64 // quiet-state rate multiplier (default 0.25)
	BurstFactor float64 // burst-state rate multiplier (default 1.75)
	// SojournEvents is the mean number of events between MMPP state flips
	// (geometric sojourn, default 20).
	SojournEvents int
	Shape         RMAT  // edge shape; zero value means DefaultRMAT
	Seed          int64 // RNG seed; streams are deterministic in it
}

// EdgeStream draws a timestamped edge stream. Deterministic in cfg.Seed:
// the same config always yields the identical stream.
func EdgeStream(cfg StreamConfig) ([]EdgeEvent, error) {
	if cfg.NumVertices < 2 {
		return nil, fmt.Errorf("datasets: stream needs NumVertices ≥ 2, got %d", cfg.NumVertices)
	}
	if cfg.Events < 1 {
		return nil, fmt.Errorf("datasets: stream needs Events ≥ 1, got %d", cfg.Events)
	}
	if cfg.MeanRate == 0 {
		cfg.MeanRate = 1000
	}
	if cfg.MeanRate <= 0 {
		return nil, fmt.Errorf("datasets: stream MeanRate must be positive, got %g", cfg.MeanRate)
	}
	if cfg.QuietFactor == 0 {
		cfg.QuietFactor = 0.25
	}
	if cfg.BurstFactor == 0 {
		cfg.BurstFactor = 1.75
	}
	if cfg.SojournEvents == 0 {
		cfg.SojournEvents = 20
	}
	shape := cfg.Shape
	if shape == (RMAT{}) {
		shape = DefaultRMAT
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	flip := 1.0 / float64(cfg.SojournEvents)
	burst := false
	events := make([]EdgeEvent, cfg.Events)
	var at time.Duration
	for i := range events {
		if rng.Float64() < flip {
			burst = !burst
		}
		rate := cfg.MeanRate * cfg.QuietFactor
		if burst {
			rate = cfg.MeanRate * cfg.BurstFactor
		}
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if gap < time.Nanosecond {
			gap = time.Nanosecond // keep timestamps strictly increasing
		}
		at += gap
		src, dst := shape.Edge(rng, cfg.NumVertices)
		events[i] = EdgeEvent{At: at, Edge: graph.Edge{Src: src, Dst: dst}, Burst: burst}
	}
	return events, nil
}

// Batched groups a stream into insert batches of at most maxBatch events,
// cutting a batch whenever the gap to the next event exceeds maxGap — the
// shape an ingest frontend would POST to /update.
func Batched(events []EdgeEvent, maxBatch int, maxGap time.Duration) [][]EdgeEvent {
	if maxBatch < 1 {
		maxBatch = 1
	}
	var out [][]EdgeEvent
	var cur []EdgeEvent
	for _, ev := range events {
		if len(cur) > 0 && (len(cur) >= maxBatch || ev.At-cur[len(cur)-1].At > maxGap) {
			out = append(out, cur)
			cur = nil
		}
		cur = append(cur, ev)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
