package datasets

import (
	"reflect"
	"testing"
	"time"
)

func TestEdgeStreamDeterministic(t *testing.T) {
	cfg := StreamConfig{NumVertices: 256, Events: 500, Seed: 7}
	a, err := EdgeStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EdgeStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	cfg.Seed = 8
	c, err := EdgeStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestEdgeStreamShape(t *testing.T) {
	const n, events = 128, 2000
	evs, err := EdgeStream(StreamConfig{NumVertices: n, Events: events, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != events {
		t.Fatalf("got %d events, want %d", len(evs), events)
	}
	var bursts int
	for i, ev := range evs {
		if ev.Edge.Src < 0 || ev.Edge.Src >= n || ev.Edge.Dst < 0 || ev.Edge.Dst >= n {
			t.Fatalf("event %d edge %d→%d out of range [0,%d)", i, ev.Edge.Src, ev.Edge.Dst, n)
		}
		if ev.At <= 0 {
			t.Fatalf("event %d has non-positive timestamp %v", i, ev.At)
		}
		if i > 0 && ev.At <= evs[i-1].At {
			t.Fatalf("timestamps not strictly increasing at %d: %v then %v", i, evs[i-1].At, ev.At)
		}
		if ev.Burst {
			bursts++
		}
	}
	// The MMPP must actually alternate: both states visited, neither
	// dominating completely.
	if bursts == 0 || bursts == events {
		t.Fatalf("MMPP never alternated: %d/%d burst events", bursts, events)
	}
	// Mean inter-arrival in the burst state must be shorter than in the
	// quiet state (that is the whole point of the modulation).
	var burstGap, quietGap time.Duration
	var nb, nq int
	for i := 1; i < len(evs); i++ {
		gap := evs[i].At - evs[i-1].At
		if evs[i].Burst {
			burstGap += gap
			nb++
		} else {
			quietGap += gap
			nq++
		}
	}
	if nb == 0 || nq == 0 || burstGap/time.Duration(nb) >= quietGap/time.Duration(nq) {
		t.Fatalf("burst mean gap %v not below quiet mean gap %v",
			burstGap/time.Duration(nb), quietGap/time.Duration(nq))
	}
}

func TestEdgeStreamValidation(t *testing.T) {
	if _, err := EdgeStream(StreamConfig{NumVertices: 1, Events: 10}); err == nil {
		t.Fatal("accepted NumVertices < 2")
	}
	if _, err := EdgeStream(StreamConfig{NumVertices: 16, Events: 0}); err == nil {
		t.Fatal("accepted Events < 1")
	}
	if _, err := EdgeStream(StreamConfig{NumVertices: 16, Events: 1, MeanRate: -1}); err == nil {
		t.Fatal("accepted negative MeanRate")
	}
}

func TestBatched(t *testing.T) {
	evs, err := EdgeStream(StreamConfig{NumVertices: 64, Events: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	batches := Batched(evs, 16, 5*time.Millisecond)
	var total int
	for b, batch := range batches {
		if len(batch) == 0 || len(batch) > 16 {
			t.Fatalf("batch %d has %d events", b, len(batch))
		}
		total += len(batch)
	}
	if total != len(evs) {
		t.Fatalf("batches hold %d events, stream has %d", total, len(evs))
	}
	// Order is preserved across the batch boundaries.
	var last time.Duration
	for _, batch := range batches {
		for _, ev := range batch {
			if ev.At <= last {
				t.Fatal("batching reordered events")
			}
			last = ev.At
		}
	}
}
