package featstore

import (
	"hash/maphash"
	"sync"

	"distgnn/internal/cachesim"
)

// CacheEntryOverhead is the bookkeeping charge added to every entry's
// payload size: list element, map slot, slice header. It keeps the byte
// budget honest for many small entries, and is exported so budget math in
// callers and tests can account for it.
const CacheEntryOverhead = 64

// defaultCacheShards spreads lock contention across independent LRU cores.
// 16 shards keep a 16-worker closed loop essentially uncontended.
const defaultCacheShards = 16

// CacheStats is a point-in-time snapshot of one cache's counters, surfaced
// verbatim in the serve layer's /stats endpoint.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	UsedBytes int64 `json:"used_bytes"`
	CapBytes  int64 `json:"capacity_bytes"`
}

// HitRate returns hits/(hits+misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is the concurrency-safe LRU of the feature-sourcing plane: the
// cachesim generic core behind shard locks, byte-budgeted, with
// hit/miss/eviction counters. A nil *Cache is a valid disabled cache (every
// Get misses silently, Put is a no-op) — the cold-path arm of the serving
// benchmark.
type Cache[K comparable, V any] struct {
	seed   maphash.Seed
	shards []cacheShard[K, V]
}

type cacheShard[K comparable, V any] struct {
	mu                            sync.Mutex
	core                          *cachesim.Core[K, V]
	hits, misses, puts, evictions int64
}

// NewCache builds a sharded cache with a total byte budget split evenly
// across shards. A non-positive budget returns nil — the disabled cache.
// shards ≤ 0 selects the default shard count.
func NewCache[K comparable, V any](capacityBytes int64, shards int) *Cache[K, V] {
	if capacityBytes <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = defaultCacheShards
	}
	// Power-of-two shard count so the hash folds with a mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	// Split in int64 (int(capacityBytes) truncates on 32-bit platforms) and
	// give the division remainder to shard 0 so the shard capacities sum to
	// exactly the requested budget.
	per := capacityBytes / int64(n)
	if per < 1 {
		n = 1
		per = capacityBytes
	}
	rem := capacityBytes - per*int64(n)
	c := &Cache[K, V]{seed: maphash.MakeSeed(), shards: make([]cacheShard[K, V], n)}
	for i := range c.shards {
		cap := per
		if i == 0 {
			cap += rem
		}
		c.shards[i].core = cachesim.NewCore[K, V](int(cap))
	}
	return c
}

// Reset discards every entry while keeping capacities and cumulative
// counters — the post-/reload invalidation that stops a hot-swapped model
// from serving the old model's cached embeddings.
func (c *Cache[K, V]) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.core = cachesim.NewCore[K, V](s.core.Cap())
		s.mu.Unlock()
	}
}

func (c *Cache[K, V]) shard(key K) *cacheShard[K, V] {
	h := maphash.Comparable(c.seed, key)
	return &c.shards[h&uint64(len(c.shards)-1)]
}

// Get returns the cached value for key, promoting it to most recent.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.core.Get(key)
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return v, ok
}

// Put stores value under key, charging payloadBytes plus a fixed per-entry
// overhead against the shard's budget and evicting LRU entries to fit.
func (c *Cache[K, V]) Put(key K, value V, payloadBytes int) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	ev, _ := s.core.Put(key, value, payloadBytes+CacheEntryOverhead)
	s.puts++
	s.evictions += int64(ev)
	s.mu.Unlock()
}

// Remove deletes key if resident and reports whether an entry was
// removed. Targeted invalidation for the mutation plane: unlike Reset it
// touches only the named key, and removals are not counted as evictions
// (the eviction counter keeps meaning "pushed out by the byte budget").
func (c *Cache[K, V]) Remove(key K) bool {
	if c == nil {
		return false
	}
	s := c.shard(key)
	s.mu.Lock()
	ok := s.core.Remove(key)
	s.mu.Unlock()
	return ok
}

// Stats aggregates counters across shards.
func (c *Cache[K, V]) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	var out CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Puts += s.puts
		out.Evictions += s.evictions
		out.Entries += s.core.Len()
		out.UsedBytes += int64(s.core.Used())
		out.CapBytes += int64(s.core.Cap())
		s.mu.Unlock()
	}
	return out
}
