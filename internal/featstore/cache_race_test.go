package featstore

import (
	"sync"
	"testing"

	"distgnn/internal/comm"
)

// TestCacheCountersReconcileUnderRace hammers one Cache from many
// goroutines with a working set far above capacity and then checks the
// counters reconcile exactly: every Get is a hit or a miss, every Put is
// counted, and entries plus evictions never exceed puts. Run under -race
// this also exercises the shard-lock discipline of the hot path.
func TestCacheCountersReconcileUnderRace(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 2000
		keySpace   = 512
	)
	// Budget for ~32 entries so eviction churn is guaranteed.
	c := NewCache[int32, []float32](32*(64+CacheEntryOverhead), 4)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Deterministic per-goroutine walk; overlapping key ranges so
			// goroutines contend on the same cache shards.
			key := int32(g * 37)
			for i := 0; i < opsPerG; i++ {
				key = (key*larger + 17) % keySpace
				if _, ok := c.Get(key); !ok {
					c.Put(key, make([]float32, 16), 64)
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	totalGets := int64(goroutines * opsPerG)
	if st.Hits+st.Misses != totalGets {
		t.Fatalf("hits %d + misses %d = %d, want %d gets",
			st.Hits, st.Misses, st.Hits+st.Misses, totalGets)
	}
	// Each miss triggered exactly one Put in the loop above.
	if st.Puts != st.Misses {
		t.Fatalf("puts %d != misses %d", st.Puts, st.Misses)
	}
	if int64(st.Entries)+st.Evictions > st.Puts {
		t.Fatalf("entries %d + evictions %d exceed puts %d",
			st.Entries, st.Evictions, st.Puts)
	}
	if st.Evictions == 0 {
		t.Fatalf("working set %d× capacity produced no evictions: %+v", keySpace/32, st)
	}
	if st.UsedBytes > st.CapBytes {
		t.Fatalf("used %d exceeds capacity %d", st.UsedBytes, st.CapBytes)
	}
}

const larger = 31 // multiplier for the key walk above

// TestShardedGatherCountersReconcileUnderRace runs concurrent gathers on
// every rank of a sharded store fleet and checks the halo counters
// reconcile: every halo position is a hit or a miss, each miss maps to one
// fetched vertex and one cache put, and the fleet-wide fetched totals equal
// the fleet-wide served totals (vertices and bytes).
func TestShardedGatherCountersReconcileUnderRace(t *testing.T) {
	const (
		n, dim, shards  = 64, 8, 4
		gathersPerG     = 25
		goroutinesPerSt = 3
	)
	feats := testMatrix(n, dim, 7)
	owners := ownersRoundRobin(n, shards)
	tr := comm.NewProcTransport(shards)
	stores := make([]*Sharded, shards)
	for r := range stores {
		st, err := NewSharded(ShardedConfig{
			Rank: r, Shards: shards, Transport: tr,
			Owners: owners, Features: feats, CacheBytes: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = st
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()

	frontier := []int32{0, 1, 2, 3, 17, 33, 63, 5, 5, 40}
	haloPos := make([]int64, shards) // halo positions per gather, by rank
	for r := range haloPos {
		for _, v := range frontier {
			if owners[v] != int32(r) {
				haloPos[r]++
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, shards*goroutinesPerSt)
	for r, st := range stores {
		for g := 0; g < goroutinesPerSt; g++ {
			wg.Add(1)
			go func(slot int, st *Sharded) {
				defer wg.Done()
				for i := 0; i < gathersPerG; i++ {
					if _, err := st.Gather(frontier); err != nil {
						errs[slot] = err
						return
					}
				}
			}(r*goroutinesPerSt+g, st)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var fetchedVerts, servedVerts, fetchedBytes, servedBytes int64
	for r, st := range stores {
		s := st.Stats()
		wantLookups := haloPos[r] * gathersPerG * goroutinesPerSt
		if s.HaloHits+s.HaloMisses != wantLookups {
			t.Fatalf("rank %d: hits %d + misses %d != %d halo lookups",
				r, s.HaloHits, s.HaloMisses, wantLookups)
		}
		// Every miss is fetched once and put into the remote cache once.
		if s.HaloFetchedVertices != s.HaloMisses {
			t.Fatalf("rank %d: fetched %d vertices for %d misses",
				r, s.HaloFetchedVertices, s.HaloMisses)
		}
		if s.RemoteCache.Puts != s.HaloMisses {
			t.Fatalf("rank %d: cache puts %d != halo misses %d",
				r, s.RemoteCache.Puts, s.HaloMisses)
		}
		if s.RemoteCache.Hits != s.HaloHits || s.RemoteCache.Misses != s.HaloMisses {
			t.Fatalf("rank %d: cache counters %d/%d diverge from halo counters %d/%d",
				r, s.RemoteCache.Hits, s.RemoteCache.Misses, s.HaloHits, s.HaloMisses)
		}
		if s.HaloFetchedBytes != 4*int64(dim)*s.HaloFetchedVertices {
			t.Fatalf("rank %d: fetched bytes %d for %d vertices × %d features",
				r, s.HaloFetchedBytes, s.HaloFetchedVertices, dim)
		}
		fetchedVerts += s.HaloFetchedVertices
		servedVerts += s.PeerServedVertices
		fetchedBytes += s.HaloFetchedBytes
		servedBytes += s.PeerServedBytes
	}
	if fetchedVerts != servedVerts {
		t.Fatalf("fleet fetched %d vertices but served %d", fetchedVerts, servedVerts)
	}
	if fetchedBytes != servedBytes {
		t.Fatalf("fleet fetched %d bytes but served %d", fetchedBytes, servedBytes)
	}
	if fetchedVerts == 0 {
		t.Fatal("round-robin owners produced no halo traffic")
	}
}
