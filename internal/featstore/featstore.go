// Package featstore is the shared feature-sourcing plane: it answers "give
// me the raw input-feature rows for this frontier of global vertex IDs" for
// every subsystem that consumes vertex features — the serving engines
// (internal/serve) and the sampled mini-batch trainers (internal/minibatch)
// read features through the same three building blocks:
//
//   - a resident slab (Local): the in-process feature store, fp32 matrix or
//     once-rounded bf16, optionally fronted by a byte-budgeted LRU;
//   - an owner-split sharded store (Sharded): each rank materializes only
//     the feature rows of the vertices it owns, frontier positions owned by
//     peers become one batched halo fetch per owner rank over the
//     comm.ReqRep request/reply plane, and fetched rows land in a per-rank
//     sharded LRU (Cache) so repeat frontier traffic is absorbed locally;
//   - the Cache itself, the concurrency-safe byte-budgeted LRU promoted
//     from internal/cachesim, shared by both sources and reused by serve
//     for its embedding cache.
//
// The package exists so distributed training and distributed serving are
// the same code path (the ROADMAP's "billion-edge-scale training and
// serving" refactor): the sharded serving engine and the sharded sampled
// trainer differ only in what they do with the gathered rows. The contract
// every Source honors is exactness — a gather returns the same fp32 bits
// the resident matrix holds, regardless of which rank the row lives on,
// whether it was cached, or how the frontier was batched. That contract is
// what lets the cross-shard serving conformance harness and the
// distributed-minibatch conformance harness pin bit-identical results
// across 1/2/4 ranks and both comm fabrics.
package featstore

import "distgnn/internal/tensor"

// Source materializes the raw input-feature rows for a frontier of global
// vertex IDs: row i of the result is the feature vector of frontier[i].
// Implementations must be exact (fp32 bits identical to the backing store)
// and safe for concurrent use.
type Source interface {
	// Gather returns a freshly allocated |frontier|×Cols matrix whose row i
	// is the feature vector of global vertex frontier[i].
	Gather(frontier []int32) (*tensor.Matrix, error)
	// Cols returns the feature width.
	Cols() int
}
