package featstore

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"distgnn/internal/comm"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

func testMatrix(rows, cols int, seed int64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// Local gathers must return the backing matrix's exact bits, cached or not.
func TestLocalGatherExact(t *testing.T) {
	feats := testMatrix(50, 8, 1)
	frontier := []int32{3, 0, 49, 3, 17}
	for _, cached := range []bool{false, true} {
		var c *Cache[int32, []float32]
		if cached {
			c = NewCache[int32, []float32](1<<20, 0)
		}
		lf := NewLocal(spmm.RowsOf(feats), c)
		if lf.Cols() != 8 {
			t.Fatalf("Cols = %d, want 8", lf.Cols())
		}
		for pass := 0; pass < 2; pass++ { // second pass hits the cache
			x, err := lf.Gather(frontier)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range frontier {
				for j := 0; j < 8; j++ {
					got, want := x.Row(i)[j], feats.Row(int(v))[j]
					if math.Float32bits(got) != math.Float32bits(want) {
						t.Fatalf("cached=%v pass=%d row %d col %d: %v != %v", cached, pass, i, j, got, want)
					}
				}
			}
		}
	}
}

// ownersRoundRobin assigns vertex v to shard v%k — a worst-case split where
// every gather touches every shard.
func ownersRoundRobin(n, k int) []int32 {
	out := make([]int32, n)
	for v := range out {
		out[v] = int32(v % k)
	}
	return out
}

// A sharded gather must return the same fp32 bits as reading the full
// matrix directly, from every rank, with and without the halo cache.
func TestShardedGatherExact(t *testing.T) {
	const n, dim, shards = 60, 6, 4
	feats := testMatrix(n, dim, 2)
	owners := ownersRoundRobin(n, shards)

	for _, cacheBytes := range []int64{0, 1 << 20} {
		// Fresh fabric per arm: ReqRep responder goroutines outlive Close
		// (they exit with the transport), so reusing one transport would let
		// the previous arm's stores answer this arm's fetches.
		tr := comm.NewProcTransport(shards)
		stores := make([]*Sharded, shards)
		for r := range stores {
			st, err := NewSharded(ShardedConfig{
				Rank: r, Shards: shards, Transport: tr,
				Owners: owners, Features: feats, CacheBytes: cacheBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			stores[r] = st
		}

		frontier := []int32{5, 0, 59, 13, 5, 42, 1, 2, 3}
		var wg sync.WaitGroup
		errs := make([]error, shards)
		for r, st := range stores {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for pass := 0; pass < 2; pass++ { // second pass exercises the halo cache
					x, err := st.Gather(frontier)
					if err != nil {
						errs[r] = err
						return
					}
					for i, v := range frontier {
						for j := 0; j < dim; j++ {
							if math.Float32bits(x.Row(i)[j]) != math.Float32bits(feats.Row(int(v))[j]) {
								t.Errorf("rank %d pass %d: row %d col %d mismatch", r, pass, i, j)
								return
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}

		st0 := stores[0].Stats()
		if st0.OwnedVertices != n/shards {
			t.Fatalf("rank 0 owns %d vertices, want %d", st0.OwnedVertices, n/shards)
		}
		if cacheBytes > 0 {
			if st0.HaloHits == 0 {
				t.Fatalf("second gather pass produced no halo cache hits: %+v", st0)
			}
			if st0.HaloHitRate() <= 0 || st0.HaloHitRate() > 1 {
				t.Fatalf("halo hit rate %v outside (0,1]", st0.HaloHitRate())
			}
		} else if st0.HaloHits != 0 {
			t.Fatalf("disabled cache recorded halo hits: %+v", st0)
		}
		if st0.PeerServedFetches == 0 {
			t.Fatalf("rank 0 served no peer fetches: %+v", st0)
		}
		for _, st := range stores {
			st.Close()
		}
	}
}

// A fetch for a vertex the target rank does not own must error, not return
// garbage rows.
func TestShardedGatherRejectsWrongOwner(t *testing.T) {
	const n, dim, shards = 20, 4, 2
	feats := testMatrix(n, dim, 3)
	owners := ownersRoundRobin(n, shards)
	tr := comm.NewProcTransport(shards)
	stores := make([]*Sharded, shards)
	for r := range stores {
		st, err := NewSharded(ShardedConfig{
			Rank: r, Shards: shards, Transport: tr,
			Owners: owners, Features: feats,
		})
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = st
		defer st.Close()
	}
	// Lie about ownership: claim rank 1 owns vertex 0 (it owns odd IDs).
	badOwners := append([]int32(nil), owners...)
	badOwners[0] = 1
	if _, err := stores[0].GatherSplit([]int32{0}, SplitByOwner([]int32{0}, badOwners, shards)); err == nil {
		t.Fatal("gather with a wrong owner table succeeded")
	}
}

func TestNewShardedValidation(t *testing.T) {
	feats := testMatrix(10, 2, 4)
	tr := comm.NewProcTransport(2)
	owners := ownersRoundRobin(10, 2)
	cases := []ShardedConfig{
		{Rank: 0, Shards: 0, Transport: tr, Owners: owners, Features: feats},
		{Rank: 2, Shards: 2, Transport: tr, Owners: owners, Features: feats},
		{Rank: 0, Shards: 2, Owners: owners, Features: feats},
		{Rank: 0, Shards: 3, Transport: tr, Owners: owners, Features: feats},
		{Rank: 0, Shards: 2, Transport: tr, Owners: owners[:5], Features: feats},
		{Rank: 0, Shards: 2, Transport: tr, Owners: owners},
		{Rank: 0, Shards: 2, Transport: tr, Owners: ownersRoundRobin(10, 3), Features: feats},
	}
	for i, cfg := range cases {
		if _, err := NewSharded(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
