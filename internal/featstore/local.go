package featstore

import (
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// Local is the single-process Source: every feature row is resident in this
// process (an fp32 matrix or a once-rounded bf16 slab behind spmm.FeatRows),
// optionally fronted by a byte-budgeted LRU. With the whole store resident
// the cache cannot beat a direct row copy — it is the stand-in for the
// remote/out-of-core feature fetch a deployment at real scale pays per miss
// (the paper's feature-locality cost; Sharded pays it for real over the
// comm fabric), and its hit/miss counters measure exactly the reuse such a
// tier would capture.
type Local struct {
	feats spmm.FeatRows
	cache *Cache[int32, []float32]
}

// NewLocal builds a Local source over a resident feature store. cache may
// be nil (no caching — every gather reads the store directly).
func NewLocal(feats spmm.FeatRows, cache *Cache[int32, []float32]) *Local {
	return &Local{feats: feats, cache: cache}
}

// Cols returns the feature width.
func (lf *Local) Cols() int { return lf.feats.Cols() }

// CacheStats snapshots the front cache's counters (zero when disabled).
func (lf *Local) CacheStats() CacheStats { return lf.cache.Stats() }

// Gather materializes the frontier's feature rows, serving rows from the
// cache when resident. bf16-backed stores decode on load (decode is exact),
// so the gathered fp32 bits equal the rounded slab's regardless of cache
// state.
func (lf *Local) Gather(frontier []int32) (*tensor.Matrix, error) {
	x := tensor.New(len(frontier), lf.feats.Cols())
	for i, gv := range frontier {
		row := x.Row(i)
		if cached, ok := lf.cache.Get(gv); ok {
			copy(row, cached)
			continue
		}
		lf.feats.CopyRow(row, int(gv))
		lf.cache.Put(gv, append([]float32(nil), row...), 4*len(row))
	}
	return x, nil
}
