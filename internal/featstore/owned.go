package featstore

// SplitByOwner partitions frontier positions by owning shard: the result's
// entry p lists every index i with owners[frontier[i]] == p, in frontier
// order. k is the shard count. Callers validate that owners covers every
// frontier vertex with values in [0, k). It is the ownership-resolution
// half of a sharded gather, exposed so callers that know the split ahead of
// time (the exact-mode serving path, the sampled trainer's prefetcher) can
// compute it once and hand it to GatherSplit.
func SplitByOwner(frontier []int32, owners []int32, k int) [][]int32 {
	out := make([][]int32, k)
	for i, v := range frontier {
		out[owners[v]] = append(out[owners[v]], int32(i))
	}
	return out
}
