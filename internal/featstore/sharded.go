package featstore

import (
	"fmt"
	"sync/atomic"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/obs"
	"distgnn/internal/parallel"
	"distgnn/internal/tensor"
)

// Sharded is the distributed Source: each rank materializes a compact slab
// of exactly the feature rows it owns (one owner per vertex, derived from
// the deterministic partitioning by every rank independently), and serves
// everything else over the comm fabric. A gather splits the frontier by
// owner: local positions copy straight out of the slab, halo positions are
// served from the per-rank LRU or batched into one comm.ReqRep fetch per
// owner rank, fanned out concurrently. Only feature *sourcing* is
// distributed — the gathered fp32 bits are identical to a single-process
// gather, which is the contract both the sharded serving engine and the
// sharded sampled trainer build their bit-identity pins on.
//
// Construction registers this rank as a responder on the transport's
// reserved serve tag range (comm.ServeTagBase), so peers' fetches are
// answered for the lifetime of the store; Close stops issuing new fetches
// and reaps the endpoint. All methods are safe for concurrent use.
type Sharded struct {
	rank, shards int
	owners       []int32
	slab         *tensor.Matrix // owned feature rows, compact
	slabRow      []int32        // global vertex → slab row, -1 when not owned
	featDim      int
	rr           *comm.ReqRep
	remote       *Cache[int32, []float32]
	tracer       *obs.Tracer // nil disables peer-served trace records
	// updateHandler receives mutation frames multiplexed onto the fetch
	// endpoint (the transport allows one ReqRep responder per rank, so the
	// update plane shares it via the opcode word). Nil until the serving
	// layer registers one with SetUpdateHandler.
	updateHandler atomic.Pointer[comm.ReqRepTracedHandler]

	haloHits     atomic.Int64
	haloMisses   atomic.Int64
	haloFetches  atomic.Int64
	haloVertices atomic.Int64
	haloBytes    atomic.Int64
	served       atomic.Int64
	servedVerts  atomic.Int64
	servedBytes  atomic.Int64
}

// ShardedConfig configures one rank's slice of a sharded feature store.
type ShardedConfig struct {
	// Rank is this store's rank; Shards the fleet size.
	Rank, Shards int
	// Transport is the established comm fabric over exactly Shards ranks —
	// a single-rank endpoint (TCP) or the shared in-process transport. It
	// stays owned by the caller; Close does not close it.
	Transport comm.Transport
	// Owners maps every global vertex ID to its owner rank in [0, Shards).
	// Every rank must derive the identical table (it is a pure function of
	// the deterministic partitioning).
	Owners []int32
	// Features is the full fp32 feature matrix this rank slices its owned
	// rows from at construction. Everything after that copy reads the slab
	// or the fabric, never Features — a deployment with a real feature
	// store would materialize only the owned slice.
	Features *tensor.Matrix
	// CacheBytes budgets the per-rank LRU of halo features fetched from
	// peers; ≤ 0 disables caching (every halo position fetches).
	CacheBytes int64
	// Tracer, when set, records a "halo" trace entry for every traced
	// fetch this rank answers, under the requester's trace ID — the
	// cross-rank half of end-to-end request attribution. Optional.
	Tracer *obs.Tracer
}

// ShardedStats is a snapshot of one sharded store's counters.
type ShardedStats struct {
	// OwnedVertices is the number of feature rows resident in the slab.
	OwnedVertices int
	// HaloHits/HaloMisses count gather-time halo lookups served from the
	// remote cache vs fetched over the fabric. HaloFetches is the RPC count
	// (one per owner rank per gather); HaloFetchedVertices the vertex rows
	// those RPCs carried.
	HaloHits            int64
	HaloMisses          int64
	HaloFetches         int64
	HaloFetchedVertices int64
	// HaloFetchedBytes is the reply payload volume those RPCs carried in.
	HaloFetchedBytes int64
	// PeerServedFetches/PeerServedVertices count the fetch RPCs this rank
	// answered for its peers; PeerServedBytes the reply payload volume out.
	PeerServedFetches  int64
	PeerServedVertices int64
	PeerServedBytes    int64
	// RemoteCache snapshots the halo LRU.
	RemoteCache CacheStats
}

// HaloHitRate returns HaloHits/(HaloHits+HaloMisses), 0 when idle.
func (s ShardedStats) HaloHitRate() float64 {
	if s.HaloHits+s.HaloMisses == 0 {
		return 0
	}
	return float64(s.HaloHits) / float64(s.HaloHits+s.HaloMisses)
}

// NewSharded materializes this rank's owned feature slice and starts
// answering peers' halo fetches on the transport's reserved tag range.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("featstore: shard count must be ≥1, got %d", cfg.Shards)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Shards {
		return nil, fmt.Errorf("featstore: rank %d outside [0,%d)", cfg.Rank, cfg.Shards)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("featstore: sharded store needs a comm.Transport")
	}
	if cfg.Transport.Size() != cfg.Shards {
		return nil, fmt.Errorf("featstore: transport spans %d ranks, shard fleet has %d",
			cfg.Transport.Size(), cfg.Shards)
	}
	if cfg.Features == nil {
		return nil, fmt.Errorf("featstore: sharded store needs the feature matrix")
	}
	if len(cfg.Owners) != cfg.Features.Rows {
		return nil, fmt.Errorf("featstore: owner table covers %d vertices, features have %d rows",
			len(cfg.Owners), cfg.Features.Rows)
	}
	st := &Sharded{
		rank: cfg.Rank, shards: cfg.Shards,
		owners:  cfg.Owners,
		featDim: cfg.Features.Cols,
		slabRow: make([]int32, cfg.Features.Rows),
		remote:  NewCache[int32, []float32](cfg.CacheBytes, 0),
		tracer:  cfg.Tracer,
	}

	// Materialize this rank's feature slice. Everything after this copy
	// reads the slab, never cfg.Features — the store's view of non-owned
	// features exists only behind the fetch protocol.
	owned := 0
	for v := range st.slabRow {
		o := cfg.Owners[v]
		if o < 0 || int(o) >= cfg.Shards {
			return nil, fmt.Errorf("featstore: vertex %d owned by shard %d outside [0,%d)",
				v, o, cfg.Shards)
		}
		if o == int32(cfg.Rank) {
			st.slabRow[v] = int32(owned)
			owned++
		} else {
			st.slabRow[v] = -1
		}
	}
	st.slab = tensor.New(owned, st.featDim)
	for v, row := range st.slabRow {
		if row >= 0 {
			copy(st.slab.Row(int(row)), cfg.Features.Row(v))
		}
	}

	var err error
	st.rr, err = comm.NewReqRepTraced(cfg.Transport, cfg.Rank, st.handleFetch)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Rank returns this store's rank.
func (st *Sharded) Rank() int { return st.rank }

// Shards returns the fleet size.
func (st *Sharded) Shards() int { return st.shards }

// Cols returns the feature width.
func (st *Sharded) Cols() int { return st.featDim }

// OwnedVertices returns how many feature rows this rank holds resident.
func (st *Sharded) OwnedVertices() int { return st.slab.Rows }

// Owners returns the shared owner table (global vertex ID → owner rank).
// Callers must treat it as read-only.
func (st *Sharded) Owners() []int32 { return st.owners }

// Close stops issuing new halo fetches and reaps the request/reply
// endpoint. The transport stays owned by the caller. Idempotent.
func (st *Sharded) Close() { st.rr.Close() }

// InvalidateRemote drops the given vertices from the halo LRU and returns
// how many entries were actually resident — the mutation plane's targeted
// invalidation (edge inserts do not change raw features, but dropping the
// touched rows keeps the cache contract simple and auditable).
func (st *Sharded) InvalidateRemote(ids []int32) int {
	n := 0
	for _, v := range ids {
		if st.remote.Remove(v) {
			n++
		}
	}
	return n
}

// Stats snapshots the store's counters.
func (st *Sharded) Stats() ShardedStats {
	return ShardedStats{
		OwnedVertices:       st.slab.Rows,
		HaloHits:            st.haloHits.Load(),
		HaloMisses:          st.haloMisses.Load(),
		HaloFetches:         st.haloFetches.Load(),
		HaloFetchedVertices: st.haloVertices.Load(),
		HaloFetchedBytes:    st.haloBytes.Load(),
		PeerServedFetches:   st.served.Load(),
		PeerServedVertices:  st.servedVerts.Load(),
		PeerServedBytes:     st.servedBytes.Load(),
		RemoteCache:         st.remote.Stats(),
	}
}

// updateOpcode marks a request frame as a graph-mutation message rather
// than a halo fetch. Fetch frames are vertex-ID lists and every vertex ID
// is ≥ 0, so a negative leading word is unambiguous.
const updateOpcode int32 = -2

// SetUpdateHandler registers the receiver for mutation frames sent with
// CallUpdate. The serving layer installs its update-apply hook here after
// construction; frames arriving before registration are rejected with an
// error (the sender retries or fails loudly — never silently dropped).
func (st *Sharded) SetUpdateHandler(fn comm.ReqRepTracedHandler) {
	st.updateHandler.Store(&fn)
}

// CallUpdate sends a mutation frame (bit-packed int32 payload) to peer's
// update handler over the shared fetch endpoint and returns the reply.
func (st *Sharded) CallUpdate(peer int, trace uint64, payload []int32) ([]float32, error) {
	frame := make([]int32, 0, len(payload)+1)
	frame = append(frame, updateOpcode)
	frame = append(frame, payload...)
	return st.rr.CallTraced(peer, trace, comm.Int32sToF32(frame))
}

// handleFetch answers a peer's halo feature fetch: the request is vertex
// IDs (bit-packed int32s), the reply their owned feature rows concatenated
// in request order. A nonzero trace ID (the requester's) produces a "halo"
// trace record on this rank's tracer, so a tail request's halo hops show up
// in the owner rank's ring under the same ID the frontend minted.
// Mutation frames (leading updateOpcode word) are dispatched to the
// registered update handler instead.
func (st *Sharded) handleFetch(from int, trace uint64, req []float32) ([]float32, error) {
	start := time.Now()
	ids := comm.F32ToInt32s(req)
	if len(ids) > 0 && ids[0] == updateOpcode {
		fn := st.updateHandler.Load()
		if fn == nil {
			return nil, fmt.Errorf("featstore: rank %d has no update handler registered (frame from rank %d)",
				st.rank, from)
		}
		return (*fn)(from, trace, req[1:])
	}
	out := make([]float32, 0, len(ids)*st.featDim)
	for _, v := range ids {
		if v < 0 || int(v) >= len(st.slabRow) || st.slabRow[v] < 0 {
			return nil, fmt.Errorf("featstore: rank %d does not own vertex %d (fetch from rank %d)",
				st.rank, v, from)
		}
		out = append(out, st.slab.Row(int(st.slabRow[v]))...)
	}
	st.served.Add(1)
	st.servedVerts.Add(int64(len(ids)))
	st.servedBytes.Add(int64(4 * len(out)))
	if trace != 0 && st.tracer.Enabled() {
		d := time.Since(start)
		st.tracer.Record(obs.Trace{
			TraceID:  obs.FormatTraceID(trace),
			Endpoint: "halo_fetch",
			Vertex:   -1,
			Peer:     from,
			Status:   200,
			StartNs:  start.UnixNano(),
			DurUs:    d.Microseconds(),
			Spans: []obs.Span{{
				Name:  fmt.Sprintf("serve_fetch_%dv", len(ids)),
				DurUs: d.Microseconds(),
			}},
		})
	}
	return out, nil
}

// Gather materializes the frontier's feature rows: local positions from the
// slab, halo positions from the cache or the fabric.
func (st *Sharded) Gather(frontier []int32) (*tensor.Matrix, error) {
	return st.GatherSplit(frontier, SplitByOwner(frontier, st.owners, st.shards))
}

// GatherSplit is Gather with the owner split precomputed (split[p] lists
// the frontier positions owned by rank p, as minibatch.SplitByOwner
// returns) — for callers that resolve ownership once per request and reuse
// it. Halo positions are served from the remote cache or batched into one
// fetch per owner rank, fanned out concurrently.
func (st *Sharded) GatherSplit(frontier []int32, split [][]int32) (*tensor.Matrix, error) {
	return st.GatherSplitTraced(frontier, split, nil)
}

// GatherSplitTraced is GatherSplit with request tracing: a non-nil tc gets
// one halo_rtt_rank<p> span per peer fetch, and tc's trace ID rides the
// fetch frames so owner ranks attribute the served work to the same
// request. The gathered bits are identical either way — tracing only
// observes.
func (st *Sharded) GatherSplitTraced(frontier []int32, split [][]int32, tc *obs.TraceCtx) (*tensor.Matrix, error) {
	x := tensor.New(len(frontier), st.featDim)

	for _, i := range split[st.rank] {
		copy(x.Row(int(i)), st.slab.Row(int(st.slabRow[frontier[i]])))
	}

	var peers []int
	var reqs [][]float32
	var missPos [][]int32
	for p := 0; p < st.shards; p++ {
		if p == st.rank || len(split[p]) == 0 {
			continue
		}
		var miss []int32
		for _, i := range split[p] {
			v := frontier[i]
			if row, ok := st.remote.Get(v); ok {
				st.haloHits.Add(1)
				copy(x.Row(int(i)), row)
			} else {
				st.haloMisses.Add(1)
				miss = append(miss, i)
			}
		}
		if len(miss) == 0 {
			continue
		}
		ids := make([]int32, len(miss))
		for j, i := range miss {
			ids[j] = frontier[i]
		}
		peers = append(peers, p)
		reqs = append(reqs, comm.Int32sToF32(ids))
		missPos = append(missPos, miss)
	}
	if len(peers) == 0 {
		return x, nil
	}
	var replies [][]float32
	if tc == nil {
		var err error
		replies, err = st.rr.CallAll(peers, reqs)
		if err != nil {
			return nil, fmt.Errorf("featstore: halo fetch: %w", err)
		}
	} else {
		// Traced fan-out: same concurrency shape as CallAll, plus a per-peer
		// RTT span and the trace ID on the wire.
		replies = make([][]float32, len(peers))
		errs := make([]error, len(peers))
		var g parallel.Group
		for k := range peers {
			k := k
			g.Go(func() {
				done := tc.StartSpan(fmt.Sprintf("halo_rtt_rank%d", peers[k]))
				replies[k], errs[k] = st.rr.CallTraced(peers[k], tc.ID(), reqs[k])
				done()
			})
		}
		g.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("featstore: halo fetch: %w", err)
			}
		}
	}
	for k, rep := range replies {
		pos := missPos[k]
		if len(rep) != len(pos)*st.featDim {
			return nil, fmt.Errorf("featstore: halo fetch from rank %d returned %d floats for %d vertices × %d features",
				peers[k], len(rep), len(pos), st.featDim)
		}
		for j, i := range pos {
			row := rep[j*st.featDim : (j+1)*st.featDim]
			copy(x.Row(int(i)), row)
			st.remote.Put(frontier[i], append([]float32(nil), row...), 4*st.featDim)
		}
		st.haloFetches.Add(1)
		st.haloVertices.Add(int64(len(pos)))
		st.haloBytes.Add(int64(4 * len(rep)))
	}
	return x, nil
}
