package featstore

import (
	"math"
	"strings"
	"testing"

	"distgnn/internal/comm"
	"distgnn/internal/obs"
)

// TestGatherSplitTraced pins the cross-rank attribution contract: a traced
// gather records one halo_rtt span per peer fetched, the owner ranks record
// "halo" trace entries under the caller's trace ID, and the gathered bits
// match the untraced path exactly.
func TestGatherSplitTraced(t *testing.T) {
	const n, dim, shards = 40, 4, 2
	feats := testMatrix(n, dim, 3)
	owners := ownersRoundRobin(n, shards)
	tr := comm.NewProcTransport(shards)
	tracers := make([]*obs.Tracer, shards)
	stores := make([]*Sharded, shards)
	for r := range stores {
		tracers[r] = obs.NewTracer(obs.TracerConfig{Role: "server", Rank: r})
		st, err := NewSharded(ShardedConfig{
			Rank: r, Shards: shards, Transport: tr,
			Owners: owners, Features: feats,
			Tracer: tracers[r],
		})
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = st
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()

	frontier := []int32{0, 1, 2, 3, 4, 5}
	id := obs.NewTraceID()
	tc := obs.NewTraceCtx(id)
	split := SplitByOwner(frontier, owners, shards)
	x, err := stores[0].GatherSplitTraced(frontier, split, tc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range frontier {
		for j := 0; j < dim; j++ {
			if math.Float32bits(x.Row(i)[j]) != math.Float32bits(feats.Row(int(v))[j]) {
				t.Fatalf("traced gather row %d col %d diverges from source", i, j)
			}
		}
	}

	var rtt int
	for _, sp := range tc.Spans() {
		if strings.HasPrefix(sp.Name, "halo_rtt_rank") {
			rtt++
			if sp.DurUs < 0 {
				t.Fatalf("span %q has negative duration", sp.Name)
			}
		}
	}
	if rtt != 1 {
		t.Fatalf("caller recorded %d halo_rtt spans, want 1 (one peer)", rtt)
	}

	// The owning peer (rank 1) must have recorded the served fetch under the
	// caller's trace ID.
	recent := tracers[1].Recent(16)
	want := obs.FormatTraceID(id)
	found := false
	for _, rec := range recent {
		if rec.TraceID == want {
			found = true
			if rec.Endpoint != "halo_fetch" || rec.Peer != 0 || rec.Rank != 1 {
				t.Fatalf("halo record misattributed: %+v", rec)
			}
		}
	}
	if !found {
		t.Fatalf("peer tracer has no record for trace %s: %+v", want, recent)
	}

	// Untraced gathers through the same stores must not mint records.
	before := len(tracers[1].Recent(1 << 10))
	if _, err := stores[0].Gather(frontier); err != nil {
		t.Fatal(err)
	}
	if after := len(tracers[1].Recent(1 << 10)); after != before {
		t.Fatalf("untraced gather grew the peer ring from %d to %d", before, after)
	}
}
