package graph

import (
	"sync"

	"distgnn/internal/parallel"
)

// Analytics helpers used to validate generated datasets (degree skew,
// connectivity) and to diagnose partitions. Per-vertex sweeps run on the
// shared worker pool; vertex chunks are merged after the parallel phase.

// degreeGrain bounds how finely per-vertex degree sweeps are chunked — the
// per-vertex work is two indptr loads, so chunks must be large.
const degreeGrain = 4096

// WeaklyConnectedComponents labels each vertex with a component ID in
// [0, count) treating edges as undirected, and returns the labels and the
// component count. Iterative BFS, O(|V|+|E|).
func WeaklyConnectedComponents(g *CSR) (labels []int32, count int) {
	// Build the undirected adjacency once: in-edges plus out-edges.
	rev := g.Reverse()
	labels = make([]int32, g.NumVertices)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for start := 0; start < g.NumVertices; start++ {
		if labels[start] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[start] = id
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, nbrs := range [][]int32{g.InNeighbors(int(v)), rev.InNeighbors(int(v))} {
				for _, u := range nbrs {
					if labels[u] == -1 {
						labels[u] = id
						queue = append(queue, u)
					}
				}
			}
		}
	}
	return labels, count
}

// LargestComponentFraction returns the share of vertices in the largest
// weakly connected component — generated benchmark graphs should be
// dominated by one giant component, like their real counterparts.
func LargestComponentFraction(g *CSR) float64 {
	if g.NumVertices == 0 {
		return 0
	}
	labels, count := WeaklyConnectedComponents(g)
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	return float64(maxSize) / float64(g.NumVertices)
}

// DegreeHistogram returns log2-bucketed in-degree counts: bucket i counts
// vertices with degree in [2^i, 2^(i+1)), bucket 0 also holding degree 0–1.
// Power-law graphs show a long, slowly decaying tail. Each worker chunk
// accumulates a private histogram; partials are summed at the end.
func DegreeHistogram(g *CSR) []int {
	const maxBuckets = 64 // log2 of any int64 degree fits
	var (
		mu   sync.Mutex
		hist []int
	)
	parallel.For(g.NumVertices, degreeGrain, func(v0, v1 int) {
		var h [maxBuckets]int
		top := 0
		for v := v0; v < v1; v++ {
			d := g.InDegree(v)
			bucket := 0
			for d > 1 {
				d >>= 1
				bucket++
			}
			h[bucket]++
			if bucket+1 > top {
				top = bucket + 1
			}
		}
		mu.Lock()
		for len(hist) < top {
			hist = append(hist, 0)
		}
		for b := 0; b < top; b++ {
			hist[b] += h[b]
		}
		mu.Unlock()
	})
	return hist
}

// GiniCoefficient measures in-degree inequality in [0, 1): 0 is perfectly
// uniform, values near 1 indicate extreme hubs. Power-law benchmark graphs
// land well above Erdős–Rényi graphs of equal density.
func GiniCoefficient(g *CSR) float64 {
	n := g.NumVertices
	if n == 0 || g.NumEdges == 0 {
		return 0
	}
	deg := make([]int, n)
	parallel.For(n, degreeGrain, func(v0, v1 int) {
		for v := v0; v < v1; v++ {
			deg[v] = g.InDegree(v)
		}
	})
	// Counting sort by degree (bounded by max degree).
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for _, d := range deg {
		counts[d]++
	}
	// Gini = (2 Σ i·x_i)/(n Σ x_i) − (n+1)/n over sorted x.
	var cum, weighted float64
	rank := 1
	for d, c := range counts {
		for i := 0; i < c; i++ {
			cum += float64(d)
			weighted += float64(rank) * float64(d)
			rank++
		}
	}
	return 2*weighted/(float64(n)*cum) - float64(n+1)/float64(n)
}
