package graph

import (
	"math/rand"
	"testing"
)

func TestComponentsTwoIslands(t *testing.T) {
	// {0,1,2} ring and {3,4} pair, plus isolated 5.
	g := MustCSR(6, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4},
	})
	labels, count := WeaklyConnectedComponents(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("ring must share a component")
	}
	if labels[3] != labels[4] {
		t.Fatal("pair must share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated vertex must be its own component")
	}
}

func TestComponentsDirectionIgnored(t *testing.T) {
	// A chain of one-directional edges is still weakly connected.
	g := MustCSR(4, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3}})
	if _, count := WeaklyConnectedComponents(g); count != 1 {
		t.Fatalf("weak components = %d, want 1", count)
	}
}

func TestLargestComponentFraction(t *testing.T) {
	g := MustCSR(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if f := LargestComponentFraction(g); f != 0.75 {
		t.Fatalf("fraction = %v, want 0.75", f)
	}
	if f := LargestComponentFraction(MustCSR(0, nil)); f != 0 {
		t.Fatal("empty graph fraction must be 0")
	}
}

func TestDegreeHistogramBuckets(t *testing.T) {
	// Degrees: 0, 1, 2, 5 → buckets 0,0,1,2.
	g := MustCSR(4, []Edge{
		{Src: 0, Dst: 1},
		{Src: 0, Dst: 2}, {Src: 1, Dst: 2},
		{Src: 0, Dst: 3}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
	hist := DegreeHistogram(g)
	if hist[0] != 2 { // degrees 0 and 1
		t.Fatalf("bucket 0 = %d, want 2 (hist %v)", hist[0], hist)
	}
	if hist[1] != 1 { // degree 2
		t.Fatalf("bucket 1 = %d, want 1 (hist %v)", hist[1], hist)
	}
	if hist[2] != 1 { // degree 5
		t.Fatalf("bucket 2 = %d, want 1 (hist %v)", hist[2], hist)
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != g.NumVertices {
		t.Fatalf("histogram covers %d vertices, want %d", total, g.NumVertices)
	}
}

func TestGiniUniformVsHub(t *testing.T) {
	// Uniform ring: every vertex degree 1 → Gini ≈ 0.
	var ring []Edge
	for v := 0; v < 100; v++ {
		ring = append(ring, Edge{Src: int32(v), Dst: int32((v + 1) % 100)})
	}
	uniform := GiniCoefficient(MustCSR(100, ring))
	if uniform > 0.01 {
		t.Fatalf("uniform Gini %v, want ≈0", uniform)
	}
	// Star: all edges into vertex 0 → extreme inequality.
	var star []Edge
	for v := 1; v < 100; v++ {
		star = append(star, Edge{Src: int32(v), Dst: 0})
	}
	hub := GiniCoefficient(MustCSR(100, star))
	if hub < 0.9 {
		t.Fatalf("star Gini %v, want ≈1", hub)
	}
}

func TestGiniRMATAboveUniformRandom(t *testing.T) {
	// R-MAT-like preferential skew must exceed uniform-random edges' Gini.
	rng := rand.New(rand.NewSource(1))
	uniformEdges := make([]Edge, 4000)
	for i := range uniformEdges {
		uniformEdges[i] = Edge{Src: int32(rng.Intn(500)), Dst: int32(rng.Intn(500))}
	}
	uniform := GiniCoefficient(MustCSR(500, uniformEdges))

	// Quadratic preferential attachment toward low IDs.
	skewEdges := make([]Edge, 4000)
	for i := range skewEdges {
		d := rng.Intn(500) * rng.Intn(500) / 500
		skewEdges[i] = Edge{Src: int32(rng.Intn(500)), Dst: int32(d)}
	}
	skewed := GiniCoefficient(MustCSR(500, skewEdges))
	if skewed <= uniform {
		t.Fatalf("skewed Gini %v must exceed uniform %v", skewed, uniform)
	}
}

func TestGiniEdgeCases(t *testing.T) {
	if GiniCoefficient(MustCSR(0, nil)) != 0 {
		t.Fatal("empty graph Gini must be 0")
	}
	if GiniCoefficient(MustCSR(5, nil)) != 0 {
		t.Fatal("edgeless graph Gini must be 0")
	}
}
