package graph

// Blocked is the cache-blocking decomposition of Alg. 2 in the paper: the
// source-vertex range [0, |V|) is split into nB contiguous blocks of size B,
// and a CSR matrix is built per block containing only the edges whose source
// falls in that block. Iterating blocks outermost keeps each block of the
// source feature matrix f_V cache resident while all destination vertices
// stream through it.
type Blocked struct {
	NumBlocks int
	BlockSize int
	Blocks    []*CSR // Blocks[i] holds edges with source in [i*B, (i+1)*B)
}

// NewBlocked partitions g's edges into numBlocks source-range blocks.
// numBlocks is clamped to [1, NumVertices]. Each per-block CSR spans the
// full vertex ID space so destination/source IDs need no translation.
func NewBlocked(g *CSR, numBlocks int) *Blocked {
	if numBlocks < 1 {
		numBlocks = 1
	}
	if g.NumVertices > 0 && numBlocks > g.NumVertices {
		numBlocks = g.NumVertices
	}
	blockSize := 1
	if g.NumVertices > 0 {
		blockSize = (g.NumVertices + numBlocks - 1) / numBlocks
	}

	// Count edges per (block, dst) in a single pass, then fill. This builds
	// all per-block CSRs in O(|E|) without materializing per-block edge
	// lists.
	counts := make([][]int32, numBlocks)
	for b := range counts {
		counts[b] = make([]int32, g.NumVertices+1)
	}
	for v := 0; v < g.NumVertices; v++ {
		for p := g.Indptr[v]; p < g.Indptr[v+1]; p++ {
			b := int(g.Indices[p]) / blockSize
			counts[b][v+1]++
		}
	}
	blocks := make([]*CSR, numBlocks)
	cursors := make([][]int32, numBlocks)
	for b := 0; b < numBlocks; b++ {
		indptr := counts[b]
		for v := 0; v < g.NumVertices; v++ {
			indptr[v+1] += indptr[v]
		}
		ne := int(indptr[g.NumVertices])
		blocks[b] = &CSR{
			NumVertices: g.NumVertices,
			NumEdges:    ne,
			Indptr:      indptr,
			Indices:     make([]int32, ne),
			EdgeIDs:     make([]int32, ne),
		}
		cur := make([]int32, g.NumVertices)
		copy(cur, indptr[:g.NumVertices])
		cursors[b] = cur
	}
	for v := 0; v < g.NumVertices; v++ {
		for p := g.Indptr[v]; p < g.Indptr[v+1]; p++ {
			src := g.Indices[p]
			b := int(src) / blockSize
			q := cursors[b][v]
			blocks[b].Indices[q] = src
			blocks[b].EdgeIDs[q] = g.EdgeIDs[p]
			cursors[b][v]++
		}
	}
	return &Blocked{NumBlocks: numBlocks, BlockSize: blockSize, Blocks: blocks}
}

// TotalEdges returns the edge count summed over blocks; always equals the
// source graph's edge count.
func (b *Blocked) TotalEdges() int {
	total := 0
	for _, blk := range b.Blocks {
		total += blk.NumEdges
	}
	return total
}
