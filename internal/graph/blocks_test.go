package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockedPartitionsEdgesBySourceRange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := MustCSR(100, randomEdges(rng, 100, 800))
	for _, nB := range []int{1, 2, 4, 7, 16, 100} {
		b := NewBlocked(g, nB)
		if b.TotalEdges() != g.NumEdges {
			t.Fatalf("nB=%d: edges lost, %d vs %d", nB, b.TotalEdges(), g.NumEdges)
		}
		for bi, blk := range b.Blocks {
			lo, hi := bi*b.BlockSize, (bi+1)*b.BlockSize
			for v := 0; v < blk.NumVertices; v++ {
				for _, u := range blk.InNeighbors(v) {
					if int(u) < lo || int(u) >= hi {
						t.Fatalf("nB=%d block %d: source %d outside [%d,%d)", nB, bi, u, lo, hi)
					}
				}
			}
		}
	}
}

func TestBlockedUnionRecoversAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := MustCSR(50, randomEdges(rng, 50, 400))
	b := NewBlocked(g, 8)
	for v := 0; v < g.NumVertices; v++ {
		var union []int32
		for _, blk := range b.Blocks {
			union = append(union, blk.InNeighbors(v)...)
		}
		orig := append([]int32(nil), g.InNeighbors(v)...)
		if len(union) != len(orig) {
			t.Fatalf("vertex %d: neighbor count %d vs %d", v, len(union), len(orig))
		}
		// Per-block lists are sorted; block ranges are increasing, so the
		// concatenation must equal the sorted original list.
		for i := range union {
			if union[i] != orig[i] {
				t.Fatalf("vertex %d: neighbor %d: %d vs %d", v, i, union[i], orig[i])
			}
		}
	}
}

func TestBlockedEdgeIDsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	edges := randomEdges(rng, 30, 150)
	g := MustCSR(30, edges)
	b := NewBlocked(g, 5)
	for _, blk := range b.Blocks {
		for v := 0; v < blk.NumVertices; v++ {
			nbr := blk.InNeighbors(v)
			ids := blk.InEdgeIDs(v)
			for i := range nbr {
				e := edges[ids[i]]
				if e.Src != nbr[i] || int(e.Dst) != v {
					t.Fatalf("block edge id %d maps to %v, want src=%d dst=%d", ids[i], e, nbr[i], v)
				}
			}
		}
	}
}

func TestBlockedClampsBlockCount(t *testing.T) {
	g := MustCSR(4, []Edge{{0, 1}})
	b := NewBlocked(g, 100)
	if b.NumBlocks != 4 {
		t.Fatalf("NumBlocks = %d, want clamp to 4", b.NumBlocks)
	}
	b1 := NewBlocked(g, 0)
	if b1.NumBlocks != 1 {
		t.Fatalf("NumBlocks = %d, want clamp to 1", b1.NumBlocks)
	}
}

func TestBlockedPropertyEdgeConservation(t *testing.T) {
	f := func(seed int64, nBraw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := MustCSR(n, randomEdges(rng, n, rng.Intn(300)))
		nB := 1 + int(nBraw)%20
		b := NewBlocked(g, nB)
		return b.TotalEdges() == g.NumEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
