// Package graph provides the sparse graph substrate for DistGNN: CSR
// adjacency storage oriented for the aggregation primitive (in-edges per
// destination vertex, matching Alg. 1 of the paper), COO edge lists,
// builders, symmetrization, and the block decomposition used by the cache
// blocked aggregation kernel (Alg. 2).
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed edge u→v. In the aggregation primitive the feature of
// the source Src is pulled and reduced into the destination Dst.
type Edge struct {
	Src, Dst int32
}

// CSR stores a directed graph in compressed sparse row format indexed by
// destination vertex: Adj(v) = Indices[Indptr[v]:Indptr[v+1]] is the list of
// source vertices with an edge into v. EdgeIDs carries, for each position in
// Indices, the identity of the original edge so per-edge features can be
// looked up (DGL keeps the same mapping).
type CSR struct {
	NumVertices int
	NumEdges    int
	Indptr      []int32 // len NumVertices+1
	Indices     []int32 // len NumEdges, source vertex per in-edge
	EdgeIDs     []int32 // len NumEdges, original edge id per in-edge
}

// NewCSR builds a destination-indexed CSR from an edge list over
// numVertices vertices. Edge IDs are the positions in edges. Neighbor lists
// are sorted by source vertex for deterministic iteration.
func NewCSR(numVertices int, edges []Edge) (*CSR, error) {
	indptr := make([]int32, numVertices+1)
	for i, e := range edges {
		if e.Src < 0 || int(e.Src) >= numVertices || e.Dst < 0 || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge %d (%d→%d) out of range [0,%d)", i, e.Src, e.Dst, numVertices)
		}
		indptr[e.Dst+1]++
	}
	for v := 0; v < numVertices; v++ {
		indptr[v+1] += indptr[v]
	}
	indices := make([]int32, len(edges))
	edgeIDs := make([]int32, len(edges))
	cursor := make([]int32, numVertices)
	copy(cursor, indptr[:numVertices])
	for i, e := range edges {
		p := cursor[e.Dst]
		indices[p] = e.Src
		edgeIDs[p] = int32(i)
		cursor[e.Dst]++
	}
	g := &CSR{
		NumVertices: numVertices,
		NumEdges:    len(edges),
		Indptr:      indptr,
		Indices:     indices,
		EdgeIDs:     edgeIDs,
	}
	g.sortNeighborLists()
	return g, nil
}

// MustCSR is NewCSR that panics on invalid input; for tests and generators
// that construct edges they know are in range.
func MustCSR(numVertices int, edges []Edge) *CSR {
	g, err := NewCSR(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *CSR) sortNeighborLists() {
	for v := 0; v < g.NumVertices; v++ {
		lo, hi := g.Indptr[v], g.Indptr[v+1]
		nbr := g.Indices[lo:hi]
		ids := g.EdgeIDs[lo:hi]
		sort.Sort(&nbrSorter{nbr: nbr, ids: ids})
	}
}

type nbrSorter struct {
	nbr []int32
	ids []int32
}

func (s *nbrSorter) Len() int           { return len(s.nbr) }
func (s *nbrSorter) Less(i, j int) bool { return s.nbr[i] < s.nbr[j] }
func (s *nbrSorter) Swap(i, j int) {
	s.nbr[i], s.nbr[j] = s.nbr[j], s.nbr[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// NumV returns the vertex count (Topology).
func (g *CSR) NumV() int { return g.NumVertices }

// NumE returns the directed edge count (Topology).
func (g *CSR) NumE() int { return g.NumEdges }

// InNeighbors returns the sources of in-edges of v (shared storage).
func (g *CSR) InNeighbors(v int) []int32 {
	return g.Indices[g.Indptr[v]:g.Indptr[v+1]]
}

// InEdgeIDs returns the edge IDs of in-edges of v (shared storage).
func (g *CSR) InEdgeIDs(v int) []int32 {
	return g.EdgeIDs[g.Indptr[v]:g.Indptr[v+1]]
}

// InDegree returns the in-degree of v.
func (g *CSR) InDegree(v int) int {
	return int(g.Indptr[v+1] - g.Indptr[v])
}

// InDegrees returns the in-degree of every vertex.
func (g *CSR) InDegrees() []int32 {
	deg := make([]int32, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		deg[v] = g.Indptr[v+1] - g.Indptr[v]
	}
	return deg
}

// Edges reconstructs the COO edge list in edge-ID order.
func (g *CSR) Edges() []Edge {
	edges := make([]Edge, g.NumEdges)
	for v := 0; v < g.NumVertices; v++ {
		for p := g.Indptr[v]; p < g.Indptr[v+1]; p++ {
			edges[g.EdgeIDs[p]] = Edge{Src: g.Indices[p], Dst: int32(v)}
		}
	}
	return edges
}

// Reverse returns the transpose graph: every edge u→v becomes v→u, keeping
// the same edge IDs. The aggregation backward pass uses the transpose (the
// gradient of A×X flows along Aᵀ).
func (g *CSR) Reverse() *CSR {
	edges := g.Edges()
	rev := make([]Edge, len(edges))
	for i, e := range edges {
		rev[i] = Edge{Src: e.Dst, Dst: e.Src}
	}
	out, err := NewCSR(g.NumVertices, rev)
	if err != nil {
		panic(err) // cannot happen: vertices are in range by construction
	}
	return out
}

// AvgDegree returns the mean in-degree.
func (g *CSR) AvgDegree() float64 {
	if g.NumVertices == 0 {
		return 0
	}
	return float64(g.NumEdges) / float64(g.NumVertices)
}

// Density returns |E| / |V|² — the fill fraction of the adjacency matrix,
// as reported in Table 3 of the paper.
func (g *CSR) Density() float64 {
	n := float64(g.NumVertices)
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges) / (n * n)
}

// MaxDegree returns the maximum in-degree.
func (g *CSR) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.NumVertices; v++ {
		if d := g.InDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Symmetrize converts each undirected edge into two directed edges, as the
// paper does for Reddit, OGBN-Products and Proteins (Table 2 caption).
// Self-loops contribute a single directed edge. Duplicate directed edges are
// not removed — multigraph inputs stay multigraphs, matching DGL.
func Symmetrize(edges []Edge) []Edge {
	out := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e)
		if e.Src != e.Dst {
			out = append(out, Edge{Src: e.Dst, Dst: e.Src})
		}
	}
	return out
}

// DedupEdges removes duplicate directed edges, preserving first occurrence
// order of the deduplicated set (sorted by (dst, src)).
func DedupEdges(edges []Edge) []Edge {
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dst != sorted[j].Dst {
			return sorted[i].Dst < sorted[j].Dst
		}
		return sorted[i].Src < sorted[j].Src
	})
	out := sorted[:0]
	for i, e := range sorted {
		if i == 0 || e != sorted[i-1] {
			out = append(out, e)
		}
	}
	return out
}
