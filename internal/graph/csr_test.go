package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle graph: 0→1, 1→2, 2→0, plus 0→2.
func triangleEdges() []Edge {
	return []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 2}}
}

func TestNewCSRBasic(t *testing.T) {
	g := MustCSR(3, triangleEdges())
	if g.NumVertices != 3 || g.NumEdges != 4 {
		t.Fatalf("bad counts: %d vertices %d edges", g.NumVertices, g.NumEdges)
	}
	if got := g.InNeighbors(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("InNeighbors(2) = %v, want [0 1]", got)
	}
	if g.InDegree(0) != 1 || g.InDegree(1) != 1 || g.InDegree(2) != 2 {
		t.Fatalf("bad in-degrees: %v", g.InDegrees())
	}
}

func TestNewCSREdgeIDsTrackSources(t *testing.T) {
	g := MustCSR(3, triangleEdges())
	edges := triangleEdges()
	for v := 0; v < 3; v++ {
		nbr := g.InNeighbors(v)
		ids := g.InEdgeIDs(v)
		for i := range nbr {
			e := edges[ids[i]]
			if e.Src != nbr[i] || int(e.Dst) != v {
				t.Fatalf("edge id %d maps to %v, expected src=%d dst=%d", ids[i], e, nbr[i], v)
			}
		}
	}
}

func TestNewCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSR(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
	if _, err := NewCSR(2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("expected error for negative source")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := triangleEdges()
	g := MustCSR(3, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("edge count changed: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("edge %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestReverseTransposes(t *testing.T) {
	g := MustCSR(3, triangleEdges())
	r := g.Reverse()
	if r.NumEdges != g.NumEdges {
		t.Fatalf("edge count changed on reverse")
	}
	// in-degree of v in reverse == out-degree of v in g
	outDeg := make([]int, 3)
	for _, e := range triangleEdges() {
		outDeg[e.Src]++
	}
	for v := 0; v < 3; v++ {
		if r.InDegree(v) != outDeg[v] {
			t.Fatalf("reverse in-degree of %d = %d, want %d", v, r.InDegree(v), outDeg[v])
		}
	}
	// double reverse is identity on the edge multiset
	rr := r.Reverse()
	a, b := DedupEdges(g.Edges()), DedupEdges(rr.Edges())
	if len(a) != len(b) {
		t.Fatal("double reverse changed edge set size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("double reverse changed edges: %v vs %v", a[i], b[i])
		}
	}
}

func TestSymmetrize(t *testing.T) {
	und := []Edge{{0, 1}, {2, 2}}
	sym := Symmetrize(und)
	if len(sym) != 3 {
		t.Fatalf("want 3 directed edges (self-loop stays single), got %d", len(sym))
	}
	seen := map[Edge]bool{}
	for _, e := range sym {
		seen[e] = true
	}
	for _, want := range []Edge{{0, 1}, {1, 0}, {2, 2}} {
		if !seen[want] {
			t.Fatalf("missing edge %v in %v", want, sym)
		}
	}
}

func TestDedupEdges(t *testing.T) {
	edges := []Edge{{1, 0}, {0, 1}, {1, 0}, {0, 1}, {2, 1}}
	got := DedupEdges(edges)
	if len(got) != 3 {
		t.Fatalf("dedup: got %v", got)
	}
}

func TestStats(t *testing.T) {
	g := MustCSR(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {0, 3}})
	if g.AvgDegree() != 1.5 {
		t.Fatalf("AvgDegree = %v", g.AvgDegree())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %v", g.MaxDegree())
	}
	wantDensity := 6.0 / 16.0
	if g.Density() != wantDensity {
		t.Fatalf("Density = %v want %v", g.Density(), wantDensity)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustCSR(0, nil)
	if g.AvgDegree() != 0 || g.Density() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph stats must be zero")
	}
	g2 := MustCSR(5, nil)
	for v := 0; v < 5; v++ {
		if g2.InDegree(v) != 0 {
			t.Fatal("edgeless graph must have zero degrees")
		}
	}
}

func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	return edges
}

func TestCSRPreservesEdgeMultiset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		edges := randomEdges(rng, n, rng.Intn(200))
		g := MustCSR(n, edges)
		count := func(es []Edge) map[Edge]int {
			m := map[Edge]int{}
			for _, e := range es {
				m[e]++
			}
			return m
		}
		a, b := count(edges), count(g.Edges())
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRNeighborListsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := MustCSR(60, randomEdges(rng, 60, 500))
	for v := 0; v < g.NumVertices; v++ {
		nbr := g.InNeighbors(v)
		for i := 1; i < len(nbr); i++ {
			if nbr[i] < nbr[i-1] {
				t.Fatalf("neighbors of %d not sorted: %v", v, nbr)
			}
		}
	}
}
