package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// mutable.go is the delta-segment mutation layer: edge and vertex inserts
// land in a per-vertex sorted-adjacency overlay on top of the immutable
// base CSR, readers take epoch-versioned immutable Snapshots, and a
// Compact merges the accumulated overlay into a fresh CSR. The layer is
// built around one invariant the serving stack depends on: a Snapshot
// enumerates every vertex's in-neighbors in exactly the source-sorted
// order a CSR rebuilt from scratch over the same edge set would — so
// exact-mode aggregation over a mutated snapshot reproduces, bit for bit,
// the float-op sequence of a cold engine on the rebuilt graph.

// Topology is the read-side graph interface shared by the immutable CSR
// and mutation-layer snapshots: everything exact k-hop block extraction
// needs. *CSR and *Snapshot both satisfy it.
type Topology interface {
	// NumV returns the vertex count.
	NumV() int
	// NumE returns the directed edge count.
	NumE() int
	// InNeighbors returns the sources of in-edges of v, sorted by source
	// vertex ID (shared storage — callers must not mutate).
	InNeighbors(v int) []int32
	// InDegree returns the in-degree of v.
	InDegree(v int) int
}

// Snapshot is one consistent, immutable view of a Mutable graph: the base
// CSR plus the overlay of merged neighbor lists for every vertex touched
// since the last compaction. Snapshots are safe for concurrent use and
// stay valid (and unchanged) forever — later inserts and compactions
// publish new snapshots rather than mutating this one.
type Snapshot struct {
	epoch   uint64
	base    *CSR
	numV    int
	overlay map[int32][]int32 // full merged sorted in-neighbor list per touched dst
	extra   int               // edges beyond the base CSR
}

// Epoch returns the snapshot's version: strictly increasing across
// Insert/AddVertices/Compact publications on the owning Mutable.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumV returns the vertex count (base plus added vertices).
func (s *Snapshot) NumV() int { return s.numV }

// NumE returns the directed edge count (base plus overlay).
func (s *Snapshot) NumE() int { return s.base.NumEdges + s.extra }

// OverlayEdges returns how many inserted edges the overlay holds beyond
// the base CSR — the quantity compaction thresholds and the serving
// metrics watch.
func (s *Snapshot) OverlayEdges() int { return s.extra }

// OverlayVertices returns how many vertices have an overlay entry.
func (s *Snapshot) OverlayVertices() int { return len(s.overlay) }

// Base returns the underlying CSR (read-only).
func (s *Snapshot) Base() *CSR { return s.base }

// InNeighbors returns v's in-neighbor sources in the same source-sorted
// order a CSR rebuilt over the snapshot's edge set would store them:
// the overlay entry when v was touched since the last compaction, the
// base CSR's list otherwise. Shared storage — callers must not mutate.
func (s *Snapshot) InNeighbors(v int) []int32 {
	if nbr, ok := s.overlay[int32(v)]; ok {
		return nbr
	}
	if v < s.base.NumVertices {
		return s.base.InNeighbors(v)
	}
	return nil // added vertex with no in-edges yet
}

// InDegree returns the in-degree of v.
func (s *Snapshot) InDegree(v int) int { return len(s.InNeighbors(v)) }

// Edges materializes the snapshot's full edge list, grouped by
// destination with sources in sorted order — the input Compact rebuilds
// from, and the reference a from-scratch NewCSR over the same graph
// sorts into the identical Indices layout.
func (s *Snapshot) Edges() []Edge {
	edges := make([]Edge, 0, s.NumE())
	for v := 0; v < s.numV; v++ {
		for _, u := range s.InNeighbors(v) {
			edges = append(edges, Edge{Src: u, Dst: int32(v)})
		}
	}
	return edges
}

// Rebuild constructs a fresh CSR over the snapshot's exact edge set —
// what a cold process loading the post-mutation graph would build. Its
// Indices arrays match the snapshot's InNeighbors enumeration vertex for
// vertex (the conformance property the mutation tests pin); only EdgeIDs
// may differ, and nothing on the serving path reads those.
func (s *Snapshot) Rebuild() *CSR {
	return MustCSR(s.numV, s.Edges())
}

// Mutable is an evolving graph: an immutable base CSR under a
// copy-on-write overlay. Writers (Insert, AddVertices, Compact) serialize
// on an internal mutex and publish a new Snapshot per call; readers load
// the current Snapshot wait-free and keep a consistent view for as long
// as they hold it. When the overlay exceeds the compaction threshold a
// background Compact folds it into a fresh base CSR.
type Mutable struct {
	mu        sync.Mutex // serializes writers and compaction
	snap      atomic.Pointer[Snapshot]
	threshold int // overlay edges that trigger background compaction; ≤0 disables

	compacting  atomic.Bool
	compactions atomic.Int64
	wg          sync.WaitGroup // outstanding background compactions
}

// NewMutable wraps base in a mutation layer. compactThreshold is the
// overlay edge count past which an Insert triggers a background Compact;
// ≤ 0 disables automatic compaction (Compact can still be called
// explicitly). The base CSR is shared, never copied or mutated.
func NewMutable(base *CSR, compactThreshold int) *Mutable {
	m := &Mutable{threshold: compactThreshold}
	m.snap.Store(&Snapshot{base: base, numV: base.NumVertices})
	return m
}

// Snapshot returns the current consistent view. Wait-free; safe for
// concurrent use with writers.
func (m *Mutable) Snapshot() *Snapshot { return m.snap.Load() }

// Compactions returns how many compactions have been published.
func (m *Mutable) Compactions() int64 { return m.compactions.Load() }

// Insert applies a batch of edge inserts and returns the snapshot that
// contains them. The whole batch becomes visible atomically: readers see
// either the pre-batch or the post-batch view, never a prefix. Duplicate
// edges are allowed (the graph is a multigraph, matching NewCSR).
func (m *Mutable) Insert(edges []Edge) (*Snapshot, error) {
	if len(edges) == 0 {
		return m.Snapshot(), nil
	}
	m.mu.Lock()
	cur := m.snap.Load()
	for i, e := range edges {
		if e.Src < 0 || int(e.Src) >= cur.numV || e.Dst < 0 || int(e.Dst) >= cur.numV {
			m.mu.Unlock()
			return nil, fmt.Errorf("graph: insert %d (%d→%d) out of range [0,%d)", i, e.Src, e.Dst, cur.numV)
		}
	}
	// Copy-on-write: clone the overlay map shallowly, then clone and
	// re-merge only the touched destinations' lists. Untouched lists stay
	// shared with prior snapshots, which is what keeps reads wait-free.
	overlay := make(map[int32][]int32, len(cur.overlay)+len(edges))
	for v, nbr := range cur.overlay {
		overlay[v] = nbr
	}
	byDst := make(map[int32][]int32, len(edges))
	for _, e := range edges {
		byDst[e.Dst] = append(byDst[e.Dst], e.Src)
	}
	for dst, srcs := range byDst {
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		var old []int32
		if nbr, ok := overlay[dst]; ok {
			old = nbr
		} else if int(dst) < cur.base.NumVertices {
			old = cur.base.InNeighbors(int(dst))
		}
		overlay[dst] = mergeSorted(old, srcs)
	}
	next := &Snapshot{
		epoch:   cur.epoch + 1,
		base:    cur.base,
		numV:    cur.numV,
		overlay: overlay,
		extra:   cur.extra + len(edges),
	}
	m.snap.Store(next)
	m.mu.Unlock()

	if m.threshold > 0 && next.extra >= m.threshold && m.compacting.CompareAndSwap(false, true) {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.compacting.Store(false)
			m.Compact()
		}()
	}
	return next, nil
}

// AddVertices grows the vertex space by n isolated vertices and returns
// the snapshot that contains them. New vertices start with no edges;
// Insert accepts them as endpoints immediately.
func (m *Mutable) AddVertices(n int) *Snapshot {
	if n <= 0 {
		return m.Snapshot()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load()
	next := &Snapshot{
		epoch:   cur.epoch + 1,
		base:    cur.base,
		numV:    cur.numV + n,
		overlay: cur.overlay,
		extra:   cur.extra,
	}
	m.snap.Store(next)
	return next
}

// Compact folds the overlay into a fresh base CSR and publishes an
// overlay-free snapshot. The rebuilt Indices match the pre-compaction
// snapshot's InNeighbors enumeration exactly, so readers cannot tell a
// compaction happened except through the epoch and OverlayEdges going to
// zero. A no-op (and no epoch bump) when the overlay is empty and no
// vertices were added.
func (m *Mutable) Compact() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load()
	if cur.extra == 0 && cur.numV == cur.base.NumVertices {
		return cur
	}
	next := &Snapshot{
		epoch: cur.epoch + 1,
		base:  cur.Rebuild(),
		numV:  cur.numV,
	}
	m.snap.Store(next)
	m.compactions.Add(1)
	return next
}

// Wait blocks until any in-flight background compaction has finished —
// for tests and orderly shutdown.
func (m *Mutable) Wait() { m.wg.Wait() }

// mergeSorted merges two source-sorted neighbor lists into a fresh slice,
// taking from old first on ties so the base CSR's relative order is
// preserved (ties are equal values, so the merged *sequence* is identical
// either way — keeping old-first just makes the invariant obvious).
func mergeSorted(old, add []int32) []int32 {
	out := make([]int32, 0, len(old)+len(add))
	i, j := 0, 0
	for i < len(old) && j < len(add) {
		if old[i] <= add[j] {
			out = append(out, old[i])
			i++
		} else {
			out = append(out, add[j])
			j++
		}
	}
	out = append(out, old[i:]...)
	out = append(out, add[j:]...)
	return out
}
