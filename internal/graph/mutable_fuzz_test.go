package graph

import (
	"testing"
)

// FuzzMutableVsRebuild is the overlay fuzz target: the fuzzer drives a
// random interleaving of Insert / AddVertices / Compact operations
// decoded from the input bytes, and after every operation the live
// snapshot is checked against the naive reference model — a CSR rebuilt
// from scratch over the accumulated edge list. Neighbor lists and degrees
// must match exactly at every step, pre- and post-compaction.
func FuzzMutableVsRebuild(f *testing.F) {
	f.Add([]byte{0x10, 0x01, 0x23, 0x02, 0x01, 0x10, 0xFE, 0x45, 0x67})
	f.Add([]byte{0x05, 0xFE, 0xFF, 0x00})
	f.Add([]byte{0x3F, 0x00, 0x01, 0x02, 0x03, 0xFF, 0x04, 0x05, 0xFE, 0x06, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// First byte sizes the initial graph; the rest is an op stream:
		// 0xFF → Compact, 0xFE → AddVertices(1+next%3), otherwise a pair
		// of bytes is one inserted edge (src, dst mod current NumV), with
		// a batch break every 3 edges so batch atomicity is exercised.
		numV := 2 + int(data[0]%14)
		data = data[1:]
		m := NewMutable(MustCSR(numV, nil), 0)
		var all []Edge
		var batch []Edge
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if _, err := m.Insert(batch); err != nil {
				t.Fatalf("insert %v: %v", batch, err)
			}
			all = append(all, batch...)
			batch = nil
		}
		check := func() {
			s := m.Snapshot()
			ref := MustCSR(numV, all)
			if s.NumV() != numV || s.NumE() != len(all) {
				t.Fatalf("shape (%d,%d), want (%d,%d)", s.NumV(), s.NumE(), numV, len(all))
			}
			for v := 0; v < numV; v++ {
				got, want := s.InNeighbors(v), ref.InNeighbors(v)
				if len(got) != len(want) {
					t.Fatalf("vertex %d: degree %d, want %d", v, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("vertex %d: neighbors %v, want %v", v, got, want)
					}
				}
			}
		}
		for i := 0; i < len(data); i++ {
			switch data[i] {
			case 0xFF:
				flush()
				m.Compact()
				check()
			case 0xFE:
				flush()
				n := 1
				if i+1 < len(data) {
					i++
					n += int(data[i] % 3)
				}
				m.AddVertices(n)
				numV += n
				check()
			default:
				if i+1 >= len(data) {
					break
				}
				src := int32(int(data[i]) % numV)
				i++
				dst := int32(int(data[i]) % numV)
				batch = append(batch, Edge{Src: src, Dst: dst})
				if len(batch) == 3 {
					flush()
					check()
				}
			}
		}
		flush()
		check()
	})
}
