package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMutableConcurrentReadersWritersCompaction is the race-mode pin:
// readers iterate snapshots while writers insert batches and compactions
// flip the base CSR underneath. Under -race this catches any unsynchronized
// access; the assertions catch torn views — a snapshot, once loaded, must
// stay internally consistent (sorted lists, per-vertex degrees summing to
// its own edge count, monotonic epochs) no matter what the writers publish
// after it.
func TestMutableConcurrentReadersWritersCompaction(t *testing.T) {
	const (
		numV    = 64
		writers = 3
		readers = 4
		batches = 60
	)
	m := NewMutable(MustCSR(numV, []Edge{{0, 1}, {1, 0}, {2, 3}}), 50)
	var stop atomic.Bool
	var writeWG, spinWG sync.WaitGroup
	errs := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for b := 0; b < batches; b++ {
				batch := make([]Edge, 1+rng.Intn(4))
				for i := range batch {
					batch[i] = Edge{Src: int32(rng.Intn(numV)), Dst: int32(rng.Intn(numV))}
				}
				if _, err := m.Insert(batch); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// One explicit compactor on top of the threshold-triggered background
	// ones, so compactions race inserts from both directions.
	spinWG.Add(1)
	go func() {
		defer spinWG.Done()
		for !stop.Load() {
			m.Compact()
		}
	}()

	for r := 0; r < readers; r++ {
		spinWG.Add(1)
		go func() {
			defer spinWG.Done()
			var lastEpoch uint64
			for !stop.Load() {
				s := m.Snapshot()
				if s.Epoch() < lastEpoch {
					errs <- fmt.Errorf("epoch went backwards: %d after %d", s.Epoch(), lastEpoch)
					return
				}
				lastEpoch = s.Epoch()
				total := 0
				for v := 0; v < s.NumV(); v++ {
					nbr := s.InNeighbors(v)
					for i := 1; i < len(nbr); i++ {
						if nbr[i-1] > nbr[i] {
							errs <- fmt.Errorf("vertex %d: unsorted neighbors %v", v, nbr)
							return
						}
					}
					total += len(nbr)
				}
				// A torn view (half-applied batch or mid-compaction state)
				// would break this.
				if total != s.NumE() {
					errs <- fmt.Errorf("torn snapshot: per-vertex degrees sum to %d, NumE is %d", total, s.NumE())
					return
				}
			}
		}()
	}

	writeWG.Wait()
	stop.Store(true)
	spinWG.Wait()
	m.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: the final view must match a from-scratch rebuild of
	// everything the writers inserted (3 base edges + all batches).
	s := m.Snapshot()
	if want := 3 + countInserted(writers, batches); s.NumE() != want {
		t.Fatalf("final edge count %d, want %d", s.NumE(), want)
	}
	mutableEqualsRebuilt(t, m.Compact(), numV, s.Edges())
}

// countInserted replays the writers' deterministic RNG streams to count
// the edges they inserted.
func countInserted(writers, batches int) int {
	total := 0
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		for b := 0; b < batches; b++ {
			n := 1 + rng.Intn(4)
			total += n
			for i := 0; i < n; i++ {
				rng.Intn(64)
				rng.Intn(64)
			}
		}
	}
	return total
}
