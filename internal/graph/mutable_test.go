package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// mutableEqualsRebuilt asserts the conformance invariant: every vertex's
// InNeighbors under the snapshot equals the list a CSR rebuilt from
// scratch over the same edge set stores, and the degree/edge counts agree.
func mutableEqualsRebuilt(t *testing.T, s *Snapshot, numV int, edges []Edge) {
	t.Helper()
	ref := MustCSR(numV, edges)
	if s.NumV() != numV {
		t.Fatalf("NumV %d, want %d", s.NumV(), numV)
	}
	if s.NumE() != len(edges) {
		t.Fatalf("NumE %d, want %d", s.NumE(), len(edges))
	}
	for v := 0; v < numV; v++ {
		got := s.InNeighbors(v)
		want := ref.InNeighbors(v)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("vertex %d neighbor %d: %d, want %d (got %v want %v)",
					v, i, got[i], want[i], got, want)
			}
		}
		if s.InDegree(v) != ref.InDegree(v) {
			t.Fatalf("vertex %d degree %d, want %d", v, s.InDegree(v), ref.InDegree(v))
		}
	}
}

// TestMutableInsertMatchesRebuild drives a batch-insert sequence and pins
// the snapshot against a from-scratch rebuild after every batch, then
// after an explicit compaction, then after post-compaction inserts.
func TestMutableInsertMatchesRebuild(t *testing.T) {
	const n = 12
	base := []Edge{{1, 0}, {2, 0}, {0, 1}, {3, 2}, {2, 3}, {5, 4}, {4, 5}}
	m := NewMutable(MustCSR(n, base), 0)
	all := append([]Edge(nil), base...)

	batches := [][]Edge{
		{{7, 0}, {0, 0}},          // prepend and append into an existing list
		{{2, 0}, {2, 0}},          // duplicate edges (multigraph) and duplicate-of-base
		{{6, 6}, {11, 10}},        // previously isolated vertices
		{{1, 0}, {3, 0}, {9, 2}},  // interleave into existing lists
		{{10, 11}, {11, 10}},      // mutual edges
	}
	for bi, b := range batches {
		snap, err := m.Insert(b)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		all = append(all, b...)
		mutableEqualsRebuilt(t, snap, n, all)
		if snap.Epoch() != uint64(bi+1) {
			t.Fatalf("batch %d: epoch %d, want %d", bi, snap.Epoch(), bi+1)
		}
	}

	pre := m.Snapshot()
	post := m.Compact()
	if m.Compactions() != 1 {
		t.Fatalf("compactions %d, want 1", m.Compactions())
	}
	if post.OverlayEdges() != 0 || post.OverlayVertices() != 0 {
		t.Fatalf("post-compaction overlay not empty: %d edges, %d vertices",
			post.OverlayEdges(), post.OverlayVertices())
	}
	if post.Epoch() <= pre.Epoch() {
		t.Fatalf("compaction epoch %d not past %d", post.Epoch(), pre.Epoch())
	}
	mutableEqualsRebuilt(t, post, n, all)
	// The pre-compaction snapshot must be unchanged — old readers keep a
	// consistent view.
	mutableEqualsRebuilt(t, pre, n, all)

	// Inserts keep working on the compacted base.
	more := []Edge{{0, 7}, {7, 0}, {4, 4}}
	snap, err := m.Insert(more)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, more...)
	mutableEqualsRebuilt(t, snap, n, all)

	// Compacting an already-clean graph is a no-op: same snapshot, no
	// epoch bump, no compaction counted.
	clean := m.Compact()
	if again := m.Compact(); again != clean {
		t.Fatal("no-op compaction published a new snapshot")
	}
	if m.Compactions() != 2 {
		t.Fatalf("compactions %d, want 2", m.Compactions())
	}
}

// TestMutableRejectsOutOfRange pins insert validation, and that a failed
// batch publishes nothing.
func TestMutableRejectsOutOfRange(t *testing.T) {
	m := NewMutable(MustCSR(4, []Edge{{0, 1}}), 0)
	before := m.Snapshot()
	for _, bad := range [][]Edge{
		{{0, 4}}, {{4, 0}}, {{-1, 0}}, {{0, -1}}, {{0, 1}, {9, 9}},
	} {
		if _, err := m.Insert(bad); err == nil {
			t.Fatalf("insert %v accepted", bad)
		}
	}
	if m.Snapshot() != before {
		t.Fatal("failed insert published a snapshot")
	}
}

// TestMutableAddVertices pins vertex inserts: new vertices are isolated,
// immediately usable as edge endpoints, and survive compaction.
func TestMutableAddVertices(t *testing.T) {
	base := []Edge{{0, 1}, {1, 0}}
	m := NewMutable(MustCSR(2, base), 0)
	snap := m.AddVertices(3)
	if snap.NumV() != 5 {
		t.Fatalf("NumV %d, want 5", snap.NumV())
	}
	for v := 2; v < 5; v++ {
		if d := snap.InDegree(v); d != 0 {
			t.Fatalf("new vertex %d has degree %d", v, d)
		}
	}
	all := append([]Edge(nil), base...)
	add := []Edge{{0, 4}, {4, 2}, {3, 4}}
	snap, err := m.Insert(add)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, add...)
	mutableEqualsRebuilt(t, snap, 5, all)
	mutableEqualsRebuilt(t, m.Compact(), 5, all)
	if m.Snapshot().Base().NumVertices != 5 {
		t.Fatalf("compacted base has %d vertices, want 5", m.Snapshot().Base().NumVertices)
	}
}

// TestMutableAutoCompaction pins the threshold trigger: once the overlay
// crosses the configured size a background compaction folds it away.
func TestMutableAutoCompaction(t *testing.T) {
	m := NewMutable(MustCSR(8, nil), 4)
	rng := rand.New(rand.NewSource(7))
	var all []Edge
	for i := 0; i < 10; i++ {
		e := Edge{Src: int32(rng.Intn(8)), Dst: int32(rng.Intn(8))}
		if _, err := m.Insert([]Edge{e}); err != nil {
			t.Fatal(err)
		}
		all = append(all, e)
	}
	m.Wait()
	if m.Compactions() == 0 {
		t.Fatal("threshold crossed but no compaction ran")
	}
	mutableEqualsRebuilt(t, m.Snapshot(), 8, all)
	if ov := m.Snapshot().OverlayEdges(); ov >= 4 {
		t.Fatalf("overlay still holds %d edges past the threshold", ov)
	}
}

// TestSnapshotEdgesRoundTrip pins Edges/Rebuild: the materialized edge
// list reproduces the graph, and Rebuild's Indices match the snapshot.
func TestSnapshotEdgesRoundTrip(t *testing.T) {
	m := NewMutable(MustCSR(6, []Edge{{0, 1}, {2, 1}, {1, 2}}), 0)
	if _, err := m.Insert([]Edge{{3, 1}, {5, 0}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	rebuilt := s.Rebuild()
	if rebuilt.NumEdges != s.NumE() || rebuilt.NumVertices != s.NumV() {
		t.Fatalf("rebuild shape (%d,%d) != snapshot (%d,%d)",
			rebuilt.NumVertices, rebuilt.NumEdges, s.NumV(), s.NumE())
	}
	for v := 0; v < s.NumV(); v++ {
		if !reflect.DeepEqual(append([]int32{}, rebuilt.InNeighbors(v)...),
			append([]int32{}, s.InNeighbors(v)...)) {
			t.Fatalf("vertex %d: rebuild %v != snapshot %v", v, rebuilt.InNeighbors(v), s.InNeighbors(v))
		}
	}
}
