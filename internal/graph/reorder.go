package graph

import (
	"sort"

	"distgnn/internal/parallel"
)

// Vertex reordering: the aggregation primitive's cache reuse depends on
// neighbors having nearby IDs (the block decomposition of Alg. 2 cuts the
// source range into contiguous chunks). Real pipelines relabel vertices
// before training; these reorderings quantify how much of the paper's
// cache-reuse results depend on vertex locality. Validated against the
// cachesim replay in the tests.

// Permutation maps old vertex IDs to new ones: newID = p[oldID].
type Permutation []int32

// Valid reports whether p is a bijection on [0, len(p)).
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || int(v) >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns q with q[p[i]] = i.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for i, v := range p {
		q[v] = int32(i)
	}
	return q
}

// BFSOrder produces a breadth-first relabeling (Cuthill–McKee style,
// without the reversal): traversal starts from the lowest-ID vertex of
// each component, visiting neighbors in sorted order, so tightly connected
// vertices land on nearby IDs.
func BFSOrder(g *CSR) Permutation {
	rev := g.Reverse()
	perm := make(Permutation, g.NumVertices)
	for i := range perm {
		perm[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, g.NumVertices)
	for start := 0; start < g.NumVertices; start++ {
		if perm[start] != -1 {
			continue
		}
		perm[start] = next
		next++
		queue = append(queue[:0], int32(start))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, nbrs := range [][]int32{g.InNeighbors(int(v)), rev.InNeighbors(int(v))} {
				for _, u := range nbrs {
					if perm[u] == -1 {
						perm[u] = next
						next++
						queue = append(queue, u)
					}
				}
			}
		}
	}
	return perm
}

// DegreeOrder relabels vertices by descending total degree, hubs first.
// Hub features then share the first cache blocks, which concentrates the
// highest-reuse vectors — a common preprocessing step for power-law graphs.
func DegreeOrder(g *CSR) Permutation {
	total := make([]int, g.NumVertices)
	parallel.For(g.NumVertices, degreeGrain, func(v0, v1 int) {
		for v := v0; v < v1; v++ {
			total[v] = g.InDegree(v)
		}
	})
	for _, e := range g.Edges() {
		total[e.Src]++
	}
	order := make([]int32, g.NumVertices)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return total[order[a]] > total[order[b]]
	})
	perm := make(Permutation, g.NumVertices)
	for newID, oldID := range order {
		perm[oldID] = int32(newID)
	}
	return perm
}

// ApplyPermutation relabels g's vertices: vertex v becomes p[v]. Edge IDs
// are preserved, so per-edge data needs no translation.
func ApplyPermutation(g *CSR, p Permutation) *CSR {
	if len(p) != g.NumVertices {
		panic("graph: permutation length mismatch")
	}
	edges := g.Edges()
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{Src: p[e.Src], Dst: p[e.Dst]}
	}
	ng, err := NewCSR(g.NumVertices, out)
	if err != nil {
		panic(err) // permutation validated by construction
	}
	return ng
}

// PermuteRows reorders the rows of a row-major matrix in place-equivalent
// fashion: returned slice r satisfies r[p[v]] = rows[v]. rowLen is the
// stride. Utility for permuting feature matrices and label arrays together
// with the graph.
func PermuteRows(data []float32, rowLen int, p Permutation) []float32 {
	out := make([]float32, len(data))
	// p is a bijection, so writes are disjoint across chunks of old IDs.
	parallel.For(len(p), 1024, func(lo, hi int) {
		for old := lo; old < hi; old++ {
			newID := p[old]
			copy(out[int(newID)*rowLen:(int(newID)+1)*rowLen],
				data[old*rowLen:(old+1)*rowLen])
		}
	})
	return out
}

// PermuteInt32 reorders labels (or any per-vertex int32 array) by p.
func PermuteInt32(vals []int32, p Permutation) []int32 {
	out := make([]int32, len(vals))
	for old, newID := range p {
		out[newID] = vals[old]
	}
	return out
}
