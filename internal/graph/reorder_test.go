package graph

import (
	"math/rand"
	"testing"
)

func TestBFSOrderIsValidPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := MustCSR(80, randomEdges(rng, 80, 400))
	p := BFSOrder(g)
	if !p.Valid() {
		t.Fatal("BFS order is not a permutation")
	}
}

func TestDegreeOrderIsValidPermutationAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := MustCSR(60, randomEdges(rng, 60, 500))
	p := DegreeOrder(g)
	if !p.Valid() {
		t.Fatal("degree order is not a permutation")
	}
	// Total degree must be non-increasing along new IDs.
	total := make([]int, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		total[v] = g.InDegree(v)
	}
	for _, e := range g.Edges() {
		total[e.Src]++
	}
	inv := p.Inverse()
	for newID := 1; newID < g.NumVertices; newID++ {
		if total[inv[newID]] > total[inv[newID-1]] {
			t.Fatalf("degree order violated at position %d", newID)
		}
	}
}

func TestPermutationInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	q := p.Inverse()
	for i := range p {
		if q[p[i]] != int32(i) {
			t.Fatalf("inverse broken at %d", i)
		}
	}
	if (Permutation{0, 0}).Valid() {
		t.Fatal("duplicate mapping must be invalid")
	}
	if (Permutation{0, 5}).Valid() {
		t.Fatal("out-of-range mapping must be invalid")
	}
}

func TestApplyPermutationPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := MustCSR(40, randomEdges(rng, 40, 200))
	p := BFSOrder(g)
	ng := ApplyPermutation(g, p)
	if ng.NumEdges != g.NumEdges {
		t.Fatal("edge count changed")
	}
	// Degree multiset preserved: deg_new(p[v]) == deg_old(v).
	for v := 0; v < g.NumVertices; v++ {
		if ng.InDegree(int(p[v])) != g.InDegree(v) {
			t.Fatalf("degree of vertex %d changed under relabeling", v)
		}
	}
	// Edge IDs preserved: edge e in ng maps the same underlying edge.
	oldEdges, newEdges := g.Edges(), ng.Edges()
	for eid := range oldEdges {
		if newEdges[eid].Src != p[oldEdges[eid].Src] || newEdges[eid].Dst != p[oldEdges[eid].Dst] {
			t.Fatalf("edge %d not relabeled consistently", eid)
		}
	}
}

func TestBFSOrderImprovesNeighborLocality(t *testing.T) {
	// Scramble a ring (high locality by construction) with a random
	// permutation, then verify BFS ordering restores small |id(u)-id(v)|
	// gaps across edges.
	n := 500
	var edges []Edge
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{Src: int32(v), Dst: int32((v + 1) % n)})
	}
	rng := rand.New(rand.NewSource(4))
	scramble := make(Permutation, n)
	for i, v := range rng.Perm(n) {
		scramble[i] = int32(v)
	}
	g := ApplyPermutation(MustCSR(n, edges), scramble)

	gap := func(g *CSR) float64 {
		var total float64
		for _, e := range g.Edges() {
			d := int(e.Src) - int(e.Dst)
			if d < 0 {
				d = -d
			}
			total += float64(d)
		}
		return total / float64(g.NumEdges)
	}
	before := gap(g)
	after := gap(ApplyPermutation(g, BFSOrder(g)))
	if after > before/10 {
		t.Fatalf("BFS ordering left mean edge gap %v (was %v)", after, before)
	}
}

func TestPermuteRowsAndLabels(t *testing.T) {
	p := Permutation{2, 0, 1}
	rows := []float32{1, 1, 2, 2, 3, 3} // rows of width 2
	got := PermuteRows(rows, 2, p)
	want := []float32{2, 2, 3, 3, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PermuteRows: got %v want %v", got, want)
		}
	}
	labels := PermuteInt32([]int32{10, 20, 30}, p)
	wantL := []int32{20, 30, 10}
	for i := range wantL {
		if labels[i] != wantL[i] {
			t.Fatalf("PermuteInt32: got %v want %v", labels, wantL)
		}
	}
}
