// Package graphio serializes graphs and datasets in a compact binary
// format so generated benchmarks can be produced once and shared across
// runs and tools — the role DGL's dataset cache plays for the paper's
// experiments. The format is little-endian, versioned, and validated on
// read.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"distgnn/internal/datasets"
	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

const (
	csrMagic     = 0x44474E31 // "DGN1"
	datasetMagic = 0x44474E44 // "DGND"
)

// WriteCSR writes g in binary CSR form.
func WriteCSR(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, csrMagic, uint64(g.NumVertices), uint64(g.NumEdges)); err != nil {
		return err
	}
	for _, s := range [][]int32{g.Indptr, g.Indices, g.EdgeIDs} {
		if err := writeInt32s(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSR reads a graph written by WriteCSR.
func ReadCSR(r io.Reader) (*graph.CSR, error) {
	br := bufio.NewReader(r)
	nV, nE, err := readHeader(br, csrMagic)
	if err != nil {
		return nil, err
	}
	g := &graph.CSR{NumVertices: int(nV), NumEdges: int(nE)}
	if g.Indptr, err = readInt32s(br, int(nV)+1); err != nil {
		return nil, err
	}
	if g.Indices, err = readInt32s(br, int(nE)); err != nil {
		return nil, err
	}
	if g.EdgeIDs, err = readInt32s(br, int(nE)); err != nil {
		return nil, err
	}
	return g, validateCSR(g)
}

func validateCSR(g *graph.CSR) error {
	if len(g.Indptr) == 0 || g.Indptr[0] != 0 || int(g.Indptr[g.NumVertices]) != g.NumEdges {
		return fmt.Errorf("graphio: corrupt indptr")
	}
	for v := 0; v < g.NumVertices; v++ {
		if g.Indptr[v] > g.Indptr[v+1] {
			return fmt.Errorf("graphio: indptr not monotone at %d", v)
		}
	}
	for _, u := range g.Indices {
		if u < 0 || int(u) >= g.NumVertices {
			return fmt.Errorf("graphio: source %d out of range", u)
		}
	}
	for _, e := range g.EdgeIDs {
		if e < 0 || int(e) >= g.NumEdges {
			return fmt.Errorf("graphio: edge id %d out of range", e)
		}
	}
	return nil
}

// WriteDataset writes the complete dataset: graph, features, labels,
// splits and class count (community assignments are not persisted).
func WriteDataset(w io.Writer, d *datasets.Dataset) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, datasetMagic,
		uint64(d.Features.Cols), uint64(d.NumClasses)); err != nil {
		return err
	}
	if err := WriteCSR(bw, d.G); err != nil {
		return err
	}
	if err := writeFloat32s(bw, d.Features.Data); err != nil {
		return err
	}
	if err := writeInt32s(bw, d.Labels); err != nil {
		return err
	}
	for _, idx := range [][]int32{d.TrainIdx, d.ValIdx, d.TestIdx} {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(idx))); err != nil {
			return err
		}
		if err := writeInt32s(bw, idx); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDataset reads a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*datasets.Dataset, error) {
	br := bufio.NewReader(r)
	featDim, classes, err := readHeader(br, datasetMagic)
	if err != nil {
		return nil, err
	}
	g, err := ReadCSR(br)
	if err != nil {
		return nil, err
	}
	d := &datasets.Dataset{G: g, NumClasses: int(classes)}
	feats, err := readFloat32s(br, g.NumVertices*int(featDim))
	if err != nil {
		return nil, err
	}
	d.Features = tensor.FromSlice(g.NumVertices, int(featDim), feats)
	if d.Labels, err = readInt32s(br, g.NumVertices); err != nil {
		return nil, err
	}
	for i, l := range d.Labels {
		if l < 0 || int(l) >= d.NumClasses {
			return nil, fmt.Errorf("graphio: label %d of vertex %d out of range", l, i)
		}
	}
	for _, dst := range []*[]int32{&d.TrainIdx, &d.ValIdx, &d.TestIdx} {
		var n uint64
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > uint64(g.NumVertices) {
			return nil, fmt.Errorf("graphio: split of %d exceeds vertex count", n)
		}
		if *dst, err = readInt32s(br, int(n)); err != nil {
			return nil, err
		}
		for _, v := range *dst {
			if v < 0 || int(v) >= g.NumVertices {
				return nil, fmt.Errorf("graphio: split index %d out of range", v)
			}
		}
	}
	return d, nil
}

func writeHeader(w io.Writer, magic uint32, a, b uint64) error {
	for _, v := range []any{magic, uint32(1), a, b} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader, wantMagic uint32) (a, b uint64, err error) {
	var magic, version uint32
	if err = binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return 0, 0, err
	}
	if magic != wantMagic {
		return 0, 0, fmt.Errorf("graphio: bad magic %#x", magic)
	}
	if err = binary.Read(r, binary.LittleEndian, &version); err != nil {
		return 0, 0, err
	}
	if version != 1 {
		return 0, 0, fmt.Errorf("graphio: unsupported version %d", version)
	}
	if err = binary.Read(r, binary.LittleEndian, &a); err != nil {
		return 0, 0, err
	}
	if err = binary.Read(r, binary.LittleEndian, &b); err != nil {
		return 0, 0, err
	}
	const sane = 1 << 33
	if a > sane || b > sane {
		return 0, 0, fmt.Errorf("graphio: implausible header sizes %d/%d", a, b)
	}
	return a, b, nil
}

func writeInt32s(w io.Writer, s []int32) error {
	return binary.Write(w, binary.LittleEndian, s)
}

func readInt32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, out); err != nil {
		return nil, err
	}
	return out, nil
}

func writeFloat32s(w io.Writer, s []float32) error {
	return binary.Write(w, binary.LittleEndian, s)
}

func readFloat32s(r io.Reader, n int) ([]float32, error) {
	out := make([]float32, n)
	if err := binary.Read(r, binary.LittleEndian, out); err != nil {
		return nil, err
	}
	return out, nil
}
