package graphio

import (
	"bytes"
	"math/rand"
	"testing"

	"distgnn/internal/datasets"
	"distgnn/internal/graph"
)

func randomCSR(seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := 50 + rng.Intn(100)
	edges := make([]graph.Edge, 300+rng.Intn(500))
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	return graph.MustCSR(n, edges)
}

func TestCSRRoundTrip(t *testing.T) {
	g := randomCSR(1)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices != g.NumVertices || got.NumEdges != g.NumEdges {
		t.Fatalf("counts changed: %d/%d vs %d/%d",
			got.NumVertices, got.NumEdges, g.NumVertices, g.NumEdges)
	}
	for i := range g.Indptr {
		if g.Indptr[i] != got.Indptr[i] {
			t.Fatal("indptr changed")
		}
	}
	for i := range g.Indices {
		if g.Indices[i] != got.Indices[i] || g.EdgeIDs[i] != got.EdgeIDs[i] {
			t.Fatal("indices/edge IDs changed")
		}
	}
}

func TestCSRRejectsBadMagic(t *testing.T) {
	if _, err := ReadCSR(bytes.NewReader([]byte("not a graph file at all........"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestCSRRejectsTruncation(t *testing.T) {
	g := randomCSR(2)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{1, 8, 20, len(data) / 2, len(data) - 1} {
		if _, err := ReadCSR(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
}

func TestCSRRejectsCorruptIndices(t *testing.T) {
	g := randomCSR(3)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt a byte inside the indices region (after header+indptr).
	off := 24 + (g.NumVertices+1)*4 + 10
	data[off] ^= 0xFF
	if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
		t.Skip("corruption happened to stay in range — acceptable")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	d := datasets.MustGenerate(datasets.Spec{
		Name: "io-test", NumVertices: 300, AvgDegree: 8,
		FeatDim: 12, NumClasses: 5, Seed: 4,
	})
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.NumEdges != d.G.NumEdges || got.NumClasses != d.NumClasses {
		t.Fatal("metadata changed")
	}
	if got.Features.MaxAbsDiff(d.Features) != 0 {
		t.Fatal("features changed")
	}
	for i := range d.Labels {
		if got.Labels[i] != d.Labels[i] {
			t.Fatal("labels changed")
		}
	}
	check := func(a, b []int32) {
		if len(a) != len(b) {
			t.Fatal("split size changed")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("split changed")
			}
		}
	}
	check(d.TrainIdx, got.TrainIdx)
	check(d.ValIdx, got.ValIdx)
	check(d.TestIdx, got.TestIdx)
}

func TestDatasetRejectsGraphFile(t *testing.T) {
	g := randomCSR(5)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(&buf); err == nil {
		t.Fatal("reading a CSR file as dataset must error")
	}
}

func TestHeaderRejectsImplausibleSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHeader(&buf, csrMagic, 1<<40, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readHeader(&buf, csrMagic); err == nil {
		t.Fatal("implausible size must error")
	}
}
