package hetero

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/graph"
	"distgnn/internal/nn"
	"distgnn/internal/tensor"
)

func tinyTyped(t *testing.T) *TypedGraph {
	t.Helper()
	g := graph.MustCSR(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2},
		{Src: 2, Dst: 1}, {Src: 0, Dst: 2}, {Src: 3, Dst: 0},
	})
	tg, err := NewTypedGraph(g, []int32{0, 1, 0, 1, 2, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestNewTypedGraphPartitionsEdgesByRelation(t *testing.T) {
	tg := tinyTyped(t)
	counts := tg.RelationEdgeCounts()
	want := []int{3, 2, 1}
	for r, w := range want {
		if counts[r] != w {
			t.Fatalf("relation %d has %d edges, want %d", r, counts[r], w)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tg.G.NumEdges {
		t.Fatalf("edges lost: %d vs %d", total, tg.G.NumEdges)
	}
	// Translated global edge IDs must point to edges of that relation.
	for r := 0; r < tg.NumRelations; r++ {
		sub := tg.Relation(r)
		for v := 0; v < sub.NumVertices; v++ {
			for _, local := range sub.InEdgeIDs(v) {
				eid := tg.GlobalEdgeID(r, local)
				if tg.EdgeType[eid] != int32(r) {
					t.Fatalf("relation %d sub-CSR references edge %d of relation %d",
						r, eid, tg.EdgeType[eid])
				}
			}
		}
	}
}

func TestNewTypedGraphValidation(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := NewTypedGraph(g, []int32{0, 0}, 1); err == nil {
		t.Fatal("wrong edge-type count must error")
	}
	if _, err := NewTypedGraph(g, []int32{5}, 2); err == nil {
		t.Fatal("out-of-range relation must error")
	}
	if _, err := NewTypedGraph(g, []int32{0}, 0); err == nil {
		t.Fatal("zero relations must error")
	}
}

func TestRGCNForwardShape(t *testing.T) {
	tg := tinyTyped(t)
	m, err := NewRGCN(tg, RGCNConfig{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rand.New(rand.NewSource(1)), 1)
	y := m.Forward(x, false)
	if y.Rows != 5 || y.Cols != 3 {
		t.Fatalf("output %dx%d", y.Rows, y.Cols)
	}
}

func TestRGCNRejectsBadConfig(t *testing.T) {
	tg := tinyTyped(t)
	bad := []RGCNConfig{
		{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 0},
		{InDim: 0, Hidden: 8, OutDim: 3, NumLayers: 2},
		{InDim: 4, Hidden: 0, OutDim: 3, NumLayers: 2},
	}
	for i, cfg := range bad {
		if _, err := NewRGCN(tg, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestRGCNBaselineAndOptimizedAgree(t *testing.T) {
	tg := tinyTyped(t)
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rand.New(rand.NewSource(2)), 1)
	opt, err := NewRGCN(tg, RGCNConfig{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewRGCN(tg, RGCNConfig{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 2, Seed: 3,
		UseBaselineAgg: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := opt.Forward(x, false).MaxAbsDiff(base.Forward(x, false)); d > 1e-4 {
		t.Fatalf("baseline vs optimized RGCN differ by %v", d)
	}
}

func TestRGCNGradCheck(t *testing.T) {
	tg := tinyTyped(t)
	m, err := NewRGCN(tg, RGCNConfig{InDim: 4, Hidden: 6, OutDim: 3, NumLayers: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rng, 1)
	labels := []int32{0, 1, 2, 0, 1}
	mask := []int32{0, 1, 2, 3, 4}
	lossOf := func() float64 {
		logits := m.Forward(x, false)
		l, _ := nn.MaskedCrossEntropy(logits, labels, mask)
		return l
	}
	logits := m.Forward(x, false)
	_, dlogits := nn.MaskedCrossEntropy(logits, labels, mask)
	nn.ZeroGrads(m.Params())
	m.Backward(dlogits)
	const h = 1e-3
	for _, p := range m.Params() {
		for _, idx := range []int{0, len(p.W.Data) - 1} {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + h
			up := lossOf()
			p.W.Data[idx] = orig - h
			down := lossOf()
			p.W.Data[idx] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[idx])
			if math.Abs(numeric-analytic) > 3e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, idx, analytic, numeric)
			}
		}
	}
}

func TestSyntheticAMTrains(t *testing.T) {
	ds, tg, err := SyntheticAM(0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewRGCN(tg, RGCNConfig{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: ds.NumClasses,
		NumLayers: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	adam := nn.NewAdam(0.02, 0)
	params := m.Params()
	var first, last float64
	for e := 0; e < 30; e++ {
		logits := m.Forward(ds.Features, true)
		loss, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
		if e == 0 {
			first = loss
		}
		last = loss
		nn.ZeroGrads(params)
		m.Backward(dlogits)
		adam.Step(params)
	}
	if last >= first*0.8 {
		t.Fatalf("RGCN loss %v → %v did not improve", first, last)
	}
	if m.AggTime <= 0 {
		t.Fatal("AP time not recorded")
	}
	if m.RelationWork() <= 0 {
		t.Fatal("relation work must be positive")
	}
}

func TestSyntheticAMRelationsCoverAllEdges(t *testing.T) {
	_, tg, err := SyntheticAM(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range tg.RelationEdgeCounts() {
		total += c
	}
	if total != tg.G.NumEdges {
		t.Fatalf("relation edges %d != graph edges %d", total, tg.G.NumEdges)
	}
	seen := map[int32]bool{}
	for _, r := range tg.EdgeType {
		seen[r] = true
	}
	if len(seen) < 2 {
		t.Fatal("synthetic AM should use multiple relations")
	}
}
