package hetero

import (
	"fmt"
	"math/rand"
	"time"

	"distgnn/internal/nn"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// RGCNConfig describes a relational GCN instance.
type RGCNConfig struct {
	InDim     int
	Hidden    int
	OutDim    int
	NumLayers int
	// UseBaselineAgg selects the Alg. 1 kernel for the per-relation
	// aggregation — the baseline arm of Fig. 2(d).
	UseBaselineAgg bool
	Seed           int64
}

// RGCN is the relational GCN of Schlichtkrull et al., the model Fig. 2(d)
// of the paper trains on AM. Per layer:
//
//	h'_v = ReLU( Σ_r (1/|N_r(v)|) Σ_{u∈N_r(v)} x_u·W_r  +  x_v·W_0 )
//
// One weight matrix per relation plus a self-loop weight; per-relation
// mean aggregation runs through the spmm kernels.
type RGCN struct {
	Cfg RGCNConfig
	T   *TypedGraph

	layers []*rgcnLayer
	// fwdPlans[r]/bwdPlans[r]: optimized aggregation plans per relation.
	fwdPlans []*spmm.Plan
	bwdPlans []*spmm.Plan
	// relNorm[r][v] = 1/|N_r(v)| (0 for vertices without relation-r edges).
	relNorm [][]float32

	// AggTime accumulates aggregation-primitive wall time (Fig. 2's AP bar).
	AggTime time.Duration
}

type rgcnLayer struct {
	relW  []*nn.Param // per-relation weights, in×out
	selfW *nn.Linear  // self-loop path with bias
	last  bool

	x       *tensor.Matrix   // layer input
	relAggs []*tensor.Matrix // normalized per-relation aggregates
	h       *tensor.Matrix   // output (ReLU mask)
}

// NewRGCN builds an RGCN over the typed graph.
func NewRGCN(t *TypedGraph, cfg RGCNConfig) (*RGCN, error) {
	if cfg.NumLayers < 1 {
		return nil, fmt.Errorf("hetero: NumLayers must be ≥1")
	}
	if cfg.InDim <= 0 || cfg.OutDim <= 0 || (cfg.NumLayers > 1 && cfg.Hidden <= 0) {
		return nil, fmt.Errorf("hetero: dimensions must be positive")
	}
	m := &RGCN{Cfg: cfg, T: t}
	for r := 0; r < t.NumRelations; r++ {
		sub := t.Relation(r)
		if !cfg.UseBaselineAgg {
			m.fwdPlans = append(m.fwdPlans, spmm.NewPlan(sub, spmm.DefaultOptions(1)))
		} else {
			m.fwdPlans = append(m.fwdPlans, nil)
		}
		m.bwdPlans = append(m.bwdPlans, spmm.NewPlan(sub.Reverse(), spmm.DefaultOptions(1)))
		norm := make([]float32, sub.NumVertices)
		for v := 0; v < sub.NumVertices; v++ {
			if d := sub.InDegree(v); d > 0 {
				norm[v] = 1 / float32(d)
			}
		}
		m.relNorm = append(m.relNorm, norm)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for l := 0; l < cfg.NumLayers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InDim
		}
		out := cfg.Hidden
		if l == cfg.NumLayers-1 {
			out = cfg.OutDim
		}
		layer := &rgcnLayer{
			selfW: nn.NewLinear(fmt.Sprintf("rgcn%d.self", l), in, out, true, rng),
			last:  l == cfg.NumLayers-1,
		}
		for r := 0; r < t.NumRelations; r++ {
			w := nn.NewParam(fmt.Sprintf("rgcn%d.rel%d", l, r), in, out)
			tensor.GlorotUniform(w.W, rng)
			layer.relW = append(layer.relW, w)
		}
		m.layers = append(m.layers, layer)
	}
	return m, nil
}

// aggregateRel computes the relation-r mean aggregate of x.
func (m *RGCN) aggregateRel(r int, x *tensor.Matrix) *tensor.Matrix {
	start := time.Now()
	sub := m.T.Relation(r)
	out := tensor.New(x.Rows, x.Cols)
	args := &spmm.Args{G: sub, FV: x, FO: out, Op: spmm.OpCopyLHS, Red: spmm.ReduceSum}
	var err error
	if m.Cfg.UseBaselineAgg {
		err = spmm.Baseline(args)
	} else {
		err = m.fwdPlans[r].Run(args)
	}
	if err != nil {
		panic(err)
	}
	out.ScaleRows(m.relNorm[r])
	m.AggTime += time.Since(start)
	return out
}

// aggregateRelReverse propagates gradients along relation r's reverse edges.
func (m *RGCN) aggregateRelReverse(r int, g *tensor.Matrix) *tensor.Matrix {
	start := time.Now()
	out := tensor.New(g.Rows, g.Cols)
	args := &spmm.Args{G: m.bwdPlans[r].G, FV: g, FO: out, Op: spmm.OpCopyLHS, Red: spmm.ReduceSum}
	if err := m.bwdPlans[r].Run(args); err != nil {
		panic(err)
	}
	m.AggTime += time.Since(start)
	return out
}

// Forward returns per-vertex logits.
func (m *RGCN) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	h := x
	for _, layer := range m.layers {
		layer.x = h
		layer.relAggs = layer.relAggs[:0]
		y := layer.selfW.Forward(h, training)
		for r := 0; r < m.T.NumRelations; r++ {
			agg := m.aggregateRel(r, h)
			layer.relAggs = append(layer.relAggs, agg)
			tensor.MatMulAcc(y, agg, layer.relW[r].W)
		}
		if !layer.last {
			for i, v := range y.Data {
				if v < 0 {
					y.Data[i] = 0
				}
			}
		}
		layer.h = y
		h = y
	}
	return h
}

// Backward propagates ∂L/∂logits, accumulating parameter gradients.
func (m *RGCN) Backward(dlogits *tensor.Matrix) {
	dy := dlogits
	for l := len(m.layers) - 1; l >= 0; l-- {
		layer := m.layers[l]
		if !layer.last {
			masked := tensor.New(dy.Rows, dy.Cols)
			for i, v := range dy.Data {
				if layer.h.Data[i] > 0 {
					masked.Data[i] = v
				}
			}
			dy = masked
		}
		// Self path (Linear caches its own input).
		dx := layer.selfW.Backward(dy)
		// Per-relation paths: y += norm(A_r x)·W_r.
		for r := 0; r < m.T.NumRelations; r++ {
			w := layer.relW[r]
			// dW_r += (normalized aggregate)ᵀ · dy.
			dW := tensor.New(w.W.Rows, w.W.Cols)
			tensor.MatMulTransA(dW, layer.relAggs[r], dy)
			w.Grad.Add(dW)
			// dAgg = dy · W_rᵀ, then un-normalize and flow along Aᵀ.
			dAgg := tensor.New(dy.Rows, w.W.Rows)
			tensor.MatMulTransB(dAgg, dy, w.W)
			dAgg.ScaleRows(m.relNorm[r])
			dx.Add(m.aggregateRelReverse(r, dAgg))
		}
		dy = dx
	}
}

// Params returns all trainable parameters.
func (m *RGCN) Params() []*nn.Param {
	var out []*nn.Param
	for _, layer := range m.layers {
		out = append(out, layer.selfW.Params()...)
		for _, w := range layer.relW {
			out = append(out, w)
		}
	}
	return out
}

// ResetAggTime clears the AP time accumulator.
func (m *RGCN) ResetAggTime() { m.AggTime = 0 }

// RelationWork returns aggregation work (edges × width summed over layers)
// — the per-epoch AP workload of the model, for work accounting.
func (m *RGCN) RelationWork() int64 {
	var perLayerEdges int64
	for r := 0; r < m.T.NumRelations; r++ {
		perLayerEdges += int64(m.T.Relation(r).NumEdges)
	}
	var total int64
	in := int64(m.Cfg.InDim)
	for l := 0; l < m.Cfg.NumLayers; l++ {
		total += perLayerEdges * in
		in = int64(m.Cfg.Hidden)
	}
	return total
}
