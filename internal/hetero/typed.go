// Package hetero provides the heterogeneous-graph substrate and the
// relational GCN model behind Fig. 2(d) of the paper, which trains
// RGCN-hetero on the AM (Amsterdam Museum) dataset. A TypedGraph carries a
// relation label per edge; RGCN aggregates each relation through its own
// weight matrix. The aggregation reuses the spmm kernels with one
// per-relation CSR, so the single-socket optimizations (blocking, dynamic
// scheduling, loop reordering) apply per relation exactly as in the
// homogeneous case.
package hetero

import (
	"fmt"

	"distgnn/internal/datasets"
	"distgnn/internal/graph"
)

// TypedGraph is a directed multigraph whose edges carry relation types.
type TypedGraph struct {
	G            *graph.CSR
	EdgeType     []int32 // relation per edge ID
	NumRelations int

	// perRel[r] holds only relation r's edges with local edge IDs;
	// globalEdgeID[r][localID] maps back to the full graph's edge IDs so
	// per-edge data can still be addressed.
	perRel       []*graph.CSR
	globalEdgeID [][]int32
}

// NewTypedGraph validates edge types and builds the per-relation CSRs.
func NewTypedGraph(g *graph.CSR, edgeType []int32, numRelations int) (*TypedGraph, error) {
	if len(edgeType) != g.NumEdges {
		return nil, fmt.Errorf("hetero: %d edge types for %d edges", len(edgeType), g.NumEdges)
	}
	if numRelations < 1 {
		return nil, fmt.Errorf("hetero: need ≥1 relation, got %d", numRelations)
	}
	for i, r := range edgeType {
		if r < 0 || int(r) >= numRelations {
			return nil, fmt.Errorf("hetero: edge %d has relation %d outside [0,%d)", i, r, numRelations)
		}
	}
	t := &TypedGraph{G: g, EdgeType: edgeType, NumRelations: numRelations}
	edges := g.Edges()
	perRelEdges := make([][]graph.Edge, numRelations)
	perRelIDs := make([][]int32, numRelations)
	for eid, e := range edges {
		r := edgeType[eid]
		perRelEdges[r] = append(perRelEdges[r], e)
		perRelIDs[r] = append(perRelIDs[r], int32(eid))
	}
	for r := 0; r < numRelations; r++ {
		sub, err := graph.NewCSR(g.NumVertices, perRelEdges[r])
		if err != nil {
			return nil, err
		}
		t.perRel = append(t.perRel, sub)
		t.globalEdgeID = append(t.globalEdgeID, perRelIDs[r])
	}
	return t, nil
}

// Relation returns relation r's subgraph (full vertex ID space, local
// edge IDs — translate with GlobalEdgeID).
func (t *TypedGraph) Relation(r int) *graph.CSR { return t.perRel[r] }

// GlobalEdgeID maps relation r's local edge ID to the full graph's edge ID.
func (t *TypedGraph) GlobalEdgeID(r int, local int32) int32 {
	return t.globalEdgeID[r][local]
}

// RelationEdgeCounts returns the number of edges per relation.
func (t *TypedGraph) RelationEdgeCounts() []int {
	out := make([]int, t.NumRelations)
	for r, sub := range t.perRel {
		out[r] = sub.NumEdges
	}
	return out
}

// SyntheticAM builds the heterograph stand-in for the AM dataset: the
// am-sim graph with relation labels derived from the endpoint communities
// (artifacts in AM link through typed properties — material, production,
// content — which correlate with artifact categories; community-pair
// hashing reproduces that correlation).
func SyntheticAM(scale float64, numRelations int) (*datasets.Dataset, *TypedGraph, error) {
	ds, err := datasets.Load("am-sim", scale)
	if err != nil {
		return nil, nil, err
	}
	edgeType := make([]int32, ds.G.NumEdges)
	for eid, e := range ds.G.Edges() {
		cs := ds.Community[e.Src]
		cd := ds.Community[e.Dst]
		edgeType[eid] = (cs*7 + cd*13) % int32(numRelations)
	}
	tg, err := NewTypedGraph(ds.G, edgeType, numRelations)
	if err != nil {
		return nil, nil, err
	}
	return ds, tg, nil
}
