package minibatch

import (
	"fmt"
	"math/rand"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/featstore"
	"distgnn/internal/nn"
)

// DistConfig configures distributed mini-batch training — the paper's §7
// headline future-work item ("we expect to demonstrate highly scalable
// DistGNN for mini-batch training"), realized Dist-DGL style: training
// vertices are sharded across ranks, every rank samples its own
// mini-batches, and gradients are AllReduced per step so all model
// replicas stay identical.
type DistConfig struct {
	Config
	NumRanks int
}

// DistEpochStat is one distributed mini-batch epoch.
type DistEpochStat struct {
	Loss        float64
	Time        time.Duration
	SampledWork int64 // summed across ranks
	Steps       int   // synchronized optimizer steps
	// AllReduce is the wall time spent inside the per-step gradient
	// AllReduce this epoch: the max across ranks for the in-process
	// trainer, this rank's own time on a TCP endpoint. Pure timing —
	// recording it never changes a reduction's float order.
	AllReduce time.Duration
}

// DistResult is the outcome of a distributed mini-batch run.
type DistResult struct {
	Epochs  []DistEpochStat
	TestAcc float64
	// Params is the final flattened parameter vector (rank 0's replica; all
	// replicas are identical). The distributed-minibatch conformance harness
	// compares it bit for bit across rank counts, transports, and against
	// the replicated reference.
	Params []float32
	// HaloStats is the per-rank featstore fetch/cache snapshot, populated by
	// TrainSharded only (rank-indexed; a TCP endpoint fills only its own
	// rank's entry).
	HaloStats []featstore.ShardedStats
}

// TrainDistributed runs data-parallel mini-batch training over NumRanks
// in-process ranks.
func TrainDistributed(ds *datasets.Dataset, cfg DistConfig) (*DistResult, error) {
	if cfg.NumRanks < 1 {
		return nil, fmt.Errorf("minibatch: NumRanks must be ≥1, got %d", cfg.NumRanks)
	}
	if cfg.NumLayers != len(cfg.Fanouts) {
		return nil, fmt.Errorf("minibatch: NumLayers %d != len(Fanouts) %d", cfg.NumLayers, len(cfg.Fanouts))
	}
	if cfg.BatchSize < 1 || cfg.Epochs < 1 {
		return nil, fmt.Errorf("minibatch: BatchSize and Epochs must be positive")
	}
	// One read-only feature store shared by all ranks; with bf16 every rank
	// reads the same rounded slab, so replicas stay bit-identical.
	feats, err := featRowsFor(ds, cfg.FeatPrecision)
	if err != nil {
		return nil, err
	}

	// Shard training vertices round-robin after one seeded shuffle.
	shuffled := append([]int32(nil), ds.TrainIdx...)
	rand.New(rand.NewSource(cfg.Seed)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	shards := make([][]int32, cfg.NumRanks)
	for i, v := range shuffled {
		shards[i%cfg.NumRanks] = append(shards[i%cfg.NumRanks], v)
	}

	world := comm.NewWorld(cfg.NumRanks)
	type rank struct {
		model   *mbModel
		sampler *Sampler
		opt     nn.Optimizer
		rng     *rand.Rand
		shard   []int32
	}
	ranks := make([]*rank, cfg.NumRanks)
	for rID := range ranks {
		// Identical model seed on every rank; per-rank sampler seeds.
		mrng := rand.New(rand.NewSource(cfg.Seed + 100))
		m := newMBModel(ds.Features.Cols, cfg.Hidden, ds.NumClasses, cfg.NumLayers, mrng)
		sampler, err := NewSampler(ds.G, cfg.Fanouts, cfg.Seed+int64(rID))
		if err != nil {
			return nil, err
		}
		var opt nn.Optimizer
		if cfg.UseAdam {
			opt = nn.NewAdam(cfg.LR, 0)
		} else {
			opt = &nn.SGD{LR: cfg.LR}
		}
		ranks[rID] = &rank{
			model: m, sampler: sampler, opt: opt,
			rng:   rand.New(rand.NewSource(cfg.Seed + 1000 + int64(rID))),
			shard: append([]int32(nil), shards[rID]...),
		}
	}

	// All ranks must execute the same number of synchronized steps per
	// epoch; ranks that run out of local batches contribute zero gradients.
	maxBatches := 0
	for _, r := range ranks {
		b := (len(r.shard) + cfg.BatchSize - 1) / cfg.BatchSize
		if b > maxBatches {
			maxBatches = b
		}
	}
	if maxBatches == 0 {
		return nil, fmt.Errorf("minibatch: no training vertices")
	}

	res := &DistResult{}
	lossParts := make([]float64, cfg.NumRanks)
	workParts := make([]int64, cfg.NumRanks)
	arParts := make([]time.Duration, cfg.NumRanks)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		for i := range lossParts {
			lossParts[i], workParts[i], arParts[i] = 0, 0, 0
		}
		world.Run(func(rID int) {
			r := ranks[rID]
			r.rng.Shuffle(len(r.shard), func(i, j int) {
				r.shard[i], r.shard[j] = r.shard[j], r.shard[i]
			})
			params := r.model.params()
			for step := 0; step < maxBatches; step++ {
				nn.ZeroGrads(params)
				var seeds []int32
				if off := step * cfg.BatchSize; off < len(r.shard) {
					end := off + cfg.BatchSize
					if end > len(r.shard) {
						end = len(r.shard)
					}
					seeds = r.shard[off:end]
				}
				var batchN int
				if len(seeds) > 0 {
					s := r.sampler.Sample(seeds)
					logits := r.model.forward(s, feats, true)
					localLabels := make([]int32, len(seeds))
					mask := make([]int32, len(seeds))
					for i, g := range seeds {
						localLabels[i] = ds.Labels[g]
						mask[i] = int32(i)
					}
					loss, dlogits := nn.MaskedCrossEntropy(logits, localLabels, mask)
					r.model.backward(dlogits)
					lossParts[rID] += loss * float64(len(seeds))
					workParts[rID] += sampledWork(s, r.model.dims)
					batchN = len(seeds)
				}
				// Scale the local gradient to its share of the global batch,
				// then AllReduce. Idle ranks contribute zeros.
				global := globalBatchSize(shards, step, cfg.BatchSize)
				scale := float32(0)
				if global > 0 {
					scale = float32(batchN) / float32(global)
				}
				for _, p := range params {
					p.Grad.Scale(scale)
				}
				gbuf := nn.FlattenParams(params, true)
				arStart := time.Now()
				world.AllReduceSum(rID, gbuf)
				arParts[rID] += time.Since(arStart)
				nn.UnflattenParams(params, gbuf, true)
				r.opt.Step(params)
			}
		})
		st := DistEpochStat{Time: time.Since(start), Steps: maxBatches}
		var lsum float64
		for rID := range ranks {
			lsum += lossParts[rID]
			st.SampledWork += workParts[rID]
			if arParts[rID] > st.AllReduce {
				st.AllReduce = arParts[rID]
			}
		}
		if len(ds.TrainIdx) > 0 {
			st.Loss = lsum / float64(len(ds.TrainIdx))
		}
		res.Epochs = append(res.Epochs, st)
	}

	res.Params = nn.FlattenParams(ranks[0].model.params(), false)

	// Replicas are identical; evaluate with rank 0's model and sampler.
	res.TestAcc = evaluate(ds, ranks[0].sampler, ranks[0].model, cfg.BatchSize, feats)
	return res, nil
}

// globalBatchSize sums the batch sizes all ranks process at a given step.
func globalBatchSize(shards [][]int32, step, batch int) int {
	total := 0
	for _, shard := range shards {
		off := step * batch
		if off < len(shard) {
			n := len(shard) - off
			if n > batch {
				n = batch
			}
			total += n
		}
	}
	return total
}
