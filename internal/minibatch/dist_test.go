package minibatch

import (
	"testing"
)

func TestTrainDistributedLearns(t *testing.T) {
	ds := testDS(t)
	res, err := TrainDistributed(ds, DistConfig{
		Config: Config{
			Hidden: 16, NumLayers: 2, Fanouts: []int{10, 5},
			BatchSize: 64, Epochs: 8, LR: 0.05, UseAdam: true, Seed: 5,
		},
		NumRanks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Epochs[0].Loss, res.Epochs[len(res.Epochs)-1].Loss
	if last >= first*0.8 {
		t.Fatalf("distributed mini-batch loss %v → %v did not improve", first, last)
	}
	if res.TestAcc < 0.5 {
		t.Fatalf("test accuracy %v < 0.5", res.TestAcc)
	}
	for _, e := range res.Epochs {
		if e.Steps <= 0 || e.SampledWork <= 0 {
			t.Fatalf("bad epoch stat %+v", e)
		}
	}
}

func TestTrainDistributedSingleRankMatchesLocal(t *testing.T) {
	// One rank with the same seeds must behave like a plain mini-batch run
	// in loss magnitude (not exactly — shuffle orders differ — but the
	// model must reach comparable accuracy).
	ds := testDS(t)
	local, err := Train(ds, Config{
		Hidden: 16, NumLayers: 2, Fanouts: []int{10, 5},
		BatchSize: 64, Epochs: 6, LR: 0.05, UseAdam: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := TrainDistributed(ds, DistConfig{
		Config: Config{
			Hidden: 16, NumLayers: 2, Fanouts: []int{10, 5},
			BatchSize: 64, Epochs: 6, LR: 0.05, UseAdam: true, Seed: 5,
		},
		NumRanks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := local.TestAcc - dist.TestAcc; diff > 0.15 || diff < -0.15 {
		t.Fatalf("1-rank distributed accuracy %v far from local %v", dist.TestAcc, local.TestAcc)
	}
}

func TestTrainDistributedDeterministic(t *testing.T) {
	ds := testDS(t)
	run := func() *DistResult {
		res, err := TrainDistributed(ds, DistConfig{
			Config: Config{
				Hidden: 8, NumLayers: 2, Fanouts: []int{5, 5},
				BatchSize: 64, Epochs: 3, LR: 0.05, Seed: 9,
			},
			NumRanks: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for e := range a.Epochs {
		if a.Epochs[e].Loss != b.Epochs[e].Loss {
			t.Fatalf("epoch %d losses differ: %v vs %v", e, a.Epochs[e].Loss, b.Epochs[e].Loss)
		}
	}
	if a.TestAcc != b.TestAcc {
		t.Fatal("accuracies differ across runs")
	}
}

func TestTrainDistributedUnevenShards(t *testing.T) {
	// Train-set size not divisible by ranks×batch: idle ranks must still
	// participate in collectives (no deadlock) and training must finish.
	ds := testDS(t)
	res, err := TrainDistributed(ds, DistConfig{
		Config: Config{
			Hidden: 8, NumLayers: 1, Fanouts: []int{5},
			BatchSize: 200, Epochs: 2, LR: 0.05, Seed: 1,
		},
		NumRanks: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatal("missing epochs")
	}
}

func TestTrainDistributedRejectsBadConfig(t *testing.T) {
	ds := testDS(t)
	bad := []DistConfig{
		{Config: Config{Hidden: 8, NumLayers: 1, Fanouts: []int{5}, BatchSize: 10, Epochs: 1, LR: 0.1}, NumRanks: 0},
		{Config: Config{Hidden: 8, NumLayers: 2, Fanouts: []int{5}, BatchSize: 10, Epochs: 1, LR: 0.1}, NumRanks: 2},
		{Config: Config{Hidden: 8, NumLayers: 1, Fanouts: []int{5}, BatchSize: 0, Epochs: 1, LR: 0.1}, NumRanks: 2},
	}
	for i, cfg := range bad {
		if _, err := TrainDistributed(ds, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}
