package minibatch

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/featstore"
	"distgnn/internal/nn"
	"distgnn/internal/partition"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// distsharded.go is TrainDistributed with the feature replication removed:
// training vertices are still sharded round-robin and gradients AllReduced
// per step, but every rank materializes only the feature rows of the
// vertices it owns (internal/partition's deterministic vertex-cut reduced
// to unique owners, exactly as the sharded serving engine does) and reads
// everything else through featstore.Sharded — one batched halo fetch per
// owner rank over the comm.ReqRep plane, absorbed by a per-rank LRU, issued
// for batch t+1 while batch t computes.
//
// The bit-identity chain to the replicated reference (TrainDistributed with
// identical Config): the sampler/model/shuffle seed derivations are copied
// verbatim, so every rank draws the same batches and sampled blocks; a
// sharded gather returns the exact fp32 bits of the resident matrix
// (featstore's contract); layer-0 aggregation over the gathered matrix is
// pinned bit-identical to the fused kernel TrainDistributed uses
// (TestFusedGatherAggExact); and AllReduce reduces in rank order on both
// fabrics. Final parameters are therefore bit-identical across 1/2/4 ranks,
// both transports, and against TrainDistributed — the pin
// TestTrainShardedConformance holds.

// ShardedTrainConfig configures sharded sampled mini-batch training.
type ShardedTrainConfig struct {
	DistConfig
	// Transport selects the fabric. Nil runs all NumRanks ranks in this
	// process over a fresh in-process world. A single-rank endpoint (TCP)
	// runs rank Transport.Self() in this process; the caller launches one
	// process per rank. The transport stays owned by the caller.
	Transport comm.Transport
	// PartitionSeed seeds the deterministic partitioning every rank derives
	// identically (default 1, matching serve's shard mode).
	PartitionSeed int64
	// CacheBytes budgets the per-rank LRU of fetched halo feature rows;
	// ≤ 0 disables caching.
	CacheBytes int64
	// NoPrefetch disables the one-batch sample+gather pipeline, running the
	// halo fetch inline with compute. Results are bit-identical either way;
	// the flag exists to measure what the overlap buys.
	NoPrefetch bool
}

// TrainSharded runs data-parallel sampled mini-batch training with
// owner-sharded features. It returns the same DistResult TrainDistributed
// does (deterministic Loss/Steps/SampledWork, final Params, TestAcc agreed
// by all ranks) plus per-rank halo-fetch stats.
func TrainSharded(ds *datasets.Dataset, cfg ShardedTrainConfig) (*DistResult, error) {
	if cfg.NumRanks < 1 {
		return nil, fmt.Errorf("minibatch: NumRanks must be ≥1, got %d", cfg.NumRanks)
	}
	if cfg.NumLayers != len(cfg.Fanouts) {
		return nil, fmt.Errorf("minibatch: NumLayers %d != len(Fanouts) %d", cfg.NumLayers, len(cfg.Fanouts))
	}
	if cfg.BatchSize < 1 || cfg.Epochs < 1 {
		return nil, fmt.Errorf("minibatch: BatchSize and Epochs must be positive")
	}
	if cfg.FeatPrecision != quant.FP32 {
		// Halo rows cross the fabric as fp32; the conformance pin is defined
		// over that format (mirroring serve's shard mode).
		return nil, fmt.Errorf("minibatch: sharded training is fp32-only (drop FeatPrecision)")
	}
	if cfg.Transport != nil && cfg.Transport.Size() != cfg.NumRanks {
		return nil, fmt.Errorf("minibatch: transport spans %d ranks, NumRanks is %d",
			cfg.Transport.Size(), cfg.NumRanks)
	}
	if cfg.PartitionSeed == 0 {
		cfg.PartitionSeed = 1
	}

	// Every rank derives the identical owner table and train-vertex shards;
	// both are pure functions of the dataset and seeds.
	pt, err := partition.Partition(ds.G, partition.Libra{Seed: cfg.PartitionSeed}, cfg.NumRanks, cfg.PartitionSeed)
	if err != nil {
		return nil, fmt.Errorf("minibatch: shard partitioning: %w", err)
	}
	owners := pt.Owners()
	shards := shardTrainIdx(ds.TrainIdx, cfg.Seed, cfg.NumRanks)
	maxBatches := 0
	for _, shard := range shards {
		if b := (len(shard) + cfg.BatchSize - 1) / cfg.BatchSize; b > maxBatches {
			maxBatches = b
		}
	}
	if maxBatches == 0 {
		return nil, fmt.Errorf("minibatch: no training vertices")
	}

	if cfg.Transport == nil {
		world := comm.NewWorld(cfg.NumRanks)
		results := make([]*DistResult, cfg.NumRanks)
		errs := make([]error, cfg.NumRanks)
		world.Run(func(rank int) {
			results[rank], errs[rank] = trainShardedRank(ds, cfg, world, rank, owners, shards, maxBatches)
		})
		for rank, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("minibatch: rank %d: %w", rank, err)
			}
		}
		// Deterministic fields agree across ranks; fold the per-rank halo
		// stats into rank 0's result so the caller sees the whole fleet.
		res := results[0]
		for rank := 1; rank < cfg.NumRanks; rank++ {
			res.HaloStats[rank] = results[rank].HaloStats[rank]
		}
		return res, nil
	}
	world := comm.NewWorldTransport(cfg.Transport)
	return trainShardedRank(ds, cfg, world, world.Self(), owners, shards, maxBatches)
}

// shardTrainIdx mirrors TrainDistributed's training-vertex sharding bit for
// bit: one seeded shuffle, then round-robin.
func shardTrainIdx(trainIdx []int32, seed int64, ranks int) [][]int32 {
	shuffled := append([]int32(nil), trainIdx...)
	rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	shards := make([][]int32, ranks)
	for i, v := range shuffled {
		shards[i%ranks] = append(shards[i%ranks], v)
	}
	return shards
}

// sampledBatch is one step's prefetched work: the sampled blocks and the
// gathered input-frontier features (nil Sample for an idle step on a rank
// that ran out of local batches).
type sampledBatch struct {
	seeds []int32
	s     *Sample
	x     *tensor.Matrix
	err   error
}

// trainShardedRank runs one rank of the sharded trainer. The seed
// derivations (model cfg.Seed+100 on every rank, sampler cfg.Seed+rank,
// epoch shuffle cfg.Seed+1000+rank) and the step loop mirror
// TrainDistributed exactly — that is the conformance contract, do not
// deviate without updating both.
func trainShardedRank(ds *datasets.Dataset, cfg ShardedTrainConfig, world *comm.World, rank int,
	owners []int32, shards [][]int32, maxBatches int) (*DistResult, error) {

	store, err := featstore.NewSharded(featstore.ShardedConfig{
		Rank: rank, Shards: cfg.NumRanks,
		Transport:  world.Transport(),
		Owners:     owners,
		Features:   ds.Features,
		CacheBytes: cfg.CacheBytes,
	})
	if err != nil {
		return nil, err
	}
	defer store.Close()

	mrng := rand.New(rand.NewSource(cfg.Seed + 100))
	m := newMBModel(ds.Features.Cols, cfg.Hidden, ds.NumClasses, cfg.NumLayers, mrng)
	sampler, err := NewSampler(ds.G, cfg.Fanouts, cfg.Seed+int64(rank))
	if err != nil {
		return nil, err
	}
	var opt nn.Optimizer
	if cfg.UseAdam {
		opt = nn.NewAdam(cfg.LR, 0)
	} else {
		opt = &nn.SGD{LR: cfg.LR}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(rank)))
	shard := append([]int32(nil), shards[rank]...)
	params := m.params()

	res := &DistResult{HaloStats: make([]featstore.ShardedStats, cfg.NumRanks)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		rng.Shuffle(len(shard), func(i, j int) { shard[i], shard[j] = shard[j], shard[i] })

		// The producer samples batches in step order (the sampler's RNG
		// stream is consumed sequentially — Sampler is not safe for
		// concurrent use) and issues each batch's halo fetch; with
		// prefetching the channel holds one ready batch, so the fetch for
		// step t+1 overlaps the compute of step t.
		depth := 1
		if cfg.NoPrefetch {
			depth = 0
		}
		batches := make(chan sampledBatch, depth)
		go func() {
			defer close(batches)
			for step := 0; step < maxBatches; step++ {
				var bw sampledBatch
				if off := step * cfg.BatchSize; off < len(shard) {
					end := off + cfg.BatchSize
					if end > len(shard) {
						end = len(shard)
					}
					bw.seeds = shard[off:end]
					bw.s = sampler.Sample(bw.seeds)
					frontier := bw.s.InputFrontier()
					bw.x, bw.err = store.GatherSplit(frontier,
						featstore.SplitByOwner(frontier, owners, cfg.NumRanks))
				}
				batches <- bw
				if bw.err != nil {
					return
				}
			}
		}()

		var localLoss float64
		var localWork int64
		var arTime time.Duration
		step := 0
		for bw := range batches {
			if bw.err != nil {
				return nil, bw.err
			}
			nn.ZeroGrads(params)
			var batchN int
			if bw.s != nil {
				logits := m.forwardGathered(bw.s, bw.x, true)
				localLabels := make([]int32, len(bw.seeds))
				mask := make([]int32, len(bw.seeds))
				for i, g := range bw.seeds {
					localLabels[i] = ds.Labels[g]
					mask[i] = int32(i)
				}
				loss, dlogits := nn.MaskedCrossEntropy(logits, localLabels, mask)
				m.backward(dlogits)
				localLoss += loss * float64(len(bw.seeds))
				localWork += sampledWork(bw.s, m.dims)
				batchN = len(bw.seeds)
			}
			global := globalBatchSize(shards, step, cfg.BatchSize)
			scale := float32(0)
			if global > 0 {
				scale = float32(batchN) / float32(global)
			}
			for _, p := range params {
				p.Grad.Scale(scale)
			}
			gbuf := nn.FlattenParams(params, true)
			arStart := time.Now()
			world.AllReduceSum(rank, gbuf)
			arTime += time.Since(arStart)
			nn.UnflattenParams(params, gbuf, true)
			opt.Step(params)
			step++
		}

		// Exchange the per-rank loss/work parts as exact bit patterns and
		// fold them in rank order — the same float64 summation order
		// TrainDistributed uses, so the reported loss matches bit for bit.
		parts := world.AllGather(rank, packLossWork(localLoss, localWork))
		st := DistEpochStat{Time: time.Since(start), Steps: maxBatches, AllReduce: arTime}
		var lsum float64
		for r := 0; r < cfg.NumRanks; r++ {
			loss, work := unpackLossWork(parts[4*r : 4*r+4])
			lsum += loss
			st.SampledWork += work
		}
		if len(ds.TrainIdx) > 0 {
			st.Loss = lsum / float64(len(ds.TrainIdx))
		}
		res.Epochs = append(res.Epochs, st)
	}
	res.Params = nn.FlattenParams(params, false)

	// Rank 0 evaluates through its sharded store (peers keep serving halo
	// fetches while blocked in the broadcast) and shares the accuracy.
	var acc float64
	if rank == 0 {
		acc, err = evaluateSharded(ds, sampler, m, cfg.BatchSize, store, owners, cfg.NumRanks)
		if err != nil {
			return nil, err
		}
	}
	accBits := packF64(acc)
	world.Broadcast(rank, 0, accBits)
	res.TestAcc = unpackF64(accBits)
	res.HaloStats[rank] = store.Stats()
	return res, nil
}

// evaluateSharded is evaluate with the feature reads going through the
// sharded store instead of a resident matrix.
func evaluateSharded(ds *datasets.Dataset, sampler *Sampler, m *mbModel, batch int,
	store *featstore.Sharded, owners []int32, ranks int) (float64, error) {
	if len(ds.TestIdx) == 0 {
		return 0, nil
	}
	correct := 0
	for off := 0; off < len(ds.TestIdx); off += batch {
		end := off + batch
		if end > len(ds.TestIdx) {
			end = len(ds.TestIdx)
		}
		seeds := ds.TestIdx[off:end]
		s := sampler.Sample(seeds)
		frontier := s.InputFrontier()
		x, err := store.GatherSplit(frontier, featstore.SplitByOwner(frontier, owners, ranks))
		if err != nil {
			return 0, err
		}
		logits := m.forwardGathered(s, x, false)
		pred := make([]int, logits.Rows)
		logits.ArgmaxRows(pred)
		for i, g := range seeds {
			if int32(pred[i]) == ds.Labels[g] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(ds.TestIdx)), nil
}

// packF64/unpackF64 carry a float64 on the float32 collective lane as two
// exact bit-pattern words.
func packF64(v float64) []float32 {
	b := math.Float64bits(v)
	return []float32{
		math.Float32frombits(uint32(b)),
		math.Float32frombits(uint32(b >> 32)),
	}
}

func unpackF64(fs []float32) float64 {
	lo := uint64(math.Float32bits(fs[0]))
	hi := uint64(math.Float32bits(fs[1]))
	return math.Float64frombits(lo | hi<<32)
}

// packLossWork frames one rank's epoch contribution — float64 loss part and
// int64 sampled work — as four exact bit-pattern words for AllGather.
func packLossWork(loss float64, work int64) []float32 {
	return append(packF64(loss), packF64(math.Float64frombits(uint64(work)))...)
}

func unpackLossWork(fs []float32) (float64, int64) {
	return unpackF64(fs[:2]), int64(math.Float64bits(unpackF64(fs[2:4])))
}
