package minibatch

import (
	"math"
	"sync"
	"testing"
	"time"

	"distgnn/internal/comm"
)

// shardedTestCfg is the shared hyperparameter set of the distributed-
// minibatch conformance harness. Small epochs keep the 4-rank × 2-fabric
// matrix fast; Adam exercises the stateful optimizer path.
func shardedTestCfg(ranks int) ShardedTrainConfig {
	return ShardedTrainConfig{
		DistConfig: DistConfig{
			Config: Config{
				Hidden: 16, NumLayers: 2, Fanouts: []int{10, 5},
				BatchSize: 64, Epochs: 2, LR: 0.05, UseAdam: true, Seed: 5,
			},
			NumRanks: ranks,
		},
		CacheBytes: 1 << 20,
	}
}

func paramsBitEqual(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: param vector length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: param %d differs: %v (bits %#x) != %v (bits %#x)",
				label, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// TestTrainShardedConformance is the distributed-minibatch pin: with
// identical sampler seeds, the sharded trainer's final parameters are
// bit-identical to the replicated TrainDistributed reference across 1, 2,
// and 4 ranks on the in-process fabric — and its loss trace and test
// accuracy match exactly too.
func TestTrainShardedConformance(t *testing.T) {
	ds := testDS(t)
	for _, ranks := range []int{1, 2, 4} {
		cfg := shardedTestCfg(ranks)
		ref, err := TrainDistributed(ds, cfg.DistConfig)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TrainSharded(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		label := "ranks=" + string(rune('0'+ranks))
		paramsBitEqual(t, label, got.Params, ref.Params)
		if got.TestAcc != ref.TestAcc {
			t.Fatalf("%s: test accuracy %v != reference %v", label, got.TestAcc, ref.TestAcc)
		}
		for e := range ref.Epochs {
			if got.Epochs[e].Loss != ref.Epochs[e].Loss {
				t.Fatalf("%s: epoch %d loss %v != reference %v", label, e, got.Epochs[e].Loss, ref.Epochs[e].Loss)
			}
			if got.Epochs[e].SampledWork != ref.Epochs[e].SampledWork {
				t.Fatalf("%s: epoch %d work %d != reference %d", label, e, got.Epochs[e].SampledWork, ref.Epochs[e].SampledWork)
			}
		}
		if ranks > 1 {
			var fetched int64
			for _, hs := range got.HaloStats {
				fetched += hs.HaloFetchedVertices
			}
			if fetched == 0 {
				t.Fatalf("%s: sharded run fetched no halo vertices — features were not actually sharded", label)
			}
		}
	}
}

// TestTrainShardedTCPConformance reruns the pin over real loopback TCP:
// each rank driven from its own goroutine on its own single-rank endpoint,
// final params bit-identical to the in-process reference.
func TestTrainShardedTCPConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP conformance run in full mode only")
	}
	ds := testDS(t)
	for _, ranks := range []int{2, 4} {
		cfg := shardedTestCfg(ranks)
		ref, err := TrainDistributed(ds, cfg.DistConfig)
		if err != nil {
			t.Fatal(err)
		}
		trs, err := comm.NewLoopbackTCP(ranks, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		results := make([]*DistResult, ranks)
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rcfg := cfg
				rcfg.Transport = trs[r]
				results[r], errs[r] = TrainSharded(ds, rcfg)
			}()
		}
		wg.Wait()
		for r := 0; r < ranks; r++ {
			if errs[r] != nil {
				t.Fatalf("ranks=%d rank %d: %v", ranks, r, errs[r])
			}
		}
		for r := 0; r < ranks; r++ {
			label := "tcp ranks=" + string(rune('0'+ranks)) + " rank=" + string(rune('0'+r))
			paramsBitEqual(t, label, results[r].Params, ref.Params)
			if results[r].TestAcc != ref.TestAcc {
				t.Fatalf("%s: test accuracy %v != reference %v", label, results[r].TestAcc, ref.TestAcc)
			}
		}
		for _, tr := range trs {
			tr.Close()
		}
	}
}

// Prefetching is a latency optimization, never a numeric one: disabling it
// must not change a single bit.
func TestTrainShardedPrefetchBitNeutral(t *testing.T) {
	ds := testDS(t)
	cfg := shardedTestCfg(2)
	withPrefetch, err := TrainSharded(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoPrefetch = true
	without, err := TrainSharded(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	paramsBitEqual(t, "prefetch on/off", withPrefetch.Params, without.Params)
}

func TestTrainShardedRejectsBadConfig(t *testing.T) {
	ds := testDS(t)
	bad := []ShardedTrainConfig{
		{DistConfig: DistConfig{Config: Config{NumLayers: 2, Fanouts: []int{5, 5}, BatchSize: 32, Epochs: 1, Seed: 1}, NumRanks: 0}},
		{DistConfig: DistConfig{Config: Config{NumLayers: 2, Fanouts: []int{5}, BatchSize: 32, Epochs: 1, Seed: 1}, NumRanks: 2}},
		{DistConfig: DistConfig{Config: Config{NumLayers: 1, Fanouts: []int{5}, BatchSize: 0, Epochs: 1, Seed: 1}, NumRanks: 2}},
		{DistConfig: DistConfig{Config: Config{NumLayers: 1, Fanouts: []int{5}, BatchSize: 32, Epochs: 1, Seed: 1, FeatPrecision: 1}, NumRanks: 2}},
	}
	for i, cfg := range bad {
		if _, err := TrainSharded(ds, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
