package minibatch

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/graph"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

func fullTestGraph(t *testing.T) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	edges := make([]graph.Edge, 600)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(80)), Dst: int32(rng.Intn(80))}
	}
	return graph.MustCSR(80, edges)
}

func TestFullSampleCoversEveryInNeighborInCSROrder(t *testing.T) {
	g := fullTestGraph(t)
	seeds := []int32{3, 17, 42, 3} // duplicate seed must be handled
	s := FullSample(g, seeds, 2)
	if len(s.Blocks) != 2 || len(s.Frontiers) != 3 {
		t.Fatalf("blocks=%d frontiers=%d", len(s.Blocks), len(s.Frontiers))
	}
	for h, blk := range s.Blocks {
		dst := s.Frontiers[h]
		src := s.Frontiers[h+1]
		if blk.NumDst != len(dst) || blk.NumSrc != len(src) {
			t.Fatalf("hop %d: NumDst=%d/%d NumSrc=%d/%d", h, blk.NumDst, len(dst), blk.NumSrc, len(src))
		}
		// dst ⊆ src with matching prefix identity.
		for i, gv := range dst {
			if src[blk.SelfIdx[i]] != gv {
				t.Fatalf("hop %d: SelfIdx[%d] resolves to %d, want %d", h, i, src[blk.SelfIdx[i]], gv)
			}
		}
		// Every dst's block neighbor list is its full CSR list, in order.
		for i, gv := range dst {
			nbr := g.InNeighbors(int(gv))
			lo, hi := blk.Indptr[i], blk.Indptr[i+1]
			if int(hi-lo) != len(nbr) {
				t.Fatalf("hop %d dst %d: %d block edges, CSR has %d", h, gv, hi-lo, len(nbr))
			}
			for p := lo; p < hi; p++ {
				if src[blk.Indices[p]] != nbr[p-lo] {
					t.Fatalf("hop %d dst %d pos %d: src %d, CSR %d",
						h, gv, p-lo, src[blk.Indices[p]], nbr[p-lo])
				}
			}
		}
	}
}

// TestAggregateGCNFullBlockMatchesKernelBitwise pins the serving contract:
// one full-neighborhood block aggregation equals the full-graph unblocked
// spmm kernel plus self-add plus norm scaling, bit for bit.
func TestAggregateGCNFullBlockMatchesKernelBitwise(t *testing.T) {
	g := fullTestGraph(t)
	rng := rand.New(rand.NewSource(8))
	x := tensor.New(g.NumVertices, 24)
	tensor.RandomNormal(x, rng, 1)

	// Reference: the model's forward path (plan kernel, self add, norm).
	ref := tensor.New(g.NumVertices, x.Cols)
	plan := spmm.NewPlan(g, spmm.DefaultOptions(1))
	if err := plan.Run(&spmm.Args{G: g, FV: x, FO: ref, Op: spmm.OpCopyLHS, Red: spmm.ReduceSum}); err != nil {
		t.Fatal(err)
	}
	ref.Add(x)
	norm := make([]float32, g.NumVertices)
	for v := range norm {
		norm[v] = 1 / float32(1+g.InDegree(v))
	}
	ref.ScaleRows(norm)

	// Serving path: all vertices as seeds through one full block.
	seeds := make([]int32, g.NumVertices)
	for v := range seeds {
		seeds[v] = int32(v)
	}
	s := FullSample(g, seeds, 1)
	blk := s.Blocks[0]
	x2 := tensor.New(blk.NumSrc, x.Cols)
	for i, gv := range s.Frontiers[1] {
		copy(x2.Row(i), x.Row(int(gv)))
	}
	got := AggregateGCN(blk, x2, blk.Norms())

	for i := range seeds {
		rRow, gRow := ref.Row(i), got.Row(i)
		for j := range rRow {
			if math.Float32bits(rRow[j]) != math.Float32bits(gRow[j]) {
				t.Fatalf("vertex %d col %d: block %v != kernel %v", i, j, gRow[j], rRow[j])
			}
		}
	}
}
