package minibatch

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/datasets"
	"distgnn/internal/graph"
)

func testDS(t *testing.T) *datasets.Dataset {
	t.Helper()
	d, err := datasets.Generate(datasets.Spec{
		Name: "mb-test", NumVertices: 800, AvgDegree: 14,
		FeatDim: 16, NumClasses: 4, Communities: 4, IntraFrac: 0.85,
		Undirected: true, FeatureNoise: 0.8, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSamplerFanoutRespected(t *testing.T) {
	ds := testDS(t)
	s, err := NewSampler(ds.G, []int{5, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.Sample(ds.TrainIdx[:50])
	if len(sample.Blocks) != 2 || len(sample.Frontiers) != 3 {
		t.Fatalf("blocks=%d frontiers=%d", len(sample.Blocks), len(sample.Frontiers))
	}
	for h, blk := range sample.Blocks {
		fanout := s.Fanouts[h]
		for i := 0; i < blk.NumDst; i++ {
			deg := int(blk.Indptr[i+1] - blk.Indptr[i])
			if deg > fanout {
				t.Fatalf("hop %d dst %d sampled %d > fanout %d", h, i, deg, fanout)
			}
			trueDeg := ds.G.InDegree(int(sample.Frontiers[h][i]))
			if trueDeg >= fanout && deg != fanout {
				t.Fatalf("hop %d dst %d sampled %d, degree %d allows full fanout %d",
					h, i, deg, trueDeg, fanout)
			}
		}
	}
}

func TestSamplerNoDuplicatePicksPerVertex(t *testing.T) {
	ds := testDS(t)
	s, err := NewSampler(ds.G, []int{8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sample := s.Sample(ds.TrainIdx[:100])
	blk := sample.Blocks[0]
	for i := 0; i < blk.NumDst; i++ {
		seen := map[int32]bool{}
		dstGlobal := sample.Frontiers[0][i]
		// Duplicate neighbors in the multigraph are legitimate duplicate
		// picks; only flag duplicates beyond the multiplicity.
		multiplicity := map[int32]int{}
		for _, u := range ds.G.InNeighbors(int(dstGlobal)) {
			multiplicity[u]++
		}
		picked := map[int32]int{}
		for p := blk.Indptr[i]; p < blk.Indptr[i+1]; p++ {
			g := sample.Frontiers[1][blk.Indices[p]]
			picked[g]++
			if picked[g] > multiplicity[g] {
				t.Fatalf("dst %d picked %d more times than its multiplicity %d",
					dstGlobal, picked[g], multiplicity[g])
			}
			_ = seen
		}
	}
}

func TestSamplerSelfInSrcFrontier(t *testing.T) {
	ds := testDS(t)
	s, _ := NewSampler(ds.G, []int{4, 4}, 3)
	sample := s.Sample(ds.TrainIdx[:30])
	for h, blk := range sample.Blocks {
		for i := 0; i < blk.NumDst; i++ {
			dst := sample.Frontiers[h][i]
			src := sample.Frontiers[h+1][blk.SelfIdx[i]]
			if dst != src {
				t.Fatalf("hop %d: SelfIdx maps %d to %d", h, dst, src)
			}
		}
	}
}

func TestSamplerIndicesInRange(t *testing.T) {
	ds := testDS(t)
	s, _ := NewSampler(ds.G, []int{6, 6, 6}, 4)
	sample := s.Sample(ds.TrainIdx[:64])
	for h, blk := range sample.Blocks {
		if blk.NumSrc != len(sample.Frontiers[h+1]) {
			t.Fatalf("hop %d: NumSrc %d != frontier %d", h, blk.NumSrc, len(sample.Frontiers[h+1]))
		}
		for _, idx := range blk.Indices {
			if idx < 0 || int(idx) >= blk.NumSrc {
				t.Fatalf("hop %d: index %d out of range [0,%d)", h, idx, blk.NumSrc)
			}
		}
	}
}

func TestSamplerRejectsBadConfig(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := NewSampler(g, nil, 1); err == nil {
		t.Fatal("expected error for empty fanouts")
	}
	if _, err := NewSampler(g, []int{0}, 1); err == nil {
		t.Fatal("expected error for zero fanout")
	}
}

func TestSamplePickProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(30)
		k := rng.Intn(10) + 1
		picked := samplePick(rng, n, k)
		want := k
		if n < k {
			want = n
		}
		if len(picked) != want {
			t.Fatalf("n=%d k=%d got %d picks", n, k, len(picked))
		}
		seen := map[int32]bool{}
		for _, p := range picked {
			if p < 0 || int(p) >= n {
				t.Fatalf("pick %d out of range [0,%d)", p, n)
			}
			if seen[p] {
				t.Fatalf("duplicate pick %d", p)
			}
			seen[p] = true
		}
	}
}

func TestTrainLearns(t *testing.T) {
	ds := testDS(t)
	res, err := Train(ds, Config{
		Hidden: 16, NumLayers: 2, Fanouts: []int{10, 5},
		BatchSize: 64, Epochs: 8, LR: 0.05, UseAdam: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Epochs[0].Loss, res.Epochs[len(res.Epochs)-1].Loss
	if last >= first*0.8 {
		t.Fatalf("mini-batch loss %v → %v did not improve", first, last)
	}
	if res.TestAcc < 0.5 {
		t.Fatalf("mini-batch test accuracy %v < 0.5", res.TestAcc)
	}
	for _, e := range res.Epochs {
		if e.SampledWork <= 0 || e.NumBatches <= 0 || e.Time <= 0 {
			t.Fatalf("bad epoch stat %+v", e)
		}
	}
	if res.AvgEpochTime() <= 0 {
		t.Fatal("AvgEpochTime must be positive")
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	ds := testDS(t)
	bad := []Config{
		{Hidden: 8, NumLayers: 2, Fanouts: []int{5}, BatchSize: 10, Epochs: 1, LR: 0.1},
		{Hidden: 8, NumLayers: 1, Fanouts: []int{5}, BatchSize: 0, Epochs: 1, LR: 0.1},
		{Hidden: 8, NumLayers: 1, Fanouts: []int{5}, BatchSize: 10, Epochs: 0, LR: 0.1},
	}
	for i, cfg := range bad {
		if _, err := Train(ds, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestSampledWorkBelowFullBatchWork(t *testing.T) {
	// The comparison behind Tables 7/8: sampled aggregation work per epoch
	// is far below full-neighborhood work.
	ds := testDS(t)
	res, err := Train(ds, Config{
		Hidden: 16, NumLayers: 2, Fanouts: []int{10, 5},
		BatchSize: 64, Epochs: 1, LR: 0.05, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Full-batch work per epoch: |E|·(featDim + hidden) for two layers.
	fullWork := int64(ds.G.NumEdges) * int64(ds.Features.Cols+16)
	if res.Epochs[0].SampledWork >= fullWork {
		t.Fatalf("sampled work %d not below full-batch %d", res.Epochs[0].SampledWork, fullWork)
	}
}

// TestSamplePickFloydUniform pins the Floyd branch's distribution: with
// n > floydThreshold·k every index must be included with probability k/n.
// Tolerance is ±6σ of the per-index binomial proportion over the trials, so
// a systematic bias fails while sampling noise never does.
func TestSamplePickFloydUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, k, trials = 30, 5, 60000
	if n <= floydThreshold*k {
		t.Fatalf("n=%d k=%d does not engage the Floyd branch", n, k)
	}
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		picked := samplePick(rng, n, k)
		if len(picked) != k {
			t.Fatalf("trial %d: %d picks, want %d", trial, len(picked), k)
		}
		for _, p := range picked {
			counts[p]++
		}
	}
	want := float64(k) / float64(n)
	tol := 6 * math.Sqrt(want*(1-want)/float64(trials))
	for i, c := range counts {
		got := float64(c) / float64(trials)
		if got < want-tol || got > want+tol {
			t.Fatalf("index %d included at rate %.4f, want %.4f ± %.4f", i, got, want, tol)
		}
	}
}

// TestSamplePickFloydDistinct hammers the Floyd branch across shapes: picks
// stay distinct, in range, and exactly k long whenever n > k.
func TestSamplePickFloydDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		k := rng.Intn(8) + 1
		n := floydThreshold*k + 1 + rng.Intn(200)
		picked := samplePick(rng, n, k)
		if len(picked) != k {
			t.Fatalf("n=%d k=%d: %d picks", n, k, len(picked))
		}
		seen := map[int32]bool{}
		for _, p := range picked {
			if p < 0 || int(p) >= n {
				t.Fatalf("n=%d k=%d: pick %d out of range", n, k, p)
			}
			if seen[p] {
				t.Fatalf("n=%d k=%d: duplicate pick %d", n, k, p)
			}
			seen[p] = true
		}
	}
}
