package minibatch

import (
	"distgnn/internal/featstore"
	"distgnn/internal/graph"
)

// owned.go is the partition-aware view of exact block extraction: the
// sharded serving engine expands k-hop blocks over the replicated topology
// exactly as FullSample does (bit-identical aggregation order), but its
// input-frontier features live on whichever shard owns each vertex, so the
// frontier must be split by owner before the gather — local positions read
// the resident feature slice, remote positions become one batched halo
// fetch per owner rank.

// SplitByOwner partitions frontier positions by owning shard: the result's
// entry p lists every index i with owners[frontier[i]] == p, in frontier
// order. k is the shard count. Callers validate that owners covers every
// frontier vertex with values in [0, k). The implementation lives in
// internal/featstore (the feature-sourcing plane resolves ownership for
// every sharded gather); this alias keeps the sampling-side API complete.
func SplitByOwner(frontier []int32, owners []int32, k int) [][]int32 {
	return featstore.SplitByOwner(frontier, owners, k)
}

// FullSampleOwned is the partition-aware FullSample: the identical exact
// full-neighborhood expansion (the returned Sample matches FullSample
// element for element), plus the input frontier split by owning shard for
// the feature gather. owners maps global vertex ID to owner shard in
// [0, k). g is any graph.Topology (immutable CSR or mutation snapshot).
func FullSampleOwned(g graph.Topology, seeds []int32, hops int, owners []int32, k int) (*Sample, [][]int32) {
	s := FullSample(g, seeds, hops)
	return s, SplitByOwner(s.InputFrontier(), owners, k)
}
