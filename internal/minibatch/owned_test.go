package minibatch

import (
	"math/rand"
	"testing"
)

// TestSplitByOwnerPartitionsEveryPosition: the owner split is a partition
// of frontier positions — every position lands in exactly the shard that
// owns its vertex, in frontier order.
func TestSplitByOwnerPartitionsEveryPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, k = 60, 4
	owners := make([]int32, n)
	for v := range owners {
		owners[v] = int32(rng.Intn(k))
	}
	frontier := make([]int32, 40)
	for i := range frontier {
		frontier[i] = int32(rng.Intn(n))
	}
	split := SplitByOwner(frontier, owners, k)
	if len(split) != k {
		t.Fatalf("split has %d shards, want %d", len(split), k)
	}
	total := 0
	for p, pos := range split {
		prev := int32(-1)
		for _, i := range pos {
			if i <= prev {
				t.Fatalf("shard %d positions out of frontier order", p)
			}
			prev = i
			if owners[frontier[i]] != int32(p) {
				t.Fatalf("position %d (vertex %d, owner %d) landed in shard %d",
					i, frontier[i], owners[frontier[i]], p)
			}
		}
		total += len(pos)
	}
	if total != len(frontier) {
		t.Fatalf("split covers %d of %d positions", total, len(frontier))
	}
}

// TestFullSampleOwnedMatchesFullSample: the partition-aware form builds the
// identical Sample (the bit-identity contract rides on this) and its split
// covers the input frontier.
func TestFullSampleOwnedMatchesFullSample(t *testing.T) {
	g := fullTestGraph(t)
	rng := rand.New(rand.NewSource(22))
	const k = 3
	owners := make([]int32, g.NumVertices)
	for v := range owners {
		owners[v] = int32(rng.Intn(k))
	}
	seeds := []int32{3, 17, 42}
	want := FullSample(g, seeds, 2)
	got, split := FullSampleOwned(g, seeds, 2, owners, k)

	if len(got.Blocks) != len(want.Blocks) || len(got.Frontiers) != len(want.Frontiers) {
		t.Fatalf("shape mismatch: %d/%d blocks, %d/%d frontiers",
			len(got.Blocks), len(want.Blocks), len(got.Frontiers), len(want.Frontiers))
	}
	for h := range want.Frontiers {
		if len(got.Frontiers[h]) != len(want.Frontiers[h]) {
			t.Fatalf("frontier %d: %d vs %d vertices", h, len(got.Frontiers[h]), len(want.Frontiers[h]))
		}
		for i := range want.Frontiers[h] {
			if got.Frontiers[h][i] != want.Frontiers[h][i] {
				t.Fatalf("frontier %d pos %d: %d vs %d", h, i, got.Frontiers[h][i], want.Frontiers[h][i])
			}
		}
	}
	for h := range want.Blocks {
		gb, wb := got.Blocks[h], want.Blocks[h]
		if gb.NumDst != wb.NumDst || gb.NumSrc != wb.NumSrc || len(gb.Indices) != len(wb.Indices) {
			t.Fatalf("block %d shape differs", h)
		}
		for i := range wb.Indices {
			if gb.Indices[i] != wb.Indices[i] {
				t.Fatalf("block %d index %d differs", h, i)
			}
		}
	}
	total := 0
	for p, pos := range split {
		for _, i := range pos {
			if owners[got.InputFrontier()[i]] != int32(p) {
				t.Fatalf("split shard %d holds position %d owned by %d",
					p, i, owners[got.InputFrontier()[i]])
			}
		}
		total += len(pos)
	}
	if total != len(got.InputFrontier()) {
		t.Fatalf("split covers %d of %d frontier positions", total, len(got.InputFrontier()))
	}
}
