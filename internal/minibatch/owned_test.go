package minibatch

import (
	"math/rand"
	"testing"
)

// TestSplitByOwnerPartitionsEveryPosition: the owner split is a partition
// of frontier positions — every position lands in exactly the shard that
// owns its vertex, in frontier order.
func TestSplitByOwnerPartitionsEveryPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, k = 60, 4
	owners := make([]int32, n)
	for v := range owners {
		owners[v] = int32(rng.Intn(k))
	}
	frontier := make([]int32, 40)
	for i := range frontier {
		frontier[i] = int32(rng.Intn(n))
	}
	split := SplitByOwner(frontier, owners, k)
	if len(split) != k {
		t.Fatalf("split has %d shards, want %d", len(split), k)
	}
	total := 0
	for p, pos := range split {
		prev := int32(-1)
		for _, i := range pos {
			if i <= prev {
				t.Fatalf("shard %d positions out of frontier order", p)
			}
			prev = i
			if owners[frontier[i]] != int32(p) {
				t.Fatalf("position %d (vertex %d, owner %d) landed in shard %d",
					i, frontier[i], owners[frontier[i]], p)
			}
		}
		total += len(pos)
	}
	if total != len(frontier) {
		t.Fatalf("split covers %d of %d positions", total, len(frontier))
	}
}

// TestSplitByOwnerRecoversPermutation: concatenating the per-owner position
// lists in owner order yields a permutation of the frontier positions —
// including when some shards own nothing and when one shard owns everything.
func TestSplitByOwnerRecoversPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []struct {
		name    string
		n, k    int
		ownerOf func(v int) int32
	}{
		{"random", 80, 5, func(v int) int32 { return int32(rng.Intn(5)) }},
		{"all-one-owner", 80, 5, func(v int) int32 { return 3 }},
		{"empty-middle-shard", 80, 4, func(v int) int32 {
			// Shard 2 owns no vertex at all.
			o := int32(v % 4)
			if o == 2 {
				o = 1
			}
			return o
		}},
		{"empty-frontier", 10, 3, func(v int) int32 { return int32(v % 3) }},
	}
	for _, tc := range cases {
		owners := make([]int32, tc.n)
		for v := range owners {
			owners[v] = tc.ownerOf(v)
		}
		frontierLen := 50
		if tc.name == "empty-frontier" {
			frontierLen = 0
		}
		frontier := make([]int32, frontierLen)
		for i := range frontier {
			frontier[i] = int32(rng.Intn(tc.n)) // duplicates allowed
		}
		split := SplitByOwner(frontier, owners, tc.k)
		if len(split) != tc.k {
			t.Fatalf("%s: %d shards, want %d", tc.name, len(split), tc.k)
		}
		var concat []int32
		for _, pos := range split {
			concat = append(concat, pos...)
		}
		if len(concat) != len(frontier) {
			t.Fatalf("%s: concatenated split has %d positions, frontier has %d",
				tc.name, len(concat), len(frontier))
		}
		seen := make([]bool, len(frontier))
		for _, i := range concat {
			if i < 0 || int(i) >= len(frontier) {
				t.Fatalf("%s: position %d outside frontier", tc.name, i)
			}
			if seen[i] {
				t.Fatalf("%s: position %d appears twice", tc.name, i)
			}
			seen[i] = true
		}
	}
}

// TestFullSampleOwnedMatchesFullSample: the partition-aware form builds the
// identical Sample (the bit-identity contract rides on this) and its split
// covers the input frontier.
func TestFullSampleOwnedMatchesFullSample(t *testing.T) {
	g := fullTestGraph(t)
	rng := rand.New(rand.NewSource(22))
	const k = 3
	owners := make([]int32, g.NumVertices)
	for v := range owners {
		owners[v] = int32(rng.Intn(k))
	}
	seeds := []int32{3, 17, 42}
	want := FullSample(g, seeds, 2)
	got, split := FullSampleOwned(g, seeds, 2, owners, k)

	if len(got.Blocks) != len(want.Blocks) || len(got.Frontiers) != len(want.Frontiers) {
		t.Fatalf("shape mismatch: %d/%d blocks, %d/%d frontiers",
			len(got.Blocks), len(want.Blocks), len(got.Frontiers), len(want.Frontiers))
	}
	for h := range want.Frontiers {
		if len(got.Frontiers[h]) != len(want.Frontiers[h]) {
			t.Fatalf("frontier %d: %d vs %d vertices", h, len(got.Frontiers[h]), len(want.Frontiers[h]))
		}
		for i := range want.Frontiers[h] {
			if got.Frontiers[h][i] != want.Frontiers[h][i] {
				t.Fatalf("frontier %d pos %d: %d vs %d", h, i, got.Frontiers[h][i], want.Frontiers[h][i])
			}
		}
	}
	for h := range want.Blocks {
		gb, wb := got.Blocks[h], want.Blocks[h]
		if gb.NumDst != wb.NumDst || gb.NumSrc != wb.NumSrc || len(gb.Indices) != len(wb.Indices) {
			t.Fatalf("block %d shape differs", h)
		}
		for i := range wb.Indices {
			if gb.Indices[i] != wb.Indices[i] {
				t.Fatalf("block %d index %d differs", h, i)
			}
		}
	}
	total := 0
	for p, pos := range split {
		for _, i := range pos {
			if owners[got.InputFrontier()[i]] != int32(p) {
				t.Fatalf("split shard %d holds position %d owned by %d",
					p, i, owners[got.InputFrontier()[i]])
			}
		}
		total += len(pos)
	}
	if total != len(got.InputFrontier()) {
		t.Fatalf("split covers %d of %d frontier positions", total, len(got.InputFrontier()))
	}
}
