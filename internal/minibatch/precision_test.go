package minibatch

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/quant"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// TestForwardFusedMatchesUnfusedGather pins the trainer-level fusion
// contract: a forward pass through the fused layer-0 kernel must produce
// byte-for-byte the logits of gathering the input frontier into a matrix
// and aggregating with AggregateGCN — the reference path gatherFeatures
// still implements.
func TestForwardFusedMatchesUnfusedGather(t *testing.T) {
	ds := testDS(t)
	sampler, err := NewSampler(ds.G, []int{6, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := sampler.Sample(ds.TrainIdx[:40])
	feats := spmm.RowsOf(ds.Features)

	// Reference: materialize the gather, then run the same layer stack with
	// the unfused block aggregate for every layer.
	x := gatherFeatures(feats, s.InputFrontier())
	m := newMBModel(ds.Features.Cols, 8, ds.NumClasses, 2, rand.New(rand.NewSource(5)))
	var want *tensor.Matrix
	{
		h := x
		for l := len(s.Blocks) - 1; l >= 0; l-- {
			layer := len(s.Blocks) - 1 - l
			blk := s.Blocks[l]
			agg := AggregateGCN(blk, h, blk.Norms())
			h = m.layers[layer].Forward(agg, false)
			if m.relus[layer] != nil {
				h = m.relus[layer].Forward(h, false)
			}
		}
		want = h
	}

	got := m.forward(s, feats, false)
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d vs %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("fused forward diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestTrainBF16LearnsAndTracksFP32 is the bf16 accuracy trade-off check:
// training over the rounded slab must converge (finite, decreasing loss)
// and land within a coarse tolerance of the fp32 run's test accuracy.
func TestTrainBF16LearnsAndTracksFP32(t *testing.T) {
	ds := testDS(t)
	base := Config{
		Hidden: 16, NumLayers: 2, Fanouts: []int{8, 5},
		BatchSize: 64, Epochs: 4, LR: 0.05, UseAdam: true, Seed: 11,
	}
	fp32, err := Train(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	bfCfg := base
	bfCfg.FeatPrecision = quant.BF16
	bf16, err := Train(ds, bfCfg)
	if err != nil {
		t.Fatal(err)
	}
	last := bf16.Epochs[len(bf16.Epochs)-1].Loss
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("bf16 loss not finite: %v", last)
	}
	if last >= bf16.Epochs[0].Loss {
		t.Fatalf("bf16 loss did not decrease: %v → %v", bf16.Epochs[0].Loss, last)
	}
	if diff := bf16.TestAcc - fp32.TestAcc; diff < -0.10 || diff > 0.10 {
		t.Fatalf("bf16 accuracy %v strays from fp32 %v by more than 0.10", bf16.TestAcc, fp32.TestAcc)
	}
}

// TestTrainRejectsUnknownPrecision: only fp32 and bf16 are feature formats
// (fp16 is a wire format for gradients, not a kernel input).
func TestTrainRejectsUnknownPrecision(t *testing.T) {
	ds := testDS(t)
	cfg := Config{
		Hidden: 8, NumLayers: 1, Fanouts: []int{4},
		BatchSize: 32, Epochs: 1, LR: 0.1, Seed: 1,
		FeatPrecision: quant.FP16,
	}
	if _, err := Train(ds, cfg); err == nil {
		t.Fatal("fp16 feature precision must be rejected")
	}
}

// TestAggregateGCNFromBF16MatchesDecoded: the fused bf16 block aggregate
// equals the fp32 aggregate over the decoded slab, bitwise.
func TestAggregateGCNFromBF16MatchesDecoded(t *testing.T) {
	ds := testDS(t)
	sampler, err := NewSampler(ds.G, []int{7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := sampler.Sample(ds.TrainIdx[:30])
	blk := s.Blocks[0]
	frontier := s.InputFrontier()

	slab := tensor.BF16FromMatrix(ds.Features)
	want := AggregateGCNFrom(blk, spmm.RowsOf(slab.ToMatrix()), frontier)
	got := AggregateGCNFrom(blk, spmm.RowsOfBF16(slab), frontier)
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("bf16 block aggregate diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}
