// Package minibatch implements the neighborhood-sampled mini-batch training
// pipeline that Dist-DGL uses, which the paper compares against in
// Tables 7 and 9. A sampler draws per-hop fixed-fanout neighborhoods
// (fan-outs 5/10/15, batch 2000 in Table 7), and a mini-batch GraphSAGE
// trains on the sampled blocks. It exists so the full-batch/mini-batch
// work and epoch-time comparison can be reproduced end to end.
package minibatch

import (
	"fmt"
	"math/rand"

	"distgnn/internal/graph"
)

// Block is one bipartite sampled layer: destination vertices (the previous
// frontier) aggregate from sampled source vertices (the next frontier).
// Indices are local to the block's frontiers.
type Block struct {
	NumDst, NumSrc int
	Indptr         []int32 // per-dst offsets into Indices, len NumDst+1
	Indices        []int32 // sampled src (local IDs in the src frontier)
	// SelfIdx[i] is the src-frontier local ID of dst vertex i itself (every
	// dst is included in the src frontier so the GCN self term is available).
	SelfIdx []int32
}

// NumSampledEdges returns the number of sampled (src→dst) pairs.
func (b *Block) NumSampledEdges() int { return len(b.Indices) }

// Norms returns the GCN normalization 1/(1+deg) per destination, where deg
// is the block's per-dst edge count. For a full-neighborhood block this is
// exactly the global-degree norm the full-batch model uses.
func (b *Block) Norms() []float32 {
	norms := make([]float32, b.NumDst)
	for i := range norms {
		norms[i] = 1 / float32(1+b.Indptr[i+1]-b.Indptr[i])
	}
	return norms
}

// Sample is one sampled mini-batch: per-hop frontiers of global vertex IDs
// (Frontiers[0] = seeds) and the bipartite blocks connecting them.
// Blocks[h] aggregates Frontiers[h+1] into Frontiers[h].
type Sample struct {
	Frontiers [][]int32
	Blocks    []*Block
}

// InputFrontier returns the outermost frontier — the vertices whose raw
// features feed the first aggregation.
func (s *Sample) InputFrontier() []int32 { return s.Frontiers[len(s.Frontiers)-1] }

// Sampler draws fixed-fanout neighborhoods from a graph.
//
// A Sampler is NOT safe for concurrent use: Sample consumes the Rng stream,
// and reproducibility contracts (the distributed-minibatch conformance
// harness, serving's sampled mode behind its mutex) depend on that stream
// being drawn in batch order by exactly one goroutine. Distributed trainers
// create one Sampler per rank (seeded Seed+rank) rather than sharing one.
type Sampler struct {
	G *graph.CSR
	// Fanouts[h] is the neighbor budget when expanding hop h (Fanouts[0]
	// expands the seeds). Table 7 uses (15, 10, 5).
	Fanouts []int
	Rng     *rand.Rand
}

// NewSampler validates and constructs a sampler.
func NewSampler(g *graph.CSR, fanouts []int, seed int64) (*Sampler, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("minibatch: at least one fanout required")
	}
	for _, f := range fanouts {
		if f < 1 {
			return nil, fmt.Errorf("minibatch: fanouts must be ≥1, got %v", fanouts)
		}
	}
	return &Sampler{G: g, Fanouts: fanouts, Rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample expands seeds through len(Fanouts) hops of neighbor sampling
// without replacement, building one Block per hop.
func (s *Sampler) Sample(seeds []int32) *Sample {
	out := &Sample{}
	out.Frontiers = append(out.Frontiers, append([]int32(nil), seeds...))
	cur := out.Frontiers[0]
	for _, fanout := range s.Fanouts {
		blk, next := s.expand(cur, fanout)
		out.Blocks = append(out.Blocks, blk)
		out.Frontiers = append(out.Frontiers, next)
		cur = next
	}
	return out
}

// expand samples up to fanout in-neighbors per dst vertex and interns the
// union (dst vertices first, preserving their order) as the src frontier.
func (s *Sampler) expand(dst []int32, fanout int) (*Block, []int32) {
	local := make(map[int32]int32, 2*len(dst))
	var next []int32
	intern := func(g int32) int32 {
		if id, ok := local[g]; ok {
			return id
		}
		id := int32(len(next))
		next = append(next, g)
		local[g] = id
		return id
	}
	// Destinations first: DGL's convention that dst ⊆ src with matching
	// prefix order, which makes the self term a prefix lookup.
	blk := &Block{NumDst: len(dst), SelfIdx: make([]int32, len(dst))}
	for i, g := range dst {
		blk.SelfIdx[i] = intern(g)
	}
	blk.Indptr = make([]int32, len(dst)+1)
	for i, g := range dst {
		nbr := s.G.InNeighbors(int(g))
		picked := samplePick(s.Rng, len(nbr), fanout)
		for _, p := range picked {
			blk.Indices = append(blk.Indices, intern(nbr[p]))
		}
		blk.Indptr[i+1] = int32(len(blk.Indices))
	}
	blk.NumSrc = len(next)
	return blk, next
}

// FullSample expands seeds through hops layers of *full* in-neighborhoods —
// the exact-inference analogue of Sampler.Sample used by the serving path.
// Every in-neighbor is included, enumerated in CSR order, so that block
// aggregation over the result reproduces the full-graph aggregation
// kernel's per-destination summation order bit for bit (the unblocked
// kernel and Alg. 3's reordered variant both accumulate each output element
// sequentially over the CSR neighbor list). g is any graph.Topology — the
// immutable CSR or a mutation-layer Snapshot, whose InNeighbors contract
// guarantees the same source-sorted enumeration either way.
func FullSample(g graph.Topology, seeds []int32, hops int) *Sample {
	out := &Sample{}
	out.Frontiers = append(out.Frontiers, append([]int32(nil), seeds...))
	cur := out.Frontiers[0]
	for h := 0; h < hops; h++ {
		blk, next := expandFull(g, cur)
		out.Blocks = append(out.Blocks, blk)
		out.Frontiers = append(out.Frontiers, next)
		cur = next
	}
	return out
}

// expandFull is Sampler.expand with every in-neighbor taken: dst vertices
// are interned first (the DGL dst ⊆ src prefix convention), then each dst's
// full CSR neighbor list in order.
func expandFull(g graph.Topology, dst []int32) (*Block, []int32) {
	local := make(map[int32]int32, 2*len(dst))
	var next []int32
	intern := func(gv int32) int32 {
		if id, ok := local[gv]; ok {
			return id
		}
		id := int32(len(next))
		next = append(next, gv)
		local[gv] = id
		return id
	}
	blk := &Block{NumDst: len(dst), SelfIdx: make([]int32, len(dst))}
	for i, gv := range dst {
		blk.SelfIdx[i] = intern(gv)
	}
	blk.Indptr = make([]int32, len(dst)+1)
	for i, gv := range dst {
		for _, u := range g.InNeighbors(int(gv)) {
			blk.Indices = append(blk.Indices, intern(u))
		}
		blk.Indptr[i+1] = int32(len(blk.Indices))
	}
	blk.NumSrc = len(next)
	return blk, next
}

// floydThreshold selects the samplePick strategy: Floyd's algorithm engages
// when n > floydThreshold·k, where its O(k) memory beats the partial
// Fisher–Yates' O(n) index array and its linear membership scans (≤ k per
// draw) stay cheaper than the array initialization.
const floydThreshold = 4

// samplePick returns up to k distinct indices in [0, n), uniformly at
// random. Dense picks (n within a small factor of k) run a partial
// Fisher–Yates over an index array; sparse picks (k ≪ n — a small fanout
// into a heavy-tailed degree, paid per destination per hop) use Floyd's
// algorithm, which allocates O(k) and draws exactly k variates. The two
// branches consume different RNG streams, so changing the branch boundary
// changes the sampled sets for the same seed — equally uniform, and no
// cross-version pin depends on the stream (conformance harnesses compare
// runs of the same build).
func samplePick(rng *rand.Rand, n, k int) []int32 {
	if n <= k {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	if n > floydThreshold*k {
		// Floyd's F2: for j = n-k … n-1, draw t uniform on [0, j]; take t
		// unless already taken, else take j. Each of the C(n, k) subsets is
		// equally likely. Membership is a linear scan over the picks so far —
		// at most k elements, cache-resident for fanout-sized k.
		out := make([]int32, 0, k)
		for j := n - k; j < n; j++ {
			t := int32(rng.Intn(j + 1))
			taken := false
			for _, v := range out {
				if v == t {
					taken = true
					break
				}
			}
			if taken {
				out = append(out, int32(j))
			} else {
				out = append(out, t)
			}
		}
		return out
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
