package minibatch

import (
	"fmt"
	"math/rand"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/nn"
	"distgnn/internal/parallel"
	"distgnn/internal/quant"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// Config configures mini-batch GraphSAGE training (the Dist-DGL analogue).
type Config struct {
	Hidden    int
	NumLayers int // must equal len(Fanouts)
	Fanouts   []int
	BatchSize int
	Epochs    int
	LR        float64
	UseAdam   bool
	Seed      int64
	// Workers sizes the process-wide kernel worker pool for this run — the
	// OMP_NUM_THREADS knob. 0 keeps the current pool.
	Workers int
	// FeatPrecision selects the input-feature storage format. quant.FP32
	// (the zero value) reads the dataset's float32 matrix; quant.BF16
	// rounds the features once into a 16-bit slab that the fused layer-0
	// kernel decodes on load — half the feature-read traffic, float32
	// accumulation, model math otherwise unchanged.
	FeatPrecision quant.Precision
}

// EpochStat is one mini-batch epoch: loss averaged over batches, wall time,
// and the sampled aggregation work (Table 7's "Total work" column, in
// edge-feature element updates).
type EpochStat struct {
	Loss        float64
	Time        time.Duration
	SampledWork int64
	NumBatches  int
}

// Result is the outcome of a mini-batch training run.
type Result struct {
	Epochs  []EpochStat
	TestAcc float64
}

// AvgEpochTime averages epoch wall time over all epochs.
func (r *Result) AvgEpochTime() time.Duration {
	if len(r.Epochs) == 0 {
		return 0
	}
	var total time.Duration
	for _, e := range r.Epochs {
		total += e.Time
	}
	return total / time.Duration(len(r.Epochs))
}

// model is a GraphSAGE over sampled blocks: per layer, mean-style GCN
// aggregation of sampled neighbors plus self, normalized by
// 1/(1+sampled degree), then Linear (+ReLU between layers).
type mbModel struct {
	layers []*nn.Linear
	relus  []*nn.ReLU
	dims   []int // aggregate input width per layer

	// blocks caches the sample's blocks per layer for backward.
	blocks []*Block
}

func newMBModel(inDim, hidden, outDim, numLayers int, rng *rand.Rand) *mbModel {
	m := &mbModel{}
	in := inDim
	for l := 0; l < numLayers; l++ {
		out := hidden
		if l == numLayers-1 {
			out = outDim
		}
		m.layers = append(m.layers, nn.NewLinear(fmt.Sprintf("mb%d", l), in, out, true, rng))
		if l != numLayers-1 {
			m.relus = append(m.relus, &nn.ReLU{})
		} else {
			m.relus = append(m.relus, nil)
		}
		m.dims = append(m.dims, in)
		in = out
	}
	return m
}

func (m *mbModel) params() []*nn.Param {
	var out []*nn.Param
	for _, l := range m.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// AggregateGCN computes the normalized GCN block aggregate:
// out[i] = (Σ_p x[Indices[p]] + x[SelfIdx[i]]) · dstNorm[i], summing block
// neighbors in index order. Shared between the mini-batch trainer (with
// sampled-degree norms) and the serving engine's block inference; the
// float-op order — neighbor sum, then self add, then norm scale, each
// element sequentially — matches the full-batch GraphSAGE forward so exact
// (full-neighborhood) blocks yield bit-identical activations.
func AggregateGCN(b *Block, x *tensor.Matrix, dstNorm []float32) *tensor.Matrix {
	d := x.Cols
	out := tensor.New(b.NumDst, d)
	for i := 0; i < b.NumDst; i++ {
		dst := out.Row(i)
		lo, hi := b.Indptr[i], b.Indptr[i+1]
		for p := lo; p < hi; p++ {
			src := x.Row(int(b.Indices[p]))
			for j := range dst {
				dst[j] += src[j]
			}
		}
		self := x.Row(int(b.SelfIdx[i]))
		norm := dstNorm[i]
		for j := range dst {
			dst[j] = (dst[j] + self[j]) * norm
		}
	}
	return out
}

// aggregateBlockBackward scatters the normalized gradient back to the src
// frontier: the transpose of AggregateGCN under sampled-degree norms.
func aggregateBlockBackward(b *Block, dAgg *tensor.Matrix, numSrc int) *tensor.Matrix {
	d := dAgg.Cols
	dx := tensor.New(numSrc, d)
	for i := 0; i < b.NumDst; i++ {
		lo, hi := b.Indptr[i], b.Indptr[i+1]
		norm := 1 / float32(1+hi-lo)
		g := dAgg.Row(i)
		for p := lo; p < hi; p++ {
			dst := dx.Row(int(b.Indices[p]))
			for j := range dst {
				dst[j] += g[j] * norm
			}
		}
		self := dx.Row(int(b.SelfIdx[i]))
		for j := range self {
			self[j] += g[j] * norm
		}
	}
	return dx
}

// AggregateGCNFrom is AggregateGCN fused with the frontier gather: it
// streams rows straight out of the global feature store (fp32 or bf16) via
// spmm.GatherAggGCNSum instead of first materializing the |frontier|×d
// gathered matrix. For fp32 sources the float-op order is exactly
// gather-then-AggregateGCN, so results are bit-identical to the unfused
// path; bf16 sources decode on load and accumulate in float32.
func AggregateGCNFrom(b *Block, feats spmm.FeatRows, frontier []int32) *tensor.Matrix {
	out := tensor.New(b.NumDst, feats.Cols())
	if err := spmm.GatherAggGCNSum(out, feats, frontier, b.Indptr, b.Indices, b.SelfIdx, b.Norms()); err != nil {
		// Block invariants come from the sampler; a shape mismatch here is a
		// programming error, not a runtime condition.
		panic("minibatch: " + err.Error())
	}
	return out
}

// forward runs the sampled layers from the outermost frontier inward and
// returns logits for the seed vertices. feats is the global vertex-feature
// store; the outermost layer aggregates directly from it through the fused
// gather→aggregate kernel (the input frontier's features are never
// materialized as a matrix).
func (m *mbModel) forward(s *Sample, feats spmm.FeatRows, training bool) *tensor.Matrix {
	m.blocks = m.blocks[:0]
	var h *tensor.Matrix
	for l := len(s.Blocks) - 1; l >= 0; l-- {
		layer := len(s.Blocks) - 1 - l
		blk := s.Blocks[l]
		m.blocks = append(m.blocks, blk)
		var agg *tensor.Matrix
		if layer == 0 {
			agg = AggregateGCNFrom(blk, feats, s.InputFrontier())
		} else {
			agg = AggregateGCN(blk, h, blk.Norms())
		}
		h = m.layers[layer].Forward(agg, training)
		if m.relus[layer] != nil {
			h = m.relus[layer].Forward(h, training)
		}
	}
	return h
}

// forwardGathered is forward with the input-frontier features handed in as
// an already-gathered matrix instead of read from a resident store — the
// sharded trainer's path, where the gather crossed the comm fabric. For
// fp32 stores the two are bit-identical: AggregateGCN over the gathered
// matrix is exactly the unfused form of AggregateGCNFrom (the PR 6 kernel
// pin), and a sharded gather returns the resident matrix's exact bits.
func (m *mbModel) forwardGathered(s *Sample, x *tensor.Matrix, training bool) *tensor.Matrix {
	m.blocks = m.blocks[:0]
	var h *tensor.Matrix
	for l := len(s.Blocks) - 1; l >= 0; l-- {
		layer := len(s.Blocks) - 1 - l
		blk := s.Blocks[l]
		m.blocks = append(m.blocks, blk)
		src := h
		if layer == 0 {
			src = x
		}
		agg := AggregateGCN(blk, src, blk.Norms())
		h = m.layers[layer].Forward(agg, training)
		if m.relus[layer] != nil {
			h = m.relus[layer].Forward(h, training)
		}
	}
	return h
}

// backward propagates the seed-logit gradient back through all layers.
func (m *mbModel) backward(dlogits *tensor.Matrix) {
	dy := dlogits
	for layer := len(m.layers) - 1; layer >= 0; layer-- {
		if m.relus[layer] != nil {
			dy = m.relus[layer].Backward(dy)
		}
		dAgg := m.layers[layer].Backward(dy)
		blk := m.blocks[layer]
		dy = aggregateBlockBackward(blk, dAgg, blk.NumSrc)
	}
}

// Train runs mini-batch training over ds and reports per-epoch stats —
// the Dist-DGL arm of Table 9.
func Train(ds *datasets.Dataset, cfg Config) (*Result, error) {
	if cfg.NumLayers != len(cfg.Fanouts) {
		return nil, fmt.Errorf("minibatch: NumLayers %d != len(Fanouts) %d", cfg.NumLayers, len(cfg.Fanouts))
	}
	if cfg.BatchSize < 1 || cfg.Epochs < 1 {
		return nil, fmt.Errorf("minibatch: BatchSize and Epochs must be positive")
	}
	if cfg.Workers > 0 {
		parallel.Configure(parallel.Config{Workers: cfg.Workers})
	}
	feats, err := featRowsFor(ds, cfg.FeatPrecision)
	if err != nil {
		return nil, err
	}
	sampler, err := NewSampler(ds.G, cfg.Fanouts, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	m := newMBModel(ds.Features.Cols, cfg.Hidden, ds.NumClasses, cfg.NumLayers, rng)
	var opt nn.Optimizer
	if cfg.UseAdam {
		opt = nn.NewAdam(cfg.LR, 0)
	} else {
		opt = &nn.SGD{LR: cfg.LR}
	}
	params := m.params()

	res := &Result{}
	train := append([]int32(nil), ds.TrainIdx...)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
		var st EpochStat
		for off := 0; off < len(train); off += cfg.BatchSize {
			end := off + cfg.BatchSize
			if end > len(train) {
				end = len(train)
			}
			seeds := train[off:end]
			s := sampler.Sample(seeds)
			logits := m.forward(s, feats, true)

			localLabels := make([]int32, len(seeds))
			mask := make([]int32, len(seeds))
			for i, g := range seeds {
				localLabels[i] = ds.Labels[g]
				mask[i] = int32(i)
			}
			loss, dlogits := nn.MaskedCrossEntropy(logits, localLabels, mask)
			nn.ZeroGrads(params)
			m.backward(dlogits)
			opt.Step(params)

			st.Loss += loss
			st.NumBatches++
			st.SampledWork += sampledWork(s, m.dims)
		}
		if st.NumBatches > 0 {
			st.Loss /= float64(st.NumBatches)
		}
		st.Time = time.Since(start)
		res.Epochs = append(res.Epochs, st)
	}

	res.TestAcc = evaluate(ds, sampler, m, cfg.BatchSize, feats)
	return res, nil
}

// featRowsFor builds the feature row store Train and TrainDistributed read
// from: the dataset matrix as-is for fp32, or a one-time rounded bf16 slab.
func featRowsFor(ds *datasets.Dataset, p quant.Precision) (spmm.FeatRows, error) {
	switch p {
	case quant.FP32:
		return spmm.RowsOf(ds.Features), nil
	case quant.BF16:
		return spmm.RowsOfBF16(tensor.BF16FromMatrix(ds.Features)), nil
	default:
		return spmm.FeatRows{}, fmt.Errorf("minibatch: unsupported feature precision %v (fp32 or bf16)", p)
	}
}

// sampledWork counts aggregation element updates per hop: sampled edges ×
// the feature width entering that layer (Table 7's accounting).
func sampledWork(s *Sample, dims []int) int64 {
	var total int64
	for l, blk := range s.Blocks {
		layer := len(s.Blocks) - 1 - l
		_ = layer
		// Block l aggregates at layer (numLayers-1-l); its input width is
		// dims of that layer.
		total += int64(blk.NumSampledEdges()+blk.NumDst) * int64(dims[len(s.Blocks)-1-l])
	}
	return total
}

// gatherFeatures materializes the frontier's feature rows as an fp32 matrix
// — the unfused reference path the fused kernel is pinned against, kept for
// callers that need the gathered matrix itself (and for tests).
func gatherFeatures(feats spmm.FeatRows, frontier []int32) *tensor.Matrix {
	x := tensor.New(len(frontier), feats.Cols())
	for i, g := range frontier {
		feats.CopyRow(x.Row(i), int(g))
	}
	return x
}

// evaluate scores test vertices with sampled inference (same fan-outs).
func evaluate(ds *datasets.Dataset, sampler *Sampler, m *mbModel, batch int, feats spmm.FeatRows) float64 {
	if len(ds.TestIdx) == 0 {
		return 0
	}
	correct := 0
	for off := 0; off < len(ds.TestIdx); off += batch {
		end := off + batch
		if end > len(ds.TestIdx) {
			end = len(ds.TestIdx)
		}
		seeds := ds.TestIdx[off:end]
		s := sampler.Sample(seeds)
		logits := m.forward(s, feats, false)
		pred := make([]int, logits.Rows)
		logits.ArgmaxRows(pred)
		for i, g := range seeds {
			if int32(pred[i]) == ds.Labels[g] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(ds.TestIdx))
}
