package model_test

// Model-level checkpoint round-trip: train GraphSAGE and GAT for a few
// epochs, WriteParams → ReadParams into a freshly constructed (differently
// seeded) model, and assert bit-identical logits. This is the contract the
// train→serve handoff rests on: a checkpoint fully determines the
// forward-pass function, independent of the process that loads it.

import (
	"bytes"
	"math"
	"testing"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/tensor"
	"distgnn/internal/train"
)

func roundTripDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Load("ogbn-products-sim", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func assertLogitsBitIdentical(t *testing.T, a, b *tensor.Matrix, what string) {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", what, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i, v := range a.Data {
		if math.Float32bits(v) != math.Float32bits(b.Data[i]) {
			t.Fatalf("%s: element %d: %v (%#x) != %v (%#x)",
				what, i, v, math.Float32bits(v), b.Data[i], math.Float32bits(b.Data[i]))
		}
	}
}

func TestGraphSAGECheckpointRoundTripBitIdentical(t *testing.T) {
	ds := roundTripDataset(t)
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: 16, NumLayers: 2, Seed: 1},
		Epochs: 3, LR: 0.02, UseAdam: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nn.WriteParams(&buf, res.Model.Params()); err != nil {
		t.Fatal(err)
	}

	// Fresh model, different seed: every weight starts different, so the
	// assertion below can only pass if ReadParams restored all of them.
	fresh, err := model.New(ds.G, model.Config{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: ds.NumClasses, NumLayers: 2, Seed: 999,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.ReadParams(bytes.NewReader(buf.Bytes()), fresh.Params()); err != nil {
		t.Fatal(err)
	}
	want := res.Model.Forward(ds.Features, false)
	got := fresh.Forward(ds.Features, false)
	assertLogitsBitIdentical(t, got, want, "GraphSAGE round trip")
}

func TestGATCheckpointRoundTripBitIdentical(t *testing.T) {
	ds := roundTripDataset(t)
	heads := 2
	out := ((ds.NumClasses + heads - 1) / heads) * heads
	cfg := model.GATConfig{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: out,
		NumLayers: 2, NumHeads: heads,
	}
	cfg.Seed = 1
	gat, err := model.NewGAT(ds.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adam := nn.NewAdam(0.01, 0)
	params := gat.Params()
	for e := 0; e < 3; e++ {
		logits := gat.Forward(ds.Features, true)
		_, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
		nn.ZeroGrads(params)
		gat.Backward(dlogits)
		adam.Step(params)
	}
	var buf bytes.Buffer
	if err := nn.WriteParams(&buf, params); err != nil {
		t.Fatal(err)
	}

	cfg.Seed = 999
	fresh, err := model.NewGAT(ds.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.ReadParams(bytes.NewReader(buf.Bytes()), fresh.Params()); err != nil {
		t.Fatal(err)
	}
	want := gat.Forward(ds.Features, false)
	got := fresh.Forward(ds.Features, false)
	assertLogitsBitIdentical(t, got, want, "GAT round trip")
}

// TestCheckpointRejectsWrongShape documents the mismatch behaviour the
// serving CLI's fail-fast path relies on.
func TestCheckpointRejectsWrongShape(t *testing.T) {
	ds := roundTripDataset(t)
	m, err := model.New(ds.G, model.Config{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: ds.NumClasses, NumLayers: 2, Seed: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nn.WriteParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	wrong, err := model.New(ds.G, model.Config{
		InDim: ds.Features.Cols, Hidden: 32, OutDim: ds.NumClasses, NumLayers: 2, Seed: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.ReadParams(bytes.NewReader(buf.Bytes()), wrong.Params()); err == nil {
		t.Fatal("shape mismatch must be rejected")
	}
}
