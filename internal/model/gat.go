package model

import (
	"fmt"
	"math/rand"

	"distgnn/internal/graph"
	"distgnn/internal/nn"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// GAT is a multi-head Graph Attention Network — the attention-model class
// the paper's related-work section notes classic GAS frameworks cannot
// express, and one of the model families §7 targets for future DistGNN
// support. Per layer and head:
//
//	z   = x·W_h
//	e   = LeakyReLU(aL_h·z_u + aR_h·z_v)  per edge u→v   (SDDMM pattern)
//	α   = softmax_v(e)                     per destination (edge softmax)
//	h_v = Σ_u α_uv · z_u                   (weighted aggregation)
//
// Head outputs are concatenated (each head emits OutWidth/NumHeads
// channels) and ReLU is applied between layers. Built entirely from the
// spmm primitives (SDDMM, EdgeSoftmax, AggregateWeighted), demonstrating
// the substrate covers the featgraph operator surface, not just the GCN
// aggregate.
type GAT struct {
	Cfg GATConfig
	G   *graph.CSR

	layers []*gatLayer
	rev    *graph.CSR
}

// GATConfig describes a GAT instance.
type GATConfig struct {
	InDim     int
	Hidden    int
	OutDim    int
	NumLayers int
	// NumHeads is the attention head count per layer; Hidden and OutDim
	// must be divisible by it. Defaults to 1.
	NumHeads   int
	LeakySlope float64 // LeakyReLU negative slope; defaults to 0.2
	Seed       int64
}

// gatHead is one attention head: its projection, attention vectors and the
// forward caches its backward pass needs.
type gatHead struct {
	linear *nn.Linear
	attL   *nn.Param // 1×headOut
	attR   *nn.Param // 1×headOut

	z     *tensor.Matrix // post-linear features
	alpha *tensor.Matrix // |E|×1 attention weights
	pre   *tensor.Matrix // |E|×1 pre-activation scores
}

type gatLayer struct {
	heads []*gatHead
	last  bool

	h *tensor.Matrix // concatenated layer output (ReLU mask)
}

// NewGAT constructs a GAT over g.
func NewGAT(g *graph.CSR, cfg GATConfig) (*GAT, error) {
	if cfg.NumLayers < 1 {
		return nil, fmt.Errorf("model: GAT NumLayers must be ≥1")
	}
	if cfg.InDim <= 0 || cfg.OutDim <= 0 || (cfg.NumLayers > 1 && cfg.Hidden <= 0) {
		return nil, fmt.Errorf("model: GAT dimensions must be positive")
	}
	if cfg.NumHeads == 0 {
		cfg.NumHeads = 1
	}
	if cfg.NumHeads < 1 {
		return nil, fmt.Errorf("model: GAT NumHeads must be ≥1")
	}
	if cfg.OutDim%cfg.NumHeads != 0 || (cfg.NumLayers > 1 && cfg.Hidden%cfg.NumHeads != 0) {
		return nil, fmt.Errorf("model: GAT widths (hidden %d, out %d) must divide NumHeads %d",
			cfg.Hidden, cfg.OutDim, cfg.NumHeads)
	}
	if cfg.LeakySlope == 0 {
		cfg.LeakySlope = 0.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &GAT{Cfg: cfg, G: g, rev: g.Reverse()}
	for l := 0; l < cfg.NumLayers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InDim
		}
		out := cfg.Hidden
		if l == cfg.NumLayers-1 {
			out = cfg.OutDim
		}
		headOut := out / cfg.NumHeads
		gl := &gatLayer{last: l == cfg.NumLayers-1}
		for h := 0; h < cfg.NumHeads; h++ {
			head := &gatHead{
				linear: nn.NewLinear(fmt.Sprintf("gat%d.h%d", l, h), in, headOut, false, rng),
				attL:   nn.NewParam(fmt.Sprintf("gat%d.h%d.attL", l, h), 1, headOut),
				attR:   nn.NewParam(fmt.Sprintf("gat%d.h%d.attR", l, h), 1, headOut),
			}
			tensor.GlorotUniform(head.attL.W, rng)
			tensor.GlorotUniform(head.attR.W, rng)
			gl.heads = append(gl.heads, head)
		}
		m.layers = append(m.layers, gl)
	}
	return m, nil
}

// Forward returns per-vertex logits.
func (m *GAT) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	h := x
	for _, gl := range m.layers {
		h = m.forwardLayer(gl, h, training)
	}
	return h
}

func (m *GAT) forwardLayer(gl *gatLayer, x *tensor.Matrix, training bool) *tensor.Matrix {
	g := m.G
	headOut := gl.heads[0].linear.Weight.W.Cols
	out := tensor.New(g.NumVertices, headOut*len(gl.heads))
	for hi, head := range gl.heads {
		z := head.linear.Forward(x, training)
		head.z = z

		// Per-vertex attention projections s_u = aL·z_u, t_v = aR·z_v.
		s := project(z, head.attL.W.Data)
		t := project(z, head.attR.W.Data)

		// Per-edge pre-activation score e = s_u + t_v, then LeakyReLU.
		pre := tensor.New(g.NumEdges, 1)
		if err := spmm.SDDMM(g, s, t, spmm.SDDMMAdd, pre); err != nil {
			panic(err)
		}
		slope := float32(m.Cfg.LeakySlope)
		alpha := pre.Clone()
		for i, v := range alpha.Data {
			if v < 0 {
				alpha.Data[i] = v * slope
			}
		}
		head.pre = pre
		if err := spmm.EdgeSoftmax(g, alpha); err != nil {
			panic(err)
		}
		head.alpha = alpha

		// Weighted aggregation h_v = Σ α z_u, into this head's column band.
		agg := tensor.New(g.NumVertices, headOut)
		if err := spmm.AggregateWeighted(g, z, alpha.Data, agg); err != nil {
			panic(err)
		}
		setColBand(out, agg, hi*headOut)
	}
	if !gl.last {
		for i, v := range out.Data {
			if v < 0 {
				out.Data[i] = 0
			}
		}
	}
	gl.h = out
	return out
}

// project returns the |V|×1 matrix of row-dot-products z·a.
func project(z *tensor.Matrix, a []float32) *tensor.Matrix {
	out := tensor.New(z.Rows, 1)
	for v := 0; v < z.Rows; v++ {
		row := z.Row(v)
		var sum float32
		for j, w := range a {
			sum += row[j] * w
		}
		out.Data[v] = sum
	}
	return out
}

// setColBand copies src (n×w) into dst's columns [j0, j0+w).
func setColBand(dst, src *tensor.Matrix, j0 int) {
	for v := 0; v < src.Rows; v++ {
		copy(dst.Row(v)[j0:j0+src.Cols], src.Row(v))
	}
}

// colBand extracts dst columns [j0, j0+w) as a fresh n×w matrix.
func colBand(src *tensor.Matrix, j0, w int) *tensor.Matrix {
	out := tensor.New(src.Rows, w)
	for v := 0; v < src.Rows; v++ {
		copy(out.Row(v), src.Row(v)[j0:j0+w])
	}
	return out
}

// Backward propagates ∂L/∂logits, accumulating parameter gradients.
func (m *GAT) Backward(dlogits *tensor.Matrix) {
	dy := dlogits
	for l := len(m.layers) - 1; l >= 0; l-- {
		dy = m.backwardLayer(m.layers[l], dy)
	}
}

func (m *GAT) backwardLayer(gl *gatLayer, dy *tensor.Matrix) *tensor.Matrix {
	g := m.G
	if !gl.last {
		masked := tensor.New(dy.Rows, dy.Cols)
		for i, v := range dy.Data {
			if gl.h.Data[i] > 0 {
				masked.Data[i] = v
			}
		}
		dy = masked
	}

	headOut := gl.heads[0].linear.Weight.W.Cols
	var dxTotal *tensor.Matrix
	for hi, head := range gl.heads {
		dyh := colBand(dy, hi*headOut, headOut)
		dx := m.backwardHead(g, head, dyh)
		if dxTotal == nil {
			dxTotal = dx
		} else {
			dxTotal.Add(dx)
		}
	}
	return dxTotal
}

// backwardHead runs the single-head attention backward pass and returns
// ∂L/∂x for this head's path.
func (m *GAT) backwardHead(g *graph.CSR, head *gatHead, dy *tensor.Matrix) *tensor.Matrix {
	// h_v = Σ_u α_uv z_u.
	// (1) dz_u += Σ_v α_uv dy_v — weighted aggregation along reverse edges
	//     (edge IDs are shared between g and its reverse).
	dz := tensor.New(head.z.Rows, head.z.Cols)
	if err := spmm.AggregateWeighted(m.rev, dy, head.alpha.Data, dz); err != nil {
		panic(err)
	}
	// (2) dα_uv = z_u · dy_v — SDDMM dot.
	dalpha := tensor.New(g.NumEdges, 1)
	if err := spmm.SDDMM(g, head.z, dy, spmm.SDDMMDot, dalpha); err != nil {
		panic(err)
	}
	// (3) softmax backward per destination: de = α ⊙ (dα − Σ α·dα).
	de := tensor.New(g.NumEdges, 1)
	for v := 0; v < g.NumVertices; v++ {
		ids := g.InEdgeIDs(v)
		if len(ids) == 0 {
			continue
		}
		var dot float64
		for _, e := range ids {
			dot += float64(head.alpha.Data[e]) * float64(dalpha.Data[e])
		}
		for _, e := range ids {
			de.Data[e] = head.alpha.Data[e] * (dalpha.Data[e] - float32(dot))
		}
	}
	// (4) LeakyReLU backward on the pre-activation scores.
	slope := float32(m.Cfg.LeakySlope)
	for i := range de.Data {
		if head.pre.Data[i] < 0 {
			de.Data[i] *= slope
		}
	}
	// (5) de flows to s_u (sum over out-edges) and t_v (sum over in-edges).
	dsrc := tensor.New(g.NumVertices, 1)
	ddst := tensor.New(g.NumVertices, 1)
	for v := 0; v < g.NumVertices; v++ {
		nbr := g.InNeighbors(v)
		ids := g.InEdgeIDs(v)
		var sum float32
		for i := range ids {
			grad := de.Data[ids[i]]
			sum += grad
			dsrc.Data[nbr[i]] += grad
		}
		ddst.Data[v] += sum
	}
	// (6) s_u = aL·z_u, t_v = aR·z_v: fold into dz and attention gradients.
	aL, aR := head.attL.W.Data, head.attR.W.Data
	for v := 0; v < g.NumVertices; v++ {
		zRow := head.z.Row(v)
		dzRow := dz.Row(v)
		gs, gt := dsrc.Data[v], ddst.Data[v]
		for j := range dzRow {
			dzRow[j] += gs*aL[j] + gt*aR[j]
			head.attL.Grad.Data[j] += gs * zRow[j]
			head.attR.Grad.Data[j] += gt * zRow[j]
		}
	}
	// (7) Linear backward.
	return head.linear.Backward(dz)
}

// Params returns all trainable parameters.
func (m *GAT) Params() []*nn.Param {
	var out []*nn.Param
	for _, gl := range m.layers {
		for _, head := range gl.heads {
			out = append(out, head.linear.Params()...)
			out = append(out, head.attL, head.attR)
		}
	}
	return out
}
