package model

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/graph"
	"distgnn/internal/nn"
	"distgnn/internal/tensor"
)

func TestGATForwardShapes(t *testing.T) {
	g := smallGraph()
	m, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rand.New(rand.NewSource(1)), 1)
	y := m.Forward(x, false)
	if y.Rows != 5 || y.Cols != 3 {
		t.Fatalf("output %dx%d", y.Rows, y.Cols)
	}
}

func TestGATRejectsBadConfig(t *testing.T) {
	g := smallGraph()
	bad := []GATConfig{
		{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 0},
		{InDim: 0, Hidden: 8, OutDim: 3, NumLayers: 2},
		{InDim: 4, Hidden: 0, OutDim: 3, NumLayers: 2},
	}
	for i, cfg := range bad {
		if _, err := NewGAT(g, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

// Full GAT gradient check: every parameter class (linear weight, attention
// vectors) and the chain through edge softmax must match finite
// differences.
func TestGATGradCheck(t *testing.T) {
	g := smallGraph()
	m, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 6, OutDim: 3, NumLayers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rng, 1)
	labels := []int32{0, 1, 2, 0, 1}
	mask := []int32{0, 1, 2, 3, 4}

	lossOf := func() float64 {
		logits := m.Forward(x, false)
		l, _ := nn.MaskedCrossEntropy(logits, labels, mask)
		return l
	}
	logits := m.Forward(x, false)
	_, dlogits := nn.MaskedCrossEntropy(logits, labels, mask)
	nn.ZeroGrads(m.Params())
	m.Backward(dlogits)

	const h = 1e-3
	for _, p := range m.Params() {
		for _, idx := range []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1} {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + h
			up := lossOf()
			p.W.Data[idx] = orig - h
			down := lossOf()
			p.W.Data[idx] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[idx])
			if math.Abs(numeric-analytic) > 3e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, idx, analytic, numeric)
			}
		}
	}
}

func TestGATLearnsCommunityTask(t *testing.T) {
	// Same planted ring task as GraphSAGE: GAT must also learn it.
	rng := rand.New(rand.NewSource(5))
	var edges []graph.Edge
	for v := 0; v < 30; v++ {
		edges = append(edges, graph.Edge{Src: int32(v), Dst: int32((v + 1) % 30)})
		edges = append(edges, graph.Edge{Src: int32((v + 1) % 30), Dst: int32(v)})
	}
	g := graph.MustCSR(30, edges)
	labels := make([]int32, 30)
	x := tensor.New(30, 6)
	for v := 0; v < 30; v++ {
		labels[v] = int32(v / 10)
		for j := 0; j < 6; j++ {
			x.Set(v, j, float32(rng.NormFloat64())*0.3)
		}
		x.Set(v, int(labels[v]), x.At(v, int(labels[v]))+2)
	}
	mask := make([]int32, 30)
	for i := range mask {
		mask[i] = int32(i)
	}
	m, err := NewGAT(g, GATConfig{InDim: 6, Hidden: 16, OutDim: 3, NumLayers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewAdam(0.03, 0)
	params := m.Params()
	var first, last float64
	for epoch := 0; epoch < 80; epoch++ {
		logits := m.Forward(x, true)
		loss, dlogits := nn.MaskedCrossEntropy(logits, labels, mask)
		if epoch == 0 {
			first = loss
		}
		last = loss
		nn.ZeroGrads(params)
		m.Backward(dlogits)
		opt.Step(params)
	}
	if last > first*0.5 {
		t.Fatalf("GAT loss did not halve: %v → %v", first, last)
	}
	if acc := nn.Accuracy(m.Forward(x, false), labels, mask); acc < 0.8 {
		t.Fatalf("GAT train accuracy %v < 0.8", acc)
	}
}

func TestGATAttentionWeightsValid(t *testing.T) {
	g := smallGraph()
	m, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rand.New(rand.NewSource(2)), 1)
	m.Forward(x, false)
	alpha := m.layers[0].heads[0].alpha
	for v := 0; v < g.NumVertices; v++ {
		ids := g.InEdgeIDs(v)
		if len(ids) == 0 {
			continue
		}
		var sum float64
		for _, e := range ids {
			sum += float64(alpha.Data[e])
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("attention over vertex %d sums to %v", v, sum)
		}
	}
}

func TestGATMultiHeadGradCheck(t *testing.T) {
	g := smallGraph()
	m, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 8, OutDim: 4, NumLayers: 2,
		NumHeads: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rng, 1)
	labels := []int32{0, 1, 2, 3, 1}
	mask := []int32{0, 1, 2, 3, 4}
	lossOf := func() float64 {
		logits := m.Forward(x, false)
		l, _ := nn.MaskedCrossEntropy(logits, labels, mask)
		return l
	}
	logits := m.Forward(x, false)
	_, dlogits := nn.MaskedCrossEntropy(logits, labels, mask)
	nn.ZeroGrads(m.Params())
	m.Backward(dlogits)
	const h = 1e-3
	for _, p := range m.Params() {
		for _, idx := range []int{0, len(p.W.Data) - 1} {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + h
			up := lossOf()
			p.W.Data[idx] = orig - h
			down := lossOf()
			p.W.Data[idx] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[idx])
			if math.Abs(numeric-analytic) > 3e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, idx, analytic, numeric)
			}
		}
	}
}

func TestGATRejectsIndivisibleHeads(t *testing.T) {
	g := smallGraph()
	if _, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 7, OutDim: 3, NumLayers: 2, NumHeads: 2}); err == nil {
		t.Fatal("hidden width not divisible by heads must error")
	}
	if _, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 2, NumHeads: 2}); err == nil {
		t.Fatal("out width not divisible by heads must error")
	}
	if _, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 8, OutDim: 4, NumLayers: 2, NumHeads: -1}); err == nil {
		t.Fatal("negative heads must error")
	}
}

func TestGATMultiHeadDiffersFromSingleHead(t *testing.T) {
	g := smallGraph()
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rand.New(rand.NewSource(13)), 1)
	one, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 8, OutDim: 4, NumLayers: 2, NumHeads: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewGAT(g, GATConfig{InDim: 4, Hidden: 8, OutDim: 4, NumLayers: 2, NumHeads: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if one.Forward(x, false).MaxAbsDiff(two.Forward(x, false)) == 0 {
		t.Fatal("head count must change the function")
	}
	if len(two.Params()) != 2*len(one.Params()) {
		t.Fatalf("2-head GAT must have twice the parameter tensors: %d vs %d",
			len(two.Params()), len(one.Params()))
	}
}

func TestGINAggregatorGradCheck(t *testing.T) {
	g := smallGraph()
	cfg := smallConfig(2)
	cfg.Aggregator = AggGIN
	cfg.GINEps = 0.3
	m, err := New(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rng, 1)
	labels := []int32{0, 1, 2, 0, 1}
	mask := []int32{0, 1, 2, 3}
	lossOf := func() float64 {
		logits := m.Forward(x, false)
		l, _ := nn.MaskedCrossEntropy(logits, labels, mask)
		return l
	}
	logits := m.Forward(x, false)
	_, dlogits := nn.MaskedCrossEntropy(logits, labels, mask)
	nn.ZeroGrads(m.Params())
	m.Backward(dlogits)
	const h = 1e-3
	for _, p := range m.Params() {
		for _, idx := range []int{0, len(p.W.Data) - 1} {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + h
			up := lossOf()
			p.W.Data[idx] = orig - h
			down := lossOf()
			p.W.Data[idx] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[idx])
			if math.Abs(numeric-analytic) > 2e-2*(1+math.Abs(numeric)) {
				t.Fatalf("GIN %s[%d]: analytic %v vs numeric %v", p.Name, idx, analytic, numeric)
			}
		}
	}
}

func TestGINDiffersFromGCN(t *testing.T) {
	g := smallGraph()
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rand.New(rand.NewSource(7)), 1)
	gcn, err := New(g, smallConfig(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(2)
	cfg.Aggregator = AggGIN
	gin, err := New(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gcn.Forward(x, false).MaxAbsDiff(gin.Forward(x, false)) == 0 {
		t.Fatal("GIN and GCN aggregators must produce different outputs")
	}
	if AggGIN.String() != "gin" || AggGCN.String() != "gcn" {
		t.Fatal("aggregator names wrong")
	}
}

func TestMaxPoolAggregatorGradCheck(t *testing.T) {
	g := smallGraph()
	cfg := smallConfig(2)
	cfg.Aggregator = AggMaxPool
	m, err := New(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rng, 1)
	labels := []int32{0, 1, 2, 0, 1}
	mask := []int32{0, 1, 2, 3}
	lossOf := func() float64 {
		logits := m.Forward(x, false)
		l, _ := nn.MaskedCrossEntropy(logits, labels, mask)
		return l
	}
	logits := m.Forward(x, false)
	_, dlogits := nn.MaskedCrossEntropy(logits, labels, mask)
	nn.ZeroGrads(m.Params())
	m.Backward(dlogits)
	const h = 1e-4 // small h: max is piecewise linear, avoid crossing kinks
	for _, p := range m.Params() {
		for _, idx := range []int{0, len(p.W.Data) - 1} {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + h
			up := lossOf()
			p.W.Data[idx] = orig - h
			down := lossOf()
			p.W.Data[idx] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[idx])
			if math.Abs(numeric-analytic) > 5e-2*(1+math.Abs(numeric)) {
				t.Fatalf("maxpool %s[%d]: analytic %v vs numeric %v", p.Name, idx, analytic, numeric)
			}
		}
	}
}

func TestMaxPoolAggregatorString(t *testing.T) {
	if AggMaxPool.String() != "maxpool" {
		t.Fatal("aggregator name wrong")
	}
}
