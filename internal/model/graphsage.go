// Package model implements the GraphSAGE GNN used throughout the paper's
// evaluation (§6.1): per layer, a GCN-style aggregation — neighbor sum via
// the aggregation primitive, plus the vertex's own features, normalized by
// 1/(1+in-degree) — followed by a Linear layer, with ReLU and dropout
// between layers. The paper uses 2 layers × 16 hidden units for Reddit and
// 3 layers × 256 hidden units for the other datasets.
//
// Distributed training hooks: after local aggregation in each layer the
// model calls FwdHook so a distributed trainer can fold in remote partial
// aggregates of split vertices (cd-0 synchronously, cd-r with delay, 0c not
// at all, per §5.3); BwdHook mirrors this for the input-gradient partials
// on the backward pass.
package model

import (
	"fmt"
	"math/rand"
	"time"

	"distgnn/internal/graph"
	"distgnn/internal/nn"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// Aggregator selects the per-layer combine rule applied to (x, Σ neighbors).
type Aggregator uint8

const (
	// AggGCN is the paper's §6.1 operator: (x + Σ_u x_u) / (1 + deg).
	AggGCN Aggregator = iota
	// AggGIN is the Graph Isomorphism Network combine (Xu et al. 2018):
	// (1+ε)·x + Σ_u x_u, no degree normalization — one of the "different
	// GNN models beyond GraphSAGE" the paper's §7 plans to support.
	AggGIN
	// AggMaxPool is GraphSAGE's max aggregator: elementwise maximum over
	// the neighborhood including self, with argmax-routed gradients.
	// Single-socket only: distributed partial aggregates merge by sum, and
	// the forward hooks are not invoked for this aggregator.
	AggMaxPool
)

func (a Aggregator) String() string {
	switch a {
	case AggGIN:
		return "gin"
	case AggMaxPool:
		return "maxpool"
	default:
		return "gcn"
	}
}

// Config describes a GraphSAGE model instance.
type Config struct {
	InDim     int
	Hidden    int
	OutDim    int
	NumLayers int
	DropoutP  float64
	// Aggregator selects the combine rule; zero value is the paper's GCN.
	Aggregator Aggregator
	// GINEps is ε of the GIN combine (used when Aggregator == AggGIN).
	GINEps float64
	// AggOpt configures the aggregation-primitive kernel; the zero value
	// (defaulted in New) is the fully optimized configuration.
	AggOpt spmm.Options
	// AutoTuneAgg benchmarks kernel variants on g at construction and uses
	// the fastest instead of the DefaultOptions heuristic (ignored when
	// AggOpt is set explicitly or UseBaselineAgg is on). The one-shot sweep
	// costs a few aggregation passes, amortized over the training epochs.
	AutoTuneAgg bool
	// TuneCacheDir, when AutoTuneAgg is on, persists the sweep winner as a
	// JSON profile keyed by (dataset fingerprint, width, workers, machine)
	// under this directory, so later runs skip the sweep entirely. Empty
	// re-sweeps every construction.
	TuneCacheDir string
	// UseBaselineAgg forces the Alg. 1 baseline kernel — the "DGL 0.5.3
	// baseline" arm of Fig. 2.
	UseBaselineAgg bool
	Seed           int64
}

// GraphSAGE is a full-batch GraphSAGE model bound to one graph.
type GraphSAGE struct {
	Cfg  Config
	G    *graph.CSR
	Norm []float32 // per-vertex 1/(1+deg) normalization

	fwdPlan *spmm.Plan // aggregation over A
	bwdPlan *spmm.Plan // aggregation over Aᵀ (gradient flow)
	layers  []*sageLayer

	// FwdHook, if set, is called after local aggregation of each layer with
	// the raw aggregate matrix (before self-add and normalization).
	FwdHook func(layer int, agg *tensor.Matrix)
	// BwdHook, if set, is called with the reverse-aggregated input-gradient
	// partials of each layer before the self term is added — the point where
	// a distributed trainer sums gradient partials across clones.
	BwdHook func(layer int, grad *tensor.Matrix)

	// AggTime accumulates wall time spent inside the aggregation primitive
	// (forward and backward); the Fig. 2 "AP" measurement. Reset with
	// ResetAggTime.
	AggTime time.Duration

	// featB, when set, is the bf16 copy of the input features the layer-0
	// forward aggregation reads instead of the fp32 matrix (see
	// SetBF16Features).
	featB *tensor.BF16Matrix
}

// SetBF16Features installs a bf16 slab as the layer-0 aggregation source:
// the first layer's forward spmm streams 2-byte rows (half the feature-read
// traffic of fp32) and decodes on load. Callers must pass b.ToMatrix() — the
// decoded fp32 copy — as Forward's x so the self-add path observes exactly
// the values the kernel decodes; under that convention the result is
// bit-identical to fp32 training over the rounded features. Pass nil to
// return to fp32 reads. Rejected under UseBaselineAgg (the Alg. 1 baseline
// kernel is fp32-only by contract).
func (m *GraphSAGE) SetBF16Features(b *tensor.BF16Matrix) error {
	if b == nil {
		m.featB = nil
		return nil
	}
	if m.Cfg.UseBaselineAgg {
		return fmt.Errorf("model: bf16 features require the planned kernels (UseBaselineAgg is on)")
	}
	if b.Rows != m.G.NumVertices || b.Cols != m.Cfg.InDim {
		return fmt.Errorf("model: bf16 slab %dx%d, want %dx%d", b.Rows, b.Cols, m.G.NumVertices, m.Cfg.InDim)
	}
	m.featB = b
	return nil
}

// ResetAggTime clears the aggregation-primitive time accumulator.
func (m *GraphSAGE) ResetAggTime() { m.AggTime = 0 }

type sageLayer struct {
	linear  *nn.Linear
	relu    *nn.ReLU // nil on the last layer
	dropout *nn.Dropout

	x      *tensor.Matrix // layer input, cached for backward self-term
	argmax []int32        // max-pool winners, cached for backward routing
}

// New builds a GraphSAGE model over g. norm is the per-vertex normalization
// vector (1/(1+deg)); pass nil to derive it from g's in-degrees — the
// distributed trainer passes global-degree norms so partitioned training
// normalizes identically to single-socket.
func New(g *graph.CSR, cfg Config, norm []float32) (*GraphSAGE, error) {
	if cfg.NumLayers < 1 {
		return nil, fmt.Errorf("model: NumLayers must be ≥1, got %d", cfg.NumLayers)
	}
	if cfg.InDim <= 0 || cfg.OutDim <= 0 || (cfg.NumLayers > 1 && cfg.Hidden <= 0) {
		return nil, fmt.Errorf("model: dimensions must be positive (in=%d hidden=%d out=%d)",
			cfg.InDim, cfg.Hidden, cfg.OutDim)
	}
	if norm == nil {
		norm = NormFromDegrees(g.InDegrees())
	}
	if len(norm) != g.NumVertices {
		return nil, fmt.Errorf("model: norm length %d != vertices %d", len(norm), g.NumVertices)
	}
	if cfg.AggOpt == (spmm.Options{}) {
		if cfg.AutoTuneAgg && !cfg.UseBaselineAgg {
			width := cfg.Hidden
			if width <= 0 {
				width = cfg.InDim
			}
			cfg.AggOpt = spmm.AutoTuneCached(g, width, cfg.TuneCacheDir)
		} else {
			cfg.AggOpt = spmm.DefaultOptions(pickNumBlocks(g))
		}
	}
	m := &GraphSAGE{Cfg: cfg, G: g, Norm: norm}
	if !cfg.UseBaselineAgg {
		m.fwdPlan = spmm.NewPlan(g, cfg.AggOpt)
		m.bwdPlan = spmm.NewPlan(g.Reverse(), cfg.AggOpt)
	} else {
		// Baseline still needs the reverse graph for backward.
		m.bwdPlan = spmm.NewPlan(g.Reverse(), spmm.Options{NumBlocks: 1})
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for l := 0; l < cfg.NumLayers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InDim
		}
		out := cfg.Hidden
		if l == cfg.NumLayers-1 {
			out = cfg.OutDim
		}
		sl := &sageLayer{
			linear: nn.NewLinear(fmt.Sprintf("sage%d", l), in, out, true, rng),
		}
		if l != cfg.NumLayers-1 {
			sl.relu = &nn.ReLU{}
			if cfg.DropoutP > 0 {
				sl.dropout = &nn.Dropout{P: cfg.DropoutP, Rng: rng}
			}
		}
		m.layers = append(m.layers, sl)
	}
	return m, nil
}

// NormFromDegrees builds the GCN normalization vector 1/(1+deg).
func NormFromDegrees(deg []int32) []float32 {
	norm := make([]float32, len(deg))
	for i, d := range deg {
		norm[i] = 1 / float32(1+d)
	}
	return norm
}

// pickNumBlocks chooses a cache-block count so one block of the feature
// matrix (assuming ~64 cols) fits in a few MB of LLC. Mirrors the paper's
// guidance that denser graphs want more blocks.
func pickNumBlocks(g *graph.CSR) int {
	const targetBlockVertices = 16384
	nB := g.NumVertices / targetBlockVertices
	if nB < 1 {
		nB = 1
	}
	if nB > 64 {
		nB = 64
	}
	return nB
}

// aggregate runs the forward aggregation primitive into a fresh matrix. On
// layer 0 with a bf16 slab installed, the kernel reads the slab (decoding
// on load) instead of x — bit-identical output, half the source traffic.
func (m *GraphSAGE) aggregate(x *tensor.Matrix, layer0 bool) *tensor.Matrix {
	start := time.Now()
	out := tensor.New(x.Rows, x.Cols)
	args := &spmm.Args{G: m.G, FO: out, Op: spmm.OpCopyLHS, Red: spmm.ReduceSum}
	if layer0 && m.featB != nil && x.Rows == m.featB.Rows && x.Cols == m.featB.Cols {
		args.FVB = m.featB
	} else {
		args.FV = x
	}
	var err error
	if m.Cfg.UseBaselineAgg {
		err = spmm.Baseline(args)
	} else {
		err = m.fwdPlan.Run(args)
	}
	if err != nil {
		panic(err) // shapes are constructed internally; cannot fail
	}
	m.AggTime += time.Since(start)
	return out
}

// aggregateReverse propagates gradients along reverse edges: out = Aᵀ·g.
func (m *GraphSAGE) aggregateReverse(g *tensor.Matrix) *tensor.Matrix {
	start := time.Now()
	out := tensor.New(g.Rows, g.Cols)
	args := &spmm.Args{G: m.bwdPlan.G, FV: g, FO: out, Op: spmm.OpCopyLHS, Red: spmm.ReduceSum}
	if err := m.bwdPlan.Run(args); err != nil {
		panic(err)
	}
	m.AggTime += time.Since(start)
	return out
}

// Forward runs the full model and returns per-vertex class logits.
func (m *GraphSAGE) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	h := x
	for l, sl := range m.layers {
		sl.x = h
		if m.Cfg.Aggregator == AggMaxPool {
			agg := tensor.New(h.Rows, h.Cols)
			sl.argmax = make([]int32, len(agg.Data))
			start := time.Now()
			if err := spmm.AggregateMaxArg(m.G, h, agg, sl.argmax); err != nil {
				panic(err)
			}
			m.AggTime += time.Since(start)
			h = sl.linear.Forward(agg, training)
			if sl.relu != nil {
				h = sl.relu.Forward(h, training)
				if sl.dropout != nil {
					h = sl.dropout.Forward(h, training)
				}
			}
			continue
		}
		agg := m.aggregate(h, l == 0)
		if m.FwdHook != nil {
			m.FwdHook(l, agg)
		}
		switch m.Cfg.Aggregator {
		case AggGIN:
			// GIN combine: (1+ε)·x + Σ neighbors, unnormalized.
			agg.AddScaled(h, float32(1+m.Cfg.GINEps))
		default:
			// GCN post-processing (§6.1): add own features, normalize by
			// degree.
			agg.Add(h)
			agg.ScaleRows(m.Norm)
		}
		h = sl.linear.Forward(agg, training)
		if sl.relu != nil {
			h = sl.relu.Forward(h, training)
			if sl.dropout != nil {
				h = sl.dropout.Forward(h, training)
			}
		}
	}
	return h
}

// Backward propagates ∂L/∂logits through the model, accumulating parameter
// gradients. Returns ∂L/∂input (rarely needed; callers may ignore it).
func (m *GraphSAGE) Backward(dlogits *tensor.Matrix) *tensor.Matrix {
	dy := dlogits
	for l := len(m.layers) - 1; l >= 0; l-- {
		sl := m.layers[l]
		if sl.relu != nil {
			if sl.dropout != nil {
				dy = sl.dropout.Backward(dy)
			}
			dy = sl.relu.Backward(dy)
		}
		ds := sl.linear.Backward(dy)
		switch m.Cfg.Aggregator {
		case AggMaxPool:
			dx := tensor.New(ds.Rows, ds.Cols)
			if err := spmm.ScatterMaxGrad(ds, sl.argmax, dx); err != nil {
				panic(err)
			}
			dy = dx
		case AggGIN:
			// s = (1+ε)x + agg: neighbor path gets ds, self path (1+ε)·ds.
			if m.BwdHook != nil {
				m.BwdHook(l, ds)
			}
			dx := m.aggregateReverse(ds)
			dx.AddScaled(ds, float32(1+m.Cfg.GINEps))
			dy = dx
		default:
			// s = norm ⊙ (agg + x): scale the gradient once, then split
			// into the self path and the neighbor path.
			ds.ScaleRows(m.Norm)
			if m.BwdHook != nil {
				m.BwdHook(l, ds)
			}
			dx := m.aggregateReverse(ds)
			dx.Add(ds)
			dy = dx
		}
	}
	return dy
}

// Params returns all trainable parameters, layer order.
func (m *GraphSAGE) Params() []*nn.Param {
	var out []*nn.Param
	for _, sl := range m.layers {
		out = append(out, sl.linear.Params()...)
	}
	return out
}

// NumParams returns the total trainable element count.
func (m *GraphSAGE) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumElements()
	}
	return n
}
