package model

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/graph"
	"distgnn/internal/nn"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

func smallGraph() *graph.CSR {
	// 5 vertices, a mix of degrees including an isolated vertex (4).
	return graph.MustCSR(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2},
		{Src: 2, Dst: 1}, {Src: 0, Dst: 2}, {Src: 3, Dst: 0},
	})
}

func smallConfig(layers int) Config {
	return Config{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: layers, Seed: 1}
}

func TestForwardShapes(t *testing.T) {
	g := smallGraph()
	for _, layers := range []int{1, 2, 3} {
		m, err := New(g, smallConfig(layers), nil)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(5, 4)
		tensor.RandomNormal(x, rand.New(rand.NewSource(1)), 1)
		y := m.Forward(x, false)
		if y.Rows != 5 || y.Cols != 3 {
			t.Fatalf("layers=%d: output %dx%d", layers, y.Rows, y.Cols)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	g := smallGraph()
	bad := []Config{
		{InDim: 4, Hidden: 8, OutDim: 3, NumLayers: 0},
		{InDim: 0, Hidden: 8, OutDim: 3, NumLayers: 2},
		{InDim: 4, Hidden: 0, OutDim: 3, NumLayers: 2},
		{InDim: 4, Hidden: 8, OutDim: 0, NumLayers: 2},
	}
	for i, cfg := range bad {
		if _, err := New(g, cfg, nil); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
	if _, err := New(g, smallConfig(2), make([]float32, 3)); err == nil {
		t.Error("expected error for wrong norm length")
	}
}

func TestNormFromDegrees(t *testing.T) {
	norm := NormFromDegrees([]int32{0, 1, 3})
	want := []float32{1, 0.5, 0.25}
	for i, w := range want {
		if norm[i] != w {
			t.Fatalf("norm %v want %v", norm, want)
		}
	}
}

func TestBaselineAndOptimizedAggAgree(t *testing.T) {
	g := smallGraph()
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rand.New(rand.NewSource(2)), 1)

	cfgOpt := smallConfig(2)
	cfgBase := cfgOpt
	cfgBase.UseBaselineAgg = true
	mo, err := New(g, cfgOpt, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := New(g, cfgBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed → same weights → same logits regardless of kernel.
	yo := mo.Forward(x, false)
	yb := mb.Forward(x, false)
	if d := yo.MaxAbsDiff(yb); d > 1e-4 {
		t.Fatalf("baseline vs optimized logits differ by %v", d)
	}
}

// Full-model gradient check: perturb a weight, verify loss change matches
// the accumulated analytic gradient.
func TestModelGradCheck(t *testing.T) {
	g := smallGraph()
	cfg := smallConfig(2)
	m, err := New(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rng, 1)
	labels := []int32{0, 1, 2, 0, 1}
	mask := []int32{0, 1, 2, 3}

	lossOf := func() float64 {
		logits := m.Forward(x, false)
		l, _ := nn.MaskedCrossEntropy(logits, labels, mask)
		return l
	}
	logits := m.Forward(x, false)
	_, dlogits := nn.MaskedCrossEntropy(logits, labels, mask)
	nn.ZeroGrads(m.Params())
	m.Backward(dlogits)

	const h = 1e-3
	for _, p := range m.Params() {
		for _, idx := range []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1} {
			orig := p.W.Data[idx]
			p.W.Data[idx] = orig + h
			up := lossOf()
			p.W.Data[idx] = orig - h
			down := lossOf()
			p.W.Data[idx] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[idx])
			if math.Abs(numeric-analytic) > 2e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, idx, analytic, numeric)
			}
		}
	}
}

func TestHooksInvokedPerLayer(t *testing.T) {
	g := smallGraph()
	m, err := New(g, smallConfig(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	var fwdCalls, bwdCalls []int
	m.FwdHook = func(l int, agg *tensor.Matrix) {
		fwdCalls = append(fwdCalls, l)
		if agg.Rows != 5 {
			t.Errorf("hook layer %d: agg rows %d", l, agg.Rows)
		}
	}
	m.BwdHook = func(l int, grad *tensor.Matrix) { bwdCalls = append(bwdCalls, l) }
	x := tensor.New(5, 4)
	logits := m.Forward(x, true)
	m.Backward(tensor.New(logits.Rows, logits.Cols))
	if len(fwdCalls) != 3 || fwdCalls[0] != 0 || fwdCalls[2] != 2 {
		t.Fatalf("fwd hook calls: %v", fwdCalls)
	}
	if len(bwdCalls) != 3 || bwdCalls[0] != 2 || bwdCalls[2] != 0 {
		t.Fatalf("bwd hook calls: %v", bwdCalls)
	}
}

func TestFwdHookInjectionChangesOutput(t *testing.T) {
	// Injecting remote partial aggregates through the hook must influence
	// logits — this is the mechanism the distributed trainer relies on.
	g := smallGraph()
	m, err := New(g, smallConfig(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 4)
	tensor.RandomNormal(x, rand.New(rand.NewSource(4)), 1)
	base := m.Forward(x, false).Clone()
	m.FwdHook = func(l int, agg *tensor.Matrix) {
		if l == 0 {
			agg.Row(1)[0] += 10 // a remote partial arrives for vertex 1
		}
	}
	pert := m.Forward(x, false)
	if pert.MaxAbsDiff(base) == 0 {
		t.Fatal("hook injection had no effect on logits")
	}
}

func TestTrainingReducesLossOnSyntheticTask(t *testing.T) {
	// 30-vertex ring with planted 3-class features: a few epochs of
	// full-batch training must cut the loss substantially.
	rng := rand.New(rand.NewSource(5))
	var edges []graph.Edge
	for v := 0; v < 30; v++ {
		edges = append(edges, graph.Edge{Src: int32(v), Dst: int32((v + 1) % 30)})
		edges = append(edges, graph.Edge{Src: int32((v + 1) % 30), Dst: int32(v)})
	}
	g := graph.MustCSR(30, edges)
	labels := make([]int32, 30)
	x := tensor.New(30, 6)
	for v := 0; v < 30; v++ {
		// Contiguous class blocks so ring neighborhoods are class-pure and
		// aggregation reinforces (rather than averages away) the signal.
		labels[v] = int32(v / 10)
		for j := 0; j < 6; j++ {
			x.Set(v, j, float32(rng.NormFloat64())*0.3)
		}
		x.Set(v, int(labels[v]), x.At(v, int(labels[v]))+2)
	}
	mask := make([]int32, 30)
	for i := range mask {
		mask[i] = int32(i)
	}

	m, err := New(g, Config{InDim: 6, Hidden: 16, OutDim: 3, NumLayers: 2, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewAdam(0.05, 0)
	var first, last float64
	for epoch := 0; epoch < 60; epoch++ {
		logits := m.Forward(x, true)
		loss, dlogits := nn.MaskedCrossEntropy(logits, labels, mask)
		if epoch == 0 {
			first = loss
		}
		last = loss
		nn.ZeroGrads(m.Params())
		m.Backward(dlogits)
		opt.Step(m.Params())
	}
	if last > first*0.5 {
		t.Fatalf("loss did not halve: first=%v last=%v", first, last)
	}
	acc := nn.Accuracy(m.Forward(x, false), labels, mask)
	if acc < 0.8 {
		t.Fatalf("train accuracy %v < 0.8", acc)
	}
}

func TestNumParams(t *testing.T) {
	g := smallGraph()
	m, err := New(g, smallConfig(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// layer0: 4×8 + 8 bias; layer1: 8×3 + 3 bias = 32+8+24+3 = 67.
	if got := m.NumParams(); got != 67 {
		t.Fatalf("NumParams = %d, want 67", got)
	}
}

func TestAggOptRespected(t *testing.T) {
	g := smallGraph()
	cfg := smallConfig(2)
	cfg.AggOpt = spmm.Options{NumBlocks: 2, Schedule: spmm.ScheduleStatic}
	m, err := New(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.AggOpt.NumBlocks != 2 {
		t.Fatal("AggOpt overridden")
	}
}
