package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpointing: model parameters serialize to a versioned binary stream so
// long full-batch runs (the paper trains 200–300 epochs) can be resumed and
// trained models shipped between tools.

const checkpointMagic = 0x44474E50 // "DGNP"

// WriteParams serializes params (names, shapes, values) to w. Gradients
// are not persisted.
func WriteParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	for _, v := range []any{uint32(checkpointMagic), uint32(1), uint32(len(params))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		for _, v := range []uint32{uint32(p.W.Rows), uint32(p.W.Cols)} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, p.W.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadParams restores values previously written by WriteParams into params.
// The parameter list must match by order, name and shape — a structural
// mismatch (different model config) is an error, not silent corruption.
func ReadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	var magic, version, count uint32
	for _, v := range []*uint32{&magic, &version, &count} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %#x", magic)
	}
	if version != 1 {
		return fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint parameter %q, model expects %q", name, p.Name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != p.W.Rows || int(cols) != p.W.Cols {
			return fmt.Errorf("nn: %s has shape %dx%d in checkpoint, model expects %dx%d",
				p.Name, rows, cols, p.W.Rows, p.W.Cols)
		}
		if err := binary.Read(br, binary.LittleEndian, p.W.Data); err != nil {
			return err
		}
	}
	return nil
}
