package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"distgnn/internal/tensor"
)

func checkpointParams(seed int64) []*Param {
	rng := rand.New(rand.NewSource(seed))
	a := NewParam("layer0.weight", 4, 6)
	b := NewParam("layer0.bias", 1, 6)
	tensor.RandomNormal(a.W, rng, 1)
	tensor.RandomNormal(b.W, rng, 1)
	return []*Param{a, b}
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := checkpointParams(1)
	var buf bytes.Buffer
	if err := WriteParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := []*Param{NewParam("layer0.weight", 4, 6), NewParam("layer0.bias", 1, 6)}
	if err := ReadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i].W.MaxAbsDiff(dst[i].W) != 0 {
			t.Fatalf("parameter %d changed", i)
		}
	}
}

func TestCheckpointRejectsNameMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, checkpointParams(2)); err != nil {
		t.Fatal(err)
	}
	dst := []*Param{NewParam("other.weight", 4, 6), NewParam("layer0.bias", 1, 6)}
	if err := ReadParams(&buf, dst); err == nil {
		t.Fatal("name mismatch must error")
	}
}

func TestCheckpointRejectsShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, checkpointParams(3)); err != nil {
		t.Fatal(err)
	}
	dst := []*Param{NewParam("layer0.weight", 4, 7), NewParam("layer0.bias", 1, 6)}
	if err := ReadParams(&buf, dst); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestCheckpointRejectsCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, checkpointParams(4)); err != nil {
		t.Fatal(err)
	}
	dst := []*Param{NewParam("layer0.weight", 4, 6)}
	if err := ReadParams(&buf, dst); err == nil {
		t.Fatal("count mismatch must error")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if err := ReadParams(bytes.NewReader([]byte("garbage data here....")), checkpointParams(5)); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, checkpointParams(6)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	dst := checkpointParams(7)
	for _, cut := range []int{4, 12, 20, len(data) / 2} {
		if err := ReadParams(bytes.NewReader(data[:cut]), dst); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
}
