package nn

import (
	"math/rand"

	"distgnn/internal/tensor"
)

// Linear is a fully connected layer: y = x·W + b, with W of shape in×out.
type Linear struct {
	Weight *Param
	Bias   *Param // 1×out; nil when bias is disabled

	x *tensor.Matrix // cached input for backward
}

// NewLinear creates a Glorot-initialized Linear layer.
func NewLinear(name string, in, out int, bias bool, rng *rand.Rand) *Linear {
	l := &Linear{Weight: NewParam(name+".weight", in, out)}
	tensor.GlorotUniform(l.Weight.W, rng)
	if bias {
		l.Bias = NewParam(name+".bias", 1, out)
	}
	return l
}

// Forward computes y = x·W (+ b).
func (l *Linear) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	l.x = x
	y := tensor.New(x.Rows, l.Weight.W.Cols)
	tensor.MatMul(y, x, l.Weight.W)
	if l.Bias != nil {
		y.AddRowVector(l.Bias.W.Data)
	}
	return y
}

// Backward accumulates dW += xᵀ·dy, db += Σrows(dy) and returns dx = dy·Wᵀ.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dW := tensor.New(l.Weight.W.Rows, l.Weight.W.Cols)
	tensor.MatMulTransA(dW, l.x, dy)
	l.Weight.Grad.Add(dW)
	if l.Bias != nil {
		db := make([]float32, dy.Cols)
		dy.ColSums(db)
		for j, v := range db {
			l.Bias.Grad.Data[j] += v
		}
	}
	dx := tensor.New(l.x.Rows, l.x.Cols)
	tensor.MatMulTransB(dx, dy, l.Weight.W)
	return dx
}

// Params returns the trainable parameters.
func (l *Linear) Params() []*Param {
	if l.Bias == nil {
		return []*Param{l.Weight}
	}
	return []*Param{l.Weight, l.Bias}
}

// ReLU is the elementwise rectifier.
type ReLU struct {
	y *tensor.Matrix // cached output: mask = (y > 0)
}

// Forward computes max(x, 0).
func (r *ReLU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		}
	}
	r.y = y
	return y
}

// Backward masks dy by the activation pattern.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(dy.Rows, dy.Cols)
	for i, v := range dy.Data {
		if r.y.Data[i] > 0 {
			dx.Data[i] = v
		}
	}
	return dx
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training and scales
// survivors by 1/(1-P) (inverted dropout), identity at evaluation time.
type Dropout struct {
	P   float64
	Rng *rand.Rand

	mask []bool
}

// Forward applies dropout when training is true.
func (d *Dropout) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	if !training || d.P <= 0 {
		d.mask = nil
		return x
	}
	y := tensor.New(x.Rows, x.Cols)
	d.mask = make([]bool, len(x.Data))
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.Rng.Float64() >= d.P {
			d.mask[i] = true
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward routes gradients through surviving units only.
func (d *Dropout) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return dy
	}
	dx := tensor.New(dy.Rows, dy.Cols)
	scale := float32(1 / (1 - d.P))
	for i, v := range dy.Data {
		if d.mask[i] {
			dx.Data[i] = v * scale
		}
	}
	return dx
}

// Params returns nil: Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
