package nn

import (
	"math"

	"distgnn/internal/tensor"
)

// MaskedCrossEntropy computes mean softmax cross-entropy over the vertex
// subset mask (the labeled training vertices in full-batch GNN training)
// and the gradient ∂L/∂logits, which is zero outside the mask. labels are
// class indices per row of logits.
func MaskedCrossEntropy(logits *tensor.Matrix, labels []int32, mask []int32) (loss float64, grad *tensor.Matrix) {
	grad = tensor.New(logits.Rows, logits.Cols)
	if len(mask) == 0 {
		return 0, grad
	}
	inv := 1.0 / float64(len(mask))
	for _, v := range mask {
		row := logits.Row(int(v))
		lse := tensor.LogSumExpRow(row)
		y := int(labels[v])
		loss += (lse - float64(row[y])) * inv
		g := grad.Row(int(v))
		for j := range row {
			p := math.Exp(float64(row[j]) - lse)
			g[j] = float32(p * inv)
		}
		g[y] -= float32(inv)
	}
	return loss, grad
}

// Accuracy returns the fraction of mask vertices whose argmax prediction
// matches the label.
func Accuracy(logits *tensor.Matrix, labels []int32, mask []int32) float64 {
	if len(mask) == 0 {
		return 0
	}
	pred := make([]int, logits.Rows)
	logits.ArgmaxRows(pred)
	correct := 0
	for _, v := range mask {
		if int32(pred[v]) == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(mask))
}
