package nn

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/tensor"
)

// numericGradCheck compares the analytic gradient of a scalar loss with a
// central finite difference on a handful of coordinates.
func numericGradCheck(t *testing.T, loss func() float64, data []float32, grad []float32, indices []int, tol float64) {
	t.Helper()
	const h = 1e-3
	for _, i := range indices {
		orig := data[i]
		data[i] = orig + h
		up := loss()
		data[i] = orig - h
		down := loss()
		data[i] = orig
		numeric := (up - down) / (2 * h)
		analytic := float64(grad[i])
		if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", i, analytic, numeric)
		}
	}
}

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("l", 4, 6, true, rng)
	x := tensor.New(3, 4)
	tensor.RandomNormal(x, rng, 1)
	y := l.Forward(x, true)
	if y.Rows != 3 || y.Cols != 6 {
		t.Fatalf("output shape %dx%d", y.Rows, y.Cols)
	}
}

func TestLinearBiasApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("l", 2, 2, true, rng)
	l.Weight.W.Zero()
	l.Bias.W.Data[0], l.Bias.W.Data[1] = 3, -1
	x := tensor.New(2, 2)
	y := l.Forward(x, true)
	if y.At(0, 0) != 3 || y.At(1, 1) != -1 {
		t.Fatalf("bias not applied: %v", y.Data)
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear("l", 5, 4, true, rng)
	x := tensor.New(7, 5)
	tensor.RandomNormal(x, rng, 1)
	target := tensor.New(7, 4)
	tensor.RandomNormal(target, rng, 1)

	// Loss = 0.5·‖y - target‖²; dL/dy = y - target.
	loss := func() float64 {
		y := l.Forward(x, true)
		diff := y.Clone()
		diff.Sub(target)
		return 0.5 * diff.Norm2() * diff.Norm2()
	}
	y := l.Forward(x, true)
	dy := y.Clone()
	dy.Sub(target)
	ZeroGrads(l.Params())
	dx := l.Backward(dy)

	numericGradCheck(t, loss, l.Weight.W.Data, l.Weight.Grad.Data, []int{0, 3, 7, 19}, 2e-2)
	numericGradCheck(t, loss, l.Bias.W.Data, l.Bias.Grad.Data, []int{0, 2, 3}, 2e-2)
	numericGradCheck(t, loss, x.Data, dx.Data, []int{0, 5, 17, 34}, 2e-2)
}

func TestReLUForwardBackward(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromSlice(1, 4, []float32{-1, 0, 2, -3})
	y := r.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("forward: got %v", y.Data)
		}
	}
	dy := tensor.FromSlice(1, 4, []float32{10, 20, 30, 40})
	dx := r.Backward(dy)
	wantDx := []float32{0, 0, 30, 0}
	for i, w := range wantDx {
		if dx.Data[i] != w {
			t.Fatalf("backward: got %v", dx.Data)
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := &Dropout{P: 0.5, Rng: rand.New(rand.NewSource(1))}
	x := tensor.FromSlice(1, 3, []float32{1, 2, 3})
	y := d.Forward(x, false)
	if y != x {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainingScalesSurvivors(t *testing.T) {
	d := &Dropout{P: 0.5, Rng: rand.New(rand.NewSource(7))}
	x := tensor.New(100, 10)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %v (want 0 or 2)", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatal("dropout must zero some and keep some")
	}
	frac := float64(zeros) / float64(zeros+twos)
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("drop fraction %v far from 0.5", frac)
	}
	// Backward masks identically.
	dy := tensor.New(100, 10)
	dy.Fill(1)
	dx := d.Backward(dy)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestMaskedCrossEntropyUniformLogits(t *testing.T) {
	logits := tensor.New(4, 5) // uniform → loss = ln(5)
	labels := []int32{0, 1, 2, 3}
	mask := []int32{0, 1, 2, 3}
	loss, grad := MaskedCrossEntropy(logits, labels, mask)
	if math.Abs(loss-math.Log(5)) > 1e-6 {
		t.Fatalf("loss %v want ln5=%v", loss, math.Log(5))
	}
	// Gradient row sums must be 0 (softmax minus one-hot).
	for i := 0; i < 4; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("row %d grad sum %v", i, s)
		}
	}
}

func TestMaskedCrossEntropyMasksRows(t *testing.T) {
	logits := tensor.New(3, 2)
	logits.Set(2, 0, 5)
	labels := []int32{0, 0, 1}
	_, grad := MaskedCrossEntropy(logits, labels, []int32{0})
	for _, v := range grad.Row(1) {
		if v != 0 {
			t.Fatal("unmasked row must have zero gradient")
		}
	}
	for _, v := range grad.Row(2) {
		if v != 0 {
			t.Fatal("unmasked row must have zero gradient")
		}
	}
}

func TestMaskedCrossEntropyGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.New(6, 4)
	tensor.RandomNormal(logits, rng, 1)
	labels := []int32{0, 3, 1, 2, 0, 1}
	mask := []int32{0, 2, 4, 5}
	loss := func() float64 {
		l, _ := MaskedCrossEntropy(logits, labels, mask)
		return l
	}
	_, grad := MaskedCrossEntropy(logits, labels, mask)
	numericGradCheck(t, loss, logits.Data, grad.Data, []int{0, 3, 8, 11, 16, 23}, 2e-2)
}

func TestMaskedCrossEntropyEmptyMask(t *testing.T) {
	logits := tensor.New(2, 2)
	loss, grad := MaskedCrossEntropy(logits, []int32{0, 1}, nil)
	if loss != 0 || grad.Norm2() != 0 {
		t.Fatal("empty mask must yield zero loss and gradient")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float32{
		1, 0, // pred 0
		0, 1, // pred 1
		1, 0, // pred 0
	})
	labels := []int32{0, 1, 1}
	if acc := Accuracy(logits, labels, []int32{0, 1, 2}); math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("accuracy %v", acc)
	}
	if acc := Accuracy(logits, labels, []int32{2}); acc != 0 {
		t.Fatalf("masked accuracy %v", acc)
	}
	if acc := Accuracy(logits, labels, nil); acc != 0 {
		t.Fatal("empty mask accuracy must be 0")
	}
}

func TestSGDStepWithWeightDecay(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.W.Data[0], p.W.Data[1] = 1, -2
	p.Grad.Data[0], p.Grad.Data[1] = 0.5, 0.5
	(&SGD{LR: 0.1, WeightDecay: 0.1}).Step([]*Param{p})
	// w0: 1 - 0.1*(0.5 + 0.1*1) = 0.94
	// w1: -2 - 0.1*(0.5 + 0.1*-2) = -2.03
	if math.Abs(float64(p.W.Data[0])-0.94) > 1e-6 || math.Abs(float64(p.W.Data[1])+2.03) > 1e-6 {
		t.Fatalf("SGD step: %v", p.W.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ‖w - 3‖² — Adam must approach w=3.
	p := NewParam("p", 1, 1)
	opt := NewAdam(0.1, 0)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.W.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.W.Data[0])-3) > 0.05 {
		t.Fatalf("Adam did not converge: w=%v", p.W.Data[0])
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.W.Data[0] = 10
	opt := &SGD{LR: 0.1}
	for i := 0; i < 200; i++ {
		p.Grad.Data[0] = 2 * (p.W.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.W.Data[0])-3) > 1e-3 {
		t.Fatalf("SGD did not converge: w=%v", p.W.Data[0])
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewParam("a", 2, 3)
	b := NewParam("b", 1, 4)
	tensor.RandomNormal(a.W, rng, 1)
	tensor.RandomNormal(b.W, rng, 1)
	params := []*Param{a, b}
	buf := FlattenParams(params, false)
	if len(buf) != 10 {
		t.Fatalf("flat length %d", len(buf))
	}
	a2 := NewParam("a", 2, 3)
	b2 := NewParam("b", 1, 4)
	UnflattenParams([]*Param{a2, b2}, buf, false)
	if a2.W.MaxAbsDiff(a.W) != 0 || b2.W.MaxAbsDiff(b.W) != 0 {
		t.Fatal("round trip lost data")
	}
	// Gradient mode round trip.
	tensor.RandomNormal(a.Grad, rng, 1)
	gbuf := FlattenParams(params, true)
	UnflattenParams([]*Param{a2, b2}, gbuf, true)
	if a2.Grad.MaxAbsDiff(a.Grad) != 0 {
		t.Fatal("grad round trip lost data")
	}
}

func TestZeroGrads(t *testing.T) {
	p := NewParam("p", 2, 2)
	p.Grad.Fill(5)
	ZeroGrads([]*Param{p})
	if p.Grad.Norm2() != 0 {
		t.Fatal("ZeroGrads failed")
	}
}
