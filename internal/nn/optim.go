package nn

import (
	"math"

	"distgnn/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with L2 weight decay (the paper sets
// wd = 5e-4 for every experiment in Table 5).
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step applies p.W -= lr·(grad + wd·p.W) to every parameter.
func (s *SGD) Step(params []*Param) {
	lr := float32(s.LR)
	wd := float32(s.WeightDecay)
	for _, p := range params {
		w, g := p.W.Data, p.Grad.Data
		for i := range w {
			w[i] -= lr * (g[i] + wd*w[i])
		}
	}
}

// Adam is the Adam optimizer with decoupled-graph defaults
// (β1=0.9, β2=0.999, ε=1e-8) and L2 weight decay folded into the gradient.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam constructs an Adam optimizer with standard moment decay rates.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// Step applies one Adam update with bias correction.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.Rows, p.W.Cols)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.Rows, p.W.Cols)
		}
		v := a.v[p]
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		wd := float32(a.WeightDecay)
		for i := range p.W.Data {
			g := p.Grad.Data[i] + wd*p.W.Data[i]
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mHat := float64(m.Data[i]) / c1
			vHat := float64(v.Data[i]) / c2
			p.W.Data[i] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Eps))
		}
	}
}
