// Package nn provides the neural-network substrate DistGNN gets from
// PyTorch in the paper: manually differentiated layers (Linear, ReLU,
// Dropout), softmax cross-entropy over masked vertex sets, and SGD/Adam
// optimizers with weight decay. GraphSAGE's per-layer MLP is composed from
// these in package model.
package nn

import "distgnn/internal/tensor"

// Param is one trainable tensor with its gradient accumulator. Biases are
// represented as 1×n matrices so optimizers and the distributed parameter
// AllReduce treat all parameters uniformly.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumElements returns the parameter element count.
func (p *Param) NumElements() int { return len(p.W.Data) }

// Layer is a differentiable module. Forward consumes the layer input and
// returns its output; Backward consumes ∂L/∂output and returns ∂L/∂input,
// accumulating parameter gradients as a side effect. Layers cache
// activations between Forward and Backward, so calls must pair up.
type Layer interface {
	Forward(x *tensor.Matrix, training bool) *tensor.Matrix
	Backward(dy *tensor.Matrix) *tensor.Matrix
	Params() []*Param
}

// ZeroGrads clears gradients of all parameters in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// FlattenParams copies all parameter values into one contiguous buffer,
// in order — the layout used for the distributed parameter AllReduce.
func FlattenParams(params []*Param, grad bool) []float32 {
	out := make([]float32, TotalElements(params))
	FlattenParamsInto(out, params, grad)
	return out
}

// TotalElements returns the summed element count of params — the length
// FlattenParamsInto requires of its buffer.
func TotalElements(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.NumElements()
	}
	return n
}

// FlattenParamsInto gathers parameters (or their gradients) into buf, which
// must have length TotalElements(params). The allocation-free form of
// FlattenParams for per-epoch use with a scratch arena.
func FlattenParamsInto(buf []float32, params []*Param, grad bool) {
	off := 0
	for _, p := range params {
		src := p.W.Data
		if grad {
			src = p.Grad.Data
		}
		copy(buf[off:], src)
		off += len(src)
	}
}

// UnflattenParams scatters a contiguous buffer back into parameters (or
// their gradients), inverse of FlattenParams.
func UnflattenParams(params []*Param, buf []float32, grad bool) {
	off := 0
	for _, p := range params {
		dst := p.W.Data
		if grad {
			dst = p.Grad.Data
		}
		copy(dst, buf[off:off+len(dst)])
		off += len(dst)
	}
}
