package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is the identity block /healthz serves so fleet debugging can
// tell replicas (and builds) apart.
type BuildInfo struct {
	Module        string `json:"module"`
	ModuleVersion string `json:"module_version"`
	GoVersion     string `json:"go_version"`
}

// ReadBuildInfo resolves the running binary's module identity via
// runtime/debug. Test binaries and devel builds report "(devel)".
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{Module: "distgnn", ModuleVersion: "(devel)", GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Path != "" {
			bi.Module = info.Main.Path
		}
		if info.Main.Version != "" {
			bi.ModuleVersion = info.Main.Version
		}
	}
	return bi
}
