// Package obs is the observability plane: a dependency-free metrics
// registry (counters, gauges, fixed-log-bucket histograms) with Prometheus
// text exposition, plus per-request tracing (trace IDs, spans, a recent-
// trace ring, a threshold-gated slow-request log) and the JSONL telemetry
// writer distgnn-train emits epoch events through.
//
// The design contract is "disabled = free": every handle type (*Counter,
// *Gauge, *Histogram, *TraceCtx, *Tracer) is nil-safe — a nil receiver
// makes every method a no-op — and a nil *Registry hands out nil handles,
// so code instruments unconditionally and pays exactly one nil check when
// observability is off. When on, the hot path is atomic adds only: metrics
// are pre-registered once and never allocate per observation.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Nil-safe: a nil counter
// ignores Add/Inc, so disabled observability costs one branch.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be ≥ 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 when nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 when nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed log-bucket count: bucket i covers observations
// ≤ 2^i microseconds (1µs … ~2.1s), the last bucket is +Inf. Fixed and
// shared by every histogram so Observe is pure atomics, no allocation.
const histBuckets = 22

// Histogram is a fixed-log-bucket latency histogram. Observe is three
// atomic adds; the bucket layout is 2^i microseconds. Nil-safe.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64 // +1: the +Inf overflow bucket
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	idx := 0
	if us > 1 {
		idx = bits.Len64(uint64(us - 1)) // smallest i with us ≤ 2^i
	}
	if idx > histBuckets {
		idx = histBuckets
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations (0 when nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns an upper bound on the q-quantile in seconds from the
// log buckets (0 when empty). Bucket resolution is 2×, so the bound is
// within a factor of two of the true quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketBoundSeconds(i)
		}
	}
	return bucketBoundSeconds(histBuckets)
}

// bucketBoundSeconds returns bucket i's upper bound in seconds (the last
// bucket reports its lower neighbour's bound — +Inf is not a number).
func bucketBoundSeconds(i int) float64 {
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return float64(uint64(1)<<uint(i)) / 1e6
}

// metricKind discriminates the exposition shape.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one registered entry: a rendered full name (base plus optional
// {label="v"} suffix), its kind, and the live value source.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() float64
}

// baseName strips the label suffix for HELP/TYPE grouping.
func (m *metric) baseName() string {
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		return m.name[:i]
	}
	return m.name
}

// labels returns the rendered label body (without braces), or "".
func (m *metric) labels() string {
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		return strings.TrimSuffix(m.name[i+1:], "}")
	}
	return ""
}

// Registry holds registered metrics and renders them. A nil *Registry is
// the disabled plane: every registration returns a nil handle and every
// exposition writes nothing.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// Label renders name{k="v"} — the registration-time label helper. Metrics
// are registered under fully rendered names so the hot path never formats.
func Label(name, k, v string) string {
	return fmt.Sprintf("%s{%s=%q}", name, k, v)
}

// register adds m unless the name exists, in which case the existing entry
// wins (idempotent re-registration hands back the same handle).
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[m.name]; ok {
		return prev
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or retrieves) a counter by rendered name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindCounter, c: &Counter{}}).c
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindGauge, g: &Gauge{}}).g
}

// Histogram registers (or retrieves) a fixed-log-bucket histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, help: help, kind: kindHistogram, h: &Histogram{}}).h
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the zero-hot-path-cost bridge to counters that already
// exist as atomics elsewhere (coalescer, caches, featstore, frontend).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// snapshot returns the registered metrics sorted by (base, full) name.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		bi, bj := ms[i].baseName(), ms[j].baseName()
		if bi != bj {
			return bi < bj
		}
		return ms[i].name < ms[j].name
	})
	return ms
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Metrics sharing a base name (label variants)
// share one HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastBase := ""
	for _, m := range r.snapshot() {
		base := m.baseName()
		if base != lastBase {
			lastBase = base
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", base, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typeString(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.g.Value())
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(&b, "%s %g\n", m.name, m.fn())
		case kindHistogram:
			writeHistogram(&b, base, m.labels(), m.h)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet,
// splicing the le label after any registration-time labels.
func writeHistogram(b *strings.Builder, base, labels string, h *Histogram) {
	prefix := ""
	if labels != "" {
		prefix = labels + ","
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", base, prefix, formatLe(bucketBoundSeconds(i)), cum)
	}
	cum += h.buckets[histBuckets].Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", base, prefix, cum)
	if labels != "" {
		fmt.Fprintf(b, "%s_sum{%s} %g\n", base, labels, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(b, "%s_count{%s} %d\n", base, labels, h.count.Load())
	} else {
		fmt.Fprintf(b, "%s_sum %g\n", base, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(b, "%s_count %d\n", base, h.count.Load())
	}
}

func formatLe(sec float64) string {
	return fmt.Sprintf("%g", sec)
}

// DumpJSON writes every metric as one flat JSON object keyed by rendered
// name — histograms nest {count, sum_seconds, p50_s, p95_s, p99_s}. This
// is the exit-time dump distgnn-train emits.
func (r *Registry) DumpJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	out := map[string]any{}
	for _, m := range r.snapshot() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.c.Value()
		case kindGauge:
			out[m.name] = m.g.Value()
		case kindCounterFunc, kindGaugeFunc:
			out[m.name] = m.fn()
		case kindHistogram:
			out[m.name] = map[string]any{
				"count":       m.h.count.Load(),
				"sum_seconds": float64(m.h.sumNs.Load()) / 1e9,
				"p50_s":       m.h.Quantile(0.50),
				"p95_s":       m.h.Quantile(0.95),
				"p99_s":       m.h.Quantile(0.99),
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Handler serves the Prometheus exposition over GET. A nil registry
// serves 404 so the endpoint honestly reports "disabled".
func (r *Registry) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if r == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	}
}
