package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilPlaneIsFree pins the disabled contract: nil registry, nil
// handles, nil tracer, nil trace contexts, and a nil event log all accept
// every call without effect (and without panicking).
func TestNilPlaneIsFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "")
	r.CounterFunc("f_total", "", func() float64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v len=%d", err, buf.Len())
	}

	var tr *Tracer
	var tc *TraceCtx
	tc.StartSpan("s")()
	tc.AddSpanAt("s", time.Now(), time.Millisecond)
	tc.Merge(NewTraceCtx(1))
	if tc.ID() != 0 || tc.Spans() != nil {
		t.Fatal("nil TraceCtx must read as empty")
	}
	tr.Finish(NewTraceCtx(1), "predict", 0, 200)
	tr.Record(Trace{})
	if tr.Recent(10) != nil || tr.Enabled() {
		t.Fatal("nil tracer must be inert")
	}

	var l *EventLog
	l.Emit("epoch", map[string]any{"loss": 1.0})
	if NewEventLog(nil) != nil {
		t.Fatal("NewEventLog(nil) must return nil")
	}
}

// TestCounterGaugeHistogram exercises the live hot paths, including
// idempotent re-registration returning the same handle.
func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	h := r.Histogram("lat_seconds", "latency")
	for _, d := range []time.Duration{time.Microsecond, 3 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, time.Second} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %g, want in (0, 0.01]", q)
	}
	if q := h.Quantile(0.99); q < 1.0 {
		t.Fatalf("p99 = %g, want ≥ 1s bucket bound", q)
	}
}

// TestPrometheusExposition pins the text format shape: HELP/TYPE headers
// shared across label variants, cumulative histogram buckets, _sum/_count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("hits_total", "cache", "feature"), "cache hits").Add(4)
	r.Counter(Label("hits_total", "cache", "embed"), "cache hits").Inc()
	h := r.Histogram(Label("stage_seconds", "stage", "gather"), "stage latency")
	h.Observe(2 * time.Microsecond)
	h.Observe(100 * time.Millisecond)
	r.GaugeFunc("uptime_seconds", "uptime", func() float64 { return 1.5 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE hits_total counter",
		`hits_total{cache="embed"} 1`,
		`hits_total{cache="feature"} 4`,
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="gather",le="+Inf"} 2`,
		`stage_seconds_count{stage="gather"} 2`,
		"# TYPE uptime_seconds gauge",
		"uptime_seconds 1.5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// One TYPE header per base name even with two label variants.
	if strings.Count(text, "# TYPE hits_total") != 1 {
		t.Fatalf("label variants must share one TYPE header:\n%s", text)
	}
	// Buckets must be cumulative: the +Inf bucket equals the count.
	if !strings.Contains(text, `stage_seconds_bucket{stage="gather",le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket must equal count:\n%s", text)
	}
}

// TestDumpJSON pins the exit-time JSON dump shape.
func TestDumpJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("epochs_total", "").Add(3)
	r.Histogram("step_seconds", "").Observe(5 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["epochs_total"].(float64) != 3 {
		t.Fatalf("epochs_total = %v", out["epochs_total"])
	}
	hist := out["step_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("histogram dump = %v", hist)
	}
}

// TestTraceIDs pins mint/format/parse round trips and uniqueness.
func TestTraceIDs(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace ID minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
		back, ok := ParseTraceID(FormatTraceID(id))
		if !ok || back != id {
			t.Fatalf("round trip %x -> %q -> %x ok=%v", id, FormatTraceID(id), back, ok)
		}
	}
	if _, ok := ParseTraceID("nothex"); ok {
		t.Fatal("malformed ID parsed")
	}
	if _, ok := ParseTraceID("0"); ok {
		t.Fatal("zero ID must not parse as traced")
	}
}

// TestTracerRingAndSlowLog drives Finish through the ring and the
// threshold-gated slow log.
func TestTracerRingAndSlowLog(t *testing.T) {
	var slow bytes.Buffer
	tr := NewTracer(TracerConfig{Role: "server", Rank: 1, RingSize: 4,
		SlowLog: &slow, SlowThreshold: 0})
	for i := 0; i < 6; i++ {
		tc := NewTraceCtx(NewTraceID())
		done := tc.StartSpan("gather")
		done()
		tr.Finish(tc, "predict", int64(i), 200)
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d, want 4", len(recent))
	}
	// Newest-last ordering: the last record is vertex 5.
	if recent[len(recent)-1].Vertex != 5 {
		t.Fatalf("recent order wrong: %+v", recent)
	}
	for _, rec := range recent {
		if rec.Role != "server" || rec.Rank != 1 {
			t.Fatalf("record not stamped: %+v", rec)
		}
		if len(rec.Spans) != 1 || rec.Spans[0].Name != "gather" {
			t.Fatalf("spans not captured: %+v", rec)
		}
	}
	lines := strings.Split(strings.TrimSpace(slow.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("slow log lines = %d, want 6 (threshold 0 logs all)", len(lines))
	}
	var rec Trace
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slow log is not JSONL: %v", err)
	}
	if _, ok := ParseTraceID(rec.TraceID); !ok {
		t.Fatalf("slow log trace ID %q malformed", rec.TraceID)
	}

	// Threshold gating: a high threshold suppresses fast requests.
	var slow2 bytes.Buffer
	tr2 := NewTracer(TracerConfig{RingSize: 4, SlowLog: &slow2, SlowThreshold: time.Hour})
	tr2.Finish(NewTraceCtx(NewTraceID()), "predict", 0, 200)
	if slow2.Len() != 0 {
		t.Fatal("fast request leaked into slow log")
	}
}

// TestTraceCtxMerge pins the batch→member span copy the coalescer relies
// on: merged spans are re-based onto the member's clock.
func TestTraceCtxMerge(t *testing.T) {
	member := NewTraceCtx(NewTraceID())
	time.Sleep(2 * time.Millisecond)
	batch := NewTraceCtx(0)
	batch.AddSpanAt("gather", batch.start, 3*time.Millisecond)
	member.Merge(batch)
	spans := member.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].StartUs < 1000 {
		t.Fatalf("merged span not re-based: start %dus", spans[0].StartUs)
	}
	if spans[0].DurUs < 2900 {
		t.Fatalf("merged span duration lost: %dus", spans[0].DurUs)
	}
}

// TestTraceHandler pins the /debug/trace/recent endpoint: JSON array,
// ?n= clamping, 405 on non-GET, 404 when disabled.
func TestTraceHandler(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 8})
	for i := 0; i < 3; i++ {
		tr.Finish(NewTraceCtx(NewTraceID()), "predict", int64(i), 200)
	}
	rec := httptest.NewRecorder()
	tr.Handler()(rec, httptest.NewRequest("GET", "/debug/trace/recent?n=2", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var traces []Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("n=2 returned %d traces", len(traces))
	}

	rec = httptest.NewRecorder()
	tr.Handler()(rec, httptest.NewRequest("POST", "/debug/trace/recent", nil))
	if rec.Code != 405 {
		t.Fatalf("non-GET status %d, want 405", rec.Code)
	}

	var nilTr *Tracer
	rec = httptest.NewRecorder()
	nilTr.Handler()(rec, httptest.NewRequest("GET", "/debug/trace/recent", nil))
	if rec.Code != 404 {
		t.Fatalf("disabled tracer status %d, want 404", rec.Code)
	}
}

// TestMetricsHandler pins /metrics semantics: exposition on GET, 405
// otherwise, 404 when disabled.
func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help").Inc()
	rec := httptest.NewRecorder()
	r.Handler()(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("status %d body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	rec = httptest.NewRecorder()
	r.Handler()(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("non-GET status %d, want 405", rec.Code)
	}
	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.Handler()(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Fatalf("disabled status %d, want 404", rec.Code)
	}
}

// TestRegistryConcurrency hammers registration and observation from many
// goroutines while exposition runs — the lock-cheap claim under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_seconds", "")
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					r.Counter(fmt.Sprintf("per_worker_%d_total", w), "").Inc()
					var buf bytes.Buffer
					r.WritePrometheus(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 4000 {
		t.Fatalf("shared counter = %d, want 4000", got)
	}
	if got := r.Histogram("shared_seconds", "").Count(); got != 4000 {
		t.Fatalf("shared histogram count = %d, want 4000", got)
	}
}

// TestEventLog pins the JSONL event shape and bit-pattern helper.
func TestEventLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit("epoch", map[string]any{"epoch": 1, "loss": 0.5, "loss_bits": F64Bits(0.5)})
	l.Emit("done", nil)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["event"] != "epoch" || ev["loss_bits"] != "0x3fe0000000000000" {
		t.Fatalf("event = %v", ev)
	}
	if _, ok := ev["ts_unix_ns"]; !ok {
		t.Fatal("missing timestamp")
	}
}
