package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"
)

// telemetry.go is the training-telemetry leg: a JSONL event stream
// distgnn-train writes at rank 0 — one object per line, each stamped with
// an event name and a wall-clock timestamp. Loss/accuracy values carry
// their float64 bit patterns alongside the decimal rendering so the
// stream can participate in bit-identity conformance checks.

// EventLog writes JSONL telemetry events. Nil-safe: a nil log drops every
// event, so emission sites need no guards.
type EventLog struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewEventLog wraps w (typically a file). A nil writer yields a nil log.
func NewEventLog(w io.Writer) *EventLog {
	if w == nil {
		return nil
	}
	return &EventLog{w: w, enc: json.NewEncoder(w)}
}

// Emit writes one event line: {"event": name, "ts_unix_ns": ..., fields}.
// fields is copied shallowly; callers keep ownership.
func (l *EventLog) Emit(name string, fields map[string]any) {
	if l == nil {
		return
	}
	obj := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		obj[k] = v
	}
	obj["event"] = name
	obj["ts_unix_ns"] = time.Now().UnixNano()
	l.mu.Lock()
	l.enc.Encode(obj)
	l.mu.Unlock()
}

// F64Bits renders a float64's exact bit pattern the way telemetry events
// carry loss/accuracy for bit-identity comparison across ranks and runs.
func F64Bits(v float64) string {
	return "0x" + hex16(math.Float64bits(v))
}

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}
