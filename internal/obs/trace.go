package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// trace.go is the request-tracing leg: a 64-bit trace ID minted at the
// fleet entry point (the frontend, or a directly-hit server), carried via
// the TraceHeader HTTP header across the router → owner hop and via the
// ReqRep frame extension across halo fetches, so one tail request is
// attributable end to end across ranks. Per-stage spans accumulate in a
// TraceCtx; a Tracer keeps finished traces in a fixed ring (served by
// GET /debug/trace/recent) and writes threshold-gated JSONL slow-request
// records.

// TraceHeader carries the hex trace ID between HTTP hops (frontend →
// router → owner shard) and back to the client on responses.
const TraceHeader = "X-Distgnn-Trace"

// traceState seeds NewTraceID: a per-process random base (splitmix64 of
// the start time and pid) plus an atomic sequence, so IDs are unique
// across a fleet's processes without coordination.
var (
	traceBase = splitmix64(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
	traceSeq  atomic.Uint64
)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID mints a nonzero 64-bit trace ID. Zero means "untraced"
// everywhere (headers, ReqRep frames), so the zero value is never minted.
func NewTraceID() uint64 {
	id := splitmix64(traceBase + traceSeq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// FormatTraceID renders an ID the way headers and logs carry it.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses FormatTraceID's output; ok is false for malformed
// or zero IDs.
func ParseTraceID(s string) (uint64, bool) {
	id, err := strconv.ParseUint(s, 16, 64)
	return id, err == nil && id != 0
}

// Span is one timed stage of a request, relative to its trace start.
type Span struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// TraceCtx accumulates one request's spans. Nil-safe: a nil ctx makes
// every method a no-op, so instrumented paths run untraced for free.
// Span recording is mutex-guarded — halo fetches to different peers land
// spans concurrently.
type TraceCtx struct {
	id    uint64
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTraceCtx opens a trace context. id may be zero (stage timing without
// cross-rank attribution — the metrics-only mode).
func NewTraceCtx(id uint64) *TraceCtx {
	return &TraceCtx{id: id, start: time.Now()}
}

// ID returns the trace ID (0 when nil or untraced).
func (t *TraceCtx) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Start returns the trace's start time (zero when nil).
func (t *TraceCtx) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// StartSpan opens a named stage and returns its closer; call the closer
// when the stage ends. Usage: defer tc.StartSpan("gather")().
func (t *TraceCtx) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	s0 := time.Now()
	return func() { t.AddSpanAt(name, s0, time.Since(s0)) }
}

// AddSpanAt records a stage that started at s0 and ran for d.
func (t *TraceCtx) AddSpanAt(name string, s0 time.Time, d time.Duration) {
	if t == nil {
		return
	}
	sp := Span{Name: name, StartUs: s0.Sub(t.start).Microseconds(), DurUs: d.Microseconds()}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Merge appends other's spans, re-based onto this trace's clock — the
// coalescer uses it to copy batch-level stage timings into every member
// request's trace.
func (t *TraceCtx) Merge(other *TraceCtx) {
	if t == nil || other == nil {
		return
	}
	offset := other.start.Sub(t.start).Microseconds()
	other.mu.Lock()
	spans := append([]Span(nil), other.spans...)
	other.mu.Unlock()
	t.mu.Lock()
	for _, sp := range spans {
		sp.StartUs += offset
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *TraceCtx) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Trace is one finished request record — what the ring holds and the slow
// log emits.
type Trace struct {
	TraceID  string `json:"trace_id"`
	Role     string `json:"role"` // "frontend", "server", "halo"
	Rank     int    `json:"rank"`
	Endpoint string `json:"endpoint"`
	Vertex   int64  `json:"vertex"`
	Peer     int    `json:"peer"` // requesting rank for halo records; -1 otherwise
	Status   int    `json:"status"`
	StartNs  int64  `json:"start_unix_ns"`
	DurUs    int64  `json:"dur_us"`
	Spans    []Span `json:"spans,omitempty"`
}

// TracerConfig configures one rank's tracer.
type TracerConfig struct {
	// Role and Rank stamp every record ("frontend" uses Rank -1).
	Role string
	Rank int
	// RingSize bounds the recent-trace ring (default 256).
	RingSize int
	// SlowLog receives JSONL records for requests slower than
	// SlowThreshold; nil disables the slow log.
	SlowLog io.Writer
	// SlowThreshold gates the slow log (0 logs every finished trace —
	// useful in smokes; production sets a tail threshold).
	SlowThreshold time.Duration
	// SampleEvery emits only every Nth slow record (default 1 = all).
	SampleEvery int
}

// Tracer owns a rank's finished-trace ring and slow log. Nil-safe: a nil
// tracer disables tracing with zero cost at every call site.
type Tracer struct {
	cfg TracerConfig

	mu    sync.Mutex
	ring  []Trace
	next  int
	total int64

	logMu   sync.Mutex
	slowSeq int64
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	return &Tracer{cfg: cfg, ring: make([]Trace, 0, cfg.RingSize)}
}

// Enabled reports whether tracing is live (false for nil).
func (tr *Tracer) Enabled() bool { return tr != nil }

// Finish completes tc into a Trace record and stores it: ring always,
// slow log when the total duration crosses the threshold.
func (tr *Tracer) Finish(tc *TraceCtx, endpoint string, vertex int64, status int) {
	if tr == nil || tc == nil {
		return
	}
	d := time.Since(tc.start)
	tr.Record(Trace{
		TraceID:  FormatTraceID(tc.ID()),
		Endpoint: endpoint,
		Vertex:   vertex,
		Peer:     -1,
		Status:   status,
		StartNs:  tc.start.UnixNano(),
		DurUs:    d.Microseconds(),
		Spans:    tc.Spans(),
	})
}

// Record stores a finished trace record, stamping Role/Rank.
func (tr *Tracer) Record(rec Trace) {
	if tr == nil {
		return
	}
	rec.Role = tr.cfg.Role
	rec.Rank = tr.cfg.Rank
	tr.mu.Lock()
	if len(tr.ring) < tr.cfg.RingSize {
		tr.ring = append(tr.ring, rec)
	} else {
		tr.ring[tr.next] = rec
	}
	tr.next = (tr.next + 1) % tr.cfg.RingSize
	tr.total++
	tr.mu.Unlock()

	if tr.cfg.SlowLog != nil && time.Duration(rec.DurUs)*time.Microsecond >= tr.cfg.SlowThreshold {
		tr.logMu.Lock()
		tr.slowSeq++
		emit := tr.slowSeq%int64(tr.cfg.SampleEvery) == 0
		if emit {
			b, err := json.Marshal(rec)
			if err == nil {
				b = append(b, '\n')
				tr.cfg.SlowLog.Write(b)
			}
		}
		tr.logMu.Unlock()
	}
}

// Recent returns up to n most-recent traces, newest last.
func (tr *Tracer) Recent(n int) []Trace {
	if tr == nil || n <= 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	size := len(tr.ring)
	if n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	// Oldest-to-newest order: the ring cursor points at the oldest slot
	// once full; before that the slice itself is in insertion order.
	start := 0
	if size == tr.cfg.RingSize {
		start = tr.next
	}
	for i := size - n; i < size; i++ {
		out = append(out, tr.ring[(start+i)%size])
	}
	return out
}

// Handler serves GET /debug/trace/recent?n=64 as a JSON array. A nil
// tracer serves 404.
func (tr *Tracer) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if tr == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		n := 64
		if raw := req.URL.Query().Get("n"); raw != "" {
			if v, err := strconv.Atoi(raw); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		traces := tr.Recent(n)
		if traces == nil {
			traces = []Trace{}
		}
		json.NewEncoder(w).Encode(traces)
	}
}
