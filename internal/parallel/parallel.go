// Package parallel is the process-wide parallel runtime every kernel in the
// repository schedules onto: one persistent worker pool standing in for the
// OpenMP thread team of the paper. The paper's optimization ladder (Alg. 1–3)
// is entirely about how aggregation work is mapped onto cores; centralizing
// that mapping here gives every layer — tensor, spmm, comm, graph, train —
// the same tunable worker count (the OMP_NUM_THREADS analogue), removes
// per-call goroutine spawn from the hot paths, and makes static vs dynamic
// scheduling a one-line choice at each call site:
//
//   - For(n, grain, fn): static chunking — at most one contiguous chunk per
//     worker, schedule(static).
//   - Dynamic(n, chunk, fn): fixed-size chunks handed out from an atomic
//     work queue, schedule(dynamic) — power-law degree skew self-balances.
//
// Both are nested-call safe and deadlock-free under any worker count: the
// calling goroutine always executes work itself, and while waiting for
// stragglers it steals pending tasks from the pool, so a saturated or
// undersized pool degrades to inline execution instead of blocking.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config tunes the process-wide runtime.
type Config struct {
	// Workers is the size of the worker team, counting the submitting
	// goroutine. 1 means fully serial execution; ≤0 means GOMAXPROCS.
	Workers int
}

// pool is the worker team: workers-1 persistent goroutines plus the caller.
type pool struct {
	workers int
	tasks   chan func()   // nil when workers <= 1
	stop    chan struct{} // closed on Configure to retire this team
}

var active atomic.Pointer[pool]

func init() {
	active.Store(newPool(runtime.GOMAXPROCS(0)))
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pool{workers: workers}
	if workers > 1 {
		// The buffer bounds how many chunks can be queued ahead; submission
		// past it falls back to inline execution in the caller.
		p.tasks = make(chan func(), 8*workers)
		p.stop = make(chan struct{})
		for i := 0; i < workers-1; i++ {
			go p.run()
		}
	}
	return p
}

func (p *pool) run() {
	for {
		select {
		case t := <-p.tasks:
			t()
		case <-p.stop:
			// Drain whatever was queued before retiring so no task is
			// stranded (joiners would still steal it, but this is prompter).
			for {
				select {
				case t := <-p.tasks:
					t()
				default:
					return
				}
			}
		}
	}
}

// trySubmit hands t to an idle worker slot; it never blocks. False means the
// queue is full (or the pool is serial) and the caller should run the work
// itself.
func (p *pool) trySubmit(t func()) bool {
	if p.tasks == nil {
		return false
	}
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}

// Configure replaces the worker team. Call it once at startup (flag parsing);
// kernels already in flight on the old team finish there. Safe to call again
// — benchmarks use it to compare serial vs pooled execution. A no-op when
// the requested size matches the current team, so layered configuration
// (CLI flag plus trainer config) doesn't respawn identical workers.
func Configure(cfg Config) {
	n := cfg.Workers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if active.Load().workers == n {
		return
	}
	old := active.Swap(newPool(n))
	if old != nil && old.stop != nil {
		close(old.stop)
	}
}

// Workers reports the current team size — the value kernels use to split
// work, read once per kernel invocation instead of runtime.NumCPU per call.
func Workers() int {
	return active.Load().workers
}

// For runs fn over [0, n) with static chunking: the range is cut into at
// most Workers() contiguous chunks of at least grain elements each (the
// trailing remainder may be smaller), one per worker — the OpenMP
// schedule(static) analogue. Ranges shorter than 2*grain run serially. fn must treat its [lo, hi)
// range as exclusive property; chunk boundaries depend only on n, grain and
// the configured worker count, so disjoint-write kernels are deterministic.
// A panic in any chunk is re-raised on the calling goroutine after all
// chunks settle.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := active.Load()
	w := p.workers
	// Floor division guarantees every chunk carries at least grain elements
	// (only the trailing remainder may be smaller) and that ranges under
	// 2*grain stay serial — grain is the minimum profitable task size.
	if maxChunks := n / grain; w > maxChunks {
		w = maxChunks
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	p.dispatch(n, chunk, w, fn)
}

// Dynamic runs fn over [0, n) with dynamic chunking: fixed-size chunks are
// handed out from an atomic counter as workers free up — the OpenMP
// schedule(dynamic, chunk) analogue, the paper's Alg. 1 load-balancing fix
// for power-law destination skew. chunk ≤ 0 defaults to 64. Panic and
// determinism semantics match For.
func Dynamic(n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 64
	}
	p := active.Load()
	w := p.workers
	if maxChunks := (n + chunk - 1) / chunk; w > maxChunks {
		w = maxChunks
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	p.dispatch(n, chunk, w, fn)
}

// dispatch is the shared fork-join engine: w-1 runner tasks are offered to
// the pool, the caller runs a runner inline, and every runner pulls chunk
// offsets from one atomic dispenser until [0, n) is covered. The caller then
// joins, stealing unrelated pool tasks while it waits so nested invocations
// can never deadlock.
func (p *pool) dispatch(n, chunk, w int, fn func(lo, hi int)) {
	var (
		next    atomic.Int64 // next unclaimed offset
		pending atomic.Int64 // runners not yet finished
		panicV  atomic.Pointer[recovered]
		done    = make(chan struct{})
	)
	runner := func() {
		defer func() {
			if r := recover(); r != nil {
				panicV.CompareAndSwap(nil, &recovered{value: r, stack: stack()})
				// Claim the rest of the range so other runners stop early.
				next.Store(int64(n))
			}
			if pending.Add(-1) == 0 {
				close(done)
			}
		}()
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}

	pending.Store(1) // the caller's own runner
	for i := 0; i < w-1; i++ {
		pending.Add(1)
		if !p.trySubmit(runner) {
			pending.Add(-1)
			break // queue full: the team is saturated, caller works alone
		}
	}
	runner()

	// Help-first join: while our submitted runners are queued or running,
	// execute other pending pool tasks instead of blocking. This guarantees
	// progress when every worker is itself waiting on a nested dispatch.
	for {
		select {
		case <-done:
			if r := panicV.Load(); r != nil {
				panic(fmt.Sprintf("parallel: worker panic: %v\n%s", r.value, r.stack))
			}
			return
		case t := <-p.tasks:
			t()
		}
	}
}

// recovered carries a worker panic (and its stack) back to the caller.
type recovered struct {
	value any
	stack string
}

func stack() string {
	buf := make([]byte, 4096)
	return string(buf[:runtime.Stack(buf, false)])
}

// Group runs a set of long-lived, mutually-synchronizing goroutines — rank
// bodies that block on barriers, async exchangers — which must each own a
// dedicated goroutine and therefore cannot share the bounded worker team.
// It centralizes the spawn/join/panic-propagation idiom: the first panic
// value is re-raised verbatim from Wait after every goroutine settles, so
// callers can assert on it and tests fail cleanly rather than deadlock.
type Group struct {
	wg    sync.WaitGroup
	panic atomic.Pointer[recovered]
}

// Go runs fn on a new goroutine owned by the group.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.panic.CompareAndSwap(nil, &recovered{value: r})
			}
		}()
		fn()
	}()
}

// Wait blocks until every goroutine started with Go has returned, then
// re-raises the first panic observed, if any.
func (g *Group) Wait() {
	g.wg.Wait()
	if r := g.panic.Load(); r != nil {
		panic(r.value)
	}
}
