package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// withWorkers runs body under a temporary team size, restoring the default
// afterwards so tests don't leak configuration into each other.
func withWorkers(t *testing.T, n int, body func()) {
	t.Helper()
	Configure(Config{Workers: n})
	defer Configure(Config{})
	body()
}

func TestWorkersDefault(t *testing.T) {
	Configure(Config{})
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	Configure(Config{Workers: 3})
	defer Configure(Config{})
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after Configure(3)", got)
	}
}

// TestForMatchesSerial checks that For covers [0, n) exactly once and that a
// disjoint-write kernel produces bit-identical results to serial execution,
// across worker counts and grain sizes.
func TestForMatchesSerial(t *testing.T) {
	const n = 10007
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i)*1.5 + 1
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, grain := range []int{1, 7, 64, n + 1} {
			withWorkers(t, workers, func() {
				got := make([]float64, n)
				For(n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						got[i] = float64(i)*1.5 + 1
					}
				})
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d grain=%d: element %d = %v, want %v",
							workers, grain, i, got[i], want[i])
					}
				}
			})
		}
	}
}

func TestDynamicCoversRangeOnce(t *testing.T) {
	const n = 4999
	for _, workers := range []int{1, 2, 8} {
		for _, chunk := range []int{0, 1, 13, 512} {
			withWorkers(t, workers, func() {
				hits := make([]int32, n)
				Dynamic(n, chunk, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d chunk=%d: element %d visited %d times",
							workers, chunk, i, h)
					}
				}
			})
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	For(0, 1, func(lo, hi int) { t.Fatal("fn called for n=0") })
	Dynamic(-5, 4, func(lo, hi int) { t.Fatal("fn called for n<0") })
	calls := 0
	For(1, 100, func(lo, hi int) { calls++; _ = lo; _ = hi })
	if calls != 1 {
		t.Fatalf("For(1) ran fn %d times", calls)
	}
}

// TestPanicPropagation: a panic inside any chunk must surface on the calling
// goroutine, for both schedules, whether it fires in the caller's own chunk
// or a pool worker's.
func TestPanicPropagation(t *testing.T) {
	withWorkers(t, 4, func() {
		for _, sched := range []string{"for", "dynamic"} {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s: panic did not propagate", sched)
					}
					if !strings.Contains(r.(string), "boom") {
						t.Fatalf("%s: unexpected panic payload %q", sched, r)
					}
				}()
				body := func(lo, hi int) {
					if lo >= 256 {
						panic("boom")
					}
				}
				if sched == "for" {
					For(10000, 1, body)
				} else {
					Dynamic(10000, 64, body)
				}
			}()
		}
	})
	// The pool must stay usable after a panic.
	total := int64(0)
	For(100, 1, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
	if total != 100 {
		t.Fatalf("pool broken after panic: covered %d/100", total)
	}
}

// TestNestedCalls drives For-inside-For and Dynamic-inside-For hard enough
// to saturate every worker with joins. The help-first join must keep this
// deadlock-free and still cover every (i, j) pair exactly once.
func TestNestedCalls(t *testing.T) {
	const outer, inner = 64, 257
	withWorkers(t, 4, func() {
		var count atomic.Int64
		For(outer, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				Dynamic(inner, 16, func(jlo, jhi int) {
					count.Add(int64(jhi - jlo))
				})
			}
		})
		if got := count.Load(); got != outer*inner {
			t.Fatalf("nested coverage %d, want %d", got, outer*inner)
		}
	})
}

// TestConcurrentCallers mimics the distributed trainer: many rank goroutines
// invoking pooled kernels simultaneously.
func TestConcurrentCallers(t *testing.T) {
	withWorkers(t, 4, func() {
		var g Group
		var total atomic.Int64
		for r := 0; r < 8; r++ {
			g.Go(func() {
				for iter := 0; iter < 50; iter++ {
					For(1000, 8, func(lo, hi int) {
						total.Add(int64(hi - lo))
					})
				}
			})
		}
		g.Wait()
		if got := total.Load(); got != 8*50*1000 {
			t.Fatalf("concurrent coverage %d, want %d", got, 8*50*1000)
		}
	})
}

func TestGroupPanic(t *testing.T) {
	var g Group
	g.Go(func() {})
	g.Go(func() { panic("rank died") })
	defer func() {
		if r := recover(); r == nil || r.(string) != "rank died" {
			t.Fatalf("Group.Wait panic = %v, want %q", r, "rank died")
		}
	}()
	g.Wait()
}

func TestScratchReuse(t *testing.T) {
	var s Scratch[float32]
	buf := s.Get(128)
	if len(buf) != 128 {
		t.Fatalf("Get(128) length %d", len(buf))
	}
	for i := range buf {
		buf[i] = 7
	}
	s.Put(buf)
	z := s.GetZeroed(64)
	if len(z) != 64 {
		t.Fatalf("GetZeroed(64) length %d", len(z))
	}
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed element %d = %v", i, v)
		}
	}
	s.Put(z)
	big := s.Get(4096) // larger than anything pooled: fresh allocation
	if len(big) != 4096 {
		t.Fatalf("Get(4096) length %d", len(big))
	}
}
