package parallel

import "sync"

// Scratch[T] is a reusable slice arena for per-invocation temporaries —
// reduction buffers, packed tiles, flattened gradients. Kernels that used to
// allocate a fresh buffer every call Get one here and Put it back, so
// steady-state training epochs stop churning the allocator. Buffers are
// recycled across goroutines (sync.Pool underneath), making it the
// per-worker scratch arena of an OpenMP runtime without tying buffers to
// worker identity.
//
// The zero value is ready to use.
type Scratch[T any] struct {
	pool sync.Pool
}

// Get returns a length-n slice. Contents are arbitrary — callers that need
// zeroed memory use GetZeroed or clear it themselves.
func (s *Scratch[T]) Get(n int) []T {
	if v, _ := s.pool.Get().(*[]T); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]T, n)
}

// GetZeroed returns a length-n slice with every element set to the zero
// value of T.
func (s *Scratch[T]) GetZeroed(n int) []T {
	buf := s.Get(n)
	var zero T
	for i := range buf {
		buf[i] = zero
	}
	return buf
}

// Put recycles buf for a future Get. The caller must not touch buf after.
func (s *Scratch[T]) Put(buf []T) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	s.pool.Put(&buf)
}
