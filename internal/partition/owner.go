package partition

import "fmt"

// owner.go is the vertex-ownership view of a Partitioning that the serving
// layer shards on. Vertex-cut partitioning replicates a vertex into every
// partition holding one of its edges; for state that must live in exactly
// one place — a feature slice, a label, the authority to answer /predict —
// each vertex needs a single canonical owner. The owner is the partition of
// the vertex's root clone (Alg. 4's reduction root) for split vertices and
// its sole partition otherwise, so ownership is a pure function of the
// Partitioning: every process that builds the same partitioning (same
// graph, partitioner, seed) derives the same owner table without any
// coordination.

// Owners returns the owner partition of every source vertex, indexed by
// global vertex ID. Each vertex has exactly one owner in [0, K).
func (pt *Partitioning) Owners() []int32 {
	owners := make([]int32, pt.NumSourceVertices)
	for i := range owners {
		owners[i] = -1
	}
	// Non-split vertices: the unique partition holding them. Filling from
	// the per-part global-ID lists touches each clone once.
	for p, part := range pt.Parts {
		for _, g := range part.GlobalID {
			if owners[g] == -1 {
				owners[g] = int32(p)
			}
		}
	}
	// Split vertices: the root clone's partition overrides whatever part
	// happened to be enumerated first.
	for _, sv := range pt.Splits {
		owners[sv.Global] = sv.Clones[0].Part
	}
	return owners
}

// Owner returns the owner partition of global vertex g.
func (pt *Partitioning) Owner(g int32) (int32, error) {
	if g < 0 || int(g) >= pt.NumSourceVertices {
		return -1, fmt.Errorf("partition: vertex %d outside [0,%d)", g, pt.NumSourceVertices)
	}
	for _, sv := range pt.Splits {
		if sv.Global == g {
			return sv.Clones[0].Part, nil
		}
	}
	for p := range pt.Parts {
		if pt.LocalOf[p][g] >= 0 {
			return int32(p), nil
		}
	}
	return -1, fmt.Errorf("partition: vertex %d in no partition", g)
}

// Halo returns, in ascending global-ID order, the vertices partition p holds
// a clone of but does not own — the replicas whose authoritative state lives
// on another partition and must be fetched over the fabric when p needs it.
func (pt *Partitioning) Halo(p int) []int32 {
	if p < 0 || p >= pt.K {
		return nil
	}
	owners := pt.Owners()
	var halo []int32
	for g := 0; g < pt.NumSourceVertices; g++ {
		if pt.LocalOf[p][g] >= 0 && owners[g] != int32(p) {
			halo = append(halo, int32(g))
		}
	}
	return halo
}

// OwnedCount returns how many vertices each partition owns.
func (pt *Partitioning) OwnedCount() []int {
	counts := make([]int, pt.K)
	for _, o := range pt.Owners() {
		counts[o]++
	}
	return counts
}
