package partition

import (
	"math/rand"
	"testing"
)

// TestOwnersCoverEveryVertexExactlyOnce: the owner table assigns each
// source vertex exactly one partition in [0, K), and the owner always
// holds a clone of the vertex.
func TestOwnersCoverEveryVertexExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 150, 1100)
	for _, k := range []int{1, 2, 4, 8} {
		pt, err := Partition(g, Libra{Seed: 2}, k, 5)
		if err != nil {
			t.Fatal(err)
		}
		owners := pt.Owners()
		if len(owners) != g.NumVertices {
			t.Fatalf("k=%d: owner table covers %d of %d vertices", k, len(owners), g.NumVertices)
		}
		for v, o := range owners {
			if o < 0 || int(o) >= k {
				t.Fatalf("k=%d: vertex %d owned by %d outside [0,%d)", k, v, o, k)
			}
			if pt.LocalOf[o][v] < 0 {
				t.Fatalf("k=%d: vertex %d owned by partition %d which holds no clone of it", k, v, o)
			}
		}
	}
}

// TestOwnerIsRootCloneForSplitVertices pins the ownership rule: split
// vertices are owned by their root clone's partition (the Alg. 4 reduction
// root), non-split vertices by their sole partition.
func TestOwnerIsRootCloneForSplitVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 120, 1000)
	pt, err := Partition(g, Libra{Seed: 3}, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	owners := pt.Owners()
	split := make(map[int32]SplitVertex, len(pt.Splits))
	for _, sv := range pt.Splits {
		split[sv.Global] = sv
	}
	if len(split) == 0 {
		t.Fatal("partitioning produced no split vertices; graph too small for the test")
	}
	for v := 0; v < g.NumVertices; v++ {
		if sv, ok := split[int32(v)]; ok {
			if owners[v] != sv.Clones[0].Part {
				t.Fatalf("split vertex %d owned by %d, root clone lives in %d",
					v, owners[v], sv.Clones[0].Part)
			}
			continue
		}
		// Non-split: exactly one partition holds it, and that is the owner.
		count := 0
		for p := 0; p < pt.K; p++ {
			if pt.LocalOf[p][v] >= 0 {
				count++
				if owners[v] != int32(p) {
					t.Fatalf("non-split vertex %d owned by %d but lives in %d", v, owners[v], p)
				}
			}
		}
		if count != 1 {
			t.Fatalf("non-split vertex %d has %d clones", v, count)
		}
	}
	// Owner agrees with the single-vertex lookup.
	for _, v := range []int32{0, 5, int32(g.NumVertices - 1)} {
		o, err := pt.Owner(v)
		if err != nil {
			t.Fatal(err)
		}
		if o != owners[v] {
			t.Fatalf("Owner(%d)=%d, Owners()[%d]=%d", v, o, v, owners[v])
		}
	}
	if _, err := pt.Owner(int32(g.NumVertices)); err == nil {
		t.Fatal("out-of-range Owner lookup must error")
	}
}

// TestOwnersDeterministic: two identical partitionings derive identical
// owner tables — the property that lets every serving rank compute
// ownership independently with no coordination.
func TestOwnersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 100, 800)
	a, err := Partition(g, Libra{Seed: 4}, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Libra{Seed: 4}, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	oa, ob := a.Owners(), b.Owners()
	for v := range oa {
		if oa[v] != ob[v] {
			t.Fatalf("vertex %d: owner %d vs %d across identical partitionings", v, oa[v], ob[v])
		}
	}
}

// TestHaloIsPresentMinusOwned: a partition's halo is exactly the set of
// vertices it holds a clone of but does not own, and owned + halo = local.
func TestHaloIsPresentMinusOwned(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomGraph(rng, 130, 1200)
	pt, err := Partition(g, Libra{Seed: 6}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	owners := pt.Owners()
	counts := pt.OwnedCount()
	totalOwned := 0
	for p := 0; p < pt.K; p++ {
		halo := pt.Halo(p)
		seen := make(map[int32]bool, len(halo))
		prev := int32(-1)
		for _, v := range halo {
			if v <= prev {
				t.Fatalf("partition %d halo not in ascending order", p)
			}
			prev = v
			seen[v] = true
			if pt.LocalOf[p][v] < 0 {
				t.Fatalf("partition %d halo vertex %d has no clone there", p, v)
			}
			if owners[v] == int32(p) {
				t.Fatalf("partition %d halo contains owned vertex %d", p, v)
			}
		}
		// Every non-owned clone must appear in the halo.
		for _, gv := range pt.Parts[p].GlobalID {
			if owners[gv] != int32(p) && !seen[gv] {
				t.Fatalf("partition %d: clone of %d missing from halo", p, gv)
			}
		}
		if counts[p]+len(halo) != pt.Parts[p].NumLocal() {
			t.Fatalf("partition %d: owned %d + halo %d != local %d",
				p, counts[p], len(halo), pt.Parts[p].NumLocal())
		}
		totalOwned += counts[p]
	}
	if totalOwned != g.NumVertices {
		t.Fatalf("owned counts sum to %d, graph has %d vertices", totalOwned, g.NumVertices)
	}
	if pt.Halo(-1) != nil || pt.Halo(pt.K) != nil {
		t.Fatal("out-of-range Halo must be nil")
	}
}
