package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distgnn/internal/datasets"
	"distgnn/internal/graph"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.CSR {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	return graph.MustCSR(n, edges)
}

func TestLibraAssignsEveryEdgeOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 200, 1500)
	for _, k := range []int{1, 2, 4, 8, 70} { // 70 exercises the >64 path
		assign := Libra{Seed: 1}.Assign(g, k)
		if len(assign) != g.NumEdges {
			t.Fatalf("k=%d: %d assignments for %d edges", k, len(assign), g.NumEdges)
		}
		for i, p := range assign {
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: edge %d assigned to %d", k, i, p)
			}
		}
	}
}

func TestBuildPreservesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 100, 900)
	pt, err := Partition(g, Libra{Seed: 3}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := make([]bool, g.NumEdges)
	for _, p := range pt.Parts {
		total += p.G.NumEdges
		// Every local edge must map back to a matching global edge.
		globalEdges := g.Edges()
		for v := 0; v < p.G.NumVertices; v++ {
			nbr := p.G.InNeighbors(v)
			ids := p.G.InEdgeIDs(v)
			for i := range nbr {
				ge := globalEdges[p.GlobalEdgeID[ids[i]]]
				if ge.Src != p.GlobalID[nbr[i]] || ge.Dst != p.GlobalID[v] {
					t.Fatalf("part %d: local edge %d→%d maps to global %v", p.ID, nbr[i], v, ge)
				}
				if seen[p.GlobalEdgeID[ids[i]]] {
					t.Fatalf("edge %d appears twice", p.GlobalEdgeID[ids[i]])
				}
				seen[p.GlobalEdgeID[ids[i]]] = true
			}
		}
	}
	if total != g.NumEdges {
		t.Fatalf("edge total %d != %d", total, g.NumEdges)
	}
}

func TestBuildCoversAllVertices(t *testing.T) {
	// Include isolated vertices: 10 extra vertices with no edges.
	rng := rand.New(rand.NewSource(3))
	edges := make([]graph.Edge, 300)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(50)), Dst: int32(rng.Intn(50))}
	}
	g := graph.MustCSR(60, edges)
	pt, err := Partition(g, Libra{Seed: 3}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, 60)
	for _, p := range pt.Parts {
		for _, gv := range p.GlobalID {
			covered[gv] = true
		}
	}
	for v, ok := range covered {
		if !ok {
			t.Fatalf("vertex %d not placed in any partition", v)
		}
	}
}

func TestLocalOfConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 80, 500)
	pt, err := Partition(g, Libra{Seed: 5}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for pID, p := range pt.Parts {
		for local, global := range p.GlobalID {
			if pt.LocalOf[pID][global] != int32(local) {
				t.Fatalf("part %d: LocalOf[%d]=%d, want %d", pID, global, pt.LocalOf[pID][global], local)
			}
		}
		for global, local := range pt.LocalOf[pID] {
			if local >= 0 && int(p.GlobalID[local]) != global {
				t.Fatalf("part %d: GlobalID[%d]=%d, want %d", pID, local, p.GlobalID[local], global)
			}
		}
	}
}

func TestSplitVerticesHaveMultipleClones(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 60, 600)
	pt, err := Partition(g, Libra{Seed: 5}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Splits) == 0 {
		t.Fatal("dense random graph on 4 parts must split some vertices")
	}
	for _, sv := range pt.Splits {
		if len(sv.Clones) < 2 {
			t.Fatalf("split vertex %d has %d clones", sv.Global, len(sv.Clones))
		}
		seen := map[int32]bool{}
		for _, c := range sv.Clones {
			if seen[c.Part] {
				t.Fatalf("split vertex %d has two clones in partition %d", sv.Global, c.Part)
			}
			seen[c.Part] = true
			if pt.Parts[c.Part].GlobalID[c.Local] != sv.Global {
				t.Fatalf("clone %v of vertex %d maps to %d", c, sv.Global,
					pt.Parts[c.Part].GlobalID[c.Local])
			}
		}
	}
}

func TestReplicationFactorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 100, 800)
	for _, k := range []int{2, 4, 8} {
		pt, err := Partition(g, Libra{Seed: 1}, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		rf := pt.ReplicationFactor()
		if rf < 1 || rf > float64(k) {
			t.Fatalf("k=%d: replication factor %v out of [1,%d]", k, rf, k)
		}
	}
}

func TestLibraBeatsRandomEdgeOnReplication(t *testing.T) {
	d := datasets.MustLoad("ogbn-products-sim", 0.25)
	k := 8
	libra, err := Partition(d.G, Libra{Seed: 1}, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Partition(d.G, RandomEdge{Seed: 1}, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if libra.ReplicationFactor() >= random.ReplicationFactor() {
		t.Fatalf("libra RF %.3f must beat random RF %.3f",
			libra.ReplicationFactor(), random.ReplicationFactor())
	}
}

func TestLibraBalancesEdges(t *testing.T) {
	d := datasets.MustLoad("reddit-sim", 0.25)
	pt, err := Partition(d.G, Libra{Seed: 1}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b := pt.EdgeBalance(); b > 1.2 {
		t.Fatalf("libra edge balance %v exceeds 1.2", b)
	}
}

func TestReplicationGrowsWithPartitions(t *testing.T) {
	// Table 4's shape: replication factor increases with partition count.
	d := datasets.MustLoad("reddit-sim", 0.25)
	var prev float64
	for _, k := range []int{2, 4, 8, 16} {
		pt, err := Partition(d.G, Libra{Seed: 1}, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		rf := pt.ReplicationFactor()
		if rf < prev {
			t.Fatalf("replication factor decreased from %v to %v at k=%d", prev, rf, k)
		}
		prev = rf
	}
}

func TestClusteredGraphHasLowerReplication(t *testing.T) {
	// Proteins-sim exhibits natural clusters → lower RF than reddit-sim
	// at the same partition count (§6.3 of the paper).
	reddit := datasets.MustLoad("reddit-sim", 0.25)
	proteins := datasets.MustLoad("proteins-sim", 0.25)
	k := 8
	rp, err := Partition(reddit.G, Libra{Seed: 1}, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Partition(proteins.G, Libra{Seed: 1}, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pp.ReplicationFactor() >= rp.ReplicationFactor() {
		t.Fatalf("proteins RF %.3f must be below reddit RF %.3f",
			pp.ReplicationFactor(), rp.ReplicationFactor())
	}
}

func TestSinglePartitionDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 30, 100)
	pt, err := Partition(g, Libra{Seed: 1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Splits) != 0 {
		t.Fatal("k=1 must produce no split vertices")
	}
	if rf := pt.ReplicationFactor(); rf != 1 {
		t.Fatalf("k=1 replication factor %v", rf)
	}
	if pt.Parts[0].G.NumEdges != g.NumEdges {
		t.Fatal("k=1 must keep all edges in one part")
	}
}

func TestBuildRejectsBadAssignment(t *testing.T) {
	g := graph.MustCSR(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if _, err := Build(g, []int32{0}, 2, 1); err == nil {
		t.Fatal("expected error for short assignment")
	}
	if _, err := Build(g, []int32{0, 5}, 2, 1); err == nil {
		t.Fatal("expected error for out-of-range partition")
	}
}

func TestHashVertexColocatesDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 50, 400)
	assign := HashVertex{}.Assign(g, 4)
	byDst := map[int32]int32{}
	for i, e := range g.Edges() {
		if p, ok := byDst[e.Dst]; ok && p != assign[i] {
			t.Fatalf("destination %d edges in partitions %d and %d", e.Dst, p, assign[i])
		}
		byDst[e.Dst] = assign[i]
	}
}

func TestSplitVertexFractionInRange(t *testing.T) {
	d := datasets.MustLoad("am-sim", 0.25)
	pt, err := Partition(d.G, Libra{Seed: 1}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for p, f := range pt.SplitVertexFraction() {
		if f < 0 || f > 1 {
			t.Fatalf("part %d split fraction %v", p, f)
		}
	}
}

func TestPartitioningPropertyEdgeConservation(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(200))
		k := 1 + int(kRaw)%6
		pt, err := Partition(g, Libra{Seed: seed}, k, seed)
		if err != nil {
			return false
		}
		total := 0
		for _, p := range pt.Parts {
			total += p.G.NumEdges
		}
		return total == g.NumEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
