// Package partition implements DistGNN's graph partitioning layer (§5.1–5.2
// of the paper): the Libra least-loaded vertex-cut partitioner, simpler
// baselines for comparison, and the partition metadata the distributed
// algorithms need — per-partition local graphs with global↔local vertex
// maps, the set of split vertices, and the 1-level root/leaf communication
// trees of Alg. 4.
package partition

import (
	"fmt"
	"math/rand"

	"distgnn/internal/graph"
)

// Partitioner assigns each edge of a graph to one of k partitions.
// Vertex-cut partitioning distributes *edges*: each edge lives in exactly
// one partition while a vertex may be replicated into several.
type Partitioner interface {
	Name() string
	// Assign returns, for each edge ID of g, the partition in [0, k).
	Assign(g *graph.CSR, k int) []int32
}

// Libra is the state-of-the-art vertex-cut partitioner the paper uses
// (Xie et al., NIPS'14). Each edge is assigned greedily to the least-loaded
// partition among those already containing its endpoints, which keeps the
// replication factor low on power-law graphs while balancing edge counts.
type Libra struct {
	// Seed breaks ties deterministically.
	Seed int64
}

func (Libra) Name() string { return "libra" }

// Assign implements the greedy vertex-cut heuristic:
//
//	case both endpoints already share partitions → least-loaded shared one;
//	case endpoints live in disjoint partition sets → least-loaded of union;
//	case one endpoint placed → least-loaded of its partitions;
//	case neither placed → least-loaded partition overall.
func (l Libra) Assign(g *graph.CSR, k int) []int32 {
	if k < 1 {
		panic(fmt.Sprintf("partition: k must be ≥1, got %d", k))
	}
	edges := g.Edges()
	rng := rand.New(rand.NewSource(l.Seed))
	load := make([]int64, k)
	// present[v] is a bitset of partitions containing v; supports k ≤ 64
	// directly and falls back to map-of-sets beyond that.
	if k <= 64 {
		return libraBitset(edges, g.NumVertices, k, load, rng)
	}
	return libraSets(edges, g.NumVertices, k, load, rng)
}

func libraBitset(edges []graph.Edge, n, k int, load []int64, rng *rand.Rand) []int32 {
	present := make([]uint64, n)
	assign := make([]int32, len(edges))
	for i, e := range edges {
		pu, pv := present[e.Src], present[e.Dst]
		var candidates uint64
		switch {
		case pu&pv != 0:
			candidates = pu & pv
		case pu != 0 && pv != 0:
			candidates = pu | pv
		case pu != 0:
			candidates = pu
		case pv != 0:
			candidates = pv
		default:
			candidates = 0 // all partitions
		}
		best := leastLoaded(load, candidates, k, rng)
		assign[i] = int32(best)
		load[best]++
		present[e.Src] |= 1 << best
		present[e.Dst] |= 1 << best
	}
	return assign
}

func libraSets(edges []graph.Edge, n, k int, load []int64, rng *rand.Rand) []int32 {
	present := make([]map[int32]bool, n)
	assign := make([]int32, len(edges))
	add := func(v int32, p int32) {
		if present[v] == nil {
			present[v] = make(map[int32]bool, 2)
		}
		present[v][p] = true
	}
	for i, e := range edges {
		pu, pv := present[e.Src], present[e.Dst]
		var candidates []int32
		inter := intersect(pu, pv)
		switch {
		case len(inter) > 0:
			candidates = inter
		case len(pu) > 0 && len(pv) > 0:
			candidates = union(pu, pv)
		case len(pu) > 0:
			candidates = keys(pu)
		case len(pv) > 0:
			candidates = keys(pv)
		}
		best := leastLoadedList(load, candidates, k, rng)
		assign[i] = int32(best)
		load[best]++
		add(e.Src, int32(best))
		add(e.Dst, int32(best))
	}
	return assign
}

// leastLoaded picks the minimum-load partition among the candidate bitset
// (0 means "all partitions"), breaking ties uniformly at random so hubs
// spread across partitions instead of piling into partition 0.
func leastLoaded(load []int64, candidates uint64, k int, rng *rand.Rand) int {
	best, bestLoad, ties := -1, int64(1<<62), 0
	for p := 0; p < k; p++ {
		if candidates != 0 && candidates&(1<<p) == 0 {
			continue
		}
		switch {
		case load[p] < bestLoad:
			best, bestLoad, ties = p, load[p], 1
		case load[p] == bestLoad:
			ties++
			if rng.Intn(ties) == 0 {
				best = p
			}
		}
	}
	return best
}

func leastLoadedList(load []int64, candidates []int32, k int, rng *rand.Rand) int {
	if len(candidates) == 0 {
		return leastLoaded(load, 0, k, rng)
	}
	best, bestLoad, ties := -1, int64(1<<62), 0
	for _, p := range candidates {
		switch {
		case load[p] < bestLoad:
			best, bestLoad, ties = int(p), load[p], 1
		case load[p] == bestLoad:
			ties++
			if rng.Intn(ties) == 0 {
				best = int(p)
			}
		}
	}
	return best
}

func intersect(a, b map[int32]bool) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []int32
	for p := range a {
		if b[p] {
			out = append(out, p)
		}
	}
	return out
}

func union(a, b map[int32]bool) []int32 {
	out := keys(a)
	for p := range b {
		if !a[p] {
			out = append(out, p)
		}
	}
	return out
}

func keys(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	return out
}

// RandomEdge assigns each edge to a uniformly random partition — the
// worst-case vertex-cut baseline (maximum replication).
type RandomEdge struct{ Seed int64 }

func (RandomEdge) Name() string { return "random-edge" }

func (r RandomEdge) Assign(g *graph.CSR, k int) []int32 {
	rng := rand.New(rand.NewSource(r.Seed))
	assign := make([]int32, g.NumEdges)
	for i := range assign {
		assign[i] = int32(rng.Intn(k))
	}
	return assign
}

// HashVertex assigns each edge to hash(dst) mod k — the edge-cut-style
// baseline where every destination's in-edges are colocated (1D partition).
type HashVertex struct{}

func (HashVertex) Name() string { return "hash-vertex" }

func (HashVertex) Assign(g *graph.CSR, k int) []int32 {
	assign := make([]int32, g.NumEdges)
	for i, e := range g.Edges() {
		// Knuth multiplicative hash for a spread of contiguous IDs.
		h := uint32(e.Dst) * 2654435761
		assign[i] = int32(h % uint32(k))
	}
	return assign
}
