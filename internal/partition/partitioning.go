package partition

import (
	"fmt"
	"math/rand"

	"distgnn/internal/graph"
)

// Clone identifies one replica of a split vertex: the partition holding it
// and its local vertex ID there.
type Clone struct {
	Part  int32
	Local int32
}

// SplitVertex is an original vertex replicated into ≥2 partitions. Per
// Alg. 4, one clone is designated the root of a 1-level communication tree
// and the rest are leaves: leaves send partial aggregates to the root, the
// root reduces and broadcasts the final aggregate back.
type SplitVertex struct {
	Global int32
	Clones []Clone // Clones[0] is the root
}

// Part is one graph partition: the local subgraph plus the global↔local
// vertex mapping. Local vertex IDs are dense in [0, NumLocal).
type Part struct {
	ID       int
	GlobalID []int32    // local → global vertex ID
	G        *graph.CSR // local CSR over local IDs (in-edges, edge IDs local)
	// GlobalEdgeID maps local edge IDs back to the input graph's edge IDs
	// so per-edge features can be sliced per partition.
	GlobalEdgeID []int32
}

// NumLocal returns the number of local vertices (split + non-split).
func (p *Part) NumLocal() int { return len(p.GlobalID) }

// Partitioning is the complete output of vertex-cut partitioning: the parts,
// the split-vertex communication structure, and the global vertex_map
// (§5.2) locating every clone.
type Partitioning struct {
	K     int
	Parts []*Part
	// Splits lists every vertex with ≥2 clones, root first.
	Splits []SplitVertex
	// LocalOf[p][g] is the local ID of global vertex g in partition p, or -1.
	// Stored per partition for O(1) translation during communication setup.
	LocalOf [][]int32
	// NumSourceVertices is |V| of the input graph.
	NumSourceVertices int
}

// Build materializes a Partitioning from an edge→partition assignment.
// Every edge lands in exactly one part; a vertex becomes local to every
// part holding one of its edges. Isolated vertices (degree 0 in both
// directions) are distributed round-robin so their features/labels still
// live somewhere. Root clones are chosen at random per split vertex
// (seeded), as Alg. 4 prescribes.
func Build(g *graph.CSR, assign []int32, k int, seed int64) (*Partitioning, error) {
	if len(assign) != g.NumEdges {
		return nil, fmt.Errorf("partition: assignment covers %d edges, graph has %d", len(assign), g.NumEdges)
	}
	edges := g.Edges()
	localOf := make([][]int32, k)
	for p := 0; p < k; p++ {
		localOf[p] = make([]int32, g.NumVertices)
		for v := range localOf[p] {
			localOf[p][v] = -1
		}
	}
	parts := make([]*Part, k)
	for p := 0; p < k; p++ {
		parts[p] = &Part{ID: p}
	}
	intern := func(p int32, v int32) int32 {
		if localOf[p][v] >= 0 {
			return localOf[p][v]
		}
		id := int32(len(parts[p].GlobalID))
		parts[p].GlobalID = append(parts[p].GlobalID, v)
		localOf[p][v] = id
		return id
	}

	// First pass: intern endpoints and bucket edges per partition.
	type localEdge struct {
		e        graph.Edge
		globalID int32
	}
	perPart := make([][]localEdge, k)
	for eid, e := range edges {
		p := assign[eid]
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("partition: edge %d assigned to invalid partition %d", eid, p)
		}
		ls := intern(p, e.Src)
		ld := intern(p, e.Dst)
		perPart[p] = append(perPart[p], localEdge{
			e:        graph.Edge{Src: ls, Dst: ld},
			globalID: int32(eid),
		})
	}

	// Isolated vertices: round-robin.
	touched := make([]bool, g.NumVertices)
	for _, e := range edges {
		touched[e.Src] = true
		touched[e.Dst] = true
	}
	next := 0
	for v := 0; v < g.NumVertices; v++ {
		if !touched[v] {
			intern(int32(next%k), int32(v))
			next++
		}
	}

	// Build local CSRs.
	for p := 0; p < k; p++ {
		les := perPart[p]
		localEdges := make([]graph.Edge, len(les))
		parts[p].GlobalEdgeID = make([]int32, len(les))
		for i, le := range les {
			localEdges[i] = le.e
			parts[p].GlobalEdgeID[i] = le.globalID
		}
		lg, err := graph.NewCSR(parts[p].NumLocal(), localEdges)
		if err != nil {
			return nil, err
		}
		parts[p].G = lg
	}

	// Split-vertex inventory with random root selection.
	rng := rand.New(rand.NewSource(seed))
	var splits []SplitVertex
	for v := 0; v < g.NumVertices; v++ {
		var clones []Clone
		for p := 0; p < k; p++ {
			if l := localOf[p][v]; l >= 0 {
				clones = append(clones, Clone{Part: int32(p), Local: l})
			}
		}
		if len(clones) >= 2 {
			root := rng.Intn(len(clones))
			clones[0], clones[root] = clones[root], clones[0]
			splits = append(splits, SplitVertex{Global: int32(v), Clones: clones})
		}
	}

	return &Partitioning{
		K:                 k,
		Parts:             parts,
		Splits:            splits,
		LocalOf:           localOf,
		NumSourceVertices: g.NumVertices,
	}, nil
}

// Partition runs a Partitioner end to end and builds the Partitioning.
func Partition(g *graph.CSR, p Partitioner, k int, seed int64) (*Partitioning, error) {
	return Build(g, p.Assign(g, k), k, seed)
}

// ReplicationFactor is Table 4's metric: the average number of clones per
// original vertex that appears in at least one partition.
func (pt *Partitioning) ReplicationFactor() float64 {
	totalCopies := 0
	for _, p := range pt.Parts {
		totalCopies += p.NumLocal()
	}
	distinct := make(map[int32]bool)
	for _, p := range pt.Parts {
		for _, g := range p.GlobalID {
			distinct[g] = true
		}
	}
	if len(distinct) == 0 {
		return 0
	}
	return float64(totalCopies) / float64(len(distinct))
}

// EdgeBalance returns (maxEdges / meanEdges) across parts — 1.0 is perfect
// balance. The paper uses uniform edge distribution as its load metric.
func (pt *Partitioning) EdgeBalance() float64 {
	maxE, total := 0, 0
	for _, p := range pt.Parts {
		total += p.G.NumEdges
		if p.G.NumEdges > maxE {
			maxE = p.G.NumEdges
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(pt.K)
	return float64(maxE) / mean
}

// SplitVertexFraction returns, per partition, the fraction of its local
// vertices that are split vertices (Table 6's "Split-vertices/partition").
func (pt *Partitioning) SplitVertexFraction() []float64 {
	splitCount := make([]int, pt.K)
	for _, sv := range pt.Splits {
		for _, c := range sv.Clones {
			splitCount[c.Part]++
		}
	}
	out := make([]float64, pt.K)
	for p, part := range pt.Parts {
		if part.NumLocal() > 0 {
			out[p] = float64(splitCount[p]) / float64(part.NumLocal())
		}
	}
	return out
}
