package quant

import (
	"math"
	"math/rand"
	"testing"
)

// halfULP returns the round-to-nearest error bound for a value rounded to a
// format with the given explicit mantissa bits and minimum normal exponent:
// half a ULP at the value's binade for normals, half the subnormal step
// below the normal range.
func halfULP(v float64, mantBits, minExp int) float64 {
	e := math.Ilogb(v)
	if e < minExp {
		e = minExp
	}
	return math.Ldexp(1, e-mantBits-1)
}

// bf16 has 7 explicit mantissa bits and float32's exponent range; fp16 has
// 10 and normals down to 2^-14.
const (
	bf16Mant, bf16MinExp = 7, -126
	fp16Mant, fp16MinExp = 10, -14
	bf16Max              = 3.3895313892515355e38 // 2^127 × (2 − 2⁻⁷)
	fp16Max              = 65504
)

func checkRoundTrip(t *testing.T, bits uint32, enc func(float32) uint16,
	dec func(uint16) float32, mantBits, minExp int, max float64) {
	t.Helper()
	v := math.Float32frombits(bits)
	h := enc(v)
	got := dec(h)
	switch {
	case math.IsNaN(float64(v)):
		if !math.IsNaN(float64(got)) {
			t.Fatalf("NaN %#x must round-trip to NaN, got %v", bits, got)
		}
		return
	case math.IsInf(float64(v), 0):
		if got != v {
			t.Fatalf("Inf %v must round-trip exactly, got %v", v, got)
		}
		return
	}
	if math.IsNaN(float64(got)) {
		t.Fatalf("finite %v round-tripped to NaN", v)
	}
	if math.Signbit(float64(got)) != math.Signbit(float64(v)) {
		t.Fatalf("%v: sign flipped to %v", v, got)
	}
	if math.IsInf(float64(got), 0) {
		// Overflow to Inf is only legal above the format's max finite value.
		if math.Abs(float64(v)) <= max {
			t.Fatalf("%v within range overflowed to %v", v, got)
		}
		return
	}
	// Round-to-nearest: error bounded by half a ULP of the target format
	// (absolute half-step in the subnormal range).
	if err := math.Abs(float64(got) - float64(v)); err > halfULP(float64(v), mantBits, minExp) {
		t.Fatalf("%v → %v: error %v exceeds half ULP %v",
			v, got, err, halfULP(float64(v), mantBits, minExp))
	}
	// Decoded values are exactly representable: re-encoding must be stable.
	if h2 := enc(got); dec(h2) != got {
		t.Fatalf("%v: decode∘encode not idempotent (%v → %v)", v, got, dec(h2))
	}
}

func fuzzSeeds(f *testing.F) {
	for _, bits := range []uint32{
		0, 0x80000000, // ±0
		math.Float32bits(1), math.Float32bits(-1.5), math.Float32bits(3.14159),
		math.Float32bits(65504), math.Float32bits(65520), // fp16 max / first overflow
		math.Float32bits(6.1e-5), math.Float32bits(5.96e-8), // fp16 subnormals
		math.Float32bits(1e-40), // float32 subnormal
		0x7F800000, 0xFF800000,  // ±Inf
		0x7FC00001, 0x7F800001, // quiet/signalling NaN
		0x7F7FFFFF, // MaxFloat32
		math.Float32bits(float32(math.Pi) * 1e30), // large normal
	} {
		f.Add(bits)
	}
}

func FuzzBF16RoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, bits uint32) {
		checkRoundTrip(t, bits, BF16Encode, BF16Decode, bf16Mant, bf16MinExp, bf16Max)
	})
}

func FuzzFP16RoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, bits uint32) {
		checkRoundTrip(t, bits, FP16Encode, FP16Decode, fp16Mant, fp16MinExp, fp16Max)
	})
}

// TestRoundTripULPBoundRandomSweep drives the same half-ULP invariant over
// a broad random sweep of raw bit patterns (uniform over all float32s, so
// NaNs, infinities and subnormals all appear), independent of the fuzzer.
func TestRoundTripULPBoundRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		bits := rng.Uint32()
		checkRoundTrip(t, bits, BF16Encode, BF16Decode, bf16Mant, bf16MinExp, bf16Max)
		checkRoundTrip(t, bits, FP16Encode, FP16Decode, fp16Mant, fp16MinExp, fp16Max)
	}
}

// TestPackUnpackInverseOnRandomBuffers: Unpack∘Pack must equal RoundSlice
// bitwise on arbitrary buffers — the property that lets the nonblocking
// request path carry 16-bit wire payloads while the blocking path rounds in
// place, with both observing identical values.
func TestPackUnpackInverseOnRandomBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []Precision{BF16, FP16} {
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(500)
			src := make([]float32, n)
			for i := range src {
				switch rng.Intn(10) {
				case 0:
					src[i] = float32(math.Inf(1 - 2*rng.Intn(2)))
				case 1:
					src[i] = float32(math.NaN())
				case 2:
					src[i] = math.Float32frombits(rng.Uint32()) // arbitrary bits
				case 3:
					src[i] = float32(math.Ldexp(rng.Float64(), -140)) // subnormal
				default:
					src[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5)))
				}
			}
			wire := p.Pack(nil, src)
			if len(wire) != n {
				t.Fatalf("%v: packed %d words from %d elements", p, len(wire), n)
			}
			got := p.Unpack(nil, wire)
			want := p.RoundSlice(append([]float32(nil), src...))
			for i := range want {
				gBits := math.Float32bits(got[i])
				wBits := math.Float32bits(want[i])
				wNaN := math.IsNaN(float64(want[i]))
				if wNaN != math.IsNaN(float64(got[i])) || (!wNaN && gBits != wBits) {
					t.Fatalf("%v: element %d: unpack %v (%#x) vs RoundSlice %v (%#x)",
						p, i, got[i], gBits, want[i], wBits)
				}
			}
		}
	}
	// FP32 has no packed form: Pack signals it with nil.
	if FP32.Pack(nil, []float32{1, 2}) != nil {
		t.Fatal("FP32 Pack must return nil")
	}
}

// TestPackAppendsToDst pins the append contract both directions use to
// reuse staging buffers.
func TestPackAppendsToDst(t *testing.T) {
	wire := BF16.Pack(make([]uint16, 0, 8), []float32{1, 2})
	wire = BF16.Pack(wire, []float32{3})
	if len(wire) != 3 {
		t.Fatalf("packed length %d, want 3", len(wire))
	}
	vals := BF16.Unpack(nil, wire)
	if vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("append semantics broken: %v", vals)
	}
}

// FuzzBF16CodeIdempotent: every bf16 code is a fixed point of
// encode∘decode — decoding a 16-bit word and re-encoding it must hand back
// the same word (NaN codes may renormalize but must stay NaN). This is the
// property that makes bf16 feature storage stable: re-rounding an
// already-rounded matrix is the identity, so a slab can be rebuilt from
// its own decoded values without drift.
func FuzzBF16CodeIdempotent(f *testing.F) {
	for _, h := range []uint16{
		0, 0x8000, // ±0
		0x3F80, 0xBFC0, // ±normals
		0x0001, 0x8001, // smallest subnormals
		0x7F7F, 0xFF7F, // ±max finite
		0x7F80, 0xFF80, // ±Inf
		0x7FC0, 0x7F81, // NaNs
	} {
		f.Add(h)
	}
	f.Fuzz(func(t *testing.T, h uint16) {
		v := BF16Decode(h)
		h2 := BF16Encode(v)
		if math.IsNaN(float64(v)) {
			if !math.IsNaN(float64(BF16Decode(h2))) {
				t.Fatalf("NaN code %#04x re-encoded to non-NaN %#04x", h, h2)
			}
			return
		}
		if h2 != h {
			t.Fatalf("code %#04x (%v) re-encoded to %#04x: encode∘decode not the identity", h, v, h2)
		}
	})
}

// checkBF16RNE verifies BF16Encode against an independent round-to-nearest-
// even reference built from the two bracketing bf16 codes: truncation
// toward zero and its successor away from zero. The encoder must pick the
// nearer value, and break exact ties toward the code with an even (clear)
// low mantissa bit. The reference shares no arithmetic with the encoder's
// add-rounding-bias implementation.
func checkBF16RNE(t *testing.T, bits uint32) {
	t.Helper()
	v := math.Float32frombits(bits)
	if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		return // covered by FuzzBF16RoundTrip
	}
	h := BF16Encode(v)
	lo := uint16(bits >> 16)
	if uint32(lo)<<16 == bits {
		if h != lo {
			t.Fatalf("exactly representable %v must encode to itself: got %#04x want %#04x", v, h, lo)
		}
		return
	}
	hi := lo + 1
	val := func(c uint16) float64 {
		d := BF16Decode(c)
		if math.IsInf(float64(d), 0) {
			// The rounding boundary above the max finite bf16 is 2^128.
			return math.Copysign(math.Ldexp(1, 128), float64(d))
		}
		return float64(d)
	}
	dLo := math.Abs(float64(v) - val(lo))
	dHi := math.Abs(val(hi) - float64(v))
	want := lo
	switch {
	case dHi < dLo:
		want = hi
	case dLo < dHi:
		want = lo
	default: // exact tie: even mantissa wins, and hi = lo+1 flips the low bit
		if lo&1 == 1 {
			want = hi
		}
	}
	if h != want {
		t.Fatalf("%v (bits %#08x): encoded %#04x, RNE reference %#04x (bracket %v / %v)",
			v, bits, h, want, val(lo), val(hi))
	}
}

// FuzzBF16RoundToNearestEven fuzzes the RNE property over raw float32 bit
// patterns.
func FuzzBF16RoundToNearestEven(f *testing.F) {
	fuzzSeeds(f)
	// Halfway patterns: mantissa tail exactly 0x8000 above even and odd
	// truncations — the tie-to-even cases.
	f.Add(uint32(0x3F808000))
	f.Add(uint32(0x3F818000))
	f.Add(uint32(0xBF818000))
	f.Fuzz(func(t *testing.T, bits uint32) { checkBF16RNE(t, bits) })
}

// TestBF16RNERandomSweep drives the RNE reference over a uniform random
// sweep of bit patterns so the property also runs under plain `go test`.
func TestBF16RNERandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200000; i++ {
		checkBF16RNE(t, rng.Uint32())
	}
	// And the code-idempotency companion over every one of the 65536 codes
	// — exhaustive, cheap, and fuzzer-independent.
	for c := 0; c <= 0xFFFF; c++ {
		h := uint16(c)
		v := BF16Decode(h)
		h2 := BF16Encode(v)
		if math.IsNaN(float64(v)) {
			if !math.IsNaN(float64(BF16Decode(h2))) {
				t.Fatalf("NaN code %#04x re-encoded to non-NaN %#04x", h, h2)
			}
			continue
		}
		if h2 != h {
			t.Fatalf("code %#04x (%v) re-encoded to %#04x", h, v, h2)
		}
	}
}
