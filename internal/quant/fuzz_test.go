package quant

import (
	"math"
	"math/rand"
	"testing"
)

// halfULP returns the round-to-nearest error bound for a value rounded to a
// format with the given explicit mantissa bits and minimum normal exponent:
// half a ULP at the value's binade for normals, half the subnormal step
// below the normal range.
func halfULP(v float64, mantBits, minExp int) float64 {
	e := math.Ilogb(v)
	if e < minExp {
		e = minExp
	}
	return math.Ldexp(1, e-mantBits-1)
}

// bf16 has 7 explicit mantissa bits and float32's exponent range; fp16 has
// 10 and normals down to 2^-14.
const (
	bf16Mant, bf16MinExp = 7, -126
	fp16Mant, fp16MinExp = 10, -14
	bf16Max              = 3.3895313892515355e38 // 2^127 × (2 − 2⁻⁷)
	fp16Max              = 65504
)

func checkRoundTrip(t *testing.T, bits uint32, enc func(float32) uint16,
	dec func(uint16) float32, mantBits, minExp int, max float64) {
	t.Helper()
	v := math.Float32frombits(bits)
	h := enc(v)
	got := dec(h)
	switch {
	case math.IsNaN(float64(v)):
		if !math.IsNaN(float64(got)) {
			t.Fatalf("NaN %#x must round-trip to NaN, got %v", bits, got)
		}
		return
	case math.IsInf(float64(v), 0):
		if got != v {
			t.Fatalf("Inf %v must round-trip exactly, got %v", v, got)
		}
		return
	}
	if math.IsNaN(float64(got)) {
		t.Fatalf("finite %v round-tripped to NaN", v)
	}
	if math.Signbit(float64(got)) != math.Signbit(float64(v)) {
		t.Fatalf("%v: sign flipped to %v", v, got)
	}
	if math.IsInf(float64(got), 0) {
		// Overflow to Inf is only legal above the format's max finite value.
		if math.Abs(float64(v)) <= max {
			t.Fatalf("%v within range overflowed to %v", v, got)
		}
		return
	}
	// Round-to-nearest: error bounded by half a ULP of the target format
	// (absolute half-step in the subnormal range).
	if err := math.Abs(float64(got) - float64(v)); err > halfULP(float64(v), mantBits, minExp) {
		t.Fatalf("%v → %v: error %v exceeds half ULP %v",
			v, got, err, halfULP(float64(v), mantBits, minExp))
	}
	// Decoded values are exactly representable: re-encoding must be stable.
	if h2 := enc(got); dec(h2) != got {
		t.Fatalf("%v: decode∘encode not idempotent (%v → %v)", v, got, dec(h2))
	}
}

func fuzzSeeds(f *testing.F) {
	for _, bits := range []uint32{
		0, 0x80000000, // ±0
		math.Float32bits(1), math.Float32bits(-1.5), math.Float32bits(3.14159),
		math.Float32bits(65504), math.Float32bits(65520), // fp16 max / first overflow
		math.Float32bits(6.1e-5), math.Float32bits(5.96e-8), // fp16 subnormals
		math.Float32bits(1e-40), // float32 subnormal
		0x7F800000, 0xFF800000,  // ±Inf
		0x7FC00001, 0x7F800001, // quiet/signalling NaN
		0x7F7FFFFF, // MaxFloat32
		math.Float32bits(float32(math.Pi) * 1e30), // large normal
	} {
		f.Add(bits)
	}
}

func FuzzBF16RoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, bits uint32) {
		checkRoundTrip(t, bits, BF16Encode, BF16Decode, bf16Mant, bf16MinExp, bf16Max)
	})
}

func FuzzFP16RoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, bits uint32) {
		checkRoundTrip(t, bits, FP16Encode, FP16Decode, fp16Mant, fp16MinExp, fp16Max)
	})
}

// TestRoundTripULPBoundRandomSweep drives the same half-ULP invariant over
// a broad random sweep of raw bit patterns (uniform over all float32s, so
// NaNs, infinities and subnormals all appear), independent of the fuzzer.
func TestRoundTripULPBoundRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		bits := rng.Uint32()
		checkRoundTrip(t, bits, BF16Encode, BF16Decode, bf16Mant, bf16MinExp, bf16Max)
		checkRoundTrip(t, bits, FP16Encode, FP16Decode, fp16Mant, fp16MinExp, fp16Max)
	}
}

// TestPackUnpackInverseOnRandomBuffers: Unpack∘Pack must equal RoundSlice
// bitwise on arbitrary buffers — the property that lets the nonblocking
// request path carry 16-bit wire payloads while the blocking path rounds in
// place, with both observing identical values.
func TestPackUnpackInverseOnRandomBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []Precision{BF16, FP16} {
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(500)
			src := make([]float32, n)
			for i := range src {
				switch rng.Intn(10) {
				case 0:
					src[i] = float32(math.Inf(1 - 2*rng.Intn(2)))
				case 1:
					src[i] = float32(math.NaN())
				case 2:
					src[i] = math.Float32frombits(rng.Uint32()) // arbitrary bits
				case 3:
					src[i] = float32(math.Ldexp(rng.Float64(), -140)) // subnormal
				default:
					src[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5)))
				}
			}
			wire := p.Pack(nil, src)
			if len(wire) != n {
				t.Fatalf("%v: packed %d words from %d elements", p, len(wire), n)
			}
			got := p.Unpack(nil, wire)
			want := p.RoundSlice(append([]float32(nil), src...))
			for i := range want {
				gBits := math.Float32bits(got[i])
				wBits := math.Float32bits(want[i])
				wNaN := math.IsNaN(float64(want[i]))
				if wNaN != math.IsNaN(float64(got[i])) || (!wNaN && gBits != wBits) {
					t.Fatalf("%v: element %d: unpack %v (%#x) vs RoundSlice %v (%#x)",
						p, i, got[i], gBits, want[i], wBits)
				}
			}
		}
	}
	// FP32 has no packed form: Pack signals it with nil.
	if FP32.Pack(nil, []float32{1, 2}) != nil {
		t.Fatal("FP32 Pack must return nil")
	}
}

// TestPackAppendsToDst pins the append contract both directions use to
// reuse staging buffers.
func TestPackAppendsToDst(t *testing.T) {
	wire := BF16.Pack(make([]uint16, 0, 8), []float32{1, 2})
	wire = BF16.Pack(wire, []float32{3})
	if len(wire) != 3 {
		t.Fatalf("packed length %d, want 3", len(wire))
	}
	vals := BF16.Unpack(nil, wire)
	if vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("append semantics broken: %v", vals)
	}
}
