// Package quant implements the low-precision wire formats the paper's §7
// names as future work for cutting DistGNN's communication volume: BF16
// (bfloat16) and FP16 (IEEE half). Partial aggregates are rounded through
// the 16-bit format before they cross the fabric, halving the bytes
// moved; the distributed trainer exposes this via
// train.DistConfig.CommPrecision and the ablation harness measures the
// accuracy impact. On the in-process fabric the packed words halve the
// *accounted* volume; on the TCP transport they are the literal bytes on
// the wire (comm's frame codec ships Pack's output and the receiver runs
// Unpack), so the fuzz/property tests here are guarding a real wire
// format.
package quant

import "math"

// Precision selects a wire format for communicated float32 buffers.
type Precision uint8

const (
	// FP32 is the identity format (no compression).
	FP32 Precision = iota
	// BF16 truncates float32 to its top 16 bits with round-to-nearest-even:
	// full float32 exponent range, 8 mantissa bits.
	BF16
	// FP16 is IEEE 754 binary16: 5 exponent bits, 11 mantissa bits, with
	// overflow to ±Inf and gradual underflow to subnormals.
	FP16
)

func (p Precision) String() string {
	switch p {
	case BF16:
		return "bf16"
	case FP16:
		return "fp16"
	default:
		return "fp32"
	}
}

// Bytes returns the wire size of one element.
func (p Precision) Bytes() int {
	if p == FP32 {
		return 4
	}
	return 2
}

// RoundSlice rounds every element of buf through the wire format in place
// and returns buf — the receiver-side value after an encode/decode round
// trip. FP32 is a no-op.
func (p Precision) RoundSlice(buf []float32) []float32 {
	switch p {
	case BF16:
		for i, v := range buf {
			buf[i] = BF16Decode(BF16Encode(v))
		}
	case FP16:
		for i, v := range buf {
			buf[i] = FP16Decode(FP16Encode(v))
		}
	}
	return buf
}

// Pack encodes src into 16-bit wire words appended to dst. For FP32 it
// returns nil: the wire carries the raw float32 buffer and no packing step
// exists. The nonblocking comm request path packs at post time and unpacks
// at completion, keeping the conversion off the sender's critical path.
func (p Precision) Pack(dst []uint16, src []float32) []uint16 {
	switch p {
	case BF16:
		for _, v := range src {
			dst = append(dst, BF16Encode(v))
		}
	case FP16:
		for _, v := range src {
			dst = append(dst, FP16Encode(v))
		}
	default:
		return nil
	}
	return dst
}

// Unpack decodes wire words appended to dst — the exact inverse of the
// decode half of Pack: Unpack(nil, Pack(nil, x))[i] is bitwise equal to
// RoundSlice(x)[i] for every finite and non-finite input. Panics for FP32,
// which has no packed representation.
func (p Precision) Unpack(dst []float32, wire []uint16) []float32 {
	switch p {
	case BF16:
		for _, h := range wire {
			dst = append(dst, BF16Decode(h))
		}
	case FP16:
		for _, h := range wire {
			dst = append(dst, FP16Decode(h))
		}
	default:
		panic("quant: FP32 has no packed wire format")
	}
	return dst
}

// BF16Encode rounds a float32 to bfloat16 (round-to-nearest-even).
func BF16Encode(v float32) uint16 {
	bits := math.Float32bits(v)
	if bits&0x7FFFFFFF > 0x7F800000 { // NaN: preserve quietly
		return uint16(bits>>16) | 0x0040
	}
	// Round to nearest even on the truncated 16 bits.
	rounding := uint32(0x7FFF) + (bits>>16)&1
	return uint16((bits + rounding) >> 16)
}

// BF16Decode expands a bfloat16 back to float32.
func BF16Decode(b uint16) float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// FP16Encode converts a float32 to IEEE binary16 with round-to-nearest-even,
// overflow to ±Inf, and gradual underflow to subnormals.
func FP16Encode(v float32) uint16 {
	bits := math.Float32bits(v)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23)&0xFF - 127
	mant := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			return sign | 0x7E00 // quiet NaN
		}
		return sign | 0x7C00
	case exp > 15: // overflow
		return sign | 0x7C00
	case exp >= -14: // normal range
		// 10-bit mantissa; round to nearest even on the dropped 13 bits.
		m := mant >> 13
		round := mant & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && m&1 == 1) {
			m++
		}
		e := uint32(exp+15)<<10 + m // mantissa carry may bump the exponent
		return sign | uint16(e)
	case exp >= -25: // subnormal range
		full := mant | 0x800000 // implicit leading 1
		// Subnormal mantissa m satisfies value = m × 2^−24, i.e.
		// m = 1.mant × 2^(exp+24) = full >> (−exp − 1), rounded to nearest
		// even on the dropped bits. exp = −25 reaches here too: values above
		// 2^−25 round up to the minimum subnormal, 2^−25 itself ties to
		// even (zero).
		s := uint32(-exp) - 1
		m := full >> s
		rem := full & ((1 << s) - 1)
		half := uint32(1) << (s - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return sign | uint16(m)
	default: // below half the minimum subnormal: underflow to zero
		return sign
	}
}

// FP16Decode expands an IEEE binary16 to float32.
func FP16Decode(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0x1F: // Inf/NaN
		return math.Float32frombits(sign | 0x7F800000 | mant<<13)
	case exp == 0: // zero or subnormal
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Normalize the subnormal.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}
