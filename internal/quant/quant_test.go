package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBF16RoundTripRelativeError(t *testing.T) {
	// BF16 has 8 mantissa bits: relative error ≤ 2^-8.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6)))
		got := BF16Decode(BF16Encode(v))
		if v == 0 {
			continue
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel > 1.0/256 {
			t.Fatalf("bf16 %v → %v: rel error %v", v, got, rel)
		}
	}
}

func TestFP16RoundTripRelativeError(t *testing.T) {
	// FP16 has 10 mantissa bits in the normal range: rel error ≤ 2^-10.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		v := float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4)))
		if math.Abs(float64(v)) < 6.2e-5 || math.Abs(float64(v)) > 65000 {
			continue // outside normal fp16 range
		}
		got := FP16Decode(FP16Encode(v))
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel > 1.0/1024 {
			t.Fatalf("fp16 %v → %v: rel error %v", v, got, rel)
		}
	}
}

func TestBF16SpecialValues(t *testing.T) {
	cases := []float32{0, float32(math.Copysign(0, -1)), 1, -1, 0.5, 65504}
	for _, v := range cases {
		got := BF16Decode(BF16Encode(v))
		if v == 0 {
			if got != 0 {
				t.Fatalf("bf16 zero → %v", got)
			}
			continue
		}
		if math.Abs(float64(got-v))/math.Abs(float64(v)) > 1.0/256 {
			t.Fatalf("bf16 %v → %v", v, got)
		}
	}
	inf := float32(math.Inf(1))
	if BF16Decode(BF16Encode(inf)) != inf {
		t.Fatal("bf16 must preserve +Inf")
	}
	if !math.IsNaN(float64(BF16Decode(BF16Encode(float32(math.NaN()))))) {
		t.Fatal("bf16 must preserve NaN")
	}
}

func TestFP16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if FP16Decode(FP16Encode(inf)) != inf {
		t.Fatal("fp16 must preserve +Inf")
	}
	if FP16Decode(FP16Encode(-inf)) != -inf {
		t.Fatal("fp16 must preserve -Inf")
	}
	if !math.IsNaN(float64(FP16Decode(FP16Encode(float32(math.NaN()))))) {
		t.Fatal("fp16 must preserve NaN")
	}
	if FP16Decode(FP16Encode(0)) != 0 {
		t.Fatal("fp16 must preserve zero")
	}
	// Overflow saturates to Inf.
	if FP16Decode(FP16Encode(1e6)) != inf {
		t.Fatalf("fp16 1e6 must overflow to Inf, got %v", FP16Decode(FP16Encode(1e6)))
	}
	// Tiny values underflow to zero.
	if got := FP16Decode(FP16Encode(1e-10)); got != 0 {
		t.Fatalf("fp16 1e-10 must underflow, got %v", got)
	}
}

func TestFP16Subnormals(t *testing.T) {
	// 2^-24 is the smallest positive fp16 subnormal.
	small := float32(math.Ldexp(1, -24))
	got := FP16Decode(FP16Encode(small))
	if got != small {
		t.Fatalf("fp16 min subnormal %v → %v", small, got)
	}
	// A value between subnormal steps rounds to a nearby subnormal.
	v := float32(3.1e-7)
	got = FP16Decode(FP16Encode(v))
	if got == 0 {
		t.Fatal("fp16 subnormal collapsed to zero")
	}
	if math.Abs(float64(got-v))/float64(v) > 0.2 {
		t.Fatalf("fp16 subnormal %v → %v too lossy", v, got)
	}
}

func TestFP16ExactValuesRoundTrip(t *testing.T) {
	// Values exactly representable in fp16 must round trip bit-exactly.
	for _, v := range []float32{1, -2, 0.5, 0.25, 1.5, 3.140625, 65504} {
		if got := FP16Decode(FP16Encode(v)); got != v {
			t.Fatalf("fp16 exact %v → %v", v, got)
		}
	}
}

func TestFP16MonotoneProperty(t *testing.T) {
	// Rounding must preserve ordering (weak monotonicity).
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		clamp := func(x float32) float32 {
			if x > 60000 {
				return 60000
			}
			if x < -60000 {
				return -60000
			}
			return x
		}
		a, b = clamp(a), clamp(b)
		if a > b {
			a, b = b, a
		}
		ra := FP16Decode(FP16Encode(a))
		rb := FP16Decode(FP16Encode(b))
		return ra <= rb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundSlice(t *testing.T) {
	orig := []float32{1.0001, -2.5, 3.14159, 0}
	buf := append([]float32(nil), orig...)
	FP32.RoundSlice(buf)
	for i := range buf {
		if buf[i] != orig[i] {
			t.Fatal("fp32 must be identity")
		}
	}
	BF16.RoundSlice(buf)
	// 1.0001 is not representable in bf16; must change but stay close.
	if buf[0] == orig[0] {
		t.Fatal("bf16 rounding had no effect")
	}
	if math.Abs(float64(buf[0]-orig[0])) > 0.01 {
		t.Fatalf("bf16 too lossy: %v", buf[0])
	}
}

func TestPrecisionMetadata(t *testing.T) {
	if FP32.Bytes() != 4 || BF16.Bytes() != 2 || FP16.Bytes() != 2 {
		t.Fatal("wire sizes wrong")
	}
	if FP32.String() != "fp32" || BF16.String() != "bf16" || FP16.String() != "fp16" {
		t.Fatal("names wrong")
	}
}

func TestBF16MatchesTruncationWithinOneULP(t *testing.T) {
	// Property: the bf16 value's top bits equal the float32's top bits up
	// to the rounding increment.
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		enc := BF16Encode(v)
		trunc := uint16(math.Float32bits(v) >> 16)
		diff := int32(enc) - int32(trunc)
		return diff == 0 || diff == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
