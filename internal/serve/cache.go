package serve

import "distgnn/internal/featstore"

// The serving cache is the feature-sourcing plane's LRU: the implementation
// lives in internal/featstore (shared with the sharded sampled trainer),
// and serve aliases it so existing call sites — and the /stats JSON schema
// the golden test pins — are untouched.

// Cache is the concurrency-safe byte-budgeted LRU used for gathered
// features, embeddings, and remote halo rows. See featstore.Cache.
type Cache[K comparable, V any] = featstore.Cache[K, V]

// CacheStats is a point-in-time snapshot of one cache's counters, surfaced
// verbatim in /stats. See featstore.CacheStats.
type CacheStats = featstore.CacheStats

// cacheEntryOverhead mirrors featstore's per-entry bookkeeping charge for
// budget math in this package and its tests.
const cacheEntryOverhead = featstore.CacheEntryOverhead

// NewCache builds a sharded cache with a total byte budget split evenly
// across shards. A non-positive budget returns nil — the disabled cache.
// shards ≤ 0 selects the default shard count.
func NewCache[K comparable, V any](capacityBytes int64, shards int) *Cache[K, V] {
	return featstore.NewCache[K, V](capacityBytes, shards)
}
