package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheDisabledIsNil(t *testing.T) {
	c := NewCache[int32, []float32](0, 0)
	if c != nil {
		t.Fatal("zero budget must return the disabled (nil) cache")
	}
	// nil-receiver paths must be safe no-ops.
	if _, ok := c.Get(1); ok {
		t.Fatal("disabled cache cannot hit")
	}
	c.Put(1, []float32{1}, 4)
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("disabled stats %+v", st)
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache[int32, string](1<<16, 4)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(1, "a", 100)
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("get: %v %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.UsedBytes != 100+cacheEntryOverhead {
		t.Fatalf("used %d", st.UsedBytes)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", st.HitRate())
	}
}

func TestCacheBudgetRespectedUnderEviction(t *testing.T) {
	c := NewCache[int, int](4096, 4)
	for k := 0; k < 1000; k++ {
		c.Put(k, k, 100)
	}
	st := c.Stats()
	if st.UsedBytes > st.CapBytes {
		t.Fatalf("used %d exceeds budget %d", st.UsedBytes, st.CapBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under pressure")
	}
	// Some recent key should be resident, and its value intact.
	found := false
	for k := 990; k < 1000; k++ {
		if v, ok := c.Get(k); ok {
			if v != k {
				t.Fatalf("key %d holds %d", k, v)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no recent key resident")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache[int, []float32](1<<20, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (w*2000 + i) % 512
				if v, ok := c.Get(k); ok {
					if int(v[0]) != k {
						panic(fmt.Sprintf("key %d holds %v", k, v[0]))
					}
					continue
				}
				c.Put(k, []float32{float32(k)}, 4)
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*2000 {
		t.Fatalf("accesses %d", st.Hits+st.Misses)
	}
}

// TestCacheBudgetSplitExact pins the shard-split arithmetic: the per-shard
// capacities must sum to exactly the requested byte budget (the division
// remainder goes to shard 0), with the arithmetic in int64 so budgets
// beyond 2 GiB survive 32-bit platforms. Pre-fix, int truncation dropped
// up to shards−1 remainder bytes silently.
func TestCacheBudgetSplitExact(t *testing.T) {
	for _, budget := range []int64{1, 7, 1023, 1<<20 + 13, 3<<20 + 5, 64<<20 + 63} {
		c := NewCache[int32, []float32](budget, 0)
		if c == nil {
			t.Fatalf("budget %d: cache disabled", budget)
		}
		if got := c.Stats().CapBytes; got != budget {
			t.Fatalf("budget %d: shard capacities sum to %d", budget, got)
		}
	}
	// Explicit shard counts, including non-power-of-two requests that round
	// up internally.
	for _, shards := range []int{1, 3, 16} {
		const budget = 1<<20 + 7
		c := NewCache[int32, []float32](budget, shards)
		if got := c.Stats().CapBytes; got != budget {
			t.Fatalf("shards %d: shard capacities sum to %d, want %d", shards, got, budget)
		}
	}
}

// TestCacheResetKeepsCapacityDropsEntries pins Reset (the post-/reload
// invalidation): entries vanish, capacity and cumulative counters survive.
func TestCacheResetKeepsCapacityDropsEntries(t *testing.T) {
	c := NewCache[int32, []float32](1<<20, 4)
	for i := int32(0); i < 64; i++ {
		c.Put(i, []float32{float32(i)}, 4)
	}
	if _, ok := c.Get(7); !ok {
		t.Fatal("warm entry missing before Reset")
	}
	before := c.Stats()
	c.Reset()
	after := c.Stats()
	if after.Entries != 0 || after.UsedBytes != 0 {
		t.Fatalf("Reset left %d entries / %d bytes", after.Entries, after.UsedBytes)
	}
	if after.CapBytes != before.CapBytes {
		t.Fatalf("Reset changed capacity %d → %d", before.CapBytes, after.CapBytes)
	}
	if after.Puts != before.Puts {
		t.Fatalf("Reset lost cumulative counters: %+v vs %+v", after, before)
	}
	if _, ok := c.Get(7); ok {
		t.Fatal("entry survived Reset")
	}
	var nilCache *Cache[int32, []float32]
	nilCache.Reset() // disabled cache: must not panic
}
