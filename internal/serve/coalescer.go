package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"distgnn/internal/tensor"
)

// Coalescer merges concurrent single-vertex queries into micro-batches: the
// first request opens a batch window, further requests join until the batch
// reaches maxBatch or maxWait elapses, then one inference runs for the
// deduplicated vertex set and every waiter gets its row. Batches execute on
// their own goroutines, so a slow batch never blocks window formation for
// the next one.
type Coalescer struct {
	infer    func([]int32) (*tensor.Matrix, error)
	maxBatch int
	maxWait  time.Duration

	reqs chan *pendingReq
	quit chan struct{}

	requests   atomic.Int64
	batches    atomic.Int64
	batchedReq atomic.Int64 // requests that shared a batch with ≥1 other
	dedupSaved atomic.Int64 // duplicate vertices removed before inference
	maxSeen    atomic.Int64
}

type pendingReq struct {
	vertex int32
	done   chan inferResult
}

type inferResult struct {
	row []float32
	err error
}

// CoalescerStats is the /stats snapshot of batching behaviour.
type CoalescerStats struct {
	Requests        int64   `json:"requests"`
	Batches         int64   `json:"batches"`
	BatchedRequests int64   `json:"batched_requests"`
	DedupSaved      int64   `json:"dedup_saved"`
	MaxBatch        int64   `json:"max_batch_observed"`
	AvgBatch        float64 `json:"avg_batch"`
}

// NewCoalescer starts a coalescer over the given inference function.
// maxBatch ≤ 1 disables merging — every request is its own batch (the
// batch-of-1 reference arm of the serving benchmark). maxWait ≤ 0 defaults
// to 2ms.
func NewCoalescer(infer func([]int32) (*tensor.Matrix, error), maxBatch int, maxWait time.Duration) *Coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	c := &Coalescer{
		infer:    infer,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		reqs:     make(chan *pendingReq),
		quit:     make(chan struct{}),
	}
	go c.dispatch()
	return c
}

// Submit enqueues one vertex query and blocks until its result row (a
// private copy) is ready, the context is canceled, or the coalescer closes.
func (c *Coalescer) Submit(ctx context.Context, vertex int32) ([]float32, error) {
	p := &pendingReq{vertex: vertex, done: make(chan inferResult, 1)}
	select {
	case c.reqs <- p:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.quit:
		return nil, fmt.Errorf("serve: coalescer closed")
	}
	select {
	case r := <-p.done:
		return r.row, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops the dispatcher. In-flight batches complete; later Submits
// fail.
func (c *Coalescer) Close() { close(c.quit) }

// Stats snapshots the batching counters.
func (c *Coalescer) Stats() CoalescerStats {
	st := CoalescerStats{
		Requests:        c.requests.Load(),
		Batches:         c.batches.Load(),
		BatchedRequests: c.batchedReq.Load(),
		DedupSaved:      c.dedupSaved.Load(),
		MaxBatch:        c.maxSeen.Load(),
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(st.Requests) / float64(st.Batches)
	}
	return st
}

// dispatch forms batches: block for the first request, then fill the
// window until maxBatch or maxWait.
func (c *Coalescer) dispatch() {
	for {
		var first *pendingReq
		select {
		case first = <-c.reqs:
		case <-c.quit:
			return
		}
		batch := []*pendingReq{first}
		if c.maxBatch > 1 {
			timer := time.NewTimer(c.maxWait)
		fill:
			for len(batch) < c.maxBatch {
				select {
				case p := <-c.reqs:
					batch = append(batch, p)
				case <-timer.C:
					break fill
				case <-c.quit:
					timer.Stop()
					c.fail(batch, fmt.Errorf("serve: coalescer closed"))
					return
				}
			}
			timer.Stop()
		}
		go c.run(batch)
	}
}

// run deduplicates the batch's vertices (first occurrence wins the slot),
// executes one inference, and fans the rows out to every waiter.
func (c *Coalescer) run(batch []*pendingReq) {
	order := make([]int32, 0, len(batch))
	slot := make(map[int32]int, len(batch))
	for _, p := range batch {
		if _, ok := slot[p.vertex]; !ok {
			slot[p.vertex] = len(order)
			order = append(order, p.vertex)
		}
	}
	c.requests.Add(int64(len(batch)))
	c.batches.Add(1)
	c.dedupSaved.Add(int64(len(batch) - len(order)))
	if len(batch) > 1 {
		c.batchedReq.Add(int64(len(batch)))
	}
	for {
		cur := c.maxSeen.Load()
		if int64(len(batch)) <= cur || c.maxSeen.CompareAndSwap(cur, int64(len(batch))) {
			break
		}
	}

	out, err := c.infer(order)
	if err != nil {
		c.fail(batch, err)
		return
	}
	for _, p := range batch {
		row := append([]float32(nil), out.Row(slot[p.vertex])...)
		p.done <- inferResult{row: row}
	}
}

func (c *Coalescer) fail(batch []*pendingReq, err error) {
	for _, p := range batch {
		p.done <- inferResult{err: err}
	}
}
