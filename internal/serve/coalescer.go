package serve

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"distgnn/internal/obs"
	"distgnn/internal/tensor"
)

// Coalescer merges concurrent single-vertex queries into micro-batches: the
// first request opens a batch window, further requests join until the batch
// reaches maxBatch or maxWait elapses, then one inference runs for the
// deduplicated vertex set and every waiter gets its row. Batches execute on
// their own goroutines, so a slow batch never blocks window formation for
// the next one.
//
// Shutdown contract: Close drains — every Submit that was admitted before
// or concurrently with Close receives either its result (if its batch was
// already running) or ErrCoalescerClosed; none blocks forever. Close
// returns only after the dispatcher has failed all pending requests, and
// Submits that arrive after Close fail immediately with ErrCoalescerClosed.
//
// Admission contract: when maxPending > 0, Submit sheds load with
// ErrSaturated as soon as the number of admitted-but-unfinished requests
// would exceed the bound — the signal the HTTP layer turns into
// 429 + Retry-After so a saturated replica degrades loudly instead of
// queueing without bound.
type Coalescer struct {
	infer      func([]int32, *obs.TraceCtx) (*tensor.Matrix, error)
	maxBatch   int
	maxWait    time.Duration
	maxPending int64 // ≤ 0: unbounded

	reqs    chan *pendingReq
	quit    chan struct{}
	drained chan struct{} // closed once dispatch has failed all pending reqs

	// enqueuing counts Submits inside the enqueue select; the post-Close
	// drain loop spins until it reaches zero so a request racing Close can
	// never be stranded between "sent to reqs" and "received by nobody".
	enqueuing atomic.Int64

	requests   atomic.Int64
	batches    atomic.Int64
	batchedReq atomic.Int64 // requests that shared a batch with ≥1 other
	dedupSaved atomic.Int64 // duplicate vertices removed before inference
	maxSeen    atomic.Int64
	pending    atomic.Int64 // admitted, not yet answered
	shed       atomic.Int64 // rejected with ErrSaturated
}

// ErrCoalescerClosed is returned by Submit for requests admitted or arriving
// while the coalescer shuts down.
var ErrCoalescerClosed = errors.New("serve: coalescer closed")

// ErrSaturated is returned by Submit when the pending-request bound is hit.
// The HTTP layer maps it to 429 Too Many Requests with Retry-After.
var ErrSaturated = errors.New("serve: coalescer saturated, retry later")

type pendingReq struct {
	vertex int32
	done   chan inferResult
	// tc is the submitter's trace context (nil untraced); enq the admission
	// time the queue_wait span is measured from.
	tc  *obs.TraceCtx
	enq time.Time
}

type inferResult struct {
	row []float32
	err error
}

// CoalescerStats is the /stats snapshot of batching behaviour.
type CoalescerStats struct {
	Requests        int64   `json:"requests"`
	Batches         int64   `json:"batches"`
	BatchedRequests int64   `json:"batched_requests"`
	DedupSaved      int64   `json:"dedup_saved"`
	MaxBatch        int64   `json:"max_batch_observed"`
	AvgBatch        float64 `json:"avg_batch"`
	// Pending is the instantaneous admitted-but-unanswered depth;
	// MaxPending the admission bound (0 = unbounded); Shed the requests
	// rejected with ErrSaturated (served as 429s upstream).
	Pending    int64 `json:"pending"`
	MaxPending int64 `json:"max_pending"`
	Shed       int64 `json:"shed"`
}

// NewCoalescer starts a coalescer over the given inference function.
// maxBatch ≤ 1 disables merging — every request is its own batch (the
// batch-of-1 reference arm of the serving benchmark). maxWait ≤ 0 defaults
// to 2ms. maxPending > 0 bounds the admitted-request depth (ErrSaturated
// beyond it); ≤ 0 admits everything.
func NewCoalescer(infer func([]int32, *obs.TraceCtx) (*tensor.Matrix, error), maxBatch int, maxWait time.Duration, maxPending int) *Coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	c := &Coalescer{
		infer:      infer,
		maxBatch:   maxBatch,
		maxWait:    maxWait,
		maxPending: int64(maxPending),
		reqs:       make(chan *pendingReq),
		quit:       make(chan struct{}),
		drained:    make(chan struct{}),
	}
	go c.dispatch()
	return c
}

// Submit enqueues one vertex query and blocks until its result row (a
// private copy) is ready, the context is canceled, the admission bound
// rejects it (ErrSaturated), or the coalescer closes (ErrCoalescerClosed).
func (c *Coalescer) Submit(ctx context.Context, vertex int32) ([]float32, error) {
	return c.SubmitTraced(ctx, vertex, nil)
}

// SubmitTraced is Submit with request tracing: a non-nil tc receives a
// queue_wait span (admission → batch start) plus the batch's inference-stage
// spans, re-based onto the request's clock. The result bits are identical.
func (c *Coalescer) SubmitTraced(ctx context.Context, vertex int32, tc *obs.TraceCtx) ([]float32, error) {
	if n := c.pending.Add(1); c.maxPending > 0 && n > c.maxPending {
		c.pending.Add(-1)
		c.shed.Add(1)
		return nil, ErrSaturated
	}
	defer c.pending.Add(-1)

	p := &pendingReq{vertex: vertex, done: make(chan inferResult, 1), tc: tc}
	if tc != nil {
		p.enq = time.Now()
	}
	c.enqueuing.Add(1)
	select {
	case c.reqs <- p:
		c.enqueuing.Add(-1)
	case <-ctx.Done():
		c.enqueuing.Add(-1)
		return nil, ctx.Err()
	case <-c.quit:
		c.enqueuing.Add(-1)
		return nil, ErrCoalescerClosed
	}
	select {
	case r := <-p.done:
		return r.row, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.quit:
		// The request is enqueued, so the shutdown drain guarantees a done
		// send; prefer a result that already arrived over the close error.
		select {
		case r := <-p.done:
			return r.row, r.err
		default:
			return nil, ErrCoalescerClosed
		}
	}
}

// Close stops the dispatcher and drains: every pending request receives
// ErrCoalescerClosed (or its result, for batches already inferring); later
// Submits fail immediately. Close returns after the drain completes and is
// safe to call from any goroutine, but only once.
func (c *Coalescer) Close() {
	close(c.quit)
	<-c.drained
}

// Stats snapshots the batching counters.
func (c *Coalescer) Stats() CoalescerStats {
	st := CoalescerStats{
		Requests:        c.requests.Load(),
		Batches:         c.batches.Load(),
		BatchedRequests: c.batchedReq.Load(),
		DedupSaved:      c.dedupSaved.Load(),
		MaxBatch:        c.maxSeen.Load(),
		Pending:         c.pending.Load(),
		MaxPending:      c.maxPending,
		Shed:            c.shed.Load(),
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(st.Requests) / float64(st.Batches)
	}
	return st
}

// dispatch forms batches: block for the first request, then fill the
// window until maxBatch or maxWait. On quit it drains before exiting so no
// admitted request is stranded.
func (c *Coalescer) dispatch() {
	defer close(c.drained)
	for {
		var first *pendingReq
		select {
		case first = <-c.reqs:
		case <-c.quit:
			c.drainPending()
			return
		}
		batch := []*pendingReq{first}
		if c.maxBatch > 1 {
			timer := time.NewTimer(c.maxWait)
		fill:
			for len(batch) < c.maxBatch {
				select {
				case p := <-c.reqs:
					batch = append(batch, p)
				case <-timer.C:
					break fill
				case <-c.quit:
					timer.Stop()
					c.fail(batch, ErrCoalescerClosed)
					c.drainPending()
					return
				}
			}
			timer.Stop()
		}
		go c.run(batch)
	}
}

// drainPending runs after quit: requests that won the enqueue select
// concurrently with Close are received here and failed with the closed
// error. It spins until no Submit is still inside the enqueue select —
// after that, any new Submit observes quit and fails on its own.
func (c *Coalescer) drainPending() {
	for {
		select {
		case p := <-c.reqs:
			p.done <- inferResult{err: ErrCoalescerClosed}
		default:
			if c.enqueuing.Load() == 0 {
				return
			}
			runtime.Gosched()
		}
	}
}

// run deduplicates the batch's vertices (first occurrence wins the slot),
// executes one inference, and fans the rows out to every waiter.
func (c *Coalescer) run(batch []*pendingReq) {
	order := make([]int32, 0, len(batch))
	slot := make(map[int32]int, len(batch))
	for _, p := range batch {
		if _, ok := slot[p.vertex]; !ok {
			slot[p.vertex] = len(order)
			order = append(order, p.vertex)
		}
	}
	c.requests.Add(int64(len(batch)))
	c.batches.Add(1)
	c.dedupSaved.Add(int64(len(batch) - len(order)))
	if len(batch) > 1 {
		c.batchedReq.Add(int64(len(batch)))
	}
	for {
		cur := c.maxSeen.Load()
		if int64(len(batch)) <= cur || c.maxSeen.CompareAndSwap(cur, int64(len(batch))) {
			break
		}
	}

	// One batch-level trace context when any member is traced; its spans are
	// merged into every traced member after the shared inference, re-based
	// onto that member's clock. The batch adopts the first traced member's
	// ID, so downstream halo fetches attribute to that representative
	// request (exact for batch-of-1, the tail-request case).
	var bt *obs.TraceCtx
	for _, p := range batch {
		if p.tc == nil {
			continue
		}
		if bt == nil || (bt.ID() == 0 && p.tc.ID() != 0) {
			bt = obs.NewTraceCtx(p.tc.ID())
		}
		if bt.ID() != 0 {
			break
		}
	}
	out, err := c.infer(order, bt)
	if err != nil {
		c.fail(batch, err)
		return
	}
	for _, p := range batch {
		if p.tc != nil {
			p.tc.AddSpanAt("queue_wait", p.enq, bt.Start().Sub(p.enq))
			p.tc.Merge(bt)
		}
		row := append([]float32(nil), out.Row(slot[p.vertex])...)
		p.done <- inferResult{row: row}
	}
}

func (c *Coalescer) fail(batch []*pendingReq, err error) {
	for _, p := range batch {
		p.done <- inferResult{err: err}
	}
}
