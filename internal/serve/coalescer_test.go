package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distgnn/internal/obs"
	"distgnn/internal/tensor"
)

// echoInfer returns a 1-col matrix whose row i holds float32(vertex_i), so
// routing bugs (wrong row to wrong waiter) are visible.
func echoInfer(calls *atomic.Int64, seen *atomic.Int64) func([]int32, *obs.TraceCtx) (*tensor.Matrix, error) {
	return func(vs []int32, _ *obs.TraceCtx) (*tensor.Matrix, error) {
		calls.Add(1)
		seen.Add(int64(len(vs)))
		out := tensor.New(len(vs), 1)
		for i, v := range vs {
			out.Set(i, 0, float32(v))
		}
		return out, nil
	}
}

func TestCoalescerMergesConcurrentRequests(t *testing.T) {
	var calls, seen atomic.Int64
	slow := func(vs []int32, tc *obs.TraceCtx) (*tensor.Matrix, error) {
		time.Sleep(time.Millisecond) // let the window fill
		return echoInfer(&calls, &seen)(vs, tc)
	}
	c := NewCoalescer(slow, 16, 50*time.Millisecond, 0)
	defer c.Close()

	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := int32(i % 8) // heavy duplication across requests
			row, err := c.Submit(context.Background(), v)
			if err != nil {
				errs <- err
				return
			}
			if int32(row[0]) != v {
				errs <- fmt.Errorf("vertex %d got row %v", v, row[0])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Requests != n {
		t.Fatalf("requests %d", st.Requests)
	}
	if st.Batches >= n {
		t.Fatalf("no coalescing: %d batches for %d requests", st.Batches, n)
	}
	if st.DedupSaved == 0 {
		t.Fatal("duplicates were not deduplicated")
	}
	if seen.Load()+st.DedupSaved != n {
		t.Fatalf("inferred %d + dedup %d != %d requests", seen.Load(), st.DedupSaved, n)
	}
}

func TestCoalescerBatchOfOneMode(t *testing.T) {
	var calls, seen atomic.Int64
	c := NewCoalescer(echoInfer(&calls, &seen), 1, time.Millisecond, 0)
	defer c.Close()
	for i := 0; i < 5; i++ {
		row, err := c.Submit(context.Background(), int32(i))
		if err != nil {
			t.Fatal(err)
		}
		if int32(row[0]) != int32(i) {
			t.Fatalf("got %v", row[0])
		}
	}
	if calls.Load() != 5 {
		t.Fatalf("batch-of-1 made %d calls", calls.Load())
	}
	st := c.Stats()
	if st.Batches != 5 || st.AvgBatch != 1 || st.BatchedRequests != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCoalescerTimerFlushesPartialBatch(t *testing.T) {
	var calls, seen atomic.Int64
	c := NewCoalescer(echoInfer(&calls, &seen), 1024, 5*time.Millisecond, 0)
	defer c.Close()
	start := time.Now()
	row, err := c.Submit(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if int32(row[0]) != 42 {
		t.Fatalf("got %v", row[0])
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("partial batch waited %v", elapsed)
	}
}

func TestCoalescerPropagatesInferenceError(t *testing.T) {
	boom := fmt.Errorf("boom")
	c := NewCoalescer(func([]int32, *obs.TraceCtx) (*tensor.Matrix, error) { return nil, boom }, 4, time.Millisecond, 0)
	defer c.Close()
	if _, err := c.Submit(context.Background(), 1); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestCoalescerContextCancel(t *testing.T) {
	block := make(chan struct{})
	c := NewCoalescer(func(vs []int32, _ *obs.TraceCtx) (*tensor.Matrix, error) {
		<-block
		return tensor.New(len(vs), 1), nil
	}, 1, time.Millisecond, 0)
	defer c.Close()
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(ctx, 1); err == nil {
		t.Fatal("canceled submit returned no error")
	}
}

func TestCoalescerClosedSubmitFails(t *testing.T) {
	var calls, seen atomic.Int64
	c := NewCoalescer(echoInfer(&calls, &seen), 4, time.Millisecond, 0)
	c.Close()
	if _, err := c.Submit(context.Background(), 1); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

// TestCoalescerCloseNeverStrandsSubmit is the shutdown-stranding regression
// pin: pre-fix, a Submit that enqueued concurrently with Close could block
// forever (the waiting select did not watch quit, and dispatch exited
// without draining the request channel). Hammer Submit against Close under
// the race detector and require every Submit to return — with either a
// real result or ErrCoalescerClosed — within a hard deadline.
func TestCoalescerCloseNeverStrandsSubmit(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		var calls, seen atomic.Int64
		c := NewCoalescer(echoInfer(&calls, &seen), 8, 100*time.Microsecond, 0)

		const n = 24
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Cancel-free context: pre-fix, this Submit could hang.
				row, err := c.Submit(context.Background(), int32(i))
				switch {
				case err == nil:
					if int32(row[0]) != int32(i) {
						errs <- fmt.Errorf("vertex %d got row %v", i, row[0])
					}
				case err == ErrCoalescerClosed:
				default:
					errs <- fmt.Errorf("vertex %d: unexpected error %v", i, err)
				}
			}(i)
		}
		// Close races the Submits above.
		go c.Close()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: Submit stranded across Close", iter)
		}
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestCoalescerAdmissionControlSheds pins the bounded-pending contract:
// once maxPending requests are admitted and unanswered, further Submits
// fail fast with ErrSaturated and are counted as shed.
func TestCoalescerAdmissionControlSheds(t *testing.T) {
	release := make(chan struct{})
	c := NewCoalescer(func(vs []int32, _ *obs.TraceCtx) (*tensor.Matrix, error) {
		<-release
		out := tensor.New(len(vs), 1)
		for i, v := range vs {
			out.Set(i, 0, float32(v))
		}
		return out, nil
	}, 1, time.Millisecond, 2)
	defer c.Close()

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := c.Submit(context.Background(), int32(i))
			results <- err
		}(i)
	}
	// Wait until both occupy the pending budget.
	for deadline := time.Now().Add(5 * time.Second); c.Stats().Pending < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("pending never reached 2: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Submit(context.Background(), 99); err != ErrSaturated {
		t.Fatalf("over-budget Submit: got %v, want ErrSaturated", err)
	}
	if st := c.Stats(); st.Shed != 1 || st.MaxPending != 2 {
		t.Fatalf("stats %+v", st)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	if st := c.Stats(); st.Pending != 0 {
		t.Fatalf("pending not drained: %+v", st)
	}
}

// TestCoalescerCloseWaitsForDrain pins that Close blocks until the
// dispatcher has handed every stranded request its error: after Close
// returns, a fresh Submit must fail immediately.
func TestCoalescerCloseWaitsForDrain(t *testing.T) {
	var calls, seen atomic.Int64
	c := NewCoalescer(echoInfer(&calls, &seen), 4, time.Millisecond, 0)
	c.Close()
	start := time.Now()
	if _, err := c.Submit(context.Background(), 1); err != ErrCoalescerClosed {
		t.Fatalf("post-close Submit: got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("post-close Submit blocked %v", d)
	}
}
