// Package serve is the online inference layer on top of a trained DistGNN
// checkpoint: it answers "what is the prediction/embedding for vertex v"
// over HTTP with production-shaped mechanics — request coalescing into
// micro-batches and a concurrent byte-budgeted feature/embedding cache (the
// paper's cache-reuse insight, promoted from the internal/cachesim
// simulator into a real serving data structure).
//
// The engine extracts per-request k-hop computation blocks with
// internal/minibatch's sampler/block machinery. In exact mode
// (full-neighborhood blocks) the per-vertex activations are bit-identical
// to a full-graph Forward of the training-time model: block aggregation
// follows the CSR neighbor order the unblocked spmm kernel uses, the dense
// layers run through the same tensor kernels, and batch composition never
// changes a row's float-op sequence. That makes serving results independent
// of batching and caching — the property the serve tests pin.
package serve

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"distgnn/internal/datasets"
	"distgnn/internal/featstore"
	"distgnn/internal/graph"
	"distgnn/internal/minibatch"
	"distgnn/internal/nn"
	"distgnn/internal/obs"
	"distgnn/internal/quant"
	"distgnn/internal/spmm"
	"distgnn/internal/tensor"
)

// Arch names a servable model family.
type Arch string

const (
	// ArchGraphSAGE serves checkpoints written by the full-batch GraphSAGE
	// trainer (GCN aggregator).
	ArchGraphSAGE Arch = "graphsage"
	// ArchGAT serves multi-head graph-attention checkpoints.
	ArchGAT Arch = "gat"
)

// ModelSpec describes the architecture a checkpoint must match. The zero
// values of InDim/OutDim are filled from the dataset.
type ModelSpec struct {
	Arch      Arch
	InDim     int
	Hidden    int
	OutDim    int
	NumLayers int
	// NumHeads is the GAT attention head count (ignored for GraphSAGE).
	NumHeads int
	// LeakySlope is GAT's LeakyReLU negative slope; defaults to 0.2 to
	// match model.NewGAT.
	LeakySlope float64
	// FeatPrecision selects how the engine stores input features:
	// quant.FP32 (zero value) reads the dataset matrix; quant.BF16 rounds
	// it once at engine construction into a 16-bit slab, halving resident
	// feature bytes and read traffic. Inference then runs over the rounded
	// values (decode is exact), so exact-mode results are bit-identical to
	// a model evaluated on the rounded matrix. Single-process engines only;
	// the sharded engine exchanges fp32 rows.
	FeatPrecision quant.Precision
}

func (s ModelSpec) String() string {
	if s.Arch == ArchGAT {
		return fmt.Sprintf("gat(in=%d hidden=%d out=%d layers=%d heads=%d)",
			s.InDim, s.Hidden, s.OutDim, s.NumLayers, s.NumHeads)
	}
	return fmt.Sprintf("graphsage(in=%d hidden=%d out=%d layers=%d)",
		s.InDim, s.Hidden, s.OutDim, s.NumLayers)
}

// sageServeLayer is one forward-only GraphSAGE layer: y = agg·W + b.
type sageServeLayer struct {
	w, b *tensor.Matrix
	last bool
}

// gatServeHead is one forward-only attention head.
type gatServeHead struct {
	w, attL, attR *tensor.Matrix
}

type gatServeLayer struct {
	heads []*gatServeHead
	last  bool
}

// EngineStats are the engine-level counters surfaced in /stats.
type EngineStats struct {
	// Inferences counts engine invocations (one per micro-batch).
	Inferences int64 `json:"inferences"`
	// SeedVertices counts vertices inferred across all invocations.
	SeedVertices int64 `json:"seed_vertices"`
	// InputFrontierVertices counts outermost-frontier vertices gathered —
	// the feature-fetch volume batching and dedup amortize.
	InputFrontierVertices int64 `json:"input_frontier_vertices"`
}

// featureSource materializes the raw input features for a block's
// outermost frontier — the one stage of exact inference whose data may not
// be resident in this process. The single-process engine reads the full
// feature matrix (featstore.Local); the sharded engine reads its owned
// slice and fetches halo rows from their owner ranks (featstore.Sharded via
// shardFeatures, shard.go). Everything downstream of the gather is
// identical either way, which is what keeps sharded exact-mode logits
// bit-identical to single-process ones. featstore.Source satisfies it.
type featureSource interface {
	Gather(frontier []int32) (*tensor.Matrix, error)
}

// exactSampler lets a featureSource own exact-mode block extraction when it
// can exploit partition structure: shardFeatures uses the partition-aware
// minibatch.FullSampleOwned, so the input frontier arrives already split by
// owner and the split is computed exactly once per request. tc (nil when
// untraced) receives the stage spans the source can attribute.
type exactSampler interface {
	sampleExact(topo graph.Topology, seeds []int32, hops int, tc *obs.TraceCtx) (*minibatch.Sample, *tensor.Matrix, error)
}

// Engine runs forward-only inference over k-hop blocks. It is safe for
// concurrent use: the dense and aggregation passes touch only request-local
// state, and the sampled-mode RNG is guarded by a mutex.
type Engine struct {
	ds      *datasets.Dataset
	spec    ModelSpec
	fanouts []int // nil → exact full-neighborhood mode
	params  []*nn.Param
	sage    []*sageServeLayer
	gat     []*gatServeLayer
	feat    *Cache[int32, []float32]
	src     featureSource
	// feats is the resident feature store (fp32 matrix or bf16 slab). The
	// exact-mode GraphSAGE path aggregates straight from it through the
	// fused gather kernel when the feature cache is disabled.
	feats spmm.FeatRows
	// mut, when non-nil, is the graph mutation layer (Config.EnableUpdates):
	// each request loads one epoch-versioned Snapshot and extracts its
	// blocks against that consistent view. Nil = frozen graph, identical
	// behavior to before the mutation plane existed.
	mut *graph.Mutable

	samplerMu sync.Mutex
	sampler   *minibatch.Sampler

	inferences   atomic.Int64
	seedVertices atomic.Int64
	frontierIn   atomic.Int64
}

// NewEngine builds the forward-only parameter set for spec, validates it
// against ds, and prepares the block extractor. fanouts selects sampled
// inference (len must equal NumLayers); nil or empty selects exact
// full-neighborhood inference. featureCacheBytes > 0 enables the gathered-
// feature cache.
func NewEngine(ds *datasets.Dataset, spec ModelSpec, fanouts []int, featureCacheBytes int64) (*Engine, error) {
	if spec.InDim == 0 {
		spec.InDim = ds.Features.Cols
	}
	if spec.OutDim == 0 {
		spec.OutDim = ds.NumClasses
	}
	if spec.NumLayers < 1 {
		return nil, fmt.Errorf("serve: NumLayers must be ≥1, got %d", spec.NumLayers)
	}
	if spec.InDim != ds.Features.Cols {
		return nil, fmt.Errorf("serve: model InDim %d != dataset feature width %d", spec.InDim, ds.Features.Cols)
	}
	if spec.InDim <= 0 || spec.OutDim <= 0 || (spec.NumLayers > 1 && spec.Hidden <= 0) {
		return nil, fmt.Errorf("serve: dimensions must be positive (in=%d hidden=%d out=%d)",
			spec.InDim, spec.Hidden, spec.OutDim)
	}
	e := &Engine{
		ds:   ds,
		spec: spec,
		feat: NewCache[int32, []float32](featureCacheBytes, 0),
	}
	switch spec.FeatPrecision {
	case quant.FP32:
		e.feats = spmm.RowsOf(ds.Features)
	case quant.BF16:
		// One-time rounding at construction; every request reads the slab.
		e.feats = spmm.RowsOfBF16(tensor.BF16FromMatrix(ds.Features))
	default:
		return nil, fmt.Errorf("serve: unsupported feature precision %v (fp32 or bf16)", spec.FeatPrecision)
	}
	e.src = featstore.NewLocal(e.feats, e.feat)
	switch spec.Arch {
	case ArchGraphSAGE:
		e.buildSage()
	case ArchGAT:
		if e.spec.NumHeads == 0 {
			e.spec.NumHeads = 1
		}
		if e.spec.NumHeads < 1 {
			return nil, fmt.Errorf("serve: GAT NumHeads must be ≥1")
		}
		if e.spec.OutDim%e.spec.NumHeads != 0 || (spec.NumLayers > 1 && e.spec.Hidden%e.spec.NumHeads != 0) {
			return nil, fmt.Errorf("serve: GAT widths (hidden %d, out %d) must be divisible by NumHeads %d"+
				" — pass the padded output width the checkpoint was trained with via OutDim/-out-dim",
				e.spec.Hidden, e.spec.OutDim, e.spec.NumHeads)
		}
		if e.spec.LeakySlope == 0 {
			e.spec.LeakySlope = 0.2
		}
		e.buildGAT()
	default:
		return nil, fmt.Errorf("serve: unknown arch %q (graphsage or gat)", spec.Arch)
	}
	if len(fanouts) > 0 {
		if len(fanouts) != spec.NumLayers {
			return nil, fmt.Errorf("serve: %d fanouts for %d layers", len(fanouts), spec.NumLayers)
		}
		s, err := minibatch.NewSampler(ds.G, fanouts, 1)
		if err != nil {
			return nil, err
		}
		e.sampler = s
		e.fanouts = append([]int(nil), fanouts...)
	}
	return e, nil
}

// buildSage allocates parameters with the training-time names and shapes
// ("sage<l>.weight"/"sage<l>.bias", in model.Params() order) so
// nn.ReadParams accepts exactly the checkpoints distgnn-train writes.
func (e *Engine) buildSage() {
	for l := 0; l < e.spec.NumLayers; l++ {
		in, out := e.layerDims(l)
		w := nn.NewParam(fmt.Sprintf("sage%d.weight", l), in, out)
		b := nn.NewParam(fmt.Sprintf("sage%d.bias", l), 1, out)
		e.params = append(e.params, w, b)
		e.sage = append(e.sage, &sageServeLayer{w: w.W, b: b.W, last: l == e.spec.NumLayers-1})
	}
}

// buildGAT mirrors model.NewGAT's parameter naming and order: per layer,
// per head — linear weight, attL, attR.
func (e *Engine) buildGAT() {
	for l := 0; l < e.spec.NumLayers; l++ {
		in, out := e.layerDims(l)
		headOut := out / e.spec.NumHeads
		gl := &gatServeLayer{last: l == e.spec.NumLayers-1}
		for h := 0; h < e.spec.NumHeads; h++ {
			w := nn.NewParam(fmt.Sprintf("gat%d.h%d.weight", l, h), in, headOut)
			attL := nn.NewParam(fmt.Sprintf("gat%d.h%d.attL", l, h), 1, headOut)
			attR := nn.NewParam(fmt.Sprintf("gat%d.h%d.attR", l, h), 1, headOut)
			e.params = append(e.params, w, attL, attR)
			gl.heads = append(gl.heads, &gatServeHead{w: w.W, attL: attL.W, attR: attR.W})
		}
		e.gat = append(e.gat, gl)
	}
}

func (e *Engine) layerDims(l int) (in, out int) {
	in, out = e.spec.Hidden, e.spec.Hidden
	if l == 0 {
		in = e.spec.InDim
	}
	if l == e.spec.NumLayers-1 {
		out = e.spec.OutDim
	}
	return in, out
}

// Params returns the engine's parameter list in checkpoint order.
func (e *Engine) Params() []*nn.Param { return e.params }

// Spec returns the resolved model spec.
func (e *Engine) Spec() ModelSpec { return e.spec }

// Exact reports whether the engine runs full-neighborhood inference.
func (e *Engine) Exact() bool { return e.sampler == nil }

// Mode describes the block-extraction mode for logs and /stats.
func (e *Engine) Mode() string {
	if e.Exact() {
		return "exact"
	}
	parts := make([]string, len(e.fanouts))
	for i, f := range e.fanouts {
		parts[i] = fmt.Sprint(f)
	}
	return "sampled(" + strings.Join(parts, ",") + ")"
}

// FeatureCacheStats snapshots the gathered-feature cache counters.
func (e *Engine) FeatureCacheStats() CacheStats { return e.feat.Stats() }

// Stats snapshots the engine counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Inferences:            e.inferences.Load(),
		SeedVertices:          e.seedVertices.Load(),
		InputFrontierVertices: e.frontierIn.Load(),
	}
}

// topo returns the per-request topology view: the current mutation
// snapshot when updates are enabled, the frozen dataset CSR otherwise.
func (e *Engine) topo() graph.Topology {
	if e.mut != nil {
		return e.mut.Snapshot()
	}
	return e.ds.G
}

// invalidateFeatures drops the given vertices from the gathered-feature
// cache and returns how many were resident — the feature leg of the
// mutation plane's targeted invalidation.
func (e *Engine) invalidateFeatures(ids []int32) int {
	n := 0
	for _, v := range ids {
		if e.feat.Remove(v) {
			n++
		}
	}
	return n
}

// Infer runs forward-only inference for the seed vertices and returns the
// final-layer output matrix, one row per seed in input order. Duplicate
// seeds are allowed (each gets its own row).
func (e *Engine) Infer(seeds []int32) (*tensor.Matrix, error) {
	return e.InferTraced(seeds, nil)
}

// InferTraced is Infer with per-stage observability: a non-nil tc gets
// sample/gather/forward spans (plus per-peer halo RTT spans in shard mode),
// and its trace ID rides the halo fetch frames. Tracing only observes — the
// returned bits are identical to Infer's.
func (e *Engine) InferTraced(seeds []int32, tc *obs.TraceCtx) (*tensor.Matrix, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("serve: empty seed set")
	}
	// One topology load per request: every block of this inference is
	// extracted against the same snapshot even if updates land mid-flight.
	topo := e.topo()
	for _, v := range seeds {
		if v < 0 || int(v) >= topo.NumV() {
			return nil, fmt.Errorf("serve: vertex %d out of range [0,%d)", v, topo.NumV())
		}
	}
	var s *minibatch.Sample
	var x *tensor.Matrix
	var err error
	switch {
	case e.sampler != nil:
		stop := tc.StartSpan("sample")
		e.samplerMu.Lock()
		s = e.sampler.Sample(seeds)
		e.samplerMu.Unlock()
		stop()
		stop = tc.StartSpan("gather")
		x, err = e.src.Gather(s.InputFrontier())
		stop()
	case e.fusedExact():
		// GraphSAGE exact mode over the resident store with no feature
		// cache: skip the gather entirely — the fused kernel streams
		// frontier rows straight from e.feats (fp32 bit-identical to the
		// gathered path, bf16 decoded on load).
		stop := tc.StartSpan("sample")
		s = minibatch.FullSample(topo, seeds, e.spec.NumLayers)
		stop()
		frontier := s.InputFrontier()
		e.inferences.Add(1)
		e.seedVertices.Add(int64(len(seeds)))
		e.frontierIn.Add(int64(len(frontier)))
		stop = tc.StartSpan("forward")
		out := e.forwardSageFused(s, frontier)
		stop()
		return out, nil
	default:
		if es, ok := e.src.(exactSampler); ok {
			s, x, err = es.sampleExact(topo, seeds, e.spec.NumLayers, tc)
			break
		}
		stop := tc.StartSpan("sample")
		s = minibatch.FullSample(topo, seeds, e.spec.NumLayers)
		stop()
		stop = tc.StartSpan("gather")
		x, err = e.src.Gather(s.InputFrontier())
		stop()
	}
	if err != nil {
		return nil, err
	}

	e.inferences.Add(1)
	e.seedVertices.Add(int64(len(seeds)))
	e.frontierIn.Add(int64(x.Rows))

	stop := tc.StartSpan("forward")
	var out *tensor.Matrix
	if e.spec.Arch == ArchGAT {
		out = e.forwardGAT(s, x)
	} else {
		out = e.forwardSage(s, x)
	}
	stop()
	return out, nil
}

// fusedExact reports whether this request shape can take the fused
// gather→aggregate path: exact GraphSAGE over the in-process store, with
// the feature cache disabled (a populated cache changes nothing bitwise,
// but serving its hits requires materializing the gather, so the fused
// path only engages when there is no cache to consult).
func (e *Engine) fusedExact() bool {
	if e.spec.Arch != ArchGraphSAGE || e.feat != nil {
		return false
	}
	_, sharded := e.src.(exactSampler)
	return !sharded
}

// forwardSage runs the GCN-aggregator GraphSAGE layers over the sampled or
// exact blocks. The float-op order per output row matches the full-batch
// model's Forward exactly (see package comment).
func (e *Engine) forwardSage(s *minibatch.Sample, x *tensor.Matrix) *tensor.Matrix {
	h := x
	for l := len(s.Blocks) - 1; l >= 0; l-- {
		layer := len(s.Blocks) - 1 - l
		blk := s.Blocks[l]
		agg := minibatch.AggregateGCN(blk, h, blk.Norms())
		h = e.sageApply(layer, agg)
	}
	return h
}

// forwardSageFused is forwardSage with the outermost layer's gather and
// aggregation fused: layer 0 reads frontier rows directly from the resident
// feature store; inner layers are identical. fp32 results are bit-identical
// to forwardSage over the gathered matrix.
func (e *Engine) forwardSageFused(s *minibatch.Sample, frontier []int32) *tensor.Matrix {
	var h *tensor.Matrix
	for l := len(s.Blocks) - 1; l >= 0; l-- {
		layer := len(s.Blocks) - 1 - l
		blk := s.Blocks[l]
		var agg *tensor.Matrix
		if layer == 0 {
			agg = minibatch.AggregateGCNFrom(blk, e.feats, frontier)
		} else {
			agg = minibatch.AggregateGCN(blk, h, blk.Norms())
		}
		h = e.sageApply(layer, agg)
	}
	return h
}

// sageApply runs one dense GraphSAGE layer: y = agg·W + b, ReLU between
// layers (nn.ReLU semantics: keep v when v > 0, else exactly +0).
func (e *Engine) sageApply(layer int, agg *tensor.Matrix) *tensor.Matrix {
	sl := e.sage[layer]
	y := tensor.New(agg.Rows, sl.w.Cols)
	tensor.MatMul(y, agg, sl.w)
	y.AddRowVector(sl.b.Data)
	if !sl.last {
		for i, v := range y.Data {
			if !(v > 0) {
				y.Data[i] = 0
			}
		}
	}
	return y
}

// forwardGAT runs the attention layers over the blocks, replicating the
// full-graph model's per-destination op order: SDDMM add, LeakyReLU,
// max-stabilized edge softmax (float64 exponent sum), weighted aggregation.
func (e *Engine) forwardGAT(s *minibatch.Sample, x *tensor.Matrix) *tensor.Matrix {
	h := x
	for l := len(s.Blocks) - 1; l >= 0; l-- {
		layer := len(s.Blocks) - 1 - l
		blk := s.Blocks[l]
		gl := e.gat[layer]
		headOut := gl.heads[0].w.Cols
		out := tensor.New(blk.NumDst, headOut*len(gl.heads))
		for hi, head := range gl.heads {
			z := tensor.New(h.Rows, headOut)
			tensor.MatMul(z, h, head.w)
			sProj := projectRows(z, head.attL.Data)
			tProj := projectRows(z, head.attR.Data)
			alpha := edgeAttention(blk, sProj, tProj, float32(e.spec.LeakySlope))
			aggregateWeightedBlock(blk, z, alpha, out, hi*headOut)
		}
		if !gl.last {
			// model.GAT's inter-layer ReLU: negatives to +0, else untouched.
			for i, v := range out.Data {
				if v < 0 {
					out.Data[i] = 0
				}
			}
		}
		h = out
	}
	return h
}

// projectRows returns the per-row dot products z·a (model.GAT's project).
func projectRows(z *tensor.Matrix, a []float32) []float32 {
	out := make([]float32, z.Rows)
	for v := 0; v < z.Rows; v++ {
		row := z.Row(v)
		var sum float32
		for j, w := range a {
			sum += row[j] * w
		}
		out[v] = sum
	}
	return out
}

// edgeAttention computes per-block-edge softmax attention: for each dst i
// over its block edges in order, e_p = LeakyReLU(s[src_p] + t[self_i]),
// normalized with the max-stabilized float64-sum softmax spmm.EdgeSoftmax
// uses, so exact-mode scores are bit-identical to the full-graph model.
func edgeAttention(blk *minibatch.Block, sProj, tProj []float32, slope float32) []float32 {
	alpha := make([]float32, len(blk.Indices))
	for i := 0; i < blk.NumDst; i++ {
		lo, hi := int(blk.Indptr[i]), int(blk.Indptr[i+1])
		if lo == hi {
			continue
		}
		tv := tProj[blk.SelfIdx[i]]
		for p := lo; p < hi; p++ {
			v := sProj[blk.Indices[p]] + tv
			if v < 0 {
				v *= slope
			}
			alpha[p] = v
		}
		maxV := alpha[lo]
		for p := lo + 1; p < hi; p++ {
			if alpha[p] > maxV {
				maxV = alpha[p]
			}
		}
		var sum float64
		for p := lo; p < hi; p++ {
			ex := expf(float64(alpha[p] - maxV))
			alpha[p] = float32(ex)
			sum += ex
		}
		inv := float32(1 / sum)
		for p := lo; p < hi; p++ {
			alpha[p] *= inv
		}
	}
	return alpha
}

// aggregateWeightedBlock writes Σ_p α_p·z[src_p] into out's column band
// [j0, j0+z.Cols) per destination, skipping zero weights exactly as
// spmm.AggregateWeighted does.
func aggregateWeightedBlock(blk *minibatch.Block, z *tensor.Matrix, alpha []float32, out *tensor.Matrix, j0 int) {
	w := z.Cols
	for i := 0; i < blk.NumDst; i++ {
		dst := out.Row(i)[j0 : j0+w]
		lo, hi := int(blk.Indptr[i]), int(blk.Indptr[i+1])
		for p := lo; p < hi; p++ {
			a := alpha[p]
			if a == 0 {
				continue
			}
			src := z.Row(int(blk.Indices[p]))
			for j := range dst {
				dst[j] += a * src[j]
			}
		}
	}
}

// expf mirrors spmm's overflow-guarded exponent helper bit for bit.
func expf(x float64) float64 {
	if x < -80 {
		return 0
	}
	return math.Exp(x)
}
