package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distgnn/internal/obs"
)

// frontend.go is the replicated-serving entry point: a consistent-hash
// frontend over R-replica shard groups. The paper's partitioned-aggregation
// design assumes every rank is alive; this layer removes that assumption
// from the serving story. Vertices consistent-hash to a shard group (ring
// of virtual nodes keyed by the group's stable key, so assignment is
// permutation-invariant in the group list and removing a group moves only
// that group's arc). Within a group, requests load-balance across the R
// replicas with power-of-two-choices by in-flight depth; a replica that
// fails MaxFails consecutive requests is marked unhealthy and traffic
// retries the survivors, so a killed rank degrades throughput instead of
// erroring requests. A background prober restores health via /healthz.
// Backends that shed load (429) are retried on another replica; only when
// every replica sheds does the frontend return 429 + Retry-After to the
// client. POST /reload fans out to every replica so a whole fleet can
// hot-swap checkpoints through one endpoint.
//
// Replicas of one group are bit-identical engines (same checkpoint, same
// partition seed), so which replica answers never changes a logit bit —
// the conformance harness pins exact-mode responses through the frontend
// against the single-process reference across shard counts and R.

// GroupSpec names one shard group and its replica endpoints. Key is the
// group's stable hashing identity (assignment must not depend on list
// order or replica addresses); Replicas are the HTTP addresses of the R
// interchangeable servers for this group.
type GroupSpec struct {
	Key      string
	Replicas []string
}

// FrontendConfig configures the replicated-serving frontend.
type FrontendConfig struct {
	Groups []GroupSpec
	// VNodes is the virtual-node count per group on the hash ring
	// (default 64 — assignment balance within a few percent).
	VNodes int
	// MaxFails is the consecutive-failure threshold that marks a replica
	// unhealthy (default 3).
	MaxFails int
	// ProbeInterval paces the background /healthz prober that restores
	// unhealthy replicas (default 500ms). ≤ 0 uses the default; probing
	// cannot be disabled because passive failure marking alone would
	// strand a recovered replica.
	ProbeInterval time.Duration
	// ProxyTimeout bounds each backend attempt (default 15s).
	ProxyTimeout time.Duration
	// Seed seeds the power-of-two-choices randomness (default 1);
	// deterministic so test runs are reproducible.
	Seed int64
	// Metrics, when set, registers the frontend metrics on the registry and
	// enables GET /metrics. Nil runs metrics-free.
	Metrics *obs.Registry
	// Tracer, when set, mints a trace ID per proxied request (propagated to
	// backends via the trace header) and enables GET /debug/trace/recent
	// plus the slow-request log. Nil disables tracing.
	Tracer *obs.Tracer
}

func (cfg *FrontendConfig) applyDefaults() {
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.MaxFails <= 0 {
		cfg.MaxFails = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 15 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
}

// replica is one backend server: address plus the live load-balancing and
// health state the picker reads.
type replica struct {
	addr     string
	inflight atomic.Int64
	// consecFails counts failures since the last success; crossing
	// MaxFails flips healthy off. Any success or probe pass resets it.
	consecFails atomic.Int64
	healthy     atomic.Bool

	requests atomic.Int64
	fails    atomic.Int64
}

type replicaGroup struct {
	key      string
	replicas []*replica
}

// ringPoint is one virtual node: a hash position owned by a group.
type ringPoint struct {
	hash  uint64
	group int
}

// hashRing maps vertices to groups via consistent hashing: each group owns
// VNodes points derived from its key alone, so the mapping is invariant
// under group-list permutation and removing a group reassigns exactly the
// arcs that group owned.
type hashRing struct {
	points []ringPoint
}

func newHashRing(keys []string, vnodes int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(keys)*vnodes)}
	for g, key := range keys {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", key, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), group: g})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by group so the ring is a
		// deterministic function of the key set.
		return r.points[i].group < r.points[j].group
	})
	return r
}

// lookup returns the group owning vertex: the first ring point at or after
// the vertex's hash, wrapping at the top.
func (r *hashRing) lookup(vertex int32) int {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(vertex))
	h := fnv.New64a()
	h.Write(b[:])
	hv := h.Sum64()
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hv })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].group
}

// Frontend is the replicated-serving HTTP entry point. See the file
// comment for the routing/failover design.
type Frontend struct {
	cfg    FrontendConfig
	ring   *hashRing
	groups []*replicaGroup
	mux    *http.ServeMux
	client http.Client
	start  time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	quit    chan struct{}
	proberW sync.WaitGroup

	requests atomic.Int64
	retries  atomic.Int64
	shed     atomic.Int64
	errors   atomic.Int64
	reloads  atomic.Int64
	trips    atomic.Int64 // healthy→unhealthy breaker transitions

	reqDur *obs.Histogram // nil when metrics are off
	tracer *obs.Tracer    // nil-safe: nil disables tracing
}

// NewFrontend validates the group topology and starts the health prober.
// Every group must carry at least one replica; group keys must be unique.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	cfg.applyDefaults()
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("serve: frontend needs ≥1 shard group")
	}
	keys := make([]string, len(cfg.Groups))
	seen := map[string]bool{}
	f := &Frontend{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		client: http.Client{Timeout: cfg.ProxyTimeout},
		start:  time.Now(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		quit:   make(chan struct{}),
	}
	for g, spec := range cfg.Groups {
		if spec.Key == "" {
			return nil, fmt.Errorf("serve: frontend group %d has no key", g)
		}
		if seen[spec.Key] {
			return nil, fmt.Errorf("serve: duplicate frontend group key %q", spec.Key)
		}
		seen[spec.Key] = true
		if len(spec.Replicas) == 0 {
			return nil, fmt.Errorf("serve: frontend group %q has no replicas", spec.Key)
		}
		keys[g] = spec.Key
		rg := &replicaGroup{key: spec.Key}
		for _, addr := range spec.Replicas {
			r := &replica{addr: normalizeAddr(addr)}
			r.healthy.Store(true)
			rg.replicas = append(rg.replicas, r)
		}
		f.groups = append(f.groups, rg)
	}
	f.ring = newHashRing(keys, cfg.VNodes)
	f.tracer = cfg.Tracer
	f.mux.HandleFunc("/predict", f.handleProxy)
	f.mux.HandleFunc("/embed", f.handleProxy)
	f.mux.HandleFunc("/reload", f.handleReload)
	f.mux.HandleFunc("/stats", f.handleStats)
	f.mux.HandleFunc("/healthz", f.handleHealthz)
	// Both handlers are nil-safe: with the plane off they serve 404.
	f.mux.HandleFunc("/metrics", cfg.Metrics.Handler())
	f.mux.HandleFunc("/debug/trace/recent", cfg.Tracer.Handler())
	if cfg.Metrics != nil {
		f.registerMetrics(cfg.Metrics)
	}
	f.proberW.Add(1)
	go f.probe()
	return f, nil
}

// handleHealthz answers the liveness probe with build info and topology.
func (f *Frontend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	bi := obs.ReadBuildInfo()
	writeJSON(w, Healthz{
		Status: "ok", Role: "frontend",
		Module: bi.Module, ModuleVersion: bi.ModuleVersion, GoVersion: bi.GoVersion,
		Rank: -1, Shards: 0, Groups: len(f.groups),
	})
}

// registerMetrics wires the frontend counters into the registry as
// scrape-time funcs plus the one request-duration histogram.
func (f *Frontend) registerMetrics(reg *obs.Registry) {
	f.reqDur = reg.Histogram("distgnn_frontend_request_duration_seconds",
		"End-to-end proxied request latency at the frontend.")
	counterFn(reg, "distgnn_frontend_requests_total",
		"Requests accepted by the frontend.", f.requests.Load)
	counterFn(reg, "distgnn_frontend_retries_total",
		"Failover attempts beyond the first replica.", f.retries.Load)
	counterFn(reg, "distgnn_frontend_shed_total",
		"Requests shed because every replica was saturated.", f.shed.Load)
	counterFn(reg, "distgnn_frontend_errors_total",
		"Requests no replica could serve.", f.errors.Load)
	counterFn(reg, "distgnn_frontend_reloads_total",
		"Fleet-wide checkpoint reloads applied.", f.reloads.Load)
	counterFn(reg, "distgnn_frontend_breaker_trips_total",
		"Replica healthy-to-unhealthy breaker transitions.", f.trips.Load)
}

func normalizeAddr(addr string) string {
	if !bytes.Contains([]byte(addr), []byte("://")) {
		return "http://" + addr
	}
	return addr
}

// Handler returns the frontend's HTTP handler.
func (f *Frontend) Handler() http.Handler { return f.mux }

// Close stops the health prober.
func (f *Frontend) Close() {
	close(f.quit)
	f.proberW.Wait()
}

// GroupFor returns the shard group index the consistent hash assigns to
// vertex (exported for the assignment-invariance property tests).
func (f *Frontend) GroupFor(vertex int32) int { return f.ring.lookup(vertex) }

// pickOrder returns the replica indexes of group g in attempt order:
// power-of-two-choices among the healthy replicas by in-flight depth
// first, then every remaining replica as failover candidates. When no
// replica is healthy all are candidates — a request is a better health
// probe than an error page.
func (f *Frontend) pickOrder(g *replicaGroup) []int {
	healthy := make([]int, 0, len(g.replicas))
	rest := make([]int, 0, len(g.replicas))
	for i, r := range g.replicas {
		if r.healthy.Load() {
			healthy = append(healthy, i)
		} else {
			rest = append(rest, i)
		}
	}
	pool := healthy
	if len(pool) == 0 {
		pool, rest = rest, nil
	}
	var first int
	switch len(pool) {
	case 1:
		first = pool[0]
	default:
		f.rngMu.Lock()
		i := pool[f.rng.Intn(len(pool))]
		j := pool[f.rng.Intn(len(pool))]
		for j == i && len(pool) > 1 {
			j = pool[f.rng.Intn(len(pool))]
		}
		f.rngMu.Unlock()
		first = i
		if g.replicas[j].inflight.Load() < g.replicas[i].inflight.Load() {
			first = j
		}
	}
	order := []int{first}
	for _, i := range pool {
		if i != first {
			order = append(order, i)
		}
	}
	return append(order, rest...)
}

// markOK records a successful backend exchange.
func (f *Frontend) markOK(r *replica) {
	r.consecFails.Store(0)
	r.healthy.Store(true)
}

// markFail records a failed exchange; crossing MaxFails consecutive
// failures marks the replica unhealthy until the prober restores it. Only
// the healthy→unhealthy transition counts as a breaker trip.
func (f *Frontend) markFail(r *replica) {
	r.fails.Add(1)
	if r.consecFails.Add(1) >= int64(f.cfg.MaxFails) {
		if r.healthy.CompareAndSwap(true, false) {
			f.trips.Add(1)
		}
	}
}

// handleProxy serves /predict and /embed: consistent-hash the vertex to
// its group, then walk the P2C attempt order until a replica answers. The
// backend response is fully buffered before any byte reaches the client,
// so a replica dying mid-response is retried instead of truncating.
func (f *Frontend) handleProxy(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	f.requests.Add(1)
	raw := r.URL.Query().Get("vertex")
	if raw == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing ?vertex= parameter"))
		return
	}
	v64, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad vertex %q: %v", raw, err))
		return
	}
	g := f.groups[f.ring.lookup(int32(v64))]

	// The frontend is the fleet entry point: mint the trace ID here (or
	// adopt one the client sent) so every hop downstream — replica, owner
	// rank, halo peers — attributes its spans to the same request.
	tc := f.traceCtx(r)

	var lastErr error
	sawShed := false
	for attempt, idx := range f.pickOrder(g) {
		if attempt > 0 {
			f.retries.Add(1)
		}
		rep := g.replicas[idx]
		stop := tc.StartSpan(fmt.Sprintf("attempt%d_%s", attempt, rep.addr))
		status, header, body, err := f.tryReplica(rep, r, tc)
		stop()
		if err != nil {
			f.markFail(rep)
			lastErr = err
			continue
		}
		if status == http.StatusTooManyRequests {
			// Load shedding is the admission controller speaking, not a
			// sick replica: try a sibling, don't count it against health.
			sawShed = true
			lastErr = fmt.Errorf("replica %s saturated", rep.addr)
			continue
		}
		if status >= 500 {
			f.markFail(rep)
			lastErr = fmt.Errorf("replica %s returned %d", rep.addr, status)
			continue
		}
		f.markOK(rep)
		if ct := header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		if id := tc.ID(); id != 0 {
			w.Header().Set(obs.TraceHeader, obs.FormatTraceID(id))
		}
		w.WriteHeader(status)
		if _, err := w.Write(body); err != nil {
			log.Printf("serve: frontend response write: %v", err)
		}
		f.finishRequest(tc, r, int32(v64), status)
		return
	}
	if sawShed {
		// Every live replica shed: propagate the backpressure.
		f.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("all replicas of group %s saturated: %v", g.key, lastErr))
		f.finishRequest(tc, r, int32(v64), http.StatusTooManyRequests)
		return
	}
	f.errors.Add(1)
	httpError(w, http.StatusBadGateway,
		fmt.Errorf("no replica of group %s could serve the request: %v", g.key, lastErr))
	f.finishRequest(tc, r, int32(v64), http.StatusBadGateway)
}

// traceCtx opens the frontend's per-request trace context (nil when the
// obs plane is fully off).
func (f *Frontend) traceCtx(r *http.Request) *obs.TraceCtx {
	if f.reqDur == nil && !f.tracer.Enabled() {
		return nil
	}
	var id uint64
	if f.tracer.Enabled() {
		if hid, ok := obs.ParseTraceID(r.Header.Get(obs.TraceHeader)); ok {
			id = hid
		} else {
			id = obs.NewTraceID()
		}
	}
	return obs.NewTraceCtx(id)
}

// finishRequest closes out one proxied request's observability.
func (f *Frontend) finishRequest(tc *obs.TraceCtx, r *http.Request, vertex int32, status int) {
	if tc == nil {
		return
	}
	f.reqDur.Observe(time.Since(tc.Start()))
	f.tracer.Finish(tc, strings.TrimPrefix(r.URL.Path, "/"), int64(vertex), status)
}

// tryReplica performs one fully-buffered exchange with a backend,
// propagating the trace ID when one is live.
func (f *Frontend) tryReplica(rep *replica, r *http.Request, tc *obs.TraceCtx) (int, http.Header, []byte, error) {
	target := proxyURL(rep.addr, r)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	if id := tc.ID(); id != 0 {
		req.Header.Set(obs.TraceHeader, obs.FormatTraceID(id))
	}
	rep.requests.Add(1)
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		// Died mid-response: report as a transport failure so the caller
		// retries a sibling — no byte has reached the client yet.
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

// proxyURL rebuilds the inbound request's path+query against a backend
// address (url.URL assembly: an empty query stays empty).
func proxyURL(addr string, r *http.Request) string {
	base, err := url.Parse(addr)
	if err != nil {
		return addr + r.URL.Path
	}
	target := url.URL{
		Scheme:   base.Scheme,
		Host:     base.Host,
		Path:     r.URL.Path,
		RawQuery: r.URL.RawQuery,
	}
	return target.String()
}

// handleReload fans POST /reload out to every replica of every group; the
// fleet flips only if every replica accepts, and the per-replica outcomes
// are reported either way. The request body (a checkpoint, when no
// ?checkpoint= path is given) is buffered once and replayed per replica.
func (f *Frontend) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST /reload"))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	type outcome struct {
		Group   string `json:"group"`
		Replica string `json:"replica"`
		Status  int    `json:"status"`
		Error   string `json:"error,omitempty"`
	}
	var (
		mu       sync.Mutex
		results  []outcome
		failures int
		wg       sync.WaitGroup
	)
	for _, g := range f.groups {
		for _, rep := range g.replicas {
			wg.Add(1)
			go func(key string, rep *replica) {
				defer wg.Done()
				out := outcome{Group: key, Replica: rep.addr}
				req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
					proxyURL(rep.addr, r), bytes.NewReader(body))
				if err == nil {
					var resp *http.Response
					resp, err = f.client.Do(req)
					if err == nil {
						rb, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						out.Status = resp.StatusCode
						if resp.StatusCode != http.StatusOK {
							out.Error = string(bytes.TrimSpace(rb))
						}
					}
				}
				if err != nil {
					out.Error = err.Error()
				}
				mu.Lock()
				if out.Status != http.StatusOK {
					failures++
				}
				results = append(results, out)
				mu.Unlock()
			}(g.key, rep)
		}
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool {
		if results[i].Group != results[j].Group {
			return results[i].Group < results[j].Group
		}
		return results[i].Replica < results[j].Replica
	})
	if failures > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		writeJSON(&statusPassthrough{w: w}, map[string]any{"reloaded": false, "replicas": results})
		return
	}
	f.reloads.Add(1)
	writeJSON(w, map[string]any{"reloaded": true, "replicas": results})
}

// statusPassthrough suppresses writeJSON's implicit WriteHeader(200) after
// an explicit error status has been written.
type statusPassthrough struct{ w http.ResponseWriter }

func (s *statusPassthrough) Header() http.Header         { return s.w.Header() }
func (s *statusPassthrough) Write(b []byte) (int, error) { return s.w.Write(b) }
func (s *statusPassthrough) WriteHeader(int)             {}

// probe restores unhealthy replicas: a background /healthz sweep every
// ProbeInterval. Healthy replicas are left alone — their state is already
// maintained passively by live traffic.
func (f *Frontend) probe() {
	defer f.proberW.Done()
	tick := time.NewTicker(f.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.quit:
			return
		case <-tick.C:
		}
		for _, g := range f.groups {
			for _, rep := range g.replicas {
				if rep.healthy.Load() {
					continue
				}
				resp, err := f.client.Get(rep.addr + "/healthz")
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					f.markOK(rep)
				}
			}
		}
	}
}

// ReplicaStats is one backend's block in the frontend /stats payload.
type ReplicaStats struct {
	Addr             string `json:"addr"`
	Healthy          bool   `json:"healthy"`
	Inflight         int64  `json:"inflight"`
	ConsecutiveFails int64  `json:"consecutive_fails"`
	Requests         int64  `json:"requests"`
	Fails            int64  `json:"fails"`
}

// GroupStats is one shard group's block in the frontend /stats payload.
type GroupStats struct {
	Key      string         `json:"key"`
	Replicas []ReplicaStats `json:"replicas"`
}

// FrontendStats is the frontend /stats payload.
type FrontendStats struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Groups        []GroupStats `json:"groups"`
	Requests      int64        `json:"requests"`
	Retries       int64        `json:"retries"`
	Shed          int64        `json:"shed"`
	Errors        int64        `json:"errors"`
	Reloads       int64        `json:"reloads"`
	// BreakerTrips counts replica healthy→unhealthy transitions.
	BreakerTrips int64 `json:"breaker_trips"`
}

// StatsSnapshot returns the same snapshot /stats serves.
func (f *Frontend) StatsSnapshot() FrontendStats {
	st := FrontendStats{
		UptimeSeconds: time.Since(f.start).Seconds(),
		Requests:      f.requests.Load(),
		Retries:       f.retries.Load(),
		Shed:          f.shed.Load(),
		Errors:        f.errors.Load(),
		Reloads:       f.reloads.Load(),
		BreakerTrips:  f.trips.Load(),
	}
	for _, g := range f.groups {
		gs := GroupStats{Key: g.key}
		for _, rep := range g.replicas {
			gs.Replicas = append(gs.Replicas, ReplicaStats{
				Addr:             rep.addr,
				Healthy:          rep.healthy.Load(),
				Inflight:         rep.inflight.Load(),
				ConsecutiveFails: rep.consecFails.Load(),
				Requests:         rep.requests.Load(),
				Fails:            rep.fails.Load(),
			})
		}
		st.Groups = append(st.Groups, gs)
	}
	return st
}

func (f *Frontend) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	writeJSON(w, f.StatsSnapshot())
}
