package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/train"
)

// TestHashRingPermutationInvariant is the assignment property test: the
// vertex→group mapping is a function of the group KEYS only, so permuting
// the group list must not move a single vertex.
func TestHashRingPermutationInvariant(t *testing.T) {
	keys := []string{"group-0", "group-1", "group-2", "group-3"}
	ref := newHashRing(keys, 64)
	const vertices = 20000
	want := make([]string, vertices)
	for v := 0; v < vertices; v++ {
		want[v] = keys[ref.lookup(int32(v))]
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		shuffled := append([]string(nil), keys...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := newHashRing(shuffled, 64)
		for v := 0; v < vertices; v++ {
			if got := shuffled[r.lookup(int32(v))]; got != want[v] {
				t.Fatalf("trial %d (%v): vertex %d moved %s -> %s", trial, shuffled, v, want[v], got)
			}
		}
	}
}

// TestHashRingMinimalMovementOnRemoval pins consistent hashing's point:
// removing one of N nodes moves EXACTLY the vertices that node owned (no
// collateral reshuffling), and that set is ~1/N of the space.
func TestHashRingMinimalMovementOnRemoval(t *testing.T) {
	keys := []string{"group-0", "group-1", "group-2", "group-3"}
	const vertices = 20000
	before := newHashRing(keys, 128)
	for drop := range keys {
		var kept []string
		for i, k := range keys {
			if i != drop {
				kept = append(kept, k)
			}
		}
		after := newHashRing(kept, 128)
		moved := 0
		for v := 0; v < vertices; v++ {
			was := keys[before.lookup(int32(v))]
			now := kept[after.lookup(int32(v))]
			if was == keys[drop] {
				moved++
				continue // had to move: its owner is gone
			}
			if was != now {
				t.Fatalf("vertex %d moved %s -> %s though %s was not removed",
					v, was, now, was)
			}
		}
		// The moved set is the removed node's share: ~1/N, well under the
		// 1/R worst-case budget with a little vnode-imbalance slack.
		if frac := float64(moved) / vertices; frac > 1.5/float64(len(keys)) {
			t.Fatalf("removing %s moved %.1f%% of vertices (budget %.1f%%)",
				keys[drop], 100*frac, 150.0/float64(len(keys)))
		}
	}
}

// TestFrontendPickOrderHealthFirst pins the picker invariants: an unhealthy
// replica is never attempted before every healthy one; power-of-two-choices
// prefers the less-loaded of its two candidates; and with nothing healthy,
// every replica is still a candidate.
func TestFrontendPickOrderHealthFirst(t *testing.T) {
	f, err := NewFrontend(FrontendConfig{Groups: []GroupSpec{
		{Key: "g0", Replicas: []string{"a:1", "b:2", "c:3", "d:4"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g := f.groups[0]

	g.replicas[1].healthy.Store(false)
	g.replicas[3].healthy.Store(false)
	for trial := 0; trial < 200; trial++ {
		order := f.pickOrder(g)
		if len(order) != len(g.replicas) {
			t.Fatalf("order %v dropped replicas", order)
		}
		seenUnhealthy := false
		for _, i := range order {
			if !g.replicas[i].healthy.Load() {
				seenUnhealthy = true
			} else if seenUnhealthy {
				t.Fatalf("order %v places healthy replica %d after an unhealthy one", order, i)
			}
		}
	}

	// P2C by depth: with replica 0 heavily loaded, replica 2 (the only
	// other healthy one) must win every two-candidate comparison.
	g.replicas[0].inflight.Store(100)
	wins := 0
	for trial := 0; trial < 200; trial++ {
		if f.pickOrder(g)[0] == 2 {
			wins++
		}
	}
	if wins != 200 {
		t.Fatalf("idle healthy replica won %d/200 picks against a loaded one", wins)
	}

	// All unhealthy: requests still go somewhere (live probes beat errors).
	for _, r := range g.replicas {
		r.healthy.Store(false)
	}
	if order := f.pickOrder(g); len(order) != len(g.replicas) {
		t.Fatalf("all-unhealthy order %v must still cover every replica", order)
	}
}

// TestFrontendRejectsMisconfiguration pins the fail-fast contract.
func TestFrontendRejectsMisconfiguration(t *testing.T) {
	cases := []FrontendConfig{
		{},
		{Groups: []GroupSpec{{Key: "", Replicas: []string{"a:1"}}}},
		{Groups: []GroupSpec{{Key: "g", Replicas: nil}}},
		{Groups: []GroupSpec{{Key: "g", Replicas: []string{"a:1"}}, {Key: "g", Replicas: []string{"b:2"}}}},
	}
	for i, cfg := range cases {
		if _, err := NewFrontend(cfg); err == nil {
			t.Fatalf("case %d: misconfiguration accepted", i)
		}
	}
}

// stubBackend is a scriptable replica for frontend unit tests.
type stubBackend struct {
	ts      *httptest.Server
	name    string
	hits    atomic.Int64
	reloads atomic.Int64
	mode    atomic.Int32 // 0 ok, 1 shed(429), 2 fail(500), 3 healthzDown
}

func newStubBackend(name string) *stubBackend {
	b := &stubBackend{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if b.mode.Load() == 3 {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if b.mode.Load() != 0 {
			http.Error(w, "reload refused", http.StatusUnprocessableEntity)
			return
		}
		b.reloads.Add(1)
		fmt.Fprintf(w, `{"reloaded":true,"body_bytes":%d}`, len(body))
	})
	handle := func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		switch b.mode.Load() {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
		case 2, 3:
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
		default:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"served_by":%q,"vertex":%s}`, b.name, r.URL.Query().Get("vertex"))
		}
	}
	mux.HandleFunc("/predict", handle)
	mux.HandleFunc("/embed", handle)
	b.ts = httptest.NewServer(mux)
	return b
}

func stubFrontend(t *testing.T, probe time.Duration, backends ...*stubBackend) *Frontend {
	t.Helper()
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.ts.URL
	}
	f, err := NewFrontend(FrontendConfig{
		Groups:        []GroupSpec{{Key: "group-0", Replicas: addrs}},
		MaxFails:      2,
		ProbeInterval: probe,
		ProxyTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func frontendGet(t *testing.T, f *Frontend, path string) (int, []byte) {
	t.Helper()
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestFrontendFailoverKilledReplica is the failover pin: with one of two
// replicas hard-killed, every request still succeeds via the survivor, the
// dead replica is marked unhealthy after MaxFails consecutive errors, and
// once unhealthy it stops being attempted at all.
func TestFrontendFailoverKilledReplica(t *testing.T) {
	alive, dead := newStubBackend("alive"), newStubBackend("dead")
	defer alive.ts.Close()
	f := stubFrontend(t, time.Hour, alive, dead) // prober effectively off
	defer f.Close()
	dead.ts.Close() // SIGKILL stand-in: connections refused from now on

	ts := httptest.NewServer(f.Handler())
	defer ts.Close()
	for i := 0; i < 40; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/predict?vertex=%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s (killed replica must not surface errors)",
				i, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"served_by":"alive"`) {
			t.Fatalf("request %d: unexpected responder: %s", i, body)
		}
	}
	st := f.StatsSnapshot()
	if st.Errors != 0 {
		t.Fatalf("frontend surfaced %d errors with a live replica available", st.Errors)
	}
	if st.Retries == 0 {
		t.Fatal("no retries recorded — the dead replica was never even tried?")
	}
	var deadStats *ReplicaStats
	for i := range st.Groups[0].Replicas {
		if st.Groups[0].Replicas[i].Addr == dead.ts.URL {
			deadStats = &st.Groups[0].Replicas[i]
		}
	}
	if deadStats == nil || deadStats.Healthy {
		t.Fatalf("killed replica still marked healthy: %+v", st.Groups[0])
	}
	// Unhealthy replicas get no traffic while a healthy sibling exists:
	// attempts stop growing once marked (MaxFails=2, so ≤ a handful).
	if deadStats.Requests > 10 {
		t.Fatalf("unhealthy replica kept receiving traffic: %d attempts", deadStats.Requests)
	}
}

// TestFrontendShedPropagation pins the saturation contract: a shedding
// replica is retried on a sibling (429 is backpressure, not sickness — it
// must not trip the health breaker), and only when EVERY replica sheds does
// the client see 429 + Retry-After.
func TestFrontendShedPropagation(t *testing.T) {
	b0, b1 := newStubBackend("b0"), newStubBackend("b1")
	defer b0.ts.Close()
	defer b1.ts.Close()
	f := stubFrontend(t, time.Hour, b0, b1)
	defer f.Close()

	b0.mode.Store(1) // b0 sheds, b1 healthy: all requests must succeed
	for i := 0; i < 20; i++ {
		status, body := frontendGet(t, f, fmt.Sprintf("/predict?vertex=%d", i))
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s (one shedding replica must not 429 the client)",
				i, status, body)
		}
	}
	for _, rs := range f.StatsSnapshot().Groups[0].Replicas {
		if !rs.Healthy {
			t.Fatalf("shedding replica %s tripped the health breaker: %+v", rs.Addr, rs)
		}
	}

	b1.mode.Store(1) // now everyone sheds
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/predict?vertex=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all replicas shedding: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if f.StatsSnapshot().Shed == 0 {
		t.Fatal("shed counter not incremented")
	}
}

// TestFrontendProbeRestoresHealth: a replica that failed its way to
// unhealthy comes back automatically once /healthz answers again.
func TestFrontendProbeRestoresHealth(t *testing.T) {
	b0, b1 := newStubBackend("b0"), newStubBackend("b1")
	defer b0.ts.Close()
	defer b1.ts.Close()
	f := stubFrontend(t, 10*time.Millisecond, b0, b1)
	defer f.Close()

	// Mode 3 fails both /predict (500) and /healthz (503): the replica
	// must trip the breaker and STAY down — mode 2 alone races the
	// prober, whose /healthz succeeds and flips it straight back.
	b0.mode.Store(3)
	for i := 0; i < 10; i++ {
		frontendGet(t, f, fmt.Sprintf("/predict?vertex=%d", i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if !replicaHealthy(f, b0.ts.URL) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failing replica never marked unhealthy")
		}
		frontendGet(t, f, "/predict?vertex=1")
	}

	b0.mode.Store(0) // recovered: prober must restore it
	deadline = time.Now().Add(5 * time.Second)
	for !replicaHealthy(f, b0.ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("prober never restored the recovered replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func replicaHealthy(f *Frontend, addr string) bool {
	for _, rs := range f.StatsSnapshot().Groups[0].Replicas {
		if rs.Addr == addr {
			return rs.Healthy
		}
	}
	return false
}

// TestFrontendReloadFanOut: POST /reload reaches every replica of every
// group with the body replayed to each; one refusing replica fails the
// fleet flip and the per-replica outcomes say who.
func TestFrontendReloadFanOut(t *testing.T) {
	backends := []*stubBackend{newStubBackend("r0"), newStubBackend("r1"), newStubBackend("r2")}
	for _, b := range backends {
		defer b.ts.Close()
	}
	f, err := NewFrontend(FrontendConfig{
		Groups: []GroupSpec{
			{Key: "group-0", Replicas: []string{backends[0].ts.URL, backends[1].ts.URL}},
			{Key: "group-1", Replicas: []string{backends[2].ts.URL}},
		},
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/reload"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /reload: status %d, want 405", resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/reload", "application/octet-stream",
		bytes.NewReader([]byte("checkpoint-bytes")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/reload status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Reloaded bool `json:"reloaded"`
		Replicas []struct {
			Group   string `json:"group"`
			Replica string `json:"replica"`
			Status  int    `json:"status"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad /reload payload %s: %v", body, err)
	}
	if !out.Reloaded || len(out.Replicas) != 3 {
		t.Fatalf("fan-out incomplete: %s", body)
	}
	for _, b := range backends {
		if b.reloads.Load() != 1 {
			t.Fatalf("replica %s saw %d reloads, want 1", b.name, b.reloads.Load())
		}
	}
	if f.StatsSnapshot().Reloads != 1 {
		t.Fatalf("frontend reloads counter %d, want 1", f.StatsSnapshot().Reloads)
	}

	backends[1].mode.Store(2) // one replica refuses: the flip must fail loudly
	resp, err = http.Post(ts.URL+"/reload", "application/octet-stream", bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial reload: status %d, want 502: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"reloaded":false`)) {
		t.Fatalf("partial reload must report reloaded=false: %s", body)
	}
}

// TestServerReloadHotSwap pins the live-rollover contract on a single
// server: the gate (403 without EnableReload), rejection of a broken
// checkpoint with the old model left serving, and an accepted checkpoint
// flipping /predict to the new model's bit-exact logits with zero failed
// requests under concurrent load.
func TestServerReloadHotSwap(t *testing.T) {
	ds, m1, ckptA := trainedSageCheckpoint(t, 16, 2)
	fullA := m1.Forward(ds.Features, false)

	// Second model: same shapes, more training, different weights.
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: 16, NumLayers: 2, Seed: 3},
		Epochs: 6, LR: 0.02, UseAdam: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bufB bytes.Buffer
	if err := nn.WriteParams(&bufB, res.Model.Params()); err != nil {
		t.Fatal(err)
	}
	ckptB := bufB.Bytes()
	fullB := res.Model.Forward(ds.Features, false)
	if err := rowsMatch(fullA.Row(0), fullB.Row(0)); err == nil {
		t.Fatal("fixture models are identical — reload test would prove nothing")
	}

	// Gate: reload must be opt-in.
	gated, err := New(ds, bytes.NewReader(ckptA), Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gated.Handler())
	resp, err := http.Post(ts.URL+"/reload", "application/octet-stream", bytes.NewReader(ckptB))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("reload without EnableReload: status %d, want 403", resp.StatusCode)
	}
	ts.Close()
	gated.Close()

	srv, err := New(ds, bytes.NewReader(ckptA), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		EmbedCacheBytes: 1 << 20, EnableReload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts = httptest.NewServer(srv.Handler())
	defer ts.Close()

	probe := []int32{0, 7, int32(ds.G.NumVertices - 1)}
	fetch := func(v int32) []float32 {
		resp, err := http.Get(fmt.Sprintf("%s/predict?vertex=%d", ts.URL, v))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("vertex %d: status %d: %s", v, resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr.Logits
	}
	for _, v := range probe {
		bitsEqual(t, fetch(v), fullA.Row(int(v)), fmt.Sprintf("pre-reload vertex %d", v))
	}

	// A truncated checkpoint must be rejected — and the old model must
	// keep serving, embedding cache intact.
	resp, err = http.Post(ts.URL+"/reload", "application/octet-stream", bytes.NewReader(ckptB[:len(ckptB)/2]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("broken checkpoint: status %d, want 422", resp.StatusCode)
	}
	for _, v := range probe {
		bitsEqual(t, fetch(v), fullA.Row(int(v)), fmt.Sprintf("post-rejected-reload vertex %d", v))
	}

	// Live flip under load: no request may fail while the swap happens,
	// and every answer is bit-exact under model A or model B — never a mix
	// within a row.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	loadErrs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := (w*31 + i*3) % ds.G.NumVertices
				resp, err := http.Get(fmt.Sprintf("%s/predict?vertex=%d", ts.URL, v))
				if err != nil {
					loadErrs <- err
					return
				}
				var pr PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					loadErrs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					loadErrs <- fmt.Errorf("vertex %d: status %d mid-reload", v, resp.StatusCode)
					return
				}
				if rowsMatch(pr.Logits, fullA.Row(v)) != nil && rowsMatch(pr.Logits, fullB.Row(v)) != nil {
					loadErrs <- fmt.Errorf("vertex %d: logits match neither model across the swap", v)
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	resp, err = http.Post(ts.URL+"/reload", "application/octet-stream", bytes.NewReader(ckptB))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload failed: %d: %s", resp.StatusCode, body)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(loadErrs)
	for err := range loadErrs {
		t.Fatal(err)
	}

	// Post-flip: every vertex serves model B bits (embedding cache was
	// reset at the flip — no stale model-A rows).
	for _, v := range probe {
		bitsEqual(t, fetch(v), fullB.Row(int(v)), fmt.Sprintf("post-reload vertex %d", v))
	}
	if got := srv.StatsSnapshot().Reloads; got != 1 {
		t.Fatalf("reloads stat %d, want 1", got)
	}
}

// TestReplicatedServingConformance extends the bit-identity acceptance pin
// over the frontend path: for 1/2/4 shards × 1/2 replicas, exact-mode
// /predict logits through the frontend are bit-identical to the full-graph
// forward pass — including after a whole replica fleet is killed, and
// across a fleet-wide /reload to a new checkpoint.
func TestReplicatedServingConformance(t *testing.T) {
	ds, m, ckpt := trainedSageCheckpoint(t, 16, 2)
	full := m.Forward(ds.Features, false)
	cfg := Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2, EnableReload: true}

	// The rollover fixture: same shapes, different weights.
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: 16, NumLayers: 2, Seed: 3},
		Epochs: 6, LR: 0.02, UseAdam: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bufB bytes.Buffer
	if err := nn.WriteParams(&bufB, res.Model.Params()); err != nil {
		t.Fatal(err)
	}
	ckptB := bufB.Bytes()
	fullB := res.Model.Forward(ds.Features, false)

	probe := []int32{0, 1, 5, 17, int32(ds.G.NumVertices / 2), int32(ds.G.NumVertices - 1)}
	for _, shards := range []int{1, 2, 4} {
		for _, replicas := range []int{1, 2} {
			t.Run(fmt.Sprintf("%d-shard/%d-replica", shards, replicas), func(t *testing.T) {
				fleets := make([]*shardFleet, replicas)
				for rep := range fleets {
					fleets[rep] = newShardFleet(t, ds, ckpt, cfg, shards, "inproc", true, 1<<20)
					defer fleets[rep].close()
				}
				groups := make([]GroupSpec, shards)
				for g := range groups {
					groups[g].Key = fmt.Sprintf("group-%d", g)
					for rep := 0; rep < replicas; rep++ {
						groups[g].Replicas = append(groups[g].Replicas, fleets[rep].addrs[g])
					}
				}
				f, err := NewFrontend(FrontendConfig{Groups: groups, MaxFails: 2, ProbeInterval: time.Hour})
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				fts := httptest.NewServer(f.Handler())
				defer fts.Close()

				check := func(ref func(int) []float32, what string) {
					for _, v := range probe {
						resp, err := http.Get(fmt.Sprintf("%s/predict?vertex=%d", fts.URL, v))
						if err != nil {
							t.Fatalf("%s vertex %d: %v", what, v, err)
						}
						body, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							t.Fatalf("%s vertex %d: status %d: %s", what, v, resp.StatusCode, body)
						}
						var pr PredictResponse
						if err := json.Unmarshal(body, &pr); err != nil {
							t.Fatal(err)
						}
						bitsEqual(t, pr.Logits, ref(int(v)), fmt.Sprintf("%s vertex %d", what, v))
					}
				}
				check(full.Row, "frontend path")

				if replicas > 1 {
					// Kill fleet 0 outright: the survivors must keep the
					// answers bit-identical and error-free.
					for _, hs := range fleets[0].https {
						hs.Close()
					}
					check(full.Row, "after replica kill")
					if st := f.StatsSnapshot(); st.Errors != 0 {
						t.Fatalf("replica kill surfaced %d frontend errors", st.Errors)
					}

					// Fleet-wide rollover through the frontend: dead
					// replicas fail the flip (they're part of the fleet),
					// so this runs against the surviving topology only.
					survivors := make([]GroupSpec, shards)
					for g := range survivors {
						survivors[g] = GroupSpec{
							Key:      fmt.Sprintf("group-%d", g),
							Replicas: []string{fleets[1].addrs[g]},
						}
					}
					f2, err := NewFrontend(FrontendConfig{Groups: survivors, ProbeInterval: time.Hour})
					if err != nil {
						t.Fatal(err)
					}
					defer f2.Close()
					fts2 := httptest.NewServer(f2.Handler())
					defer fts2.Close()
					resp, err := http.Post(fts2.URL+"/reload", "application/octet-stream", bytes.NewReader(ckptB))
					if err != nil {
						t.Fatal(err)
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("fleet reload: status %d: %s", resp.StatusCode, body)
					}
					// Post-rollover bit-identity to the NEW model, through
					// the surviving frontend topology.
					checkB := func() {
						for _, v := range probe {
							resp, err := http.Get(fmt.Sprintf("%s/predict?vertex=%d", fts2.URL, v))
							if err != nil {
								t.Fatal(err)
							}
							var pr PredictResponse
							err = json.NewDecoder(resp.Body).Decode(&pr)
							resp.Body.Close()
							if err != nil {
								t.Fatal(err)
							}
							bitsEqual(t, pr.Logits, fullB.Row(int(v)),
								fmt.Sprintf("post-rollover vertex %d", v))
						}
					}
					checkB()
				} else {
					// R=1: rollover through the primary frontend.
					resp, err := http.Post(fts.URL+"/reload", "application/octet-stream", bytes.NewReader(ckptB))
					if err != nil {
						t.Fatal(err)
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("fleet reload: status %d: %s", resp.StatusCode, body)
					}
					check(fullB.Row, "post-rollover frontend path")
				}
			})
		}
	}
}
