package serve

import (
	"bytes"
	"testing"

	"distgnn/internal/nn"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// TestFusedExactBitIdenticalToGatheredExact pins the serving-side fusion
// contract: with the feature cache disabled the engine takes the fused
// gather→aggregate path, and its logits are bit-identical to both the
// cache-enabled gathered path and a direct full-graph Forward.
func TestFusedExactBitIdenticalToGatheredExact(t *testing.T) {
	ds, m, ckpt := trainedSageCheckpoint(t, 16, 2)
	full := m.Forward(ds.Features, false)

	fused, err := NewEngine(ds, ModelSpec{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fused.fusedExact() {
		t.Fatal("cache-disabled exact GraphSAGE engine must take the fused path")
	}
	gathered, err := NewEngine(ds, ModelSpec{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2}, nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if gathered.fusedExact() {
		t.Fatal("cache-enabled engine must keep the gathered path (cache hits need the matrix)")
	}
	for _, e := range []*Engine{fused, gathered} {
		if err := nn.ReadParams(bytes.NewReader(ckpt), e.Params()); err != nil {
			t.Fatal(err)
		}
	}

	batch := []int32{0, 3, 9, 42, int32(ds.G.NumVertices - 1), 3}
	outF, err := fused.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	outG, err := gathered.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range batch {
		bitsEqual(t, outF.Row(i), outG.Row(i), "fused vs gathered")
		bitsEqual(t, outF.Row(i), full.Row(int(v)), "fused vs full Forward")
	}

	// The frontier counter must advance on the fused path even though no
	// gathered matrix exists to count rows of.
	if got := fused.Stats().InputFrontierVertices; got <= 0 {
		t.Fatalf("fused path did not count frontier vertices: %d", got)
	}
}

// TestBF16EngineMatchesRoundedFeatures: a bf16 engine serves exactly what a
// fp32 engine over the once-rounded feature matrix serves — on both the
// fused (no cache) and gathered (cache) paths.
func TestBF16EngineMatchesRoundedFeatures(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)

	spec := ModelSpec{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2}
	bfSpec := spec
	bfSpec.FeatPrecision = quant.BF16

	// Reference engine: fp32 over the rounded matrix (a shallow dataset copy
	// with the features swapped — the graph and labels are shared).
	dsRounded := *ds
	dsRounded.Features = tensor.BF16FromMatrix(ds.Features).ToMatrix()
	ref, err := NewEngine(&dsRounded, spec, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, cacheBytes := range []int64{0, 1 << 20} {
		eng, err := NewEngine(ds, bfSpec, nil, cacheBytes)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []*Engine{ref, eng} {
			if err := nn.ReadParams(bytes.NewReader(ckpt), e.Params()); err != nil {
				t.Fatal(err)
			}
		}
		batch := []int32{1, 7, 19, 64}
		want, err := ref.Infer(batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Infer(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			bitsEqual(t, got.Row(i), want.Row(i), "bf16 engine vs rounded-fp32 engine")
		}
	}

	// fp16 is a wire format, not a feature store.
	badSpec := spec
	badSpec.FeatPrecision = quant.FP16
	if _, err := NewEngine(ds, badSpec, nil, 0); err == nil {
		t.Fatal("fp16 feature precision must be rejected")
	}
}
