package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/obs"
)

// metrics.go maps the serving layer onto the obs plane: request/stage
// latency histograms fed from trace spans, scrape-time func metrics over
// the counters the serving structs already keep (so the hot path pays
// nothing beyond the span clock reads), and the shared /healthz payload.

// requireGET guards the read-only endpoints: anything but GET or HEAD is
// answered with 405 and an Allow header.
func requireGET(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET")
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s allows only GET", r.URL.Path))
		return false
	}
	return true
}

// Healthz is the /healthz payload: liveness plus build and fleet identity,
// so a prober (or a human with curl) can tell which binary and which rank
// answered. The replica frontend's health sweep checks only the status
// code, so the payload shape is free to grow.
type Healthz struct {
	Status        string `json:"status"`
	Role          string `json:"role"`
	Module        string `json:"module"`
	ModuleVersion string `json:"module_version"`
	GoVersion     string `json:"go_version"`
	// Rank/Shards identify this process's slice of a sharded fleet
	// (-1/1 for a single-process server, -1/0 for the frontend).
	Rank   int `json:"rank"`
	Shards int `json:"shards"`
	// Groups is the frontend's shard-group count (0 on servers).
	Groups int `json:"groups,omitempty"`
	// Model/Mode describe the serving engine (empty on the frontend).
	Model string `json:"model,omitempty"`
	Mode  string `json:"mode,omitempty"`
}

// serveMetrics holds the histogram legs of the server's /metrics: one
// duration histogram per endpoint and one per pipeline stage, fed by the
// spans a finished request's TraceCtx accumulated.
type serveMetrics struct {
	reqDur map[string]*obs.Histogram
	stage  map[string]*obs.Histogram
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		reqDur: map[string]*obs.Histogram{},
		stage:  map[string]*obs.Histogram{},
	}
	for _, ep := range []string{"predict", "embed", "routed"} {
		m.reqDur[ep] = reg.Histogram(
			obs.Label("distgnn_serve_request_duration_seconds", "endpoint", ep),
			"End-to-end request latency by endpoint.")
	}
	for _, st := range []string{"queue_wait", "sample", "gather", "halo_rtt", "forward", "encode"} {
		m.stage[st] = reg.Histogram(
			obs.Label("distgnn_serve_stage_duration_seconds", "stage", st),
			"Request latency by pipeline stage.")
	}
	return m
}

// observe folds one finished request into the histograms: total duration by
// endpoint, span durations by stage (per-peer halo RTT spans collapse into
// the one halo_rtt series).
func (m *serveMetrics) observe(endpoint string, tc *obs.TraceCtx) {
	if m == nil || tc == nil {
		return
	}
	if h, ok := m.reqDur[endpoint]; ok {
		h.Observe(time.Since(tc.Start()))
	}
	for _, sp := range tc.Spans() {
		name := sp.Name
		if strings.HasPrefix(name, "halo_rtt_rank") {
			name = "halo_rtt"
		}
		if h, ok := m.stage[name]; ok {
			h.Observe(time.Duration(sp.DurUs) * time.Microsecond)
		}
	}
}

// counterFn registers one scrape-time counter over an existing atomic.
func counterFn(reg *obs.Registry, name, help string, fn func() int64) {
	reg.CounterFunc(name, help, func() float64 { return float64(fn()) })
}

func gaugeFn(reg *obs.Registry, name, help string, fn func() int64) {
	reg.GaugeFunc(name, help, func() float64 { return float64(fn()) })
}

// registerCacheMetrics exposes one cache's counters under a shared metric
// family, distinguished by the cache label.
func registerCacheMetrics(reg *obs.Registry, cache string, stats func() CacheStats) {
	counterFn(reg, obs.Label("distgnn_cache_hits_total", "cache", cache),
		"Cache hits by cache.", func() int64 { return stats().Hits })
	counterFn(reg, obs.Label("distgnn_cache_misses_total", "cache", cache),
		"Cache misses by cache.", func() int64 { return stats().Misses })
	counterFn(reg, obs.Label("distgnn_cache_evictions_total", "cache", cache),
		"Cache evictions by cache.", func() int64 { return stats().Evictions })
	gaugeFn(reg, obs.Label("distgnn_cache_entries", "cache", cache),
		"Resident cache entries by cache.", func() int64 { return int64(stats().Entries) })
	gaugeFn(reg, obs.Label("distgnn_cache_used_bytes", "cache", cache),
		"Resident cache bytes by cache.", func() int64 { return stats().UsedBytes })
}

// registerMetrics wires the server's counters into the registry as
// scrape-time funcs. Called once from newServer; shard-mode extras are
// registered by NewShard after the shard state exists.
func (s *Server) registerMetrics(reg *obs.Registry) {
	counterFn(reg, "distgnn_serve_predicts_total",
		"Predict requests served locally.", s.predicts.Load)
	counterFn(reg, "distgnn_serve_embeds_total",
		"Embed requests served locally.", s.embeds.Load)
	counterFn(reg, "distgnn_serve_reloads_total",
		"Checkpoint hot-reloads applied.", s.reloads.Load)

	counterFn(reg, "distgnn_coalescer_requests_total",
		"Requests admitted by the coalescer.", func() int64 { return s.co.Stats().Requests })
	counterFn(reg, "distgnn_coalescer_batches_total",
		"Micro-batches executed.", func() int64 { return s.co.Stats().Batches })
	counterFn(reg, "distgnn_coalescer_dedup_saved_total",
		"Duplicate vertices removed before inference.", func() int64 { return s.co.Stats().DedupSaved })
	counterFn(reg, "distgnn_coalescer_shed_total",
		"Requests shed by admission control (429s).", func() int64 { return s.co.Stats().Shed })
	gaugeFn(reg, "distgnn_coalescer_pending",
		"Admitted-but-unanswered request depth.", func() int64 { return s.co.Stats().Pending })

	counterFn(reg, "distgnn_engine_inferences_total",
		"Engine invocations (one per micro-batch).",
		func() int64 { return s.engine.Load().Stats().Inferences })
	counterFn(reg, "distgnn_engine_seed_vertices_total",
		"Seed vertices inferred.",
		func() int64 { return s.engine.Load().Stats().SeedVertices })
	counterFn(reg, "distgnn_engine_frontier_vertices_total",
		"Input-frontier vertices gathered.",
		func() int64 { return s.engine.Load().Stats().InputFrontierVertices })

	registerCacheMetrics(reg, "embedding", s.emb.Stats)
	registerCacheMetrics(reg, "feature", func() CacheStats { return s.engine.Load().FeatureCacheStats() })
}

// registerShardMetrics adds the shard-mode counters: routing traffic, the
// halo-fetch plane, and transport byte totals by plane when the fabric
// exposes them.
func (s *Server) registerShardMetrics(reg *obs.Registry) {
	st := s.shard
	counterFn(reg, "distgnn_shard_routed_out_total",
		"Requests proxied to their owner rank.", st.routedOut.Load)
	counterFn(reg, "distgnn_shard_routed_in_total",
		"Proxied requests that arrived here.", st.routedIn.Load)
	counterFn(reg, "distgnn_halo_hits_total",
		"Halo lookups served from the remote cache.", func() int64 { return st.fs.Stats().HaloHits })
	counterFn(reg, "distgnn_halo_misses_total",
		"Halo lookups fetched over the fabric.", func() int64 { return st.fs.Stats().HaloMisses })
	counterFn(reg, "distgnn_halo_fetches_total",
		"Halo fetch RPCs issued.", func() int64 { return st.fs.Stats().HaloFetches })
	counterFn(reg, "distgnn_halo_fetched_vertices_total",
		"Vertex rows fetched from peers.", func() int64 { return st.fs.Stats().HaloFetchedVertices })
	counterFn(reg, "distgnn_halo_fetched_bytes_total",
		"Feature bytes fetched from peers.", func() int64 { return st.fs.Stats().HaloFetchedBytes })
	counterFn(reg, "distgnn_halo_served_fetches_total",
		"Fetch RPCs answered for peers.", func() int64 { return st.fs.Stats().PeerServedFetches })
	counterFn(reg, "distgnn_halo_served_vertices_total",
		"Vertex rows served to peers.", func() int64 { return st.fs.Stats().PeerServedVertices })
	counterFn(reg, "distgnn_halo_served_bytes_total",
		"Feature bytes served to peers.", func() int64 { return st.fs.Stats().PeerServedBytes })
	registerCacheMetrics(reg, "remote", func() CacheStats { return st.fs.Stats().RemoteCache })
	if st.net != nil {
		registerNetMetrics(reg, st.net)
	}
}

// registerNetMetrics exposes a transport's payload byte counters.
func registerNetMetrics(reg *obs.Registry, src comm.NetStatsSource) {
	counterFn(reg, "distgnn_net_sent_bytes_total",
		"Payload bytes sent on the comm fabric.", func() int64 { return src.NetStats().SentBytes })
	counterFn(reg, "distgnn_net_recv_bytes_total",
		"Payload bytes received on the comm fabric.", func() int64 { return src.NetStats().RecvBytes })
	counterFn(reg, obs.Label("distgnn_net_plane_sent_bytes_total", "plane", "collective"),
		"Sent payload bytes by traffic plane.", func() int64 { return src.NetStats().CollectiveBytes })
	counterFn(reg, obs.Label("distgnn_net_plane_sent_bytes_total", "plane", "p2p"),
		"Sent payload bytes by traffic plane.", func() int64 { return src.NetStats().P2PBytes })
	counterFn(reg, obs.Label("distgnn_net_plane_sent_bytes_total", "plane", "serve"),
		"Sent payload bytes by traffic plane.", func() int64 { return src.NetStats().ServeBytes })
}
