package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"distgnn/internal/datasets"
	"distgnn/internal/graph"
)

// mutation_conformance_test.go is the tentpole pin: exact-mode serving on
// a mutated graph is bit-identical to a cold server that loaded the
// equivalent rebuilt-from-scratch CSR — across 1/2/4 shards, both
// transports, both architectures, and both before and after the overlay
// is compacted away. The fixture applies update batches through the real
// POST /update path on one entry rank (fan-out to peers rides the comm
// plane), queries between batches so the caches are warm when the next
// invalidation sweep runs, and compares every rank's logits after every
// batch against a reference server built cold on that prefix's graph.

// mutatedDataset clones ds with its graph replaced by a CSR rebuilt from
// scratch over the base edges plus the inserted prefix — what a cold
// process loading the post-mutation graph would hold.
func mutatedDataset(t *testing.T, ds *datasets.Dataset, inserted []graph.Edge) *datasets.Dataset {
	t.Helper()
	edges := append(ds.G.Edges(), inserted...)
	g, err := graph.NewCSR(ds.G.NumVertices, edges)
	if err != nil {
		t.Fatal(err)
	}
	out := *ds
	out.G = g
	return &out
}

// postUpdate drives one batch through POST /update on srv and returns the
// decoded response.
func postUpdate(t *testing.T, srv *Server, batch []graph.Edge) UpdateResponse {
	t.Helper()
	req := UpdateRequest{}
	for _, e := range batch {
		req.Edges = append(req.Edges, [2]int32{e.Src, e.Dst})
	}
	body, _ := json.Marshal(req)
	r := httptest.NewRequest(http.MethodPost, "/update", bytes.NewReader(body))
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("/update status %d: %s", w.Code, w.Body.Bytes())
	}
	var resp UpdateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// mutationBatches draws deterministic insert batches over ds's vertex
// space: edges concentrated around the probe set so the invalidation
// sweep and the cached probe rows actually collide.
func mutationBatches(ds *datasets.Dataset, nBatches, perBatch int) [][]graph.Edge {
	rng := rand.New(rand.NewSource(31))
	n := ds.G.NumVertices
	out := make([][]graph.Edge, nBatches)
	for b := range out {
		batch := make([]graph.Edge, perBatch)
		for i := range batch {
			batch[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		out[b] = batch
	}
	return out
}

// conformanceProbe is the query set: a spread of fixed vertices plus the
// destinations every batch touches (guaranteed-affected rows).
func conformanceProbe(ds *datasets.Dataset, batches [][]graph.Edge) []int32 {
	seen := map[int32]bool{}
	var probe []int32
	add := func(v int32) {
		if !seen[v] {
			seen[v] = true
			probe = append(probe, v)
		}
	}
	for _, v := range []int32{0, 1, 7, int32(ds.G.NumVertices / 2), int32(ds.G.NumVertices - 1)} {
		add(v)
	}
	for _, b := range batches {
		for _, e := range b {
			add(e.Dst)
		}
	}
	return probe
}

// TestMutationConformance is the acceptance pin described above.
func TestMutationConformance(t *testing.T) {
	const (
		nBatches = 3
		perBatch = 5
	)
	for _, arch := range []Arch{ArchGraphSAGE, ArchGAT} {
		ds, _, ckpt, cfg := shardFixture(t, arch)
		batches := mutationBatches(ds, nBatches, perBatch)
		probe := conformanceProbe(ds, batches)

		// One cold reference server per update prefix: refs[b] serves the
		// graph after batches[0..b] rebuilt from scratch.
		refs := make([][][]float32, nBatches)
		var prefix []graph.Edge
		for b := 0; b < nBatches; b++ {
			prefix = append(prefix, batches[b]...)
			refDS := mutatedDataset(t, ds, prefix)
			refSrv, err := New(refDS, bytes.NewReader(ckpt), cfg)
			if err != nil {
				t.Fatal(err)
			}
			out, err := refSrv.Engine().Infer(probe)
			if err != nil {
				t.Fatal(err)
			}
			refs[b] = make([][]float32, len(probe))
			for i := range probe {
				refs[b][i] = append([]float32(nil), out.Row(i)...)
			}
			refSrv.Close()
		}

		mcfg := cfg
		mcfg.EnableUpdates = true
		mcfg.CompactThreshold = -1 // explicit compaction below, so pre/post is deterministic
		mcfg.EmbedCacheBytes = 1 << 20

		for _, transport := range []string{"inproc", "tcp"} {
			for _, shards := range []int{1, 2, 4} {
				name := fmt.Sprintf("%s/%s/%d-shard", arch, transport, shards)
				fleet := newShardFleet(t, ds, ckpt, mcfg, shards, transport, false, 1<<20)

				checkAll := func(stage string, want [][]float32) {
					for r, srv := range fleet.servers {
						out, err := srv.Engine().Infer(probe)
						if err != nil {
							t.Fatalf("%s %s rank %d: %v", name, stage, r, err)
						}
						for i, v := range probe {
							bitsEqual(t, out.Row(i), want[i],
								fmt.Sprintf("%s %s rank %d vertex %d vs cold rebuild", name, stage, r, v))
						}
					}
				}

				for b := 0; b < nBatches; b++ {
					// Warm the caches with the pre-batch graph so the
					// invalidation sweep has stale rows to kill, then apply
					// the batch on the entry rank and re-check every rank.
					resp := postUpdate(t, fleet.servers[0], batches[b])
					if resp.Applied != perBatch {
						t.Fatalf("%s batch %d: applied %d, want %d", name, b, resp.Applied, perBatch)
					}
					if len(resp.Ranks) != shards {
						t.Fatalf("%s batch %d: %d rank acks, want %d", name, b, len(resp.Ranks), shards)
					}
					checkAll(fmt.Sprintf("batch %d (overlay)", b), refs[b])
				}

				// Compact every rank's overlay into a fresh base CSR; the
				// post-compaction bits must not move.
				for r, srv := range fleet.servers {
					pre := srv.upd.mut.Snapshot()
					if pre.OverlayEdges() != nBatches*perBatch {
						t.Fatalf("%s rank %d: overlay holds %d edges, want %d",
							name, r, pre.OverlayEdges(), nBatches*perBatch)
					}
					post := srv.upd.mut.Compact()
					if post.OverlayEdges() != 0 {
						t.Fatalf("%s rank %d: overlay survived compaction", name, r)
					}
				}
				checkAll("post-compaction", refs[nBatches-1])

				// The stream stats must reflect what happened. Every rank
				// applied every batch (fan-out), so the counters agree.
				for r, srv := range fleet.servers {
					str := srv.StatsSnapshot().Stream
					if str == nil {
						t.Fatalf("%s rank %d: no stream stats", name, r)
					}
					if str.Updates != nBatches || str.EdgesApplied != int64(nBatches*perBatch) {
						t.Fatalf("%s rank %d: stream counts %d updates / %d edges, want %d / %d",
							name, r, str.Updates, str.EdgesApplied, nBatches, nBatches*perBatch)
					}
					if str.Compactions != 1 || str.OverlayEdges != 0 {
						t.Fatalf("%s rank %d: %d compactions, overlay %d",
							name, r, str.Compactions, str.OverlayEdges)
					}
				}
				fleet.close()
			}
		}

		// A cold 2-shard fleet on the rebuilt final graph agrees with the
		// mutated fleets (the "cold fleet" form of the acceptance pin).
		finalDS := mutatedDataset(t, ds, prefix)
		cold := newShardFleet(t, finalDS, ckpt, cfg, 2, "inproc", false, 1<<20)
		for r, srv := range cold.servers {
			out, err := srv.Engine().Infer(probe)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range probe {
				bitsEqual(t, out.Row(i), refs[nBatches-1][i],
					fmt.Sprintf("%s cold 2-shard rank %d vertex %d", arch, r, v))
			}
		}
		cold.close()
	}
}
