package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/obs"
)

// healthzGoldenKeys pins the /healthz payload of a serving process (single
// or shard rank): groups is omitted (0 on servers), model/mode are present.
var healthzGoldenKeys = []string{
	"go_version", "mode", "model", "module", "module_version",
	"rank", "role", "shards", "status",
}

// healthzFrontendGoldenKeys pins the frontend's /healthz payload: groups is
// present, model/mode are omitted.
var healthzFrontendGoldenKeys = []string{
	"go_version", "groups", "module", "module_version",
	"rank", "role", "shards", "status",
}

func fetchHealthz(t *testing.T, handler http.Handler) (map[string]any, []string) {
	t.Helper()
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var obj map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return obj, keys
}

// TestHealthzSchemaGolden pins the /healthz schema and identity fields for
// the single-process server, a shard rank, and the replica frontend.
func TestHealthzSchemaGolden(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	cfg := Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2}

	single, err := New(ds, bytes.NewReader(ckpt), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	obj, keys := fetchHealthz(t, single.Handler())
	if !reflect.DeepEqual(keys, healthzGoldenKeys) {
		t.Fatalf("single /healthz schema drifted:\n got %v\nwant %v", keys, healthzGoldenKeys)
	}
	if obj["status"] != "ok" || obj["role"] != "server" {
		t.Fatalf("single /healthz identity: %v", obj)
	}
	if obj["rank"] != float64(-1) || obj["shards"] != float64(1) {
		t.Fatalf("single /healthz fleet identity: rank=%v shards=%v", obj["rank"], obj["shards"])
	}
	if obj["go_version"] == "" || obj["model"] == "" {
		t.Fatalf("single /healthz build/model info missing: %v", obj)
	}

	tr := comm.NewProcTransport(2)
	defer tr.Close()
	shard, err := NewShard(ds, bytes.NewReader(ckpt), cfg, ShardConfig{
		Rank: 1, Shards: 2, Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shard.Close()
	obj, keys = fetchHealthz(t, shard.Handler())
	if !reflect.DeepEqual(keys, healthzGoldenKeys) {
		t.Fatalf("shard /healthz schema drifted:\n got %v\nwant %v", keys, healthzGoldenKeys)
	}
	if obj["rank"] != float64(1) || obj["shards"] != float64(2) {
		t.Fatalf("shard /healthz fleet identity: rank=%v shards=%v", obj["rank"], obj["shards"])
	}

	f, err := NewFrontend(FrontendConfig{
		Groups:        []GroupSpec{{Key: "g0", Replicas: []string{"127.0.0.1:1"}}},
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	obj, keys = fetchHealthz(t, f.Handler())
	if !reflect.DeepEqual(keys, healthzFrontendGoldenKeys) {
		t.Fatalf("frontend /healthz schema drifted:\n got %v\nwant %v", keys, healthzFrontendGoldenKeys)
	}
	if obj["role"] != "frontend" || obj["groups"] != float64(1) {
		t.Fatalf("frontend /healthz identity: %v", obj)
	}
}

// TestReadOnlyEndpointsReject405 pins the method guard: POSTing to any
// read-only endpoint answers 405, and the serve-layer handlers advertise
// the allowed method.
func TestReadOnlyEndpointsReject405(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	srv, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(obs.TracerConfig{Role: "server", Rank: -1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	f, err := NewFrontend(FrontendConfig{
		Groups:        []GroupSpec{{Key: "g0", Replicas: []string{ts.URL}}},
		ProbeInterval: time.Hour,
		Metrics:       obs.NewRegistry(),
		Tracer:        obs.NewTracer(obs.TracerConfig{Role: "frontend", Rank: -1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fts := httptest.NewServer(f.Handler())
	defer fts.Close()

	cases := []struct {
		base, path string
		wantAllow  bool // serve-layer handlers set the Allow header
	}{
		{ts.URL, "/stats", true},
		{ts.URL, "/healthz", true},
		{ts.URL, "/metrics", false},
		{ts.URL, "/debug/trace/recent", false},
		{ts.URL, "/predict?vertex=0", true},
		{ts.URL, "/embed?vertex=0", true},
		{fts.URL, "/stats", true},
		{fts.URL, "/healthz", true},
		{fts.URL, "/metrics", false},
		{fts.URL, "/predict?vertex=0", true},
	}
	for _, tc := range cases {
		resp, err := http.Post(tc.base+tc.path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status %d, want 405", tc.path, resp.StatusCode)
		}
		if tc.wantAllow && resp.Header.Get("Allow") != "GET" {
			t.Fatalf("POST %s: Allow header %q, want GET", tc.path, resp.Header.Get("Allow"))
		}
	}
}

// expositionLine matches one Prometheus 0.0.4 text sample:
// name{labels} value. HELP/TYPE comment lines are checked separately.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+]?(Inf|[0-9.e+-]+))$`)

// TestMetricsExposition exercises GET /metrics after live traffic: the body
// must parse as Prometheus text and carry the serving metric families with
// values that reconcile against /stats.
func TestMetricsExposition(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	reg := obs.NewRegistry()
	srv, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		EmbedCacheBytes: 1 << 20, FeatureCacheBytes: 1 << 20,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, v := range []int32{0, 1, 2, 1} {
		resp, err := http.Get(fmt.Sprintf("%s/predict?vertex=%d", ts.URL, v))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, ct := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}

	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		var name string
		var val float64
		sp := strings.LastIndexByte(line, ' ')
		name = line[:sp]
		fmt.Sscanf(line[sp+1:], "%g", &val)
		samples[name] = val
	}

	st := srv.StatsSnapshot()
	want := map[string]float64{
		"distgnn_serve_predicts_total":                float64(st.Predicts),
		"distgnn_coalescer_requests_total":            float64(st.Coalescer.Requests),
		"distgnn_engine_inferences_total":             float64(st.Engine.Inferences),
		`distgnn_cache_hits_total{cache="embedding"}`: float64(st.EmbeddingCache.Hits),
	}
	for name, w := range want {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("/metrics missing %s\nbody:\n%s", name, body)
		}
		if got != w {
			t.Fatalf("%s = %g, want %g (stats)", name, got, w)
		}
	}
	if samples["distgnn_serve_predicts_total"] < 3 {
		t.Fatalf("predicts_total %g after 4 requests", samples["distgnn_serve_predicts_total"])
	}
	// Histograms exist even though tracing is off — metrics-only requests
	// still time their stages.
	if _, ok := samples[`distgnn_serve_request_duration_seconds{endpoint="predict"}_count`]; !ok {
		// The histogram count sample is name_count{labels}; probe both forms.
		if _, ok := samples[`distgnn_serve_request_duration_seconds_count{endpoint="predict"}`]; !ok {
			t.Fatalf("/metrics missing predict duration histogram\nbody:\n%s", body)
		}
	}
}

// obsFleet is a 2-shard TCP fleet with the full obs plane on: one registry
// and tracer per rank, real HTTP listeners, and a traced frontend on top.
type obsFleet struct {
	fleet    *shardFleet
	tracers  []*obs.Tracer
	regs     []*obs.Registry
	frontend *Frontend
	fts      *httptest.Server
	ftracer  *obs.Tracer
}

func newObsFleet(t *testing.T) *obsFleet {
	t.Helper()
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	const shards = 2
	eps, err := comm.NewLoopbackTCP(shards, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	of := &obsFleet{fleet: &shardFleet{fabrics: eps}}

	var peers []PeerAddr
	var lns []net.Listener
	for r := 0; r < shards; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		of.fleet.addrs = append(of.fleet.addrs, ln.Addr().String())
		peers = append(peers, PeerAddr{Rank: r, Addr: ln.Addr().String()})
	}
	for r := 0; r < shards; r++ {
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(obs.TracerConfig{Role: "server", Rank: r})
		of.regs = append(of.regs, reg)
		of.tracers = append(of.tracers, tracer)
		srv, err := NewShard(ds, bytes.NewReader(ckpt), Config{
			Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
			Metrics: reg, Tracer: tracer,
		}, ShardConfig{
			Rank: r, Shards: shards, Transport: eps[r],
			HTTPPeers: peers, RemoteCacheBytes: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		of.fleet.servers = append(of.fleet.servers, srv)
		hs := &http.Server{Handler: srv.Handler()}
		of.fleet.https = append(of.fleet.https, hs)
		go hs.Serve(lns[r])
	}

	of.ftracer = obs.NewTracer(obs.TracerConfig{Role: "frontend", Rank: -1})
	of.frontend, err = NewFrontend(FrontendConfig{
		Groups:        []GroupSpec{{Key: "g0", Replicas: of.fleet.addrs}},
		ProbeInterval: time.Hour,
		Metrics:       obs.NewRegistry(),
		Tracer:        of.ftracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	of.fts = httptest.NewServer(of.frontend.Handler())
	return of
}

func (of *obsFleet) close() {
	of.fts.Close()
	of.frontend.Close()
	of.fleet.close()
}

func findTrace(recs []obs.Trace, id, endpoint string) *obs.Trace {
	for i := range recs {
		if recs[i].TraceID == id && recs[i].Endpoint == endpoint {
			return &recs[i]
		}
	}
	return nil
}

// TestCrossRankTraceAttribution is the tracing acceptance pin: one tail
// request entering at the frontend is attributable end-to-end — the
// frontend's span, the serving rank's predict record, and the halo peer's
// fetch record all carry the same trace ID, and the ID round-trips to the
// client in the response header.
func TestCrossRankTraceAttribution(t *testing.T) {
	of := newObsFleet(t)
	defer of.close()

	probe := []int32{2, 9, 17, 33, 40, 63}
	crossRank := false
	for _, v := range probe {
		resp, err := http.Get(fmt.Sprintf("%s/predict?vertex=%d", of.fts.URL, v))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("vertex %d: status %d: %s", v, resp.StatusCode, body)
		}
		id := resp.Header.Get(obs.TraceHeader)
		if _, ok := obs.ParseTraceID(id); !ok {
			t.Fatalf("vertex %d: bad trace header %q", v, id)
		}

		// The frontend recorded the request under the ID it minted.
		frec := findTrace(of.ftracer.Recent(256), id, "predict")
		if frec == nil {
			t.Fatalf("vertex %d: frontend has no trace %s", v, id)
		}
		if len(frec.Spans) == 0 || !strings.HasPrefix(frec.Spans[0].Name, "attempt0_") {
			t.Fatalf("vertex %d: frontend trace lacks attempt span: %+v", v, frec)
		}

		// Exactly one rank served the inference under that ID; any entry
		// rank that proxied recorded a routed hop under it too.
		var served *obs.Trace
		servedRank := -1
		for r, tracer := range of.tracers {
			if rec := findTrace(tracer.Recent(256), id, "predict"); rec != nil {
				if served != nil {
					t.Fatalf("vertex %d: trace %s served on ranks %d and %d", v, id, servedRank, r)
				}
				served, servedRank = rec, r
			}
		}
		if served == nil {
			t.Fatalf("vertex %d: no rank recorded predict trace %s", v, id)
		}
		spans := map[string]bool{}
		for _, sp := range served.Spans {
			spans[sp.Name] = true
		}
		for _, want := range []string{"queue_wait", "sample", "gather", "forward", "encode"} {
			if !spans[want] {
				t.Fatalf("vertex %d: predict trace on rank %d missing %q span: %+v",
					v, servedRank, want, served.Spans)
			}
		}

		// When the gather crossed the fabric, the peer attributed its fetch
		// to the same trace ID: cross-rank attribution.
		peer := 1 - servedRank
		if rec := findTrace(of.tracers[peer].Recent(256), id, "halo_fetch"); rec != nil {
			crossRank = true
			if rec.Peer != servedRank {
				t.Fatalf("vertex %d: halo record names peer %d, served rank %d", v, rec.Peer, servedRank)
			}
			if !spans[fmt.Sprintf("halo_rtt_rank%d", peer)] {
				t.Fatalf("vertex %d: served trace lacks halo_rtt_rank%d span: %+v",
					v, peer, served.Spans)
			}
		}
	}
	if !crossRank {
		t.Fatal("no probe vertex produced a cross-rank halo fetch record")
	}

	// The ring is also served over HTTP: /debug/trace/recent on rank 0
	// returns a JSON array of trace records.
	resp, err := http.Get("http://" + of.fleet.addrs[0] + "/debug/trace/recent?n=256")
	if err != nil {
		t.Fatal(err)
	}
	body, ct := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || ct != "application/json" {
		t.Fatalf("/debug/trace/recent: status %d, Content-Type %q", resp.StatusCode, ct)
	}
	var recs []obs.Trace
	if err := json.Unmarshal(body, &recs); err != nil {
		t.Fatalf("/debug/trace/recent not a trace array: %v\n%s", err, body)
	}
	if len(recs) == 0 {
		t.Fatal("/debug/trace/recent empty after traffic")
	}

	// And the shard metrics are live on every rank's /metrics.
	for r := range of.fleet.addrs {
		resp, err := http.Get("http://" + of.fleet.addrs[r] + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rank %d /metrics status %d", r, resp.StatusCode)
		}
		for _, name := range []string{"distgnn_halo_fetches_total", "distgnn_net_sent_bytes_total"} {
			if !strings.Contains(string(body), name) {
				t.Fatalf("rank %d /metrics missing %s", r, name)
			}
		}
	}
}
