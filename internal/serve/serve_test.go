package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/tensor"
	"distgnn/internal/train"
)

// trainedSageCheckpoint trains a small GraphSAGE for a few epochs and
// returns the dataset, the trained model, and its serialized checkpoint —
// the exact train→save→serve handoff distgnn-train and distgnn-serve
// perform.
func trainedSageCheckpoint(t *testing.T, hidden, layers int) (*datasets.Dataset, *model.GraphSAGE, []byte) {
	t.Helper()
	ds, err := datasets.Load("reddit-sim", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	res, err := train.SingleSocket(ds, train.SingleConfig{
		Model:  model.Config{Hidden: hidden, NumLayers: layers, Seed: 3},
		Epochs: 3, LR: 0.02, UseAdam: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nn.WriteParams(&buf, res.Model.Params()); err != nil {
		t.Fatal(err)
	}
	return ds, res.Model, buf.Bytes()
}

func bitsEqual(t *testing.T, got, want []float32, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for j := range got {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			t.Fatalf("%s: col %d: %v (%#x) != %v (%#x)",
				what, j, got[j], math.Float32bits(got[j]), want[j], math.Float32bits(want[j]))
		}
	}
}

// TestExactServingMatchesFullForwardBitwise is the serving-correctness
// acceptance pin: for a trained checkpoint, exact-mode /predict logits are
// bit-identical across batch-of-1, a coalesced micro-batch, cold and warm
// cache paths — and all of them equal a direct full-graph Forward.
func TestExactServingMatchesFullForwardBitwise(t *testing.T) {
	ds, m, ckpt := trainedSageCheckpoint(t, 16, 2)

	full := m.Forward(ds.Features, false)
	probe := []int32{0, 1, 5, 17, int32(ds.G.NumVertices - 1)}

	// Batch-of-1 engine inference, caches enabled (cold then warm).
	srv, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		FeatureCacheBytes: 1 << 20, EmbedCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cold := make(map[int32][]float32)
	for _, v := range probe {
		out, err := srv.Engine().Infer([]int32{v})
		if err != nil {
			t.Fatal(err)
		}
		row := append([]float32(nil), out.Row(0)...)
		cold[v] = row
		bitsEqual(t, row, full.Row(int(v)), "batch-of-1 (cold) vs full Forward")
	}
	// Warm pass: the feature cache is now populated; results must not move.
	for _, v := range probe {
		out, err := srv.Engine().Infer([]int32{v})
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, out.Row(0), cold[v], "warm vs cold")
	}

	// One coalesced micro-batch with duplicates: per-row results identical.
	batch := append(append([]int32(nil), probe...), probe[0], probe[2])
	out, err := srv.Engine().Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range batch {
		bitsEqual(t, out.Row(i), full.Row(int(v)), "coalesced micro-batch vs full Forward")
	}
}

// TestExactGATServingMatchesFullForwardBitwise extends the pin to the
// attention model: the block-wise softmax/aggregation replicates the
// full-graph op order.
func TestExactGATServingMatchesFullForwardBitwise(t *testing.T) {
	ds, err := datasets.Load("reddit-sim", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	heads := 2
	out := ((ds.NumClasses + heads - 1) / heads) * heads
	gat, err := model.NewGAT(ds.G, model.GATConfig{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: out,
		NumLayers: 2, NumHeads: heads, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A couple of training steps so the attention weights are not at init.
	adam := nn.NewAdam(0.01, 0)
	params := gat.Params()
	for e := 0; e < 2; e++ {
		logits := gat.Forward(ds.Features, true)
		_, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
		nn.ZeroGrads(params)
		gat.Backward(dlogits)
		adam.Step(params)
	}
	var buf bytes.Buffer
	if err := nn.WriteParams(&buf, params); err != nil {
		t.Fatal(err)
	}

	full := gat.Forward(ds.Features, false)
	eng, err := NewEngine(ds, ModelSpec{
		Arch: ArchGAT, Hidden: 16, OutDim: out, NumLayers: 2, NumHeads: heads,
	}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.ReadParams(bytes.NewReader(buf.Bytes()), eng.Params()); err != nil {
		t.Fatal(err)
	}
	probe := []int32{2, 9, 33, int32(ds.G.NumVertices - 2)}
	got, err := eng.Infer(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range probe {
		bitsEqual(t, got.Row(i), full.Row(int(v)), "GAT exact serving vs full Forward")
	}
}

// TestPaddedGATServableThroughConfig: a multi-head GAT whose output width
// was padded up to a NumHeads multiple (the standard workaround when the
// class count doesn't divide the heads) must load through serve.New via
// Config.OutDim — the CLI's -out-dim flag.
func TestPaddedGATServableThroughConfig(t *testing.T) {
	ds, err := datasets.Load("reddit-sim", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	heads := 2
	out := ((ds.NumClasses + heads - 1) / heads) * heads // 41 → 42
	gat, err := model.NewGAT(ds.G, model.GATConfig{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: out,
		NumLayers: 2, NumHeads: heads, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nn.WriteParams(&buf, gat.Params()); err != nil {
		t.Fatal(err)
	}
	// Without OutDim the class count 41 is indivisible by 2 heads: clear error.
	if _, err := New(ds, bytes.NewReader(buf.Bytes()), Config{
		Arch: ArchGAT, Hidden: 16, NumLayers: 2, NumHeads: heads,
	}); err == nil {
		t.Fatal("indivisible OutDim must be rejected")
	}
	srv, err := New(ds, bytes.NewReader(buf.Bytes()), Config{
		Arch: ArchGAT, Hidden: 16, NumLayers: 2, NumHeads: heads, OutDim: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	full := gat.Forward(ds.Features, false)
	got, err := srv.Engine().Infer([]int32{6})
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, got.Row(0), full.Row(6), "padded GAT via Config.OutDim")
}

// TestHTTPEndpoints drives the real handler: /predict agrees with the
// direct Forward, repeated queries (now embedding-cache hits) return the
// same bytes, /embed returns the same vector /predict scored, and /stats
// reflects the traffic.
func TestHTTPEndpoints(t *testing.T) {
	ds, m, ckpt := trainedSageCheckpoint(t, 16, 2)
	srv, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		MaxBatch: 8, FeatureCacheBytes: 1 << 20, EmbedCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	full := m.Forward(ds.Features, false)
	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, body.Bytes()
	}

	resp, body := get("/predict?vertex=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, pr.Logits, full.Row(7), "HTTP /predict vs full Forward")
	wantClass := make([]int, full.Rows)
	full.ArgmaxRows(wantClass)
	if pr.Class != wantClass[7] {
		t.Fatalf("class %d != argmax %d", pr.Class, wantClass[7])
	}

	// Second query is an embedding-cache hit and must be byte-identical.
	_, body2 := get("/predict?vertex=7")
	if !bytes.Equal(body, body2) {
		t.Fatalf("warm response differs:\ncold %s\nwarm %s", body, body2)
	}

	resp, body = get("/embed?vertex=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("embed status %d", resp.StatusCode)
	}
	var er EmbedResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, er.Embedding, pr.Logits, "/embed vs /predict logits")

	for _, bad := range []string{"/predict", "/predict?vertex=zzz", "/predict?vertex=-4",
		"/predict?vertex=99999999"} {
		resp, _ := get(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	resp, body = get("/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Predicts < 2 || st.Embeds < 1 {
		t.Fatalf("stats counters: %+v", st)
	}
	if st.EmbeddingCache.Hits < 2 { // warm /predict + /embed both hit
		t.Fatalf("embedding cache hits %d, want ≥2", st.EmbeddingCache.Hits)
	}
	if st.Mode != "exact" || st.Arch != ArchGraphSAGE {
		t.Fatalf("mode %q arch %q", st.Mode, st.Arch)
	}

	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestCheckpointMismatchFailsFast pins the fail-fast contract: a checkpoint
// loaded with the wrong dims or arch must error at startup with a message
// naming the requested model, never serve.
func TestCheckpointMismatchFailsFast(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	for _, cfg := range []Config{
		{Arch: ArchGraphSAGE, Hidden: 32, NumLayers: 2}, // wrong width
		{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 3}, // wrong depth
		{Arch: ArchGAT, Hidden: 16, NumLayers: 2, NumHeads: 1},
	} {
		_, err := New(ds, bytes.NewReader(ckpt), cfg)
		if err == nil {
			t.Fatalf("config %+v: mismatched checkpoint accepted", cfg)
		}
	}
}

// TestSampledModeServes covers the sampled path: valid logits with the
// right width, and /stats reporting the sampled mode.
func TestSampledModeServes(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	srv, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2, Fanouts: []int{5, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	out, err := srv.Engine().Infer([]int32{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != 2 || out.Cols != ds.NumClasses {
		t.Fatalf("sampled output %dx%d", out.Rows, out.Cols)
	}
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite sampled logit %v", v)
		}
	}
	if mode := srv.Engine().Mode(); mode != "sampled(5,5)" {
		t.Fatalf("mode %q", mode)
	}
}

// TestConcurrentClientsThroughHTTP hammers the full pipeline — coalescer,
// engine, both caches — from concurrent clients; every response must carry
// the vertex's own bit-exact logits (the -race CI pass runs this too).
func TestConcurrentClientsThroughHTTP(t *testing.T) {
	ds, m, ckpt := trainedSageCheckpoint(t, 16, 2)
	srv, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		MaxBatch: 8, FeatureCacheBytes: 1 << 20, EmbedCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	full := m.Forward(ds.Features, false)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v := (w*7 + i*3) % ds.G.NumVertices
				resp, err := http.Get(fmt.Sprintf("%s/predict?vertex=%d", ts.URL, v))
				if err != nil {
					errs <- err
					return
				}
				var pr PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				want := full.Row(v)
				for j := range want {
					if math.Float32bits(pr.Logits[j]) != math.Float32bits(want[j]) {
						errs <- fmt.Errorf("vertex %d col %d: %v != %v", v, j, pr.Logits[j], want[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDeterministicAcrossServers: two servers loading the same checkpoint
// produce identical exact-mode logits — there is no hidden per-process
// state in the serving path.
func TestDeterministicAcrossServers(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	mk := func() *tensor.Matrix {
		srv, err := New(ds, bytes.NewReader(ckpt), Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		out, err := srv.Engine().Infer([]int32{4, 8, 15})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(), mk()
	for i := 0; i < a.Rows; i++ {
		bitsEqual(t, a.Row(i), b.Row(i), "server A vs server B")
	}
}
