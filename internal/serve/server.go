package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/nn"
	"distgnn/internal/obs"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// Config configures a serving instance.
type Config struct {
	// Arch, Hidden, NumLayers, NumHeads must describe the checkpoint being
	// loaded; New fails fast on any mismatch. Arch defaults to graphsage,
	// NumLayers to 3 and Hidden to 64 — distgnn-train's defaults.
	Arch      Arch
	Hidden    int
	NumLayers int
	NumHeads  int
	// OutDim overrides the output width when the checkpoint's differs from
	// the dataset's class count — e.g. a multi-head GAT trained with the
	// class count padded up to a NumHeads multiple. 0 means NumClasses.
	OutDim int
	// Fanouts selects sampled inference (one entry per layer); empty means
	// exact full-neighborhood inference.
	Fanouts []int
	// MaxBatch and MaxWait shape the request coalescer: a micro-batch
	// closes at MaxBatch requests or after MaxWait, whichever first.
	// MaxBatch ≤ 1 disables coalescing.
	MaxBatch int
	MaxWait  time.Duration
	// MaxPending bounds the admitted-but-unanswered request depth; beyond
	// it /predict and /embed shed load with 429 + Retry-After instead of
	// queueing without bound. ≤ 0 disables admission control.
	MaxPending int
	// EnableReload exposes POST /reload: atomically hot-swap the engine to
	// a new checkpoint (build-validate-flip; in-flight requests finish on
	// the old engine). Off by default — reloading reads server-side files.
	EnableReload bool
	// EnableUpdates exposes POST /update: streaming edge inserts applied to
	// an epoch-versioned mutation layer over the dataset CSR, with the
	// affected k-hop fan-out invalidated in the feature and embedding
	// caches. Exact-mode only (sampled inference has no bit-identity
	// contract to preserve). Off by default — the graph stays frozen.
	EnableUpdates bool
	// CompactThreshold is the overlay size (edges) past which an update
	// triggers a background compaction into a fresh base CSR. 0 selects
	// the default (4096); negative disables automatic compaction.
	CompactThreshold int
	// FeatureCacheBytes budgets the gathered-input-feature cache;
	// EmbedCacheBytes budgets the final-layer embedding cache. ≤ 0
	// disables the respective cache.
	FeatureCacheBytes int64
	EmbedCacheBytes   int64
	// FeatPrecision selects feature storage (see ModelSpec.FeatPrecision):
	// quant.FP32 (default) or quant.BF16. Single-process serving only.
	FeatPrecision quant.Precision
	// Metrics, when set, registers the serving metrics on the registry and
	// enables GET /metrics (Prometheus text exposition). Nil runs
	// metrics-free — the obs plane's disabled-is-free contract.
	Metrics *obs.Registry
	// Tracer, when set, enables per-request tracing: stage spans, the
	// recent-trace ring behind GET /debug/trace/recent, the slow-request
	// log, and cross-rank trace-ID propagation. Nil disables tracing.
	Tracer *obs.Tracer
}

// applyDefaults fills the zero-value Config fields with distgnn-train's
// defaults.
func (cfg *Config) applyDefaults() {
	if cfg.Arch == "" {
		cfg.Arch = ArchGraphSAGE
	}
	if cfg.NumLayers == 0 {
		cfg.NumLayers = 3
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 64
	}
}

// Server is the HTTP inference front end: /predict, /embed, /stats,
// /healthz. In shard mode (NewShard) it additionally routes requests for
// vertices owned by another rank to that rank's server.
type Server struct {
	// engine is behind an atomic pointer so /reload can hot-swap it while
	// requests are in flight: readers load once per operation and finish on
	// whichever engine they loaded.
	engine atomic.Pointer[Engine]
	co     *Coalescer
	emb    *Cache[int32, []float32]
	cfg    Config
	mux    *http.ServeMux
	start  time.Time
	shard  *shardState  // nil in single-process mode
	upd    *updateState // nil when updates are disabled
	proxy  http.Client
	obsm   *serveMetrics // nil when metrics are off
	tracer *obs.Tracer   // nil-safe: nil disables tracing

	reloadMu sync.Mutex // serializes build-validate-flip sequences

	predicts atomic.Int64
	embeds   atomic.Int64
	reloads  atomic.Int64
}

// New loads the checkpoint into a forward-only model described by cfg and
// assembles the serving pipeline. A checkpoint whose parameter names or
// shapes disagree with the requested arch/dims fails immediately with a
// descriptive error rather than serving garbage.
func New(ds *datasets.Dataset, checkpoint io.Reader, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if cfg.EnableUpdates && len(cfg.Fanouts) > 0 {
		return nil, fmt.Errorf("serve: streaming updates are exact-mode only (drop -fanouts)")
	}
	eng, err := NewEngine(ds, ModelSpec{
		Arch: cfg.Arch, Hidden: cfg.Hidden, OutDim: cfg.OutDim,
		NumLayers: cfg.NumLayers, NumHeads: cfg.NumHeads,
		FeatPrecision: cfg.FeatPrecision,
	}, cfg.Fanouts, cfg.FeatureCacheBytes)
	if err != nil {
		return nil, err
	}
	if err := nn.ReadParams(checkpoint, eng.Params()); err != nil {
		return nil, fmt.Errorf("serve: checkpoint does not match requested model %s: %w "+
			"(distgnn-train prints the hyperparameters next to \"checkpoint written\" — pass the same -arch/-hidden/-layers/-heads here)",
			eng.Spec(), err)
	}
	return newServer(eng, cfg), nil
}

// newServer assembles the HTTP pipeline around a ready engine.
func newServer(eng *Engine, cfg Config) *Server {
	s := &Server{
		emb:    NewCache[int32, []float32](cfg.EmbedCacheBytes, 0),
		cfg:    cfg,
		mux:    http.NewServeMux(),
		start:  time.Now(),
		proxy:  http.Client{Timeout: 30 * time.Second},
		tracer: cfg.Tracer,
	}
	s.engine.Store(eng)
	if cfg.EnableUpdates {
		s.upd = newUpdateState(eng, cfg)
	}
	s.co = NewCoalescer(s.inferAndCache, cfg.MaxBatch, cfg.MaxWait, cfg.MaxPending)
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/embed", s.handleEmbed)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	// Both handlers are nil-safe: with the plane off they serve 404.
	s.mux.HandleFunc("/metrics", cfg.Metrics.Handler())
	s.mux.HandleFunc("/debug/trace/recent", cfg.Tracer.Handler())
	if cfg.Metrics != nil {
		s.obsm = newServeMetrics(cfg.Metrics)
		s.registerMetrics(cfg.Metrics)
		if s.upd != nil {
			s.registerStreamMetrics(cfg.Metrics)
		}
	}
	return s
}

// handleHealthz answers the liveness probe with build info and fleet
// identity (JSON; probers only check the status code).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	bi := obs.ReadBuildInfo()
	eng := s.engine.Load()
	h := Healthz{
		Status: "ok", Role: "server",
		Module: bi.Module, ModuleVersion: bi.ModuleVersion, GoVersion: bi.GoVersion,
		Rank: -1, Shards: 1,
		Model: eng.Spec().String(), Mode: eng.Mode(),
	}
	if s.shard != nil {
		h.Rank = s.shard.fs.Rank()
		h.Shards = s.shard.fs.Shards()
	}
	writeJSON(w, h)
}

// Engine exposes the current inference engine (benchmarks and tests).
func (s *Server) Engine() *Engine { return s.engine.Load() }

// Handler returns the HTTP handler for all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Router returns the shard router, or nil for a single-process server.
func (s *Server) Router() *Router {
	if s.shard == nil {
		return nil
	}
	return s.shard.router
}

// Close stops the request coalescer and, in shard mode, the halo-fetch
// endpoint. The comm transport stays owned by the caller.
func (s *Server) Close() {
	s.co.Close()
	if s.shard != nil {
		s.shard.fs.Close()
	}
}

// inferAndCache is the coalescer's batch function: one engine pass, then
// the final-layer rows are published to the embedding cache so later
// requests for the same vertices short-circuit inference entirely. The
// engine is loaded once: a batch in flight across a /reload finishes on
// the engine it started with, and its rows are not published if the flip
// (and the cache reset that follows it) happened underneath. With updates
// enabled the same guard extends to the topology: rows are published only
// under the updater's read lock with the snapshot epoch unchanged since
// before inference, so a batch computed on a pre-update graph can never
// land in the cache after that update's invalidation sweep.
func (s *Server) inferAndCache(vertices []int32, bt *obs.TraceCtx) (*tensor.Matrix, error) {
	eng := s.engine.Load()
	var epoch uint64
	if s.upd != nil {
		epoch = s.upd.mut.Snapshot().Epoch()
	}
	out, err := eng.InferTraced(vertices, bt)
	if err != nil {
		return nil, err
	}
	publish := func() {
		if s.engine.Load() != eng {
			return
		}
		for i, v := range vertices {
			row := append([]float32(nil), out.Row(i)...)
			s.emb.Put(v, row, 4*len(row))
		}
	}
	if s.upd == nil {
		publish()
		return out, nil
	}
	s.upd.mu.RLock()
	if s.upd.mut.Snapshot().Epoch() == epoch {
		publish()
	}
	s.upd.mu.RUnlock()
	return out, nil
}

// Reload hot-swaps the serving engine to a new checkpoint: a fresh engine
// is built against the same spec and validated (parameter names/shapes,
// finite probe inference) before a single atomic pointer flip makes it
// live; any failure leaves the old engine serving untouched. In-flight
// batches finish on the engine they loaded, and the embedding cache is
// reset at the flip so the new model never serves the old model's rows.
// The raw-feature caches survive — input features are model-independent.
func (s *Server) Reload(checkpoint io.Reader) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.engine.Load()
	spec := old.Spec()
	// Build against fp32 and adopt the old engine's resident feature store
	// afterwards — re-rounding a bf16 slab that already exists is pure
	// waste, and sharing keeps the swap allocation-light.
	buildSpec := spec
	buildSpec.FeatPrecision = quant.FP32
	eng, err := NewEngine(old.ds, buildSpec, s.cfg.Fanouts, 0)
	if err != nil {
		return fmt.Errorf("serve: reload: %w", err)
	}
	eng.spec = spec
	eng.feats = old.feats
	eng.feat = old.feat
	eng.src = old.src
	eng.mut = old.mut
	if err := nn.ReadParams(checkpoint, eng.Params()); err != nil {
		return fmt.Errorf("serve: reload checkpoint does not match serving model %s: %w", spec, err)
	}
	if out, err := eng.Infer([]int32{0}); err != nil {
		return fmt.Errorf("serve: reload probe inference: %w", err)
	} else {
		for _, v := range out.Row(0) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("serve: reload probe produced non-finite logits — checkpoint rejected")
			}
		}
	}
	s.engine.Store(eng)
	s.emb.Reset()
	s.reloads.Add(1)
	return nil
}

// handleReload is POST /reload?checkpoint=PATH (or the checkpoint bytes as
// the request body). Gated by Config.EnableReload because the path form
// reads server-side files.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableReload {
		httpError(w, http.StatusForbidden, fmt.Errorf("reload disabled (start with -reload)"))
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST /reload"))
		return
	}
	var src io.Reader = r.Body
	if path := r.URL.Query().Get("checkpoint"); path != "" {
		f, err := os.Open(path)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		defer f.Close()
		src = f
	}
	if err := s.Reload(src); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, map[string]any{
		"reloaded": true,
		"model":    s.engine.Load().Spec().String(),
		"reloads":  s.reloads.Load(),
	})
}

// lookup serves a vertex's final-layer output: embedding cache first, then
// the coalesced inference path.
func (s *Server) lookup(r *http.Request, vertex int32, tc *obs.TraceCtx) ([]float32, error) {
	if row, ok := s.emb.Get(vertex); ok {
		return row, nil
	}
	return s.co.SubmitTraced(r.Context(), vertex, tc)
}

// traceCtx opens the per-request trace context: nil when the whole obs
// plane is off (disabled = free), ID-less when only metrics are on (stage
// timing without cross-rank attribution), and carrying the inbound
// header's ID — or a freshly minted one — when tracing is enabled.
func (s *Server) traceCtx(r *http.Request) *obs.TraceCtx {
	if s.obsm == nil && !s.tracer.Enabled() {
		return nil
	}
	var id uint64
	if s.tracer.Enabled() {
		if hid, ok := obs.ParseTraceID(r.Header.Get(obs.TraceHeader)); ok {
			id = hid
		} else {
			id = obs.NewTraceID()
		}
	}
	return obs.NewTraceCtx(id)
}

// finishRequest closes out one request's observability: stage histograms
// and the trace record. No-op for untraced requests.
func (s *Server) finishRequest(tc *obs.TraceCtx, endpoint string, vertex int32, status int) {
	if tc == nil {
		return
	}
	s.obsm.observe(endpoint, tc)
	s.tracer.Finish(tc, endpoint, int64(vertex), status)
}

// PredictResponse is the /predict payload.
type PredictResponse struct {
	Vertex int32     `json:"vertex"`
	Class  int       `json:"class"`
	Logits []float32 `json:"logits"`
}

// EmbedResponse is the /embed payload.
type EmbedResponse struct {
	Vertex    int32     `json:"vertex"`
	Embedding []float32 `json:"embedding"`
}

// Stats is the /stats payload. Shard is present only in shard mode.
type Stats struct {
	UptimeSeconds  float64        `json:"uptime_seconds"`
	Arch           Arch           `json:"arch"`
	Mode           string         `json:"mode"`
	Model          string         `json:"model"`
	Predicts       int64          `json:"predicts"`
	Embeds         int64          `json:"embeds"`
	Reloads        int64          `json:"reloads"`
	Coalescer      CoalescerStats `json:"coalescer"`
	Engine         EngineStats    `json:"engine"`
	FeatureCache   CacheStats     `json:"feature_cache"`
	EmbeddingCache CacheStats     `json:"embedding_cache"`
	Shard          *ShardStats    `json:"shard,omitempty"`
	Stream         *StreamStats   `json:"stream,omitempty"`
}

// StatsSnapshot returns the same snapshot /stats serves.
func (s *Server) StatsSnapshot() Stats {
	eng := s.engine.Load()
	st := Stats{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Arch:           eng.Spec().Arch,
		Mode:           eng.Mode(),
		Model:          eng.Spec().String(),
		Predicts:       s.predicts.Load(),
		Embeds:         s.embeds.Load(),
		Reloads:        s.reloads.Load(),
		Coalescer:      s.co.Stats(),
		Engine:         eng.Stats(),
		FeatureCache:   eng.FeatureCacheStats(),
		EmbeddingCache: s.emb.Stats(),
	}
	if s.shard != nil {
		sh := s.shard.stats()
		st.Shard = &sh
	}
	if s.upd != nil {
		str := s.upd.streamStats()
		st.Stream = &str
	}
	return st
}

// routeIfRemote proxies the request one hop to the vertex's owner rank when
// this rank is not the owner and the owner's address is known. It reports
// whether the request was handled (proxied). A request that already carries
// the routed marker is always served locally — the sharded engine can
// answer any vertex via halo fetches, so routing is a locality optimization
// that must terminate, never a correctness requirement.
func (s *Server) routeIfRemote(w http.ResponseWriter, r *http.Request, vertex int32, tc *obs.TraceCtx) bool {
	if s.shard == nil {
		return false
	}
	if r.Header.Get(routedHeader) != "" {
		s.shard.routedIn.Add(1)
		return false
	}
	owner := s.shard.router.Owner(vertex)
	if owner == s.shard.fs.Rank() {
		return false
	}
	addr := s.shard.router.Addr(owner)
	if addr == "" {
		return false
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	base, err := url.Parse(addr)
	if err != nil {
		httpError(w, http.StatusInternalServerError,
			fmt.Errorf("bad owner address %q for rank %d: %v", addr, owner, err))
		return true
	}
	target := url.URL{
		Scheme:   base.Scheme,
		Host:     base.Host,
		Path:     r.URL.Path,
		RawQuery: r.URL.RawQuery, // empty query stays empty — no dangling "?"
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target.String(), nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return true
	}
	req.Header.Set(routedHeader, "1")
	// Forward the trace ID so the owner's spans land under the same trace
	// the entry point minted (or the one the client/frontend sent).
	if id := tc.ID(); id != 0 {
		req.Header.Set(obs.TraceHeader, obs.FormatTraceID(id))
	} else if tid := r.Header.Get(obs.TraceHeader); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	stop := tc.StartSpan("proxy_owner")
	resp, err := s.proxy.Do(req)
	stop()
	if err != nil {
		httpError(w, http.StatusBadGateway,
			fmt.Errorf("routing vertex %d to owner rank %d at %s: %v", vertex, owner, addr, err))
		s.finishRequest(tc, "routed", vertex, http.StatusBadGateway)
		return true
	}
	defer resp.Body.Close()
	s.shard.routedOut.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if id := tc.ID(); id != 0 {
		w.Header().Set(obs.TraceHeader, obs.FormatTraceID(id))
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The status line is already gone, so the response cannot be
		// repaired — log instead of silently truncating.
		log.Printf("serve: proxying vertex %d to rank %d: response copy: %v", vertex, owner, err)
	}
	s.finishRequest(tc, "routed", vertex, resp.StatusCode)
	return true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	vertex, ok := s.vertexParam(w, r)
	if !ok {
		return
	}
	tc := s.traceCtx(r)
	if s.routeIfRemote(w, r, vertex, tc) {
		return
	}
	s.predicts.Add(1)
	row, err := s.lookup(r, vertex, tc)
	if err != nil {
		s.finishRequest(tc, "predict", vertex, lookupError(w, err))
		return
	}
	if id := tc.ID(); id != 0 {
		w.Header().Set(obs.TraceHeader, obs.FormatTraceID(id))
	}
	stop := tc.StartSpan("encode")
	writeJSON(w, PredictResponse{Vertex: vertex, Class: argmax(row), Logits: row})
	stop()
	s.finishRequest(tc, "predict", vertex, http.StatusOK)
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	vertex, ok := s.vertexParam(w, r)
	if !ok {
		return
	}
	tc := s.traceCtx(r)
	if s.routeIfRemote(w, r, vertex, tc) {
		return
	}
	s.embeds.Add(1)
	row, err := s.lookup(r, vertex, tc)
	if err != nil {
		s.finishRequest(tc, "embed", vertex, lookupError(w, err))
		return
	}
	if id := tc.ID(); id != 0 {
		w.Header().Set(obs.TraceHeader, obs.FormatTraceID(id))
	}
	stop := tc.StartSpan("encode")
	writeJSON(w, EmbedResponse{Vertex: vertex, Embedding: row})
	stop()
	s.finishRequest(tc, "embed", vertex, http.StatusOK)
}

// lookupError maps coalescer outcomes to HTTP semantics: saturation is the
// load-shedding signal (429 + Retry-After so clients and the replica
// frontend back off or fail over), shutdown is 503, anything else 500.
// It returns the status code written.
func lookupError(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return http.StatusTooManyRequests
	case errors.Is(err, ErrCoalescerClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return http.StatusServiceUnavailable
	default:
		httpError(w, http.StatusInternalServerError, err)
		return http.StatusInternalServerError
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	writeJSON(w, s.StatsSnapshot())
}

// vertexParam parses and range-checks the ?vertex= query parameter.
func (s *Server) vertexParam(w http.ResponseWriter, r *http.Request) (int32, bool) {
	raw := r.URL.Query().Get("vertex")
	if raw == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing ?vertex= parameter"))
		return 0, false
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad vertex %q: %v", raw, err))
		return 0, false
	}
	if n := s.engine.Load().topo().NumV(); v < 0 || int(v) >= n {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("vertex %d out of range [0,%d)", v, n))
		return 0, false
	}
	return int32(v), true
}

// argmax matches tensor.Matrix.ArgmaxRows: ties resolve to the lowest
// index.
func argmax(row []float32) int {
	best, bestJ := float32(-1), 0
	for j, v := range row {
		if j == 0 || v > best {
			best, bestJ = v, j
		}
	}
	return bestJ
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
