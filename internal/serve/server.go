package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/nn"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// Config configures a serving instance.
type Config struct {
	// Arch, Hidden, NumLayers, NumHeads must describe the checkpoint being
	// loaded; New fails fast on any mismatch. Arch defaults to graphsage,
	// NumLayers to 3 and Hidden to 64 — distgnn-train's defaults.
	Arch      Arch
	Hidden    int
	NumLayers int
	NumHeads  int
	// OutDim overrides the output width when the checkpoint's differs from
	// the dataset's class count — e.g. a multi-head GAT trained with the
	// class count padded up to a NumHeads multiple. 0 means NumClasses.
	OutDim int
	// Fanouts selects sampled inference (one entry per layer); empty means
	// exact full-neighborhood inference.
	Fanouts []int
	// MaxBatch and MaxWait shape the request coalescer: a micro-batch
	// closes at MaxBatch requests or after MaxWait, whichever first.
	// MaxBatch ≤ 1 disables coalescing.
	MaxBatch int
	MaxWait  time.Duration
	// FeatureCacheBytes budgets the gathered-input-feature cache;
	// EmbedCacheBytes budgets the final-layer embedding cache. ≤ 0
	// disables the respective cache.
	FeatureCacheBytes int64
	EmbedCacheBytes   int64
	// FeatPrecision selects feature storage (see ModelSpec.FeatPrecision):
	// quant.FP32 (default) or quant.BF16. Single-process serving only.
	FeatPrecision quant.Precision
}

// applyDefaults fills the zero-value Config fields with distgnn-train's
// defaults.
func (cfg *Config) applyDefaults() {
	if cfg.Arch == "" {
		cfg.Arch = ArchGraphSAGE
	}
	if cfg.NumLayers == 0 {
		cfg.NumLayers = 3
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 64
	}
}

// Server is the HTTP inference front end: /predict, /embed, /stats,
// /healthz. In shard mode (NewShard) it additionally routes requests for
// vertices owned by another rank to that rank's server.
type Server struct {
	engine *Engine
	co     *Coalescer
	emb    *Cache[int32, []float32]
	cfg    Config
	mux    *http.ServeMux
	start  time.Time
	shard  *shardState // nil in single-process mode
	proxy  http.Client

	predicts atomic.Int64
	embeds   atomic.Int64
}

// New loads the checkpoint into a forward-only model described by cfg and
// assembles the serving pipeline. A checkpoint whose parameter names or
// shapes disagree with the requested arch/dims fails immediately with a
// descriptive error rather than serving garbage.
func New(ds *datasets.Dataset, checkpoint io.Reader, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	eng, err := NewEngine(ds, ModelSpec{
		Arch: cfg.Arch, Hidden: cfg.Hidden, OutDim: cfg.OutDim,
		NumLayers: cfg.NumLayers, NumHeads: cfg.NumHeads,
		FeatPrecision: cfg.FeatPrecision,
	}, cfg.Fanouts, cfg.FeatureCacheBytes)
	if err != nil {
		return nil, err
	}
	if err := nn.ReadParams(checkpoint, eng.Params()); err != nil {
		return nil, fmt.Errorf("serve: checkpoint does not match requested model %s: %w "+
			"(distgnn-train prints the hyperparameters next to \"checkpoint written\" — pass the same -arch/-hidden/-layers/-heads here)",
			eng.Spec(), err)
	}
	return newServer(eng, cfg), nil
}

// newServer assembles the HTTP pipeline around a ready engine.
func newServer(eng *Engine, cfg Config) *Server {
	s := &Server{
		engine: eng,
		emb:    NewCache[int32, []float32](cfg.EmbedCacheBytes, 0),
		cfg:    cfg,
		mux:    http.NewServeMux(),
		start:  time.Now(),
		proxy:  http.Client{Timeout: 30 * time.Second},
	}
	s.co = NewCoalescer(s.inferAndCache, cfg.MaxBatch, cfg.MaxWait)
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/embed", s.handleEmbed)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Engine exposes the underlying inference engine (benchmarks and tests).
func (s *Server) Engine() *Engine { return s.engine }

// Handler returns the HTTP handler for all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Router returns the shard router, or nil for a single-process server.
func (s *Server) Router() *Router {
	if s.shard == nil {
		return nil
	}
	return s.shard.router
}

// Close stops the request coalescer and, in shard mode, the halo-fetch
// endpoint. The comm transport stays owned by the caller.
func (s *Server) Close() {
	s.co.Close()
	if s.shard != nil {
		s.shard.rr.Close()
	}
}

// inferAndCache is the coalescer's batch function: one engine pass, then
// the final-layer rows are published to the embedding cache so later
// requests for the same vertices short-circuit inference entirely.
func (s *Server) inferAndCache(vertices []int32) (*tensor.Matrix, error) {
	out, err := s.engine.Infer(vertices)
	if err != nil {
		return nil, err
	}
	for i, v := range vertices {
		row := append([]float32(nil), out.Row(i)...)
		s.emb.Put(v, row, 4*len(row))
	}
	return out, nil
}

// lookup serves a vertex's final-layer output: embedding cache first, then
// the coalesced inference path.
func (s *Server) lookup(r *http.Request, vertex int32) ([]float32, error) {
	if row, ok := s.emb.Get(vertex); ok {
		return row, nil
	}
	return s.co.Submit(r.Context(), vertex)
}

// PredictResponse is the /predict payload.
type PredictResponse struct {
	Vertex int32     `json:"vertex"`
	Class  int       `json:"class"`
	Logits []float32 `json:"logits"`
}

// EmbedResponse is the /embed payload.
type EmbedResponse struct {
	Vertex    int32     `json:"vertex"`
	Embedding []float32 `json:"embedding"`
}

// Stats is the /stats payload. Shard is present only in shard mode.
type Stats struct {
	UptimeSeconds  float64        `json:"uptime_seconds"`
	Arch           Arch           `json:"arch"`
	Mode           string         `json:"mode"`
	Model          string         `json:"model"`
	Predicts       int64          `json:"predicts"`
	Embeds         int64          `json:"embeds"`
	Coalescer      CoalescerStats `json:"coalescer"`
	Engine         EngineStats    `json:"engine"`
	FeatureCache   CacheStats     `json:"feature_cache"`
	EmbeddingCache CacheStats     `json:"embedding_cache"`
	Shard          *ShardStats    `json:"shard,omitempty"`
}

// StatsSnapshot returns the same snapshot /stats serves.
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Arch:           s.engine.Spec().Arch,
		Mode:           s.engine.Mode(),
		Model:          s.engine.Spec().String(),
		Predicts:       s.predicts.Load(),
		Embeds:         s.embeds.Load(),
		Coalescer:      s.co.Stats(),
		Engine:         s.engine.Stats(),
		FeatureCache:   s.engine.FeatureCacheStats(),
		EmbeddingCache: s.emb.Stats(),
	}
	if s.shard != nil {
		sh := s.shard.stats()
		st.Shard = &sh
	}
	return st
}

// routeIfRemote proxies the request one hop to the vertex's owner rank when
// this rank is not the owner and the owner's address is known. It reports
// whether the request was handled (proxied). A request that already carries
// the routed marker is always served locally — the sharded engine can
// answer any vertex via halo fetches, so routing is a locality optimization
// that must terminate, never a correctness requirement.
func (s *Server) routeIfRemote(w http.ResponseWriter, r *http.Request, vertex int32) bool {
	if s.shard == nil {
		return false
	}
	if r.Header.Get(routedHeader) != "" {
		s.shard.routedIn.Add(1)
		return false
	}
	owner := s.shard.router.Owner(vertex)
	if owner == s.shard.rank {
		return false
	}
	addr := s.shard.router.Addr(owner)
	if addr == "" {
		return false
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		addr+r.URL.Path+"?"+r.URL.RawQuery, nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return true
	}
	req.Header.Set(routedHeader, "1")
	resp, err := s.proxy.Do(req)
	if err != nil {
		httpError(w, http.StatusBadGateway,
			fmt.Errorf("routing vertex %d to owner rank %d at %s: %v", vertex, owner, addr, err))
		return true
	}
	defer resp.Body.Close()
	s.shard.routedOut.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	vertex, ok := s.vertexParam(w, r)
	if !ok {
		return
	}
	if s.routeIfRemote(w, r, vertex) {
		return
	}
	s.predicts.Add(1)
	row, err := s.lookup(r, vertex)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, PredictResponse{Vertex: vertex, Class: argmax(row), Logits: row})
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	vertex, ok := s.vertexParam(w, r)
	if !ok {
		return
	}
	if s.routeIfRemote(w, r, vertex) {
		return
	}
	s.embeds.Add(1)
	row, err := s.lookup(r, vertex)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, EmbedResponse{Vertex: vertex, Embedding: row})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.StatsSnapshot())
}

// vertexParam parses and range-checks the ?vertex= query parameter.
func (s *Server) vertexParam(w http.ResponseWriter, r *http.Request) (int32, bool) {
	raw := r.URL.Query().Get("vertex")
	if raw == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing ?vertex= parameter"))
		return 0, false
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad vertex %q: %v", raw, err))
		return 0, false
	}
	if v < 0 || int(v) >= s.engine.ds.G.NumVertices {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("vertex %d out of range [0,%d)", v, s.engine.ds.G.NumVertices))
		return 0, false
	}
	return int32(v), true
}

// argmax matches tensor.Matrix.ArgmaxRows: ties resolve to the lowest
// index.
func argmax(row []float32) int {
	best, bestJ := float32(-1), 0
	for j, v := range row {
		if j == 0 || v > best {
			best, bestJ = v, j
		}
	}
	return bestJ
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
