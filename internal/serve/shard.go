package serve

import (
	"fmt"
	"io"
	"sync/atomic"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/featstore"
	"distgnn/internal/graph"
	"distgnn/internal/minibatch"
	"distgnn/internal/nn"
	"distgnn/internal/obs"
	"distgnn/internal/partition"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// shard.go is partition-parallel serving: the engine split across ranks so
// inference scales past one process the same way training does. Each rank
// owns one vertex partition (internal/partition's vertex-cut, reduced to a
// unique owner per vertex) and serves features only from that partition's
// slice; the graph topology — cheap next to features — is replicated so
// exact k-hop block extraction enumerates neighbors in the very same CSR
// order as the single-process engine, which is what keeps exact-mode
// logits bit-identical across 1, 2, or 4 shards, both transports, and both
// architectures. The one stage that differs is the input-frontier feature
// gather: positions owned locally read the resident slab, halo positions
// are batched into one tagged fetch per owner rank over the comm.Transport
// (serverpc.go's reserved serve tag range) and cached in a per-rank LRU.
//
// Sharding here is of the serving *data path*: after construction the
// engine reads owned features from the slab and everything else over the
// fabric, never ds.Features. The synthetic datasets this repo runs on are
// regenerated whole in every process (there is nothing to download or
// partially load), so per-process memory still includes the generator's
// full matrix; a deployment with a real feature store would materialize
// only the owned slice and the engine would not notice the difference.
//
// Routing is stateless: every rank derives the same owner table from the
// same deterministic partitioning, so any rank can answer any request —
// requests for vertices owned elsewhere are proxied one hop to the owner,
// whose embedding cache then accumulates that vertex's traffic.

// routedHeader marks a proxied request so routing terminates after one hop
// even if two ranks ever disagreed about ownership.
const routedHeader = "X-Distgnn-Routed"

// PeerAddr names one shard's HTTP endpoint.
type PeerAddr struct {
	Rank int
	Addr string
}

// Router maps vertices to their owner shard and the owner's HTTP address.
// Routing depends only on the owner table — peer lists are keyed by rank,
// so the order peers are supplied in never changes a routing decision.
type Router struct {
	owners []int32
	shards int
	addrs  []string // rank-indexed; empty string = no HTTP endpoint known
}

// NewRouter builds a router over an owner table (one owner in [0, shards)
// per vertex) and an HTTP peer list in any order. Peers are optional: a
// router with no addresses still answers Owner lookups (engine-only use).
func NewRouter(owners []int32, shards int, peers []PeerAddr) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("serve: router needs ≥1 shard, got %d", shards)
	}
	for v, o := range owners {
		if o < 0 || int(o) >= shards {
			return nil, fmt.Errorf("serve: vertex %d owned by shard %d outside [0,%d)", v, o, shards)
		}
	}
	r := &Router{owners: owners, shards: shards, addrs: make([]string, shards)}
	for _, p := range peers {
		if p.Rank < 0 || p.Rank >= shards {
			return nil, fmt.Errorf("serve: peer address for rank %d outside [0,%d)", p.Rank, shards)
		}
		if r.addrs[p.Rank] != "" && r.addrs[p.Rank] != p.Addr {
			return nil, fmt.Errorf("serve: conflicting addresses for rank %d: %q and %q",
				p.Rank, r.addrs[p.Rank], p.Addr)
		}
		r.addrs[p.Rank] = p.Addr
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Owner returns the shard that owns vertex v.
func (r *Router) Owner(v int32) int { return int(r.owners[v]) }

// Addr returns rank's HTTP address, or "" when none was supplied.
func (r *Router) Addr(rank int) string {
	if rank < 0 || rank >= len(r.addrs) {
		return ""
	}
	return r.addrs[rank]
}

// ShardConfig configures one rank of a sharded serving fleet.
type ShardConfig struct {
	// Rank is this engine's rank; Shards the fleet size.
	Rank, Shards int
	// Transport is the established comm fabric over exactly Shards ranks —
	// a single-rank TCP endpoint or the shared in-process transport. It
	// stays owned by the caller; Server.Close does not close it.
	Transport comm.Transport
	// HTTPPeers lists the fleet's HTTP addresses (any order, keyed by
	// rank) so non-owner ranks can proxy requests to the owner. Optional:
	// without it every rank answers every vertex locally.
	HTTPPeers []PeerAddr
	// PartitionSeed seeds the deterministic partitioning every rank must
	// derive identically (default 1).
	PartitionSeed int64
	// Partitioner assigns edges to partitions; default Libra{Seed:
	// PartitionSeed}, the paper's vertex-cut.
	Partitioner partition.Partitioner
	// RemoteCacheBytes budgets the per-rank LRU of halo features fetched
	// from peers; 0 defaults to Config.FeatureCacheBytes, negative
	// disables.
	RemoteCacheBytes int64
}

// ShardStats is the per-shard block of /stats: ownership shape, routing
// traffic, and the halo-fetch hit/miss counters.
type ShardStats struct {
	Rank        int    `json:"rank"`
	Shards      int    `json:"shards"`
	Partitioner string `json:"partitioner"`
	// OwnedVertices / HaloVerticesStatic describe the partition itself:
	// how many vertices this rank owns, and how many clones its partition
	// holds that are owned elsewhere.
	OwnedVertices      int `json:"owned_vertices"`
	HaloVerticesStatic int `json:"halo_vertices_static"`
	// RoutedOut counts requests proxied to their owner rank; RoutedIn
	// counts proxied requests that arrived here.
	RoutedOut int64 `json:"routed_out"`
	RoutedIn  int64 `json:"routed_in"`
	// HaloHits/HaloMisses count gather-time halo feature lookups served
	// from the remote cache vs fetched over the fabric. HaloFetches is the
	// RPC count (one per owner rank per gather); HaloFetchedVertices the
	// vertex rows those RPCs carried.
	HaloHits            int64 `json:"halo_hits"`
	HaloMisses          int64 `json:"halo_misses"`
	HaloFetches         int64 `json:"halo_fetches"`
	HaloFetchedVertices int64 `json:"halo_fetched_vertices"`
	HaloFetchedBytes    int64 `json:"halo_fetched_bytes"`
	// PeerServedFetches/PeerServedVertices count the fetch RPCs this rank
	// answered for its peers; PeerServedBytes the reply payload volume out.
	PeerServedFetches  int64      `json:"peer_served_fetches"`
	PeerServedVertices int64      `json:"peer_served_vertices"`
	PeerServedBytes    int64      `json:"peer_served_bytes"`
	RemoteCache        CacheStats `json:"remote_cache"`
}

// shardState is one rank's slice of the sharded engine: the shared
// feature-sourcing plane (featstore.Sharded: owned slab, halo fetch
// endpoint, remote LRU) plus the serving-only pieces — the HTTP router, the
// partition's static halo size, and the proxy-traffic counters.
type shardState struct {
	partitioner string
	router      *Router
	g           *graph.CSR // replicated topology, for owned block extraction
	fs          *featstore.Sharded
	haloStatic  int
	net         comm.NetStatsSource // nil when the fabric keeps no counters

	routedOut atomic.Int64
	routedIn  atomic.Int64
}

func newShardState(ds *datasets.Dataset, cfg Config, sc ShardConfig) (*shardState, error) {
	if sc.Shards < 1 {
		return nil, fmt.Errorf("serve: shard count must be ≥1, got %d", sc.Shards)
	}
	if sc.Rank < 0 || sc.Rank >= sc.Shards {
		return nil, fmt.Errorf("serve: shard rank %d outside [0,%d)", sc.Rank, sc.Shards)
	}
	if sc.Transport == nil {
		return nil, fmt.Errorf("serve: shard mode needs a comm.Transport")
	}
	if sc.Transport.Size() != sc.Shards {
		return nil, fmt.Errorf("serve: transport spans %d ranks, shard fleet has %d",
			sc.Transport.Size(), sc.Shards)
	}
	if sc.PartitionSeed == 0 {
		sc.PartitionSeed = 1
	}
	if sc.Partitioner == nil {
		sc.Partitioner = partition.Libra{Seed: sc.PartitionSeed}
	}
	pt, err := partition.Partition(ds.G, sc.Partitioner, sc.Shards, sc.PartitionSeed)
	if err != nil {
		return nil, fmt.Errorf("serve: shard partitioning: %w", err)
	}
	owners := pt.Owners()
	router, err := NewRouter(owners, sc.Shards, sc.HTTPPeers)
	if err != nil {
		return nil, err
	}
	cacheBytes := sc.RemoteCacheBytes
	if cacheBytes == 0 {
		cacheBytes = cfg.FeatureCacheBytes
	}
	fs, err := featstore.NewSharded(featstore.ShardedConfig{
		Rank: sc.Rank, Shards: sc.Shards,
		Transport:  sc.Transport,
		Owners:     owners,
		Features:   ds.Features,
		CacheBytes: cacheBytes,
		Tracer:     cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	st := &shardState{
		partitioner: sc.Partitioner.Name(),
		router:      router,
		g:           ds.G,
		fs:          fs,
		haloStatic:  len(pt.Halo(sc.Rank)),
	}
	if src, ok := sc.Transport.(comm.NetStatsSource); ok {
		st.net = src
	}
	return st, nil
}

// stats snapshots the shard counters: the featstore plane's gather/fetch
// counters plus serve's routing traffic, composed into the pinned /stats
// shape.
func (st *shardState) stats() ShardStats {
	fss := st.fs.Stats()
	return ShardStats{
		Rank: st.fs.Rank(), Shards: st.fs.Shards(), Partitioner: st.partitioner,
		OwnedVertices:       fss.OwnedVertices,
		HaloVerticesStatic:  st.haloStatic,
		RoutedOut:           st.routedOut.Load(),
		RoutedIn:            st.routedIn.Load(),
		HaloHits:            fss.HaloHits,
		HaloMisses:          fss.HaloMisses,
		HaloFetches:         fss.HaloFetches,
		HaloFetchedVertices: fss.HaloFetchedVertices,
		HaloFetchedBytes:    fss.HaloFetchedBytes,
		PeerServedFetches:   fss.PeerServedFetches,
		PeerServedVertices:  fss.PeerServedVertices,
		PeerServedBytes:     fss.PeerServedBytes,
		RemoteCache:         fss.RemoteCache,
	}
}

// shardFeatures is the sharded featureSource: it reads through the shared
// featstore.Sharded plane (local positions from the owned slab, halo
// positions from the remote cache or one batched fetch per owner rank) and
// adds the serving engine's exact-mode block extraction on top.
type shardFeatures struct {
	st *shardState
}

// sampleExact is the shard engine's exact-mode block extraction: the
// partition-aware FullSampleOwned builds the identical Sample FullSample
// would (the bit-identity contract) and hands the input frontier over
// pre-split by owner, so ownership is resolved once per request. topo is
// the engine's per-request topology view (the frozen CSR, or the mutation
// snapshot the request loaded). A non-nil tc gets sample/gather spans plus
// the per-peer halo RTT spans the traced gather records.
func (sf *shardFeatures) sampleExact(topo graph.Topology, seeds []int32, hops int, tc *obs.TraceCtx) (*minibatch.Sample, *tensor.Matrix, error) {
	fs := sf.st.fs
	stop := tc.StartSpan("sample")
	s, split := minibatch.FullSampleOwned(topo, seeds, hops, fs.Owners(), fs.Shards())
	stop()
	stop = tc.StartSpan("gather")
	x, err := fs.GatherSplitTraced(s.InputFrontier(), split, tc)
	stop()
	return s, x, err
}

// Gather satisfies featureSource for the engine's non-exact paths.
func (sf *shardFeatures) Gather(frontier []int32) (*tensor.Matrix, error) {
	return sf.st.fs.Gather(frontier)
}

// NewShard builds one rank of a sharded serving fleet: the same
// checkpoint-loading, coalescing, caching HTTP server New builds, but with
// the engine's feature gather split across the fleet. Shard mode is
// exact-only — the bit-identity contract it exists for has no sampled
// counterpart — so cfg.Fanouts must be empty.
func NewShard(ds *datasets.Dataset, checkpoint io.Reader, cfg Config, sc ShardConfig) (*Server, error) {
	if len(cfg.Fanouts) > 0 {
		return nil, fmt.Errorf("serve: shard mode is exact-only (drop -fanouts)")
	}
	if cfg.FeatPrecision != quant.FP32 {
		// Shards exchange halo feature rows as fp32 over the comm fabric;
		// the cross-shard bit-identity harness is defined over that format.
		return nil, fmt.Errorf("serve: shard mode is fp32-only (drop -feat-precision)")
	}
	cfg.applyDefaults()
	st, err := newShardState(ds, cfg, sc)
	if err != nil {
		return nil, err
	}
	// Shard mode has no local gathered-feature cache — local rows come
	// straight from the resident slab; the remote cache covers the fetch
	// path — so the engine's cache budget is zero.
	eng, err := NewEngine(ds, ModelSpec{
		Arch: cfg.Arch, Hidden: cfg.Hidden, OutDim: cfg.OutDim,
		NumLayers: cfg.NumLayers, NumHeads: cfg.NumHeads,
	}, nil, 0)
	if err != nil {
		return nil, err
	}
	eng.src = &shardFeatures{st: st}
	if err := nn.ReadParams(checkpoint, eng.Params()); err != nil {
		return nil, fmt.Errorf("serve: checkpoint does not match requested model %s: %w "+
			"(distgnn-train prints the hyperparameters next to \"checkpoint written\" — pass the same -arch/-hidden/-layers/-heads here)",
			eng.Spec(), err)
	}
	s := newServer(eng, cfg)
	s.shard = st
	if s.upd != nil {
		// Receive the fleet's update fan-out frames on the shared featstore
		// endpoint: every rank applies every batch so the replicated
		// topology stays identical fleet-wide.
		st.fs.SetUpdateHandler(s.handleUpdateFrame)
	}
	if cfg.Metrics != nil {
		s.registerShardMetrics(cfg.Metrics)
	}
	return s, nil
}
