package serve

import (
	"fmt"
	"io"
	"sync/atomic"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/graph"
	"distgnn/internal/minibatch"
	"distgnn/internal/nn"
	"distgnn/internal/partition"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// shard.go is partition-parallel serving: the engine split across ranks so
// inference scales past one process the same way training does. Each rank
// owns one vertex partition (internal/partition's vertex-cut, reduced to a
// unique owner per vertex) and serves features only from that partition's
// slice; the graph topology — cheap next to features — is replicated so
// exact k-hop block extraction enumerates neighbors in the very same CSR
// order as the single-process engine, which is what keeps exact-mode
// logits bit-identical across 1, 2, or 4 shards, both transports, and both
// architectures. The one stage that differs is the input-frontier feature
// gather: positions owned locally read the resident slab, halo positions
// are batched into one tagged fetch per owner rank over the comm.Transport
// (serverpc.go's reserved serve tag range) and cached in a per-rank LRU.
//
// Sharding here is of the serving *data path*: after construction the
// engine reads owned features from the slab and everything else over the
// fabric, never ds.Features. The synthetic datasets this repo runs on are
// regenerated whole in every process (there is nothing to download or
// partially load), so per-process memory still includes the generator's
// full matrix; a deployment with a real feature store would materialize
// only the owned slice and the engine would not notice the difference.
//
// Routing is stateless: every rank derives the same owner table from the
// same deterministic partitioning, so any rank can answer any request —
// requests for vertices owned elsewhere are proxied one hop to the owner,
// whose embedding cache then accumulates that vertex's traffic.

// routedHeader marks a proxied request so routing terminates after one hop
// even if two ranks ever disagreed about ownership.
const routedHeader = "X-Distgnn-Routed"

// PeerAddr names one shard's HTTP endpoint.
type PeerAddr struct {
	Rank int
	Addr string
}

// Router maps vertices to their owner shard and the owner's HTTP address.
// Routing depends only on the owner table — peer lists are keyed by rank,
// so the order peers are supplied in never changes a routing decision.
type Router struct {
	owners []int32
	shards int
	addrs  []string // rank-indexed; empty string = no HTTP endpoint known
}

// NewRouter builds a router over an owner table (one owner in [0, shards)
// per vertex) and an HTTP peer list in any order. Peers are optional: a
// router with no addresses still answers Owner lookups (engine-only use).
func NewRouter(owners []int32, shards int, peers []PeerAddr) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("serve: router needs ≥1 shard, got %d", shards)
	}
	for v, o := range owners {
		if o < 0 || int(o) >= shards {
			return nil, fmt.Errorf("serve: vertex %d owned by shard %d outside [0,%d)", v, o, shards)
		}
	}
	r := &Router{owners: owners, shards: shards, addrs: make([]string, shards)}
	for _, p := range peers {
		if p.Rank < 0 || p.Rank >= shards {
			return nil, fmt.Errorf("serve: peer address for rank %d outside [0,%d)", p.Rank, shards)
		}
		if r.addrs[p.Rank] != "" && r.addrs[p.Rank] != p.Addr {
			return nil, fmt.Errorf("serve: conflicting addresses for rank %d: %q and %q",
				p.Rank, r.addrs[p.Rank], p.Addr)
		}
		r.addrs[p.Rank] = p.Addr
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Owner returns the shard that owns vertex v.
func (r *Router) Owner(v int32) int { return int(r.owners[v]) }

// Addr returns rank's HTTP address, or "" when none was supplied.
func (r *Router) Addr(rank int) string {
	if rank < 0 || rank >= len(r.addrs) {
		return ""
	}
	return r.addrs[rank]
}

// ShardConfig configures one rank of a sharded serving fleet.
type ShardConfig struct {
	// Rank is this engine's rank; Shards the fleet size.
	Rank, Shards int
	// Transport is the established comm fabric over exactly Shards ranks —
	// a single-rank TCP endpoint or the shared in-process transport. It
	// stays owned by the caller; Server.Close does not close it.
	Transport comm.Transport
	// HTTPPeers lists the fleet's HTTP addresses (any order, keyed by
	// rank) so non-owner ranks can proxy requests to the owner. Optional:
	// without it every rank answers every vertex locally.
	HTTPPeers []PeerAddr
	// PartitionSeed seeds the deterministic partitioning every rank must
	// derive identically (default 1).
	PartitionSeed int64
	// Partitioner assigns edges to partitions; default Libra{Seed:
	// PartitionSeed}, the paper's vertex-cut.
	Partitioner partition.Partitioner
	// RemoteCacheBytes budgets the per-rank LRU of halo features fetched
	// from peers; 0 defaults to Config.FeatureCacheBytes, negative
	// disables.
	RemoteCacheBytes int64
}

// ShardStats is the per-shard block of /stats: ownership shape, routing
// traffic, and the halo-fetch hit/miss counters.
type ShardStats struct {
	Rank        int    `json:"rank"`
	Shards      int    `json:"shards"`
	Partitioner string `json:"partitioner"`
	// OwnedVertices / HaloVerticesStatic describe the partition itself:
	// how many vertices this rank owns, and how many clones its partition
	// holds that are owned elsewhere.
	OwnedVertices      int `json:"owned_vertices"`
	HaloVerticesStatic int `json:"halo_vertices_static"`
	// RoutedOut counts requests proxied to their owner rank; RoutedIn
	// counts proxied requests that arrived here.
	RoutedOut int64 `json:"routed_out"`
	RoutedIn  int64 `json:"routed_in"`
	// HaloHits/HaloMisses count gather-time halo feature lookups served
	// from the remote cache vs fetched over the fabric. HaloFetches is the
	// RPC count (one per owner rank per gather); HaloFetchedVertices the
	// vertex rows those RPCs carried.
	HaloHits            int64 `json:"halo_hits"`
	HaloMisses          int64 `json:"halo_misses"`
	HaloFetches         int64 `json:"halo_fetches"`
	HaloFetchedVertices int64 `json:"halo_fetched_vertices"`
	// PeerServedFetches/PeerServedVertices count the fetch RPCs this rank
	// answered for its peers.
	PeerServedFetches  int64      `json:"peer_served_fetches"`
	PeerServedVertices int64      `json:"peer_served_vertices"`
	RemoteCache        CacheStats `json:"remote_cache"`
}

// shardState is one rank's slice of the sharded engine: the owned feature
// slab, the owner table and router, the remote-feature cache, and the
// request/reply endpoint answering peers' halo fetches.
type shardState struct {
	rank, shards int
	partitioner  string
	owners       []int32
	router       *Router
	g            *graph.CSR     // replicated topology, for owned block extraction
	slab         *tensor.Matrix // owned feature rows, compact
	slabRow      []int32        // global vertex → slab row, -1 when not owned
	featDim      int
	rr           *comm.ReqRep
	remote       *Cache[int32, []float32]
	haloStatic   int

	haloHits       atomic.Int64
	haloMisses     atomic.Int64
	haloFetches    atomic.Int64
	haloVertices   atomic.Int64
	served         atomic.Int64
	servedVertices atomic.Int64
	routedOut      atomic.Int64
	routedIn       atomic.Int64
}

func newShardState(ds *datasets.Dataset, cfg Config, sc ShardConfig) (*shardState, error) {
	if sc.Shards < 1 {
		return nil, fmt.Errorf("serve: shard count must be ≥1, got %d", sc.Shards)
	}
	if sc.Rank < 0 || sc.Rank >= sc.Shards {
		return nil, fmt.Errorf("serve: shard rank %d outside [0,%d)", sc.Rank, sc.Shards)
	}
	if sc.Transport == nil {
		return nil, fmt.Errorf("serve: shard mode needs a comm.Transport")
	}
	if sc.Transport.Size() != sc.Shards {
		return nil, fmt.Errorf("serve: transport spans %d ranks, shard fleet has %d",
			sc.Transport.Size(), sc.Shards)
	}
	if sc.PartitionSeed == 0 {
		sc.PartitionSeed = 1
	}
	if sc.Partitioner == nil {
		sc.Partitioner = partition.Libra{Seed: sc.PartitionSeed}
	}
	pt, err := partition.Partition(ds.G, sc.Partitioner, sc.Shards, sc.PartitionSeed)
	if err != nil {
		return nil, fmt.Errorf("serve: shard partitioning: %w", err)
	}
	owners := pt.Owners()
	router, err := NewRouter(owners, sc.Shards, sc.HTTPPeers)
	if err != nil {
		return nil, err
	}

	st := &shardState{
		rank: sc.Rank, shards: sc.Shards,
		partitioner: sc.Partitioner.Name(),
		owners:      owners,
		router:      router,
		g:           ds.G,
		featDim:     ds.Features.Cols,
		slabRow:     make([]int32, ds.G.NumVertices),
		haloStatic:  len(pt.Halo(sc.Rank)),
	}
	cacheBytes := sc.RemoteCacheBytes
	if cacheBytes == 0 {
		cacheBytes = cfg.FeatureCacheBytes
	}
	st.remote = NewCache[int32, []float32](cacheBytes, 0)

	// Materialize this rank's feature slice. Everything after this copy
	// reads the slab, never ds.Features — the engine's view of non-owned
	// features exists only behind the fetch protocol.
	owned := 0
	for v := range st.slabRow {
		if owners[v] == int32(sc.Rank) {
			st.slabRow[v] = int32(owned)
			owned++
		} else {
			st.slabRow[v] = -1
		}
	}
	st.slab = tensor.New(owned, st.featDim)
	for v, row := range st.slabRow {
		if row >= 0 {
			copy(st.slab.Row(int(row)), ds.Features.Row(v))
		}
	}

	st.rr, err = comm.NewReqRep(sc.Transport, sc.Rank, st.handleFetch)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// handleFetch answers a peer's halo feature fetch: the request is vertex
// IDs (bit-packed int32s), the reply their owned feature rows concatenated
// in request order.
func (st *shardState) handleFetch(from int, req []float32) ([]float32, error) {
	ids := comm.F32ToInt32s(req)
	out := make([]float32, 0, len(ids)*st.featDim)
	for _, v := range ids {
		if v < 0 || int(v) >= len(st.slabRow) || st.slabRow[v] < 0 {
			return nil, fmt.Errorf("serve: rank %d does not own vertex %d (fetch from rank %d)",
				st.rank, v, from)
		}
		out = append(out, st.slab.Row(int(st.slabRow[v]))...)
	}
	st.served.Add(1)
	st.servedVertices.Add(int64(len(ids)))
	return out, nil
}

// stats snapshots the shard counters.
func (st *shardState) stats() ShardStats {
	return ShardStats{
		Rank: st.rank, Shards: st.shards, Partitioner: st.partitioner,
		OwnedVertices:       st.slab.Rows,
		HaloVerticesStatic:  st.haloStatic,
		RoutedOut:           st.routedOut.Load(),
		RoutedIn:            st.routedIn.Load(),
		HaloHits:            st.haloHits.Load(),
		HaloMisses:          st.haloMisses.Load(),
		HaloFetches:         st.haloFetches.Load(),
		HaloFetchedVertices: st.haloVertices.Load(),
		PeerServedFetches:   st.served.Load(),
		PeerServedVertices:  st.servedVertices.Load(),
		RemoteCache:         st.remote.Stats(),
	}
}

// shardFeatures is the sharded featureSource: local frontier positions read
// the slab, halo positions are served from the remote cache or batched into
// one fetch per owner rank, fanned out concurrently.
type shardFeatures struct {
	st *shardState
}

// sampleExact is the shard engine's exact-mode block extraction: the
// partition-aware FullSampleOwned builds the identical Sample FullSample
// would (the bit-identity contract) and hands the input frontier over
// pre-split by owner, so ownership is resolved once per request.
func (sf *shardFeatures) sampleExact(seeds []int32, hops int) (*minibatch.Sample, *tensor.Matrix, error) {
	s, split := minibatch.FullSampleOwned(sf.st.g, seeds, hops, sf.st.owners, sf.st.shards)
	x, err := sf.gatherSplit(s.InputFrontier(), split)
	return s, x, err
}

func (sf *shardFeatures) gather(frontier []int32) (*tensor.Matrix, error) {
	return sf.gatherSplit(frontier, minibatch.SplitByOwner(frontier, sf.st.owners, sf.st.shards))
}

func (sf *shardFeatures) gatherSplit(frontier []int32, split [][]int32) (*tensor.Matrix, error) {
	st := sf.st
	x := tensor.New(len(frontier), st.featDim)

	for _, i := range split[st.rank] {
		copy(x.Row(int(i)), st.slab.Row(int(st.slabRow[frontier[i]])))
	}

	var peers []int
	var reqs [][]float32
	var missPos [][]int32
	for p := 0; p < st.shards; p++ {
		if p == st.rank || len(split[p]) == 0 {
			continue
		}
		var miss []int32
		for _, i := range split[p] {
			v := frontier[i]
			if row, ok := st.remote.Get(v); ok {
				st.haloHits.Add(1)
				copy(x.Row(int(i)), row)
			} else {
				st.haloMisses.Add(1)
				miss = append(miss, i)
			}
		}
		if len(miss) == 0 {
			continue
		}
		ids := make([]int32, len(miss))
		for j, i := range miss {
			ids[j] = frontier[i]
		}
		peers = append(peers, p)
		reqs = append(reqs, comm.Int32sToF32(ids))
		missPos = append(missPos, miss)
	}
	if len(peers) == 0 {
		return x, nil
	}
	replies, err := st.rr.CallAll(peers, reqs)
	if err != nil {
		return nil, fmt.Errorf("serve: halo fetch: %w", err)
	}
	for k, rep := range replies {
		pos := missPos[k]
		if len(rep) != len(pos)*st.featDim {
			return nil, fmt.Errorf("serve: halo fetch from rank %d returned %d floats for %d vertices × %d features",
				peers[k], len(rep), len(pos), st.featDim)
		}
		for j, i := range pos {
			row := rep[j*st.featDim : (j+1)*st.featDim]
			copy(x.Row(int(i)), row)
			st.remote.Put(frontier[i], append([]float32(nil), row...), 4*st.featDim)
		}
		st.haloFetches.Add(1)
		st.haloVertices.Add(int64(len(pos)))
	}
	return x, nil
}

// NewShard builds one rank of a sharded serving fleet: the same
// checkpoint-loading, coalescing, caching HTTP server New builds, but with
// the engine's feature gather split across the fleet. Shard mode is
// exact-only — the bit-identity contract it exists for has no sampled
// counterpart — so cfg.Fanouts must be empty.
func NewShard(ds *datasets.Dataset, checkpoint io.Reader, cfg Config, sc ShardConfig) (*Server, error) {
	if len(cfg.Fanouts) > 0 {
		return nil, fmt.Errorf("serve: shard mode is exact-only (drop -fanouts)")
	}
	if cfg.FeatPrecision != quant.FP32 {
		// Shards exchange halo feature rows as fp32 over the comm fabric;
		// the cross-shard bit-identity harness is defined over that format.
		return nil, fmt.Errorf("serve: shard mode is fp32-only (drop -feat-precision)")
	}
	cfg.applyDefaults()
	st, err := newShardState(ds, cfg, sc)
	if err != nil {
		return nil, err
	}
	// Shard mode has no local gathered-feature cache — local rows come
	// straight from the resident slab; the remote cache covers the fetch
	// path — so the engine's cache budget is zero.
	eng, err := NewEngine(ds, ModelSpec{
		Arch: cfg.Arch, Hidden: cfg.Hidden, OutDim: cfg.OutDim,
		NumLayers: cfg.NumLayers, NumHeads: cfg.NumHeads,
	}, nil, 0)
	if err != nil {
		return nil, err
	}
	eng.src = &shardFeatures{st: st}
	if err := nn.ReadParams(checkpoint, eng.Params()); err != nil {
		return nil, fmt.Errorf("serve: checkpoint does not match requested model %s: %w "+
			"(distgnn-train prints the hyperparameters next to \"checkpoint written\" — pass the same -arch/-hidden/-layers/-heads here)",
			eng.Spec(), err)
	}
	s := newServer(eng, cfg)
	s.shard = st
	return s, nil
}
