package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/partition"
	"distgnn/internal/tensor"
)

// trainedGATCheckpoint trains a small GAT for a few steps and returns the
// dataset, its full-graph forward output, the serialized checkpoint, and
// the matching serve Config — the GAT arm of the conformance fixtures.
func trainedGATCheckpoint(t *testing.T) (*datasets.Dataset, *tensor.Matrix, []byte, Config) {
	t.Helper()
	ds, err := datasets.Load("reddit-sim", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	heads := 2
	out := ((ds.NumClasses + heads - 1) / heads) * heads
	gat, err := model.NewGAT(ds.G, model.GATConfig{
		InDim: ds.Features.Cols, Hidden: 16, OutDim: out,
		NumLayers: 2, NumHeads: heads, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	adam := nn.NewAdam(0.01, 0)
	params := gat.Params()
	for e := 0; e < 2; e++ {
		logits := gat.Forward(ds.Features, true)
		_, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
		nn.ZeroGrads(params)
		gat.Backward(dlogits)
		adam.Step(params)
	}
	var buf bytes.Buffer
	if err := nn.WriteParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Arch: ArchGAT, Hidden: 16, NumLayers: 2, NumHeads: heads, OutDim: out}
	return ds, gat.Forward(ds.Features, false), buf.Bytes(), cfg
}

// shardFixture returns one architecture's conformance fixture: dataset,
// full-graph reference logits, checkpoint, serve config.
func shardFixture(t *testing.T, arch Arch) (*datasets.Dataset, *tensor.Matrix, []byte, Config) {
	t.Helper()
	if arch == ArchGAT {
		return trainedGATCheckpoint(t)
	}
	ds, m, ckpt := trainedSageCheckpoint(t, 16, 2)
	return ds, m.Forward(ds.Features, false), ckpt, Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2}
}

// shardFleet is an in-test sharded serving fleet: one Server per rank, an
// optional real HTTP listener per rank, and the comm fabric underneath.
type shardFleet struct {
	servers []*Server
	addrs   []string
	https   []*http.Server
	fabrics []comm.Transport
}

// newShardFleet stands a fleet up over the named transport ("inproc" or
// "tcp"). withHTTP binds a real listener per rank so routing/proxying runs
// over actual sockets.
func newShardFleet(t *testing.T, ds *datasets.Dataset, ckpt []byte, cfg Config,
	shards int, transport string, withHTTP bool, remoteCacheBytes int64) *shardFleet {
	t.Helper()
	f := &shardFleet{}
	switch transport {
	case "inproc":
		tr := comm.NewProcTransport(shards)
		for r := 0; r < shards; r++ {
			f.fabrics = append(f.fabrics, tr)
		}
	case "tcp":
		eps, err := comm.NewLoopbackTCP(shards, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		f.fabrics = eps
	default:
		t.Fatalf("unknown transport %q", transport)
	}

	var peers []PeerAddr
	var lns []net.Listener
	if withHTTP {
		for r := 0; r < shards; r++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			lns = append(lns, ln)
			f.addrs = append(f.addrs, ln.Addr().String())
			peers = append(peers, PeerAddr{Rank: r, Addr: ln.Addr().String()})
		}
	}
	for r := 0; r < shards; r++ {
		srv, err := NewShard(ds, bytes.NewReader(ckpt), cfg, ShardConfig{
			Rank: r, Shards: shards, Transport: f.fabrics[r],
			HTTPPeers: peers, RemoteCacheBytes: remoteCacheBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.servers = append(f.servers, srv)
		if withHTTP {
			hs := &http.Server{Handler: srv.Handler()}
			f.https = append(f.https, hs)
			go hs.Serve(lns[r])
		}
	}
	return f
}

func (f *shardFleet) close() {
	for _, hs := range f.https {
		hs.Close()
	}
	for _, s := range f.servers {
		s.Close()
	}
	seen := map[comm.Transport]bool{}
	for _, tr := range f.fabrics {
		if !seen[tr] {
			seen[tr] = true
			tr.Close()
		}
	}
}

// TestCrossShardServingConformance is the acceptance pin: exact-mode logits
// from every rank of a 1-, 2-, and 4-shard engine are bit-identical to the
// full-graph forward pass — over both transports, both architectures, and
// both the cold path (halo features crossing the fabric) and the warm path
// (halo features served from the remote cache).
func TestCrossShardServingConformance(t *testing.T) {
	for _, arch := range []Arch{ArchGraphSAGE, ArchGAT} {
		ds, full, ckpt, cfg := shardFixture(t, arch)
		probe := []int32{0, 1, 5, 17, int32(ds.G.NumVertices / 2), int32(ds.G.NumVertices - 1)}
		for _, transport := range []string{"inproc", "tcp"} {
			for _, shards := range []int{1, 2, 4} {
				name := fmt.Sprintf("%s/%s/%d-shard", arch, transport, shards)
				fleet := newShardFleet(t, ds, ckpt, cfg, shards, transport, false, 1<<20)
				for r, srv := range fleet.servers {
					// Cold pass: every halo feature crosses the fabric.
					out, err := srv.Engine().Infer(probe)
					if err != nil {
						t.Fatalf("%s rank %d: %v", name, r, err)
					}
					for i, v := range probe {
						bitsEqual(t, out.Row(i), full.Row(int(v)),
							fmt.Sprintf("%s rank %d cold vs full Forward (vertex %d)", name, r, v))
					}
					// Warm pass: the remote cache now holds the halo rows.
					out, err = srv.Engine().Infer(probe)
					if err != nil {
						t.Fatalf("%s rank %d warm: %v", name, r, err)
					}
					for i, v := range probe {
						bitsEqual(t, out.Row(i), full.Row(int(v)),
							fmt.Sprintf("%s rank %d warm vs full Forward (vertex %d)", name, r, v))
					}
					st := srv.StatsSnapshot().Shard
					if st == nil {
						t.Fatalf("%s rank %d: no shard stats", name, r)
					}
					if shards > 1 {
						if st.HaloFetches == 0 || st.HaloMisses == 0 {
							t.Fatalf("%s rank %d: remote path never exercised: %+v", name, r, st)
						}
						if st.HaloHits == 0 {
							t.Fatalf("%s rank %d: warm pass hit no cached halo rows: %+v", name, r, st)
						}
					} else if st.HaloFetches != 0 {
						t.Fatalf("%s: single shard fetched remotely: %+v", name, st)
					}
				}
				fleet.close()
			}
		}
	}
}

// TestEndToEndTwoShardTCPServe is the integration satellite: train →
// checkpoint → 2-shard fleet over real TCP comm + real HTTP listeners →
// /predict on BOTH ranks, asserting the logits are bit-identical to a
// single-process server loading the same checkpoint. Table-driven over
// GraphSAGE and GAT.
func TestEndToEndTwoShardTCPServe(t *testing.T) {
	for _, arch := range []Arch{ArchGraphSAGE, ArchGAT} {
		t.Run(string(arch), func(t *testing.T) {
			ds, full, ckpt, cfg := shardFixture(t, arch)
			single, err := New(ds, bytes.NewReader(ckpt), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()

			fleet := newShardFleet(t, ds, ckpt, cfg, 2, "tcp", true, 1<<20)
			defer fleet.close()

			probe := []int32{2, 9, 33, int32(ds.G.NumVertices - 2)}
			for _, v := range probe {
				ref, err := single.Engine().Infer([]int32{v})
				if err != nil {
					t.Fatal(err)
				}
				bitsEqual(t, ref.Row(0), full.Row(int(v)), "single-process reference")
				var bodies [][]byte
				for r := range fleet.servers {
					resp, err := http.Get(fmt.Sprintf("http://%s/predict?vertex=%d", fleet.addrs[r], v))
					if err != nil {
						t.Fatal(err)
					}
					var body bytes.Buffer
					body.ReadFrom(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("rank %d vertex %d: status %d: %s", r, v, resp.StatusCode, body.Bytes())
					}
					var pr PredictResponse
					if err := json.Unmarshal(body.Bytes(), &pr); err != nil {
						t.Fatal(err)
					}
					bitsEqual(t, pr.Logits, ref.Row(0),
						fmt.Sprintf("rank %d HTTP /predict vertex %d vs single-process", r, v))
					bodies = append(bodies, body.Bytes())
				}
				if !bytes.Equal(bodies[0], bodies[1]) {
					t.Fatalf("vertex %d: rank responses differ:\n%s\n%s", v, bodies[0], bodies[1])
				}
			}
			// The probe hit both ranks; whichever rank was not the owner
			// must have proxied.
			var routed int64
			for _, srv := range fleet.servers {
				routed += srv.StatsSnapshot().Shard.RoutedOut
			}
			if routed == 0 {
				t.Fatal("no request was routed to its owner rank")
			}
		})
	}
}

// TestRouterRoutesToPartitionOwner is the router property test: every
// vertex routes to exactly its partition owner, and the routing decision is
// invariant under any permutation of the peer list.
func TestRouterRoutesToPartitionOwner(t *testing.T) {
	ds, err := datasets.Load("reddit-sim", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	pt, err := partition.Partition(ds.G, partition.Libra{Seed: 1}, shards, 1)
	if err != nil {
		t.Fatal(err)
	}
	owners := pt.Owners()
	peers := make([]PeerAddr, shards)
	for r := range peers {
		peers[r] = PeerAddr{Rank: r, Addr: fmt.Sprintf("10.0.0.%d:84%02d", r, r)}
	}
	ref, err := NewRouter(owners, shards, peers)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		shuffled := append([]PeerAddr(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		router, err := NewRouter(owners, shards, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < ds.G.NumVertices; v++ {
			o := router.Owner(int32(v))
			if o != int(owners[v]) {
				t.Fatalf("trial %d: vertex %d routed to %d, partition owner is %d", trial, v, o, owners[v])
			}
			if pt.LocalOf[o][v] < 0 {
				t.Fatalf("trial %d: vertex %d routed to shard %d holding no clone", trial, v, o)
			}
			if router.Addr(o) != ref.Addr(o) {
				t.Fatalf("trial %d: rank %d address moved under permutation", trial, o)
			}
		}
	}
	// Defined misuse: owner out of range, conflicting peer addresses.
	if _, err := NewRouter([]int32{0, 5}, 2, nil); err == nil {
		t.Fatal("out-of-range owner must be rejected")
	}
	if _, err := NewRouter(owners, shards, []PeerAddr{
		{Rank: 0, Addr: "a:1"}, {Rank: 0, Addr: "b:2"},
	}); err == nil {
		t.Fatal("conflicting addresses for one rank must be rejected")
	}
	if _, err := NewRouter(owners, shards, []PeerAddr{{Rank: shards, Addr: "a:1"}}); err == nil {
		t.Fatal("peer rank outside the fleet must be rejected")
	}
}

// TestShardRaceConcurrentCrossShardFanOut drives the coalescer, the remote
// halo cache, and the fetch protocol from concurrent clients on both ranks
// at once — the race-mode satellite. The remote cache budget is tiny so
// concurrent gathers race Get/Put/evict on the same shard locks, and every
// response must still carry the vertex's own bit-exact logits.
func TestShardRaceConcurrentCrossShardFanOut(t *testing.T) {
	ds, m, ckpt := trainedSageCheckpoint(t, 16, 2)
	cfg := Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		MaxBatch: 8, MaxWait: time.Millisecond, EmbedCacheBytes: 1 << 18}
	fleet := newShardFleet(t, ds, ckpt, cfg, 2, "inproc", true, 1<<15)
	defer fleet.close()
	full := m.Forward(ds.Features, false)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				v := (w*13 + i*7) % ds.G.NumVertices
				// Alternate entry rank so both routing directions and both
				// coalescers run concurrently.
				entry := (w + i) % 2
				if i%3 == 2 {
					// Direct engine path races the HTTP path on the same caches.
					out, err := fleet.servers[entry].Engine().Infer([]int32{int32(v)})
					if err != nil {
						errs <- err
						return
					}
					if err := rowsMatch(out.Row(0), full.Row(v)); err != nil {
						errs <- fmt.Errorf("engine rank %d vertex %d: %w", entry, v, err)
						return
					}
					continue
				}
				resp, err := http.Get(fmt.Sprintf("http://%s/predict?vertex=%d", fleet.addrs[entry], v))
				if err != nil {
					errs <- err
					return
				}
				var pr PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if err := rowsMatch(pr.Logits, full.Row(v)); err != nil {
					errs <- fmt.Errorf("HTTP rank %d vertex %d: %w", entry, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The tiny budget must actually have caused cache churn somewhere.
	var puts int64
	for _, srv := range fleet.servers {
		puts += srv.StatsSnapshot().Shard.RemoteCache.Puts
	}
	if puts == 0 {
		t.Fatal("remote cache never exercised under fan-out")
	}
}

// rowsMatch is bitsEqual as an error (for goroutine use).
func rowsMatch(got, want []float32) error {
	if len(got) != len(want) {
		return fmt.Errorf("length %d != %d", len(got), len(want))
	}
	for j := range got {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			return fmt.Errorf("col %d: %v (%#x) != %v (%#x)",
				j, got[j], math.Float32bits(got[j]), want[j], math.Float32bits(want[j]))
		}
	}
	return nil
}

// TestShardModeRejectsMisconfiguration pins the fail-fast contract for the
// sharded constructor.
func TestShardModeRejectsMisconfiguration(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	cfg := Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2}
	tr := comm.NewProcTransport(2)
	defer tr.Close()
	cases := []struct {
		name string
		cfg  Config
		sc   ShardConfig
	}{
		{"sampled", Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2, Fanouts: []int{5, 5}},
			ShardConfig{Rank: 0, Shards: 2, Transport: tr}},
		{"no transport", cfg, ShardConfig{Rank: 0, Shards: 2}},
		{"rank out of range", cfg, ShardConfig{Rank: 2, Shards: 2, Transport: tr}},
		{"world mismatch", cfg, ShardConfig{Rank: 0, Shards: 3, Transport: tr}},
	}
	for _, tc := range cases {
		if _, err := NewShard(ds, bytes.NewReader(ckpt), tc.cfg, tc.sc); err == nil {
			t.Fatalf("%s: misconfiguration accepted", tc.name)
		}
	}
}
