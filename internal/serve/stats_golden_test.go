package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"

	"distgnn/internal/comm"
)

// statsGoldenKeys is the pinned /stats schema: every key path the endpoint
// serves, in sorted order. Dashboards and the CI smoke scripts key off
// these names — renaming or dropping one is a breaking change and must
// update this golden deliberately.
var statsGoldenKeys = []string{
	"arch",
	"coalescer",
	"coalescer.avg_batch",
	"coalescer.batched_requests",
	"coalescer.batches",
	"coalescer.dedup_saved",
	"coalescer.max_batch_observed",
	"coalescer.max_pending",
	"coalescer.pending",
	"coalescer.requests",
	"coalescer.shed",
	"embedding_cache",
	"embeds",
	"engine",
	"engine.inferences",
	"engine.input_frontier_vertices",
	"engine.seed_vertices",
	"feature_cache",
	"mode",
	"model",
	"predicts",
	"reloads",
	"uptime_seconds",
}

// statsGoldenShardKeys extends the golden with the shard-mode block.
var statsGoldenShardKeys = []string{
	"shard",
	"shard.halo_fetched_bytes",
	"shard.halo_fetched_vertices",
	"shard.halo_fetches",
	"shard.halo_hits",
	"shard.halo_misses",
	"shard.halo_vertices_static",
	"shard.owned_vertices",
	"shard.partitioner",
	"shard.peer_served_bytes",
	"shard.peer_served_fetches",
	"shard.peer_served_vertices",
	"shard.rank",
	"shard.remote_cache",
	"shard.routed_in",
	"shard.routed_out",
	"shard.shards",
}

// statsGoldenStreamKeys extends the golden with the streaming-updates block
// served when the server runs with -updates.
var statsGoldenStreamKeys = []string{
	"stream",
	"stream.base_edges",
	"stream.compactions",
	"stream.edges_applied",
	"stream.epoch",
	"stream.invalidated_embeddings",
	"stream.invalidated_features",
	"stream.overlay_edges",
	"stream.overlay_vertices",
	"stream.updates",
}

// cacheGoldenKeys is the schema of every *_cache block.
var cacheGoldenKeys = []string{
	"capacity_bytes", "entries", "evictions", "hits", "misses", "puts", "used_bytes",
}

// jsonKeyPaths flattens a decoded JSON object into sorted dotted key paths.
// Cache blocks collapse to their parent key plus a shared sub-schema check,
// so the golden stays readable.
func jsonKeyPaths(t *testing.T, obj map[string]any) []string {
	t.Helper()
	var paths []string
	var walk func(prefix string, m map[string]any)
	walk = func(prefix string, m map[string]any) {
		for k, v := range m {
			path := k
			if prefix != "" {
				path = prefix + "." + k
			}
			if sub, ok := v.(map[string]any); ok {
				if strings.HasSuffix(k, "_cache") {
					// All cache blocks share one schema, checked once.
					paths = append(paths, path)
					assertCacheSchema(t, path, sub)
					continue
				}
				paths = append(paths, path)
				walk(path, sub)
				continue
			}
			paths = append(paths, path)
		}
	}
	walk("", obj)
	sort.Strings(paths)
	return paths
}

func assertCacheSchema(t *testing.T, path string, m map[string]any) {
	t.Helper()
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if !reflect.DeepEqual(keys, cacheGoldenKeys) {
		t.Fatalf("%s schema drifted:\n got %v\nwant %v", path, keys, cacheGoldenKeys)
	}
}

func fetchStatsKeys(t *testing.T, handler http.Handler) []string {
	t.Helper()
	ts := httptest.NewServer(handler)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/stats Content-Type %q", ct)
	}
	var obj map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		t.Fatal(err)
	}
	return jsonKeyPaths(t, obj)
}

// TestStatsSchemaGolden pins the /stats JSON schema for both the
// single-process server and a sharded rank: exactly the golden key set, no
// silent additions or drops.
func TestStatsSchemaGolden(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	cfg := Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		FeatureCacheBytes: 1 << 20, EmbedCacheBytes: 1 << 20}

	single, err := New(ds, bytes.NewReader(ckpt), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if got := fetchStatsKeys(t, single.Handler()); !reflect.DeepEqual(got, statsGoldenKeys) {
		t.Fatalf("single-process /stats schema drifted:\n got %v\nwant %v", got, statsGoldenKeys)
	}

	tr := comm.NewProcTransport(2)
	defer tr.Close()
	shard, err := NewShard(ds, bytes.NewReader(ckpt), cfg, ShardConfig{
		Rank: 0, Shards: 2, Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shard.Close()
	want := append(append([]string(nil), statsGoldenKeys...), statsGoldenShardKeys...)
	sort.Strings(want)
	if got := fetchStatsKeys(t, shard.Handler()); !reflect.DeepEqual(got, want) {
		t.Fatalf("shard /stats schema drifted:\n got %v\nwant %v", got, want)
	}

	ucfg := cfg
	ucfg.EnableUpdates = true
	upd, err := New(ds, bytes.NewReader(ckpt), ucfg)
	if err != nil {
		t.Fatal(err)
	}
	defer upd.Close()
	want = append(append([]string(nil), statsGoldenKeys...), statsGoldenStreamKeys...)
	sort.Strings(want)
	if got := fetchStatsKeys(t, upd.Handler()); !reflect.DeepEqual(got, want) {
		t.Fatalf("updates-enabled /stats schema drifted:\n got %v\nwant %v", got, want)
	}
}

// TestErrorResponseSchemaGolden pins the error payload contract every
// endpoint shares: an application/json object with exactly one "error"
// string key, under the expected status code.
func TestErrorResponseSchemaGolden(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	srv, err := New(ds, bytes.NewReader(ckpt), Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		code int
	}{
		{"/predict", http.StatusBadRequest},
		{"/predict?vertex=zz", http.StatusBadRequest},
		{"/predict?vertex=-1", http.StatusBadRequest},
		{fmt.Sprintf("/predict?vertex=%d", ds.G.NumVertices), http.StatusBadRequest},
		{"/embed", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, ct := readAll(t, resp)
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
		if ct != "application/json" {
			t.Fatalf("%s: Content-Type %q", tc.path, ct)
		}
		var obj map[string]any
		if err := json.Unmarshal(body, &obj); err != nil {
			t.Fatalf("%s: error body is not JSON: %s", tc.path, body)
		}
		if len(obj) != 1 {
			t.Fatalf("%s: error object has keys beyond \"error\": %s", tc.path, body)
		}
		msg, ok := obj["error"].(string)
		if !ok || msg == "" {
			t.Fatalf("%s: missing non-empty \"error\" string: %s", tc.path, body)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return buf.Bytes(), resp.Header.Get("Content-Type")
}
